// Quickstart: the 60-second tour of the public API — build a small weighted
// directed graph, mutate it with batched edge/vertex operations, query it,
// and inspect memory accounting.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/dyn_graph.hpp"

int main() {
  using namespace sg::core;

  // 1. Configure and construct. Capacity is a hint; the dictionary grows
  //    (by pointer copy) if exceeded. Load factor 0.7 is the paper default.
  GraphConfig config;
  config.vertex_capacity = 16;
  config.load_factor = 0.7;
  DynGraphMap graph(config);

  // 2. Batched edge insertion (Algorithm 1). Duplicates are tolerated and
  //    stored once; self-loops are dropped; the newest weight wins.
  const std::vector<WeightedEdge> batch = {
      {0, 1, 10}, {0, 2, 20}, {1, 2, 30}, {2, 0, 40},
      {0, 1, 11},  // duplicate of 0->1: weight becomes 11
      {3, 3, 99},  // self-loop: rejected
  };
  const auto added = graph.insert_edges(batch);
  std::printf("inserted %llu unique edges (batch had %zu entries)\n",
              static_cast<unsigned long long>(added), batch.size());

  // 3. Queries: edgeExist, weight lookup, exact degree, adjacency iteration.
  std::printf("edge 0->1 exists: %s, weight %u\n",
              graph.edge_exists(0, 1) ? "yes" : "no",
              graph.edge_weight(0, 1).value);
  std::printf("degree(0) = %u\n", graph.degree(0));
  graph.for_each_neighbor(0, [](VertexId v, Weight w) {
    std::printf("  neighbor of 0: %u (weight %u)\n", v, w);
  });

  // 4. Batched deletion; the return value is the exact number removed.
  const std::vector<Edge> doomed = {{0, 2}, {0, 7}};
  std::printf("deleted %llu edges\n",
              static_cast<unsigned long long>(graph.delete_edges(doomed)));

  // 5. Vertex operations: insert with a degree hint (pre-sizes the hash
  //    table), then delete (Algorithm 2 scrubs incoming edges too).
  const std::vector<VertexId> fresh = {9};
  const std::vector<std::uint32_t> hints = {100};
  graph.insert_vertices(fresh, hints);
  std::vector<WeightedEdge> fan;
  for (std::uint32_t v = 0; v < 100; ++v) fan.push_back({9, v + 10, v});
  graph.insert_edges(fan);
  std::printf("degree(9) = %u after fan-out\n", graph.degree(9));
  const std::vector<VertexId> gone = {9};
  graph.delete_vertices(gone);
  std::printf("after delete_vertices: degree(9) = %u, edge 9->10 exists: %s\n",
              graph.degree(9), graph.edge_exists(9, 10) ? "yes" : "no");

  // 6. Memory accounting (the Figure 2 counters).
  const GraphMemoryStats stats = graph.memory_stats();
  std::printf(
      "memory: %llu live edges, %llu tombstones, %llu base + %llu overflow "
      "slabs, utilization %.2f\n",
      static_cast<unsigned long long>(stats.live_edges),
      static_cast<unsigned long long>(stats.tombstones),
      static_cast<unsigned long long>(stats.base_slabs),
      static_cast<unsigned long long>(stats.overflow_slabs),
      stats.utilization());
  return 0;
}
