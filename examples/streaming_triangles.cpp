// Streaming triangle counting — the paper's dynamic application (§VI-C2):
// an edge stream (a scaled hollywood-2009 analog) arrives in batches; after
// every batch the application recounts triangles on the live structure.
// Because the hash-based adjacency needs no sorted order, no maintenance
// pass runs between batches — the edgeExist probes work directly.
//
//   ./build/examples/streaming_triangles [--batches=N] [--scale=F]
#include <cstdio>

#include "src/analytics/triangle_count.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/datasets/coo.hpp"
#include "src/datasets/suite.hpp"
#include "src/util/cli.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const int batches = static_cast<int>(cli.get_int("batches", 5));
  const double scale = cli.get_double("scale", 0.1);

  const auto stream = sg::datasets::make_dataset("hollywood-2009", scale);
  std::printf("streaming %llu directed edges over %u vertices in %d batches\n",
              static_cast<unsigned long long>(stream.num_edges()),
              stream.num_vertices, batches);

  sg::core::GraphConfig config;
  config.vertex_capacity = stream.num_vertices;  // capacity known a priori
  sg::core::DynGraphSet graph(config);           // TC needs no edge values

  const std::size_t per_batch =
      (stream.edges.size() + batches - 1) / static_cast<std::size_t>(batches);
  double cumulative_ms = 0.0;
  int iteration = 0;
  for (const auto batch : sg::datasets::split_batches(stream.edges, per_batch)) {
    ++iteration;
    sg::util::Timer insert_timer;
    const auto added = graph.insert_edges(batch);
    const double insert_ms = insert_timer.milliseconds();

    sg::util::Timer tc_timer;
    const auto triangles = sg::analytics::tc_slabgraph(graph);
    const double tc_ms = tc_timer.milliseconds();

    cumulative_ms += insert_ms + tc_ms;
    std::printf(
        "batch %d: +%llu edges (%.1f ms insert), %llu triangles "
        "(%.1f ms count), cumulative %.1f ms\n",
        iteration, static_cast<unsigned long long>(added), insert_ms,
        static_cast<unsigned long long>(triangles), tc_ms, cumulative_ms);
  }

  const auto stats = graph.memory_stats();
  std::printf("final: %llu edges, utilization %.2f, %.2f MB of slabs\n",
              static_cast<unsigned long long>(graph.num_edges()),
              stats.utilization(), double(stats.bytes) / (1 << 20));
  return 0;
}
