// Streaming triangle counting — the paper's dynamic application (§VI-C2),
// now on the scheduled analytics pipeline: an edge stream (a scaled
// hollywood-2009 analog) arrives in batches, each submitted through the
// delta pipeline's fenced epochs (exist → insert → analytics) instead of a
// full recount per batch. The counter pays only for the triangles each
// batch closes; a final bulk recount inside submit_analytics cross-checks
// the running total against the live structure.
//
//   ./build/examples/streaming_triangles [--batches=N] [--scale=F]
#include <cstdio>
#include <vector>

#include "src/analytics/incremental_tc.hpp"
#include "src/analytics/triangle_count.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/datasets/coo.hpp"
#include "src/datasets/suite.hpp"
#include "src/util/cli.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const int batches = static_cast<int>(cli.get_int("batches", 5));
  const double scale = cli.get_double("scale", 0.1);

  const auto stream = sg::datasets::make_dataset("hollywood-2009", scale);
  std::printf("streaming %llu directed edges over %u vertices in %d batches\n",
              static_cast<unsigned long long>(stream.num_edges()),
              stream.num_vertices, batches);

  sg::core::GraphConfig config;
  config.vertex_capacity = stream.num_vertices;  // capacity known a priori
  config.undirected = true;  // the delta intersect reads full neighborhoods
  sg::core::DynGraphSet graph(config);           // TC needs no edge values
  sg::analytics::IncrementalTriangleCounter counter(graph);

  const std::size_t per_batch =
      (stream.edges.size() + batches - 1) / static_cast<std::size_t>(batches);
  double cumulative_ms = 0.0;
  int iteration = 0;
  for (const auto batch : sg::datasets::split_batches(stream.edges, per_batch)) {
    ++iteration;
    // The raw stream carries both directions and repeats; the checked path
    // (edgeExist pre-pass) absorbs duplicates against the graph, so the
    // whole epoch is one submit_batch call.
    std::vector<sg::core::Edge> edges;
    edges.reserve(batch.size());
    for (const auto& e : batch) edges.push_back({e.src, e.dst});

    sg::util::Timer epoch_timer;
    const auto triangles = counter.submit_batch(edges).get();
    const double epoch_ms = epoch_timer.milliseconds();

    cumulative_ms += epoch_ms;
    std::printf("batch %d: %zu stream edges, %llu triangles "
                "(%.1f ms epoch), cumulative %.1f ms\n",
                iteration, batch.size(),
                static_cast<unsigned long long>(triangles), epoch_ms,
                cumulative_ms);
  }

  // Cross-check inside a fenced analytics phase: one bulk wave recount on
  // the final structure must reproduce the running total.
  std::uint64_t recount = 0;
  graph.submit_analytics([&graph, &recount] {
    recount = sg::analytics::tc_slabgraph_bulk(graph);
  }).get();
  graph.schedule_drain();
  std::printf("bulk recount: %llu triangles (%s)\n",
              static_cast<unsigned long long>(recount),
              recount == counter.triangles() ? "matches" : "MISMATCH");

  const auto stats = graph.memory_stats();
  std::printf("final: %llu edges, utilization %.2f, %.2f MB of slabs\n",
              static_cast<unsigned long long>(graph.num_edges()),
              stats.utilization(), double(stats.bytes) / (1 << 20));
  return 0;
}
