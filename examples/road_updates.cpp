// Road-network maintenance: closures and reopenings on a road graph (the
// paper's road_usa/germany_osm family), with hop-distance queries between
// updates. Road graphs are the case where our hash tables mostly hold a
// single bucket — the regime the paper notes makes the structure resemble
// faimGraph — yet weight updates (replace semantics) and deletions stay
// one-batch operations with no sorting or rebuild.
//
//   ./build/examples/road_updates [--closures=N] [--scale=F]
#include <cstdio>

#include <map>

#include "src/analytics/bfs.hpp"
#include "src/analytics/connected_components.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/datasets/coo.hpp"
#include "src/datasets/suite.hpp"
#include "src/util/cli.hpp"
#include "src/util/prng.hpp"

namespace {

sg::analytics::NeighborFn neighbors_of(const sg::core::DynGraphMap& g) {
  return [&g](sg::core::VertexId u,
              const std::function<void(sg::core::VertexId)>& visit) {
    g.for_each_neighbor(
        u, [&](sg::core::VertexId v, sg::core::Weight) { visit(v); });
  };
}

}  // namespace

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto closures = static_cast<std::size_t>(cli.get_int("closures", 300));
  const double scale = cli.get_double("scale", 0.25);
  sg::util::Xoshiro256 rng(7);

  const auto road = sg::datasets::make_dataset("luxembourg_osm", scale);
  sg::core::GraphConfig config;
  config.vertex_capacity = road.num_vertices;
  config.undirected = true;
  sg::core::DynGraphMap graph(config);
  graph.bulk_build(road.unique_undirected_edges());
  std::printf("road network: %u junctions, %llu road segments\n",
              road.num_vertices,
              static_cast<unsigned long long>(graph.num_edges() / 2));

  // Place the depot in the largest connected component (sparse road grids
  // fragment; a random junction often sits in a cul-de-sac cluster).
  const auto labels = sg::analytics::connected_components(
      road.num_vertices, neighbors_of(graph));
  std::map<std::uint32_t, std::uint32_t> component_size;
  for (auto label : labels) ++component_size[label];
  sg::core::VertexId depot = 0;
  std::uint32_t best = 0;
  for (sg::core::VertexId v = 0; v < road.num_vertices; ++v) {
    if (component_size[labels[v]] > best) {
      best = component_size[labels[v]];
      depot = v;
    }
  }
  std::printf("depot %u sits in the largest component (%u junctions)\n", depot,
              best);
  const auto before = sg::analytics::bfs(road.num_vertices,
                                         neighbors_of(graph), depot);
  std::uint64_t reachable_before = 0;
  for (auto d : before) reachable_before += d != sg::analytics::kUnreached;
  std::printf("before closures: depot reaches %llu junctions\n",
              static_cast<unsigned long long>(reachable_before));

  // Close random segments (batched undirected edge deletion)...
  std::vector<sg::core::Edge> closed;
  const auto segments = road.unique_undirected_edges();
  while (closed.size() < closures && closed.size() < segments.size()) {
    const auto& s = segments[rng.below(segments.size())];
    closed.push_back({s.src, s.dst});
  }
  const auto removed = graph.delete_edges(closed);
  std::printf("closed %llu directed segments (%zu requested closures)\n",
              static_cast<unsigned long long>(removed), closed.size());

  const auto during = sg::analytics::bfs(road.num_vertices,
                                         neighbors_of(graph), depot);
  std::uint64_t reachable_during = 0;
  for (auto d : during) reachable_during += d != sg::analytics::kUnreached;
  std::printf("during closures: depot reaches %llu junctions\n",
              static_cast<unsigned long long>(reachable_during));

  // ... update congestion weights on open roads (replace semantics: a
  // re-insert of an existing edge just rewrites its weight) ...
  std::vector<sg::core::WeightedEdge> congestion;
  for (std::size_t i = 0; i < segments.size(); i += 7) {
    congestion.push_back({segments[i].src, segments[i].dst,
                          static_cast<sg::core::Weight>(rng.below(100))});
  }
  const auto new_edges = graph.insert_edges(congestion);
  std::printf(
      "congestion update on %zu segments rewrote weights in place "
      "(%llu were re-opened roads)\n",
      congestion.size(), static_cast<unsigned long long>(new_edges));

  // ... and reopen everything.
  std::vector<sg::core::WeightedEdge> reopened;
  for (const auto& e : closed) reopened.push_back({e.src, e.dst, 1});
  graph.insert_edges(reopened);
  const auto after = sg::analytics::bfs(road.num_vertices,
                                        neighbors_of(graph), depot);
  std::uint64_t reachable_after = 0;
  for (auto d : after) reachable_after += d != sg::analytics::kUnreached;
  std::printf("after reopening: depot reaches %llu junctions\n",
              static_cast<unsigned long long>(reachable_after));
  return reachable_after >= reachable_before ? 0 : 1;
}
