// Social-network churn — the "flowing stream of edge AND vertex insertions
// and deletions" the paper argues real dynamic workloads contain (§I),
// replayed through the stream harness (docs/WORKLOADS.md "Sliding-window
// streaming" meets vertex churn):
//
//   * follow traffic is a TEMPORAL stream — seed follows, then waves of
//     new members whose follows arrive with fresh timestamps; the harness
//     ingests it epoch by epoch (members "join" when their first follow
//     arrives),
//   * unfollow traffic is the sliding window — follows not refreshed
//     within the window age out (submit_age_out inside the harness),
//     replacing the old hand-rolled unfollow batches,
//   * members leaving is still explicit Algorithm 2 vertex deletion
//     between epochs,
//   * analytics (reachability BFS from the hub, connected components) run
//     in the fenced per-epoch analytics hook.
//
//   ./build/social_churn [--rounds=N] [--scale=F]
#include <cstdio>
#include <vector>

#include "src/analytics/bfs.hpp"
#include "src/analytics/connected_components.hpp"
#include "src/datasets/suite.hpp"
#include "src/stream/harness.hpp"
#include "src/util/cli.hpp"
#include "src/util/prng.hpp"

namespace {

sg::analytics::NeighborFn neighbors_of(const sg::core::DynGraphMap& g) {
  return [&g](sg::core::VertexId u,
              const std::function<void(sg::core::VertexId)>& visit) {
    g.for_each_neighbor(
        u, [&](sg::core::VertexId v, sg::core::Weight) { visit(v); });
  };
}

}  // namespace

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const int rounds = static_cast<int>(cli.get_int("rounds", 4));
  const double scale = cli.get_double("scale", 0.1);
  sg::util::Xoshiro256 rng(2026);

  const auto seed_graph = sg::datasets::make_dataset("soc-LiveJournal1", scale);
  const std::uint32_t base_vertices = seed_graph.num_vertices;
  const std::uint32_t joiners_per_round = base_vertices / 20;

  // Build the whole follow stream up front (the harness replays streams,
  // it does not invent them): seed follows in arrival order, then one wave
  // of joiners per round, each new member following a few existing ones.
  std::vector<sg::stream::TemporalEdge> follows;
  sg::core::Weight ts = 0;
  for (const auto& e : seed_graph.edges) follows.push_back({e.src, e.dst, ts++});
  std::uint32_t next_member = base_vertices;
  for (int round = 1; round <= rounds; ++round) {
    for (std::uint32_t j = 0; j < joiners_per_round; ++j) {
      const sg::core::VertexId member = next_member++;
      const int fanout = 2 + static_cast<int>(rng.below(6));
      for (int f = 0; f < fanout; ++f) {
        follows.push_back(
            {member, static_cast<sg::core::VertexId>(rng.below(member)), ts++});
      }
    }
  }

  // One epoch per churn round, plus one for the seed prefix: the harness
  // slices the stream evenly, so joins spread across the later epochs.
  const std::size_t batch_size =
      follows.size() / static_cast<std::size_t>(rounds + 1) + 1;
  sg::stream::Dataset dataset(std::move(follows), batch_size);

  sg::stream::HarnessConfig config;
  config.window_frac = 0.6;  // follows lapse unless refreshed: unfollow churn
  config.compact_every = 2;
  config.graph.undirected = true;
  // Churn batches are exactly the staged batch engine's workload (default;
  // spelled out because this example exists to demonstrate it).
  config.graph.batch_engine = true;
  sg::stream::Harness harness(dataset, config);
  std::printf("social stream: %u seed members, %zu epochs of %zu follows\n",
              base_vertices, dataset.num_batches(), dataset.batch_size());

  for (std::size_t epoch = 0; epoch < dataset.num_batches(); ++epoch) {
    // Fenced analytics hook: hub reachability + component structure on the
    // exact post-ingest, post-aging state.
    sg::core::VertexId hub = 0;
    std::uint64_t reachable = 0;
    std::uint32_t components = 0;
    const auto stats = harness.run_epoch(
        epoch, [&](const sg::core::DynGraphMap& g) {
          const auto n = static_cast<sg::core::VertexId>(next_member);
          for (sg::core::VertexId v = 0; v < n; ++v) {
            if (g.degree(v) > g.degree(hub)) hub = v;
          }
          const auto dist = sg::analytics::bfs(n, neighbors_of(g), hub);
          for (auto d : dist) reachable += d != sg::analytics::kUnreached;
          components = sg::analytics::count_components(
              sg::analytics::connected_components(n, neighbors_of(g)));
        });

    // Members leaving: Algorithm 2 vertex deletion between epochs, on the
    // quiescent graph the harness hands back.
    std::vector<sg::core::VertexId> leavers;
    for (std::uint32_t l = 0; l < joiners_per_round / 4; ++l) {
      leavers.push_back(
          static_cast<sg::core::VertexId>(rng.below(next_member)));
    }
    harness.graph().delete_vertices(leavers);

    std::printf(
        "epoch %zu: +%llu follows, %llu lapsed (window), -%zu leavers | "
        "%llu edges in %llu chunks, hub %u reaches %llu members, %u "
        "components\n",
        epoch, static_cast<unsigned long long>(stats.inserted),
        static_cast<unsigned long long>(stats.aged_out), leavers.size(),
        static_cast<unsigned long long>(harness.graph().num_edges()),
        static_cast<unsigned long long>(stats.arena_chunks), hub,
        static_cast<unsigned long long>(reachable), components);
  }
  return 0;
}
