// Social-network churn — the "flowing stream of edge AND vertex insertions
// and deletions" the paper argues real dynamic workloads contain (§I).
// A scale-free social graph evolves through rounds of:
//   * new members joining (vertex insertion + their follow edges),
//   * members leaving (Algorithm 2 vertex deletion),
//   * follow/unfollow traffic (batched edge insert/delete),
// while analytics (connected components, reachability BFS from the largest
// hub) run between phases — the phase-concurrent usage model.
//
//   ./build/examples/social_churn [--rounds=N] [--scale=F]
#include <cstdio>

#include "src/analytics/bfs.hpp"
#include "src/analytics/connected_components.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/datasets/coo.hpp"
#include "src/datasets/suite.hpp"
#include "src/util/cli.hpp"
#include "src/util/prng.hpp"

namespace {

sg::analytics::NeighborFn neighbors_of(const sg::core::DynGraphSet& g) {
  return [&g](sg::core::VertexId u,
              const std::function<void(sg::core::VertexId)>& visit) {
    g.for_each_neighbor(
        u, [&](sg::core::VertexId v, sg::core::Weight) { visit(v); });
  };
}

}  // namespace

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const int rounds = static_cast<int>(cli.get_int("rounds", 4));
  const double scale = cli.get_double("scale", 0.1);
  sg::util::Xoshiro256 rng(2026);

  auto seed_graph = sg::datasets::make_dataset("soc-LiveJournal1", scale);
  const std::uint32_t base_vertices = seed_graph.num_vertices;
  // Leave headroom for joiners: ids [base, base + rounds*join) are new.
  const std::uint32_t joiners_per_round = base_vertices / 20;

  sg::core::SlabGraphConfig config;
  config.vertex_capacity = base_vertices + rounds * joiners_per_round;
  config.undirected = true;
  // Churn rounds are exactly the staged batch engine's workload: every
  // follow/unfollow batch is staged, grouped into per-(vertex, bucket)
  // runs, and applied through the bulk slab path (default; spelled out
  // here because this example exists to demonstrate it).
  config.batch_engine = true;
  sg::core::DynGraphSet graph(config);
  graph.insert_edges(seed_graph.unique_undirected_edges());
  std::printf("seeded social graph: %u members, %llu directed edges\n",
              base_vertices,
              static_cast<unsigned long long>(graph.num_edges()));

  std::uint32_t next_member = base_vertices;
  for (int round = 1; round <= rounds; ++round) {
    // --- joins: new members follow a handful of existing ones -----------
    std::vector<sg::core::VertexId> joiners;
    std::vector<sg::core::WeightedEdge> follows;
    for (std::uint32_t j = 0; j < joiners_per_round; ++j) {
      const sg::core::VertexId member = next_member++;
      joiners.push_back(member);
      const int fanout = 2 + static_cast<int>(rng.below(6));
      for (int f = 0; f < fanout; ++f) {
        follows.push_back(
            {member, static_cast<sg::core::VertexId>(rng.below(member)), 0});
      }
    }
    graph.insert_vertices(joiners);
    graph.insert_edges(follows);

    // --- churn: some members leave entirely (Algorithm 2) ---------------
    std::vector<sg::core::VertexId> leavers;
    for (std::uint32_t l = 0; l < joiners_per_round / 4; ++l) {
      leavers.push_back(static_cast<sg::core::VertexId>(rng.below(next_member)));
    }
    graph.delete_vertices(leavers);

    // --- unfollow traffic ------------------------------------------------
    std::vector<sg::core::Edge> unfollows;
    for (std::uint32_t u = 0; u < joiners_per_round; ++u) {
      unfollows.push_back(
          {static_cast<sg::core::VertexId>(rng.below(next_member)),
           static_cast<sg::core::VertexId>(rng.below(next_member))});
    }
    const auto unfollowed = graph.delete_edges(unfollows);

    // Batched survival audit (edgeExist through the engine's bulk search):
    // how many of this round's new follows survived the leavers and the
    // unfollow traffic?
    std::vector<sg::core::Edge> audit;
    audit.reserve(follows.size());
    for (const auto& f : follows) audit.push_back({f.src, f.dst});
    std::vector<std::uint8_t> alive(audit.size(), 0);
    graph.edges_exist(audit, alive.data());
    std::uint64_t survived = 0;
    for (const std::uint8_t a : alive) survived += a;

    // --- analytics on the live graph -------------------------------------
    // Hub = highest-degree live member.
    sg::core::VertexId hub = 0;
    for (sg::core::VertexId v = 0; v < next_member; ++v) {
      if (graph.degree(v) > graph.degree(hub)) hub = v;
    }
    const auto dist =
        sg::analytics::bfs(next_member, neighbors_of(graph), hub);
    std::uint64_t reachable = 0;
    for (auto d : dist) reachable += d != sg::analytics::kUnreached;
    const auto labels =
        sg::analytics::connected_components(next_member, neighbors_of(graph));

    std::printf(
        "round %d: +%zu members, -%zu leavers, %llu unfollows, %llu/%zu new "
        "follows survived | %llu edges, hub %u reaches %llu members, %u "
        "components\n",
        round, joiners.size(), leavers.size(),
        static_cast<unsigned long long>(unfollowed),
        static_cast<unsigned long long>(survived), audit.size(),
        static_cast<unsigned long long>(graph.num_edges()), hub,
        static_cast<unsigned long long>(reachable),
        sg::analytics::count_components(labels));
  }
  return 0;
}
