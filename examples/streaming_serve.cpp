// Streaming serve — sliding-window ingest + concurrent probe serving, on
// the stream harness. The DynoGraph-style serving scenario: the main
// thread replays a temporal edge stream through stream::Harness (ingest →
// window aging → compaction, every step fenced by the phase scheduler)
// while serve threads fire edgeExist probe batches against the SAME graph
// from plain std::threads, all at the same time.
//
// This is the code path bench/micro_stream gates, plus the concurrency the
// scheduler exists for: the scheduled submit_* API classifies every
// submission and fences mutation/maintenance phases from query phases, so
// probes never observe a half-applied epoch (docs/WORKLOADS.md "Mixed
// serve").
//
//   ./build/streaming_serve [--batches=N] [--scale=F] [--serve=2]
//                           [--window=0.5] [--compact-every=4]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/datasets/suite.hpp"
#include "src/stream/harness.hpp"
#include "src/util/cli.hpp"
#include "src/util/prng.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const std::size_t batches =
      static_cast<std::size_t>(cli.get_int("batches", 16));
  const int serve_threads = static_cast<int>(cli.get_int("serve", 2));
  const double scale = cli.get_double("scale", 0.1);
  const double window = cli.get_double("window", 0.5);
  const std::uint32_t compact_every =
      static_cast<std::uint32_t>(cli.get_int("compact-every", 4));

  const auto coo = sg::datasets::make_dataset("hollywood-2009", scale);
  const sg::stream::Dataset dataset = sg::stream::Dataset::from_coo(
      coo, std::max<std::size_t>(1, coo.edges.size() / batches));
  std::printf(
      "serving %u vertices: %zu-epoch replay (window %.0f%% of %llu edges) "
      "with %d serve threads probing concurrently\n",
      coo.num_vertices, dataset.num_batches(), window * 100.0,
      static_cast<unsigned long long>(dataset.num_edges()), serve_threads);

  sg::stream::HarnessConfig config;
  config.window_frac = window;
  config.compact_every = compact_every;
  sg::stream::Harness harness(dataset, config);
  sg::core::DynGraphMap& graph = harness.graph();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> probes_answered{0};
  std::atomic<std::uint64_t> probes_hit{0};
  sg::util::Timer wall;

  // Serve threads: a mix of stream edges (hits while inside the window)
  // and random pairs, probed through the scheduled query path while the
  // harness mutates the graph underneath.
  std::vector<std::thread> servers;
  for (int t = 0; t < serve_threads; ++t) {
    servers.emplace_back([&, t] {
      sg::util::Xoshiro256 rng(900 + static_cast<std::uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        std::vector<sg::core::Edge> probes;
        probes.reserve(4096);
        for (int i = 0; i < 4096; ++i) {
          if (i % 2 == 0) {
            const auto& e = dataset.edges()[rng.below(dataset.num_edges())];
            probes.push_back({e.src, e.dst});
          } else {
            probes.push_back(
                {static_cast<sg::core::VertexId>(rng.below(coo.num_vertices)),
                 static_cast<sg::core::VertexId>(
                     rng.below(coo.num_vertices))});
          }
        }
        const auto hits = graph.submit_edges_exist(std::move(probes)).get();
        std::uint64_t hit = 0;
        for (const std::uint8_t h : hits) hit += h;
        probes_answered.fetch_add(hits.size(), std::memory_order_relaxed);
        probes_hit.fetch_add(hit, std::memory_order_relaxed);
      }
    });
  }

  const auto epochs = harness.run();
  done.store(true, std::memory_order_release);
  for (auto& th : servers) th.join();
  graph.schedule_drain();
  const double seconds = wall.seconds();

  std::uint64_t ingested = 0, aged = 0, released = 0;
  for (const auto& e : epochs) {
    ingested += e.inserted;
    aged += e.aged_out;
    released += e.released_chunks;
  }
  const auto& last = epochs.back();
  std::printf(
      "%.1f ms wall: %llu unique edges in, %llu aged out, %llu chunks "
      "released; answered %llu probes (%.1f%% hits)\n",
      seconds * 1e3, static_cast<unsigned long long>(ingested),
      static_cast<unsigned long long>(aged),
      static_cast<unsigned long long>(released),
      static_cast<unsigned long long>(probes_answered.load()),
      100.0 * double(probes_hit.load()) /
          double(probes_answered.load() ? probes_answered.load() : 1));
  std::printf(
      "steady state: %llu live edges in %llu arena chunks, RSS %.1f MiB\n",
      static_cast<unsigned long long>(last.live_edges),
      static_cast<unsigned long long>(last.arena_chunks),
      double(last.rss_bytes) / (1024.0 * 1024.0));

  const auto stats = graph.last_schedule_stats();
  std::printf(
      "schedule: %llu mutation + %llu maintenance + %llu query phases, %llu "
      "switches, %llu coalesced, %.2f ms fenced\n",
      static_cast<unsigned long long>(stats.mutation_phases),
      static_cast<unsigned long long>(stats.submitted_maintenance),
      static_cast<unsigned long long>(stats.query_phases),
      static_cast<unsigned long long>(stats.phase_switches),
      static_cast<unsigned long long>(stats.coalesced_batches),
      stats.fence_wait_seconds * 1e3);
  return 0;
}
