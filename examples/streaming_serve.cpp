// Streaming serve — a many-client simulation against the multi-shard
// serving tier (src/shard/sharded_graph.hpp). Dozens of concurrent
// submitters hammer ONE ShardedGraph from plain std::threads:
//
//   * ingest clients   power-law-skewed insert batches (hub sources land
//                      on one shard far more often than the tail — the
//                      skew the per-shard fairness report measures), with
//                      periodic erases of earlier batches;
//   * probe clients    edges_exist batches mixing recently-inserted pairs
//                      (hits) with random pairs (misses), scatter-gathered
//                      back to input order;
//   * one analyst      periodic submit_analytics fences — each task sees
//                      an epoch-consistent cut of ALL shards at once and
//                      checks the tier-wide edge count is a whole number
//                      of committed batches.
//
// Every submission goes through the ShardConductor's single admission
// point, so the mix is safe without any caller-side lock — the scenario
// docs/WORKLOADS.md "Mixed serve" prescribes, at tier scale. The closing
// report shows aggregate throughput, the router's per-shard load split,
// and the aggregated tier schedule stats (bench/micro_shard gates the
// single-threaded scaling series; this example is the concurrency story).
//
//   ./build/streaming_serve [--shards=4] [--ingest=16] [--probe=8]
//                           [--batches=12] [--batch=4096]
//                           [--vertices_exp=16] [--threads=4]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/shard/sharded_graph.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/cli.hpp"
#include "src/util/prng.hpp"
#include "src/util/timer.hpp"

namespace {

/// Power-law-ish source pick: cubing the uniform draw concentrates mass
/// near vertex 0, so a handful of hub sources dominate — and all of a
/// hub's rows land on ONE shard, the worst case for tier fairness.
sg::core::VertexId skewed_vertex(sg::util::Xoshiro256& rng,
                                 std::uint32_t num_vertices) {
  const double u = rng.uniform();
  return static_cast<sg::core::VertexId>(u * u * u * num_vertices);
}

}  // namespace

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const std::uint32_t shards =
      static_cast<std::uint32_t>(cli.get_int("shards", 4));
  const int ingest_clients = static_cast<int>(cli.get_int("ingest", 16));
  const int probe_clients = static_cast<int>(cli.get_int("probe", 8));
  const int batches_each = static_cast<int>(cli.get_int("batches", 12));
  const std::size_t batch_size =
      static_cast<std::size_t>(cli.get_int("batch", 4096));
  const std::uint32_t num_vertices =
      1u << static_cast<unsigned>(cli.get_int("vertices_exp", 16));
  sg::simt::ThreadPool::instance().resize(
      static_cast<unsigned>(cli.get_int("threads", 4)));

  sg::shard::ShardConfig config;
  config.shard_count = shards;
  config.graph.vertex_capacity = num_vertices;
  sg::shard::ShardedGraphMap tier(config);
  std::printf(
      "serving tier: %u shards, %d ingest + %d probe clients, %d batches "
      "of %zu each, V = %u\n",
      shards, ingest_clients, probe_clients, batches_each, batch_size,
      num_vertices);

  std::atomic<bool> ingest_done{false};
  std::atomic<std::uint64_t> edges_submitted{0};
  std::atomic<std::uint64_t> probes_answered{0};
  std::atomic<std::uint64_t> probes_hit{0};
  std::atomic<std::uint64_t> fence_cuts{0};
  sg::util::Timer wall;

  // Ingest clients: skewed insert batches; every 4th batch erases the
  // batch before it (the churny half of a serving workload).
  std::vector<std::thread> clients;
  for (int c = 0; c < ingest_clients; ++c) {
    clients.emplace_back([&, c] {
      sg::util::Xoshiro256 rng(100 + static_cast<std::uint64_t>(c));
      std::vector<sg::core::WeightedEdge> previous;
      for (int b = 0; b < batches_each; ++b) {
        std::vector<sg::core::WeightedEdge> batch(batch_size);
        for (auto& e : batch) {
          e = {skewed_vertex(rng, num_vertices),
               static_cast<sg::core::VertexId>(rng.below(num_vertices)),
               static_cast<sg::core::Weight>(rng.below(1u << 16))};
        }
        if (b % 4 == 3 && !previous.empty()) {
          std::vector<sg::core::Edge> erase(previous.size());
          for (std::size_t i = 0; i < previous.size(); ++i) {
            erase[i] = {previous[i].src, previous[i].dst};
          }
          tier.submit_erase(std::move(erase)).get();
        }
        edges_submitted.fetch_add(batch.size(), std::memory_order_relaxed);
        previous = batch;
        // The future's count carries coalesced-GROUP semantics (members of
        // a merged phase all observe the group total), so per-client sums
        // don't add up tier-wide — the report uses tier.num_edges().
        (void)tier.submit_insert(std::move(batch)).get();
      }
    });
  }

  // Probe clients: half the probes REPLAY one ingest client's
  // deterministic edge stream (seed 100 + c, same draw sequence), so they
  // target pairs that client has inserted or is about to insert — hits,
  // modulo timing and churn. The other half are uniform pairs (misses).
  // All answered while the ingest clients mutate every shard underneath.
  for (int c = 0; c < probe_clients; ++c) {
    clients.emplace_back([&, c] {
      sg::util::Xoshiro256 rng(900 + static_cast<std::uint64_t>(c));
      sg::util::Xoshiro256 replay(
          100 + static_cast<std::uint64_t>(c % ingest_clients));
      while (!ingest_done.load(std::memory_order_acquire)) {
        std::vector<sg::core::Edge> probes(batch_size);
        for (std::size_t i = 0; i < probes.size(); ++i) {
          if (i % 2 == 0) {
            // Mirror the ingest draw order: skewed src, dst, weight.
            const sg::core::VertexId src = skewed_vertex(replay, num_vertices);
            const auto dst =
                static_cast<sg::core::VertexId>(replay.below(num_vertices));
            (void)replay.below(1u << 16);  // the weight draw
            probes[i] = {src, dst};
          } else {
            probes[i] = {
                static_cast<sg::core::VertexId>(rng.below(num_vertices)),
                static_cast<sg::core::VertexId>(rng.below(num_vertices))};
          }
        }
        const auto hits = tier.submit_edges_exist(std::move(probes)).get();
        std::uint64_t hit = 0;
        for (const std::uint8_t h : hits) hit += h;
        probes_answered.fetch_add(hits.size(), std::memory_order_relaxed);
        probes_hit.fetch_add(hit, std::memory_order_relaxed);
      }
    });
  }

  // Analyst: epoch-consistent cuts of the whole tier while everything
  // above keeps submitting.
  std::thread analyst([&] {
    while (!ingest_done.load(std::memory_order_acquire)) {
      tier.submit_analytics([&] {
            // Inside the fence no mutation can commit on ANY shard, so the
            // tier-wide count is frozen for the duration of the task.
            const std::uint64_t before = tier.num_edges();
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            const std::uint64_t after = tier.num_edges();
            if (before != after) {
              std::fprintf(stderr, "torn cut: %llu != %llu\n",
                           static_cast<unsigned long long>(before),
                           static_cast<unsigned long long>(after));
            }
            fence_cuts.fetch_add(1, std::memory_order_relaxed);
          })
          .get();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  for (int c = 0; c < ingest_clients; ++c) clients[c].join();
  ingest_done.store(true, std::memory_order_release);
  for (std::size_t c = ingest_clients; c < clients.size(); ++c) {
    clients[c].join();
  }
  analyst.join();
  tier.drain();
  const double seconds = wall.seconds();

  std::printf(
      "%.1f ms wall: %llu edges submitted (%.2f Medges/s), %llu probes "
      "answered (%.2f Mprobes/s, %.1f%% hits), %llu fenced cuts, %llu live "
      "edges\n",
      seconds * 1e3, static_cast<unsigned long long>(edges_submitted.load()),
      double(edges_submitted.load()) / seconds * 1e-6,
      static_cast<unsigned long long>(probes_answered.load()),
      double(probes_answered.load()) / seconds * 1e-6,
      100.0 * double(probes_hit.load()) /
          double(probes_answered.load() ? probes_answered.load() : 1),
      static_cast<unsigned long long>(fence_cuts.load()),
      static_cast<unsigned long long>(tier.num_edges()));

  // Fairness: the router's per-shard item split under the power-law keys.
  const auto router = tier.router_stats();
  std::uint64_t lo = router.per_shard_items.empty() ? 0 : UINT64_MAX, hi = 0;
  std::printf("router: %llu batches split into %llu items; per-shard ",
              static_cast<unsigned long long>(router.batches_routed),
              static_cast<unsigned long long>(router.items_routed));
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t n = router.per_shard_items[s];
    lo = n < lo ? n : lo;
    hi = n > hi ? n : hi;
    std::printf("%s%.1f%%", s == 0 ? "[" : " ",
                100.0 * double(n) /
                    double(router.items_routed ? router.items_routed : 1));
  }
  std::printf("], max/min %.2f\n", lo == 0 ? 0.0 : double(hi) / double(lo));

  const sg::shard::TierStats stats = tier.tier_stats();
  std::printf(
      "tier: %llu mutations + %llu queries + %llu analytics admitted; "
      "fences %llu completed / %llu aborted; shard totals: %llu phases, "
      "%llu switches, %llu coalesced\n",
      static_cast<unsigned long long>(stats.tier_mutations),
      static_cast<unsigned long long>(stats.tier_queries),
      static_cast<unsigned long long>(stats.tier_analytics),
      static_cast<unsigned long long>(stats.fences_completed),
      static_cast<unsigned long long>(stats.fences_aborted),
      static_cast<unsigned long long>(stats.shard_totals.mutation_phases +
                                      stats.shard_totals.query_phases),
      static_cast<unsigned long long>(stats.shard_totals.phase_switches),
      static_cast<unsigned long long>(stats.shard_totals.coalesced_batches));
  sg::simt::ThreadPool::instance().resize(0);
  return 0;
}
