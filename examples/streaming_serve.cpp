// Streaming serve — concurrent ingest + analytics through the phase
// scheduler. The DynoGraph-style serving scenario: ingest threads stream
// edge batches into the graph while analytics threads run edgeExist epochs
// against it, ALL AT THE SAME TIME, from plain std::threads.
//
// This is the first example that may legally interleave mutation and query
// batches from multiple threads: the scheduled submit_* API classifies
// every submission and fences mutation phases from query phases, so the
// phase-concurrent contract holds by construction (the synchronous API
// would need a caller-side lock serializing everything).
//
//   ./build/streaming_serve [--batches=N] [--scale=F] [--ingest=2]
//                           [--analytics=2]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/datasets/coo.hpp"
#include "src/datasets/suite.hpp"
#include "src/util/cli.hpp"
#include "src/util/prng.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const int batches = static_cast<int>(cli.get_int("batches", 8));
  const int ingest_threads = static_cast<int>(cli.get_int("ingest", 2));
  const int analytics_threads = static_cast<int>(cli.get_int("analytics", 2));
  const double scale = cli.get_double("scale", 0.1);

  const auto stream = sg::datasets::make_dataset("hollywood-2009", scale);
  std::printf(
      "serving %u vertices: %d ingest + %d analytics threads over %llu "
      "directed edges in %d batches each\n",
      stream.num_vertices, ingest_threads, analytics_threads,
      static_cast<unsigned long long>(stream.num_edges()), batches);

  sg::core::GraphConfig config;
  config.vertex_capacity = stream.num_vertices;
  sg::core::DynGraphMap graph(config);

  // Warm the graph with the first half of the stream; the second half is
  // what the ingest threads feed while analytics run.
  const std::size_t half = stream.edges.size() / 2;
  graph.insert_edges(std::span(stream.edges).first(half));

  // Slice the remaining stream into per-ingest-thread batches.
  const std::span<const sg::core::WeightedEdge> live =
      std::span(stream.edges).subspan(half);
  const std::size_t per_batch =
      live.size() / (static_cast<std::size_t>(ingest_threads) * batches) + 1;

  std::atomic<std::uint64_t> edges_ingested{0};
  std::atomic<std::uint64_t> probes_answered{0};
  std::atomic<std::uint64_t> probes_hit{0};
  sg::util::Timer wall;

  std::vector<std::thread> threads;
  for (int t = 0; t < ingest_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int b = 0; b < batches; ++b) {
        const std::size_t index =
            (static_cast<std::size_t>(t) * batches + b) * per_batch;
        if (index >= live.size()) break;
        const auto slice =
            live.subspan(index, std::min(per_batch, live.size() - index));
        std::vector<sg::core::WeightedEdge> batch(slice.begin(), slice.end());
        graph.submit_insert(std::move(batch)).get();
        edges_ingested.fetch_add(slice.size(), std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < analytics_threads; ++t) {
    threads.emplace_back([&, t] {
      sg::util::Xoshiro256 rng(900 + static_cast<std::uint64_t>(t));
      for (int b = 0; b < batches; ++b) {
        // Probe a mix of warm edges (present) and random pairs.
        std::vector<sg::core::Edge> probes;
        probes.reserve(4096);
        for (int i = 0; i < 4096; ++i) {
          if (i % 2 == 0) {
            const auto& e = stream.edges[rng.below(half)];
            probes.push_back({e.src, e.dst});
          } else {
            probes.push_back(
                {static_cast<sg::core::VertexId>(
                     rng.below(stream.num_vertices)),
                 static_cast<sg::core::VertexId>(
                     rng.below(stream.num_vertices))});
          }
        }
        const auto hits = graph.submit_edges_exist(std::move(probes)).get();
        std::uint64_t hit = 0;
        for (const std::uint8_t h : hits) hit += h;
        probes_answered.fetch_add(hits.size(), std::memory_order_relaxed);
        probes_hit.fetch_add(hit, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  graph.schedule_drain();
  const double seconds = wall.seconds();

  const auto stats = graph.last_schedule_stats();
  std::printf(
      "%.1f ms wall: ingested %llu edges, answered %llu probes (%.1f%% "
      "hits), %.2f Mop/s combined\n",
      seconds * 1e3,
      static_cast<unsigned long long>(edges_ingested.load()),
      static_cast<unsigned long long>(probes_answered.load()),
      100.0 * double(probes_hit.load()) /
          double(probes_answered.load() ? probes_answered.load() : 1),
      double(edges_ingested.load() + probes_answered.load()) / seconds / 1e6);
  std::printf(
      "schedule: %llu mutation + %llu query phases, %llu switches, %llu of "
      "%llu submissions coalesced into shared phases, %.2f ms fenced\n",
      static_cast<unsigned long long>(stats.mutation_phases),
      static_cast<unsigned long long>(stats.query_phases),
      static_cast<unsigned long long>(stats.phase_switches),
      static_cast<unsigned long long>(stats.coalesced_batches),
      static_cast<unsigned long long>(stats.submitted_mutations +
                                      stats.submitted_queries),
      stats.fence_wait_seconds * 1e3);
  std::printf("final: %llu live directed edges, utilization %.2f\n",
              static_cast<unsigned long long>(graph.num_edges()),
              graph.memory_stats().utilization());
  return 0;
}
