// Dataset generator tests: determinism, structural invariants (simple,
// symmetric graphs), and degree statistics matching the Table I families
// each generator stands in for.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/datasets/generators.hpp"
#include "src/datasets/suite.hpp"

namespace sg::datasets {
namespace {

/// Structural invariants every generated graph must satisfy: no self-loops,
/// no duplicate directed edges, symmetric (undirected stored both ways),
/// ids within range.
void check_simple_symmetric(const Coo& coo) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const auto& e : coo.edges) {
    ASSERT_NE(e.src, e.dst) << "self loop";
    ASSERT_LT(e.src, coo.num_vertices);
    ASSERT_LT(e.dst, coo.num_vertices);
    ASSERT_TRUE(seen.insert({e.src, e.dst}).second) << "duplicate edge";
  }
  for (const auto& e : coo.edges) {
    ASSERT_TRUE(seen.count({e.dst, e.src}))
        << "missing reverse of " << e.src << "->" << e.dst;
  }
}

TEST(Generators, RoadInvariants) {
  const Coo coo = make_road(4096, 1);
  check_simple_symmetric(coo);
  const auto stats = coo.degree_stats();
  EXPECT_GT(stats.avg_degree, 1.6);
  EXPECT_LT(stats.avg_degree, 2.8);
  EXPECT_LT(stats.max_degree, 10u);  // road networks have tiny max degree
  EXPECT_LT(stats.sigma, 1.5);
}

TEST(Generators, RoadDeterministic) {
  const Coo a = make_road(2048, 7);
  const Coo b = make_road(2048, 7);
  EXPECT_EQ(a.edges.size(), b.edges.size());
  EXPECT_TRUE(std::equal(a.edges.begin(), a.edges.end(), b.edges.begin()));
  const Coo c = make_road(2048, 8);
  EXPECT_NE(a.edges.size(), c.edges.size());
}

TEST(Generators, DelaunayInvariants) {
  const Coo coo = make_delaunay(4096, 2);
  check_simple_symmetric(coo);
  const auto stats = coo.degree_stats();
  // Interior degree is exactly 6; boundary pulls the average slightly down.
  EXPECT_GT(stats.avg_degree, 5.0);
  EXPECT_LE(stats.avg_degree, 6.0);
  EXPECT_LE(stats.max_degree, 6u);
  EXPECT_LT(stats.sigma, 1.5);  // low-variance family
}

TEST(Generators, RggInvariantsAndTunableDegree) {
  const Coo coo = make_rgg(8192, 13.0, 3);
  check_simple_symmetric(coo);
  const auto stats = coo.degree_stats();
  EXPECT_NEAR(stats.avg_degree, 13.0, 2.5);
  EXPECT_GT(stats.sigma, 2.0);  // Poisson-ish spread
  const Coo denser = make_rgg(8192, 16.0, 3);
  EXPECT_GT(denser.edges.size(), coo.edges.size());
}

TEST(Generators, Mesh3dInvariants) {
  const Coo coo = make_mesh3d(32768, 4);
  check_simple_symmetric(coo);
  const auto stats = coo.degree_stats();
  EXPECT_NEAR(stats.avg_degree, 47.7, 10.0);  // ldoor profile
  EXPECT_GT(stats.min_degree, 5u);            // meshes have no isolated rows
}

TEST(Generators, PreferentialHeavyTail) {
  const Coo coo = make_preferential(8192, 3, 5);
  check_simple_symmetric(coo);
  const auto stats = coo.degree_stats();
  EXPECT_NEAR(stats.avg_degree, 6.0, 1.5);
  // Right-skew: the hub dwarfs the average (coAuthors: avg 6.4, max 336).
  EXPECT_GT(stats.max_degree, stats.avg_degree * 8);
  EXPECT_GT(stats.sigma, stats.avg_degree / 2);
}

TEST(Generators, RmatScaleFree) {
  const Coo coo = make_rmat(16384, 16384 * 16, 6);
  check_simple_symmetric(coo);
  const auto stats = coo.degree_stats();
  // Scale-free shape: enormous max degree relative to the mean.
  EXPECT_GT(stats.max_degree, stats.avg_degree * 20);
  EXPECT_GT(stats.sigma, stats.avg_degree);
  EXPECT_EQ(coo.num_vertices, 16384u);  // power-of-two vertex space
}

TEST(Generators, RmatEdgeBudgetScales) {
  const Coo small = make_rmat(4096, 4096 * 8, 7);
  const Coo large = make_rmat(4096, 4096 * 32, 7);
  EXPECT_GT(large.edges.size(), small.edges.size() * 2);
}

TEST(Coo, DegreesMatchEdges) {
  Coo coo;
  coo.num_vertices = 4;
  coo.edges = {{0, 1, 0}, {0, 2, 0}, {3, 0, 0}};
  EXPECT_EQ(coo.degrees(), (std::vector<std::uint32_t>{2, 0, 0, 1}));
}

TEST(Coo, CanonicalizeDropsJunk) {
  Coo coo;
  coo.num_vertices = 4;
  coo.edges = {{0, 0, 1}, {0, 1, 1}, {0, 1, 2}, {9, 1, 1}, {1, 9, 1}};
  coo.canonicalize();
  EXPECT_EQ(coo.edges.size(), 1u);
  EXPECT_EQ(coo.edges[0].src, 0u);
  EXPECT_EQ(coo.edges[0].dst, 1u);
}

TEST(Coo, UniqueUndirectedHalvesEdges) {
  const Coo coo = make_delaunay(1024, 9);
  const auto unique = coo.unique_undirected_edges();
  EXPECT_EQ(unique.size() * 2, coo.edges.size());
  for (const auto& e : unique) EXPECT_LT(e.src, e.dst);
}

TEST(Batches, RandomEdgeBatchRespectsVertexRange) {
  const Coo coo = make_road(1024, 1);
  const auto batch = random_edge_batch(coo, 5000, 11);
  EXPECT_EQ(batch.size(), 5000u);
  for (const auto& e : batch) {
    ASSERT_LT(e.src, coo.num_vertices);
    ASSERT_LT(e.dst, coo.num_vertices);
  }
}

TEST(Batches, DeletionBatchMostlyHitsLiveEdges) {
  const Coo coo = make_delaunay(4096, 2);
  const auto batch = random_deletion_batch(coo, 2000, 13);
  std::set<std::pair<std::uint32_t, std::uint32_t>> live;
  for (const auto& e : coo.edges) live.insert({e.src, e.dst});
  int hits = 0;
  for (const auto& e : batch) hits += live.count({e.src, e.dst}) ? 1 : 0;
  EXPECT_GT(hits, 1000);  // ~75% sampled from the graph
  EXPECT_LT(hits, 2000);  // but some random misses
}

TEST(Batches, VertexBatchIsDistinct) {
  const auto ids = random_vertex_batch(1000, 400, 17);
  EXPECT_EQ(ids.size(), 400u);
  const std::set<std::uint32_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 400u);
  for (auto id : ids) ASSERT_LT(id, 1000u);
}

TEST(Batches, VertexBatchClampedToPopulation) {
  const auto ids = random_vertex_batch(10, 400, 17);
  EXPECT_EQ(ids.size(), 10u);
}

TEST(Batches, SplitBatchesCoversAll) {
  std::vector<core::WeightedEdge> edges(107);
  const auto batches = split_batches(edges, 25);
  EXPECT_EQ(batches.size(), 5u);
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  EXPECT_EQ(total, 107u);
  EXPECT_EQ(batches.back().size(), 7u);
}

TEST(Suite, AllTwelveDatasetsGenerate) {
  for (const auto& name : suite_names()) {
    const Coo coo = make_dataset(name, /*scale=*/0.05);
    EXPECT_GT(coo.num_vertices, 0u) << name;
    EXPECT_GT(coo.edges.size(), 0u) << name;
    EXPECT_EQ(coo.name, name);
  }
  EXPECT_EQ(suite_names().size(), 12u);  // one analog per Table I row
}

TEST(Suite, ScaleChangesSize) {
  const Coo small = make_dataset("delaunay_n20", 0.1);
  const Coo large = make_dataset("delaunay_n20", 0.4);
  EXPECT_GT(large.num_vertices, small.num_vertices * 2);
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("not_a_dataset", 1.0), std::invalid_argument);
}

TEST(Suite, BadScaleThrows) {
  EXPECT_THROW(make_dataset("ldoor", 0.0), std::invalid_argument);
  EXPECT_THROW(make_dataset("ldoor", 100.0), std::invalid_argument);
}

TEST(Suite, SubsetsAreValidNames) {
  const auto all = suite_names();
  const std::set<std::string> valid(all.begin(), all.end());
  for (const auto& n : small_suite_names()) EXPECT_TRUE(valid.count(n)) << n;
  for (const auto& n : vertex_deletion_suite_names()) {
    EXPECT_TRUE(valid.count(n)) << n;
  }
  for (const auto& n : incremental_suite_names()) EXPECT_TRUE(valid.count(n)) << n;
  EXPECT_EQ(vertex_deletion_suite_names().size(), 4u);
  EXPECT_EQ(incremental_suite_names().size(), 4u);
}

}  // namespace
}  // namespace sg::datasets
