// Unit tests for the SlabArena: bulk contiguous allocation, dynamic slab
// alloc/free/reuse, handle resolution, statistics, and concurrent stress.
#include <gtest/gtest.h>

#include <set>
#include <type_traits>
#include <vector>

#include "src/memory/slab_arena.hpp"
#include "src/simt/thread_pool.hpp"

namespace sg::memory {
namespace {

TEST(SlabArena, ContiguousAllocationIsContiguous) {
  SlabArena arena;
  const SlabHandle first = arena.allocate_contiguous(10, 0xAAAAAAAAu);
  for (std::uint32_t i = 1; i < 10; ++i) {
    // Consecutive handles resolve to adjacent slabs of the same chunk.
    EXPECT_EQ(&arena.resolve(first + i), &arena.resolve(first) + i);
  }
}

TEST(SlabArena, ContiguousFillWordApplied) {
  SlabArena arena;
  const SlabHandle h = arena.allocate_contiguous(3, 0xDEADBEEFu);
  for (std::uint32_t s = 0; s < 3; ++s) {
    for (int w = 0; w < kWordsPerSlab; ++w) {
      ASSERT_EQ(arena.resolve(h + s).words[w], 0xDEADBEEFu);
    }
  }
}

TEST(SlabArena, ContiguousZeroCountThrows) {
  SlabArena arena;
  EXPECT_THROW(arena.allocate_contiguous(0, 0), std::invalid_argument);
}

TEST(SlabArena, ContiguousOverMaxThrows) {
  SlabArena arena;
  EXPECT_THROW(arena.allocate_contiguous(SlabArena::kChunkSlabs + 1, 0),
               std::invalid_argument);
}

TEST(SlabArena, ContiguousMaxSizeSucceeds) {
  SlabArena arena;
  EXPECT_NO_THROW(arena.allocate_contiguous(SlabArena::kChunkSlabs, 0));
}

TEST(SlabArena, BulkAllocationsSpanChunksWithoutOverlap) {
  SlabArena arena;
  std::set<SlabHandle> seen;
  // Allocate far more than one chunk's worth in odd sizes.
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t count = 1 + (i % 17);
    const SlabHandle h = arena.allocate_contiguous(count, 0);
    for (std::uint32_t s = 0; s < count; ++s) {
      ASSERT_TRUE(seen.insert(h + s).second) << "overlapping handle";
    }
  }
}

TEST(SlabArena, DynamicAllocFillsSlab) {
  SlabArena arena;
  const SlabHandle h = arena.allocate(0xFFFFFFFFu, 1);
  for (int w = 0; w < kWordsPerSlab; ++w) {
    EXPECT_EQ(arena.resolve(h).words[w], 0xFFFFFFFFu);
  }
}

TEST(SlabArena, DynamicHandlesDistinct) {
  SlabArena arena;
  std::set<SlabHandle> seen;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(seen.insert(arena.allocate(0, i)).second);
  }
}

TEST(SlabArena, FreeThenReallocateReusesSpace) {
  SlabArena arena;
  std::vector<SlabHandle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(arena.allocate(0, i));
  const auto before = arena.stats();
  for (SlabHandle h : handles) arena.free(h);
  EXPECT_EQ(arena.stats().dynamic_slabs, before.dynamic_slabs - 100);
  for (int i = 0; i < 100; ++i) arena.allocate(0, i);
  // Reuse means the reserved capacity did not grow.
  EXPECT_EQ(arena.stats().reserved_slabs, before.reserved_slabs);
}

TEST(SlabArena, IsDynamicDistinguishesPools) {
  SlabArena arena;
  const SlabHandle bulk = arena.allocate_contiguous(4, 0);
  const SlabHandle dyn = arena.allocate(0, 0);
  EXPECT_FALSE(arena.is_dynamic(bulk));
  EXPECT_TRUE(arena.is_dynamic(dyn));
}

TEST(SlabArena, StatsTrackBulkAndDynamic) {
  SlabArena arena;
  arena.allocate_contiguous(7, 0);
  const SlabHandle d1 = arena.allocate(0, 0);
  arena.allocate(0, 1);
  ArenaStats s = arena.stats();
  EXPECT_EQ(s.bulk_slabs, 7u);
  EXPECT_EQ(s.dynamic_slabs, 2u);
  EXPECT_GT(s.bytes_reserved(), 0u);
  EXPECT_EQ(s.bytes_in_use(), (7u + 2u) * sizeof(Slab));
  arena.free(d1);
  EXPECT_EQ(arena.stats().dynamic_slabs, 1u);
}

TEST(SlabArena, WritesToOneSlabDoNotLeakToNeighbors) {
  SlabArena arena;
  const SlabHandle h = arena.allocate_contiguous(3, 0x11111111u);
  for (int w = 0; w < kWordsPerSlab; ++w) arena.resolve(h + 1).words[w] = 0;
  for (int w = 0; w < kWordsPerSlab; ++w) {
    EXPECT_EQ(arena.resolve(h).words[w], 0x11111111u);
    EXPECT_EQ(arena.resolve(h + 2).words[w], 0x11111111u);
  }
}

TEST(SlabArena, ConcurrentDynamicAllocationsAreUnique) {
  SlabArena arena;
  constexpr int kPerThreadAllocs = 500;
  constexpr int kTasks = 16;
  std::vector<std::vector<SlabHandle>> per_task(kTasks);
  simt::ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](std::uint64_t t) {
    for (int i = 0; i < kPerThreadAllocs; ++i) {
      per_task[t].push_back(
          arena.allocate(static_cast<std::uint32_t>(t), static_cast<std::uint32_t>(t)));
    }
  });
  std::set<SlabHandle> seen;
  for (const auto& handles : per_task) {
    for (SlabHandle h : handles) {
      ASSERT_TRUE(seen.insert(h).second) << "duplicate handle under contention";
      // The fill word identifies the owner: no cross-thread clobbering.
      ASSERT_EQ(arena.resolve(h).words[0] < kTasks, true);
    }
  }
  EXPECT_EQ(arena.stats().dynamic_slabs,
            static_cast<std::uint64_t>(kTasks) * kPerThreadAllocs);
}

TEST(SlabArena, ConcurrentAllocFreeChurn) {
  SlabArena arena;
  simt::ThreadPool pool(8);
  pool.parallel_for(32, [&](std::uint64_t t) {
    std::vector<SlabHandle> mine;
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 20; ++i) {
        mine.push_back(arena.allocate(0, static_cast<std::uint32_t>(t)));
      }
      for (int i = 0; i < 10; ++i) {
        arena.free(mine.back());
        mine.pop_back();
      }
    }
    for (SlabHandle h : mine) arena.free(h);
  });
  EXPECT_EQ(arena.stats().dynamic_slabs, 0u);
}

TEST(SlabArena, FreeCacheRoundTripReusesHandleWithoutGrowth) {
  SlabArena arena;
  const SlabHandle first = arena.allocate(0x12345678u, 0);
  const auto before = arena.stats();
  // A free immediately followed by an allocate must hit the per-thread
  // cache: same handle back, no new chunk, exact counter bookkeeping.
  arena.free(first);
  EXPECT_EQ(arena.stats().dynamic_slabs, before.dynamic_slabs - 1);
  const SlabHandle again = arena.allocate(0x9ABCDEF0u, 0);
  EXPECT_EQ(again, first);
  EXPECT_EQ(arena.resolve(again).words[0], 0x9ABCDEF0u);
  EXPECT_EQ(arena.stats().dynamic_slabs, before.dynamic_slabs);
  EXPECT_EQ(arena.stats().reserved_slabs, before.reserved_slabs);
  arena.free(again);
}

TEST(SlabArena, FreeCacheSpillsToBitmapBeyondCapacity) {
  SlabArena arena;
  std::vector<SlabHandle> handles;
  const std::uint32_t burst = SlabArena::kFreeCacheSlots * 3;
  for (std::uint32_t i = 0; i < burst; ++i) {
    handles.push_back(arena.allocate(i, i));
  }
  for (SlabHandle h : handles) arena.free(h);  // overflows the LIFO cache
  EXPECT_EQ(arena.stats().dynamic_slabs, 0u);
  const auto reserved = arena.stats().reserved_slabs;
  std::set<SlabHandle> seen;
  for (std::uint32_t i = 0; i < burst; ++i) {
    const SlabHandle h = arena.allocate(i, i);
    ASSERT_TRUE(seen.insert(h).second) << "handle handed out twice";
  }
  // Everything came back from cache + bitmap; no growth.
  EXPECT_EQ(arena.stats().reserved_slabs, reserved);
  EXPECT_EQ(arena.stats().dynamic_slabs, burst);
}

TEST(SlabArena, ConcurrentCachedChurnNoLeaksOrDoubleHandout) {
  // Multi-threaded alloc/free churn shaped to live inside the per-thread
  // caches: each task repeatedly allocates a small burst, stamps each slab
  // with its identity, verifies the stamps survived (a double-handed-out
  // slab would be restamped by the other owner), then frees.
  SlabArena arena;
  constexpr int kTasks = 16;
  constexpr int kRounds = 200;
  constexpr int kBurst = 12;  // below kFreeCacheSlots: cache-resident churn
  std::atomic<int> stamp_errors{0};
  simt::ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](std::uint64_t t) {
    std::vector<SlabHandle> mine;
    mine.reserve(kBurst);
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kBurst; ++i) {
        const auto stamp = static_cast<std::uint32_t>(t * kRounds + round);
        mine.push_back(arena.allocate(stamp, static_cast<std::uint32_t>(t)));
      }
      for (SlabHandle h : mine) {
        const auto stamp = static_cast<std::uint32_t>(t * kRounds + round);
        for (int w = 0; w < kWordsPerSlab; ++w) {
          if (arena.resolve(h).words[w] != stamp) {
            stamp_errors.fetch_add(1);
            break;
          }
        }
      }
      for (SlabHandle h : mine) arena.free(h);
      mine.clear();
    }
  });
  EXPECT_EQ(stamp_errors.load(), 0);
  // Every handle was returned: no leaks through the caches.
  EXPECT_EQ(arena.stats().dynamic_slabs, 0u);
}

TEST(SlabArena, ColdScanResumesAfterHeavyChurn) {
  // Exercise the per-chunk hint cursor: fill far past the per-thread cache
  // so allocations hit the bitmap scan, free a scattered subset (spilling
  // the cache), then reallocate. The cursor only changes where the scan
  // STARTS, so every handle must still come back exactly once.
  SlabArena arena;
  constexpr int kSlabs = 3000;  // > kNumFreeCaches * kFreeCacheSlots
  std::vector<SlabHandle> handles;
  for (int i = 0; i < kSlabs; ++i) handles.push_back(arena.allocate(i, i));
  std::set<SlabHandle> freed;
  for (int i = 0; i < kSlabs; i += 3) {
    freed.insert(handles[i]);
    arena.free(handles[i]);
  }
  EXPECT_EQ(arena.stats().dynamic_slabs,
            static_cast<std::uint64_t>(kSlabs) - freed.size());
  const std::uint64_t reserved_before = arena.stats().reserved_slabs;
  std::set<SlabHandle> recycled;
  std::set<SlabHandle> still_live(handles.begin(), handles.end());
  for (SlabHandle h : freed) still_live.erase(h);
  for (std::size_t i = 0; i < freed.size(); ++i) {
    const SlabHandle h = arena.allocate(0xC0FFEEu, static_cast<std::uint32_t>(i));
    ASSERT_TRUE(recycled.insert(h).second) << "handle handed out twice";
    ASSERT_FALSE(still_live.count(h)) << "live slab handed out again";
    ASSERT_EQ(arena.resolve(h).words[0], 0xC0FFEEu);
  }
  // Free capacity was reused rather than growing the arena.
  EXPECT_EQ(arena.stats().reserved_slabs, reserved_before);
  EXPECT_EQ(arena.stats().dynamic_slabs, static_cast<std::uint64_t>(kSlabs));
}

// --------------------------------------------------------------------------
// Robustness: misuse checks and graceful exhaustion (docs/ROBUSTNESS.md)
// --------------------------------------------------------------------------

TEST(SlabArenaChecks, DoubleFreeRaisesArenaFault) {
  SlabArena arena;
  const SlabHandle h = arena.allocate(0, 0);
  arena.free(h);
  EXPECT_THROW(arena.free(h), ArenaFault);
}

TEST(SlabArenaChecks, DoubleFreeCaughtThroughTheCacheToo) {
  // The first free parks the handle in the per-thread cache; the second
  // free must be rejected from the CACHED state as well, not only after
  // the handle spilled to the shared bitmap.
  SlabArena arena;
  std::vector<SlabHandle> burst;
  for (std::uint32_t i = 0; i < 4; ++i) burst.push_back(arena.allocate(i, 0));
  arena.free(burst[2]);
  EXPECT_THROW(arena.free(burst[2]), ArenaFault);
  // The arena survives the fault: the rest of the burst frees cleanly.
  arena.free(burst[0]);
  arena.free(burst[1]);
  arena.free(burst[3]);
}

TEST(SlabArenaChecks, FreeingBulkSlabRaisesArenaFault) {
  SlabArena arena;
  const SlabHandle bulk = arena.allocate_contiguous(4, 0);
  EXPECT_THROW(arena.free(bulk), ArenaFault);
  // The dynamic free path never takes base slabs (free_contiguous is the
  // only sanctioned bulk return, §IV-D2): the fault left them intact.
  EXPECT_EQ(arena.stats().bulk_slabs, 4u);
}

TEST(SlabArenaChecks, ChecksOffIgnoresMisuseInsteadOfThrowing) {
  SlabArena arena;
  arena.set_checks(false);
  const SlabHandle bulk = arena.allocate_contiguous(1, 0);
  EXPECT_NO_THROW(arena.free(bulk));
#ifdef NDEBUG
  // Double free of a bitmap-resident dynamic slab: ignored when checks are
  // off (release builds only; debug builds still assert).
  const SlabHandle h = arena.allocate(0, 0);
  arena.free(h);
  EXPECT_NO_THROW(arena.free(h));
#endif
}

TEST(SlabArenaLimits, AllocateThrowsArenaExhaustedAtChunkLimit) {
  SlabArena arena;
  arena.set_chunk_limit(1);  // one 8192-slab chunk, then hard stop
  std::vector<SlabHandle> handles;
  try {
    for (std::uint64_t i = 0; i <= SlabArena::kChunkSlabs; ++i) {
      handles.push_back(arena.allocate(0, 0));
    }
    FAIL() << "allocation past the chunk limit must throw";
  } catch (const ArenaExhausted&) {
  }
  EXPECT_EQ(handles.size(), SlabArena::kChunkSlabs);
  // ArenaExhausted derives bad_alloc for generic handlers.
  static_assert(std::is_base_of_v<std::bad_alloc, ArenaExhausted>);
  // Freeing makes room again: exhaustion is a state, not a poisoning.
  arena.free(handles.back());
  EXPECT_NO_THROW(arena.allocate(0, 0));
}

TEST(SlabArenaLimits, TryAllocateReportsExhaustionAsNullSlab) {
  SlabArena arena;
  arena.set_chunk_limit(1);
  std::uint64_t granted = 0;
  while (arena.try_allocate(0, 0) != kNullSlab) ++granted;
  EXPECT_EQ(granted, SlabArena::kChunkSlabs);
  // The status-returning path must not disturb counters on failure.
  EXPECT_EQ(arena.stats().dynamic_slabs, granted);
}

TEST(SlabArenaLimits, ContiguousAllocationRespectsChunkLimit) {
  SlabArena arena;
  arena.set_chunk_limit(1);
  EXPECT_NO_THROW(arena.allocate_contiguous(SlabArena::kChunkSlabs, 0));
  EXPECT_THROW(arena.allocate_contiguous(1, 0), ArenaExhausted);
}

TEST(SlabArenaLimits, RaisingTheLimitResumesGrowth) {
  SlabArena arena;
  arena.set_chunk_limit(1);
  arena.allocate_contiguous(SlabArena::kChunkSlabs, 0);
  EXPECT_THROW(arena.allocate(0, 0), ArenaExhausted);
  arena.set_chunk_limit(2);
  EXPECT_NO_THROW(arena.allocate(0, 0));
}

// --------------------------------------------------------------------------
// Compaction / shrink primitives (docs/WORKLOADS.md "Sliding-window")
// --------------------------------------------------------------------------

TEST(SlabArenaCompaction, ReleaseEmptyChunksReturnsMemory) {
  SlabArena arena;
  std::vector<SlabHandle> handles;
  // Span several dynamic chunks, then free everything.
  const std::uint32_t total = SlabArena::kChunkSlabs * 3;
  for (std::uint32_t i = 0; i < total; ++i) handles.push_back(arena.allocate(0, 0));
  const std::uint32_t live_before = arena.live_chunks();
  const std::uint64_t reserved_before = arena.stats().reserved_slabs;
  for (SlabHandle h : handles) arena.free(h);
  const std::uint32_t released = arena.release_empty_chunks();
  EXPECT_GE(released, 3u);
  EXPECT_EQ(arena.live_chunks(), live_before - released);
  EXPECT_LT(arena.stats().reserved_slabs, reserved_before);
  EXPECT_EQ(arena.stats().dynamic_slabs, 0u);
}

TEST(SlabArenaCompaction, KeepFreeRetainsAnAllocationReserve) {
  SlabArena arena;
  std::vector<SlabHandle> handles;
  for (std::uint32_t i = 0; i < SlabArena::kChunkSlabs * 2; ++i) {
    handles.push_back(arena.allocate(0, 0));
  }
  for (SlabHandle h : handles) arena.free(h);
  const std::uint32_t live_before = arena.live_chunks();
  arena.release_empty_chunks(/*keep_free=*/1);
  // Exactly one fully-free chunk stays resident as the reserve.
  EXPECT_EQ(arena.live_chunks(), live_before - 1);
  std::uint32_t fully_free = 0;
  for (const auto& occ : arena.dynamic_chunk_occupancy()) {
    if (occ.used_slabs == 0) ++fully_free;
  }
  EXPECT_EQ(fully_free, 1u);
}

TEST(SlabArenaCompaction, ReleasedChunkSlotsAreRecycledByGrowth) {
  SlabArena arena;
  std::vector<SlabHandle> handles;
  for (std::uint32_t i = 0; i < SlabArena::kChunkSlabs * 2; ++i) {
    handles.push_back(arena.allocate(0, 0));
  }
  for (SlabHandle h : handles) arena.free(h);
  ASSERT_GE(arena.release_empty_chunks(), 2u);
  const std::uint32_t live_after_release = arena.live_chunks();
  // Growth reuses the vacated chunk indices instead of extending the
  // directory: handles stay in the already-addressed range and the live
  // count returns to exactly what one chunk's worth of slabs needs.
  std::set<SlabHandle> seen;
  for (std::uint32_t i = 0; i < SlabArena::kChunkSlabs; ++i) {
    const SlabHandle h = arena.allocate(0xFACEFEEDu, i);
    ASSERT_TRUE(seen.insert(h).second);
    ASSERT_EQ(arena.resolve(h).words[0], 0xFACEFEEDu);
  }
  EXPECT_EQ(arena.live_chunks(), live_after_release + 1);
}

TEST(SlabArenaCompaction, DrainFreeCachesMakesOccupancyExact) {
  SlabArena arena;
  std::vector<SlabHandle> handles;
  for (int i = 0; i < 16; ++i) handles.push_back(arena.allocate(0, 0));
  // Cached frees keep the bitmap bits set: occupancy still counts them.
  for (SlabHandle h : handles) arena.free(h);
  auto occ = arena.dynamic_chunk_occupancy();
  ASSERT_EQ(occ.size(), 1u);
  EXPECT_GT(occ[0].used_slabs, 0u);
  arena.drain_free_caches();
  occ = arena.dynamic_chunk_occupancy();
  ASSERT_EQ(occ.size(), 1u);
  EXPECT_EQ(occ[0].used_slabs, 0u);
  EXPECT_EQ(arena.stats().dynamic_slabs, 0u);
}

TEST(SlabArenaCompaction, AllocateAvoidingSkipsExcludedChunks) {
  SlabArena arena;
  // Materialize two dynamic chunks with room in both.
  std::vector<SlabHandle> handles;
  for (std::uint32_t i = 0; i < SlabArena::kChunkSlabs + 8; ++i) {
    handles.push_back(arena.allocate(0, 0));
  }
  for (std::size_t i = 0; i < 128; ++i) arena.free(handles[i]);
  arena.drain_free_caches();
  const std::uint32_t victim = SlabArena::chunk_index_of(handles.front());
  std::vector<std::uint8_t> excluded(victim + 1, 0);
  excluded[victim] = 1;
  for (int i = 0; i < 64; ++i) {
    const SlabHandle h = arena.allocate_avoiding(0xAB, excluded);
    ASSERT_NE(SlabArena::chunk_index_of(h), victim)
        << "migration target landed in the excluded chunk";
  }
}

TEST(SlabArenaCompaction, FreeDirectEmptiesChunkWithoutDrain) {
  SlabArena arena;
  std::vector<SlabHandle> handles;
  for (int i = 0; i < 32; ++i) handles.push_back(arena.allocate(0, 0));
  for (SlabHandle h : handles) arena.free_direct(h);
  // No drain needed: direct frees hit the bitmap, so the chunk is already
  // provably empty and releasable.
  const auto occ = arena.dynamic_chunk_occupancy();
  ASSERT_EQ(occ.size(), 1u);
  EXPECT_EQ(occ[0].used_slabs, 0u);
  EXPECT_EQ(arena.release_empty_chunks(), 1u);
}

TEST(SlabArenaCompaction, FreeDirectStillCatchesDoubleFree) {
  SlabArena arena;
  const SlabHandle h = arena.allocate(0, 0);
  arena.free_direct(h);
  EXPECT_THROW(arena.free_direct(h), ArenaFault);
}

// --------------------------------------------------------------------------
// Bulk range recycling (free_contiguous): the sanctioned way a table
// REBUILD returns its base array. Without it, every rehash under
// sliding-window churn leaks one abandoned range (§IV-D2's caveat).
// --------------------------------------------------------------------------

TEST(SlabArenaBulkRecycle, FreedRangeIsReusedByNextAllocation) {
  SlabArena arena;
  const SlabHandle a = arena.allocate_contiguous(10, 0);
  arena.allocate_contiguous(10, 0);  // keeps the cursor past `a`
  const std::uint64_t bulk_before = arena.stats().bulk_slabs;
  arena.free_contiguous(a, 10);
  EXPECT_EQ(arena.stats().bulk_slabs, bulk_before - 10);
  // Best-fit reuse hands the SAME range back instead of bumping.
  EXPECT_EQ(arena.allocate_contiguous(10, 0xFEEDF00Du), a);
  EXPECT_EQ(arena.stats().bulk_slabs, bulk_before);
  // The recycled slabs were re-initialized with the new fill word.
  for (std::uint32_t s = 0; s < 10; ++s) {
    ASSERT_EQ(arena.resolve(a + s).words[0], 0xFEEDF00Du);
  }
}

TEST(SlabArenaBulkRecycle, PartialReuseCarvesFromTheFront) {
  SlabArena arena;
  const SlabHandle a = arena.allocate_contiguous(10, 0);
  arena.allocate_contiguous(1, 0);
  arena.free_contiguous(a, 10);
  // A smaller request carves the front; the remainder stays reusable.
  EXPECT_EQ(arena.allocate_contiguous(4, 0), a);
  EXPECT_EQ(arena.allocate_contiguous(6, 0), a + 4);
}

TEST(SlabArenaBulkRecycle, BestFitPrefersTheSmallestSufficientRange) {
  SlabArena arena;
  const SlabHandle big = arena.allocate_contiguous(8, 0);
  arena.allocate_contiguous(1, 0);  // separator: ranges must not coalesce
  const SlabHandle small = arena.allocate_contiguous(4, 0);
  arena.allocate_contiguous(1, 0);
  arena.free_contiguous(big, 8);
  arena.free_contiguous(small, 4);
  // 3 slabs fit both; best-fit picks the 4-range, leaving the 8 whole.
  EXPECT_EQ(arena.allocate_contiguous(3, 0), small);
  EXPECT_EQ(arena.allocate_contiguous(8, 0), big);
}

TEST(SlabArenaBulkRecycle, AdjacentFreesCoalesceIntoOneRange) {
  SlabArena arena;
  const SlabHandle a = arena.allocate_contiguous(4, 0);
  const SlabHandle b = arena.allocate_contiguous(4, 0);
  const SlabHandle c = arena.allocate_contiguous(4, 0);
  arena.allocate_contiguous(1, 0);
  ASSERT_EQ(b, a + 4);
  ASSERT_EQ(c, a + 8);
  // Free outer ranges first; the middle free must merge with BOTH sides,
  // or the 12-slab request below would not fit any single range.
  arena.free_contiguous(a, 4);
  arena.free_contiguous(c, 4);
  arena.free_contiguous(b, 4);
  EXPECT_EQ(arena.allocate_contiguous(12, 0), a);
}

TEST(SlabArenaBulkRecycle, DoubleFreeOfRangeRaisesArenaFault) {
  SlabArena arena;
  const SlabHandle a = arena.allocate_contiguous(6, 0);
  arena.allocate_contiguous(1, 0);
  arena.free_contiguous(a, 6);
  EXPECT_THROW(arena.free_contiguous(a, 6), ArenaFault);
  // Overlapping partial frees are the same bug and raise the same fault.
  EXPECT_THROW(arena.free_contiguous(a + 2, 2), ArenaFault);
}

TEST(SlabArenaBulkRecycle, FreeingDynamicSlabsAsARangeRaisesArenaFault) {
  SlabArena arena;
  const SlabHandle dyn = arena.allocate(0, 0);
  EXPECT_THROW(arena.free_contiguous(dyn, 1), ArenaFault);
}

TEST(SlabArenaBulkRecycle, FullyFreedBulkChunkIsReleased) {
  SlabArena arena;
  const SlabHandle first = arena.allocate_contiguous(SlabArena::kChunkSlabs, 0);
  // Open a second bulk chunk so the first is no longer the bump target
  // (the current chunk is never released).
  arena.allocate_contiguous(1, 0);
  arena.free_contiguous(first, SlabArena::kChunkSlabs);
  const std::uint32_t live_before = arena.live_chunks();
  EXPECT_EQ(arena.release_empty_chunks(/*keep_free=*/0), 1u);
  EXPECT_EQ(arena.live_chunks(), live_before - 1);
  // The released chunk's free ranges were purged with it: a fresh
  // full-chunk request opens a new chunk rather than resolving into
  // unmapped memory.
  const SlabHandle again =
      arena.allocate_contiguous(SlabArena::kChunkSlabs, 0xCAFED00Du);
  EXPECT_EQ(arena.resolve(again).words[0], 0xCAFED00Du);
}

TEST(SlabArena, MixedBulkAndDynamicCoexist) {
  SlabArena arena;
  const SlabHandle bulk = arena.allocate_contiguous(100, 0xB0B0B0B0u);
  std::vector<SlabHandle> dynamics;
  for (int i = 0; i < 300; ++i) dynamics.push_back(arena.allocate(0xD0D0D0D0u, i));
  for (std::uint32_t s = 0; s < 100; ++s) {
    ASSERT_EQ(arena.resolve(bulk + s).words[0], 0xB0B0B0B0u);
  }
  for (SlabHandle h : dynamics) {
    ASSERT_EQ(arena.resolve(h).words[0], 0xD0D0D0D0u);
  }
}

}  // namespace
}  // namespace sg::memory
