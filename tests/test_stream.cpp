// Temporal streaming: Dataset batch preparation, sliding-window aging
// (DynGraph::delete_edges_older_than), arena compaction through the graph,
// and the stream::Harness epoch loop — including the differential check
// against a never-aged graph filtered by timestamp, and the scheduled
// maintenance pipeline the TSan job races.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/stream/harness.hpp"
#include "src/stream/temporal.hpp"

namespace sg::stream {
namespace {

core::GraphConfig map_config(std::uint32_t capacity, bool undirected = false,
                             bool scheduler = false) {
  core::GraphConfig cfg;
  cfg.vertex_capacity = capacity;
  cfg.undirected = undirected;
  cfg.phase_scheduler = scheduler;
  return cfg;
}

/// A deterministic self-loop-free stream: vertices in [0, n), ts = arrival
/// index, duplicates occur naturally once edges > n^2 / k.
std::vector<TemporalEdge> random_stream(std::size_t edges, core::VertexId n,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<core::VertexId> pick(0, n - 1);
  std::vector<TemporalEdge> out;
  out.reserve(edges);
  while (out.size() < edges) {
    const core::VertexId src = pick(rng);
    const core::VertexId dst = pick(rng);
    if (src == dst) continue;
    out.push_back({src, dst, static_cast<core::Weight>(out.size())});
  }
  return out;
}

/// Newest timestamp per directed pair — the reference a correctly aged
/// graph must match after filtering by the final window threshold.
std::map<std::pair<core::VertexId, core::VertexId>, core::Weight>
newest_per_pair(const std::vector<TemporalEdge>& stream) {
  std::map<std::pair<core::VertexId, core::VertexId>, core::Weight> newest;
  for (const TemporalEdge& e : stream) {
    auto [it, inserted] = newest.try_emplace({e.src, e.dst}, e.ts);
    if (!inserted && e.ts > it->second) it->second = e.ts;
  }
  return newest;
}

// ---------------------------------------------------------------------------
// Dataset: batch preparation modes
// ---------------------------------------------------------------------------

TEST(StreamDataset, RejectsEmptyStreamAndZeroBatch) {
  EXPECT_THROW(Dataset({}, 8), std::invalid_argument);
  EXPECT_THROW(Dataset({{0, 1, 0}}, 0), std::invalid_argument);
}

TEST(StreamDataset, FromCooAssignsArrivalTimestamps) {
  datasets::Coo coo;
  coo.name = "tiny";
  coo.num_vertices = 8;
  coo.edges = {{1, 2}, {3, 4}, {5, 6}};
  const Dataset ds = Dataset::from_coo(coo, 2);
  EXPECT_EQ(ds.num_edges(), 3u);
  EXPECT_EQ(ds.num_batches(), 2u);
  EXPECT_EQ(ds.max_vertex_id(), 6u);
  for (std::size_t i = 0; i < ds.edges().size(); ++i) {
    EXPECT_EQ(ds.edges()[i].ts, static_cast<core::Weight>(i));
  }
}

TEST(StreamDataset, UnsortedBatchIsTheArrivalSlice) {
  const std::vector<TemporalEdge> stream = {
      {5, 6, 0}, {1, 2, 1}, {3, 4, 2}, {1, 2, 3}};
  const Dataset ds(stream, 2);
  const auto b1 = ds.batch(1, SortMode::kUnsorted);
  ASSERT_EQ(b1.size(), 2u);
  EXPECT_EQ(b1[0].src, 3u);
  EXPECT_EQ(b1[1].src, 1u);
  EXPECT_EQ(b1[1].weight, 3u);  // weight carries the timestamp
}

TEST(StreamDataset, PresortDedupsKeepingNewestTimestamp) {
  const std::vector<TemporalEdge> stream = {
      {1, 2, 0}, {3, 4, 1}, {1, 2, 2}, {0, 9, 3}};
  const Dataset ds(stream, 4);
  const auto batch = ds.batch(0, SortMode::kPresort);
  ASSERT_EQ(batch.size(), 3u);  // (1,2) deduplicated
  EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end(),
                             [](const core::WeightedEdge& a,
                                const core::WeightedEdge& b) {
                               return a.src != b.src ? a.src < b.src
                                                     : a.dst < b.dst;
                             }));
  for (const auto& e : batch) {
    if (e.src == 1 && e.dst == 2) EXPECT_EQ(e.weight, 2u);  // newest kept
  }
}

TEST(StreamDataset, SnapshotIsTheCumulativeDedupedPrefix) {
  const std::vector<TemporalEdge> stream = {
      {1, 2, 0}, {3, 4, 1}, {1, 2, 2}, {5, 6, 3}};
  const Dataset ds(stream, 2);
  const auto snap0 = ds.batch(0, SortMode::kSnapshot);
  EXPECT_EQ(snap0.size(), 2u);  // just batch 0
  const auto snap1 = ds.batch(1, SortMode::kSnapshot);
  ASSERT_EQ(snap1.size(), 3u);  // (1,2) appears once, newest ts
  for (const auto& e : snap1) {
    if (e.src == 1 && e.dst == 2) EXPECT_EQ(e.weight, 2u);
  }
}

TEST(StreamDataset, TimestampForWindowMatchesDynoGraphRule) {
  std::vector<TemporalEdge> stream;
  for (core::Weight i = 0; i < 100; ++i) stream.push_back({i, i + 1, i});
  const Dataset ds(stream, 10);
  // Stream shorter than the window: nothing ages (oldest ts back).
  EXPECT_EQ(ds.timestamp_for_window(3, 0.5), 0u);
  // At the end: the newest half [50, 99] stays live.
  EXPECT_EQ(ds.timestamp_for_window(9, 0.5), 50u);
  // Mid-stream: after batch 7 (end = 80), window of 50 → threshold ts 30.
  EXPECT_EQ(ds.timestamp_for_window(7, 0.5), 30u);
  EXPECT_THROW(ds.timestamp_for_window(0, 0.0), std::invalid_argument);
  EXPECT_THROW(ds.timestamp_for_window(0, 1.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// delete_edges_older_than: threshold edge cases
// ---------------------------------------------------------------------------

TEST(AgeOut, ThresholdEqualsOldestDeletesNothing) {
  core::DynGraphMap g(map_config(16));
  std::vector<core::WeightedEdge> batch = {{1, 2, 5}, {3, 4, 7}, {5, 6, 9}};
  g.insert_edges(batch);
  // Strict `ts < threshold`: the edge AT the threshold survives.
  EXPECT_EQ(g.delete_edges_older_than(5), 0u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(AgeOut, ThresholdEqualsNewestKeepsOnlyNewest) {
  core::DynGraphMap g(map_config(16));
  std::vector<core::WeightedEdge> batch = {{1, 2, 5}, {3, 4, 7}, {5, 6, 9}};
  g.insert_edges(batch);
  EXPECT_EQ(g.delete_edges_older_than(9), 2u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_FALSE(g.edge_exists(3, 4));
  EXPECT_TRUE(g.edge_exists(5, 6));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(AgeOut, ThresholdPastNewestEmptiesTheGraph) {
  core::DynGraphMap g(map_config(16));
  std::vector<core::WeightedEdge> batch = {{1, 2, 5}, {3, 4, 7}};
  g.insert_edges(batch);
  EXPECT_EQ(g.delete_edges_older_than(100), 2u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(AgeOut, DuplicateTimestampsAgeTogether) {
  core::DynGraphMap g(map_config(16));
  // Two epochs land edges with the SAME timestamp (coarse clocks do this).
  std::vector<core::WeightedEdge> epoch1 = {{1, 2, 4}, {3, 4, 4}};
  std::vector<core::WeightedEdge> epoch2 = {{5, 6, 4}, {7, 8, 9}};
  g.insert_edges(epoch1);
  g.insert_edges(epoch2);
  // Threshold at the duplicate ts: all three survive (strict <) ...
  EXPECT_EQ(g.delete_edges_older_than(4), 0u);
  // ... one past it: all three retire in one sweep, across both epochs.
  EXPECT_EQ(g.delete_edges_older_than(5), 3u);
  EXPECT_TRUE(g.edge_exists(7, 8));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(AgeOut, ReinsertionRefreshesTimestampAndSurvives) {
  core::DynGraphMap g(map_config(16));
  std::vector<core::WeightedEdge> old = {{1, 2, 1}, {3, 4, 2}};
  g.insert_edges(old);
  // Same epoch re-inserts (1,2) with a fresh timestamp: most-recent-wins
  // replacement means the aging pass sees ts 10, not ts 1.
  std::vector<core::WeightedEdge> fresh = {{1, 2, 10}};
  g.insert_edges(fresh);
  EXPECT_EQ(g.delete_edges_older_than(5), 1u);  // only (3,4) retires
  EXPECT_TRUE(g.edge_exists(1, 2));
  EXPECT_EQ(g.edge_weight(1, 2).value, 10u);
}

TEST(AgeOut, AgedEdgeCanBeReinsertedSameEpoch) {
  core::DynGraphMap g(map_config(16));
  std::vector<core::WeightedEdge> old = {{1, 2, 1}};
  g.insert_edges(old);
  EXPECT_EQ(g.delete_edges_older_than(5), 1u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  // Re-insert after aging, inside the same logical epoch: counts as new.
  std::vector<core::WeightedEdge> again = {{1, 2, 6}};
  EXPECT_EQ(g.insert_edges(again), 1u);
  EXPECT_TRUE(g.edge_exists(1, 2));
  EXPECT_EQ(g.edge_weight(1, 2).value, 6u);
  // And it now survives the same threshold.
  EXPECT_EQ(g.delete_edges_older_than(5), 0u);
}

TEST(AgeOut, UndirectedAgingRetiresBothDirections) {
  core::DynGraphMap g(map_config(16, /*undirected=*/true));
  std::vector<core::WeightedEdge> batch = {{1, 2, 1}, {3, 4, 9}};
  g.insert_edges(batch);
  // Directed-edge counting, matching insert/delete: the mirror counts too.
  EXPECT_EQ(g.delete_edges_older_than(5), 2u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_FALSE(g.edge_exists(2, 1));
  EXPECT_TRUE(g.edge_exists(3, 4));
  EXPECT_TRUE(g.edge_exists(4, 3));
}

// ---------------------------------------------------------------------------
// Differential: harness-aged graph == never-aged graph filtered by ts
// ---------------------------------------------------------------------------

TEST(StreamDifferential, AgedGraphMatchesTimestampFilteredReference) {
  const std::size_t kEdges = 20000;
  const core::VertexId kVerts = 256;  // dense: plenty of re-inserted pairs
  const std::vector<TemporalEdge> stream = random_stream(kEdges, kVerts, 7);
  Dataset ds(stream, 1000);

  HarnessConfig cfg;
  cfg.sort_mode = SortMode::kPresort;
  cfg.window_frac = 0.25;
  cfg.compact_every = 3;
  cfg.graph = map_config(kVerts, false, /*scheduler=*/true);
  Harness harness(ds, cfg);
  const auto epochs = harness.run();
  ASSERT_EQ(epochs.size(), ds.num_batches());

  const core::Weight threshold =
      ds.timestamp_for_window(ds.num_batches() - 1, cfg.window_frac);
  const auto reference = newest_per_pair(stream);
  std::uint64_t expected_live = 0;
  for (const auto& [pair, ts] : reference) {
    const bool live = harness.graph().edge_exists(pair.first, pair.second);
    // Window semantics: a pair is live iff its NEWEST observation is at or
    // after the final threshold (earlier thresholds are smaller, so they
    // cannot have retired a surviving edge).
    EXPECT_EQ(live, ts >= threshold)
        << "edge (" << pair.first << ", " << pair.second << ") ts " << ts
        << " threshold " << threshold;
    if (ts >= threshold) {
      ++expected_live;
      EXPECT_EQ(harness.graph().edge_weight(pair.first, pair.second).value, ts);
    }
  }
  EXPECT_EQ(harness.graph().num_edges(), expected_live);
  // Conservation: inserted-unique minus aged-out equals the survivors.
  std::uint64_t inserted = 0, aged = 0;
  for (const auto& e : epochs) {
    inserted += e.inserted;
    aged += e.aged_out;
  }
  EXPECT_EQ(inserted - aged, expected_live);
}

TEST(StreamDifferential, UnsortedAndPresortConverge) {
  const std::vector<TemporalEdge> stream = random_stream(8000, 128, 11);
  Dataset ds(stream, 500);
  std::vector<std::uint64_t> live;
  for (const SortMode mode : {SortMode::kUnsorted, SortMode::kPresort}) {
    HarnessConfig cfg;
    cfg.sort_mode = mode;
    cfg.window_frac = 0.5;
    cfg.graph = map_config(128);
    Harness h(ds, cfg);
    h.run();
    live.push_back(h.graph().num_edges());
  }
  EXPECT_EQ(live[0], live[1]);
}

TEST(StreamHarness, AppendOnlyIngestKeepsEverything) {
  const std::vector<TemporalEdge> stream = random_stream(5000, 200, 3);
  Dataset ds(stream, 512);
  HarnessConfig cfg;
  cfg.window_frac = 0.0;  // aging disabled
  cfg.graph = map_config(200);
  Harness h(ds, cfg);
  const auto epochs = h.run();
  EXPECT_EQ(h.graph().num_edges(), newest_per_pair(stream).size());
  for (const auto& e : epochs) {
    EXPECT_EQ(e.aged_out, 0u);
    EXPECT_EQ(e.age_threshold, 0u);
  }
}

TEST(StreamHarness, SnapshotRebuildMatchesAppendOnlyIncremental) {
  const std::vector<TemporalEdge> stream = random_stream(6000, 150, 5);
  Dataset ds(stream, 600);
  HarnessConfig snap_cfg;
  snap_cfg.sort_mode = SortMode::kSnapshot;
  snap_cfg.graph = map_config(150);
  Harness snap(ds, snap_cfg);
  snap.run();

  HarnessConfig inc_cfg;
  inc_cfg.sort_mode = SortMode::kPresort;
  inc_cfg.window_frac = 0.0;
  inc_cfg.graph = map_config(150);
  Harness inc(ds, inc_cfg);
  inc.run();

  EXPECT_EQ(snap.graph().num_edges(), inc.graph().num_edges());
  for (const auto& [pair, ts] : newest_per_pair(stream)) {
    ASSERT_TRUE(snap.graph().edge_exists(pair.first, pair.second));
    EXPECT_EQ(snap.graph().edge_weight(pair.first, pair.second).value, ts);
    EXPECT_EQ(inc.graph().edge_weight(pair.first, pair.second).value, ts);
  }
}

TEST(StreamHarness, AnalyticsHookRunsFencedEveryEpoch) {
  const std::vector<TemporalEdge> stream = random_stream(4000, 100, 13);
  Dataset ds(stream, 800);
  HarnessConfig cfg;
  cfg.window_frac = 0.5;
  cfg.graph = map_config(100, false, /*scheduler=*/true);
  Harness h(ds, cfg);
  std::vector<std::uint64_t> observed;
  const auto epochs = h.run(
      [&observed](const core::DynGraphMap& g) { observed.push_back(g.num_edges()); });
  ASSERT_EQ(observed.size(), epochs.size());
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    // The fenced hook sees exactly the post-ingest, post-aging state the
    // epoch stats report.
    EXPECT_EQ(observed[i], epochs[i].live_edges);
  }
}

// ---------------------------------------------------------------------------
// Compaction through the graph: chains survive migration, memory shrinks
// ---------------------------------------------------------------------------

TEST(StreamCompaction, CompactReleasesChunksAndPreservesEdges) {
  // Long chains (few sources, many destinations) spill thousands of
  // overflow slabs across several dynamic chunks; aging the bulk of the
  // stream then strands those chunks nearly empty.
  constexpr core::VertexId kSources = 48;
  constexpr core::VertexId kDests = 4096;
  core::GraphConfig gcfg = map_config(kDests);
  gcfg.compact_keep_free_chunks = 0;  // no reserve: every emptied chunk goes
  core::DynGraphMap g(gcfg);
  std::vector<core::WeightedEdge> batch;
  core::Weight ts = 0;
  for (core::VertexId s = 0; s < kSources; ++s) {
    for (core::VertexId d = 0; d < kDests; ++d) {
      if (s == d) continue;
      batch.push_back({s, d, ts++});
    }
  }
  g.insert_edges(batch);
  const core::Weight threshold = ts - ts / 20;  // keep the newest 5%
  const std::uint64_t aged = g.delete_edges_older_than(threshold);
  EXPECT_GT(aged, 0u);
  const std::uint64_t live = g.num_edges();

  const auto before = g.arena_stats();
  const auto stats = g.compact();
  EXPECT_GT(stats.victim_chunks, 0u);
  EXPECT_GT(stats.released_chunks, 0u);
  EXPECT_LT(stats.chunks_after, stats.chunks_before);
  EXPECT_EQ(g.last_compact_stats().released_chunks, stats.released_chunks);
  EXPECT_LT(g.arena_stats().reserved_slabs, before.reserved_slabs);

  // Migration must not lose or corrupt a single surviving edge.
  EXPECT_EQ(g.num_edges(), live);
  for (const core::WeightedEdge& e : batch) {
    const bool expect_live = e.weight >= threshold;
    ASSERT_EQ(g.edge_exists(e.src, e.dst), expect_live);
    if (expect_live) ASSERT_EQ(g.edge_weight(e.src, e.dst).value, e.weight);
  }
  // And the compacted graph keeps working: inserts + queries as usual.
  std::vector<core::WeightedEdge> more = {{1, 2, ts}, {2, 3, ts}};
  EXPECT_EQ(g.insert_edges(more), 2u);
  EXPECT_TRUE(g.edge_exists(1, 2));
}

TEST(StreamCompaction, CompactOnDenseGraphIsANoop) {
  core::DynGraphMap g(map_config(64));
  std::vector<core::WeightedEdge> batch;
  for (core::VertexId s = 0; s < 32; ++s) batch.push_back({s, s + 1, s});
  g.insert_edges(batch);
  const std::uint64_t edges_before = g.num_edges();
  const auto stats = g.compact();
  EXPECT_EQ(stats.migrated_slabs, 0u);
  EXPECT_EQ(g.num_edges(), edges_before);
}

TEST(StreamCompaction, CompactOccupancyOutOfRangeThrows) {
  core::GraphConfig cfg = map_config(16);
  cfg.compact_occupancy = 1.5;
  EXPECT_THROW(core::DynGraphMap g(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scheduled maintenance under load (the TSan-raced pipeline)
// ---------------------------------------------------------------------------

TEST(StreamScheduled, CompactionDuringPendingSubmissions) {
  // Pipeline inserts, age-outs, compactions, and analytics WITHOUT waiting
  // between submissions: maintenance phases must fence correctly against
  // the queued mutations on either side. TSan runs this test in CI.
  const core::VertexId kVerts = 512;
  core::DynGraphMap g(map_config(kVerts, false, /*scheduler=*/true));
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<core::VertexId> pick(0, kVerts - 1);

  std::vector<std::future<std::uint64_t>> counts;
  std::vector<std::future<void>> fences;
  core::Weight ts = 0;
  std::uint64_t probes_sum = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<core::WeightedEdge> batch;
    for (int i = 0; i < 2000; ++i) {
      const core::VertexId s = pick(rng);
      const core::VertexId d = pick(rng);
      if (s == d) continue;
      batch.push_back({s, d, ts++});
    }
    counts.push_back(g.submit_insert(std::move(batch)));
    if (round % 2 == 1) {
      counts.push_back(g.submit_age_out(ts - 4000 < ts ? ts - 4000 : 0));
      counts.push_back(g.submit_compact());
    }
    fences.push_back(g.submit_analytics(
        [&g, &probes_sum] { probes_sum += g.num_edges(); }));
  }
  for (auto& f : counts) EXPECT_NO_THROW(f.get());
  for (auto& f : fences) EXPECT_NO_THROW(f.get());
  // Steady state: everything older than the last window threshold is gone.
  const std::uint64_t live = g.submit_age_out(ts - 4000).get();
  (void)live;
  EXPECT_LE(g.num_edges(), 4000u);
  EXPECT_GT(probes_sum, 0u);
}

TEST(StreamScheduled, InlineModeMatchesScheduledMode) {
  // The same epoch script through phase_scheduler=true and =false must
  // land on identical graphs — inline_submit is the differential oracle.
  const std::vector<TemporalEdge> stream = random_stream(6000, 128, 21);
  Dataset ds(stream, 750);
  std::vector<std::uint64_t> live;
  std::vector<std::uint64_t> aged_total;
  for (const bool scheduled : {false, true}) {
    HarnessConfig cfg;
    cfg.window_frac = 0.25;
    cfg.compact_every = 2;
    cfg.graph = map_config(128, false, scheduled);
    Harness h(ds, cfg);
    const auto epochs = h.run();
    live.push_back(h.graph().num_edges());
    std::uint64_t aged = 0;
    for (const auto& e : epochs) aged += e.aged_out;
    aged_total.push_back(aged);
  }
  EXPECT_EQ(live[0], live[1]);
  EXPECT_EQ(aged_total[0], aged_total[1]);
}

// ---------------------------------------------------------------------------
// Bounded memory: the acceptance gate's flatness property, in miniature
// ---------------------------------------------------------------------------

TEST(StreamSteadyState, LiveChunksStayFlatAcrossWindowSlides) {
  const std::vector<TemporalEdge> stream = random_stream(60000, 96, 17);
  Dataset ds(stream, 2000);
  HarnessConfig cfg;
  cfg.window_frac = 0.2;
  cfg.compact_every = 2;
  cfg.graph = map_config(96);
  Harness h(ds, cfg);
  const auto epochs = h.run();
  // Steady tail: window full, sliding. Chunk count must be flat within the
  // acceptance bar (10%), not trending with the total ingested volume.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (std::size_t i = epochs.size() / 2; i < epochs.size(); ++i) {
    lo = std::min(lo, epochs[i].arena_chunks);
    hi = std::max(hi, epochs[i].arena_chunks);
  }
  ASSERT_GT(lo, 0u);
  EXPECT_LE(double(hi) / double(lo), 1.10)
      << "live chunks grew across the steady-state window";
}

}  // namespace
}  // namespace sg::stream
