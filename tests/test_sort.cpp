// Tests for the segmented-sort substrate (the CUB substitute of Table VIII).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/sort/segmented_sort.hpp"
#include "src/util/prng.hpp"

namespace sg::sort {
namespace {

struct Segmented {
  std::vector<std::uint32_t> values;
  std::vector<std::uint64_t> offsets;
};

Segmented random_segments(std::uint32_t num_segments, std::uint32_t max_len,
                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Segmented s;
  s.offsets.push_back(0);
  for (std::uint32_t seg = 0; seg < num_segments; ++seg) {
    const auto len = rng.below(max_len + 1);
    for (std::uint64_t i = 0; i < len; ++i) {
      s.values.push_back(static_cast<std::uint32_t>(rng.below(1u << 30)));
    }
    s.offsets.push_back(s.values.size());
  }
  return s;
}

TEST(SegmentedSort, SortsEachSegment) {
  Segmented s = random_segments(50, 40, 1);
  segmented_sort(s.values, s.offsets);
  EXPECT_TRUE(segments_sorted(s.values, s.offsets));
}

TEST(SegmentedSort, PreservesMultisetPerSegment) {
  Segmented s = random_segments(20, 30, 2);
  std::vector<std::vector<std::uint32_t>> before;
  for (std::size_t seg = 0; seg + 1 < s.offsets.size(); ++seg) {
    std::vector<std::uint32_t> part(s.values.begin() + s.offsets[seg],
                                    s.values.begin() + s.offsets[seg + 1]);
    std::sort(part.begin(), part.end());
    before.push_back(std::move(part));
  }
  segmented_sort(s.values, s.offsets);
  for (std::size_t seg = 0; seg + 1 < s.offsets.size(); ++seg) {
    const std::vector<std::uint32_t> part(s.values.begin() + s.offsets[seg],
                                          s.values.begin() + s.offsets[seg + 1]);
    ASSERT_EQ(part, before[seg]) << "segment " << seg;
  }
}

TEST(SegmentedSort, EmptyAndSingletonSegments) {
  std::vector<std::uint32_t> values = {5, 3};
  std::vector<std::uint64_t> offsets = {0, 0, 1, 1, 2, 2};
  segmented_sort(values, offsets);
  EXPECT_TRUE(segments_sorted(values, offsets));
  EXPECT_EQ(values, (std::vector<std::uint32_t>{5, 3}));  // singletons untouched
}

TEST(SegmentedSort, NoSegments) {
  std::vector<std::uint32_t> values;
  std::vector<std::uint64_t> offsets = {0};
  EXPECT_NO_THROW(segmented_sort(values, offsets));
  EXPECT_NO_THROW(segmented_sort(values, {}));
}

TEST(PerSegmentSort, MatchesSegmentedSort) {
  Segmented a = random_segments(64, 100, 3);
  Segmented b = a;
  segmented_sort(a.values, a.offsets);
  per_segment_sort(b.values, b.offsets);
  EXPECT_EQ(a.values, b.values);
}

TEST(PerSegmentSort, LargeSkewedSegments) {
  // One huge segment among many tiny ones (scale-free shape).
  util::Xoshiro256 rng(4);
  Segmented s;
  s.offsets.push_back(0);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    s.values.push_back(static_cast<std::uint32_t>(rng.below(1u << 30)));
  }
  s.offsets.push_back(s.values.size());
  for (int seg = 0; seg < 100; ++seg) {
    s.values.push_back(static_cast<std::uint32_t>(rng.below(100)));
    s.offsets.push_back(s.values.size());
  }
  per_segment_sort(s.values, s.offsets);
  EXPECT_TRUE(segments_sorted(s.values, s.offsets));
}

TEST(SegmentsSorted, DetectsUnsorted) {
  std::vector<std::uint32_t> values = {1, 2, 3, 2};
  std::vector<std::uint64_t> offsets = {0, 3, 4};
  EXPECT_TRUE(segments_sorted(values, offsets));
  const std::vector<std::uint64_t> one_seg = {0, 4};
  EXPECT_FALSE(segments_sorted(values, one_seg));
}

TEST(RadixSortHi, MatchesStableSortReference) {
  // radix_sort_hi orders by hi ONLY and must keep input order for equal hi
  // — the property the batch engine's most-recent-wins dedup rests on.
  sg::util::Xoshiro256 rng(11);
  std::vector<U128> records(5000);
  for (std::size_t i = 0; i < records.size(); ++i) {
    // Skewed hi values with many collisions; lo carries the input index.
    records[i] = {rng.below(64) == 0 ? rng.below(1u << 20)
                                     : rng.below(1u << 6),
                  static_cast<std::uint64_t>(i)};
  }
  std::vector<U128> reference = records;
  std::stable_sort(reference.begin(), reference.end(),
                   [](const U128& a, const U128& b) { return a.hi < b.hi; });
  std::vector<U128> scratch;
  radix_sort_hi(records, scratch);
  EXPECT_EQ(records, reference);
}

TEST(RadixSortHi, TrivialAndSingleElementInputs) {
  std::vector<U128> scratch;
  std::vector<U128> empty;
  radix_sort_hi(empty, scratch);
  EXPECT_TRUE(empty.empty());
  std::vector<U128> one = {{42, 7}};
  radix_sort_hi(one, scratch);
  EXPECT_EQ(one[0], (U128{42, 7}));
}

}  // namespace
}  // namespace sg::sort
