// Durability suite (src/persist/, docs/ROBUSTNESS.md "Durability"):
// snapshot round trips for both graph variants and both directednesses,
// write-ahead journal format/scan/torn-tail semantics, and the recovery
// edge cases — empty journal, snapshot-only, journal-only, corrupt
// mid-file record (typed, never silent truncation), and replay idempotence
// (double replay rejected by the sequence cursor). Fault-injected crash
// recovery lives in tests/test_persist_faults.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/core/errors.hpp"
#include "src/persist/journal.hpp"
#include "src/persist/recovery.hpp"
#include "src/persist/snapshot.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::persist {
namespace {

using core::DynGraph;
using core::DynGraphMap;
using core::DynGraphSet;
using core::Edge;
using core::GraphConfig;
using core::MapPolicy;
using core::SetPolicy;
using core::VertexId;
using core::Weight;
using core::WeightedEdge;
using core::testutil::expect_identical;
using core::testutil::random_batch;

/// Unique scratch directory per test, removed on scope exit.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "sg_persist_XXXXXX")
            .string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Braced-literal front ends for the span-taking mutators.
template <class Policy>
std::uint64_t ins(core::DynGraph<Policy>& g, std::vector<WeightedEdge> edges) {
  return g.insert_edges(edges);
}
template <class Policy>
std::uint64_t del(core::DynGraph<Policy>& g, std::vector<Edge> edges) {
  return g.delete_edges(edges);
}
std::uint64_t japp(Journal& j, std::vector<WeightedEdge> edges) {
  return j.append_insert(edges);
}

// --------------------------------------------------------------------------
// Journal format
// --------------------------------------------------------------------------

TEST(Journal, RoundTripsAllRecordKinds) {
  TempDir dir;
  const std::string path = dir.file("j");
  const std::vector<WeightedEdge> inserts{{1, 2, 10}, {2, 3, 20}};
  const std::vector<Edge> erases{{1, 2}};
  const std::vector<VertexId> new_ids{7, 8};
  const std::vector<std::uint32_t> hints{4, 0};
  const std::vector<VertexId> dead_ids{8};
  {
    Journal j(path, core::JournalSyncPolicy::kEachBatch);
    EXPECT_EQ(j.append_insert(inserts), 1u);
    EXPECT_EQ(j.append_erase(erases), 2u);
    EXPECT_EQ(j.append_insert_vertices(new_ids, hints), 3u);
    EXPECT_EQ(j.append_delete_vertices(dead_ids), 4u);
    EXPECT_EQ(j.last_seq(), 4u);
    EXPECT_FALSE(j.poisoned());
  }
  const Journal::ScanResult scanned = Journal::scan(path);
  ASSERT_EQ(scanned.records.size(), 4u);
  EXPECT_EQ(scanned.last_seq, 4u);
  EXPECT_FALSE(scanned.torn_tail);
  EXPECT_EQ(scanned.records[0].kind, RecordKind::kInsert);
  EXPECT_EQ(scanned.records[0].inserts, inserts);
  EXPECT_EQ(scanned.records[1].kind, RecordKind::kErase);
  EXPECT_EQ(scanned.records[1].erases, erases);
  EXPECT_EQ(scanned.records[2].kind, RecordKind::kInsertVertices);
  EXPECT_EQ(scanned.records[2].vertices, new_ids);
  EXPECT_EQ(scanned.records[2].degree_hints, hints);
  EXPECT_EQ(scanned.records[3].kind, RecordKind::kDeleteVertices);
  EXPECT_EQ(scanned.records[3].vertices, dead_ids);
}

TEST(Journal, MissingFileScansEmpty) {
  TempDir dir;
  const Journal::ScanResult scanned = Journal::scan(dir.file("absent"));
  EXPECT_TRUE(scanned.records.empty());
  EXPECT_EQ(scanned.last_seq, 0u);
  EXPECT_FALSE(scanned.torn_tail);
}

TEST(Journal, TornTailIsTruncatedOnAttachAndSequenceContinues) {
  TempDir dir;
  const std::string path = dir.file("j");
  {
    Journal j(path, core::JournalSyncPolicy::kNone);
    japp(j, {{1, 2, 3}});
    japp(j, {{4, 5, 6}});
  }
  // Crash simulation: the second record loses its final bytes.
  std::vector<std::uint8_t> bytes = slurp(path);
  const std::size_t whole = bytes.size();
  bytes.resize(whole - 5);
  spit(path, bytes);

  const Journal::ScanResult scanned = Journal::scan(path);
  ASSERT_EQ(scanned.records.size(), 1u);  // the torn record is dropped
  EXPECT_TRUE(scanned.torn_tail);
  EXPECT_EQ(scanned.dropped_bytes, bytes.size() - scanned.valid_bytes);

  {
    Journal j(path, core::JournalSyncPolicy::kNone);
    EXPECT_GT(j.truncated_on_open(), 0u);
    EXPECT_EQ(j.last_seq(), 1u);
    EXPECT_EQ(japp(j, {{7, 8, 9}}), 2u);  // sequence continues
  }
  const Journal::ScanResult after = Journal::scan(path);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_FALSE(after.torn_tail);
  EXPECT_EQ(after.records[1].inserts,
            (std::vector<WeightedEdge>{{7, 8, 9}}));
}

TEST(Journal, MidFileCorruptionThrowsTypedNotTruncated) {
  TempDir dir;
  const std::string path = dir.file("j");
  std::uint64_t first_record_end = 0;
  {
    Journal j(path, core::JournalSyncPolicy::kNone);
    japp(j, {{1, 2, 3}});
    first_record_end = 16 + j.appended_bytes();
    japp(j, {{4, 5, 6}});
  }
  std::vector<std::uint8_t> bytes = slurp(path);
  // Flip a payload byte of the FIRST record: damage with valid data after
  // it is corruption, not a torn tail.
  bytes[first_record_end / 2] ^= 0xFF;
  spit(path, bytes);
  EXPECT_THROW(Journal::scan(path), CorruptJournal);
  EXPECT_THROW(Journal(path, core::JournalSyncPolicy::kNone), CorruptJournal);
}

TEST(Journal, CrcDamageAtExactEofIsATornTail) {
  TempDir dir;
  const std::string path = dir.file("j");
  {
    Journal j(path, core::JournalSyncPolicy::kNone);
    japp(j, {{1, 2, 3}});
    japp(j, {{4, 5, 6}});
  }
  std::vector<std::uint8_t> bytes = slurp(path);
  // Flip a byte inside the LAST record's payload (its final 4 bytes are
  // the weight word): damage that reaches end-of-file is the shape a torn
  // write leaves, and recovery truncates instead of failing.
  bytes[bytes.size() - 2] ^= 0xFF;
  spit(path, bytes);
  const Journal::ScanResult scanned = Journal::scan(path);
  ASSERT_EQ(scanned.records.size(), 1u);
  EXPECT_TRUE(scanned.torn_tail);
}

TEST(Journal, SeqFloorCarriesSnapshotCutAcrossFreshFile) {
  TempDir dir;
  Journal j(dir.file("j"), core::JournalSyncPolicy::kNone, /*seq_floor=*/41);
  EXPECT_EQ(j.last_seq(), 41u);
  EXPECT_EQ(japp(j, {{1, 2, 3}}), 42u);
}

// --------------------------------------------------------------------------
// Snapshot round trips
// --------------------------------------------------------------------------

template <class Policy>
void build_workload(DynGraph<Policy>& g, std::uint64_t seed) {
  auto batch = random_batch(seed, 4000, 300);
  g.insert_edges(batch);
  // Erase a slice, delete a couple of vertices, add isolated vertices —
  // the snapshot must carry tombstone-cleaned adjacency, dead vertices
  // absent, and edgeless-but-live vertices present.
  std::vector<Edge> erase;
  for (std::size_t i = 0; i < batch.size(); i += 7) {
    erase.push_back({batch[i].src, batch[i].dst});
  }
  g.delete_edges(erase);
  const std::vector<VertexId> dead{11, 42};
  g.delete_vertices(dead);
  const std::vector<VertexId> isolated{900, 901};
  g.insert_vertices(isolated);
}

template <class Policy>
void round_trip_case(bool undirected, std::uint64_t seed) {
  TempDir dir;
  GraphConfig cfg;
  cfg.undirected = undirected;
  DynGraph<Policy> g(cfg);
  build_workload(g, seed);
  const SnapshotStats written = snapshot(g, dir.file("snap"));
  EXPECT_EQ(written.directed_edges, g.num_edges());
  EXPECT_GT(written.file_bytes, 0u);

  DynGraph<Policy> restored(cfg);
  const SnapshotStats read = restore_into(restored, dir.file("snap"));
  EXPECT_EQ(read.directed_edges, written.directed_edges);
  EXPECT_EQ(read.vertices, written.vertices);
  expect_identical(g, restored);
  // Liveness flags round-trip too: dead vertices stay dead, isolated
  // vertices stay live.
  EXPECT_FALSE(restored.vertex_live(11));
  EXPECT_TRUE(restored.vertex_live(900));
}

TEST(Snapshot, RoundTripMapDirected) { round_trip_case<MapPolicy>(false, 1); }
TEST(Snapshot, RoundTripMapUndirected) { round_trip_case<MapPolicy>(true, 2); }
TEST(Snapshot, RoundTripSetDirected) { round_trip_case<SetPolicy>(false, 3); }
TEST(Snapshot, RoundTripSetUndirected) { round_trip_case<SetPolicy>(true, 4); }

TEST(Snapshot, RoundTripEmptyGraph) {
  TempDir dir;
  DynGraphMap g(GraphConfig{});
  snapshot(g, dir.file("snap"));
  DynGraphMap restored(GraphConfig{});
  const SnapshotStats read = restore_into(restored, dir.file("snap"));
  EXPECT_EQ(read.vertices, 0u);
  EXPECT_EQ(restored.num_edges(), 0u);
}

TEST(Snapshot, MostRecentWeightWins) {
  TempDir dir;
  DynGraphMap g(GraphConfig{});
  ins(g, {{1, 2, 10}, {1, 2, 99}});
  snapshot(g, dir.file("snap"));
  DynGraphMap restored(GraphConfig{});
  restore_into(restored, dir.file("snap"));
  const auto r = restored.edge_weight(1, 2);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, 99u);
}

TEST(Snapshot, VariantMismatchThrowsTyped) {
  TempDir dir;
  DynGraphMap g(GraphConfig{});
  ins(g, {{1, 2, 10}});
  snapshot(g, dir.file("snap"));
  DynGraphSet wrong_variant(GraphConfig{});
  EXPECT_THROW(restore_into(wrong_variant, dir.file("snap")), CorruptSnapshot);
  GraphConfig undirected_cfg;
  undirected_cfg.undirected = true;
  DynGraphMap wrong_direction(undirected_cfg);
  EXPECT_THROW(restore_into(wrong_direction, dir.file("snap")),
               CorruptSnapshot);
}

TEST(Snapshot, CorruptSectionThrowsTyped) {
  TempDir dir;
  DynGraphMap g(GraphConfig{});
  ins(g, {{1, 2, 10}, {3, 4, 20}});
  snapshot(g, dir.file("snap"));
  std::vector<std::uint8_t> bytes = slurp(dir.file("snap"));
  bytes[bytes.size() / 2] ^= 0xFF;  // lands in a section payload
  spit(dir.file("snap"), bytes);
  DynGraphMap restored(GraphConfig{});
  EXPECT_THROW(restore_into(restored, dir.file("snap")), CorruptSnapshot);
}

TEST(Snapshot, MissingFileThrowsIoError) {
  TempDir dir;
  DynGraphMap restored(GraphConfig{});
  EXPECT_THROW(restore_into(restored, dir.file("absent")), IoError);
}

TEST(Snapshot, RestoreRequiresFreshGraph) {
  TempDir dir;
  DynGraphMap g(GraphConfig{});
  ins(g, {{1, 2, 10}});
  snapshot(g, dir.file("snap"));
  EXPECT_THROW(restore_into(g, dir.file("snap")), std::logic_error);
}

TEST(Snapshot, ShutdownSnapshotWrittenByDestructor) {
  TempDir dir;
  GraphConfig cfg;
  cfg.snapshot_on_shutdown = dir.file("final");
  std::vector<WeightedEdge> batch = random_batch(9, 500, 64);
  {
    DynGraphMap g(cfg);
    g.insert_edges(batch);
  }
  DynGraphMap oracle(GraphConfig{});
  oracle.insert_edges(batch);
  DynGraphMap restored(GraphConfig{});
  restore_into(restored, dir.file("final"));
  expect_identical(oracle, restored);
}

// --------------------------------------------------------------------------
// Scheduled snapshot: epoch-consistent cut under concurrent submitters
// --------------------------------------------------------------------------

TEST(Snapshot, MidStreamCutIsBatchAtomicUnderConcurrentSubmitters) {
  TempDir dir;
  constexpr int kThreads = 4;
  constexpr int kBatches = 12;   // per thread
  constexpr int kBatchEdges = 32;
  GraphConfig cfg;
  DynGraphMap g(cfg);
  // Thread t, batch b inserts edges (src, dst) with src = 1 + t*kBatches+b
  // and dst in [1000, 1000+kBatchEdges): batches are pairwise disjoint, so
  // "the snapshot holds either ALL of a batch's edges or NONE" is
  // well-defined, and FIFO submission means each thread's batches appear
  // as a prefix.
  std::vector<std::thread> threads;
  std::future<void> snap_future;
  std::atomic<bool> snap_taken{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int b = 0; b < kBatches; ++b) {
        std::vector<WeightedEdge> batch;
        const VertexId src = static_cast<VertexId>(1 + t * kBatches + b);
        for (int k = 0; k < kBatchEdges; ++k) {
          batch.push_back({src, static_cast<VertexId>(1000 + k), 7});
        }
        g.submit_insert(std::move(batch)).get();
        if (t == 0 && b == kBatches / 2) {
          snap_future = g.submit_snapshot(dir.file("snap"));
          snap_taken.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(snap_taken.load());
  snap_future.get();
  EXPECT_EQ(g.last_schedule_stats().submitted_snapshots, 1u);

  DynGraphMap restored(cfg);
  restore_into(restored, dir.file("snap"));
  // Batch atomicity + per-thread prefix: each source vertex (one batch)
  // has either all kBatchEdges edges or none, and within a thread the
  // present sources form a contiguous prefix of its submission order.
  for (int t = 0; t < kThreads; ++t) {
    bool seen_absent = false;
    for (int b = 0; b < kBatches; ++b) {
      const VertexId src = static_cast<VertexId>(1 + t * kBatches + b);
      const std::uint32_t deg = restored.degree(src);
      ASSERT_TRUE(deg == 0 || deg == kBatchEdges)
          << "torn batch at src " << src << ": degree " << deg;
      if (deg == 0) {
        seen_absent = true;
      } else {
        ASSERT_FALSE(seen_absent)
            << "batch " << b << " of thread " << t
            << " present after an earlier batch was absent (FIFO violated)";
      }
    }
    // The thread-0 batch the snapshot was submitted after must be in it.
    if (t == 0) {
      EXPECT_EQ(restored.degree(1 + kBatches / 2), kBatchEdges);
    }
  }
}

// --------------------------------------------------------------------------
// Journal + recovery
// --------------------------------------------------------------------------

/// Applies a deterministic mutation stream; used both on journaled graphs
/// and on the journal-less oracle the recovered graph must equal.
template <class Policy>
void mutate_stream(DynGraph<Policy>& g, std::uint64_t seed, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    auto batch = random_batch(seed + r, 600, 128);
    g.insert_edges(batch);
    std::vector<Edge> erase;
    for (std::size_t i = r % 5; i < batch.size(); i += 5) {
      erase.push_back({batch[i].src, batch[i].dst});
    }
    g.delete_edges(erase);
    if (r % 3 == 1) {
      g.delete_vertices(std::vector<VertexId>{static_cast<VertexId>(r * 7)});
    }
    if (r % 3 == 2) {
      g.insert_vertices(
          std::vector<VertexId>{static_cast<VertexId>(500 + r)},
          std::vector<std::uint32_t>{8});
    }
  }
}

template <class Policy>
void journal_only_recovery_case(bool undirected) {
  TempDir dir;
  GraphConfig cfg;
  cfg.undirected = undirected;
  cfg.journal_path = dir.file("j");
  {
    DynGraph<Policy> g(cfg);
    ASSERT_TRUE(g.has_journal());
    mutate_stream(g, 77, 6);
  }
  Recovered<Policy> rec = recover<Policy>(cfg);
  EXPECT_FALSE(rec.stats.snapshot_loaded);
  EXPECT_GT(rec.stats.replayed_records, 0u);
  EXPECT_EQ(rec.stats.skipped_records, 0u);

  GraphConfig oracle_cfg = cfg;
  oracle_cfg.journal_path.clear();
  DynGraph<Policy> oracle(oracle_cfg);
  mutate_stream(oracle, 77, 6);
  expect_identical(oracle, *rec.graph);
}

TEST(Recovery, JournalOnlyMapDirected) {
  journal_only_recovery_case<MapPolicy>(false);
}
TEST(Recovery, JournalOnlySetUndirected) {
  journal_only_recovery_case<SetPolicy>(true);
}

TEST(Recovery, SnapshotPlusJournalSuffixReplay) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  std::uint64_t records_at_cut = 0;
  {
    DynGraphMap g(cfg);
    mutate_stream(g, 5, 4);
    snapshot(g, dir.file("snap"));
    records_at_cut = g.journal_seq();
    mutate_stream(g, 999, 3);  // the suffix only the journal holds
  }
  const RecoveredMap rec = recover<MapPolicy>(cfg, dir.file("snap"));
  EXPECT_TRUE(rec.stats.snapshot_loaded);
  EXPECT_EQ(rec.stats.skipped_records, records_at_cut);
  EXPECT_GT(rec.stats.replayed_records, 0u);

  GraphConfig oracle_cfg = cfg;
  oracle_cfg.journal_path.clear();
  DynGraphMap oracle(oracle_cfg);
  mutate_stream(oracle, 5, 4);
  mutate_stream(oracle, 999, 3);
  expect_identical(oracle, *rec.graph);
}

TEST(Recovery, EmptyJournalYieldsEmptyGraph) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  { DynGraphMap g(cfg); }  // attaches, writes only the header
  const RecoveredMap rec = recover<MapPolicy>(cfg);
  EXPECT_EQ(rec.stats.replayed_records, 0u);
  EXPECT_EQ(rec.graph->num_edges(), 0u);
}

TEST(Recovery, MissingJournalFileYieldsEmptyGraph) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("never_created");
  const RecoveredMap rec = recover<MapPolicy>(cfg);
  EXPECT_EQ(rec.stats.replayed_records, 0u);
  EXPECT_EQ(rec.graph->num_edges(), 0u);
  EXPECT_TRUE(rec.graph->has_journal());  // attached and ready for writes
}

TEST(Recovery, SnapshotOnlyNoJournalConfigured) {
  TempDir dir;
  GraphConfig cfg;  // journal_path empty
  DynGraphMap g(cfg);
  ins(g, {{1, 2, 3}, {2, 3, 4}});
  snapshot(g, dir.file("snap"));
  const RecoveredMap rec = recover<MapPolicy>(cfg, dir.file("snap"));
  EXPECT_TRUE(rec.stats.snapshot_loaded);
  EXPECT_FALSE(rec.graph->has_journal());
  expect_identical(g, *rec.graph);
}

TEST(Recovery, MissingSnapshotFallsBackToJournalOnly) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  {
    DynGraphMap g(cfg);
    ins(g, {{1, 2, 3}});
  }
  // The configured shutdown snapshot was never written (crashed first).
  const RecoveredMap rec =
      recover<MapPolicy>(cfg, dir.file("snap_never_written"));
  EXPECT_FALSE(rec.stats.snapshot_loaded);
  EXPECT_EQ(rec.stats.replayed_records, 1u);
  EXPECT_TRUE(rec.graph->edge_exists(1, 2));
}

TEST(Recovery, DoubleReplayIsRejectedBySequenceCursor) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  {
    DynGraphMap g(cfg);
    ins(g, {{1, 2, 3}, {4, 5, 6}});
    del(g, {{4, 5}});
  }
  GraphConfig replay_cfg = cfg;
  replay_cfg.journal_path.clear();
  DynGraphMap g(replay_cfg);
  const RecoveryStats first = replay_journal(g, dir.file("j"));
  EXPECT_EQ(first.replayed_records, 2u);
  EXPECT_EQ(first.skipped_records, 0u);
  const std::uint64_t edges_after_first = g.num_edges();
  const RecoveryStats second = replay_journal(g, dir.file("j"));
  EXPECT_EQ(second.replayed_records, 0u);  // every record at/below cursor
  EXPECT_EQ(second.skipped_records, 2u);
  EXPECT_EQ(g.num_edges(), edges_after_first);
}

TEST(Recovery, ReplayThroughAttachedJournalIsRejected) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  DynGraphMap g(cfg);
  EXPECT_THROW(replay_journal(g, dir.file("j")), std::logic_error);
}

TEST(Recovery, RecoveredGraphContinuesTheSequence) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  std::uint64_t seq_before = 0;
  {
    DynGraphMap g(cfg);
    ins(g, {{1, 2, 3}});
    seq_before = g.journal_seq();
  }
  RecoveredMap rec = recover<MapPolicy>(cfg);
  EXPECT_EQ(rec.graph->journal_seq(), seq_before);
  ins(*rec.graph, {{7, 8, 9}});
  EXPECT_EQ(rec.graph->journal_seq(), seq_before + 1);
  rec.graph.reset();
  // A second recovery replays the full, monotonic stream.
  const RecoveredMap again = recover<MapPolicy>(cfg);
  EXPECT_EQ(again.stats.replayed_records, seq_before + 1);
  EXPECT_TRUE(again.graph->edge_exists(1, 2));
  EXPECT_TRUE(again.graph->edge_exists(7, 8));
}

TEST(Recovery, TornJournalTailIsTruncatedAndReported) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  {
    DynGraphMap g(cfg);
    ins(g, {{1, 2, 3}});
    ins(g, {{4, 5, 6}});
  }
  std::vector<std::uint8_t> bytes = slurp(dir.file("j"));
  bytes.resize(bytes.size() - 3);  // tear the last record
  spit(dir.file("j"), bytes);
  const RecoveredMap rec = recover<MapPolicy>(cfg);
  EXPECT_EQ(rec.stats.replayed_records, 1u);
  EXPECT_GT(rec.stats.truncated_bytes, 0u);
  EXPECT_TRUE(rec.graph->edge_exists(1, 2));
  EXPECT_FALSE(rec.graph->edge_exists(4, 5));
}

TEST(Recovery, CorruptMidJournalFailsTypedNotSilently) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  std::uint64_t first_record_end = 0;
  {
    DynGraphMap g(cfg);
    ins(g, {{1, 2, 3}});
    first_record_end = std::filesystem::file_size(dir.file("j"));
    ins(g, {{4, 5, 6}});
  }
  std::vector<std::uint8_t> bytes = slurp(dir.file("j"));
  bytes[first_record_end - 6] ^= 0xFF;  // first record, data after it
  spit(dir.file("j"), bytes);
  EXPECT_THROW(recover<MapPolicy>(cfg), CorruptJournal);
}

TEST(Recovery, BulkBuildReplayReproducesDstOnlyVertices) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  {
    DynGraphMap g(cfg);
    // Vertex 9 is destination-only: without the kInsertVertices record the
    // replayed graph would not mark it live.
    g.bulk_build(std::vector<WeightedEdge>{{1, 9, 5}, {2, 9, 6}});
    ASSERT_TRUE(g.vertex_live(9));
  }
  const RecoveredMap rec = recover<MapPolicy>(cfg);
  EXPECT_TRUE(rec.graph->vertex_live(9));
  EXPECT_TRUE(rec.graph->edge_exists(1, 9));
  EXPECT_EQ(rec.graph->num_edges(), 2u);
}

TEST(Journal, RequiresBatchEngine) {
  TempDir dir;
  GraphConfig cfg;
  cfg.batch_engine = false;
  cfg.journal_path = dir.file("j");
  EXPECT_THROW(DynGraphMap{cfg}, std::invalid_argument);
}

TEST(Journal, ScheduledMutationsAreJournaledBeforeFuturesResolve) {
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  {
    DynGraphMap g(cfg);
    g.submit_insert({{1, 2, 3}, {4, 5, 6}}).get();
    // The future resolved => the batch is in the journal NOW, not at
    // shutdown: a scan from a second handle must already see it.
    const Journal::ScanResult scanned = Journal::scan(dir.file("j"));
    ASSERT_EQ(scanned.records.size(), 1u);
    EXPECT_EQ(scanned.records[0].inserts.size(), 2u);
    g.submit_erase({{4, 5}}).get();
    EXPECT_EQ(Journal::scan(dir.file("j")).records.size(), 2u);
  }
  const RecoveredMap rec = recover<MapPolicy>(cfg);
  EXPECT_TRUE(rec.graph->edge_exists(1, 2));
  EXPECT_FALSE(rec.graph->edge_exists(4, 5));
}

}  // namespace
}  // namespace sg::persist
