// Shared helpers of the DynGraph differential suites (test_batch_engine,
// test_pipeline, test_query_pipeline): the serial-oracle scope, the common
// random batch generator, and the graph-equality predicates. Workload
// shapes that differ per suite (skew profiles, hub batches, query mixes)
// stay in their own files on purpose — merging them would change test
// inputs.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"

namespace sg::core::testutil {

/// Runs the scalar oracle's mutations on a temporarily 1-thread pool: the
/// Algorithm-1 warp path resolves duplicate (src, dst) weights in warp
/// execution order, which is nondeterministic across pool threads, whereas
/// the engine guarantees most-recent-wins at any width. Sequential
/// execution restores the semantics the oracle is meant to model.
class SerialOracleScope {
 public:
  SerialOracleScope() : restore_(simt::ThreadPool::instance().requested()) {
    simt::ThreadPool::instance().resize(1);
  }
  ~SerialOracleScope() { simt::ThreadPool::instance().resize(restore_); }

 private:
  unsigned restore_;
};

inline std::vector<WeightedEdge> random_batch(std::uint64_t seed,
                                              std::size_t count,
                                              std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<WeightedEdge> batch(count);
  for (auto& e : batch) {
    e = {static_cast<VertexId>(rng.below(num_vertices)),
         static_cast<VertexId>(rng.below(num_vertices)),
         static_cast<Weight>(rng.below(1u << 16))};
  }
  return batch;
}

template <class Policy>
std::multiset<std::tuple<VertexId, VertexId, Weight>> graph_edges(
    const DynGraph<Policy>& g) {
  std::multiset<std::tuple<VertexId, VertexId, Weight>> edges;
  for (VertexId u = 0; u < g.vertex_capacity(); ++u) {
    g.for_each_neighbor(u, [&](VertexId v, Weight w) {
      edges.insert({u, v, Policy::kHasValues ? w : Weight{0}});
    });
  }
  return edges;
}

template <class Policy>
void expect_identical(const DynGraph<Policy>& a, const DynGraph<Policy>& b) {
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId u = 0; u < std::max(a.vertex_capacity(), b.vertex_capacity());
       ++u) {
    const std::uint32_t da = u < a.vertex_capacity() ? a.degree(u) : 0;
    const std::uint32_t db = u < b.vertex_capacity() ? b.degree(u) : 0;
    ASSERT_EQ(da, db) << "degree mismatch at vertex " << u;
  }
  EXPECT_EQ(graph_edges(a), graph_edges(b));
}

}  // namespace sg::core::testutil
