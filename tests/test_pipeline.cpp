// Tests of the sharded, double-buffered batch pipeline (PR 3): interleaved
// insert/delete/search batches through the pipelined path must equal both
// the scalar Algorithm-1 oracle and the single-buffer PR 2 engine across
// shard counts, epoch sizes, and pool widths (including the degenerate
// 1-thread pipeline and pools wider than the shard count); most-recent-wins
// dedup must stay deterministic across shard AND epoch boundaries; targeted
// rehash must match the full scan while visiting strictly fewer tables; and
// the batched edge_weights API must agree with point lookups.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "src/core/batch_engine.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::core {
namespace {

using namespace testutil;

GraphConfig pipeline_config(bool undirected, std::uint32_t shards,
                            std::uint32_t epoch_edges, bool double_buffer) {
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  cfg.undirected = undirected;
  cfg.batch_engine = true;
  cfg.stage_shards = shards;
  cfg.pipeline_epoch_edges = epoch_edges;
  cfg.double_buffer = double_buffer;
  return cfg;
}

GraphConfig oracle_config(bool undirected) {
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  cfg.undirected = undirected;
  cfg.batch_engine = false;
  return cfg;
}

/// Skewed, duplicate-heavy batch: a few hub sources own most edges and the
/// same (src, dst) pair recurs with different weights — the shard- and
/// epoch-boundary dedup stress case.
std::vector<WeightedEdge> skewed_batch(std::uint64_t seed, std::size_t count,
                                       std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<WeightedEdge> batch(count);
  for (auto& e : batch) {
    const bool hub = rng.below(100) < 70;
    e = {hub ? static_cast<VertexId>(rng.below(5))
             : static_cast<VertexId>(rng.below(num_vertices)),
         static_cast<VertexId>(rng.below(hub ? 24 : num_vertices)),
         static_cast<Weight>(rng.below(1u << 16))};
  }
  return batch;
}

/// Drives interleaved insert / delete / search rounds through three graphs
/// — the pipelined engine under test, the single-buffer engine, and the
/// scalar oracle — asserting equality after every phase.
template <class Policy>
void run_pipeline_differential(bool undirected, std::uint32_t shards,
                               std::uint32_t epoch_edges, std::uint64_t seed) {
  DynGraph<Policy> pipelined(
      pipeline_config(undirected, shards, epoch_edges, true));
  DynGraph<Policy> single_buffer(pipeline_config(undirected, 1, 0, false));
  DynGraph<Policy> oracle(oracle_config(undirected));

  for (int round = 0; round < 3; ++round) {
    const auto inserts = round % 2 == 0
                             ? skewed_batch(seed + round, 700, 180)
                             : random_batch(seed + round, 700, 180);
    const std::uint64_t added = pipelined.insert_edges(inserts);
    EXPECT_EQ(added, single_buffer.insert_edges(inserts));
    {
      SerialOracleScope serial;
      EXPECT_EQ(added, oracle.insert_edges(inserts));
    }
    expect_identical(pipelined, oracle);
    expect_identical(pipelined, single_buffer);

    std::vector<Edge> erases;
    for (const auto& e : skewed_batch(seed + 50 + round, 300, 180)) {
      erases.push_back({e.src, e.dst});
    }
    const std::uint64_t removed = pipelined.delete_edges(erases);
    EXPECT_EQ(removed, single_buffer.delete_edges(erases));
    EXPECT_EQ(removed, oracle.delete_edges(erases));
    expect_identical(pipelined, oracle);

    std::vector<Edge> queries;
    for (const auto& e : random_batch(seed + 90 + round, 400, 220)) {
      queries.push_back({e.src, e.dst});
    }
    std::vector<std::uint8_t> out_pipelined(queries.size(), 2);
    std::vector<std::uint8_t> out_oracle(queries.size(), 2);
    pipelined.edges_exist(queries, out_pipelined.data());
    oracle.edges_exist(queries, out_oracle.data());
    EXPECT_EQ(out_pipelined, out_oracle);
  }
}

class PipelineThreadSweep : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { simt::ThreadPool::instance().resize(GetParam()); }
  void TearDown() override { simt::ThreadPool::instance().resize(0); }
};

TEST_P(PipelineThreadSweep, MapDirectedShardedEpochs) {
  // Epoch size 96 on 700-edge batches: many epochs, the double buffer is
  // exercised hard; shards 4 with pools of 1 and 8 covers shard count both
  // above and below the worker count.
  run_pipeline_differential<MapPolicy>(false, 4, 96, 11);
}
TEST_P(PipelineThreadSweep, MapUndirectedShardedEpochs) {
  run_pipeline_differential<MapPolicy>(true, 4, 96, 12);
}
TEST_P(PipelineThreadSweep, SetDirectedShardedEpochs) {
  run_pipeline_differential<SetPolicy>(false, 2, 128, 13);
}
TEST_P(PipelineThreadSweep, SetUndirectedAutoShards) {
  run_pipeline_differential<SetPolicy>(true, 0, 96, 14);
}
TEST_P(PipelineThreadSweep, MapUndirectedSingleShardManyEpochs) {
  run_pipeline_differential<MapPolicy>(true, 1, 64, 15);
}

// 1 = the degenerate serial pipeline (inline staging at submit); 8 = more
// workers than shards, so apply and stage genuinely share the pool.
INSTANTIATE_TEST_SUITE_P(Widths, PipelineThreadSweep,
                         ::testing::Values(1u, 8u));

TEST(PipelineDedup, MostRecentWinsAcrossEpochBoundaries) {
  // Duplicates of (5, 9) land in different epochs (epoch size 8); the
  // epoch fence must resolve them exactly as one unsplit batch would.
  DynGraphMap g(pipeline_config(false, 2, 8, true));
  std::vector<WeightedEdge> batch;
  for (Weight w = 1; w <= 40; ++w) batch.push_back({5, 9, w});
  batch.push_back({5, 10, 7});
  for (Weight w = 100; w <= 130; ++w) batch.push_back({5, 9, w});
  EXPECT_EQ(g.insert_edges(batch), 2u);
  EXPECT_GT(g.last_batch_stats().epochs, 1u);
  EXPECT_EQ(g.edge_weight(5, 9).value, 130u);
  EXPECT_EQ(g.degree(5), 2u);
}

TEST(PipelineDedup, SkewedDuplicatesDeterministicAcrossShardCounts) {
  // The same skewed duplicate-heavy batch must produce bit-identical
  // adjacency no matter how staging is sharded or split into epochs —
  // every occurrence of a (vertex, key) pair lands in the one shard owning
  // the vertex, so per-shard dedup is exhaustive by construction.
  const auto batch = skewed_batch(99, 3000, 64);
  DynGraphMap reference(pipeline_config(true, 1, 0, false));
  reference.insert_edges(batch);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    for (const std::uint32_t epoch : {0u, 128u}) {
      DynGraphMap sharded(pipeline_config(true, shards, epoch, true));
      sharded.insert_edges(batch);
      expect_identical(sharded, reference);
    }
  }
}

TEST(PipelineStats, ForcedEpochsReportStageAndApplyTime) {
  DynGraphMap g(pipeline_config(false, 2, 64, true));
  const auto batch = random_batch(3, 1000, 128);
  g.insert_edges(batch);
  const BatchPipelineStats& stats = g.last_batch_stats();
  EXPECT_EQ(stats.epochs, (1000 + 63) / 64);
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_GT(stats.stage_seconds, 0.0);
  EXPECT_GT(stats.apply_seconds, 0.0);
  EXPECT_GE(stats.overlap_seconds, 0.0);
}

TEST(ShardedStagingGuard, RunCrossingShardPartitionThrows) {
  // Staging a vertex into a shard that does not own it must be caught by
  // the partition guard — this is the invariant that makes cross-shard
  // dedup impossible to break silently. finalize() runs the guard as a
  // debug assertion; validate_partition() is its always-available form.
  ShardedStaging staged;
  staged.resize(2);
  const slabhash::TableRef table{0, 4};
  // Vertex 1 belongs to shard 1 (1 % 2); push it into shard 0.
  staged.shard(0).push(1, 7, table, 42);
  staged.shard(0).group_prepare(true);
  staged.shard(1).group_prepare(true);
  EXPECT_THROW(staged.validate_partition(), std::logic_error);
  // A correctly partitioned staging passes the guard and finalizes.
  ShardedStaging ok;
  ok.resize(2);
  ok.shard(1).push(1, 7, table, 42);
  ok.shard(0).group_prepare(true);
  ok.shard(1).group_prepare(true);
  EXPECT_NO_THROW(ok.validate_partition());
  EXPECT_EQ(ok.finalize(/*merge_free=*/true, false, false), 0u);
  EXPECT_EQ(ok.front().keys.size(), 1u);
}

// ---------------------------------------------------------------------------
// Batched weighted lookup (edge_weights)
// ---------------------------------------------------------------------------

TEST(EdgeWeights, MatchesPointLookupsEngineAndOracle) {
  const auto inserts = skewed_batch(7, 1500, 96);
  for (const bool engine : {true, false}) {
    GraphConfig cfg = engine ? pipeline_config(false, 2, 200, true)
                             : oracle_config(false);
    cfg.vertex_capacity = 96;
    DynGraphMap g(cfg);
    g.insert_edges(inserts);

    std::vector<Edge> queries;
    for (const auto& e : skewed_batch(8, 600, 128)) {  // hits + misses +
      queries.push_back({e.src, e.dst});               // unknown sources
    }
    queries.push_back({5, 5});        // self-loop: never stored
    queries.push_back({4000, 1});     // far out of range
    std::vector<Weight> weights(queries.size(), 0xDEAD);
    std::vector<std::uint8_t> found(queries.size(), 2);
    g.edge_weights(queries, weights.data(), found.data());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto expect = g.edge_weight(queries[i].src, queries[i].dst);
      EXPECT_EQ(found[i] != 0, expect.found) << "query " << i;
      EXPECT_EQ(weights[i], expect.found ? expect.value : 0u) << "query " << i;
    }
    // The found pointer is optional.
    std::vector<Weight> weights_only(queries.size(), 0xDEAD);
    g.edge_weights(queries, weights_only.data());
    EXPECT_EQ(weights, weights_only);
  }
}

TEST(EdgeWeights, EmptyBatchIsNoop) {
  DynGraphMap g(pipeline_config(false, 2, 0, true));
  g.edge_weights({}, nullptr, nullptr);
}

// ---------------------------------------------------------------------------
// Targeted (run-aware) rehash
// ---------------------------------------------------------------------------

/// Hub-heavy inserts: a handful of vertices grow chains far past one slab
/// while the long tail stays in its base slab.
std::vector<WeightedEdge> hub_batch(std::uint32_t num_vertices,
                                    std::uint32_t hub_degree) {
  std::vector<WeightedEdge> edges;
  for (VertexId hub = 0; hub < 3; ++hub) {
    for (std::uint32_t k = 0; k < hub_degree; ++k) {
      edges.push_back({hub, 10 + k, k});
    }
  }
  for (VertexId u = 3; u < num_vertices; ++u) {
    edges.push_back({u, u + 1, 1});
  }
  return edges;
}

TEST(TargetedRehash, MatchesFullScanAndVisitsFewerTables) {
  const auto edges = hub_batch(400, 200);
  DynGraphMap targeted(pipeline_config(false, 2, 0, true));
  DynGraphMap full(pipeline_config(false, 2, 0, true));
  targeted.insert_edges(edges);
  full.insert_edges(edges);

  // Apply observed the hub chains for free.
  EXPECT_FALSE(targeted.chain_feedback().empty());
  std::uint64_t histogram_total = 0;
  for (const std::uint64_t h : targeted.chain_feedback().hist) {
    histogram_total += h;
  }
  EXPECT_GT(histogram_total, 0u);

  const std::uint32_t rehashed_targeted = targeted.rehash_long_chains(1.0);
  const std::uint32_t rehashed_full =
      full.rehash_long_chains(1.0, /*full_scan=*/true);
  EXPECT_EQ(rehashed_targeted, rehashed_full);
  EXPECT_GT(rehashed_targeted, 0u);
  EXPECT_TRUE(targeted.last_rehash_stats().targeted);
  EXPECT_FALSE(full.last_rehash_stats().targeted);
  // The point of the feedback: strictly fewer tables examined.
  EXPECT_LT(targeted.last_rehash_stats().scanned,
            full.last_rehash_stats().scanned);
  expect_identical(targeted, full);

  // A second targeted pass finds nothing new and scans almost nothing.
  EXPECT_EQ(targeted.rehash_long_chains(1.0), 0u);
  EXPECT_LE(targeted.last_rehash_stats().scanned, 3u);
}

TEST(TargetedRehash, FallsBackToFullScanBelowOneSlab) {
  DynGraphMap g(pipeline_config(false, 1, 0, true));
  g.insert_edges(hub_batch(50, 40));
  g.rehash_long_chains(0.5);  // sub-slab threshold: must sweep everything
  EXPECT_FALSE(g.last_rehash_stats().targeted);
}

TEST(TargetedRehash, FeedbackSaturatesInsteadOfGrowingUnbounded) {
  // A graph mutated forever without ever calling rehash_long_chains must
  // not leak candidate entries: past the cap the list empties, saturation
  // is flagged (forcing the next rehash onto the complete full sweep),
  // and clear() restores targeted operation.
  ChainFeedback global;
  ChainFeedback chunk;
  global.candidates.assign(ChainFeedback::kMaxCandidates - 1, VertexId{7});
  for (int i = 0; i < 8; ++i) chunk.note_long(9, 3);
  global.merge_from(chunk);
  EXPECT_TRUE(global.saturated);
  EXPECT_TRUE(global.candidates.empty());
  EXPECT_GT(global.hist[1], 0u);  // the histogram keeps accumulating
  // Saturation survives further merges of unsaturated chunks.
  chunk.note_long(4, 2);
  global.merge_from(chunk);
  EXPECT_TRUE(global.saturated);
  global.clear();
  EXPECT_FALSE(global.saturated);
}

TEST(TargetedRehash, EngineOffAlwaysFullScans) {
  DynGraphMap g(oracle_config(false));
  g.insert_edges(hub_batch(50, 60));
  const std::uint32_t rehashed = g.rehash_long_chains(1.0);
  EXPECT_GT(rehashed, 0u);
  EXPECT_FALSE(g.last_rehash_stats().targeted);
}

// ---------------------------------------------------------------------------
// Graceful degradation under memory pressure (docs/ROBUSTNESS.md)
// ---------------------------------------------------------------------------

/// Unique directed pairs from one hub source: every edge past the base-slab
/// capacity needs a dynamic chain slab, which a chunk-limited arena refuses.
std::vector<WeightedEdge> hub_chain_batch(std::size_t count) {
  std::vector<WeightedEdge> batch;
  batch.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    batch.push_back({1, 10 + k, k + 1});
  }
  return batch;
}

class ArenaPressureSweep : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { simt::ThreadPool::instance().resize(GetParam()); }
  void TearDown() override { simt::ThreadPool::instance().resize(0); }
};

/// The acceptance differential for memory pressure: an insert that exhausts
/// the arena mid-batch must (1) surface PartialBatchError on the CALLER —
/// the failing bulk op runs on a pool thread, and the error must cross the
/// pool boundary instead of std::terminate-ing a worker; (2) fire
/// on_pressure first; (3) report an exact applied/unapplied split — the
/// graph equals the full batch minus the reported remainder, counters
/// agree; (4) leave the graph serving queries and deletions.
TEST_P(ArenaPressureSweep, ExhaustionSurfacesExactPartialBatchError) {
  GraphConfig cfg = pipeline_config(false, 4, 96, true);
  cfg.vertex_capacity = 64;
  cfg.max_arena_chunks = 1;  // base slabs only: chain growth must fail
  int pressure_calls = 0;
  cfg.on_pressure = [&pressure_calls] { ++pressure_calls; };
  DynGraphMap g(cfg);

  const auto batch = hub_chain_batch(2000);
  bool aborted = false;
  std::vector<Edge> unapplied;
  try {
    g.insert_edges(batch);
  } catch (const PartialBatchError& e) {
    aborted = true;
    unapplied = e.unapplied();
    // The typed cause is preserved behind the wrapper.
    EXPECT_THROW(std::rethrow_exception(e.cause()), memory::ArenaExhausted);
    // Counters stay exact through the abort: what the error claims was
    // applied is exactly what the graph holds.
    EXPECT_EQ(e.applied(), g.num_edges());
  }
  ASSERT_TRUE(aborted) << "a 1-chunk arena cannot hold 2000-edge chains";
  EXPECT_EQ(pressure_calls, 1);
  ASSERT_FALSE(unapplied.empty());

  // Differential on the committed prefix: the graph must equal the full
  // batch minus the reported remainder — nothing silently dropped, nothing
  // applied but reported missing.
  std::set<std::pair<VertexId, VertexId>> expected;
  for (const auto& e : batch) expected.insert({e.src, e.dst});
  for (const auto& e : unapplied) {
    ASSERT_TRUE(expected.erase({e.src, e.dst}))
        << "unapplied edge not in the batch (or reported twice)";
  }
  std::set<std::pair<VertexId, VertexId>> actual;
  for (const auto& t : graph_edges(g)) {
    actual.insert({std::get<0>(t), std::get<1>(t)});
  }
  EXPECT_EQ(actual, expected);

  // The graph survives: queries answer, deletion (which never allocates)
  // still works, and counters follow.
  std::vector<Edge> probe{{1, 10}, {1, 5000}};
  std::vector<std::uint8_t> out(probe.size(), 2);
  g.edges_exist(probe, out.data());
  EXPECT_EQ(out[0], actual.count({1, 10}) ? 1 : 0);
  EXPECT_EQ(out[1], 0);
  const std::uint64_t before = g.num_edges();
  if (!actual.empty()) {
    const auto victim = *actual.begin();
    const std::vector<Edge> erase{{victim.first, victim.second}};
    EXPECT_EQ(g.delete_edges(erase), 1u);
    EXPECT_EQ(g.num_edges(), before - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ArenaPressureSweep, ::testing::Values(1u, 8u));

TEST(ArenaPressure, RetryingTheReportedRemainderCompletesTheBatch) {
  // The contract PartialBatchError documents: insert(unapplied) on a graph
  // with headroom yields exactly the state a single successful insert of
  // the full batch would have produced.
  GraphConfig tight = pipeline_config(false, 2, 128, true);
  tight.vertex_capacity = 64;
  tight.max_arena_chunks = 1;
  DynGraphMap g(tight);
  const auto batch = hub_chain_batch(1200);
  std::vector<Edge> unapplied;
  try {
    g.insert_edges(batch);
    FAIL() << "expected exhaustion";
  } catch (const PartialBatchError& e) {
    unapplied = e.unapplied();
  }
  // Build the retry batch with the original weights (the remainder carries
  // (src, dst); weights come from the caller's batch).
  std::vector<WeightedEdge> retry;
  for (const auto& [src, dst] : unapplied) {
    retry.push_back({src, dst, dst - 10 + 1});
  }
  GraphConfig roomy = tight;
  roomy.max_arena_chunks = 0;  // unlimited
  DynGraphMap fresh(roomy);
  fresh.insert_edges(batch);

  // Not retryable in place (the limit still binds) — but the committed
  // prefix plus the remainder reconstructs the batch on a roomy twin.
  DynGraphMap healed(roomy);
  std::vector<WeightedEdge> committed;
  std::set<std::pair<VertexId, VertexId>> missing;
  for (const auto& e : unapplied) missing.insert({e.src, e.dst});
  for (const auto& e : batch) {
    if (!missing.count({e.src, e.dst})) committed.push_back(e);
  }
  healed.insert_edges(committed);
  healed.insert_edges(retry);
  expect_identical(healed, fresh);
}

TEST(ArenaPressure, InlineEngineOffPathAlsoDegradesGracefully) {
  // The scalar (batch_engine = false) path reaches the arena through the
  // same typed error: exhaustion must not corrupt counters there either.
  GraphConfig cfg = oracle_config(false);
  cfg.vertex_capacity = 64;
  cfg.max_arena_chunks = 1;
  DynGraphMap g(cfg);
  try {
    SerialOracleScope serial;
    g.insert_edges(hub_chain_batch(2000));
    FAIL() << "expected exhaustion";
  } catch (const PartialBatchError& e) {
    EXPECT_EQ(e.applied(), g.num_edges());
  } catch (const memory::ArenaExhausted&) {
    // The scalar path may surface the raw arena error; counters must
    // still be exact (checked below via a probe insert).
  }
  const std::uint64_t settled = g.num_edges();
  const std::vector<Edge> miss{{2, 3}};
  EXPECT_EQ(g.delete_edges(miss), 0u);
  EXPECT_EQ(g.num_edges(), settled);
}

}  // namespace
}  // namespace sg::core
