// Tests of the sharded, double-buffered batch pipeline (PR 3): interleaved
// insert/delete/search batches through the pipelined path must equal both
// the scalar Algorithm-1 oracle and the single-buffer PR 2 engine across
// shard counts, epoch sizes, and pool widths (including the degenerate
// 1-thread pipeline and pools wider than the shard count); most-recent-wins
// dedup must stay deterministic across shard AND epoch boundaries; targeted
// rehash must match the full scan while visiting strictly fewer tables; and
// the batched edge_weights API must agree with point lookups.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "src/core/batch_engine.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::core {
namespace {

using namespace testutil;

GraphConfig pipeline_config(bool undirected, std::uint32_t shards,
                            std::uint32_t epoch_edges, bool double_buffer) {
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  cfg.undirected = undirected;
  cfg.batch_engine = true;
  cfg.stage_shards = shards;
  cfg.pipeline_epoch_edges = epoch_edges;
  cfg.double_buffer = double_buffer;
  return cfg;
}

GraphConfig oracle_config(bool undirected) {
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  cfg.undirected = undirected;
  cfg.batch_engine = false;
  return cfg;
}

/// Skewed, duplicate-heavy batch: a few hub sources own most edges and the
/// same (src, dst) pair recurs with different weights — the shard- and
/// epoch-boundary dedup stress case.
std::vector<WeightedEdge> skewed_batch(std::uint64_t seed, std::size_t count,
                                       std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<WeightedEdge> batch(count);
  for (auto& e : batch) {
    const bool hub = rng.below(100) < 70;
    e = {hub ? static_cast<VertexId>(rng.below(5))
             : static_cast<VertexId>(rng.below(num_vertices)),
         static_cast<VertexId>(rng.below(hub ? 24 : num_vertices)),
         static_cast<Weight>(rng.below(1u << 16))};
  }
  return batch;
}

/// Drives interleaved insert / delete / search rounds through three graphs
/// — the pipelined engine under test, the single-buffer engine, and the
/// scalar oracle — asserting equality after every phase.
template <class Policy>
void run_pipeline_differential(bool undirected, std::uint32_t shards,
                               std::uint32_t epoch_edges, std::uint64_t seed) {
  DynGraph<Policy> pipelined(
      pipeline_config(undirected, shards, epoch_edges, true));
  DynGraph<Policy> single_buffer(pipeline_config(undirected, 1, 0, false));
  DynGraph<Policy> oracle(oracle_config(undirected));

  for (int round = 0; round < 3; ++round) {
    const auto inserts = round % 2 == 0
                             ? skewed_batch(seed + round, 700, 180)
                             : random_batch(seed + round, 700, 180);
    const std::uint64_t added = pipelined.insert_edges(inserts);
    EXPECT_EQ(added, single_buffer.insert_edges(inserts));
    {
      SerialOracleScope serial;
      EXPECT_EQ(added, oracle.insert_edges(inserts));
    }
    expect_identical(pipelined, oracle);
    expect_identical(pipelined, single_buffer);

    std::vector<Edge> erases;
    for (const auto& e : skewed_batch(seed + 50 + round, 300, 180)) {
      erases.push_back({e.src, e.dst});
    }
    const std::uint64_t removed = pipelined.delete_edges(erases);
    EXPECT_EQ(removed, single_buffer.delete_edges(erases));
    EXPECT_EQ(removed, oracle.delete_edges(erases));
    expect_identical(pipelined, oracle);

    std::vector<Edge> queries;
    for (const auto& e : random_batch(seed + 90 + round, 400, 220)) {
      queries.push_back({e.src, e.dst});
    }
    std::vector<std::uint8_t> out_pipelined(queries.size(), 2);
    std::vector<std::uint8_t> out_oracle(queries.size(), 2);
    pipelined.edges_exist(queries, out_pipelined.data());
    oracle.edges_exist(queries, out_oracle.data());
    EXPECT_EQ(out_pipelined, out_oracle);
  }
}

class PipelineThreadSweep : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { simt::ThreadPool::instance().resize(GetParam()); }
  void TearDown() override { simt::ThreadPool::instance().resize(0); }
};

TEST_P(PipelineThreadSweep, MapDirectedShardedEpochs) {
  // Epoch size 96 on 700-edge batches: many epochs, the double buffer is
  // exercised hard; shards 4 with pools of 1 and 8 covers shard count both
  // above and below the worker count.
  run_pipeline_differential<MapPolicy>(false, 4, 96, 11);
}
TEST_P(PipelineThreadSweep, MapUndirectedShardedEpochs) {
  run_pipeline_differential<MapPolicy>(true, 4, 96, 12);
}
TEST_P(PipelineThreadSweep, SetDirectedShardedEpochs) {
  run_pipeline_differential<SetPolicy>(false, 2, 128, 13);
}
TEST_P(PipelineThreadSweep, SetUndirectedAutoShards) {
  run_pipeline_differential<SetPolicy>(true, 0, 96, 14);
}
TEST_P(PipelineThreadSweep, MapUndirectedSingleShardManyEpochs) {
  run_pipeline_differential<MapPolicy>(true, 1, 64, 15);
}

// 1 = the degenerate serial pipeline (inline staging at submit); 8 = more
// workers than shards, so apply and stage genuinely share the pool.
INSTANTIATE_TEST_SUITE_P(Widths, PipelineThreadSweep,
                         ::testing::Values(1u, 8u));

TEST(PipelineDedup, MostRecentWinsAcrossEpochBoundaries) {
  // Duplicates of (5, 9) land in different epochs (epoch size 8); the
  // epoch fence must resolve them exactly as one unsplit batch would.
  DynGraphMap g(pipeline_config(false, 2, 8, true));
  std::vector<WeightedEdge> batch;
  for (Weight w = 1; w <= 40; ++w) batch.push_back({5, 9, w});
  batch.push_back({5, 10, 7});
  for (Weight w = 100; w <= 130; ++w) batch.push_back({5, 9, w});
  EXPECT_EQ(g.insert_edges(batch), 2u);
  EXPECT_GT(g.last_batch_stats().epochs, 1u);
  EXPECT_EQ(g.edge_weight(5, 9).value, 130u);
  EXPECT_EQ(g.degree(5), 2u);
}

TEST(PipelineDedup, SkewedDuplicatesDeterministicAcrossShardCounts) {
  // The same skewed duplicate-heavy batch must produce bit-identical
  // adjacency no matter how staging is sharded or split into epochs —
  // every occurrence of a (vertex, key) pair lands in the one shard owning
  // the vertex, so per-shard dedup is exhaustive by construction.
  const auto batch = skewed_batch(99, 3000, 64);
  DynGraphMap reference(pipeline_config(true, 1, 0, false));
  reference.insert_edges(batch);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    for (const std::uint32_t epoch : {0u, 128u}) {
      DynGraphMap sharded(pipeline_config(true, shards, epoch, true));
      sharded.insert_edges(batch);
      expect_identical(sharded, reference);
    }
  }
}

TEST(PipelineStats, ForcedEpochsReportStageAndApplyTime) {
  DynGraphMap g(pipeline_config(false, 2, 64, true));
  const auto batch = random_batch(3, 1000, 128);
  g.insert_edges(batch);
  const BatchPipelineStats& stats = g.last_batch_stats();
  EXPECT_EQ(stats.epochs, (1000 + 63) / 64);
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_GT(stats.stage_seconds, 0.0);
  EXPECT_GT(stats.apply_seconds, 0.0);
  EXPECT_GE(stats.overlap_seconds, 0.0);
}

TEST(ShardedStagingGuard, RunCrossingShardPartitionThrows) {
  // Staging a vertex into a shard that does not own it must be caught by
  // the partition guard — this is the invariant that makes cross-shard
  // dedup impossible to break silently. finalize() runs the guard as a
  // debug assertion; validate_partition() is its always-available form.
  ShardedStaging staged;
  staged.resize(2);
  const slabhash::TableRef table{0, 4};
  // Vertex 1 belongs to shard 1 (1 % 2); push it into shard 0.
  staged.shard(0).push(1, 7, table, 42);
  staged.shard(0).group_prepare(true);
  staged.shard(1).group_prepare(true);
  EXPECT_THROW(staged.validate_partition(), std::logic_error);
  // A correctly partitioned staging passes the guard and finalizes.
  ShardedStaging ok;
  ok.resize(2);
  ok.shard(1).push(1, 7, table, 42);
  ok.shard(0).group_prepare(true);
  ok.shard(1).group_prepare(true);
  EXPECT_NO_THROW(ok.validate_partition());
  EXPECT_EQ(ok.finalize(/*merge_free=*/true, false, false), 0u);
  EXPECT_EQ(ok.front().keys.size(), 1u);
}

// ---------------------------------------------------------------------------
// Batched weighted lookup (edge_weights)
// ---------------------------------------------------------------------------

TEST(EdgeWeights, MatchesPointLookupsEngineAndOracle) {
  const auto inserts = skewed_batch(7, 1500, 96);
  for (const bool engine : {true, false}) {
    GraphConfig cfg = engine ? pipeline_config(false, 2, 200, true)
                             : oracle_config(false);
    cfg.vertex_capacity = 96;
    DynGraphMap g(cfg);
    g.insert_edges(inserts);

    std::vector<Edge> queries;
    for (const auto& e : skewed_batch(8, 600, 128)) {  // hits + misses +
      queries.push_back({e.src, e.dst});               // unknown sources
    }
    queries.push_back({5, 5});        // self-loop: never stored
    queries.push_back({4000, 1});     // far out of range
    std::vector<Weight> weights(queries.size(), 0xDEAD);
    std::vector<std::uint8_t> found(queries.size(), 2);
    g.edge_weights(queries, weights.data(), found.data());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto expect = g.edge_weight(queries[i].src, queries[i].dst);
      EXPECT_EQ(found[i] != 0, expect.found) << "query " << i;
      EXPECT_EQ(weights[i], expect.found ? expect.value : 0u) << "query " << i;
    }
    // The found pointer is optional.
    std::vector<Weight> weights_only(queries.size(), 0xDEAD);
    g.edge_weights(queries, weights_only.data());
    EXPECT_EQ(weights, weights_only);
  }
}

TEST(EdgeWeights, EmptyBatchIsNoop) {
  DynGraphMap g(pipeline_config(false, 2, 0, true));
  g.edge_weights({}, nullptr, nullptr);
}

// ---------------------------------------------------------------------------
// Targeted (run-aware) rehash
// ---------------------------------------------------------------------------

/// Hub-heavy inserts: a handful of vertices grow chains far past one slab
/// while the long tail stays in its base slab.
std::vector<WeightedEdge> hub_batch(std::uint32_t num_vertices,
                                    std::uint32_t hub_degree) {
  std::vector<WeightedEdge> edges;
  for (VertexId hub = 0; hub < 3; ++hub) {
    for (std::uint32_t k = 0; k < hub_degree; ++k) {
      edges.push_back({hub, 10 + k, k});
    }
  }
  for (VertexId u = 3; u < num_vertices; ++u) {
    edges.push_back({u, u + 1, 1});
  }
  return edges;
}

TEST(TargetedRehash, MatchesFullScanAndVisitsFewerTables) {
  const auto edges = hub_batch(400, 200);
  DynGraphMap targeted(pipeline_config(false, 2, 0, true));
  DynGraphMap full(pipeline_config(false, 2, 0, true));
  targeted.insert_edges(edges);
  full.insert_edges(edges);

  // Apply observed the hub chains for free.
  EXPECT_FALSE(targeted.chain_feedback().empty());
  std::uint64_t histogram_total = 0;
  for (const std::uint64_t h : targeted.chain_feedback().hist) {
    histogram_total += h;
  }
  EXPECT_GT(histogram_total, 0u);

  const std::uint32_t rehashed_targeted = targeted.rehash_long_chains(1.0);
  const std::uint32_t rehashed_full =
      full.rehash_long_chains(1.0, /*full_scan=*/true);
  EXPECT_EQ(rehashed_targeted, rehashed_full);
  EXPECT_GT(rehashed_targeted, 0u);
  EXPECT_TRUE(targeted.last_rehash_stats().targeted);
  EXPECT_FALSE(full.last_rehash_stats().targeted);
  // The point of the feedback: strictly fewer tables examined.
  EXPECT_LT(targeted.last_rehash_stats().scanned,
            full.last_rehash_stats().scanned);
  expect_identical(targeted, full);

  // A second targeted pass finds nothing new and scans almost nothing.
  EXPECT_EQ(targeted.rehash_long_chains(1.0), 0u);
  EXPECT_LE(targeted.last_rehash_stats().scanned, 3u);
}

TEST(TargetedRehash, FallsBackToFullScanBelowOneSlab) {
  DynGraphMap g(pipeline_config(false, 1, 0, true));
  g.insert_edges(hub_batch(50, 40));
  g.rehash_long_chains(0.5);  // sub-slab threshold: must sweep everything
  EXPECT_FALSE(g.last_rehash_stats().targeted);
}

TEST(TargetedRehash, FeedbackSaturatesInsteadOfGrowingUnbounded) {
  // A graph mutated forever without ever calling rehash_long_chains must
  // not leak candidate entries: past the cap the list empties, saturation
  // is flagged (forcing the next rehash onto the complete full sweep),
  // and clear() restores targeted operation.
  ChainFeedback global;
  ChainFeedback chunk;
  global.candidates.assign(ChainFeedback::kMaxCandidates - 1, VertexId{7});
  for (int i = 0; i < 8; ++i) chunk.note_long(9, 3);
  global.merge_from(chunk);
  EXPECT_TRUE(global.saturated);
  EXPECT_TRUE(global.candidates.empty());
  EXPECT_GT(global.hist[1], 0u);  // the histogram keeps accumulating
  // Saturation survives further merges of unsaturated chunks.
  chunk.note_long(4, 2);
  global.merge_from(chunk);
  EXPECT_TRUE(global.saturated);
  global.clear();
  EXPECT_FALSE(global.saturated);
}

TEST(TargetedRehash, EngineOffAlwaysFullScans) {
  DynGraphMap g(oracle_config(false));
  g.insert_edges(hub_batch(50, 60));
  const std::uint32_t rehashed = g.rehash_long_chains(1.0);
  EXPECT_GT(rehashed, 0u);
  EXPECT_FALSE(g.last_rehash_stats().targeted);
}

}  // namespace
}  // namespace sg::core
