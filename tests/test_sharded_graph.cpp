// Cross-shard differential suite of the multi-shard serving tier
// (src/shard/): ShardedGraph against a single-DynGraph oracle across
// shard counts 1/2/4/8, map and set variants, directed and undirected,
// on uniform-random and power-law-skewed batches — plus the TSan-raced
// multi-submitter tests that pin the multi-graph conductor's
// epoch-consistent cross-shard analytics and its shutdown semantics.
//
// The oracle equivalence is structural: a tier and a single graph fed the
// same client batches must hold the SAME edge multiset (the tier's union
// of per-shard adjacencies equals the oracle's), the same num_edges, and
// the same per-vertex degrees — for any shard count, because routing by
// owner(src) moves rows between instances without changing what is
// stored.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/core/errors.hpp"
#include "src/persist/snapshot.hpp"
#include "src/shard/batch_router.hpp"
#include "src/shard/sharded_graph.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::shard {
namespace {

using core::DynGraph;
using core::Edge;
using core::GraphConfig;
using core::MapPolicy;
using core::SetPolicy;
using core::VertexId;
using core::Weight;
using core::WeightedEdge;
using core::testutil::graph_edges;
using core::testutil::random_batch;

constexpr std::uint32_t kVertices = 2048;

GraphConfig tier_config(bool undirected) {
  GraphConfig gc;
  gc.vertex_capacity = kVertices;
  gc.undirected = undirected;
  return gc;
}

template <class Policy>
ShardedGraph<Policy> make_tier(std::uint32_t shards, bool undirected) {
  ShardConfig sc;
  sc.shard_count = shards;
  sc.graph = tier_config(undirected);
  return ShardedGraph<Policy>(std::move(sc));
}

/// Union of the per-shard edge multisets — the tier-wide stored state.
template <class Policy>
std::multiset<std::tuple<VertexId, VertexId, Weight>> tier_edges(
    const ShardedGraph<Policy>& tier) {
  std::multiset<std::tuple<VertexId, VertexId, Weight>> edges;
  for (std::uint32_t s = 0; s < tier.shard_count(); ++s) {
    const auto shard = graph_edges(tier.shard(s));
    edges.insert(shard.begin(), shard.end());
  }
  return edges;
}

template <class Policy>
void expect_tier_equals_oracle(const ShardedGraph<Policy>& tier,
                               const DynGraph<Policy>& oracle) {
  ASSERT_EQ(tier.num_edges(), oracle.num_edges());
  for (VertexId u = 0; u < oracle.vertex_capacity(); ++u) {
    ASSERT_EQ(tier.degree(u), oracle.degree(u))
        << "degree mismatch at vertex " << u;
  }
  EXPECT_EQ(tier_edges(tier), graph_edges(oracle));
}

std::vector<Edge> strip(const std::vector<WeightedEdge>& batch) {
  std::vector<Edge> out;
  out.reserve(batch.size());
  for (const WeightedEdge& e : batch) out.push_back({e.src, e.dst});
  return out;
}

/// Hub-skewed batch: sources follow an approximate power law (u^3 pushes
/// most mass onto low ids), the shape that concentrates tier load onto
/// whichever shards own the hubs.
std::vector<WeightedEdge> power_law_batch(std::uint64_t seed,
                                          std::size_t count,
                                          std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<WeightedEdge> batch(count);
  for (auto& e : batch) {
    const double u = rng.uniform();
    e.src = static_cast<VertexId>(static_cast<double>(num_vertices - 1) * u *
                                  u * u);
    e.dst = static_cast<VertexId>(rng.below(num_vertices));
    e.weight = static_cast<Weight>(rng.below(1u << 16));
  }
  return batch;
}

// ---- routing layer ---------------------------------------------------------

TEST(BatchRouter, SplitsPreserveEveryItemAndInputOrderPerShard) {
  const auto batch = random_batch(7, 4096, kVertices);
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const auto routed = route_inserts(batch, shards, /*mirror=*/false);
    ASSERT_EQ(routed.items.size(), batch.size());
    ASSERT_EQ(routed.offsets.size(), shards + 1);
    // Every item landed on its owner, in input order within the shard.
    std::size_t cursor = 0;
    std::vector<std::vector<WeightedEdge>> expected(shards);
    for (const auto& e : batch) expected[owner_of(e.src, shards)].push_back(e);
    for (std::uint32_t s = 0; s < shards; ++s) {
      const auto sub = routed.shard_span(s);
      ASSERT_EQ(sub.size(), expected[s].size());
      for (std::size_t i = 0; i < sub.size(); ++i) {
        EXPECT_EQ(sub[i], expected[s][i]);
      }
      cursor += sub.size();
    }
    EXPECT_EQ(cursor, batch.size());
  }
}

TEST(BatchRouter, MirrorEmitsBothOrientationsExceptSelfLoops) {
  std::vector<WeightedEdge> batch = {{1, 2, 10}, {3, 3, 11}, {2, 1, 12}};
  const auto routed = route_inserts(batch, 4, /*mirror=*/true);
  // 2 mirrored + 1 self-loop unmirrored = 5 emissions.
  ASSERT_EQ(routed.items.size(), 5u);
  std::multiset<std::tuple<VertexId, VertexId, Weight>> seen;
  for (const auto& e : routed.items) seen.insert({e.src, e.dst, e.weight});
  const std::multiset<std::tuple<VertexId, VertexId, Weight>> expected = {
      {1, 2, 10}, {2, 1, 10}, {3, 3, 11}, {2, 1, 12}, {1, 2, 12}};
  EXPECT_EQ(seen, expected);
}

TEST(BatchRouter, QuerySeqNumbersAddressInputPositions) {
  const auto batch = random_batch(11, 1024, kVertices);
  const auto queries = strip(batch);
  const auto routed = route_queries(queries, 8);
  ASSERT_EQ(routed.items.size(), queries.size());
  ASSERT_EQ(routed.seq.size(), queries.size());
  std::vector<bool> covered(queries.size(), false);
  for (std::size_t i = 0; i < routed.items.size(); ++i) {
    const std::uint32_t pos = routed.seq[i];
    ASSERT_LT(pos, queries.size());
    EXPECT_FALSE(covered[pos]) << "duplicate seq " << pos;
    covered[pos] = true;
    EXPECT_EQ(routed.items[i], queries[pos]);
  }
}

// ---- differential: tier vs single-graph oracle -----------------------------

template <class Policy>
void run_differential(bool undirected) {
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedGraph<Policy> tier = make_tier<Policy>(shards, undirected);
    DynGraph<Policy> oracle(tier_config(undirected));
    std::uint64_t seed = 1000 + shards + (undirected ? 77 : 0);
    for (int round = 0; round < 4; ++round) {
      const auto batch = random_batch(seed++, 3000, kVertices);
      ASSERT_EQ(tier.insert_edges(batch), oracle.insert_edges(batch));
      // Erase a slice of the round's batch plus some never-inserted pairs.
      const auto plain = strip(batch);
      std::vector<Edge> erase(plain.begin(), plain.begin() + 700);
      const auto missing = random_batch(seed++, 300, kVertices);
      for (const auto& e : missing) erase.push_back({e.src, e.dst});
      ASSERT_EQ(tier.delete_edges(erase), oracle.delete_edges(erase));
      expect_tier_equals_oracle(tier, oracle);
    }
  }
}

TEST(ShardedDifferential, MapDirectedRandomBatches) {
  run_differential<MapPolicy>(false);
}
TEST(ShardedDifferential, MapUndirectedRandomBatches) {
  run_differential<MapPolicy>(true);
}
TEST(ShardedDifferential, SetDirectedRandomBatches) {
  run_differential<SetPolicy>(false);
}
TEST(ShardedDifferential, SetUndirectedRandomBatches) {
  run_differential<SetPolicy>(true);
}

TEST(ShardedDifferential, PowerLawSkewAcrossShardCounts) {
  for (std::uint32_t shards : {2u, 4u, 8u}) {
    for (bool undirected : {false, true}) {
      auto tier = make_tier<MapPolicy>(shards, undirected);
      DynGraph<MapPolicy> oracle(tier_config(undirected));
      std::uint64_t seed = 4242 + shards;
      for (int round = 0; round < 3; ++round) {
        const auto batch = power_law_batch(seed++, 4000, kVertices);
        ASSERT_EQ(tier.insert_edges(batch), oracle.insert_edges(batch));
      }
      expect_tier_equals_oracle(tier, oracle);
      // The skew materialized: the router saw an uneven shard split.
      const RouterStats rs = tier.router_stats();
      const auto [lo, hi] = std::minmax_element(rs.per_shard_items.begin(),
                                                rs.per_shard_items.end());
      EXPECT_GT(*hi, *lo);
    }
  }
}

TEST(ShardedDifferential, CrossShardDuplicatesMostRecentWins) {
  // The same (u, v) pair repeated within one batch and across batches,
  // with distinct weights: the tier must resolve to the LAST write exactly
  // like the oracle, for pairs whose two orientations land on different
  // shards (undirected) as well as duplicates within one shard.
  for (std::uint32_t shards : {2u, 4u, 8u}) {
    for (bool undirected : {false, true}) {
      auto tier = make_tier<MapPolicy>(shards, undirected);
      DynGraph<MapPolicy> oracle(tier_config(undirected));
      std::vector<WeightedEdge> first;
      for (VertexId u = 0; u < 64; ++u) {
        for (VertexId k = 1; k <= 4; ++k) {
          first.push_back({u, static_cast<VertexId>((u + k) % kVertices),
                           static_cast<Weight>(100 + u)});
          // In-batch duplicate with a later weight: most-recent-wins.
          first.push_back({u, static_cast<VertexId>((u + k) % kVertices),
                           static_cast<Weight>(200 + u)});
        }
      }
      ASSERT_EQ(tier.insert_edges(first), oracle.insert_edges(first));
      // Cross-batch overwrite of half the pairs.
      std::vector<WeightedEdge> second;
      for (std::size_t i = 0; i < first.size(); i += 4) {
        second.push_back({first[i].src, first[i].dst,
                          static_cast<Weight>(900 + (i % 50))});
      }
      ASSERT_EQ(tier.insert_edges(second), oracle.insert_edges(second));
      expect_tier_equals_oracle(tier, oracle);
    }
  }
}

TEST(ShardedDifferential, EraseReinsertChurn) {
  for (bool undirected : {false, true}) {
    auto tier = make_tier<MapPolicy>(4, undirected);
    DynGraph<MapPolicy> oracle(tier_config(undirected));
    std::uint64_t seed = 99;
    const auto base = random_batch(seed++, 2500, kVertices);
    ASSERT_EQ(tier.insert_edges(base), oracle.insert_edges(base));
    for (int round = 0; round < 3; ++round) {
      // Erase a rotating third, then reinsert it with fresh weights.
      std::vector<Edge> victims;
      for (std::size_t i = round; i < base.size(); i += 3) {
        victims.push_back({base[i].src, base[i].dst});
      }
      ASSERT_EQ(tier.delete_edges(victims), oracle.delete_edges(victims));
      std::vector<WeightedEdge> reinsert;
      for (const Edge& e : victims) {
        reinsert.push_back(
            {e.src, e.dst, static_cast<Weight>(5000 + round)});
      }
      ASSERT_EQ(tier.insert_edges(reinsert), oracle.insert_edges(reinsert));
      expect_tier_equals_oracle(tier, oracle);
    }
  }
}

TEST(ShardedDifferential, ScatterGatherAnswersInInputOrder) {
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    auto tier = make_tier<MapPolicy>(shards, false);
    DynGraph<MapPolicy> oracle(tier_config(false));
    const auto batch = random_batch(7777, 3000, kVertices);
    tier.insert_edges(batch);
    oracle.insert_edges(batch);
    // Queries mix present and absent pairs in interleaved input order.
    std::vector<Edge> queries;
    const auto absent = random_batch(8888, batch.size(), kVertices);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      queries.push_back({batch[i].src, batch[i].dst});
      queries.push_back({absent[i].src, absent[i].dst});
    }
    std::vector<std::uint8_t> got(queries.size(), 0);
    std::vector<std::uint8_t> want(queries.size(), 0);
    tier.edges_exist(queries, got.data());
    oracle.edges_exist(queries, want.data());
    ASSERT_EQ(got, want);

    std::vector<Weight> got_w(queries.size(), 0), want_w(queries.size(), 0);
    std::vector<std::uint8_t> got_f(queries.size(), 0),
        want_f(queries.size(), 0);
    tier.edge_weights(queries, got_w.data(), got_f.data());
    oracle.edge_weights(queries, want_w.data(), want_f.data());
    EXPECT_EQ(got_w, want_w);
    EXPECT_EQ(got_f, want_f);
  }
}

// ---- scheduled path: the multi-graph conductor -----------------------------

TEST(ShardedScheduled, SubmittedBatchesMatchOracleAndCounts) {
  for (bool undirected : {false, true}) {
    auto tier = make_tier<MapPolicy>(4, undirected);
    DynGraph<MapPolicy> oracle(tier_config(undirected));
    std::uint64_t seed = 31337;
    for (int round = 0; round < 3; ++round) {
      auto batch = random_batch(seed++, 2000, kVertices);
      // Waiting each future before the next submission pins exact counts
      // (no cross-batch coalescing inside any shard's scheduler).
      const std::uint64_t tier_count = tier.submit_insert(batch).get();
      ASSERT_EQ(tier_count, oracle.insert_edges(batch));
      const auto plain = strip(batch);
      std::vector<Edge> erase(plain.begin(), plain.begin() + 500);
      ASSERT_EQ(tier.submit_erase(erase).get(), oracle.delete_edges(erase));
    }
    tier.drain();
    expect_tier_equals_oracle(tier, oracle);

    const auto queries = strip(random_batch(seed++, 1500, kVertices));
    const auto got = tier.submit_edges_exist(queries).get();
    std::vector<std::uint8_t> want(queries.size(), 0);
    oracle.edges_exist(queries, want.data());
    EXPECT_EQ(got, want);
    const auto weights = tier.submit_edge_weights(queries).get();
    std::vector<Weight> want_w(queries.size(), 0);
    std::vector<std::uint8_t> want_f(queries.size(), 0);
    oracle.edge_weights(queries, want_w.data(), want_f.data());
    EXPECT_EQ(weights.weights, want_w);
    EXPECT_EQ(weights.found, want_f);

    const TierStats ts = tier.tier_stats();
    EXPECT_EQ(ts.tier_mutations, 6u);
    EXPECT_EQ(ts.tier_queries, 2u);
    EXPECT_GE(ts.shard_totals.submitted_mutations, ts.tier_mutations);
  }
}

TEST(ShardedScheduled, InlineModeMatchesScheduledMode) {
  ShardConfig inline_cfg;
  inline_cfg.shard_count = 4;
  inline_cfg.graph = tier_config(true);
  inline_cfg.graph.phase_scheduler = false;  // differential reference
  ShardedGraph<MapPolicy> inline_tier(std::move(inline_cfg));
  auto scheduled = make_tier<MapPolicy>(4, true);

  const auto batch = random_batch(555, 3000, kVertices);
  const std::uint64_t a = inline_tier.submit_insert(batch).get();
  const std::uint64_t b = scheduled.submit_insert(batch).get();
  EXPECT_EQ(a, b);
  std::atomic<std::uint64_t> inline_count{0}, scheduled_count{0};
  inline_tier.submit_analytics(
      [&] { inline_count = inline_tier.num_edges(); }).get();
  scheduled.submit_analytics(
      [&] { scheduled_count = scheduled.num_edges(); }).get();
  scheduled.drain();
  EXPECT_EQ(inline_count.load(), scheduled_count.load());
  EXPECT_EQ(tier_edges(inline_tier), tier_edges(scheduled));
}

TEST(ShardedScheduled, CrossShardAnalyticsSeesEpochConsistentCut) {
  // Every mutation batch is exactly kBatch unique directed edges, and the
  // erase thread only retires batches whose insert future already
  // resolved — so at ANY fenced cut the tier-wide edge count is a
  // multiple of kBatch. A fence that caught a batch half-applied (some
  // shards yes, others not yet) would observe a non-multiple: this is the
  // batch-atomicity invariant of the admission order.
  constexpr std::uint32_t kBatch = 256;
  constexpr int kRounds = 12;
  auto tier = make_tier<MapPolicy>(4, false);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread analytics([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto f = tier.submit_analytics([&] {
        if (tier.num_edges() % kBatch != 0) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      });
      f.get();
    }
  });

  // Two inserter lanes over disjoint source ranges; each lane erases its
  // own committed batches on a lag.
  auto lane = [&](VertexId base, std::uint64_t /*seed*/) {
    std::vector<std::vector<Edge>> committed;
    std::uint32_t counter = 0;  // per-lane; makes every pair unique forever
    for (int r = 0; r < kRounds; ++r) {
      std::vector<WeightedEdge> batch;
      batch.reserve(kBatch);
      while (batch.size() < kBatch) {
        const VertexId src = base + static_cast<VertexId>(counter % 512);
        const VertexId dst = 100000 + counter;
        ++counter;
        batch.push_back({src, dst, static_cast<Weight>(r + 1)});
      }
      std::vector<Edge> plain = strip(batch);
      // Counts are group totals (concurrent lanes' sub-batches may
      // coalesce inside a shard's scheduler), so only completion — not
      // the value — is asserted here; the fenced %kBatch invariant below
      // is the real check.
      (void)tier.submit_insert(std::move(batch)).get();
      committed.push_back(std::move(plain));
      if (committed.size() >= 3) {
        // Retire the oldest committed batch — all kBatch edges at once.
        (void)tier.submit_erase(std::move(committed.front())).get();
        committed.erase(committed.begin());
      }
    }
  };
  std::thread lane_a([&] { lane(0, 1); });
  std::thread lane_b([&] { lane(4096, 2); });
  lane_a.join();
  lane_b.join();
  stop.store(true, std::memory_order_release);
  analytics.join();
  tier.drain();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(tier.num_edges() % kBatch, 0u);
  EXPECT_GT(tier.tier_stats().fences_completed, 0u);
}

TEST(ShardedScheduled, SixMixedSubmittersEqualSerializedExecution) {
  // 6 concurrent submitters of every kind against a 4-shard tier. The
  // mutation lanes own disjoint key ranges, so the final state is
  // order-independent and must equal a serial replay into an oracle.
  auto tier = make_tier<MapPolicy>(4, false);
  DynGraph<MapPolicy> oracle(tier_config(false));
  constexpr int kRounds = 10;
  constexpr std::size_t kBatch = 400;

  auto make_lane_batch = [](VertexId base, int round) {
    std::vector<WeightedEdge> batch;
    batch.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      const VertexId src = base + static_cast<VertexId>(i % 97);
      const VertexId dst =
          base + 100 + static_cast<VertexId>((i * 31 + round * 7) % 4001);
      batch.push_back({src, dst, static_cast<Weight>(round * 1000 + i)});
    }
    return batch;
  };

  std::atomic<bool> stop{false};
  auto mutation_lane = [&](VertexId base, bool erase_tail) {
    for (int r = 0; r < kRounds; ++r) {
      auto batch = make_lane_batch(base, r);
      tier.submit_insert(batch).get();
      if (erase_tail && r % 2 == 1) {
        // Erase the previous round's batch (committed above on r-1).
        const auto victims = strip(make_lane_batch(base, r - 1));
        tier.submit_erase(victims).get();
      }
    }
  };
  auto query_lane = [&](bool weighted) {
    util::Xoshiro256 rng(weighted ? 5 : 6);
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<Edge> queries;
      for (int i = 0; i < 256; ++i) {
        queries.push_back(
            {static_cast<VertexId>(rng.below(1 << 15)),
             static_cast<VertexId>(rng.below(1 << 15))});
      }
      if (weighted) {
        (void)tier.submit_edge_weights(std::move(queries)).get();
      } else {
        (void)tier.submit_edges_exist(std::move(queries)).get();
      }
    }
  };
  auto analytics_lane = [&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t observed = 0;
      tier.submit_analytics([&] { observed = tier.num_edges(); }).get();
      (void)observed;
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(mutation_lane, VertexId{0}, false);
  threads.emplace_back(mutation_lane, VertexId{100000}, true);
  threads.emplace_back(mutation_lane, VertexId{200000}, true);
  threads.emplace_back(query_lane, false);
  threads.emplace_back(query_lane, true);
  threads.emplace_back(analytics_lane);
  threads[0].join();
  threads[1].join();
  threads[2].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t i = 3; i < threads.size(); ++i) threads[i].join();
  tier.drain();

  // Serial replay of the same per-lane program.
  for (VertexId base : {VertexId{0}, VertexId{100000}, VertexId{200000}}) {
    const bool erase_tail = base != 0;
    for (int r = 0; r < kRounds; ++r) {
      const auto batch = make_lane_batch(base, r);
      oracle.insert_edges(batch);
      if (erase_tail && r % 2 == 1) {
        const auto victims = strip(make_lane_batch(base, r - 1));
        oracle.delete_edges(victims);
      }
    }
  }
  expect_tier_equals_oracle(tier, oracle);
}

// ---- fences vs shutdown ----------------------------------------------------

TEST(ShardedShutdown, DestructorResolvesEveryPendingFuture) {
  std::vector<std::future<std::uint64_t>> mutations;
  std::vector<std::future<std::vector<std::uint8_t>>> queries;
  std::vector<std::future<void>> fences;
  std::atomic<bool> gate{false};
  {
    auto tier = std::make_unique<ShardedGraph<MapPolicy>>([] {
      ShardConfig sc;
      sc.shard_count = 4;
      sc.graph = tier_config(false);
      return sc;
    }());
    // A fence that parks the whole tier until the gate opens, then a
    // backlog of every submission kind behind it.
    fences.push_back(tier->submit_analytics([&] {
      while (!gate.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }));
    for (int i = 0; i < 8; ++i) {
      mutations.push_back(
          tier->submit_insert(random_batch(i, 500, kVertices)));
      queries.push_back(
          tier->submit_edges_exist(strip(random_batch(i, 200, kVertices))));
    }
    fences.push_back(tier->submit_analytics([] {}));
    gate.store(true, std::memory_order_release);
    // Destructor: finishes what is in flight, rejects the rest — every
    // future below must resolve either way.
  }
  auto resolves = [](auto& future) {
    try {
      (void)future.get();
      return true;
    } catch (const core::SubmitRejected&) {
      return true;  // rejected at shutdown — resolved, not dropped
    } catch (const core::PartialBatchError&) {
      // A tier mutation caught mid-shutdown: some shards' sub-batches
      // committed before their scheduler stopped, the rest were rejected
      // — surfaced as the exact partial outcome.
      return true;
    }
  };
  for (auto& f : fences) EXPECT_TRUE(resolves(f));
  for (auto& f : mutations) EXPECT_TRUE(resolves(f));
  for (auto& f : queries) EXPECT_TRUE(resolves(f));
}

TEST(ShardedShutdown, AbandonedFenceAbortsInsteadOfHanging) {
  // Destroy the tier immediately after queueing fences behind a slow
  // insert: queued barrier closures are rejected by their shard's
  // scheduler, the participant token aborts the fence, and both futures
  // resolve — nothing deadlocks waiting for arrivals that cannot come.
  std::future<void> fence_a, fence_b;
  {
    auto tier = make_tier<MapPolicy>(4, false);
    (void)tier.submit_insert(random_batch(3, 20000, kVertices));
    fence_a = tier.submit_analytics([] {});
    fence_b = tier.submit_analytics([] {});
  }
  auto resolved = [](std::future<void>& f) {
    try {
      f.get();
      return true;
    } catch (const core::SubmitRejected&) {
      return true;
    }
  };
  EXPECT_TRUE(resolved(fence_a));
  EXPECT_TRUE(resolved(fence_b));
}

// ---- durable tier cuts -----------------------------------------------------

class ShardTempDir {
 public:
  ShardTempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "sg_shard_XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = tmpl;
  }
  ~ShardTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

TEST(ShardedSnapshot, PerShardFilesRestoreIntoIdenticalTier) {
  ShardTempDir dir;
  const std::string prefix = dir.file("tier.snap");
  auto tier = make_tier<MapPolicy>(4, true);
  const auto batch = random_batch(21, 5000, kVertices);
  tier.submit_insert(batch).get();
  tier.submit_snapshot(prefix).get();
  tier.drain();

  auto restored = make_tier<MapPolicy>(4, true);
  for (std::uint32_t s = 0; s < restored.shard_count(); ++s) {
    persist::restore_into(
        restored.shard(s),
        ShardedGraphMap::shard_snapshot_path(prefix, s));
  }
  EXPECT_EQ(tier_edges(tier), tier_edges(restored));
  EXPECT_EQ(tier.num_edges(), restored.num_edges());
  EXPECT_EQ(tier.tier_stats().tier_snapshots, 1u);
}

}  // namespace
}  // namespace sg::shard
