// Erase-dominant stress differential for the staged batch engine: long
// churn streams where deletions outnumber insertions, with duplicate erase
// keys, misses (never-inserted and already-erased pairs), self-loops, and
// immediate reinsert-after-erase cycles — swept across stage shard counts
// and pipeline epoch sizes, for both graph variants and both
// directednesses. The oracle is the scalar Algorithm-1/2 path
// (config.batch_engine = false); the bulk engine must match it edge-for-
// edge and count-for-count after every phase.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/util/prng.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::core {
namespace {

using namespace testutil;

struct StressShape {
  std::uint32_t stage_shards;
  std::uint32_t epoch_edges;
};

GraphConfig stress_config(bool batch_engine, bool undirected,
                          const StressShape& shape) {
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  cfg.undirected = undirected;
  cfg.batch_engine = batch_engine;
  if (batch_engine) {
    cfg.stage_shards = shape.stage_shards;
    cfg.pipeline_epoch_edges = shape.epoch_edges;
  }
  return cfg;
}

/// Erase batch stressing the deletion path: ~half drawn from live edges
/// (with deliberate duplicates), the rest misses — never-inserted pairs,
/// pairs erased in an earlier round, and self-loops.
std::vector<Edge> adversarial_erases(util::Xoshiro256& rng,
                                     const std::vector<WeightedEdge>& live,
                                     std::size_t count) {
  std::vector<Edge> erases;
  erases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t kind = rng.below(8);
    if (kind < 4 && !live.empty()) {
      const auto& e = live[rng.below(live.size())];
      erases.push_back({e.src, e.dst});
      if (kind == 0) erases.push_back({e.src, e.dst});  // in-batch duplicate
    } else if (kind < 6) {
      // Miss: vertices beyond anything the insert stream touches.
      erases.push_back({static_cast<VertexId>(300 + rng.below(64)),
                        static_cast<VertexId>(300 + rng.below(64))});
    } else if (kind == 6) {
      const auto v = static_cast<VertexId>(rng.below(200));
      erases.push_back({v, v});  // self-loop (never present: inserts drop them)
    } else if (!live.empty()) {
      const auto& e = live[rng.below(live.size())];
      erases.push_back({e.dst, e.src});  // reverse pair: miss when directed
    }
  }
  return erases;
}

template <class Policy>
void run_erase_stress(bool undirected, const StressShape& shape,
                      std::uint64_t seed) {
  DynGraph<Policy> bulk(stress_config(true, undirected, shape));
  DynGraph<Policy> scalar(stress_config(false, undirected, shape));
  util::Xoshiro256 rng(seed);

  // Seed population, then erase-dominant churn: each round erases ~2x the
  // edges it inserts, and reinserts a slice of what it just erased (the
  // tombstone-reuse path).
  std::vector<WeightedEdge> history = random_batch(seed, 1200, 200);
  bulk.insert_edges(history);
  {
    SerialOracleScope serial;
    scalar.insert_edges(history);
  }
  expect_identical(bulk, scalar);

  for (int round = 0; round < 6; ++round) {
    const auto erases = adversarial_erases(rng, history, 400);
    const std::uint64_t removed = bulk.delete_edges(erases);
    {
      SerialOracleScope serial;
      EXPECT_EQ(removed, scalar.delete_edges(erases)) << "round " << round;
    }
    expect_identical(bulk, scalar);

    // Churn: reinsert a third of the erased pairs with fresh weights, plus
    // a trickle of brand-new edges (also tracked for future erase rounds).
    std::vector<WeightedEdge> reinserts;
    for (std::size_t i = 0; i < erases.size(); i += 3) {
      reinserts.push_back({erases[i].src, erases[i].dst,
                           static_cast<Weight>(rng.below(1u << 16))});
    }
    const auto fresh = random_batch(seed + 100 + round, 150, 200);
    reinserts.insert(reinserts.end(), fresh.begin(), fresh.end());
    const std::uint64_t added = bulk.insert_edges(reinserts);
    {
      SerialOracleScope serial;
      EXPECT_EQ(added, scalar.insert_edges(reinserts)) << "round " << round;
    }
    expect_identical(bulk, scalar);
    history.insert(history.end(), reinserts.begin(), reinserts.end());
  }

  // Drain: erase every edge ever inserted (plus all the accumulated
  // duplicates) in one giant batch — the graph must end exactly empty.
  std::vector<Edge> drain;
  for (const auto& e : history) drain.push_back({e.src, e.dst});
  EXPECT_EQ(bulk.delete_edges(drain), [&] {
    SerialOracleScope serial;
    return scalar.delete_edges(drain);
  }());
  expect_identical(bulk, scalar);
  EXPECT_EQ(bulk.num_edges(), 0u);
}

class BulkEraseStress
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(BulkEraseStress, MapDirected) {
  run_erase_stress<MapPolicy>(
      false, {std::get<0>(GetParam()), std::get<1>(GetParam())}, 11);
}
TEST_P(BulkEraseStress, MapUndirected) {
  run_erase_stress<MapPolicy>(
      true, {std::get<0>(GetParam()), std::get<1>(GetParam())}, 12);
}
TEST_P(BulkEraseStress, SetDirected) {
  run_erase_stress<SetPolicy>(
      false, {std::get<0>(GetParam()), std::get<1>(GetParam())}, 13);
}
TEST_P(BulkEraseStress, SetUndirected) {
  run_erase_stress<SetPolicy>(
      true, {std::get<0>(GetParam()), std::get<1>(GetParam())}, 14);
}

INSTANTIATE_TEST_SUITE_P(
    ShardAndEpochSweep, BulkEraseStress,
    ::testing::Values(std::make_tuple(1u, 1u << 20),   // one shard, one epoch
                      std::make_tuple(2u, 256u),       // several epochs
                      std::make_tuple(4u, 64u)),       // many tiny epochs
    [](const ::testing::TestParamInfo<std::tuple<std::uint32_t, std::uint32_t>>&
           info) {
      return "shards" + std::to_string(std::get<0>(info.param)) + "_epoch" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sg::core
