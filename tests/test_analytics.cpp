// Analytics tests: triangle counting must agree across all four structures
// (the Table VII precondition), BFS/CC must match reference algorithms, and
// the frontier operators must behave.
#include <gtest/gtest.h>

#include <queue>

#include "src/analytics/bfs.hpp"
#include "src/analytics/connected_components.hpp"
#include "src/analytics/dynamic_triangle_count.hpp"
#include "src/analytics/triangle_count.hpp"
#include "src/datasets/generators.hpp"

namespace sg::analytics {
namespace {

using baselines::Csr;
using baselines::faim::FaimGraph;
using baselines::hornet::HornetGraph;
using core::DynGraphSet;
using core::GraphConfig;
using core::VertexId;
using core::WeightedEdge;

/// Brute-force reference triangle counter.
std::uint64_t tc_reference(std::uint32_t n,
                           const std::vector<WeightedEdge>& edges) {
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const auto& e : edges) {
    if (e.src != e.dst) adj[e.src][e.dst] = true;
  }
  std::uint64_t count = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (!adj[u][v]) continue;
      for (std::uint32_t w = v + 1; w < n; ++w) {
        if (adj[u][w] && adj[v][w]) ++count;
      }
    }
  }
  return count;
}

struct AllStructures {
  Csr csr;
  HornetGraph hornet;
  FaimGraph faim;
  DynGraphSet slab;

  explicit AllStructures(const datasets::Coo& coo)
      : csr(Csr::from_edges(coo.num_vertices, coo.edges)),
        hornet(coo.num_vertices),
        faim(coo.num_vertices),
        slab([&] {
          GraphConfig cfg;
          cfg.vertex_capacity = coo.num_vertices;
          return cfg;
        }()) {
    hornet.bulk_build(coo.edges);
    hornet.sort_adjacency_lists();
    faim.insert_edges(coo.edges);
    faim.sort_adjacency_lists();
    slab.bulk_build(coo.edges);
  }
};

TEST(TriangleCount, KnownTinyGraphs) {
  // Triangle 0-1-2 plus a pendant edge.
  datasets::Coo coo;
  coo.num_vertices = 4;
  for (auto [u, v] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {1, 2}, {0, 2}, {2, 3}}) {
    coo.edges.push_back({u, v, 0});
    coo.edges.push_back({v, u, 0});
  }
  AllStructures s(coo);
  EXPECT_EQ(tc_csr(s.csr), 1u);
  EXPECT_EQ(tc_hornet(s.hornet), 1u);
  EXPECT_EQ(tc_faim(s.faim), 1u);
  EXPECT_EQ(tc_slabgraph(s.slab), 1u);
}

TEST(TriangleCount, CompleteGraphK6) {
  datasets::Coo coo;
  coo.num_vertices = 6;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = 0; v < 6; ++v) {
      if (u != v) coo.edges.push_back({u, v, 0});
    }
  }
  AllStructures s(coo);
  const std::uint64_t expected = 20;  // C(6,3)
  EXPECT_EQ(tc_csr(s.csr), expected);
  EXPECT_EQ(tc_hornet(s.hornet), expected);
  EXPECT_EQ(tc_faim(s.faim), expected);
  EXPECT_EQ(tc_slabgraph(s.slab), expected);
}

TEST(TriangleCount, TriangleFreeBipartite) {
  datasets::Coo coo;
  coo.num_vertices = 10;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 5; v < 10; ++v) {
      coo.edges.push_back({u, v, 0});
      coo.edges.push_back({v, u, 0});
    }
  }
  AllStructures s(coo);
  EXPECT_EQ(tc_csr(s.csr), 0u);
  EXPECT_EQ(tc_slabgraph(s.slab), 0u);
}

class TriangleAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriangleAgreement, AllFourStructuresAgreeOnRandomGraphs) {
  const datasets::Coo coo = datasets::make_rmat(256, 256 * 12, GetParam());
  AllStructures s(coo);
  const std::uint64_t expected = tc_reference(coo.num_vertices, coo.edges);
  EXPECT_EQ(tc_csr(s.csr), expected);
  EXPECT_EQ(tc_hornet(s.hornet), expected);
  EXPECT_EQ(tc_faim(s.faim), expected);
  EXPECT_EQ(tc_slabgraph(s.slab), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TriangleCount, MapVariantMatchesSetVariant) {
  const datasets::Coo coo = datasets::make_delaunay(900, 3);
  GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  core::DynGraphMap map_graph(cfg);
  map_graph.bulk_build(coo.edges);
  DynGraphSet set_graph(cfg);
  set_graph.bulk_build(coo.edges);
  EXPECT_EQ(tc_slabgraph_map(map_graph), tc_slabgraph(set_graph));
}

TEST(TriangleCount, TracksDeletions) {
  datasets::Coo coo;
  coo.num_vertices = 4;
  for (auto [u, v] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}}) {
    coo.edges.push_back({u, v, 0});
    coo.edges.push_back({v, u, 0});
  }
  GraphConfig cfg;
  cfg.vertex_capacity = 4;
  cfg.undirected = true;
  DynGraphSet g(cfg);
  const auto unique = coo.unique_undirected_edges();
  g.insert_edges(unique);
  EXPECT_EQ(tc_slabgraph(g), 2u);  // 0-1-2 and 1-2-3
  const core::Edge cut{1, 2};
  g.delete_edges({&cut, 1});
  EXPECT_EQ(tc_slabgraph(g), 0u);
}

// ---- BFS / CC ---------------------------------------------------------------

NeighborFn slab_neighbors(const DynGraphSet& g) {
  return [&g](VertexId u, const std::function<void(VertexId)>& visit) {
    g.for_each_neighbor(u, [&](VertexId v, core::Weight) { visit(v); });
  };
}

std::vector<std::uint32_t> bfs_reference(const datasets::Coo& coo,
                                         VertexId source) {
  std::vector<std::vector<VertexId>> adj(coo.num_vertices);
  for (const auto& e : coo.edges) adj[e.src].push_back(e.dst);
  std::vector<std::uint32_t> dist(coo.num_vertices, kUnreached);
  std::queue<VertexId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (VertexId v : adj[u]) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

TEST(Bfs, MatchesReferenceOnMesh) {
  const datasets::Coo coo = datasets::make_delaunay(1024, 5);
  GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  DynGraphSet g(cfg);
  g.bulk_build(coo.edges);
  const auto got = bfs(coo.num_vertices, slab_neighbors(g), 0);
  const auto expected = bfs_reference(coo, 0);
  EXPECT_EQ(got, expected);
}

TEST(Bfs, UnreachableVerticesStayUnreached) {
  datasets::Coo coo;
  coo.num_vertices = 5;
  coo.edges = {{0, 1, 0}, {1, 0, 0}};  // 2,3,4 isolated
  GraphConfig cfg;
  cfg.vertex_capacity = 5;
  DynGraphSet g(cfg);
  g.bulk_build(coo.edges);
  const auto dist = bfs(5, slab_neighbors(g), 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreached);
  EXPECT_EQ(dist[4], kUnreached);
}

TEST(Bfs, RespondsToDynamicUpdates) {
  GraphConfig cfg;
  cfg.vertex_capacity = 8;
  cfg.undirected = true;
  DynGraphSet g(cfg);
  std::vector<WeightedEdge> chain = {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}};
  g.insert_edges(chain);
  auto dist = bfs(8, slab_neighbors(g), 0);
  EXPECT_EQ(dist[3], 3u);
  // Add a shortcut, distances shrink.
  const WeightedEdge shortcut{0, 3, 0};
  g.insert_edges({&shortcut, 1});
  dist = bfs(8, slab_neighbors(g), 0);
  EXPECT_EQ(dist[3], 1u);
  // Cut it again, distances recover.
  const core::Edge cut{0, 3};
  g.delete_edges({&cut, 1});
  dist = bfs(8, slab_neighbors(g), 0);
  EXPECT_EQ(dist[3], 3u);
}

TEST(ConnectedComponents, CountsComponents) {
  datasets::Coo coo;
  coo.num_vertices = 7;
  // Components {0,1,2}, {3,4}, {5}, {6}.
  for (auto [u, v] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {1, 2}, {3, 4}}) {
    coo.edges.push_back({u, v, 0});
    coo.edges.push_back({v, u, 0});
  }
  GraphConfig cfg;
  cfg.vertex_capacity = 7;
  DynGraphSet g(cfg);
  g.bulk_build(coo.edges);
  const auto labels = connected_components(7, slab_neighbors(g));
  EXPECT_EQ(count_components(labels), 4u);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(Frontier, AdvanceAndFilter) {
  GraphConfig cfg;
  cfg.vertex_capacity = 8;
  DynGraphSet g(cfg);
  std::vector<WeightedEdge> edges = {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}};
  g.insert_edges(edges);
  Frontier f({0});
  const Frontier next = advance(f, slab_neighbors(g),
                                [](VertexId, VertexId) { return true; });
  EXPECT_EQ(next.size(), 3u);
  const Frontier odd = filter(next, [](VertexId v) { return v % 2 == 1; });
  EXPECT_EQ(odd.size(), 2u);
}

// ---- dynamic TC harness -------------------------------------------------------

TEST(DynamicTc, RunsAndCountsConsistently) {
  const datasets::Coo coo = datasets::make_rmat(512, 512 * 8, 11);
  const auto result = run_dynamic_tc(coo, 3, coo.edges.size());
  ASSERT_EQ(result.ours.size(), 3u);
  ASSERT_EQ(result.recount.size(), 3u);
  ASSERT_EQ(result.hornet.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    // Same stream + same semantics => same ABSOLUTE triangle totals per
    // iteration across the delta pipeline, the full recount, and Hornet.
    EXPECT_EQ(result.ours[i].triangles, result.recount[i].triangles) << i;
    EXPECT_EQ(result.ours[i].triangles, result.hornet[i].triangles) << i;
    if (i > 0) {
      EXPECT_GE(result.ours[i].cumulative_ms, result.ours[i - 1].cumulative_ms);
      EXPECT_GE(result.ours[i].triangles, result.ours[i - 1].triangles);
    }
  }
  // 3 uncapped batches drain the post-preload tail, so the final total is
  // the whole graph's triangle count.
  EXPECT_EQ(result.ours.back().triangles,
            tc_reference(coo.num_vertices, coo.edges));
}

TEST(DynamicTc, ZeroIterationsEmpty) {
  const datasets::Coo coo = datasets::make_delaunay(256, 1);
  const auto result = run_dynamic_tc(coo, 0, 1000);
  EXPECT_TRUE(result.ours.empty());
  EXPECT_TRUE(result.recount.empty());
  EXPECT_TRUE(result.hornet.empty());
}

}  // namespace
}  // namespace sg::analytics
