// Fault-injection harness (docs/ROBUSTNESS.md): randomized, seeded fault
// schedules against the full stack — arena exhaustion (dynamic and bulk),
// staging jobs dying on pool threads, conductor stalls — at pool widths
// 1/4/8. The invariants under ANY schedule:
//
//   * every submitted future RESOLVES — to a value, a PartialBatchError, or
//     a SubmitRejected — never hangs, never std::terminate;
//   * the graph is differentially equal to the oracle on the committed
//     prefix: replaying each future's reported applied/unapplied split
//     reconstructs exactly the edge set the graph holds;
//   * the structure survives: after disarming, it serves inserts and
//     queries as if nothing happened (no leaked locks, no wedged conductor,
//     no corrupt counters).
//
// Requires -DSLABGRAPH_FAULTS=ON (the fault-injection CI job); in normal
// builds the whole suite SKIPs so the auto-registered binary stays green.
// Schedules derive from SG_FAULT_SEED (default 42) so CI sweeps seeds and
// any failure replays from the seed alone.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/util/fault_injection.hpp"

#ifndef SLABGRAPH_FAULTS

namespace sg::util {
namespace {
TEST(FaultInjection, RequiresFaultBuild) {
  GTEST_SKIP() << "build with -DSLABGRAPH_FAULTS=ON to run the fault harness";
}
}  // namespace
}  // namespace sg::util

#else  // SLABGRAPH_FAULTS

#include <atomic>
#include <future>
#include <mutex>
#include <thread>

#include "src/core/errors.hpp"
#include "src/memory/slab_arena.hpp"
#include "src/simt/thread_pool.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::core {
namespace {

using util::FaultInjector;
using util::FaultSite;
using util::FaultSpec;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("SG_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

/// RAII: no test leaves the process-wide injector armed.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::instance().disarm_all(); }
};

// --------------------------------------------------------------------------
// Injector unit tests
// --------------------------------------------------------------------------

TEST(FaultInjector, FiresOnTheScheduledArrivalAndPeriod) {
  DisarmGuard guard;
  auto& inj = FaultInjector::instance();
  inj.arm(FaultSite::kArenaAllocate, FaultSpec{/*fire_after=*/3, /*period=*/2});
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(inj.should_fire(FaultSite::kArenaAllocate));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, true, false,
                                      true, false}));
  EXPECT_EQ(inj.arrivals(FaultSite::kArenaAllocate), 8u);
  EXPECT_EQ(inj.fired(FaultSite::kArenaAllocate), 3u);
  // Other sites were untouched.
  EXPECT_EQ(inj.arrivals(FaultSite::kStageJob), 0u);
}

TEST(FaultInjector, RandomSchedulesAreDeterministicInTheSeed) {
  DisarmGuard guard;
  auto& inj = FaultInjector::instance();
  const auto sample = [&inj](std::uint64_t seed) {
    inj.arm_random_schedule(seed, 16);
    std::vector<bool> pattern;
    for (std::uint32_t s = 0; s < util::kNumFaultSites; ++s) {
      for (int i = 0; i < 40; ++i) {
        pattern.push_back(inj.should_fire(static_cast<FaultSite>(s)));
      }
    }
    return pattern;
  };
  EXPECT_EQ(sample(base_seed()), sample(base_seed()));
}

TEST(FaultInjector, ArenaHonorsInjectedExhaustion) {
  DisarmGuard guard;
  auto& inj = FaultInjector::instance();
  memory::SlabArena arena;
  inj.arm(FaultSite::kArenaAllocate, FaultSpec{/*fire_after=*/3});
  EXPECT_NE(arena.try_allocate(0, 0), memory::kNullSlab);
  EXPECT_NE(arena.try_allocate(0, 0), memory::kNullSlab);
  EXPECT_EQ(arena.try_allocate(0, 0), memory::kNullSlab);  // injected
  // The throwing wrapper maps the same injected failure to ArenaExhausted.
  inj.arm(FaultSite::kArenaAllocate, FaultSpec{/*fire_after=*/1});
  EXPECT_THROW(arena.allocate(0, 0), memory::ArenaExhausted);
  inj.arm(FaultSite::kArenaContiguous, FaultSpec{/*fire_after=*/1});
  EXPECT_THROW(arena.allocate_contiguous(4, 0), memory::ArenaExhausted);
}

// --------------------------------------------------------------------------
// Full-stack randomized schedules
// --------------------------------------------------------------------------

class FaultWidthSweep : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { simt::ThreadPool::instance().resize(GetParam()); }
  void TearDown() override {
    FaultInjector::instance().disarm_all();
    simt::ThreadPool::instance().resize(0);
  }
};

using PairSet = std::set<std::pair<VertexId, VertexId>>;

PairSet pairs_of(const std::vector<WeightedEdge>& edges) {
  PairSet out;
  for (const auto& e : edges) out.insert({e.src, e.dst});
  return out;
}

/// One seeded differential run: a single submitter streams hub-heavy
/// insert batches (globally unique (src, dst) pairs, so set algebra over
/// the reported unapplied remainders is exact) with periodic erases of
/// earlier pairs, under a randomized fault schedule. Every future must
/// resolve; replaying the futures' outcomes must reconstruct the graph.
void run_seeded_differential(std::uint64_t seed) {
  auto& inj = FaultInjector::instance();
  inj.disarm_all();

  GraphConfig cfg;
  cfg.vertex_capacity = 4096;
  cfg.stage_shards = 2;
  cfg.pipeline_epoch_edges = 48;  // several epochs per batch
  DynGraphMap g(cfg);

  constexpr int kRounds = 24;
  constexpr std::uint32_t kBatchEdges = 96;
  std::vector<std::vector<WeightedEdge>> insert_batches;
  std::vector<std::vector<Edge>> erase_batches;
  std::uint32_t next_dst = 64;
  for (int r = 0; r < kRounds; ++r) {
    std::vector<WeightedEdge> batch;
    for (std::uint32_t i = 0; i < kBatchEdges; ++i) {
      // 8 hub sources force chain growth (dynamic slabs) fast; unique dst
      // makes every (src, dst) pair globally unique.
      batch.push_back({static_cast<VertexId>(r % 8), next_dst, next_dst});
      ++next_dst;
    }
    insert_batches.push_back(std::move(batch));
    if (r % 4 == 3) {
      // Erase a slice of the round-3-ago batch (already submitted: FIFO
      // order guarantees the insert was decided first).
      std::vector<Edge> erase;
      for (std::size_t i = 0; i < insert_batches[r - 3].size(); i += 3) {
        const auto& e = insert_batches[r - 3][i];
        erase.push_back({e.src, e.dst});
      }
      erase_batches.push_back(std::move(erase));
    }
  }

  inj.arm_random_schedule(seed, /*max_fire_after=*/60);

  // Submit everything in FIFO order, remembering each future's payload.
  struct Pending {
    bool erase;
    std::size_t index;  // into insert_batches / erase_batches
    std::future<std::uint64_t> future;
  };
  std::vector<Pending> pending;
  std::vector<std::future<std::vector<std::uint8_t>>> query_futures;
  std::size_t erase_cursor = 0;
  const std::vector<Edge> probes{{0, 64}, {1, 9999}};
  for (int r = 0; r < kRounds; ++r) {
    pending.push_back({false, static_cast<std::size_t>(r),
                       g.submit_insert(insert_batches[r])});
    if (r % 4 == 3) {
      pending.push_back({true, erase_cursor,
                         g.submit_erase(erase_batches[erase_cursor])});
      ++erase_cursor;
    }
    if (r % 5 == 0) {
      query_futures.push_back(g.submit_edges_exist(probes));
    }
  }

  // Replay the futures' outcomes into the expected edge set. Futures are
  // processed in submission order, matching the conductor's FIFO phases.
  // Coalesced groups share one PartialBatchError whose unapplied list
  // covers the merged batch; because pairs are globally unique, each
  // member's slice of that list is exactly its own missing pairs.
  PairSet expected;
  for (Pending& p : pending) {
    const PairSet mine = p.erase
                             ? [&] {
                                 PairSet s;
                                 for (const auto& e : erase_batches[p.index]) {
                                   s.insert({e.src, e.dst});
                                 }
                                 return s;
                               }()
                             : pairs_of(insert_batches[p.index]);
    PairSet missing;
    try {
      (void)p.future.get();
    } catch (const PartialBatchError& e) {
      for (const auto& edge : e.unapplied()) {
        missing.insert({edge.src, edge.dst});
      }
    } catch (const SubmitRejected&) {
      missing = mine;  // nothing of this submission ran
    }
    for (const auto& pr : mine) {
      if (missing.count(pr)) continue;
      if (p.erase) {
        expected.erase(pr);
      } else {
        expected.insert(pr);
      }
    }
  }
  for (auto& f : query_futures) {
    try {
      const auto hits = f.get();
      ASSERT_EQ(hits.size(), probes.size());
      EXPECT_EQ(hits[1], 0);  // (1, 9999) is never inserted
    } catch (const SubmitRejected&) {
    }
  }

  // Quiesce, disarm, compare: the graph must hold exactly the committed
  // prefix the futures reported — nothing dropped, nothing phantom.
  g.schedule_drain();
  inj.disarm_all();
  PairSet actual;
  for (const auto& t : testutil::graph_edges(g)) {
    actual.insert({std::get<0>(t), std::get<1>(t)});
  }
  EXPECT_EQ(actual, expected) << "seed " << seed;

  // The structure survives the schedule: post-fault service is normal.
  EXPECT_EQ(g.submit_insert({{40, 41, 1}, {40, 42, 2}}).get(), 2u);
  EXPECT_EQ(g.submit_edges_exist({{40, 41}}).get()[0], 1);
}

TEST_P(FaultWidthSweep, SeededSchedulesPreserveCommittedPrefix) {
  const std::uint64_t base = base_seed();
  for (const std::uint64_t offset : {0ull, 1ull, 2ull}) {
    run_seeded_differential(base * 1000 + offset);
  }
}

/// Concurrent submitters under randomized faults: liveness and typed-error
/// acceptance. Every future must resolve to a value or a known error type
/// (anything else escapes and fails the test); afterwards the graph serves.
TEST_P(FaultWidthSweep, EveryFutureResolvesUnderConcurrentSubmitters) {
  DisarmGuard guard;
  auto& inj = FaultInjector::instance();
  const std::uint64_t seed = base_seed() * 7 + GetParam();

  GraphConfig cfg;
  cfg.vertex_capacity = 2048;
  cfg.pipeline_epoch_edges = 32;
  cfg.max_pending_submissions = 8;  // bounded queue in the mix
  DynGraphMap g(cfg);
  inj.arm_random_schedule(seed, /*max_fire_after=*/40);

  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 12;
  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint32_t base = 100 + t * 400 + i * 32;
        std::vector<WeightedEdge> batch;
        for (std::uint32_t k = 0; k < 24; ++k) {
          batch.push_back({static_cast<VertexId>(t), base + k, k + 1});
        }
        try {
          auto mut = g.submit_insert(std::move(batch));
          auto query = g.submit_edges_exist({{t, base}});
          mut.get();
          (void)query.get();
          resolved.fetch_add(2);
        } catch (const PartialBatchError&) {
          failed.fetch_add(1);
        } catch (const SubmitRejected&) {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(resolved.load() + failed.load(), 0u);

  g.schedule_drain();
  inj.disarm_all();
  // No wedged conductor, no leaked batch lock, exact counters: direct and
  // scheduled paths both still work.
  const std::uint64_t edges_before = g.num_edges();
  const std::uint64_t added =
      g.insert_edges(std::vector<WeightedEdge>{{30, 31, 5}});
  EXPECT_EQ(g.num_edges(), edges_before + added);
  EXPECT_EQ(g.submit_edges_exist({{30, 31}}).get()[0], 1);
}

INSTANTIATE_TEST_SUITE_P(PoolWidths, FaultWidthSweep,
                         ::testing::Values(1u, 4u, 8u));

}  // namespace
}  // namespace sg::core

#endif  // SLABGRAPH_FAULTS
