// Unit tests for the DynGraph core: Algorithm 1 semantics (batched edge
// insertion), batched deletion, queries, iterators, bulk build, dictionary
// growth, memory statistics, and the map/set variant split.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/dyn_graph.hpp"

namespace sg::core {
namespace {

GraphConfig small_config(bool undirected = false) {
  GraphConfig cfg;
  cfg.vertex_capacity = 64;
  cfg.undirected = undirected;
  return cfg;
}

TEST(DynGraphMapBasics, InsertEdgeThenQuery) {
  DynGraphMap g(small_config());
  const WeightedEdge e{1, 2, 7};
  EXPECT_EQ(g.insert_edges({&e, 1}), 1u);
  EXPECT_TRUE(g.edge_exists(1, 2));
  EXPECT_FALSE(g.edge_exists(2, 1));  // directed
  EXPECT_EQ(g.edge_weight(1, 2).value, 7u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DynGraphMapBasics, SelfLoopsAreRejected) {
  DynGraphMap g(small_config());
  const WeightedEdge e{3, 3, 1};
  EXPECT_EQ(g.insert_edges({&e, 1}), 0u);
  EXPECT_FALSE(g.edge_exists(3, 3));
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(DynGraphMapBasics, DuplicatesWithinBatchStoredOnce) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch = {{1, 2, 5}, {1, 2, 6}, {1, 2, 7}};
  EXPECT_EQ(g.insert_edges(batch), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  // "only the most recent edge and its weight will be stored" — with the
  // batch processed in lane order, the last duplicate wins.
  EXPECT_EQ(g.edge_weight(1, 2).value, 7u);
}

TEST(DynGraphMapBasics, DuplicatesAcrossBatchesReplaceWeight) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> first = {{1, 2, 5}};
  std::vector<WeightedEdge> second = {{1, 2, 50}};
  EXPECT_EQ(g.insert_edges(first), 1u);
  EXPECT_EQ(g.insert_edges(second), 0u);  // replaced, not added
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.edge_weight(1, 2).value, 50u);
}

TEST(DynGraphMapBasics, DeleteEdgeExactCounting) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch = {{1, 2, 0}, {1, 3, 0}, {2, 3, 0}};
  g.insert_edges(batch);
  std::vector<Edge> doomed = {{1, 2}, {1, 9}, {1, 2}};  // one hit, one miss, one dup
  EXPECT_EQ(g.delete_edges(doomed), 1u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_TRUE(g.edge_exists(1, 3));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(DynGraphMapBasics, ReinsertionAfterDeletion) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch = {{4, 5, 1}};
  g.insert_edges(batch);
  std::vector<Edge> doomed = {{4, 5}};
  g.delete_edges(doomed);
  EXPECT_EQ(g.insert_edges(batch), 1u);
  EXPECT_TRUE(g.edge_exists(4, 5));
  EXPECT_EQ(g.degree(4), 1u);
}

TEST(DynGraphMapBasics, LargeBatchSingleSource) {
  // Exercises the same-source grouping path of Algorithm 1: all 32 lanes of
  // each warp share one source.
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 1; v <= 1000; ++v) batch.push_back({0, v + 1, v});
  EXPECT_EQ(g.insert_edges(batch), 1000u);
  EXPECT_EQ(g.degree(0), 1000u);
  for (std::uint32_t v = 1; v <= 1000; ++v) {
    ASSERT_TRUE(g.edge_exists(0, v + 1));
  }
}

TEST(DynGraphMapBasics, ManySourcesManyDestinations) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t u = 0; u < 50; ++u) {
    for (std::uint32_t v = 0; v < 40; ++v) {
      if (u != v + 100) batch.push_back({u, v + 100, u * v});
    }
  }
  EXPECT_EQ(g.insert_edges(batch), batch.size());
  EXPECT_EQ(g.num_edges(), batch.size());
  for (std::uint32_t u = 0; u < 50; ++u) ASSERT_EQ(g.degree(u), 40u);
}

TEST(DynGraphMapBasics, UndirectedInsertMirrorsBothDirections) {
  DynGraphMap g(small_config(/*undirected=*/true));
  const WeightedEdge e{1, 2, 9};
  EXPECT_EQ(g.insert_edges({&e, 1}), 2u);  // both directions are new
  EXPECT_TRUE(g.edge_exists(1, 2));
  EXPECT_TRUE(g.edge_exists(2, 1));
  EXPECT_EQ(g.edge_weight(2, 1).value, 9u);
}

TEST(DynGraphMapBasics, UndirectedDeleteRemovesBoth) {
  DynGraphMap g(small_config(true));
  const WeightedEdge e{1, 2, 9};
  g.insert_edges({&e, 1});
  const Edge d{2, 1};
  EXPECT_EQ(g.delete_edges({&d, 1}), 2u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_FALSE(g.edge_exists(2, 1));
}

TEST(DynGraphMapBasics, DictionaryGrowsAutomatically) {
  GraphConfig cfg;
  cfg.vertex_capacity = 4;
  DynGraphMap g(cfg);
  const WeightedEdge e{100, 200, 1};
  g.insert_edges({&e, 1});
  EXPECT_GE(g.vertex_capacity(), 201u);
  EXPECT_TRUE(g.edge_exists(100, 200));
  EXPECT_EQ(g.dictionary_growths(), 1u);
}

TEST(DynGraphMapBasics, ReserveAvoidsLaterGrowth) {
  GraphConfig cfg;
  cfg.vertex_capacity = 4;
  DynGraphMap g(cfg);
  g.reserve_vertices(1024);
  const WeightedEdge e{1000, 2, 1};
  g.insert_edges({&e, 1});
  EXPECT_EQ(g.dictionary_growths(), 1u);  // only the explicit reserve
}

TEST(DynGraphMapBasics, OutOfRangeVertexIdThrows) {
  DynGraphMap g(small_config());
  const WeightedEdge e{kMaxVertexId + 1, 2, 1};
  EXPECT_THROW(g.insert_edges({&e, 1}), std::invalid_argument);
}

TEST(DynGraphMapBasics, QueriesOnUnknownVerticesAreFalse) {
  DynGraphMap g(small_config());
  EXPECT_FALSE(g.edge_exists(7, 9));
  EXPECT_FALSE(g.edge_weight(7, 9).found);
  EXPECT_EQ(g.degree(7), 0u);
}

TEST(DynGraphMapBasics, EmptyBatchesAreNoops) {
  DynGraphMap g(small_config());
  EXPECT_EQ(g.insert_edges({}), 0u);
  EXPECT_EQ(g.delete_edges({}), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DynGraphMapBasics, ForEachNeighborMatchesInsertions) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch = {{5, 1, 10}, {5, 2, 20}, {5, 3, 30}};
  g.insert_edges(batch);
  std::set<std::pair<VertexId, Weight>> seen;
  g.for_each_neighbor(5, [&](VertexId v, Weight w) { seen.insert({v, w}); });
  const std::set<std::pair<VertexId, Weight>> expected = {
      {1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(seen, expected);
}

TEST(DynGraphMapBasics, EdgeSlabIteratorWalksAllSlabs) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 0; v < 200; ++v) batch.push_back({1, v + 2, v});
  g.insert_edges(batch);
  auto it = g.edge_iterator(1);
  std::set<std::uint32_t> keys;
  int slabs = 0;
  while (it.next()) {
    ++slabs;
    for (int s = 0; s < it.slots(); ++s) {
      const std::uint32_t k = it.key(s);
      if (k != slabhash::kEmptyKey && k != slabhash::kTombstoneKey) {
        keys.insert(k);
      }
    }
  }
  EXPECT_EQ(keys.size(), 200u);
  EXPECT_GT(slabs, 1);  // 200 pairs at Bc=15 must chain
}

TEST(DynGraphMapBasics, BatchedEdgesExistQuery) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch = {{1, 2, 0}, {3, 4, 0}, {5, 6, 0}};
  g.insert_edges(batch);
  std::vector<Edge> queries = {{1, 2}, {2, 1}, {3, 4}, {5, 7}, {5, 6}};
  std::vector<std::uint8_t> out(queries.size(), 0xCC);
  g.edges_exist(queries, out.data());
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 0, 1, 0, 1}));
}

TEST(DynGraphMapBasics, BulkBuildMatchesIncrementalContent) {
  std::vector<WeightedEdge> edges;
  for (std::uint32_t u = 0; u < 30; ++u) {
    for (std::uint32_t v = 0; v < 30; ++v) {
      if (u != v && (u + v) % 3 == 0) edges.push_back({u, v, u + v});
    }
  }
  GraphConfig cfg = small_config();
  DynGraphMap bulk(cfg);
  bulk.bulk_build(edges);
  DynGraphMap incremental(cfg);
  incremental.insert_edges(edges);
  EXPECT_EQ(bulk.num_edges(), incremental.num_edges());
  for (const auto& e : edges) {
    ASSERT_TRUE(bulk.edge_exists(e.src, e.dst));
    ASSERT_EQ(bulk.edge_weight(e.src, e.dst).value,
              incremental.edge_weight(e.src, e.dst).value);
  }
}

TEST(DynGraphMapBasics, BulkBuildSizesBucketsByDegree) {
  // A hub vertex with 600 out-edges must get multiple buckets at lf=0.7.
  std::vector<WeightedEdge> edges;
  for (std::uint32_t v = 1; v <= 600; ++v) edges.push_back({0, v, 0});
  GraphConfig cfg;
  cfg.vertex_capacity = 1024;
  DynGraphMap g(cfg);
  g.bulk_build(edges);
  const GraphMemoryStats stats = g.memory_stats();
  // ceil(600 / (0.7*15)) = 58 base slabs for the hub + 1 per other vertex.
  EXPECT_GE(stats.base_slabs, 58u);
  EXPECT_EQ(g.degree(0), 600u);
  // Properly sized tables need almost no overflow slabs.
  EXPECT_LE(stats.overflow_slabs, 2u);
}

TEST(DynGraphMapBasics, IncrementalSingleBucketChains) {
  // Unknown degrees => 1 bucket; the same hub now chains heavily (the
  // worst-case scenario of §VI-B2). Auto-rehash must stay off here: the
  // point is to observe the unmaintained chain, which the default policy
  // would rebuild mid-batch.
  std::vector<WeightedEdge> edges;
  for (std::uint32_t v = 1; v <= 600; ++v) edges.push_back({0, v, 0});
  GraphConfig cfg = small_config();
  cfg.auto_rehash_p99_slabs = 0.0;
  DynGraphMap g(cfg);
  g.insert_edges(edges);
  const GraphMemoryStats stats = g.memory_stats();
  EXPECT_GE(stats.overflow_slabs, 600 / 15 - 1);
  EXPECT_EQ(g.degree(0), 600u);
}

TEST(DynGraphMapBasics, MemoryStatsUtilizationBounds) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t u = 0; u < 20; ++u) {
    for (std::uint32_t v = 0; v < 10; ++v) {
      if (u != v + 20) batch.push_back({u, v + 20, 0});
    }
  }
  g.insert_edges(batch);
  const GraphMemoryStats stats = g.memory_stats();
  EXPECT_EQ(stats.live_edges, g.num_edges());
  EXPECT_GT(stats.utilization(), 0.0);
  EXPECT_LE(stats.utilization(), 1.0);
  EXPECT_EQ(stats.bytes,
            (stats.base_slabs + stats.overflow_slabs) * sizeof(memory::Slab));
}

TEST(DynGraphMapBasics, FlushAllTombstonesPreservesContent) {
  DynGraphMap g(small_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 1; v <= 100; ++v) batch.push_back({0, v, v});
  g.insert_edges(batch);
  std::vector<Edge> doomed;
  for (std::uint32_t v = 1; v <= 100; v += 2) doomed.push_back({0, v});
  g.delete_edges(doomed);
  g.flush_all_tombstones();
  EXPECT_EQ(g.memory_stats().tombstones, 0u);
  for (std::uint32_t v = 1; v <= 100; ++v) {
    ASSERT_EQ(g.edge_exists(0, v), v % 2 == 0) << v;
  }
  EXPECT_EQ(g.degree(0), 50u);
}

/// small_config with the automatic rehash policy off: these tests drive
/// rehash_long_chains by hand and assert on what the manual call finds,
/// so the trigger must not consume the long chains first.
GraphConfig manual_rehash_config() {
  GraphConfig cfg = small_config();
  cfg.auto_rehash_p99_slabs = 0.0;
  return cfg;
}

TEST(DynGraphMapBasics, RehashShortensLongChains) {
  // Incremental regime: hub with one bucket chains heavily; rehashing
  // rebuilds it to the configured load factor with identical content.
  DynGraphMap g(manual_rehash_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 1; v <= 500; ++v) batch.push_back({0, v, v});
  g.insert_edges(batch);
  const auto before = g.memory_stats();
  EXPECT_GT(before.avg_chain_length(), 2.0);
  const std::uint32_t rehashed = g.rehash_long_chains(1.0);
  EXPECT_EQ(rehashed, 1u);
  const auto after = g.memory_stats();
  EXPECT_LT(after.avg_chain_length(), 2.0);
  EXPECT_EQ(g.degree(0), 500u);
  for (std::uint32_t v = 1; v <= 500; ++v) {
    ASSERT_TRUE(g.edge_exists(0, v)) << v;
    ASSERT_EQ(g.edge_weight(0, v).value, v);
  }
}

TEST(DynGraphMapBasics, RehashDropsTombstones) {
  DynGraphMap g(manual_rehash_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 1; v <= 300; ++v) batch.push_back({0, v, v});
  g.insert_edges(batch);
  std::vector<Edge> doomed;
  for (std::uint32_t v = 1; v <= 300; v += 2) doomed.push_back({0, v});
  g.delete_edges(doomed);
  EXPECT_GT(g.memory_stats().tombstones, 0u);
  g.rehash_long_chains(1.0);
  EXPECT_EQ(g.memory_stats().tombstones, 0u);
  EXPECT_EQ(g.degree(0), 150u);
}

TEST(DynGraphMapBasics, RehashIsIdempotentAtThreshold) {
  DynGraphMap g(manual_rehash_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 1; v <= 400; ++v) batch.push_back({0, v, v});
  g.insert_edges(batch);
  EXPECT_EQ(g.rehash_long_chains(1.0), 1u);
  EXPECT_EQ(g.rehash_long_chains(1.0), 0u);  // already within threshold
}

TEST(DynGraphMapBasics, RehashInvalidThresholdThrows) {
  DynGraphMap g(small_config());
  EXPECT_THROW(g.rehash_long_chains(0.0), std::invalid_argument);
}

TEST(DynGraphSetBasics, RehashWorksOnSetVariant) {
  DynGraphSet g(manual_rehash_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 1; v <= 600; ++v) batch.push_back({0, v, 0});
  g.insert_edges(batch);
  EXPECT_EQ(g.rehash_long_chains(1.0), 1u);
  EXPECT_EQ(g.degree(0), 600u);
  for (std::uint32_t v = 1; v <= 600; ++v) ASSERT_TRUE(g.edge_exists(0, v));
}

TEST(DynGraphMapBasics, InvalidLoadFactorThrows) {
  GraphConfig cfg;
  cfg.load_factor = 0.0;
  EXPECT_THROW(DynGraphMap g(cfg), std::invalid_argument);
}

// ---- set variant ----------------------------------------------------------

TEST(DynGraphSetBasics, InsertQueryDelete) {
  DynGraphSet g(small_config());
  std::vector<WeightedEdge> batch = {{1, 2, 0}, {1, 3, 0}};
  EXPECT_EQ(g.insert_edges(batch), 2u);
  EXPECT_TRUE(g.edge_exists(1, 2));
  const Edge d{1, 2};
  EXPECT_EQ(g.delete_edges({&d, 1}), 1u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(DynGraphSetBasics, SetPacksThirtyPerSlab) {
  DynGraphSet g(small_config());
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 1; v <= 30; ++v) batch.push_back({0, v, 0});
  g.insert_edges(batch);
  EXPECT_EQ(g.memory_stats().overflow_slabs, 0u);  // exactly one slab
  const WeightedEdge extra{0, 31, 0};
  g.insert_edges({&extra, 1});
  EXPECT_EQ(g.memory_stats().overflow_slabs, 1u);
}

TEST(DynGraphSetBasics, DuplicateHandling) {
  DynGraphSet g(small_config());
  std::vector<WeightedEdge> batch = {{1, 2, 0}, {1, 2, 0}, {2, 1, 0}};
  EXPECT_EQ(g.insert_edges(batch), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(DynGraphSetBasics, ForEachNeighborWeightIsZero) {
  DynGraphSet g(small_config());
  const WeightedEdge e{1, 2, 777};  // weight ignored by the set variant
  g.insert_edges({&e, 1});
  g.for_each_neighbor(1, [&](VertexId v, Weight w) {
    EXPECT_EQ(v, 2u);
    EXPECT_EQ(w, 0u);
  });
}

}  // namespace
}  // namespace sg::core
