// Differential tests of the staged batch engine (src/core/batch_engine.hpp):
// the bulk path (config.batch_engine = true, the default) must produce a
// graph identical to the scalar Algorithm-1 path on the same inputs —
// random and skewed batches, inserts, erases, bulk build, and batched
// existence queries — plus unit tests of the staging/grouping pass and the
// slabhash bulk entry points it drives.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/core/batch_engine.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/slabhash/slab_map.hpp"
#include "src/slabhash/slab_set.hpp"
#include "src/util/prng.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::core {
namespace {

using namespace testutil;

GraphConfig engine_config(bool batch_engine, bool undirected = false,
                          std::uint32_t capacity = 256) {
  GraphConfig cfg;
  cfg.vertex_capacity = capacity;
  cfg.undirected = undirected;
  cfg.batch_engine = batch_engine;
  return cfg;
}

/// Skewed batch: a handful of hub sources own most of the edges (the
/// bucket-skew case run scheduling must balance), plus duplicates.
std::vector<WeightedEdge> skewed_batch(std::uint64_t seed, std::size_t count,
                                       std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<WeightedEdge> batch(count);
  for (auto& e : batch) {
    const bool hub = rng.below(100) < 70;
    e = {hub ? static_cast<VertexId>(rng.below(4))
             : static_cast<VertexId>(rng.below(num_vertices)),
         static_cast<VertexId>(rng.below(hub ? num_vertices : 16)),
         static_cast<Weight>(rng.below(1u << 16))};
  }
  return batch;
}

template <class Policy>
void run_differential(bool undirected, std::uint64_t seed) {
  DynGraph<Policy> bulk(engine_config(true, undirected));
  DynGraph<Policy> scalar(engine_config(false, undirected));
  ASSERT_TRUE(bulk.config().batch_engine);
  ASSERT_FALSE(scalar.config().batch_engine);

  // Interleave random and skewed insert batches with erase batches drawn
  // from the same distributions, checking equality after every phase.
  for (int round = 0; round < 4; ++round) {
    const auto inserts = round % 2 == 0
                             ? random_batch(seed + round, 600, 180)
                             : skewed_batch(seed + round, 600, 180);
    const std::uint64_t added = bulk.insert_edges(inserts);
    {
      SerialOracleScope serial;
      EXPECT_EQ(added, scalar.insert_edges(inserts));
    }
    expect_identical(bulk, scalar);

    std::vector<Edge> erases;
    for (const auto& e : round % 2 == 0
                             ? skewed_batch(seed + 100 + round, 250, 180)
                             : random_batch(seed + 100 + round, 250, 180)) {
      erases.push_back({e.src, e.dst});
    }
    EXPECT_EQ(bulk.delete_edges(erases), scalar.delete_edges(erases));
    expect_identical(bulk, scalar);

    // Batched existence must agree with scalar point queries on hits,
    // misses, unknown sources, and self-loops.
    const auto probes = random_batch(seed + 200 + round, 300, 220);
    std::vector<Edge> queries;
    for (const auto& e : probes) queries.push_back({e.src, e.dst});
    std::vector<std::uint8_t> bulk_out(queries.size(), 2);
    std::vector<std::uint8_t> scalar_out(queries.size(), 2);
    bulk.edges_exist(queries, bulk_out.data());
    scalar.edges_exist(queries, scalar_out.data());
    EXPECT_EQ(bulk_out, scalar_out);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(bulk_out[q] != 0,
                scalar.edge_exists(queries[q].src, queries[q].dst));
    }
  }
}

TEST(BatchEngineDifferential, MapDirected) {
  run_differential<MapPolicy>(false, 1);
}
TEST(BatchEngineDifferential, MapUndirected) {
  run_differential<MapPolicy>(true, 2);
}
TEST(BatchEngineDifferential, SetDirected) {
  run_differential<SetPolicy>(false, 3);
}
TEST(BatchEngineDifferential, SetUndirected) {
  run_differential<SetPolicy>(true, 4);
}

TEST(BatchEngineDifferential, BulkBuildMatchesScalar) {
  const auto edges = random_batch(7, 4000, 500);
  for (const bool undirected : {false, true}) {
    DynGraphMap bulk(engine_config(true, undirected, 500));
    DynGraphMap scalar(engine_config(false, undirected, 500));
    bulk.bulk_build(edges);
    {
      SerialOracleScope serial;  // duplicate weights resolve in input order
      scalar.bulk_build(edges);
    }
    expect_identical(bulk, scalar);
  }
}

TEST(BatchEngineDifferential, MostRecentDuplicateWinsDeterministically) {
  // Duplicates inside a batch must resolve to the LAST occurrence even
  // though the engine reorders the batch internally.
  DynGraphMap g(engine_config(true));
  std::vector<WeightedEdge> batch;
  for (Weight w = 1; w <= 64; ++w) batch.push_back({5, 9, w});
  batch.push_back({5, 10, 1});
  for (Weight w = 100; w <= 140; ++w) batch.push_back({5, 9, w});
  EXPECT_EQ(g.insert_edges(batch), 2u);
  EXPECT_EQ(g.edge_weight(5, 9).value, 140u);
  EXPECT_EQ(g.degree(5), 2u);
}

// ---------------------------------------------------------------------------
// Staging / grouping unit tests
// ---------------------------------------------------------------------------

TEST(BatchStaging, GroupsDedupsAndPreservesRunOrder) {
  BatchStaging st;
  const slabhash::TableRef table{0, 8};  // hashing only needs num_buckets
  const std::uint64_t seed = 42;
  std::vector<WeightedEdge> edges = {
      {3, 7, 10}, {1, 7, 11}, {3, 7, 12}, {3, 3, 99},  // self-loop drops
      {1, 9, 13}, {3, 7, 14},
  };
  stage_weighted_edges(edges, /*undirected=*/false, /*keep_weights=*/true,
                       seed, [&](VertexId) { return table; }, st);
  EXPECT_EQ(st.staged, 5u);
  EXPECT_EQ(st.dropped, 1u);
  st.group(/*dedup=*/true, /*gather_values=*/true, /*gather_seqs=*/false);
  EXPECT_EQ(st.duplicates, 2u);  // two earlier (3, 7) occurrences dropped
  EXPECT_EQ(st.keys.size(), 3u);
  ASSERT_EQ(st.run_offsets.size(), st.runs.size() + 1);
  // Runs are sorted by source; every key lands in its staged bucket, and
  // the surviving (3, 7) carries the LAST weight.
  std::map<std::pair<VertexId, std::uint32_t>, Weight> kept;
  for (std::size_t r = 0; r < st.runs.size(); ++r) {
    if (r > 0) EXPECT_LE(st.runs[r - 1].src, st.runs[r].src);
    for (std::uint64_t i = st.run_offsets[r]; i < st.run_offsets[r + 1]; ++i) {
      EXPECT_EQ(st.runs[r].bucket,
                slabhash::bucket_of(st.keys[i], table.num_buckets, seed));
      kept[{st.runs[r].src, st.keys[i]}] = st.values[i];
    }
  }
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ((kept[{3, 7}]), 14u);
  EXPECT_EQ((kept[{1, 7}]), 11u);
  EXPECT_EQ((kept[{1, 9}]), 13u);
}

TEST(BatchStaging, UndirectedStagesBothDirectionsInPlace) {
  BatchStaging st;
  const slabhash::TableRef table{0, 1};
  std::vector<WeightedEdge> edges = {{1, 2, 5}, {2, 1, 6}};
  stage_weighted_edges(edges, /*undirected=*/true, /*keep_weights=*/true, 1,
                       [&](VertexId) { return table; }, st);
  EXPECT_EQ(st.staged, 4u);
  st.group(true, true, false);
  // (1,2) and (2,1) both appear twice across the mirror; each dedups to
  // the most recent weight.
  EXPECT_EQ(st.duplicates, 2u);
  EXPECT_EQ(st.keys.size(), 2u);
}

// ---------------------------------------------------------------------------
// slabhash bulk entry points
// ---------------------------------------------------------------------------

TEST(SlabBulkOps, MapBulkMatchesScalarOps) {
  memory::SlabArena arena_bulk, arena_scalar;
  const std::uint64_t seed = 0x5EED;
  slabhash::SlabHashMap scalar(arena_scalar, 4, seed);
  const slabhash::TableRef table{
      arena_bulk.allocate_contiguous(4, slabhash::kEmptyKey), 4};

  // Group 200 keys by bucket (as the engine would), then bulk-insert runs.
  util::Xoshiro256 rng(9);
  std::map<std::uint32_t, std::vector<std::uint32_t>> by_bucket;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (int i = 0; i < 200; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.below(1u << 20));
    if (std::find_if(pairs.begin(), pairs.end(), [&](auto& p) {
          return p.first == key;
        }) != pairs.end()) {
      continue;  // engine runs are deduped
    }
    pairs.push_back({key, key * 3});
    by_bucket[slabhash::bucket_of(key, 4, seed)].push_back(key);
  }
  std::uint32_t added = 0;
  for (auto& [bucket, keys] : by_bucket) {
    std::vector<std::uint32_t> values;
    for (auto k : keys) values.push_back(k * 3);
    added += slabhash::map_bulk_replace(arena_bulk, table, bucket,
                                        keys.data(), values.data(),
                                        static_cast<std::uint32_t>(keys.size()));
  }
  for (auto& [k, v] : pairs) scalar.replace(k, v);
  EXPECT_EQ(added, pairs.size());

  // Every key searchable through both bulk and scalar paths.
  for (auto& [bucket, keys] : by_bucket) {
    std::vector<std::uint8_t> found(keys.size(), 0);
    std::vector<std::uint32_t> values(keys.size(), 0);
    slabhash::map_bulk_search(arena_bulk, table, bucket, keys.data(),
                              static_cast<std::uint32_t>(keys.size()),
                              found.data(), values.data());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(found[i], 1);
      EXPECT_EQ(values[i], keys[i] * 3);
      const auto r = slabhash::map_search(arena_bulk, table, keys[i], seed);
      EXPECT_TRUE(r.found);
      EXPECT_EQ(r.value, keys[i] * 3);
    }
  }

  // Bulk-erase half of each run; occupancy must match the scalar table's.
  std::uint32_t removed = 0, scalar_removed = 0;
  for (auto& [bucket, keys] : by_bucket) {
    const auto half =
        std::vector<std::uint32_t>(keys.begin(),
                                   keys.begin() + (keys.size() + 1) / 2);
    removed += slabhash::map_bulk_erase(arena_bulk, table, bucket, half.data(),
                                        static_cast<std::uint32_t>(half.size()));
    for (auto k : half) scalar_removed += scalar.erase(k) ? 1 : 0;
  }
  EXPECT_EQ(removed, scalar_removed);
  const auto bulk_occ = slabhash::map_occupancy(arena_bulk, table);
  const auto scalar_occ = scalar.occupancy();
  EXPECT_EQ(bulk_occ.live_keys, scalar_occ.live_keys);
  EXPECT_EQ(bulk_occ.tombstones, scalar_occ.tombstones);
}

TEST(SlabBulkOps, RunsLongerThanOneWaveSpillAcrossSlabs) {
  memory::SlabArena arena;
  const slabhash::TableRef table{
      arena.allocate_contiguous(1, slabhash::kEmptyKey), 1};
  // 100 unique keys into one bucket: > 3 waves, > 6 map slabs of chain.
  std::vector<std::uint32_t> keys, values;
  for (std::uint32_t k = 0; k < 100; ++k) {
    keys.push_back(k * 7 + 1);
    values.push_back(k);
  }
  EXPECT_EQ(slabhash::map_bulk_replace(arena, table, 0, keys.data(),
                                       values.data(), 100),
            100u);
  // Re-inserting the same run adds nothing but refreshes values.
  for (auto& v : values) v += 1000;
  EXPECT_EQ(slabhash::map_bulk_replace(arena, table, 0, keys.data(),
                                       values.data(), 100),
            0u);
  std::vector<std::uint8_t> found(100, 0);
  std::vector<std::uint32_t> got(100, 0);
  slabhash::map_bulk_search(arena, table, 0, keys.data(), 100, found.data(),
                            got.data());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(found[i], 1);
    EXPECT_EQ(got[i], values[i]);
  }
  EXPECT_EQ(slabhash::map_bulk_erase(arena, table, 0, keys.data(), 100), 100u);
  slabhash::map_bulk_search(arena, table, 0, keys.data(), 100, found.data(),
                            nullptr);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(found[i], 0);
}

TEST(SlabBulkOps, SetBulkInsertEraseContains) {
  memory::SlabArena arena;
  const slabhash::TableRef table{
      arena.allocate_contiguous(2, slabhash::kEmptyKey), 2};
  std::vector<std::uint32_t> bucket0, bucket1;
  for (std::uint32_t k = 1; k <= 150; ++k) {
    (slabhash::bucket_of(k, 2, 0x5EED) == 0 ? bucket0 : bucket1).push_back(k);
  }
  const auto n0 = static_cast<std::uint32_t>(bucket0.size());
  const auto n1 = static_cast<std::uint32_t>(bucket1.size());
  EXPECT_EQ(slabhash::set_bulk_insert(arena, table, 0, bucket0.data(), n0), n0);
  EXPECT_EQ(slabhash::set_bulk_insert(arena, table, 1, bucket1.data(), n1), n1);
  EXPECT_EQ(slabhash::set_bulk_insert(arena, table, 0, bucket0.data(), n0), 0u);
  std::vector<std::uint8_t> found(n0, 0);
  slabhash::set_bulk_contains(arena, table, 0, bucket0.data(), n0,
                              found.data());
  for (std::uint32_t i = 0; i < n0; ++i) EXPECT_EQ(found[i], 1);
  EXPECT_EQ(slabhash::set_bulk_erase(arena, table, 0, bucket0.data(), n0), n0);
  EXPECT_EQ(slabhash::set_bulk_erase(arena, table, 0, bucket0.data(), n0), 0u);
  for (std::uint32_t k : bucket1) {
    EXPECT_TRUE(slabhash::set_contains(arena, table, k, 0x5EED));
  }
}

}  // namespace
}  // namespace sg::core
