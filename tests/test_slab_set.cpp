// Unit & property tests for the SlabHash concurrent set (the paper's new
// keys-only variant, Bc = 30).
#include <gtest/gtest.h>

#include <set>

#include "src/memory/slab_arena.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/slabhash/slab_set.hpp"
#include "src/util/prng.hpp"

namespace sg::slabhash {
namespace {

class SlabSetTest : public ::testing::Test {
 protected:
  memory::SlabArena arena;
};

TEST_F(SlabSetTest, InsertThenContains) {
  SlabHashSet set(arena, 4);
  EXPECT_TRUE(set.insert(10));
  EXPECT_TRUE(set.contains(10));
  EXPECT_FALSE(set.contains(11));
}

TEST_F(SlabSetTest, DuplicateInsertReturnsFalse) {
  SlabHashSet set(arena, 4);
  EXPECT_TRUE(set.insert(10));
  EXPECT_FALSE(set.insert(10));
  EXPECT_EQ(set.occupancy().live_keys, 1u);
}

TEST_F(SlabSetTest, EraseSemantics) {
  SlabHashSet set(arena, 4);
  set.insert(10);
  EXPECT_TRUE(set.erase(10));
  EXPECT_FALSE(set.erase(10));
  EXPECT_FALSE(set.contains(10));
}

TEST_F(SlabSetTest, SetSlabHoldsThirtyKeys) {
  // Bc = 30 for the set (vs 15 for the map): 30 keys fit in one base slab.
  SlabHashSet set(arena, 1);
  for (std::uint32_t k = 0; k < 30; ++k) set.insert(k);
  const TableOccupancy occ = set.occupancy();
  EXPECT_EQ(occ.live_keys, 30u);
  EXPECT_EQ(occ.overflow_slabs, 0u);
  // The 31st key overflows into a dynamic slab.
  set.insert(31);
  EXPECT_EQ(set.occupancy().overflow_slabs, 1u);
}

TEST_F(SlabSetTest, TombstoneNotReused) {
  SlabHashSet set(arena, 1);
  set.insert(1);
  set.insert(2);
  set.erase(1);
  set.insert(3);
  const TableOccupancy occ = set.occupancy();
  EXPECT_EQ(occ.live_keys, 2u);
  EXPECT_EQ(occ.tombstones, 1u);
}

TEST_F(SlabSetTest, ReinsertAfterErase) {
  SlabHashSet set(arena, 1);
  set.insert(9);
  set.erase(9);
  EXPECT_TRUE(set.insert(9));
  EXPECT_TRUE(set.contains(9));
  EXPECT_EQ(set.occupancy().live_keys, 1u);
}

TEST_F(SlabSetTest, ChainGrowth) {
  SlabHashSet set(arena, 1);
  for (std::uint32_t k = 0; k < 500; ++k) set.insert(k);
  for (std::uint32_t k = 0; k < 500; ++k) ASSERT_TRUE(set.contains(k)) << k;
  EXPECT_GT(set.occupancy().overflow_slabs, 0u);
}

TEST_F(SlabSetTest, ForEachVisitsLiveKeysOnce) {
  SlabHashSet set(arena, 3);
  std::set<std::uint32_t> reference;
  for (std::uint32_t k = 0; k < 100; ++k) {
    set.insert(k * 3);
    reference.insert(k * 3);
  }
  for (std::uint32_t k = 0; k < 100; k += 5) {
    set.erase(k * 3);
    reference.erase(k * 3);
  }
  std::set<std::uint32_t> seen;
  set.for_each([&](std::uint32_t k) {
    ASSERT_TRUE(seen.insert(k).second);
  });
  EXPECT_EQ(seen, reference);
}

TEST_F(SlabSetTest, FlushTombstones) {
  SlabHashSet set(arena, 1);
  for (std::uint32_t k = 0; k < 120; ++k) set.insert(k);
  for (std::uint32_t k = 0; k < 120; ++k) {
    if (k % 2 == 0) set.erase(k);
  }
  set.flush_tombstones();
  const TableOccupancy occ = set.occupancy();
  EXPECT_EQ(occ.tombstones, 0u);
  EXPECT_EQ(occ.live_keys, 60u);
  for (std::uint32_t k = 0; k < 120; ++k) {
    ASSERT_EQ(set.contains(k), k % 2 == 1);
  }
}

TEST_F(SlabSetTest, ClearReleasesDynamicSlabs) {
  SlabHashSet set(arena, 1);
  for (std::uint32_t k = 0; k < 300; ++k) set.insert(k);
  EXPECT_GT(arena.stats().dynamic_slabs, 0u);
  set_clear(arena, set.table());
  EXPECT_EQ(arena.stats().dynamic_slabs, 0u);
  EXPECT_EQ(set.occupancy().live_keys, 0u);
}

struct SetSweepParam {
  std::uint32_t buckets;
  std::uint32_t keys;
};

class SlabSetSweep : public ::testing::TestWithParam<SetSweepParam> {};

TEST_P(SlabSetSweep, RandomizedAgainstStdSet) {
  const auto [buckets, keys] = GetParam();
  memory::SlabArena arena;
  SlabHashSet set(arena, buckets);
  std::set<std::uint32_t> reference;
  util::Xoshiro256 rng(buckets * 7919 + keys);
  for (std::uint32_t op = 0; op < keys * 4; ++op) {
    const auto key = static_cast<std::uint32_t>(rng.below(keys * 2 + 1));
    if (rng.below(3) < 2) {
      EXPECT_EQ(set.insert(key), reference.insert(key).second);
    } else {
      EXPECT_EQ(set.erase(key), reference.erase(key) == 1);
    }
  }
  for (std::uint32_t k = 0; k <= keys * 2; ++k) {
    ASSERT_EQ(set.contains(k), reference.count(k) == 1) << k;
  }
  EXPECT_EQ(set.occupancy().live_keys, reference.size());
}

INSTANTIATE_TEST_SUITE_P(
    BucketKeyGrid, SlabSetSweep,
    ::testing::Values(SetSweepParam{1, 20}, SetSweepParam{1, 200},
                      SetSweepParam{2, 100}, SetSweepParam{8, 800},
                      SetSweepParam{32, 3000}, SetSweepParam{5, 137}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.buckets) + "_k" +
             std::to_string(info.param.keys);
    });

TEST(SlabSetConcurrent, RacingDuplicateInsertsStayUnique) {
  memory::SlabArena arena;
  SlabHashSet set(arena, 2);
  simt::ThreadPool pool(8);
  constexpr std::uint32_t kKeys = 400;
  std::atomic<std::uint32_t> fresh{0};
  pool.parallel_for(16, [&](std::uint64_t) {
    for (std::uint32_t k = 0; k < kKeys; ++k) {
      if (set.insert(k)) fresh.fetch_add(1);
    }
  });
  EXPECT_EQ(fresh.load(), kKeys);
  EXPECT_EQ(set.occupancy().live_keys, kKeys);
}

TEST(SlabSetConcurrent, MixedKeyRangesFromManyThreads) {
  memory::SlabArena arena;
  SlabHashSet set(arena, 16);
  simt::ThreadPool pool(8);
  pool.parallel_for(64, [&](std::uint64_t t) {
    for (std::uint32_t i = 0; i < 200; ++i) {
      set.insert(static_cast<std::uint32_t>(t * 200 + i));
    }
  });
  EXPECT_EQ(set.occupancy().live_keys, 64u * 200u);
  for (std::uint32_t k = 0; k < 64 * 200; ++k) ASSERT_TRUE(set.contains(k));
}

}  // namespace
}  // namespace sg::slabhash
