// Tests for the SIMD slab-probe layer (src/simt/simd.hpp) and a
// differential harness that drives the SlabHash hot paths through both the
// AVX2 and the portable probe backends, asserting identical behavior.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/memory/slab_arena.hpp"
#include "src/simt/simd.hpp"
#include "src/slabhash/slab_map.hpp"
#include "src/slabhash/slab_set.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

using slabhash::kEmptyKey;
using slabhash::kTombstoneKey;

/// Forces a probe backend for the lifetime of a scope.
class ScopedBackend {
 public:
  explicit ScopedBackend(simt::ProbeBackend backend) {
    simt::set_probe_backend(backend);
  }
  ~ScopedBackend() { simt::set_probe_backend(simt::ProbeBackend::kSimd); }
};

std::uint32_t reference_match_mask(const std::uint32_t* words,
                                   std::uint32_t key) {
  std::uint32_t mask = 0;
  for (int w = 0; w < memory::kWordsPerSlab; ++w) {
    if (words[w] == key) mask |= 1u << w;
  }
  return mask;
}

memory::Slab random_slab(util::Xoshiro256& rng) {
  memory::Slab slab;
  for (auto& word : slab.words) {
    switch (rng.below(5)) {
      case 0: word = kEmptyKey; break;
      case 1: word = kTombstoneKey; break;
      default: word = static_cast<std::uint32_t>(rng.below(16)); break;
    }
  }
  return slab;
}

TEST(SimdProbe, MasksMatchBruteForceOnBothBackends) {
  util::Xoshiro256 rng(7);
  for (const auto backend :
       {simt::ProbeBackend::kSimd, simt::ProbeBackend::kPortable}) {
    ScopedBackend scope(backend);
    for (int trial = 0; trial < 200; ++trial) {
      const memory::Slab slab = random_slab(rng);
      const auto key = static_cast<std::uint32_t>(rng.below(16));
      const simt::SlabProbe probe =
          simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
      EXPECT_EQ(probe.match, reference_match_mask(slab.words, key));
      EXPECT_EQ(probe.empty, reference_match_mask(slab.words, kEmptyKey));
      EXPECT_EQ(probe.tombstone,
                reference_match_mask(slab.words, kTombstoneKey));
      EXPECT_EQ(simt::match_mask(slab.words, key),
                reference_match_mask(slab.words, key));
    }
  }
}

TEST(SimdProbe, BackendSwitchIsObservable) {
  simt::set_probe_backend(simt::ProbeBackend::kPortable);
  EXPECT_FALSE(simt::probe_uses_simd());
  simt::set_probe_backend(simt::ProbeBackend::kSimd);
#if defined(__AVX2__)
  EXPECT_TRUE(simt::probe_uses_simd());
#else
  EXPECT_FALSE(simt::probe_uses_simd());
#endif
}

TEST(SimdProbe, SnapshotCopiesAllWords) {
  util::Xoshiro256 rng(11);
  const memory::Slab slab = random_slab(rng);
  std::uint32_t snap[memory::kWordsPerSlab] = {};
  simt::snapshot_slab(slab, snap);
  for (int w = 0; w < memory::kWordsPerSlab; ++w) {
    EXPECT_EQ(snap[w], slab.words[w]);
  }
}

/// One scripted random map workload; returns the per-operation results so
/// runs under different backends can be compared bit for bit.
struct MapTrace {
  std::vector<std::uint32_t> op_results;
  std::map<std::uint32_t, std::uint32_t> final_contents;
};

MapTrace run_map_workload(simt::ProbeBackend backend, std::uint64_t seed) {
  ScopedBackend scope(backend);
  util::Xoshiro256 rng(seed);
  memory::SlabArena arena;
  // Deliberately undersized (load factor ~3) so chains and tombstone reuse
  // paths are exercised, not just single-slab buckets.
  slabhash::SlabHashMap table(
      arena, slabhash::buckets_for(1 << 12, 3.0, slabhash::kMapPairsPerSlab));
  std::unordered_map<std::uint32_t, std::uint32_t> reference;
  MapTrace trace;
  for (int op = 0; op < 20000; ++op) {
    const auto key = static_cast<std::uint32_t>(rng.below(1 << 12));
    switch (rng.below(4)) {
      case 0: {  // erase
        const bool erased = table.erase(key);
        EXPECT_EQ(erased, reference.erase(key) > 0);
        trace.op_results.push_back(erased);
        break;
      }
      case 1: {  // search
        const auto found = table.search(key);
        const auto it = reference.find(key);
        EXPECT_EQ(found.found, it != reference.end());
        if (found.found && it != reference.end()) EXPECT_EQ(found.value, it->second);
        trace.op_results.push_back(found.found ? found.value : kEmptyKey);
        break;
      }
      default: {  // replace
        const auto value = static_cast<std::uint32_t>(rng.below(1 << 16));
        const bool fresh = table.replace(key, value);
        EXPECT_EQ(fresh, reference.find(key) == reference.end());
        reference[key] = value;
        trace.op_results.push_back(fresh);
        break;
      }
    }
  }
  table.for_each([&](std::uint32_t k, std::uint32_t v) {
    EXPECT_TRUE(trace.final_contents.emplace(k, v).second);
  });
  EXPECT_EQ(trace.final_contents.size(), reference.size());
  for (const auto& [k, v] : reference) {
    const auto it = trace.final_contents.find(k);
    EXPECT_NE(it, trace.final_contents.end());
    if (it != trace.final_contents.end()) EXPECT_EQ(it->second, v);
  }
  return trace;
}

TEST(SimdProbeDifferential, MapWorkloadIdenticalAcrossBackends) {
  for (const std::uint64_t seed : {1ULL, 99ULL, 2026ULL}) {
    const MapTrace simd = run_map_workload(simt::ProbeBackend::kSimd, seed);
    const MapTrace portable =
        run_map_workload(simt::ProbeBackend::kPortable, seed);
    EXPECT_EQ(simd.op_results, portable.op_results);
    EXPECT_EQ(simd.final_contents, portable.final_contents);
  }
}

struct SetTrace {
  std::vector<std::uint8_t> op_results;
  std::set<std::uint32_t> final_contents;
};

SetTrace run_set_workload(simt::ProbeBackend backend, std::uint64_t seed) {
  ScopedBackend scope(backend);
  util::Xoshiro256 rng(seed);
  memory::SlabArena arena;
  slabhash::SlabHashSet table(
      arena, slabhash::buckets_for(1 << 12, 3.0, slabhash::kSetKeysPerSlab));
  std::unordered_set<std::uint32_t> reference;
  SetTrace trace;
  for (int op = 0; op < 20000; ++op) {
    const auto key = static_cast<std::uint32_t>(rng.below(1 << 12));
    switch (rng.below(4)) {
      case 0: {
        const bool erased = table.erase(key);
        EXPECT_EQ(erased, reference.erase(key) > 0);
        trace.op_results.push_back(erased);
        break;
      }
      case 1: {
        const bool present = table.contains(key);
        EXPECT_EQ(present, reference.count(key) > 0);
        trace.op_results.push_back(present);
        break;
      }
      default: {
        const bool fresh = table.insert(key);
        EXPECT_EQ(fresh, reference.insert(key).second);
        trace.op_results.push_back(fresh);
        break;
      }
    }
  }
  table.for_each([&](std::uint32_t k) {
    EXPECT_TRUE(trace.final_contents.insert(k).second);
  });
  EXPECT_EQ(trace.final_contents.size(), reference.size());
  for (const std::uint32_t k : reference) {
    EXPECT_TRUE(trace.final_contents.count(k) > 0);
  }
  return trace;
}

TEST(SimdProbeDifferential, SetWorkloadIdenticalAcrossBackends) {
  for (const std::uint64_t seed : {5ULL, 41ULL, 777ULL}) {
    const SetTrace simd = run_set_workload(simt::ProbeBackend::kSimd, seed);
    const SetTrace portable =
        run_set_workload(simt::ProbeBackend::kPortable, seed);
    EXPECT_EQ(simd.op_results, portable.op_results);
    EXPECT_EQ(simd.final_contents, portable.final_contents);
  }
}

/// Tombstone flush after a probe-heavy workload must leave identical
/// contents under both backends (flush itself is scalar; this guards the
/// interaction between vectorized erase and the compaction invariants).
TEST(SimdProbeDifferential, FlushAfterWorkloadKeepsContents) {
  for (const auto backend :
       {simt::ProbeBackend::kSimd, simt::ProbeBackend::kPortable}) {
    ScopedBackend scope(backend);
    util::Xoshiro256 rng(13);
    memory::SlabArena arena;
    slabhash::SlabHashSet table(
        arena, slabhash::buckets_for(1 << 10, 2.0, slabhash::kSetKeysPerSlab));
    std::unordered_set<std::uint32_t> reference;
    for (int op = 0; op < 6000; ++op) {
      const auto key = static_cast<std::uint32_t>(rng.below(1 << 10));
      if (rng.below(3) == 0) {
        table.erase(key);
        reference.erase(key);
      } else {
        table.insert(key);
        reference.insert(key);
      }
    }
    table.flush_tombstones();
    EXPECT_EQ(table.occupancy().tombstones, 0u);
    std::set<std::uint32_t> contents;
    table.for_each([&](std::uint32_t k) { contents.insert(k); });
    EXPECT_EQ(contents.size(), reference.size());
    for (const std::uint32_t k : reference) EXPECT_TRUE(contents.count(k));
  }
}

}  // namespace
}  // namespace sg
