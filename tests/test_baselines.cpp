// Tests for the comparator implementations: CSR, Hornet-style block store,
// and faimGraph-style paged store. Beyond unit semantics, the three must
// agree with each other (and with the paper's contracts: uniqueness,
// most-recent-weight, vertex-id reuse for faim, block doubling for Hornet).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/baselines/csr/csr.hpp"
#include "src/baselines/faim/faim_graph.hpp"
#include "src/baselines/hornet/hornet_graph.hpp"
#include "src/util/prng.hpp"

namespace sg::baselines {
namespace {

using core::Edge;
using core::VertexId;
using core::WeightedEdge;

std::vector<WeightedEdge> random_edges(std::uint32_t vertices, std::size_t count,
                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<WeightedEdge> edges;
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back({static_cast<VertexId>(rng.below(vertices)),
                     static_cast<VertexId>(rng.below(vertices)),
                     static_cast<core::Weight>(rng.below(100))});
  }
  return edges;
}

// ---- CSR -------------------------------------------------------------------

TEST(Csr, BuildsSortedDedupedRows) {
  std::vector<WeightedEdge> edges = {{0, 2, 1}, {0, 1, 2}, {0, 2, 9}, {1, 0, 3},
                                     {2, 2, 4}};  // dup + self-loop
  const Csr csr = Csr::from_edges(3, edges);
  EXPECT_EQ(csr.num_edges(), 3u);  // dup removed, self-loop removed
  EXPECT_EQ(csr.degree(0), 2u);
  const auto row0 = csr.neighbors(0);
  EXPECT_TRUE(std::is_sorted(row0.begin(), row0.end()));
  // Last duplicate's weight wins.
  EXPECT_EQ(csr.weights(0)[1], 9u);
}

TEST(Csr, EdgeExistsBinarySearch) {
  std::vector<WeightedEdge> edges = {{0, 5, 0}, {0, 7, 0}, {0, 9, 0}};
  const Csr csr = Csr::from_edges(10, edges);
  EXPECT_TRUE(csr.edge_exists(0, 7));
  EXPECT_FALSE(csr.edge_exists(0, 6));
  EXPECT_FALSE(csr.edge_exists(5, 0));
  EXPECT_FALSE(csr.edge_exists(99, 0));
}

TEST(Csr, OutOfRangeEdgesDropped) {
  std::vector<WeightedEdge> edges = {{0, 99, 0}, {99, 0, 0}, {0, 1, 0}};
  const Csr csr = Csr::from_edges(4, edges);
  EXPECT_EQ(csr.num_edges(), 1u);
}

TEST(Csr, UnsortedModeStillDeduped) {
  std::vector<WeightedEdge> edges = {{0, 3, 0}, {0, 1, 0}, {0, 2, 0}};
  const Csr csr = Csr::from_edges(4, edges, /*sort=*/false);
  EXPECT_EQ(csr.degree(0), 3u);
  const auto row = csr.neighbors(0);
  EXPECT_FALSE(std::is_sorted(row.begin(), row.end()));
}

TEST(Csr, DegreesVector) {
  std::vector<WeightedEdge> edges = {{0, 1, 0}, {0, 2, 0}, {2, 0, 0}};
  const Csr csr = Csr::from_edges(3, edges);
  EXPECT_EQ(csr.degrees(), (std::vector<std::uint32_t>{2, 0, 1}));
}

// ---- Hornet ----------------------------------------------------------------

TEST(HornetBlocks, ClassForSmallestPowerOfTwo) {
  using hornet::BlockManager;
  EXPECT_EQ(BlockManager::class_for(0), 0);
  EXPECT_EQ(BlockManager::class_for(1), 0);
  EXPECT_EQ(BlockManager::class_for(2), 1);
  EXPECT_EQ(BlockManager::class_for(3), 2);
  EXPECT_EQ(BlockManager::class_for(4), 2);
  EXPECT_EQ(BlockManager::class_for(5), 3);
  EXPECT_EQ(BlockManager::class_for(1024), 10);
  EXPECT_EQ(BlockManager::class_for(1025), 11);
}

TEST(HornetBlocks, FreeBlocksAreReused) {
  hornet::BlockManager mgr;
  const auto a = mgr.allocate(4);
  const auto bytes_after_first = mgr.bytes_reserved();
  mgr.free(a);
  const auto b = mgr.allocate(4);
  EXPECT_EQ(b.index, a.index);  // B-tree reuse, no new reservation
  EXPECT_EQ(mgr.bytes_reserved(), bytes_after_first);
}

TEST(HornetBlocks, OversizeClassThrows) {
  hornet::BlockManager mgr;
  EXPECT_THROW(mgr.allocate(hornet::BlockManager::kMaxClass + 1),
               std::length_error);
}

TEST(HornetGraph, InsertQueryDelete) {
  hornet::HornetGraph g(16);
  std::vector<WeightedEdge> batch = {{1, 2, 5}, {1, 3, 6}};
  EXPECT_EQ(g.insert_edges(batch), 2u);
  EXPECT_TRUE(g.edge_exists(1, 2));
  EXPECT_FALSE(g.edge_exists(2, 1));
  std::vector<Edge> doomed = {{1, 2}};
  EXPECT_EQ(g.delete_edges(doomed), 1u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(HornetGraph, DuplicatesAcrossBatchAndGraph) {
  hornet::HornetGraph g(16);
  std::vector<WeightedEdge> batch = {{1, 2, 5}, {1, 2, 6}};
  EXPECT_EQ(g.insert_edges(batch), 1u);  // within-batch dedup
  std::vector<WeightedEdge> again = {{1, 2, 9}};
  EXPECT_EQ(g.insert_edges(again), 0u);  // cross dedup, weight replaced
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.weights(1)[0], 9u);
}

TEST(HornetGraph, BlockDoublingOnOverflow) {
  hornet::HornetGraph g(32);
  // 5 edges -> class 3 block (8); pushing past 8 forces a copy to class 4.
  std::vector<WeightedEdge> first;
  for (std::uint32_t v = 0; v < 5; ++v) first.push_back({0, v + 1, v});
  g.insert_edges(first);
  std::vector<WeightedEdge> more;
  for (std::uint32_t v = 5; v < 12; ++v) more.push_back({0, v + 1, v});
  g.insert_edges(more);
  EXPECT_EQ(g.degree(0), 12u);
  for (std::uint32_t v = 0; v < 12; ++v) ASSERT_TRUE(g.edge_exists(0, v + 1));
}

TEST(HornetGraph, BulkBuildMatchesBatchInsert) {
  const auto edges = random_edges(64, 800, 77);
  hornet::HornetGraph bulk(64), inc(64);
  bulk.bulk_build(edges);
  inc.insert_edges(edges);
  EXPECT_EQ(bulk.num_edges(), inc.num_edges());
  for (VertexId u = 0; u < 64; ++u) {
    auto a = bulk.neighbors(u);
    auto b = inc.neighbors(u);
    std::vector<VertexId> va(a.begin(), a.end()), vb(b.begin(), b.end());
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    ASSERT_EQ(va, vb) << "vertex " << u;
  }
}

TEST(HornetGraph, SortAdjacencyLists) {
  hornet::HornetGraph g(8);
  // Two batches: appends from the second land after the first batch's
  // (sorted) run, leaving the list unsorted overall.
  std::vector<WeightedEdge> batch = {{0, 5, 0}, {0, 7, 0}};
  g.insert_edges(batch);
  std::vector<WeightedEdge> batch2 = {{0, 2, 0}, {0, 1, 0}};
  g.insert_edges(batch2);
  EXPECT_FALSE(g.adjacency_sorted(0));
  g.sort_adjacency_lists();
  EXPECT_TRUE(g.adjacency_sorted(0));
  EXPECT_EQ(g.degree(0), 4u);
}

TEST(HornetGraph, RowOffsetsMatchDegrees) {
  hornet::HornetGraph g(4);
  std::vector<WeightedEdge> batch = {{0, 1, 0}, {0, 2, 0}, {2, 0, 0}};
  g.insert_edges(batch);
  const auto offsets = g.row_offsets();
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 2, 2, 3, 3}));
}

// ---- faimGraph --------------------------------------------------------------

TEST(FaimPagePool, AllocFreeReuse) {
  faim::PagePool pool;
  const auto a = pool.allocate();
  const auto b = pool.allocate();
  EXPECT_NE(a, b);
  pool.free(a);
  EXPECT_EQ(pool.free_queue_size(), 1u);
  EXPECT_EQ(pool.allocate(), a);  // queue reuse
  EXPECT_EQ(pool.free_queue_size(), 0u);
}

TEST(FaimGraph, InsertQueryDelete) {
  faim::FaimGraph g(16);
  std::vector<WeightedEdge> batch = {{1, 2, 5}, {1, 3, 6}};
  EXPECT_EQ(g.insert_edges(batch), 2u);
  EXPECT_TRUE(g.edge_exists(1, 2));
  std::vector<Edge> doomed = {{1, 2}};
  EXPECT_EQ(g.delete_edges(doomed), 1u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(FaimGraph, DuplicateScanKeepsUnique) {
  faim::FaimGraph g(16);
  std::vector<WeightedEdge> batch = {{1, 2, 5}};
  g.insert_edges(batch);
  std::vector<WeightedEdge> dup = {{1, 2, 8}};
  EXPECT_EQ(g.insert_edges(dup), 0u);
  EXPECT_EQ(g.degree(1), 1u);
  std::uint32_t weight = 0;
  g.for_each_neighbor(1, [&](VertexId, core::Weight w) { weight = w; });
  EXPECT_EQ(weight, 8u);  // most recent wins
}

TEST(FaimGraph, PageChainGrowsAndShrinks) {
  faim::FaimGraph g(64);
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 0; v < 40; ++v) batch.push_back({0, v + 1, v});
  g.insert_edges(batch);
  EXPECT_EQ(g.degree(0), 40u);  // 40 pairs -> 3 pages
  const auto pages_full = g.pages_in_use();
  std::vector<Edge> doomed;
  for (std::uint32_t v = 0; v < 31; ++v) doomed.push_back({0, v + 1});
  g.delete_edges(doomed);
  EXPECT_EQ(g.degree(0), 9u);
  EXPECT_LT(g.pages_in_use(), pages_full);  // tail pages reclaimed
  EXPECT_GT(g.page_queue_size(), 0u);
}

TEST(FaimGraph, BatchSizeCapEnforced) {
  faim::FaimGraph g(4);
  std::vector<WeightedEdge> huge(faim::kMaxBatchSize + 1, WeightedEdge{0, 1, 0});
  EXPECT_THROW(g.insert_edges(huge), std::length_error);
  std::vector<Edge> huge_del(faim::kMaxBatchSize + 1, Edge{0, 1});
  EXPECT_THROW(g.delete_edges(huge_del), std::length_error);
}

TEST(FaimGraph, VertexDeletionReclaimsAndQueuesId) {
  faim::FaimGraph g(8, /*undirected=*/true);
  std::vector<WeightedEdge> batch = {{1, 2, 0}, {2, 1, 0}, {2, 3, 0}, {3, 2, 0}};
  g.insert_edges(batch);
  const std::vector<VertexId> doomed = {2};
  g.delete_vertices(doomed);
  EXPECT_FALSE(g.vertex_live(2));
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_FALSE(g.edge_exists(3, 2));
  EXPECT_EQ(g.vertex_queue_size(), 1u);
  // Reinsertion reuses id 2 — the paper's memory-efficiency feature.
  const auto assigned = g.insert_vertices(1);
  EXPECT_EQ(assigned, (std::vector<VertexId>{2}));
  EXPECT_TRUE(g.vertex_live(2));
  EXPECT_EQ(g.vertex_queue_size(), 0u);
}

TEST(FaimGraph, FreshVertexIdsWhenQueueEmpty) {
  faim::FaimGraph g(4);
  const auto assigned = g.insert_vertices(2);
  EXPECT_EQ(assigned, (std::vector<VertexId>{4, 5}));
  EXPECT_EQ(g.num_vertices(), 6u);
}

TEST(FaimGraph, DirectedVertexDeletionSweeps) {
  faim::FaimGraph g(8, /*undirected=*/false);
  std::vector<WeightedEdge> batch = {{1, 3, 0}, {2, 3, 0}, {3, 1, 0}};
  g.insert_edges(batch);
  const std::vector<VertexId> doomed = {3};
  g.delete_vertices(doomed);
  EXPECT_FALSE(g.edge_exists(1, 3));
  EXPECT_FALSE(g.edge_exists(2, 3));
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(FaimGraph, SortAdjacencyAcrossPages) {
  faim::FaimGraph g(64);
  std::vector<WeightedEdge> batch;
  // 45 descending destinations span 3 pages.
  for (std::uint32_t v = 45; v >= 1; --v) batch.push_back({0, v + 1, v});
  g.insert_edges(batch);
  EXPECT_FALSE(g.adjacency_sorted(0));
  g.sort_adjacency_lists();
  EXPECT_TRUE(g.adjacency_sorted(0));
  const auto nbrs = g.neighbors(0);
  EXPECT_EQ(nbrs.size(), 45u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

// ---- cross-structure agreement ----------------------------------------------

TEST(BaselineAgreement, AllStructuresStoreTheSameGraph) {
  const std::uint32_t kVertices = 128;
  auto edges = random_edges(kVertices, 3000, 123);
  hornet::HornetGraph hornet_graph(kVertices);
  faim::FaimGraph faim_graph(kVertices);
  hornet_graph.bulk_build(edges);
  // faim caps batches at 1M; 3000 is fine for insert_edges.
  faim_graph.insert_edges(edges);
  const Csr csr = Csr::from_edges(kVertices, edges);
  EXPECT_EQ(hornet_graph.num_edges(), csr.num_edges());
  EXPECT_EQ(faim_graph.num_edges(), csr.num_edges());
  for (VertexId u = 0; u < kVertices; ++u) {
    auto h = hornet_graph.neighbors(u);
    std::vector<VertexId> hv(h.begin(), h.end());
    std::sort(hv.begin(), hv.end());
    auto fv = faim_graph.neighbors(u);
    std::sort(fv.begin(), fv.end());
    const auto c = csr.neighbors(u);
    const std::vector<VertexId> cv(c.begin(), c.end());
    ASSERT_EQ(hv, cv) << "hornet row " << u;
    ASSERT_EQ(fv, cv) << "faim row " << u;
  }
}

TEST(BaselineAgreement, DeletionsAgree) {
  const std::uint32_t kVertices = 64;
  auto edges = random_edges(kVertices, 1000, 5);
  hornet::HornetGraph hornet_graph(kVertices);
  faim::FaimGraph faim_graph(kVertices);
  hornet_graph.bulk_build(edges);
  faim_graph.insert_edges(edges);
  std::vector<Edge> doomed;
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 300; ++i) {
    const auto& e = edges[rng.below(edges.size())];
    doomed.push_back({e.src, e.dst});
  }
  std::sort(doomed.begin(), doomed.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
  const auto removed_h = hornet_graph.delete_edges(doomed);
  const auto removed_f = faim_graph.delete_edges(doomed);
  EXPECT_EQ(removed_h, removed_f);
  EXPECT_EQ(hornet_graph.num_edges(), faim_graph.num_edges());
}

}  // namespace
}  // namespace sg::baselines
