// Tests of the phase-concurrent query pipeline, merge-free staging, and the
// automatic rehash policy (PR 4):
//
//   * edges_exist / edge_weights split into double-buffered epochs (stage of
//     query slice N+1 overlaps the bulk searches of slice N) and must agree
//     with scalar point lookups across shard counts, epoch sizes, pool
//     widths, and both staging assemblies (merge-free and the legacy
//     copying merge);
//   * merge-free staging must be byte-equivalent to the copying merge, obey
//     the count/place two-pass invariant, report zero driver-side copy, and
//     keep the shard-partition guard armed;
//   * bulk searches must feed observed chain lengths into ChainFeedback
//     exactly as mutations do, and the GraphConfig::auto_rehash_p99_slabs
//     policy must fire rehash_long_chains without user calls while
//     preserving graph content.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "src/core/batch_engine.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::core {
namespace {

using namespace testutil;

GraphConfig engine_config(std::uint32_t shards, std::uint32_t epoch_edges,
                          bool merge_free, bool undirected = false) {
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  cfg.undirected = undirected;
  cfg.batch_engine = true;
  cfg.stage_shards = shards;
  cfg.pipeline_epoch_edges = epoch_edges;
  cfg.double_buffer = true;
  cfg.merge_free = merge_free;
  cfg.auto_rehash_p99_slabs = 0.0;  // rehash timing is pinned per test
  return cfg;
}

GraphConfig oracle_config(bool undirected = false) {
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  cfg.undirected = undirected;
  cfg.batch_engine = false;
  cfg.auto_rehash_p99_slabs = 0.0;
  return cfg;
}

/// Query mix over a wider id range than the graph: hits, misses, unknown
/// sources, and self-loops all appear.
std::vector<Edge> query_batch(std::uint64_t seed, std::size_t count,
                              std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<Edge> queries(count);
  for (auto& q : queries) {
    q = {static_cast<VertexId>(rng.below(num_vertices * 2)),
         static_cast<VertexId>(rng.below(num_vertices * 2))};
  }
  return queries;
}

class QueryPipelineThreadSweep : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { simt::ThreadPool::instance().resize(GetParam()); }
  void TearDown() override { simt::ThreadPool::instance().resize(0); }
};

/// Drives edges_exist through the pipelined engine across shard counts,
/// epoch sizes, and both staging assemblies; every answer must equal the
/// scalar point lookup.
template <class Policy>
void run_exist_differential(bool undirected, std::uint64_t seed) {
  const auto inserts = random_batch(seed, 1500, 160);
  DynGraph<Policy> oracle(oracle_config(undirected));
  oracle.insert_edges(inserts);
  const auto queries = query_batch(seed + 1, 900, 160);

  std::vector<std::uint8_t> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expected[i] = oracle.edge_exists(queries[i].src, queries[i].dst) ? 1 : 0;
  }

  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    for (const std::uint32_t epoch : {0u, 128u}) {
      for (const bool merge_free : {true, false}) {
        DynGraph<Policy> g(engine_config(shards, epoch, merge_free,
                                         undirected));
        g.insert_edges(inserts);
        std::vector<std::uint8_t> out(queries.size(), 2);
        g.edges_exist(queries, out.data());
        EXPECT_EQ(out, expected)
            << "shards=" << shards << " epoch=" << epoch
            << " merge_free=" << merge_free;
        if (epoch != 0) {
          // 900 queries at epoch 128: the pipeline really split.
          EXPECT_EQ(g.last_query_stats().epochs, (900 + 127) / 128);
        }
        if (merge_free) {
          EXPECT_EQ(g.last_query_stats().merge_copy_bytes, 0u);
        }
      }
    }
  }
}

TEST_P(QueryPipelineThreadSweep, MapDirectedExist) {
  run_exist_differential<MapPolicy>(false, 21);
}
TEST_P(QueryPipelineThreadSweep, MapUndirectedExist) {
  run_exist_differential<MapPolicy>(true, 22);
}
TEST_P(QueryPipelineThreadSweep, SetDirectedExist) {
  run_exist_differential<SetPolicy>(false, 23);
}

TEST_P(QueryPipelineThreadSweep, MapWeightsPipelinedMatchPointLookups) {
  const auto inserts = random_batch(31, 1500, 160);
  DynGraphMap g(engine_config(2, 100, true));
  g.insert_edges(inserts);
  auto queries = query_batch(32, 1100, 160);
  queries.push_back({5, 5});     // self-loop: never stored
  queries.push_back({4000, 1});  // far out of range
  std::vector<Weight> weights(queries.size(), 0xDEAD);
  std::vector<std::uint8_t> found(queries.size(), 2);
  g.edge_weights(queries, weights.data(), found.data());
  EXPECT_GT(g.last_query_stats().epochs, 1u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto expect = g.edge_weight(queries[i].src, queries[i].dst);
    ASSERT_EQ(found[i] != 0, expect.found) << "query " << i;
    ASSERT_EQ(weights[i], expect.found ? expect.value : 0u) << "query " << i;
  }
  // The found pointer stays optional on the pipelined path.
  std::vector<Weight> weights_only(queries.size(), 0xDEAD);
  g.edge_weights(queries, weights_only.data());
  EXPECT_EQ(weights, weights_only);
}

TEST_P(QueryPipelineThreadSweep, ForcedEpochsReportQueryStats) {
  DynGraphMap g(engine_config(2, 100, true));
  g.insert_edges(random_batch(41, 2000, 128));
  const auto queries = query_batch(42, 1000, 128);
  std::vector<std::uint8_t> out(queries.size());
  g.edges_exist(queries, out.data());
  const BatchPipelineStats stats = g.last_query_stats();
  EXPECT_EQ(stats.epochs, (1000 + 99) / 100);
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_GT(stats.stage_seconds, 0.0);
  EXPECT_GT(stats.apply_seconds, 0.0);
  EXPECT_GE(stats.overlap_seconds, 0.0);
  EXPECT_EQ(stats.merge_copy_bytes, 0u);  // merge-free: zero driver copy
}

INSTANTIATE_TEST_SUITE_P(Widths, QueryPipelineThreadSweep,
                         ::testing::Values(1u, 8u));

// ---------------------------------------------------------------------------
// Merge-free staging
// ---------------------------------------------------------------------------

TEST(MergeFreeStaging, DifferentialVsCopyingMergeAcrossShardsAndEpochs) {
  // The same interleaved mutation stream must produce bit-identical graphs
  // whether shard output is assembled merge-free or through the copying
  // merge — and only the latter may report driver-copied bytes.
  const auto inserts = random_batch(51, 3000, 96);
  std::vector<Edge> erases;
  for (const auto& e : random_batch(52, 1200, 96)) {
    erases.push_back({e.src, e.dst});
  }
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    for (const std::uint32_t epoch : {0u, 150u}) {
      DynGraphMap free_graph(engine_config(shards, epoch, true, true));
      DynGraphMap copy_graph(engine_config(shards, epoch, false, true));
      EXPECT_EQ(free_graph.insert_edges(inserts),
                copy_graph.insert_edges(inserts));
      EXPECT_EQ(free_graph.last_batch_stats().merge_copy_bytes, 0u)
          << "merge-free staging must not copy on the driver";
      EXPECT_GT(copy_graph.last_batch_stats().merge_copy_bytes, 0u)
          << "the legacy merge is the copying reference";
      EXPECT_EQ(free_graph.delete_edges(erases),
                copy_graph.delete_edges(erases));
      EXPECT_EQ(graph_edges(free_graph), graph_edges(copy_graph))
          << "shards=" << shards << " epoch=" << epoch;
    }
  }
}

TEST(MergeFreeStaging, CountPlaceInvariantHoldsPerShard) {
  // Pass 1 (count) must predict exactly what pass 2 (place) emits: the
  // emitted global arrays are sized from the counts alone, so any drift
  // would corrupt a neighbouring shard's slice.
  ShardedStaging staged;
  staged.resize(4);
  const slabhash::TableRef table{0, 8};
  util::Xoshiro256 rng(7);
  std::uint64_t pushed = 0;
  for (int i = 0; i < 4000; ++i) {
    const VertexId src = static_cast<VertexId>(rng.below(64));
    const std::uint32_t shard = shard_of_vertex(src, 4);
    staged.shard(shard).push(src, static_cast<std::uint32_t>(rng.below(40)),
                             table, 99);
    ++pushed;
  }
  std::uint64_t counted_runs = 0;
  std::uint64_t counted_keys = 0;
  std::uint64_t duplicates = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    staged.shard(s).group_prepare(/*dedup=*/true);
    counted_runs += staged.shard(s).grouped_runs();
    counted_keys += staged.shard(s).grouped_keys();
    duplicates += staged.shard(s).duplicates;
  }
  EXPECT_EQ(counted_keys + duplicates, pushed);
  EXPECT_EQ(staged.finalize(/*merge_free=*/true, false, false), 0u);
  const BatchStaging& front = staged.front();
  EXPECT_EQ(front.runs.size(), counted_runs);
  EXPECT_EQ(front.keys.size(), counted_keys);
  EXPECT_EQ(front.run_offsets.size(), counted_runs + 1);
  EXPECT_EQ(front.run_offsets.back(), counted_keys);
  // Offsets are strictly increasing with no gaps: every slot was placed.
  for (std::size_t r = 0; r + 1 < front.run_offsets.size(); ++r) {
    ASSERT_LT(front.run_offsets[r], front.run_offsets[r + 1]);
  }
  // Runs keep shard-major order, so the shard partition is recoverable.
  std::uint32_t last_shard = 0;
  for (const QueryRun& run : front.runs) {
    const std::uint32_t s = shard_of_vertex(run.src, 4);
    ASSERT_GE(s, last_shard) << "shard-major run order violated";
    last_shard = s;
  }
}

TEST(MergeFreeStaging, FinalizeAssembliesAgree) {
  // finalize(merge_free) and finalize(copying) must produce identical
  // front() views from identically staged shards.
  const slabhash::TableRef table{0, 4};
  ShardedStaging a;
  ShardedStaging b;
  for (ShardedStaging* st : {&a, &b}) {
    st->resize(2);
    util::Xoshiro256 rng(13);
    for (int i = 0; i < 500; ++i) {
      const VertexId src = static_cast<VertexId>(rng.below(32));
      st->shard(shard_of_vertex(src, 2))
          .push(src, static_cast<std::uint32_t>(rng.below(25)), table, 5);
    }
    for (std::uint32_t s = 0; s < 2; ++s) {
      st->shard(s).group_prepare(/*dedup=*/true);
    }
  }
  EXPECT_EQ(a.finalize(/*merge_free=*/true, false, false), 0u);
  EXPECT_GT(b.finalize(/*merge_free=*/false, false, false), 0u);
  EXPECT_EQ(a.front().keys, b.front().keys);
  EXPECT_EQ(a.front().run_offsets, b.front().run_offsets);
  ASSERT_EQ(a.front().runs.size(), b.front().runs.size());
  for (std::size_t r = 0; r < a.front().runs.size(); ++r) {
    EXPECT_EQ(a.front().runs[r].src, b.front().runs[r].src);
    EXPECT_EQ(a.front().runs[r].bucket, b.front().runs[r].bucket);
  }
}

TEST(MergeFreeStaging, PartitionGuardStillArmsTheDebugAssertion) {
  // The partition guard survives the merge deletion as a debug assertion:
  // validate_partition() is finalize()'s NDEBUG-gated check, callable
  // directly so release-built suites still cover it.
  ShardedStaging staged;
  staged.resize(4);
  const slabhash::TableRef table{0, 4};
  staged.shard(2).push(6, 3, table, 1);  // vertex 6 belongs to shard 2: fine
  staged.shard(1).push(6, 4, table, 1);  // and not to shard 1: violation
  staged.shard(1).group_prepare(true);
  staged.shard(2).group_prepare(true);
  staged.shard(0).group_prepare(true);
  staged.shard(3).group_prepare(true);
  EXPECT_THROW(staged.validate_partition(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Chain feedback from queries + the automatic rehash policy
// ---------------------------------------------------------------------------

/// Hub-heavy inserts: `hubs` vertices grow chains far past one slab while a
/// tail of single-edge vertices stays put.
std::vector<WeightedEdge> hub_batch(std::uint32_t hubs,
                                    std::uint32_t hub_degree,
                                    std::uint32_t tails) {
  std::vector<WeightedEdge> edges;
  for (VertexId hub = 0; hub < hubs; ++hub) {
    for (std::uint32_t k = 0; k < hub_degree; ++k) {
      edges.push_back({hub, 1000 + k, k + 1});
    }
  }
  for (VertexId u = hubs; u < hubs + tails; ++u) {
    edges.push_back({u, u + 1, 1});
  }
  return edges;
}

TEST(QueryChainFeedback, BulkSearchesFeedTheHistogram) {
  GraphConfig cfg = engine_config(2, 0, true);
  cfg.vertex_capacity = 2048;
  DynGraphMap g(cfg);
  g.insert_edges(hub_batch(3, 200, 60));
  // Drain the insert-time histogram without rebuilding anything: at a
  // 100-slab threshold nothing qualifies, and the consumed interval's
  // histogram resets.
  EXPECT_EQ(g.rehash_long_chains(100.0), 0u);
  std::uint64_t hist_total = 0;
  for (const std::uint64_t h : g.chain_feedback().hist) hist_total += h;
  EXPECT_EQ(hist_total, 0u);

  // A pure query phase must refill it: the hub chains are ~14 slabs deep
  // and every bulk search walks them.
  std::vector<Edge> queries;
  for (std::uint32_t k = 0; k < 200; ++k) queries.push_back({0, 1000 + k});
  std::vector<std::uint8_t> out(queries.size());
  g.edges_exist(queries, out.data());
  for (std::uint32_t k = 0; k < 200; ++k) ASSERT_EQ(out[k], 1u);
  hist_total = 0;
  for (const std::uint64_t h : g.chain_feedback().hist) hist_total += h;
  EXPECT_GT(hist_total, 0u) << "bulk searches must histogram chain lengths";

  // And the query-fed candidates are enough for a targeted rehash to find
  // the offenders without a sweep.
  const std::uint32_t rehashed = g.rehash_long_chains(1.0);
  EXPECT_GT(rehashed, 0u);
  EXPECT_TRUE(g.last_rehash_stats().targeted);
  EXPECT_LT(g.last_rehash_stats().scanned, 20u);
}

TEST(AutoRehash, FiresWithoutUserCallsAndPreservesContent) {
  // >1% of runs walk chains >= 4 slabs => the p99 policy must fire during
  // insert_edges itself.
  const auto edges = hub_batch(40, 80, 200);
  GraphConfig auto_cfg = engine_config(2, 0, true);
  auto_cfg.vertex_capacity = 2048;
  auto_cfg.auto_rehash_p99_slabs = 4.0;
  GraphConfig manual_cfg = auto_cfg;
  manual_cfg.auto_rehash_p99_slabs = 0.0;

  DynGraphMap auto_graph(auto_cfg);
  DynGraphMap manual_graph(manual_cfg);
  auto_graph.insert_edges(edges);
  manual_graph.insert_edges(edges);

  EXPECT_GE(auto_graph.auto_rehash_triggers(), 1u);
  EXPECT_EQ(manual_graph.auto_rehash_triggers(), 0u);
  // Rehashing moves content, never changes it.
  EXPECT_EQ(graph_edges(auto_graph), graph_edges(manual_graph));
  // The hubs were actually rebuilt: chains shrank vs the unmaintained twin.
  EXPECT_LT(auto_graph.memory_stats().avg_chain_length(),
            manual_graph.memory_stats().avg_chain_length());
}

TEST(AutoRehash, TailFractionKnobControlsTheTrigger) {
  // Same skewed stream as FiresWithoutUserCalls: 40 hub runs out of ~240
  // walk >= 4-slab chains, a tail fraction of roughly 1/6. The default
  // 0.01 (p99) must fire, and a tolerance ABOVE the actual tail must not
  // — the knob, not a hard-wired 1%, decides.
  const auto edges = hub_batch(40, 80, 200);
  for (const double frac : {0.01, 0.5}) {
    GraphConfig cfg = engine_config(2, 0, true);
    cfg.vertex_capacity = 2048;
    cfg.auto_rehash_p99_slabs = 4.0;
    cfg.auto_rehash_tail_frac = frac;
    DynGraphMap g(cfg);
    g.insert_edges(edges);
    if (frac <= 0.01) {
      EXPECT_GE(g.auto_rehash_triggers(), 1u) << "frac=" << frac;
    } else {
      EXPECT_EQ(g.auto_rehash_triggers(), 0u) << "frac=" << frac;
    }
  }
}

TEST(AutoRehash, TailFractionIsValidatedAtConstruction) {
  GraphConfig cfg;
  cfg.auto_rehash_tail_frac = 0.0;  // "fire on any tail" is frac -> 0+,
  EXPECT_THROW(DynGraphMap{cfg}, std::invalid_argument);  // not 0
  cfg.auto_rehash_tail_frac = -0.5;
  EXPECT_THROW(DynGraphMap{cfg}, std::invalid_argument);
  cfg.auto_rehash_tail_frac = 1.5;
  EXPECT_THROW(DynGraphMap{cfg}, std::invalid_argument);
  cfg.auto_rehash_tail_frac = 1.0;  // the permissive extreme is legal
  DynGraphMap ok(cfg);
  EXPECT_EQ(ok.config().auto_rehash_tail_frac, 1.0);
}

TEST(AutoRehash, StaysQuietOnUniformWorkloads) {
  GraphConfig cfg = engine_config(2, 0, true);
  cfg.auto_rehash_p99_slabs = 4.0;
  DynGraphMap g(cfg);
  g.insert_edges(random_batch(61, 2000, 200));  // short chains everywhere
  EXPECT_EQ(g.auto_rehash_triggers(), 0u);
}

TEST(AutoRehash, QueriesInformButNeverFireThePolicy) {
  // Queries feed the histogram but must not fire the (mutating) policy
  // themselves — the phase-concurrent model keeps query phases read-only.
  // The accumulated query observations DO count at the next mutation.
  GraphConfig cfg = engine_config(1, 0, true);
  cfg.vertex_capacity = 2048;
  cfg.auto_rehash_p99_slabs = 4.0;
  DynGraphMap g(cfg);
  // 3 long runs out of ~503: under the 1% tail, the insert must not fire.
  g.insert_edges(hub_batch(3, 200, 500));
  ASSERT_EQ(g.auto_rehash_triggers(), 0u);
  const auto before = g.memory_stats();

  // Hammer the hub chains with query batches: each walk histograms another
  // long chain, pushing the tail fraction well past 1% — but a query phase
  // may only observe, never rebuild.
  std::vector<Edge> queries;
  for (std::uint32_t k = 0; k < 200; ++k) queries.push_back({0, 1000 + k});
  std::vector<std::uint8_t> out(queries.size());
  for (int rep = 0; rep < 10; ++rep) g.edges_exist(queries, out.data());
  EXPECT_EQ(g.auto_rehash_triggers(), 0u);
  EXPECT_EQ(g.memory_stats().overflow_slabs, before.overflow_slabs);

  // The very next mutation inspects the query-fed histogram and fires.
  const std::vector<WeightedEdge> one_edge{{600, 601, 1}};
  g.insert_edges(one_edge);
  EXPECT_EQ(g.auto_rehash_triggers(), 1u);
  EXPECT_LT(g.memory_stats().overflow_slabs, before.overflow_slabs);
}

}  // namespace
}  // namespace sg::core
