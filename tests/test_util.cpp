// Unit tests for src/util: PRNG determinism & distribution sanity,
// streaming statistics, table rendering, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/cli.hpp"
#include "src/util/prng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace sg::util {
namespace {

TEST(Prng, SplitMixIsDeterministic) {
  std::uint64_t s1 = 7, s2 = 7;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Prng, SplitMixAdvancesState) {
  std::uint64_t s = 7;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Prng, Mix64IsInjectiveOnSample) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 10000; ++x) seen.insert(mix64(x));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Prng, XoshiroSameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, XoshiroDifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Prng, BelowStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Prng, BelowZeroBoundReturnsZero) {
  Xoshiro256 rng(9);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Prng, BelowOneBoundReturnsZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Prng, RangeInclusiveBounds) {
  Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.range(3, 6);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 6u);
    saw_lo |= (x == 3);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, UniformIsInHalfOpenUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Prng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(13);
  int histogram[10] = {};
  for (int i = 0; i < 100000; ++i) ++histogram[rng.below(10)];
  for (int bucket : histogram) {
    EXPECT_NEAR(bucket, 10000, 600);
  }
}

TEST(Stats, EmptyAccumulator) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, SingleValue) {
  StreamingStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-sigma example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, DegreeStatsMatchManualComputation) {
  const std::vector<std::uint32_t> degrees = {1, 2, 3, 4};
  const DegreeStats d = degree_stats(degrees);
  EXPECT_EQ(d.min_degree, 1u);
  EXPECT_EQ(d.max_degree, 4u);
  EXPECT_DOUBLE_EQ(d.avg_degree, 2.5);
  EXPECT_NEAR(d.sigma, std::sqrt(1.25), 1e-12);
}

TEST(Stats, DegreeStatsEmpty) {
  const DegreeStats d = degree_stats({});
  EXPECT_EQ(d.min_degree, 0u);
  EXPECT_EQ(d.max_degree, 0u);
}

TEST(Stats, MeanOf) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string("title");
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
}

TEST(Cli, ParsesKeyValue) {
  const char* argv[] = {"prog", "--scale=0.5", "--name=abc"};
  Cli cli(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(cli.get("name", ""), "abc");
}

TEST(Cli, FlagWithoutValueIsTruthy) {
  const char* argv[] = {"prog", "--verbose"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get_int("verbose", 0), 1);
}

TEST(Cli, FallbacksApply) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, MalformedArgumentThrows) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, argv), std::invalid_argument);
}

TEST(Cli, UnusedKeysReported) {
  const char* argv[] = {"prog", "--typo=1", "--used=2"};
  Cli cli(3, argv);
  (void)cli.get_int("used", 0);
  EXPECT_EQ(cli.unused_keys(), "typo");
}

TEST(Timer, MeasuresNonNegativeDurations) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds());
}

TEST(Timer, ResetRestartsClock) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink += i;
  const double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before + 1.0);
}

TEST(Timer, ThroughputHelper) {
  EXPECT_DOUBLE_EQ(mitems_per_second(2e6, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(mitems_per_second(1e6, 0.0), 0.0);
}

}  // namespace
}  // namespace sg::util
