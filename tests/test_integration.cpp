// Integration tests: whole-pipeline flows across modules — suite datasets
// through build / update / query / delete cycles on the dynamic graph and
// the baselines, bulk-vs-incremental equivalence, load-factor behaviour
// (the Figure 2 mechanism), and the phase-concurrent update semantics at a
// realistic scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/analytics/triangle_count.hpp"
#include "src/baselines/csr/csr.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/datasets/generators.hpp"
#include "src/datasets/suite.hpp"

namespace sg {
namespace {

using core::DynGraphMap;
using core::DynGraphSet;
using core::Edge;
using core::GraphConfig;
using core::VertexId;
using core::WeightedEdge;

GraphConfig cfg_for(const datasets::Coo& coo, double lf = 0.7) {
  GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  cfg.load_factor = lf;
  return cfg;
}

TEST(Integration, BulkBuildStoresEverySuiteDataset) {
  for (const auto& name : datasets::small_suite_names()) {
    const datasets::Coo coo = datasets::make_dataset(name, 0.05);
    DynGraphMap g(cfg_for(coo));
    g.bulk_build(coo.edges);
    ASSERT_EQ(g.num_edges(), coo.edges.size()) << name;
    // Spot-check membership on a sample.
    for (std::size_t i = 0; i < coo.edges.size(); i += 97) {
      const auto& e = coo.edges[i];
      ASSERT_TRUE(g.edge_exists(e.src, e.dst)) << name;
      ASSERT_EQ(g.edge_weight(e.src, e.dst).value, e.weight) << name;
    }
  }
}

TEST(Integration, BulkAndIncrementalBuildsAreEquivalent) {
  const datasets::Coo coo = datasets::make_dataset("coAuthorsDBLP", 0.1);
  DynGraphMap bulk(cfg_for(coo));
  bulk.bulk_build(coo.edges);
  DynGraphMap incremental(cfg_for(coo));
  for (const auto batch : datasets::split_batches(coo.edges, 1000)) {
    incremental.insert_edges(batch);
  }
  EXPECT_EQ(bulk.num_edges(), incremental.num_edges());
  for (VertexId u = 0; u < coo.num_vertices; u += 31) {
    ASSERT_EQ(bulk.degree(u), incremental.degree(u)) << u;
  }
  // Incremental (single-bucket tables) must chain far more than bulk.
  EXPECT_GT(incremental.memory_stats().overflow_slabs,
            bulk.memory_stats().overflow_slabs);
}

TEST(Integration, InsertDeleteChurnKeepsStructureConsistent) {
  const datasets::Coo coo = datasets::make_dataset("rgg_n_2_20_s0", 0.1);
  DynGraphMap g(cfg_for(coo));
  g.bulk_build(coo.edges);
  const std::uint64_t original = g.num_edges();
  // Delete a third of the real edges, then reinsert them.
  std::vector<Edge> doomed;
  for (std::size_t i = 0; i < coo.edges.size(); i += 3) {
    doomed.push_back({coo.edges[i].src, coo.edges[i].dst});
  }
  const std::uint64_t removed = g.delete_edges(doomed);
  EXPECT_EQ(removed, doomed.size());
  EXPECT_EQ(g.num_edges(), original - removed);
  std::vector<WeightedEdge> restore;
  for (std::size_t i = 0; i < coo.edges.size(); i += 3) {
    restore.push_back(coo.edges[i]);
  }
  EXPECT_EQ(g.insert_edges(restore), restore.size());
  EXPECT_EQ(g.num_edges(), original);
  for (std::size_t i = 0; i < coo.edges.size(); i += 53) {
    ASSERT_TRUE(g.edge_exists(coo.edges[i].src, coo.edges[i].dst));
  }
}

TEST(Integration, LoadFactorControlsChainLengthAndMemory) {
  // The Figure 2 mechanism: higher load factor (target chain length) =>
  // fewer buckets, higher utilization, less memory, longer chains.
  const datasets::Coo coo = datasets::make_rmat(2048, 2048 * 16, 21);
  DynGraphMap tight(cfg_for(coo, 0.35));
  tight.bulk_build(coo.edges);
  DynGraphMap loose(cfg_for(coo, 3.0));
  loose.bulk_build(coo.edges);
  const auto tight_stats = tight.memory_stats();
  const auto loose_stats = loose.memory_stats();
  EXPECT_EQ(tight_stats.live_edges, loose_stats.live_edges);
  EXPECT_GT(loose_stats.utilization(), tight_stats.utilization());
  EXPECT_LT(loose_stats.bytes, tight_stats.bytes);
  EXPECT_GT(loose_stats.avg_chain_length(), tight_stats.avg_chain_length());
}

TEST(Integration, DynGraphMatchesCsrOnFullDataset) {
  const datasets::Coo coo = datasets::make_dataset("delaunay_n20", 0.1);
  DynGraphSet g(cfg_for(coo));
  g.bulk_build(coo.edges);
  const baselines::Csr csr = baselines::Csr::from_edges(coo.num_vertices, coo.edges);
  for (VertexId u = 0; u < coo.num_vertices; ++u) {
    ASSERT_EQ(g.degree(u), csr.degree(u)) << u;
    std::vector<VertexId> from_hash;
    g.for_each_neighbor(u, [&](VertexId v, core::Weight) {
      from_hash.push_back(v);
    });
    std::sort(from_hash.begin(), from_hash.end());
    const auto row = csr.neighbors(u);
    ASSERT_TRUE(std::equal(from_hash.begin(), from_hash.end(), row.begin(),
                           row.end()))
        << u;
  }
}

TEST(Integration, VertexChurnOnRealGraph) {
  datasets::Coo coo = datasets::make_dataset("coAuthorsDBLP", 0.05);
  GraphConfig cfg = cfg_for(coo);
  cfg.undirected = true;
  DynGraphSet g(cfg);
  g.insert_edges(coo.unique_undirected_edges());
  const auto victims = datasets::random_vertex_batch(coo.num_vertices, 200, 3);
  g.delete_vertices(victims);
  const std::set<VertexId> dead(victims.begin(), victims.end());
  for (VertexId v : victims) {
    ASSERT_EQ(g.degree(v), 0u);
    ASSERT_FALSE(g.vertex_live(v));
  }
  // No surviving adjacency references a deleted vertex, and every degree
  // counter still matches the actual list content.
  for (VertexId u = 0; u < coo.num_vertices; u += 17) {
    std::uint32_t listed = 0;
    g.for_each_neighbor(u, [&](VertexId v, core::Weight) {
      ASSERT_FALSE(dead.count(v)) << u << "->" << v;
      ++listed;
    });
    ASSERT_EQ(listed, g.degree(u)) << u;
  }
}

TEST(Integration, TombstoneFlushAfterHeavyChurn) {
  const datasets::Coo coo = datasets::make_dataset("luxembourg_osm", 0.25);
  DynGraphMap g(cfg_for(coo));
  g.bulk_build(coo.edges);
  std::vector<Edge> half;
  for (std::size_t i = 0; i < coo.edges.size(); i += 2) {
    half.push_back({coo.edges[i].src, coo.edges[i].dst});
  }
  g.delete_edges(half);
  const auto before = g.memory_stats();
  EXPECT_GT(before.tombstones, 0u);
  g.flush_all_tombstones();
  const auto after = g.memory_stats();
  EXPECT_EQ(after.tombstones, 0u);
  EXPECT_EQ(after.live_edges, before.live_edges);
  EXPECT_LE(after.overflow_slabs, before.overflow_slabs);
  EXPECT_EQ(g.num_edges(), coo.edges.size() - half.size());
}

TEST(Integration, SetVariantUsesHalfTheBaseSlabsOfMap) {
  // Bc 30 vs 15: at equal load factor, the set needs ~half the base slabs.
  const datasets::Coo coo = datasets::make_dataset("hollywood-2009", 0.05);
  DynGraphMap map_graph(cfg_for(coo));
  map_graph.bulk_build(coo.edges);
  DynGraphSet set_graph(cfg_for(coo));
  set_graph.bulk_build(coo.edges);
  EXPECT_LT(set_graph.memory_stats().base_slabs,
            map_graph.memory_stats().base_slabs);
  EXPECT_EQ(set_graph.num_edges(), map_graph.num_edges());
}

TEST(Integration, PhaseConcurrentMixedSourceBatches) {
  // A large batch with sources spread across warps, duplicates across the
  // whole batch, hitting shared destination vertices concurrently.
  GraphConfig cfg;
  cfg.vertex_capacity = 512;
  cfg.undirected = true;
  DynGraphMap g(cfg);
  std::vector<WeightedEdge> batch;
  for (std::uint32_t round = 0; round < 4; ++round) {
    for (VertexId u = 0; u < 256; ++u) {
      for (std::uint32_t k = 1; k <= 8; ++k) {
        batch.push_back({u, static_cast<VertexId>((u + k) % 256), round});
      }
    }
  }
  g.insert_edges(batch);
  // Every vertex: 8 forward + 8 backward distinct neighbours.
  for (VertexId u = 0; u < 256; ++u) {
    ASSERT_EQ(g.degree(u), 16u) << u;
  }
  EXPECT_EQ(g.num_edges(), 256u * 16u);
}

}  // namespace
}  // namespace sg
