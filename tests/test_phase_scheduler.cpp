// Tests of the epoch-based phase scheduler (src/core/phase_scheduler.hpp)
// and DynGraph's scheduled mode:
//
//   * the conductor must never overlap a mutation phase with a query phase
//     (the phase-concurrent contract, now enforced), must preserve FIFO
//     submission order, and must coalesce same-kind bursts into shared
//     phases (consecutive same-op mutations into ONE engine batch);
//   * scheduled mixed mutation/query submissions from >= 4 concurrent
//     threads must produce results identical to serialized execution,
//     across pool widths 1/4/8 — the differential that makes the contract
//     checkable (and the workload the TSan CI job races at SG_THREADS=4);
//   * read-your-writes: a query submitted after a mutation's future
//     resolved observes that mutation; analytics on a never-mutated static
//     prefix return exact answers at every interleaving;
//   * stats (phase switches, coalesced batches, per-kind counts), drain,
//     inline reference mode (phase_scheduler = false), and exception
//     propagation through the futures.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/core/phase_scheduler.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::core {
namespace {

using namespace testutil;

// --------------------------------------------------------------------------
// Standalone conductor tests (toy ops; no graph involved)
// --------------------------------------------------------------------------

/// Toy ops that count in-flight operations per kind and log invocation
/// sizes; the scheduler must never let the two kinds overlap.
struct ToyOps {
  std::atomic<int> active_mutations{0};
  std::atomic<int> active_queries{0};
  std::atomic<int> overlap_violations{0};
  std::atomic<int> mutation_calls{0};
  std::atomic<bool> gate_open{true};  ///< first insert call spins until open

  PhaseScheduler::Ops ops() {
    PhaseScheduler::Ops o;
    o.insert_edges = [this](std::span<const WeightedEdge> edges) {
      const int call = ++mutation_calls;
      ++active_mutations;
      if (call == 1) {
        while (!gate_open.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
      if (active_queries.load() != 0) ++overlap_violations;
      --active_mutations;
      return static_cast<std::uint64_t>(edges.size());
    };
    o.delete_edges = [this](std::span<const Edge> edges) {
      ++mutation_calls;
      ++active_mutations;
      if (active_queries.load() != 0) ++overlap_violations;
      --active_mutations;
      return static_cast<std::uint64_t>(edges.size());
    };
    o.edges_exist = [this](std::span<const Edge> queries, std::uint8_t* out) {
      ++active_queries;
      if (active_mutations.load() != 0) ++overlap_violations;
      for (std::size_t i = 0; i < queries.size(); ++i) out[i] = 1;
      --active_queries;
    };
    return o;
  }
};

std::vector<WeightedEdge> toy_inserts(std::size_t n) {
  return std::vector<WeightedEdge>(n, WeightedEdge{1, 2, 3});
}
std::vector<Edge> toy_edges(std::size_t n) {
  return std::vector<Edge>(n, Edge{1, 2});
}

TEST(PhaseSchedulerConductor, CoalescesQueuedSameOpMutationsIntoOneBatch) {
  ToyOps toy;
  toy.gate_open.store(false);
  PhaseScheduler sched(toy.ops());

  // Phase 1 snapshots f1 alone; the gated op then holds the phase open
  // while three more submissions queue, so the next phase must admit all
  // three — the two inserts merged into ONE engine call (group total 5),
  // the erase as its own group in the same phase.
  auto f1 = sched.submit_insert(toy_inserts(1));
  while (toy.mutation_calls.load() < 1) std::this_thread::yield();
  auto f2 = sched.submit_insert(toy_inserts(2));
  auto f3 = sched.submit_insert(toy_inserts(3));
  auto f4 = sched.submit_erase(toy_edges(4));
  toy.gate_open.store(true, std::memory_order_release);

  EXPECT_EQ(f1.get(), 1u);
  EXPECT_EQ(f2.get(), 5u);  // group total: 2 + 3 staged as one batch
  EXPECT_EQ(f3.get(), 5u);
  EXPECT_EQ(f4.get(), 4u);
  sched.drain();

  const PhaseScheduleStats stats = sched.stats();
  EXPECT_EQ(stats.submitted_mutations, 4u);
  EXPECT_EQ(stats.mutation_phases, 2u);
  EXPECT_EQ(stats.coalesced_batches, 2u);  // f3 and f4 rode f2's phase
  EXPECT_EQ(toy.mutation_calls.load(), 3);  // f1 | f2+f3 merged | f4
}

TEST(PhaseSchedulerConductor, PreservesFifoOrderAcrossKinds) {
  ToyOps toy;
  toy.gate_open.store(false);
  PhaseScheduler sched(toy.ops());

  auto f1 = sched.submit_insert(toy_inserts(1));
  while (toy.mutation_calls.load() < 1) std::this_thread::yield();
  // Queue M Q M while the conductor is held: the query FENCES the two
  // mutations apart (a phase admits the longest same-kind prefix, never
  // cherry-picks around the queue), so the second insert must NOT merge
  // with anything and must run after the query phase.
  auto f2 = sched.submit_insert(toy_inserts(2));
  auto fq = sched.submit_edges_exist(toy_edges(3));
  auto f3 = sched.submit_insert(toy_inserts(4));
  toy.gate_open.store(true, std::memory_order_release);

  EXPECT_EQ(f2.get(), 2u);  // alone in its group: exact count
  EXPECT_EQ(fq.get().size(), 3u);
  EXPECT_EQ(f3.get(), 4u);
  sched.drain();

  const PhaseScheduleStats stats = sched.stats();
  EXPECT_EQ(stats.mutation_phases, 3u);  // f1 | f2 | f3
  EXPECT_EQ(stats.query_phases, 1u);
  EXPECT_GE(stats.phase_switches, 2u);  // M->Q and Q->M at least
  EXPECT_EQ(toy.overlap_violations.load(), 0);
  (void)f1;
}

TEST(PhaseSchedulerConductor, MutationAndQueryPhasesNeverOverlap) {
  ToyOps toy;
  PhaseScheduler sched(toy.ops());
  // Hammer from several threads; the toy ops cross-check the other kind's
  // in-flight counter on every call.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sched, t] {
      for (int i = 0; i < 50; ++i) {
        if ((t + i) % 2 == 0) {
          sched.submit_insert(toy_inserts(8));
        } else {
          sched.submit_edges_exist(toy_edges(8));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  sched.drain();
  EXPECT_EQ(toy.overlap_violations.load(), 0);
  const PhaseScheduleStats stats = sched.stats();
  EXPECT_EQ(stats.submitted_mutations + stats.submitted_queries, 200u);
  EXPECT_GE(stats.phase_switches, 1u);
}

TEST(PhaseSchedulerConductor, DestructorRejectsPendingSubmissions) {
  std::future<std::uint64_t> in_flight;
  std::future<std::uint64_t> queued;
  {
    ToyOps toy;
    toy.gate_open.store(false);
    PhaseScheduler sched(toy.ops());
    // Phase 1 opens on f1 and spins on the gate; f2 queues behind it and is
    // still pending when the destructor runs.
    in_flight = sched.submit_insert(toy_inserts(7));
    while (toy.mutation_calls.load() < 1) std::this_thread::yield();
    queued = sched.submit_insert(toy_inserts(3));
    // Open the gate only after ~PhaseScheduler has set its stop flag, so
    // the conductor deterministically sees stop before dequeuing f2. The
    // destructor's first action is setting the flag; the opener's sleep
    // starts after destruction began.
    std::thread opener([&toy] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      toy.gate_open.store(true, std::memory_order_release);
    });
    opener.detach();
  }  // destructor: finishes the open phase, REJECTS the queued submission
  EXPECT_EQ(in_flight.get(), 7u);  // in-flight work completes normally
  try {
    queued.get();
    FAIL() << "queued submission must be rejected at shutdown, not run";
  } catch (const SubmitRejected& e) {
    EXPECT_EQ(e.reason(), RejectReason::kShutdown);
  }
}

TEST(PhaseSchedulerConductor, DestructorRejectsPendingAnalytics) {
  std::future<std::uint64_t> in_flight;
  std::future<void> queued_task;
  std::future<void> queued_snapshot;
  std::atomic<int> ran{0};
  {
    ToyOps toy;
    toy.gate_open.store(false);
    PhaseScheduler sched(toy.ops());
    // The gated mutation phase holds the conductor; analytics (and a
    // snapshot, which is analytics-kind) queue behind it and are still
    // pending at destruction. A rejected analytics task must never run.
    in_flight = sched.submit_insert(toy_inserts(7));
    while (toy.mutation_calls.load() < 1) std::this_thread::yield();
    queued_task = sched.submit_analytics([&ran] { ++ran; });
    queued_snapshot = sched.submit_snapshot([&ran] { ++ran; });
    std::thread opener([&toy] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      toy.gate_open.store(true, std::memory_order_release);
    });
    opener.detach();
  }  // destructor: finishes the open phase, rejects both queued analytics
  EXPECT_EQ(in_flight.get(), 7u);
  for (std::future<void>* f : {&queued_task, &queued_snapshot}) {
    try {
      f->get();
      FAIL() << "queued analytics must be rejected at shutdown, not run";
    } catch (const SubmitRejected& e) {
      EXPECT_EQ(e.reason(), RejectReason::kShutdown);
    }
  }
  EXPECT_EQ(ran.load(), 0);  // rejection means the task body never executed
}

// --------------------------------------------------------------------------
// Admission control (bounded queues, backpressure, deadlines)
// --------------------------------------------------------------------------

TEST(PhaseSchedulerAdmission, RejectPolicyResolvesFutureWithQueueFull) {
  ToyOps toy;
  toy.gate_open.store(false);
  PhaseScheduler::Limits limits;
  limits.max_pending_submissions = 2;
  limits.backpressure = BackpressurePolicy::kReject;
  PhaseScheduler sched(toy.ops(), limits);

  auto f1 = sched.submit_insert(toy_inserts(1));  // enters the gated phase
  while (toy.mutation_calls.load() < 1) std::this_thread::yield();
  auto f2 = sched.submit_insert(toy_inserts(2));  // queued (depth 1)
  auto f3 = sched.submit_insert(toy_inserts(3));  // queued (depth 2 = cap)
  auto f4 = sched.submit_insert(toy_inserts(4));  // over the cap: rejected
  toy.gate_open.store(true, std::memory_order_release);

  EXPECT_EQ(f1.get(), 1u);
  EXPECT_EQ(f2.get(), 5u);  // f2 + f3 coalesce: group total
  EXPECT_EQ(f3.get(), 5u);
  try {
    f4.get();
    FAIL() << "submission over the cap must be rejected under kReject";
  } catch (const SubmitRejected& e) {
    EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
  }
  sched.drain();
  const PhaseScheduleStats stats = sched.stats();
  EXPECT_EQ(stats.rejected_submissions, 1u);
  EXPECT_EQ(stats.max_queue_depth, 2u);
  EXPECT_EQ(stats.submitted_mutations, 3u);  // rejected ones never count
}

TEST(PhaseSchedulerAdmission, PendingEdgeCapCountsItemsNotSubmissions) {
  ToyOps toy;
  toy.gate_open.store(false);
  PhaseScheduler::Limits limits;
  limits.max_pending_edges = 10;
  limits.backpressure = BackpressurePolicy::kReject;
  PhaseScheduler sched(toy.ops(), limits);

  auto f1 = sched.submit_insert(toy_inserts(1));
  while (toy.mutation_calls.load() < 1) std::this_thread::yield();
  // An oversized submission is admitted when the queue is EMPTY (it must
  // not wedge forever) ...
  auto f2 = sched.submit_insert(toy_inserts(50));
  // ... but with 50 items pending, anything more overflows the item cap.
  auto f3 = sched.submit_insert(toy_inserts(1));
  toy.gate_open.store(true, std::memory_order_release);

  EXPECT_EQ(f1.get(), 1u);
  EXPECT_EQ(f2.get(), 50u);
  EXPECT_THROW(f3.get(), SubmitRejected);
  sched.drain();
  EXPECT_EQ(sched.stats().rejected_submissions, 1u);
}

TEST(PhaseSchedulerAdmission, BlockPolicyAdmitsWhenSpaceFrees) {
  ToyOps toy;
  toy.gate_open.store(false);
  PhaseScheduler::Limits limits;
  limits.max_pending_submissions = 1;
  limits.backpressure = BackpressurePolicy::kBlock;  // no timeout: wait
  PhaseScheduler sched(toy.ops(), limits);

  auto f1 = sched.submit_insert(toy_inserts(1));
  while (toy.mutation_calls.load() < 1) std::this_thread::yield();
  auto f2 = sched.submit_insert(toy_inserts(2));  // fills the queue
  // f3 must BLOCK in submit until the conductor drains f2, then be
  // admitted and complete normally.
  std::future<std::uint64_t> f3;
  std::thread blocked([&] { f3 = sched.submit_insert(toy_inserts(3)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  toy.gate_open.store(true, std::memory_order_release);
  blocked.join();
  EXPECT_EQ(f1.get(), 1u);
  EXPECT_GT(f2.get(), 0u);  // possibly coalesced with f3
  EXPECT_GT(f3.get(), 0u);
  sched.drain();
  const PhaseScheduleStats stats = sched.stats();
  EXPECT_EQ(stats.rejected_submissions, 0u);
  // blocked_ns is asserted nonzero in the timeout test below, where the
  // wait duration is deterministic; here the helper thread might (rarely)
  // reach submit after the queue already drained.
  EXPECT_LE(stats.max_queue_depth, 1u);
}

TEST(PhaseSchedulerAdmission, BlockPolicyTimesOutToTypedRejection) {
  ToyOps toy;
  toy.gate_open.store(false);
  PhaseScheduler::Limits limits;
  limits.max_pending_submissions = 1;
  limits.backpressure = BackpressurePolicy::kBlock;
  limits.submit_timeout_ms = 30;
  PhaseScheduler sched(toy.ops(), limits);

  auto f1 = sched.submit_insert(toy_inserts(1));
  while (toy.mutation_calls.load() < 1) std::this_thread::yield();
  auto f2 = sched.submit_insert(toy_inserts(2));
  // The gate stays closed past the timeout: f3's wait must give up.
  auto f3 = sched.submit_insert(toy_inserts(3));
  try {
    f3.get();
    FAIL() << "blocked submission must time out";
  } catch (const SubmitRejected& e) {
    EXPECT_EQ(e.reason(), RejectReason::kTimeout);
  }
  toy.gate_open.store(true, std::memory_order_release);
  EXPECT_EQ(f1.get(), 1u);
  EXPECT_EQ(f2.get(), 2u);
  sched.drain();
  const PhaseScheduleStats stats = sched.stats();
  EXPECT_EQ(stats.rejected_submissions, 1u);
  EXPECT_GT(stats.blocked_ns, 0u);
}

TEST(PhaseSchedulerAdmission, ShedOldestQueriesEvictsQueriesNeverMutations) {
  ToyOps toy;
  toy.gate_open.store(false);
  PhaseScheduler::Limits limits;
  limits.max_pending_submissions = 2;
  limits.backpressure = BackpressurePolicy::kShedOldestQueries;
  PhaseScheduler sched(toy.ops(), limits);

  auto f1 = sched.submit_insert(toy_inserts(1));  // gated phase opens
  while (toy.mutation_calls.load() < 1) std::this_thread::yield();
  auto q1 = sched.submit_edges_exist(toy_edges(2));  // queued
  auto m2 = sched.submit_insert(toy_inserts(3));     // queued: cap reached
  // m3 arrives at the cap: the oldest pending QUERY (q1) is shed to make
  // room; the mutation m2 stays.
  auto m3 = sched.submit_insert(toy_inserts(4));
  // m4 arrives at the cap again, but only mutations remain: rejected.
  auto m4 = sched.submit_insert(toy_inserts(5));
  toy.gate_open.store(true, std::memory_order_release);

  EXPECT_EQ(f1.get(), 1u);
  try {
    q1.get();
    FAIL() << "oldest pending query must be shed";
  } catch (const SubmitRejected& e) {
    EXPECT_EQ(e.reason(), RejectReason::kShed);
  }
  EXPECT_EQ(m2.get(), 7u);  // m2 + m3 coalesce: group total 3 + 4
  EXPECT_EQ(m3.get(), 7u);
  try {
    m4.get();
    FAIL() << "nothing sheddable: newcomer must be rejected";
  } catch (const SubmitRejected& e) {
    EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
  }
  sched.drain();
  const PhaseScheduleStats stats = sched.stats();
  EXPECT_EQ(stats.shed_queries, 1u);
  EXPECT_EQ(stats.rejected_submissions, 1u);
}

TEST(PhaseSchedulerAdmission, ExpiredQueriesAreRejectedAtPhaseAdmission) {
  ToyOps toy;
  toy.gate_open.store(false);
  PhaseScheduler sched(toy.ops());

  auto f1 = sched.submit_insert(toy_inserts(1));  // gated phase opens
  while (toy.mutation_calls.load() < 1) std::this_thread::yield();
  // One query with a deadline the gated mutation phase will outlive, one
  // without: when the query phase finally opens, the first is rejected at
  // admission and the second still runs.
  auto expired = sched.submit_edges_exist(toy_edges(2), /*deadline_ms=*/1);
  auto fresh = sched.submit_edges_exist(toy_edges(3));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  toy.gate_open.store(true, std::memory_order_release);

  EXPECT_EQ(f1.get(), 1u);
  try {
    expired.get();
    FAIL() << "query admitted past its deadline must be rejected";
  } catch (const SubmitRejected& e) {
    EXPECT_EQ(e.reason(), RejectReason::kDeadlineExpired);
  }
  EXPECT_EQ(fresh.get().size(), 3u);
  sched.drain();
  const PhaseScheduleStats stats = sched.stats();
  EXPECT_EQ(stats.expired_queries, 1u);
}

// --------------------------------------------------------------------------
// DynGraph scheduled mode
// --------------------------------------------------------------------------

class PhaseSchedulerWidthSweep : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { simt::ThreadPool::instance().resize(GetParam()); }
  void TearDown() override { simt::ThreadPool::instance().resize(0); }
};

/// The acceptance differential: >= 4 concurrent submitter threads mix
/// insert / erase / exist submissions on one scheduled graph. Each thread
/// owns a disjoint source range (so the interleaving is commutative and a
/// serialized oracle exists); a never-mutated static prefix is probed from
/// every thread mid-stream and must answer exactly at every interleaving;
/// each thread checks read-your-writes on its own range. The final graph
/// must equal the oracle built by serialized synchronous execution.
TEST_P(PhaseSchedulerWidthSweep, MixedSubmittersMatchSerializedExecution) {
  constexpr unsigned kSubmitters = 4;
  constexpr std::uint32_t kRange = 64;         // sources per submitter
  constexpr std::uint32_t kStaticBase = 512;   // static prefix sources
  constexpr int kBatches = 5;
  constexpr std::size_t kBatchEdges = 160;

  GraphConfig cfg;
  cfg.vertex_capacity = 1024;
  ASSERT_TRUE(cfg.phase_scheduler);  // scheduled mode is the default

  // Static prefix: inserted synchronously before any submitter starts;
  // submitter mutations never touch sources >= kStaticBase, so these
  // adjacency lists are invariant for the whole run.
  std::vector<WeightedEdge> static_edges;
  for (std::uint32_t k = 0; k < 100; ++k) {
    static_edges.push_back({kStaticBase + k, k, k + 1});
  }
  std::vector<Edge> static_probes;   // alternating hit / miss
  std::vector<std::uint8_t> static_expected;
  for (std::uint32_t k = 0; k < 100; ++k) {
    static_probes.push_back({kStaticBase + k, k});
    static_expected.push_back(1);
    static_probes.push_back({kStaticBase + k, k + 5000});
    static_expected.push_back(0);
  }

  DynGraphMap scheduled(cfg);
  scheduled.insert_edges(static_edges);

  // Deterministic per-thread workload, also replayed into the oracle.
  struct ThreadOps {
    std::vector<std::vector<WeightedEdge>> insert_batches;
    std::vector<Edge> erase_batch;
  };
  std::vector<ThreadOps> ops(kSubmitters);
  for (unsigned t = 0; t < kSubmitters; ++t) {
    util::Xoshiro256 rng(1000 + t);
    const std::uint32_t base = t * kRange;
    for (int b = 0; b < kBatches; ++b) {
      std::vector<WeightedEdge> batch(kBatchEdges);
      for (auto& e : batch) {
        e = {base + static_cast<VertexId>(rng.below(kRange)),
             static_cast<VertexId>(rng.below(1024)),
             static_cast<Weight>(rng.below(1u << 16))};
      }
      ops[t].insert_batches.push_back(std::move(batch));
    }
    // Erase a deterministic subset of the thread's own inserts (plus some
    // never-present edges, which must count as misses for the oracle too).
    for (std::size_t i = 0; i < ops[t].insert_batches[0].size(); i += 3) {
      const auto& e = ops[t].insert_batches[0][i];
      ops[t].erase_batch.push_back({e.src, e.dst});
    }
    ops[t].erase_batch.push_back({base, 9999});
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::future<std::vector<std::uint8_t>>> analytics;
      for (int b = 0; b < kBatches; ++b) {
        auto mut = scheduled.submit_insert(ops[t].insert_batches[b]);
        // Mid-stream analytics on the static prefix: fire-and-collect.
        analytics.push_back(scheduled.submit_edges_exist(static_probes));
        mut.get();
      }
      auto erased = scheduled.submit_erase(ops[t].erase_batch);
      erased.get();
      // Read-your-writes: the erase future resolved, so a query submitted
      // NOW must see batch-0 edges minus the erased subset... unless a
      // later batch of this thread re-inserted the pair, which the oracle
      // below accounts for; here spot-check a pair no later batch can
      // contain (dst 9999 was only ever erased, never inserted).
      std::vector<Edge> own_probe{{t * kRange, 9999}};
      const auto own = scheduled.submit_edges_exist(own_probe).get();
      if (own[0] != 0) ++failures;
      for (auto& f : analytics) {
        const auto hits = f.get();
        for (std::size_t i = 0; i < hits.size(); ++i) {
          if (hits[i] != static_expected[i]) ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  scheduled.schedule_drain();
  EXPECT_EQ(failures.load(), 0);

  // Serialized oracle: identical ops, synchronous, thread-by-thread —
  // commutative because source ranges are disjoint.
  GraphConfig oracle_cfg = cfg;
  oracle_cfg.phase_scheduler = false;
  DynGraphMap oracle(oracle_cfg);
  oracle.insert_edges(static_edges);
  for (unsigned t = 0; t < kSubmitters; ++t) {
    for (const auto& batch : ops[t].insert_batches) {
      oracle.insert_edges(batch);
    }
    oracle.delete_edges(ops[t].erase_batch);
  }
  EXPECT_EQ(graph_edges(scheduled), graph_edges(oracle));

  const PhaseScheduleStats stats = scheduled.last_schedule_stats();
  EXPECT_EQ(stats.submitted_mutations, kSubmitters * (kBatches + 1));
  EXPECT_EQ(stats.submitted_queries, kSubmitters * (kBatches + 1));
  EXPECT_GE(stats.phase_switches, 1u);
  EXPECT_GT(stats.mutation_phases, 0u);
  EXPECT_GT(stats.query_phases, 0u);
}

/// Same mixed-submitter shape on the set variant (no weights): the
/// scheduler is shared, type-erased infrastructure, so both policies must
/// hold the contract.
TEST_P(PhaseSchedulerWidthSweep, SetVariantMatchesSerializedExecution) {
  constexpr unsigned kSubmitters = 4;
  constexpr std::uint32_t kRange = 32;
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  DynGraphSet scheduled(cfg);

  std::vector<std::vector<WeightedEdge>> batches(kSubmitters);
  for (unsigned t = 0; t < kSubmitters; ++t) {
    util::Xoshiro256 rng(77 + t);
    for (int i = 0; i < 300; ++i) {
      batches[t].push_back({t * kRange + static_cast<VertexId>(rng.below(kRange)),
                            static_cast<VertexId>(rng.below(256)), 0});
    }
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (unsigned t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      auto f = scheduled.submit_insert(batches[t]);
      f.get();
      // Read-your-writes on the first own edge.
      std::vector<Edge> probe{{batches[t][0].src, batches[t][0].dst}};
      if (scheduled.submit_edges_exist(probe).get()[0] != 1) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  scheduled.schedule_drain();
  EXPECT_EQ(failures.load(), 0);

  GraphConfig oracle_cfg = cfg;
  oracle_cfg.phase_scheduler = false;
  DynGraphSet oracle(oracle_cfg);
  for (unsigned t = 0; t < kSubmitters; ++t) oracle.insert_edges(batches[t]);
  EXPECT_EQ(graph_edges(scheduled), graph_edges(oracle));
}

INSTANTIATE_TEST_SUITE_P(PoolWidths, PhaseSchedulerWidthSweep,
                         ::testing::Values(1u, 4u, 8u));

TEST(ScheduledMode, WeightQueriesResolveAgainstPhaseConsistentState) {
  GraphConfig cfg;
  cfg.vertex_capacity = 64;
  DynGraphMap g(cfg);
  g.submit_insert({{1, 2, 10}, {1, 3, 20}, {2, 3, 30}}).get();
  const EdgeWeightBatch r =
      g.submit_edge_weights({{1, 2}, {1, 3}, {2, 3}, {3, 1}}).get();
  ASSERT_EQ(r.weights.size(), 4u);
  EXPECT_EQ(r.weights[0], 10u);
  EXPECT_EQ(r.weights[1], 20u);
  EXPECT_EQ(r.weights[2], 30u);
  EXPECT_EQ(r.found[3], 0);
  // Most-recent-wins holds across coalesced submissions exactly as across
  // batches: a later submission's weight replaces an earlier one's.
  g.submit_insert({{1, 2, 99}}).get();
  EXPECT_EQ(g.submit_edge_weights({{1, 2}}).get().weights[0], 99u);
}

TEST(ScheduledMode, InlineReferenceModeMatchesScheduler) {
  GraphConfig inline_cfg;
  inline_cfg.vertex_capacity = 128;
  inline_cfg.phase_scheduler = false;  // synchronous ready-future mode
  DynGraphMap inline_graph(inline_cfg);
  GraphConfig sched_cfg = inline_cfg;
  sched_cfg.phase_scheduler = true;
  DynGraphMap sched_graph(sched_cfg);

  const auto batch = random_batch(5, 500, 100);
  EXPECT_EQ(inline_graph.submit_insert(batch).get(),
            sched_graph.submit_insert(batch).get());
  const auto probes = std::vector<Edge>{{batch[0].src, batch[0].dst},
                                        {batch[1].src, batch[1].dst},
                                        {120, 121}};
  EXPECT_EQ(inline_graph.submit_edges_exist(probes).get(),
            sched_graph.submit_edges_exist(probes).get());
  EXPECT_EQ(graph_edges(inline_graph), graph_edges(sched_graph));
  // Inline mode never starts a conductor: stats stay all-zero.
  EXPECT_EQ(inline_graph.last_schedule_stats().submitted_mutations, 0u);
  EXPECT_GT(sched_graph.last_schedule_stats().submitted_mutations, 0u);
}

TEST(ScheduledMode, ExceptionsPropagateThroughTheFuture) {
  GraphConfig cfg;
  DynGraphMap g(cfg);
  // An out-of-range vertex id fails batch validation inside the phase; the
  // error must surface on the submitter's future, not kill the conductor.
  std::vector<WeightedEdge> bad{{kMaxVertexId + 1, 1, 1}};
  EXPECT_THROW(g.submit_insert(std::move(bad)).get(), std::invalid_argument);
  // The conductor survives: later submissions still run.
  EXPECT_EQ(g.submit_insert({{1, 2, 3}}).get(), 1u);
}

/// S3 regression: a query job that throws ON A POOL THREAD (query phases
/// run as ThreadPool jobs, unlike mutations which run on the conductor)
/// must surface on the submitter's future — not escape the pool worker and
/// std::terminate — and must not poison later phases.
TEST(ScheduledMode, ThrowingPoolJobSurfacesOnFutureNotTerminate) {
  simt::ThreadPool::instance().resize(4);
  ToyOps toy;
  PhaseScheduler::Ops ops = toy.ops();
  ops.edges_exist = [](std::span<const Edge> queries, std::uint8_t* out) {
    if (queries.size() == 13) {
      throw std::runtime_error("query job died on a pool thread");
    }
    for (std::size_t i = 0; i < queries.size(); ++i) out[i] = 1;
  };
  PhaseScheduler sched(ops);
  auto poisoned = sched.submit_edges_exist(toy_edges(13));
  auto healthy = sched.submit_edges_exist(toy_edges(5));
  EXPECT_THROW(poisoned.get(), std::runtime_error);
  EXPECT_EQ(healthy.get().size(), 5u);  // phase survives a sibling's death
  // The conductor survives too: a later mutation phase still runs.
  EXPECT_EQ(sched.submit_insert(toy_inserts(2)).get(), 2u);
  simt::ThreadPool::instance().resize(0);
}

/// S2 acceptance (the TSan CI job races this at SG_THREADS=4): destroy a
/// scheduled DynGraph while concurrent submitters' work is still queued.
/// Every future must RESOLVE — either with a value (the phase committed
/// before shutdown) or with SubmitRejected{kShutdown} — and nothing may
/// deadlock, leak, or touch the dying graph.
TEST(ScheduledMode, DestroyingGraphWithInFlightSubmissionsResolvesEveryFuture) {
  constexpr unsigned kSubmitters = 4;
  constexpr int kPerThread = 16;
  std::vector<std::future<std::uint64_t>> mutations;
  std::vector<std::future<std::vector<std::uint8_t>>> queries;
  std::vector<std::future<void>> analytics;
  std::atomic<std::uint64_t> analytics_ran{0};
  std::mutex futures_mutex;
  {
    GraphConfig cfg;
    cfg.vertex_capacity = 256;
    DynGraphMap g(cfg);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kSubmitters; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const VertexId src = t * 64 + static_cast<VertexId>(i);
          auto m = g.submit_insert({{src, src + 1, 7}});
          auto q = g.submit_edges_exist({{src, src + 1}});
          auto a = g.submit_analytics([&analytics_ran] { ++analytics_ran; });
          std::lock_guard<std::mutex> lk(futures_mutex);
          mutations.push_back(std::move(m));
          queries.push_back(std::move(q));
          analytics.push_back(std::move(a));
        }
      });
    }
    for (auto& th : threads) th.join();
    // The graph dies here with (typically) submissions still queued.
  }
  // Whatever was admitted before shutdown ran (its future carries the
  // coalesced group total); everything else was rejected with kShutdown,
  // never dropped: every future accounts for itself, none hangs. Any other
  // exception escapes and fails the test.
  std::uint64_t completed = 0, rejected = 0;
  for (auto& f : mutations) {
    try {
      EXPECT_GE(f.get(), 1u);
      ++completed;
    } catch (const SubmitRejected& e) {
      EXPECT_EQ(e.reason(), RejectReason::kShutdown);
      ++rejected;
    }
  }
  for (auto& f : queries) {
    try {
      (void)f.get();
    } catch (const SubmitRejected& e) {
      EXPECT_EQ(e.reason(), RejectReason::kShutdown);
    }
  }
  EXPECT_EQ(completed + rejected, kSubmitters * kPerThread);
  // Analytics obey the same contract: every future resolves, and the number
  // of task bodies that actually ran equals the number of futures that
  // resolved with a value — a rejected task never half-executes.
  std::uint64_t analytics_ok = 0;
  for (auto& f : analytics) {
    try {
      f.get();
      ++analytics_ok;
    } catch (const SubmitRejected& e) {
      EXPECT_EQ(e.reason(), RejectReason::kShutdown);
    }
  }
  EXPECT_EQ(analytics_ran.load(), analytics_ok);
}

/// Bounded-queue acceptance at the graph level: with GraphConfig caps and
/// the default kBlock policy, overload just serializes submitters — no
/// rejection, no loss, queue depth bounded, final graph equals the oracle.
TEST(ScheduledMode, BoundedQueueBlockingMatchesOracle) {
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  cfg.max_pending_submissions = 2;
  cfg.max_pending_edges = 64;
  DynGraphMap g(cfg);

  std::vector<std::vector<WeightedEdge>> batches;
  util::Xoshiro256 rng(321);
  for (int b = 0; b < 12; ++b) {
    std::vector<WeightedEdge> batch(20);
    for (auto& e : batch) {
      e = {static_cast<VertexId>(rng.below(256)),
           static_cast<VertexId>(rng.below(256)),
           static_cast<Weight>(1 + rng.below(100))};
    }
    batches.push_back(std::move(batch));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int b = t; b < 12; b += 4) {
        g.submit_insert(batches[b]).get();  // waits: batches commute anyway
      }
    });
  }
  for (auto& th : threads) th.join();
  g.schedule_drain();

  GraphConfig oracle_cfg;
  oracle_cfg.vertex_capacity = 256;
  oracle_cfg.phase_scheduler = false;
  DynGraphMap oracle(oracle_cfg);
  for (const auto& batch : batches) oracle.insert_edges(batch);
  // Overlapping (src,dst) across batches resolve most-recent-wins; with
  // every submitter waiting on its future, submission order is a valid
  // serialization, but weights may differ across interleavings — compare
  // the unweighted edge sets.
  const auto unweighted = [](const auto& edges) {
    std::multiset<std::pair<VertexId, VertexId>> pairs;
    for (const auto& e : edges) pairs.emplace(std::get<0>(e), std::get<1>(e));
    return pairs;
  };
  EXPECT_EQ(unweighted(graph_edges(g)), unweighted(graph_edges(oracle)));
  const PhaseScheduleStats stats = g.last_schedule_stats();
  EXPECT_EQ(stats.rejected_submissions, 0u);
  EXPECT_LE(stats.max_queue_depth, 2u);
}

TEST(ScheduledMode, DrainAndStatsAreNoOpsWithoutSubmissions) {
  GraphConfig cfg;
  DynGraphMap g(cfg);
  g.schedule_drain();  // no scheduler yet: must not block or create one
  const PhaseScheduleStats stats = g.last_schedule_stats();
  EXPECT_EQ(stats.submitted_mutations + stats.submitted_queries, 0u);
  EXPECT_EQ(stats.mutation_phases + stats.query_phases, 0u);
}

}  // namespace
}  // namespace sg::core
