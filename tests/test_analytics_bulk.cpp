// Bulk-engine analytics tests: gather_neighbors must reproduce the scalar
// iterator exactly, every bulk algorithm (BFS, CC, TC) must equal its
// scalar twin differentially on random and skewed graphs, the incremental
// triangle counter must track a from-scratch recount through arbitrary
// batches (duplicates included), gathers must never fire the auto-rehash
// policy (inform-only feedback), and the analytics phase kind must be safe
// under racing mixed submitters (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/analytics/bfs.hpp"
#include "src/analytics/connected_components.hpp"
#include "src/analytics/incremental_tc.hpp"
#include "src/analytics/triangle_count.hpp"
#include "src/datasets/generators.hpp"
#include "src/util/prng.hpp"

namespace sg::analytics {
namespace {

using core::DynGraphMap;
using core::DynGraphSet;
using core::GraphConfig;
using core::VertexId;
using core::WeightedEdge;

NeighborFn slab_neighbors(const DynGraphSet& g) {
  return [&g](VertexId u, const std::function<void(VertexId)>& visit) {
    g.for_each_neighbor(u, [&](VertexId v, core::Weight) { visit(v); });
  };
}

template <class Graph>
std::multiset<VertexId> scalar_adjacency(const Graph& g, VertexId u) {
  std::multiset<VertexId> out;
  g.for_each_neighbor(u, [&](VertexId v, core::Weight) { out.insert(v); });
  return out;
}

// ---- gather_neighbors ------------------------------------------------------

template <class Graph>
void expect_gather_matches_scalar(const Graph& g,
                                  const std::vector<VertexId>& sources) {
  const core::GatherResult r = g.gather_neighbors(sources);
  ASSERT_EQ(r.offsets.size(), sources.size() + 1);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto slice = r.neighbors_of(i);
    const std::multiset<VertexId> got(slice.begin(), slice.end());
    EXPECT_EQ(got, scalar_adjacency(g, sources[i])) << "source " << sources[i];
  }
}

TEST(GatherNeighbors, MatchesScalarIteratorSetAndMap) {
  const datasets::Coo coo = datasets::make_rmat(256, 256 * 10, 7);
  GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  DynGraphSet set_graph(cfg);
  set_graph.bulk_build(coo.edges);
  DynGraphMap map_graph(cfg);
  map_graph.bulk_build(coo.edges);

  std::vector<VertexId> all(coo.num_vertices);
  for (VertexId u = 0; u < coo.num_vertices; ++u) all[u] = u;
  expect_gather_matches_scalar(set_graph, all);
  expect_gather_matches_scalar(map_graph, all);

  // Duplicate sources each get their own identical slice.
  expect_gather_matches_scalar(set_graph, {3, 3, 7, 3});
}

TEST(GatherNeighbors, UnknownDeletedAndEmptyInputs) {
  GraphConfig cfg;
  cfg.vertex_capacity = 16;
  cfg.undirected = true;
  DynGraphSet g(cfg);
  std::vector<WeightedEdge> edges = {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}};
  g.insert_edges(edges);

  // Out-of-capacity id, never-touched id, and a vertex emptied by deletes
  // all yield empty slices rather than faults.
  const core::Edge cuts[] = {{2, 0}, {2, 1}};
  g.delete_edges({cuts, 2});
  const core::GatherResult r = g.gather_neighbors(
      std::vector<VertexId>{0, 2, 15, 9999});
  EXPECT_EQ(r.neighbors_of(0).size(), 1u);  // 0-1 survives
  EXPECT_EQ(r.neighbors_of(1).size(), 0u);  // 2's edges cut
  EXPECT_EQ(r.neighbors_of(2).size(), 0u);  // never touched
  EXPECT_EQ(r.neighbors_of(3).size(), 0u);  // beyond capacity

  const core::GatherResult empty = g.gather_neighbors(std::vector<VertexId>{});
  EXPECT_TRUE(empty.neighbors.empty());
  ASSERT_EQ(empty.offsets.size(), 1u);
}

// ---- bulk algorithms vs scalar twins --------------------------------------

class BulkDifferential : public ::testing::TestWithParam<int> {
 protected:
  datasets::Coo make_graph() const {
    // Alternate a uniform random graph and a hub-skewed one: the bulk
    // paths must survive both balanced and degree-skewed gathers.
    const int seed = GetParam();
    return seed % 2 == 0 ? datasets::make_rmat(400, 400 * 8, seed)
                         : datasets::make_preferential(400, 4, seed);
  }
};

TEST_P(BulkDifferential, BfsBulkEqualsScalar) {
  const datasets::Coo coo = make_graph();
  GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  DynGraphSet g(cfg);
  g.bulk_build(coo.edges);
  const auto scalar = bfs(coo.num_vertices, slab_neighbors(g), 0);
  const auto bulk = bfs_bulk(coo.num_vertices, bulk_neighbors(g), 0);
  EXPECT_EQ(scalar, bulk);
}

TEST_P(BulkDifferential, ConnectedComponentsBulkEqualsScalar) {
  const datasets::Coo coo = make_graph();
  GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  DynGraphSet g(cfg);
  g.bulk_build(coo.edges);
  const auto scalar = connected_components(coo.num_vertices, slab_neighbors(g));
  const auto bulk = connected_components_bulk(coo.num_vertices,
                                              bulk_neighbors(g));
  EXPECT_EQ(scalar, bulk);
}

TEST_P(BulkDifferential, StaticTcBulkEqualsProbing) {
  const datasets::Coo coo = make_graph();
  GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  DynGraphSet set_graph(cfg);
  set_graph.bulk_build(coo.edges);
  EXPECT_EQ(tc_slabgraph_bulk(set_graph), tc_slabgraph(set_graph));
  DynGraphMap map_graph(cfg);
  map_graph.bulk_build(coo.edges);
  EXPECT_EQ(tc_slabgraph_bulk_map(map_graph), tc_slabgraph_map(map_graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BulkDifferential, ::testing::Values(1, 2, 3, 4));

// ---- incremental triangle counting ----------------------------------------

TEST(IncrementalTc, TracksRecountThroughDirtyBatches) {
  // Batches drawn with replacement from a small vertex set: self-loops,
  // within-batch duplicates, and already-inserted edges all occur, so the
  // exist pre-check and the lex-smallest-new-edge dedup both do real work.
  util::Xoshiro256 rng(99);
  GraphConfig cfg;
  cfg.vertex_capacity = 48;
  cfg.undirected = true;
  DynGraphSet streamed(cfg);
  IncrementalTriangleCounter counter(streamed);
  DynGraphSet recount(cfg);

  for (int batch_no = 0; batch_no < 6; ++batch_no) {
    std::vector<core::Edge> batch;
    for (int i = 0; i < 200; ++i) {
      batch.push_back({static_cast<VertexId>(rng.below(48)),
                       static_cast<VertexId>(rng.below(48))});
    }
    const std::uint64_t total = counter.submit_batch(batch).get();

    std::vector<WeightedEdge> clean;
    for (const core::Edge& e : batch) {
      if (e.src != e.dst) clean.push_back({e.src, e.dst, 1});
    }
    recount.insert_edges(clean);
    EXPECT_EQ(total, tc_slabgraph(recount)) << "batch " << batch_no;
    EXPECT_EQ(counter.triangles(), total);
  }
  streamed.schedule_drain();
}

TEST(IncrementalTc, AssumeNewOnUniqueStreamAndSeededStart) {
  const datasets::Coo coo = datasets::make_rmat(256, 256 * 10, 21);
  std::vector<WeightedEdge> unique = coo.unique_undirected_edges();
  GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  cfg.undirected = true;
  DynGraphSet g(cfg);
  // Preload half, seed the counter with the preloaded count, then stream
  // the rest in three assume_new batches.
  const std::size_t preload = unique.size() / 2;
  g.insert_edges({unique.data(), preload});
  IncrementalTriangleCounter counter(g, tc_slabgraph_bulk(g));

  std::uint64_t total = counter.triangles();
  const std::size_t per = (unique.size() - preload + 2) / 3;
  for (std::size_t first = preload; first < unique.size(); first += per) {
    const std::size_t last = std::min(first + per, unique.size());
    std::vector<core::Edge> batch;
    for (std::size_t i = first; i < last; ++i) {
      batch.push_back({unique[i].src, unique[i].dst});
    }
    total = counter.submit_batch(batch, /*assume_new=*/true).get();
  }
  g.schedule_drain();
  EXPECT_EQ(total, tc_slabgraph(g));
}

TEST(IncrementalTc, RequiresUndirectedGraph) {
  GraphConfig cfg;
  cfg.vertex_capacity = 8;
  DynGraphSet directed(cfg);
  EXPECT_THROW(IncrementalTriangleCounter c(directed), std::invalid_argument);
}

TEST(IncrementalTc, EmptyAndSelfLoopOnlyBatchesResolve) {
  GraphConfig cfg;
  cfg.vertex_capacity = 8;
  cfg.undirected = true;
  DynGraphSet g(cfg);
  IncrementalTriangleCounter counter(g);
  EXPECT_EQ(counter.submit_batch(std::vector<core::Edge>{}).get(), 0u);
  const std::vector<core::Edge> loops = {{3, 3}, {5, 5}};
  EXPECT_EQ(counter.submit_batch(loops).get(), 0u);
  g.schedule_drain();
}

// ---- gathers are inform-only (never fire auto-rehash) ----------------------

TEST(GatherFeedback, AnalyticsAloneNeverTriggersRebuild) {
  // Hub-heavy graph with chains far past the auto-rehash threshold: every
  // gather observes long chains, feedback grows, and yet the rehash
  // counter must not move — only mutation batches consult the policy.
  GraphConfig cfg;
  cfg.vertex_capacity = 32;
  cfg.undirected = true;
  DynGraphSet g(cfg);
  std::vector<WeightedEdge> edges;
  for (VertexId u = 0; u < 32; ++u) {
    for (VertexId v = u + 1; v < 32; ++v) edges.push_back({u, v, 1});
  }
  g.insert_edges(edges);

  const std::uint64_t rehashes_before = g.auto_rehash_triggers();
  const std::uint64_t runs_before = g.chain_feedback().runs_observed;
  std::vector<VertexId> all(32);
  for (VertexId u = 0; u < 32; ++u) all[u] = u;
  for (int i = 0; i < 20; ++i) (void)g.gather_neighbors(all);

  EXPECT_GT(g.chain_feedback().runs_observed, runs_before);
  EXPECT_EQ(g.auto_rehash_triggers(), rehashes_before);
}

TEST(GatherFeedback, DisabledByConfig) {
  GraphConfig cfg;
  cfg.vertex_capacity = 16;
  cfg.undirected = true;
  cfg.gather_feedback = false;
  DynGraphSet g(cfg);
  std::vector<WeightedEdge> edges;
  for (VertexId u = 0; u < 16; ++u) {
    for (VertexId v = u + 1; v < 16; ++v) edges.push_back({u, v, 1});
  }
  g.insert_edges(edges);
  const std::uint64_t runs_before = g.chain_feedback().runs_observed;
  std::vector<VertexId> all(16);
  for (VertexId u = 0; u < 16; ++u) all[u] = u;
  for (int i = 0; i < 5; ++i) (void)g.gather_neighbors(all);
  EXPECT_EQ(g.chain_feedback().runs_observed, runs_before);
}

// ---- analytics phase under racing mixed submitters (TSan target) -----------

TEST(AnalyticsPhase, RacedAgainstMixedSubmitters) {
  GraphConfig cfg;
  cfg.vertex_capacity = 256;
  cfg.undirected = true;
  DynGraphSet g(cfg);
  const datasets::Coo base = datasets::make_rmat(256, 256 * 6, 3);
  g.insert_edges(base.unique_undirected_edges());

  constexpr int kRounds = 12;
  std::atomic<std::uint64_t> gathered_total{0};
  // 5 racing submitters: 2 insert, 1 erase, 1 exist, 1 analytics — the
  // scheduler must fence analytics from every mutation while letting it
  // run concurrently with nothing else than other analytics.
  std::vector<std::thread> submitters;
  for (int s = 0; s < 2; ++s) {
    submitters.emplace_back([&g, s] {
      util::Xoshiro256 rng(1000 + s);
      for (int r = 0; r < kRounds; ++r) {
        std::vector<WeightedEdge> batch;
        for (int i = 0; i < 64; ++i) {
          const VertexId u = static_cast<VertexId>(rng.below(256));
          const VertexId v = static_cast<VertexId>(rng.below(256));
          if (u != v) batch.push_back({u, v, 1});
        }
        g.submit_insert(std::move(batch)).get();
      }
    });
  }
  submitters.emplace_back([&g] {
    util::Xoshiro256 rng(77);
    for (int r = 0; r < kRounds; ++r) {
      std::vector<core::Edge> batch;
      for (int i = 0; i < 32; ++i) {
        const VertexId u = static_cast<VertexId>(rng.below(256));
        const VertexId v = static_cast<VertexId>(rng.below(256));
        if (u != v) batch.push_back({u, v});
      }
      g.submit_erase(std::move(batch)).get();
    }
  });
  submitters.emplace_back([&g] {
    util::Xoshiro256 rng(88);
    for (int r = 0; r < kRounds; ++r) {
      std::vector<core::Edge> probes;
      for (int i = 0; i < 64; ++i) {
        probes.push_back({static_cast<VertexId>(rng.below(256)),
                          static_cast<VertexId>(rng.below(256))});
      }
      g.submit_edges_exist(std::move(probes)).get();
    }
  });
  submitters.emplace_back([&g, &gathered_total] {
    std::vector<VertexId> all(256);
    for (VertexId u = 0; u < 256; ++u) all[u] = u;
    for (int r = 0; r < kRounds; ++r) {
      g.submit_analytics([&g, &gathered_total, &all] {
        // Full-graph gather + bulk TC inside the fenced phase: both walk
        // every chain while the mutators above hammer the same tables.
        const core::GatherResult adj = g.gather_neighbors(all);
        gathered_total.fetch_add(adj.neighbors.size(),
                                 std::memory_order_relaxed);
        (void)tc_slabgraph_bulk(g);
      }).get();
    }
  });
  for (auto& t : submitters) t.join();
  g.schedule_drain();
  EXPECT_GT(gathered_total.load(), 0u);
  // The fenced phases must leave a coherent structure behind.
  EXPECT_EQ(tc_slabgraph_bulk(g), tc_slabgraph(g));
}

}  // namespace
}  // namespace sg::analytics
