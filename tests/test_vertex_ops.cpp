// Vertex-operation tests (§IV-D): vertex insertion with degree hints and
// dictionary growth, Algorithm 2 vertex deletion (undirected neighbour
// cleanup, directed follow-up sweep), memory reclamation, and the
// no-false-positive post-deletion contract.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/dyn_graph.hpp"

namespace sg::core {
namespace {

GraphConfig config(bool undirected, std::uint32_t capacity = 128) {
  GraphConfig cfg;
  cfg.vertex_capacity = capacity;
  cfg.undirected = undirected;
  return cfg;
}

std::vector<WeightedEdge> star(VertexId center, std::uint32_t leaves) {
  std::vector<WeightedEdge> edges;
  for (std::uint32_t v = 1; v <= leaves; ++v) {
    edges.push_back({center, center + v, v});
  }
  return edges;
}

TEST(VertexInsert, CreatesTables) {
  DynGraphMap g(config(false));
  const std::vector<VertexId> ids = {3, 5, 7};
  g.insert_vertices(ids);
  for (VertexId v : ids) EXPECT_TRUE(g.vertex_live(v));
  EXPECT_FALSE(g.vertex_live(4));
}

TEST(VertexInsert, DegreeHintsSizeBuckets) {
  DynGraphMap g(config(false));
  const std::vector<VertexId> ids = {1, 2};
  const std::vector<std::uint32_t> hints = {300, 0};
  g.insert_vertices(ids, hints);
  // Vertex 1: ceil(300 / (0.7*15)) = 29 buckets; vertex 2: 1 bucket.
  const GraphMemoryStats stats = g.memory_stats();
  EXPECT_EQ(stats.base_slabs, 29u + 1u);
}

TEST(VertexInsert, HintSizeMismatchThrows) {
  DynGraphMap g(config(false));
  const std::vector<VertexId> ids = {1, 2};
  const std::vector<std::uint32_t> hints = {300};
  EXPECT_THROW(g.insert_vertices(ids, hints), std::invalid_argument);
}

TEST(VertexInsert, GrowsDictionaryPastCapacity) {
  DynGraphMap g(config(false, 8));
  const std::vector<VertexId> ids = {1000};
  g.insert_vertices(ids);
  EXPECT_GE(g.vertex_capacity(), 1001u);
  EXPECT_TRUE(g.vertex_live(1000));
}

TEST(VertexInsert, ThenInsertEdgesViaAlgorithm1) {
  // §IV-D1: vertex insertion = dictionary entry + Algorithm 1 for edges.
  DynGraphMap g(config(false));
  const std::vector<VertexId> ids = {10};
  const std::vector<std::uint32_t> hints = {50};
  g.insert_vertices(ids, hints);
  const auto edges = star(10, 50);
  EXPECT_EQ(g.insert_edges(edges), 50u);
  EXPECT_EQ(g.degree(10), 50u);
}

TEST(VertexDeleteUndirected, RemovesVertexFromNeighborLists) {
  DynGraphMap g(config(true));
  // Triangle 1-2-3 plus pendant 3-4.
  std::vector<WeightedEdge> edges = {{1, 2, 0}, {2, 3, 0}, {1, 3, 0}, {3, 4, 0}};
  g.insert_edges(edges);
  const std::vector<VertexId> doomed = {3};
  g.delete_vertices(doomed);
  // 3 is gone everywhere (Algorithm 2 cleanup).
  EXPECT_FALSE(g.vertex_live(3));
  EXPECT_FALSE(g.edge_exists(1, 3));
  EXPECT_FALSE(g.edge_exists(2, 3));
  EXPECT_FALSE(g.edge_exists(4, 3));
  EXPECT_FALSE(g.edge_exists(3, 1));  // "querying Au returns no edges"
  EXPECT_EQ(g.degree(3), 0u);
  // Untouched edges survive with exact counts.
  EXPECT_TRUE(g.edge_exists(1, 2));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(VertexDeleteUndirected, FreesDynamicSlabsKeepsBase) {
  DynGraphMap g(config(true, 4096));
  // A hub with 500 neighbours chains far past its base slab.
  std::vector<WeightedEdge> edges;
  for (std::uint32_t v = 1; v <= 500; ++v) edges.push_back({0, v, 0});
  g.insert_edges(edges);
  const auto arena_before = g.arena_stats();
  EXPECT_GT(arena_before.dynamic_slabs, 0u);
  const std::vector<VertexId> doomed = {0};
  g.delete_vertices(doomed);
  const auto arena_after = g.arena_stats();
  // Hub's overflow chain reclaimed ("all dynamically allocated memory ...
  // is freed"); bulk/base slabs are not ("statically allocated memory is
  // not reclaimed").
  EXPECT_EQ(arena_after.dynamic_slabs, 0u);
  EXPECT_EQ(arena_after.bulk_slabs, arena_before.bulk_slabs);
}

TEST(VertexDeleteUndirected, BatchDeletionWithSharedNeighbors) {
  DynGraphMap g(config(true));
  // Clique of 8: delete half of it in one batch.
  std::vector<WeightedEdge> edges;
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) edges.push_back({u, v, 0});
  }
  g.insert_edges(edges);
  const std::vector<VertexId> doomed = {0, 1, 2, 3};
  g.delete_vertices(doomed);
  for (VertexId u = 0; u < 4; ++u) {
    EXPECT_FALSE(g.vertex_live(u));
    EXPECT_EQ(g.degree(u), 0u);
  }
  for (VertexId u = 4; u < 8; ++u) {
    EXPECT_EQ(g.degree(u), 3u);  // only the other survivors remain
    for (VertexId v = 0; v < 4; ++v) ASSERT_FALSE(g.edge_exists(u, v));
    for (VertexId v = 4; v < 8; ++v) {
      ASSERT_EQ(g.edge_exists(u, v), u != v);
    }
  }
}

TEST(VertexDeleteDirected, FollowUpSweepCleansIncomingEdges) {
  DynGraphMap g(config(false));
  std::vector<WeightedEdge> edges = {
      {1, 3, 0}, {2, 3, 0}, {3, 1, 0}, {1, 2, 0}};
  g.insert_edges(edges);
  const std::vector<VertexId> doomed = {3};
  g.delete_vertices(doomed);
  // Incoming edges to 3 were found by the sweep even without reverse links.
  EXPECT_FALSE(g.edge_exists(1, 3));
  EXPECT_FALSE(g.edge_exists(2, 3));
  EXPECT_FALSE(g.edge_exists(3, 1));
  EXPECT_TRUE(g.edge_exists(1, 2));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(VertexDelete, NoFalsePositivesAfterDeletion) {
  // "After a deletion, no edge query involving u may have a false positive."
  DynGraphSet g(config(true));
  std::vector<WeightedEdge> edges;
  for (VertexId v = 1; v <= 40; ++v) edges.push_back({0, v, 0});
  g.insert_edges(edges);
  const std::vector<VertexId> doomed = {0};
  g.delete_vertices(doomed);
  for (VertexId v = 0; v <= 41; ++v) {
    ASSERT_FALSE(g.edge_exists(0, v));
    ASSERT_FALSE(g.edge_exists(v, 0));
  }
}

TEST(VertexDelete, ReinsertionRevivesVertex) {
  DynGraphMap g(config(true));
  std::vector<WeightedEdge> edges = {{1, 2, 5}};
  g.insert_edges(edges);
  const std::vector<VertexId> doomed = {1};
  g.delete_vertices(doomed);
  EXPECT_FALSE(g.vertex_live(1));
  // Inserting edges for vertex 1 again brings it back, reusing its base
  // slabs (the paper's structure never reclaims them).
  std::vector<WeightedEdge> revived = {{1, 5, 9}};
  g.insert_edges(revived);
  EXPECT_TRUE(g.vertex_live(1));
  EXPECT_TRUE(g.edge_exists(1, 5));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_FALSE(g.edge_exists(1, 2));  // the old adjacency did not resurrect
}

TEST(VertexDelete, UnknownOrRepeatIdsAreTolerated) {
  DynGraphMap g(config(true));
  std::vector<WeightedEdge> edges = {{1, 2, 0}};
  g.insert_edges(edges);
  const std::vector<VertexId> doomed = {1, 1, 99};  // repeat + never-seen id
  EXPECT_NO_THROW(g.delete_vertices(doomed));
  EXPECT_FALSE(g.edge_exists(2, 1));
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(VertexDelete, LargeBatchLoadImbalance) {
  // Algorithm 2's work queue exists to balance wildly differing degrees:
  // one hub plus many low-degree vertices deleted together.
  DynGraphSet g(config(true, 4096));
  std::vector<WeightedEdge> edges;
  for (VertexId v = 1; v <= 900; ++v) edges.push_back({0, v, 0});
  for (VertexId v = 1000; v < 1100; ++v) edges.push_back({v, v + 1000, 0});
  g.insert_edges(edges);
  std::vector<VertexId> doomed = {0};
  for (VertexId v = 1000; v < 1100; ++v) doomed.push_back(v);
  g.delete_vertices(doomed);
  EXPECT_EQ(g.degree(0), 0u);
  for (VertexId v = 1; v <= 900; ++v) ASSERT_EQ(g.degree(v), 0u);
  for (VertexId v = 1000; v < 1100; ++v) {
    ASSERT_EQ(g.degree(v + 1000), 0u);
    ASSERT_FALSE(g.edge_exists(v + 1000, v));
  }
}

TEST(VertexDelete, EmptyBatchIsNoop) {
  DynGraphMap g(config(true));
  std::vector<WeightedEdge> edges = {{1, 2, 0}};
  g.insert_edges(edges);
  g.delete_vertices({});
  EXPECT_TRUE(g.edge_exists(1, 2));
}

TEST(VertexDelete, SetVariantUndirectedCleanup) {
  DynGraphSet g(config(true));
  std::vector<WeightedEdge> edges = {{1, 2, 0}, {2, 3, 0}, {1, 3, 0}};
  g.insert_edges(edges);
  const std::vector<VertexId> doomed = {2};
  g.delete_vertices(doomed);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_FALSE(g.edge_exists(3, 2));
  EXPECT_TRUE(g.edge_exists(1, 3));
  EXPECT_EQ(g.num_edges(), 2u);
}

}  // namespace
}  // namespace sg::core
