// Model-based property tests: random operation sequences applied both to
// the DynGraph and to a std::map reference model must stay observationally
// equivalent (edge existence, weights, exact degrees, total edge count).
// Parameterized over seeds, variants, directedness, and load factors.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/util/prng.hpp"

namespace sg::core {
namespace {

struct PropertyParam {
  std::uint64_t seed;
  bool undirected;
  double load_factor;
};

/// Reference model: adjacency as a map of maps, mirroring the paper's
/// semantics (unique edges, most recent weight, no self-loops).
class ReferenceGraph {
 public:
  explicit ReferenceGraph(bool undirected) : undirected_(undirected) {}

  std::uint64_t insert(const std::vector<WeightedEdge>& batch) {
    std::uint64_t added = 0;
    for (const auto& e : batch) {
      if (e.src == e.dst) continue;
      added += insert_one(e.src, e.dst, e.weight);
      if (undirected_) added += insert_one(e.dst, e.src, e.weight);
    }
    return added;
  }

  std::uint64_t erase(const std::vector<Edge>& batch) {
    std::uint64_t removed = 0;
    for (const auto& e : batch) {
      removed += adj_[e.src].erase(e.dst);
      if (undirected_) removed += adj_[e.dst].erase(e.src);
    }
    return removed;
  }

  void delete_vertices(const std::vector<VertexId>& ids) {
    for (VertexId v : ids) dead_.insert(v);
    for (VertexId v : ids) adj_.erase(v);
    for (auto& [u, nbrs] : adj_) {
      for (VertexId v : ids) nbrs.erase(v);
    }
  }

  void revive(VertexId v) { dead_.erase(v); }

  bool edge_exists(VertexId u, VertexId v) const {
    if (dead_.count(u) || dead_.count(v)) return false;
    auto it = adj_.find(u);
    return it != adj_.end() && it->second.count(v) > 0;
  }
  std::uint32_t degree(VertexId u) const {
    auto it = adj_.find(u);
    return it == adj_.end() ? 0 : static_cast<std::uint32_t>(it->second.size());
  }
  Weight weight(VertexId u, VertexId v) const { return adj_.at(u).at(v); }
  std::uint64_t num_edges() const {
    std::uint64_t total = 0;
    for (const auto& [u, nbrs] : adj_) total += nbrs.size();
    return total;
  }
  const std::map<VertexId, std::map<VertexId, Weight>>& adjacency() const {
    return adj_;
  }

 private:
  std::uint64_t insert_one(VertexId u, VertexId v, Weight w) {
    dead_.erase(u);
    dead_.erase(v);
    const bool fresh = adj_[u].emplace(v, w).second;
    if (!fresh) adj_[u][v] = w;
    return fresh ? 1 : 0;
  }

  bool undirected_;
  std::map<VertexId, std::map<VertexId, Weight>> adj_;
  std::set<VertexId> dead_;
};

class DynGraphProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(DynGraphProperty, MixedOperationSequenceMatchesModel) {
  const PropertyParam param = GetParam();
  util::Xoshiro256 rng(param.seed);
  constexpr std::uint32_t kVertices = 80;

  GraphConfig cfg;
  cfg.vertex_capacity = kVertices;
  cfg.undirected = param.undirected;
  cfg.load_factor = param.load_factor;
  DynGraphMap graph(cfg);
  ReferenceGraph model(param.undirected);

  for (int round = 0; round < 40; ++round) {
    const auto op = rng.below(10);
    if (op < 5) {
      // Insert a random batch (with duplicates and self-loops mixed in).
      std::vector<WeightedEdge> batch;
      const std::size_t size = 1 + rng.below(120);
      for (std::size_t i = 0; i < size; ++i) {
        batch.push_back({static_cast<VertexId>(rng.below(kVertices)),
                         static_cast<VertexId>(rng.below(kVertices)),
                         static_cast<Weight>(rng.below(1000))});
      }
      // Batches may contain duplicate (src,dst) with different weights; the
      // structure keeps "the most recent", which under warp order is the
      // last occurrence — drop earlier duplicates from both sides so the
      // weight comparison is deterministic.
      std::map<std::pair<VertexId, VertexId>, std::size_t> last;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        last[{batch[i].src, batch[i].dst}] = i;
      }
      std::vector<WeightedEdge> dedup;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (last[{batch[i].src, batch[i].dst}] == i) dedup.push_back(batch[i]);
      }
      const std::uint64_t expected = model.insert(dedup);
      EXPECT_EQ(graph.insert_edges(dedup), expected);
    } else if (op < 8) {
      std::vector<Edge> batch;
      const std::size_t size = 1 + rng.below(60);
      std::set<std::pair<VertexId, VertexId>> unique_targets;
      for (std::size_t i = 0; i < size; ++i) {
        unique_targets.insert(
            {static_cast<VertexId>(rng.below(kVertices)),
             static_cast<VertexId>(rng.below(kVertices))});
      }
      for (const auto& [u, v] : unique_targets) batch.push_back({u, v});
      const std::uint64_t expected = model.erase(batch);
      EXPECT_EQ(graph.delete_edges(batch), expected);
    } else if (op == 8) {
      std::vector<VertexId> doomed;
      const std::size_t size = 1 + rng.below(4);
      for (std::size_t i = 0; i < size; ++i) {
        doomed.push_back(static_cast<VertexId>(rng.below(kVertices)));
      }
      graph.delete_vertices(doomed);
      model.delete_vertices(doomed);
    } else {
      // Query phase: spot-check equivalence.
      for (int q = 0; q < 50; ++q) {
        const auto u = static_cast<VertexId>(rng.below(kVertices));
        const auto v = static_cast<VertexId>(rng.below(kVertices));
        ASSERT_EQ(graph.edge_exists(u, v), model.edge_exists(u, v))
            << "round " << round << " edge " << u << "->" << v;
      }
    }
  }

  // Final full equivalence: existence, weights, exact degrees, totals.
  EXPECT_EQ(graph.num_edges(), model.num_edges());
  for (const auto& [u, nbrs] : model.adjacency()) {
    ASSERT_EQ(graph.degree(u), nbrs.size()) << "degree of " << u;
    for (const auto& [v, w] : nbrs) {
      ASSERT_TRUE(graph.edge_exists(u, v)) << u << "->" << v;
      ASSERT_EQ(graph.edge_weight(u, v).value, w) << u << "->" << v;
    }
  }
  // And no phantom edges: iterate the structure and check the model back.
  for (VertexId u = 0; u < kVertices; ++u) {
    graph.for_each_neighbor(u, [&](VertexId v, Weight) {
      ASSERT_TRUE(model.edge_exists(u, v)) << "phantom " << u << "->" << v;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndConfigs, DynGraphProperty,
    ::testing::Values(PropertyParam{1, false, 0.7}, PropertyParam{2, false, 0.7},
                      PropertyParam{3, false, 0.7}, PropertyParam{4, true, 0.7},
                      PropertyParam{5, true, 0.7}, PropertyParam{6, true, 0.7},
                      PropertyParam{7, false, 0.35}, PropertyParam{8, true, 0.35},
                      PropertyParam{9, false, 2.0}, PropertyParam{10, true, 2.0},
                      PropertyParam{11, false, 5.0}, PropertyParam{12, true, 0.1}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.undirected ? "_undir" : "_dir") + "_lf" +
             std::to_string(static_cast<int>(info.param.load_factor * 100));
    });

}  // namespace
}  // namespace sg::core
