// Tests for the GPMA baseline: PMA invariants (global sorted order,
// left-packed segments, density-driven rebalancing/growth), graph
// semantics, and model-based equivalence under random churn.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/baselines/gpma/gpma_graph.hpp"
#include "src/util/prng.hpp"

namespace sg::baselines::gpma {
namespace {

using core::Edge;
using core::VertexId;
using core::WeightedEdge;

TEST(Gpma, InsertThenQuery) {
  GpmaGraph g(16);
  std::vector<WeightedEdge> batch = {{1, 2, 5}, {1, 3, 6}, {2, 1, 7}};
  EXPECT_EQ(g.insert_edges(batch), 3u);
  EXPECT_TRUE(g.edge_exists(1, 2));
  EXPECT_TRUE(g.edge_exists(2, 1));
  EXPECT_FALSE(g.edge_exists(3, 1));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.check_invariants());
}

TEST(Gpma, SelfLoopsAndOutOfRangeDropped) {
  GpmaGraph g(4);
  std::vector<WeightedEdge> batch = {{1, 1, 5}, {9, 1, 5}, {1, 9, 5}, {0, 1, 1}};
  EXPECT_EQ(g.insert_edges(batch), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Gpma, DuplicatesKeepMostRecentWeight) {
  GpmaGraph g(8);
  std::vector<WeightedEdge> batch = {{1, 2, 5}, {1, 2, 6}};
  EXPECT_EQ(g.insert_edges(batch), 1u);
  std::vector<WeightedEdge> again = {{1, 2, 9}};
  EXPECT_EQ(g.insert_edges(again), 0u);
  std::uint32_t w = 0;
  g.for_each_neighbor(1, [&](VertexId, core::Weight weight) { w = weight; });
  EXPECT_EQ(w, 9u);
}

TEST(Gpma, DeleteSemantics) {
  GpmaGraph g(8);
  std::vector<WeightedEdge> batch = {{1, 2, 0}, {1, 3, 0}};
  g.insert_edges(batch);
  std::vector<Edge> doomed = {{1, 2}, {1, 7}};
  EXPECT_EQ(g.delete_edges(doomed), 1u);
  EXPECT_FALSE(g.edge_exists(1, 2));
  EXPECT_TRUE(g.edge_exists(1, 3));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.check_invariants());
}

TEST(Gpma, GrowthUnderLoad) {
  GpmaGraph g(1024);
  const std::size_t initial_capacity = g.capacity();
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v = 1; v <= 500; ++v) batch.push_back({0, v % 1024, v});
  g.insert_edges(batch);
  EXPECT_GT(g.capacity(), initial_capacity);  // PMA doubled at least once
  EXPECT_TRUE(g.check_invariants());
  EXPECT_LE(g.density(), 1.0);
  for (std::uint32_t v = 1; v < 500; ++v) {
    ASSERT_TRUE(g.edge_exists(0, v % 1024)) << v;
  }
}

TEST(Gpma, NeighborsAreSortedRanges) {
  GpmaGraph g(64);
  std::vector<WeightedEdge> batch;
  for (std::uint32_t v : {9u, 3u, 61u, 17u, 40u}) batch.push_back({5, v, v});
  g.insert_edges(batch);
  const auto nbrs = g.neighbors(5);
  EXPECT_EQ(nbrs, (std::vector<VertexId>{3, 9, 17, 40, 61}));
  EXPECT_EQ(g.degree(5), 5u);
  EXPECT_TRUE(g.neighbors(6).empty());
}

TEST(Gpma, InterleavedSourcesStayPartitioned) {
  GpmaGraph g(32);
  std::vector<WeightedEdge> batch;
  for (VertexId u = 0; u < 16; ++u) {
    for (VertexId v = 16; v < 24; ++v) batch.push_back({u, v, u + v});
  }
  g.insert_edges(batch);
  for (VertexId u = 0; u < 16; ++u) {
    ASSERT_EQ(g.degree(u), 8u) << u;
  }
  EXPECT_TRUE(g.check_invariants());
}

TEST(Gpma, HeavyChurnKeepsInvariants) {
  GpmaGraph g(128);
  util::Xoshiro256 rng(11);
  std::map<std::pair<VertexId, VertexId>, core::Weight> model;
  for (int round = 0; round < 30; ++round) {
    std::vector<WeightedEdge> ins;
    for (int i = 0; i < 60; ++i) {
      const auto u = static_cast<VertexId>(rng.below(128));
      const auto v = static_cast<VertexId>(rng.below(128));
      const auto w = static_cast<core::Weight>(rng.below(100));
      ins.push_back({u, v, w});
    }
    // Last-duplicate-wins on both sides.
    std::map<std::pair<VertexId, VertexId>, core::Weight> last;
    for (const auto& e : ins) last[{e.src, e.dst}] = e.weight;
    std::vector<WeightedEdge> dedup;
    for (const auto& [k, w] : last) {
      if (k.first != k.second) dedup.push_back({k.first, k.second, w});
    }
    const std::uint64_t expected_new =
        static_cast<std::uint64_t>(std::count_if(
            dedup.begin(), dedup.end(), [&](const WeightedEdge& e) {
              return model.find({e.src, e.dst}) == model.end();
            }));
    EXPECT_EQ(g.insert_edges(dedup), expected_new);
    for (const auto& e : dedup) model[{e.src, e.dst}] = e.weight;

    std::vector<Edge> del;
    std::set<std::pair<VertexId, VertexId>> uniq;
    for (int i = 0; i < 25; ++i) {
      uniq.insert({static_cast<VertexId>(rng.below(128)),
                   static_cast<VertexId>(rng.below(128))});
    }
    for (const auto& [u, v] : uniq) del.push_back({u, v});
    std::uint64_t expected_removed = 0;
    for (const auto& e : del) expected_removed += model.erase({e.src, e.dst});
    EXPECT_EQ(g.delete_edges(del), expected_removed);
    ASSERT_TRUE(g.check_invariants()) << "round " << round;
  }
  EXPECT_EQ(g.num_edges(), model.size());
  for (const auto& [k, w] : model) {
    ASSERT_TRUE(g.edge_exists(k.first, k.second));
  }
  for (VertexId u = 0; u < 128; ++u) {
    g.for_each_neighbor(u, [&](VertexId v, core::Weight w) {
      auto it = model.find({u, v});
      ASSERT_NE(it, model.end()) << "phantom " << u << "->" << v;
      ASSERT_EQ(it->second, w);
    });
  }
}

class GpmaScale : public ::testing::TestWithParam<int> {};

TEST_P(GpmaScale, BulkBuildRoundTrip) {
  const int edges_per_vertex = GetParam();
  GpmaGraph g(256);
  util::Xoshiro256 rng(edges_per_vertex);
  std::set<std::pair<VertexId, VertexId>> model;
  std::vector<WeightedEdge> all;
  for (VertexId u = 0; u < 256; ++u) {
    for (int k = 0; k < edges_per_vertex; ++k) {
      const auto v = static_cast<VertexId>(rng.below(256));
      if (v == u) continue;
      all.push_back({u, v, 1});
      model.insert({u, v});
    }
  }
  g.bulk_build(all);
  EXPECT_EQ(g.num_edges(), model.size());
  EXPECT_TRUE(g.check_invariants());
  for (const auto& [u, v] : model) ASSERT_TRUE(g.edge_exists(u, v));
}

INSTANTIATE_TEST_SUITE_P(Degrees, GpmaScale, ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace sg::baselines::gpma
