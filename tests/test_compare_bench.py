#!/usr/bin/env python3
"""Tests for bench/compare_bench.py, the perf-trajectory gate.

Runs under pytest (the CI path) or standalone: `python3
tests/test_compare_bench.py` executes every test_* function directly, so
containers without pytest still cover the gate through ctest.
"""

import importlib.util
import json
import os
import sys
import tempfile

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "compare_bench", os.path.join(_HERE, "..", "bench", "compare_bench.py"))
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _point(pr, bench, metrics, tables=None):
    return {
        "pr": pr,
        "benches": {
            bench: {
                "metrics": [
                    {"name": name, "value": value, "labels": labels}
                    for name, value, labels in metrics
                ],
                "tables": tables or [],
            }
        },
    }


def _run(points, argv_extra=()):
    """Writes the points to temp files and runs compare_bench.main."""
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for i, point in enumerate(points):
            path = os.path.join(tmp, f"BENCH_pr{point['pr']}_{i}.json")
            with open(path, "w") as f:
                json.dump(point, f)
            paths.append(path)
        return compare_bench.main(list(argv_extra) + paths)


def test_flat_trajectory_passes():
    points = [
        _point(1, "micro_pipeline",
               [("pipeline_overlap", 0.5, {"threads": "2"})]),
        _point(2, "micro_pipeline",
               [("pipeline_overlap", 0.52, {"threads": "2"})]),
    ]
    assert _run(points) == 0


def test_regression_beyond_threshold_fails():
    points = [
        _point(1, "micro_query_pipeline",
               [("query_rate", 0.50, {"threads": "2"})]),
        _point(2, "micro_query_pipeline",
               [("query_rate", 0.40, {"threads": "2"})]),  # -20%
    ]
    assert _run(points) == 1


def test_overlap_series_are_recorded_but_not_gated():
    # A 50% overlap collapse must NOT gate by default (1-vCPU noise; see
    # UNGATED_NOISY_METRICS) — but an explicit --metric flag re-arms it.
    points = [
        _point(1, "micro_pipeline",
               [("pipeline_overlap", 0.40, {"threads": "2"})]),
        _point(2, "micro_pipeline",
               [("pipeline_overlap", 0.20, {"threads": "2"})]),  # -50%
    ]
    assert _run(points) == 0
    assert _run(points, ["--metric=pipeline_overlap"]) == 1


def test_drop_within_threshold_passes():
    points = [
        _point(1, "micro_query_pipeline",
               [("query_rate", 100.0, {"threads": "2"})]),
        _point(2, "micro_query_pipeline",
               [("query_rate", 95.0, {"threads": "2"})]),  # -5% < 10%
    ]
    assert _run(points) == 0


def test_new_metric_series_is_skipped_not_failed():
    # A metric absent from the older point must not break the gate: newer
    # series (query_overlap, auto_rehash_triggers) appear mid-trajectory.
    points = [
        _point(3, "micro_pipeline",
               [("pipeline_overlap", 0.5, {"threads": "2"})]),
        _point(4, "micro_query_pipeline",
               [("query_overlap", 0.3, {"threads": "2"}),
                ("auto_rehash_triggers", 2.0, {})]),
    ]
    assert _run(points) == 0


def test_missing_series_baseline_never_gates():
    # A TRACKED series joining mid-trajectory (micro_scheduler's
    # scheduled_mixed_rate first appears at PR 5) has no baseline in the
    # older point: the gate must report it as skipped, not fail — and must
    # start gating it from the first pair that has both sides.
    old = _point(4, "micro_query_pipeline",
                 [("query_rate", 100.0, {"threads": "2"})])
    new = _point(5, "micro_scheduler",
                 [("scheduled_mixed_rate", 12.0, {"threads": "2"})])
    assert _run([old, new]) == 0
    # Once both points carry the series, a drop beyond threshold gates.
    newer = _point(6, "micro_scheduler",
                   [("scheduled_mixed_rate", 6.0, {"threads": "2"})])  # -50%
    assert _run([old, new, newer]) == 1


def test_persist_series_join_mid_trajectory_then_gate():
    # micro_persist first appears at PR 8: its series have no baseline in
    # older points (skip, not fail), then gate from the first pair carrying
    # both sides. journal_append_rate is keyed by its sync label, so the
    # two sync modes are independent series — a drop in the fsync mode
    # gates even when the buffered mode improved.
    old = _point(7, "micro_analytics",
                 [("bfs_rate", 50.0, {"dataset": "rmat"})])
    new = _point(8, "micro_persist",
                 [("snapshot_rate", 30.0, {"dataset": "rmat"}),
                  ("journal_append_rate", 20.0, {"sync": "none"}),
                  ("journal_append_rate", 2.0, {"sync": "each-batch"}),
                  ("recovery_replay_rate", 25.0, {"dataset": "rmat"})])
    assert _run([old, new]) == 0
    newer = _point(9, "micro_persist",
                   [("snapshot_rate", 31.0, {"dataset": "rmat"}),
                    ("journal_append_rate", 22.0, {"sync": "none"}),
                    ("journal_append_rate", 1.0, {"sync": "each-batch"}),  # -50%
                    ("recovery_replay_rate", 26.0, {"dataset": "rmat"})])
    assert _run([old, new, newer]) == 1
    for name in ("snapshot_rate", "restore_rate", "journal_append_rate",
                 "recovery_replay_rate"):
        assert name in compare_bench.DEFAULT_METRICS, name


def test_stream_series_gate_per_mode_and_flatness():
    # micro_stream first appears at PR 9. stream_epoch_rate is keyed by its
    # batch-preparation mode label — a presort regression gates even when
    # the unsorted series held. steady_chunk_flatness is min/max (1.0 =
    # flat), so a memory trend shows up as a DROP and gates like a rate.
    old = _point(8, "micro_persist",
                 [("snapshot_rate", 30.0, {"dataset": "rmat"})])
    new = _point(9, "micro_stream",
                 [("stream_epoch_rate", 4.0, {"mode": "unsorted"}),
                  ("stream_epoch_rate", 5.0, {"mode": "presort"}),
                  ("steady_chunk_flatness", 1.0, {}),
                  ("steady_rss_bytes", 9.0e7, {})])
    assert _run([old, new]) == 0
    newer = _point(10, "micro_stream",
                   [("stream_epoch_rate", 4.1, {"mode": "unsorted"}),
                    ("stream_epoch_rate", 2.5, {"mode": "presort"}),  # -50%
                    ("steady_chunk_flatness", 1.0, {}),
                    ("steady_rss_bytes", 9.0e7, {})])
    assert _run([old, new, newer]) == 1
    flat_lost = _point(10, "micro_stream",
                       [("stream_epoch_rate", 4.1, {"mode": "unsorted"}),
                        ("stream_epoch_rate", 5.1, {"mode": "presort"}),
                        ("steady_chunk_flatness", 0.5, {}),  # chunks x2
                        ("steady_rss_bytes", 9.0e7, {})])
    assert _run([old, new, flat_lost]) == 1
    for name in ("stream_epoch_rate", "steady_chunk_flatness"):
        assert name in compare_bench.DEFAULT_METRICS, name
    # Absolute RSS is box-dependent: tracked for trend, never gated.
    assert "steady_rss_bytes" in compare_bench.UNGATED_NOISY_METRICS
    assert "steady_rss_bytes" not in compare_bench.DEFAULT_METRICS


def test_shard_series_join_mid_trajectory_then_gate():
    # micro_shard first appears at PR 10: no baseline in older points
    # (skip, not fail), then gate from the first pair carrying both sides.
    # Both shard series are keyed by the {shards} label, so each shard
    # count is its own series — a 4-shard regression gates even when the
    # 1-shard degenerate tier held steady.
    old = _point(9, "micro_stream",
                 [("stream_epoch_rate", 4.0, {"mode": "unsorted"})])
    new = _point(10, "micro_shard",
                 [("shard_insert_rate", 5.0, {"shards": "1"}),
                  ("shard_insert_rate", 6.0, {"shards": "4"}),
                  ("shard_query_rate", 14.0, {"shards": "1"}),
                  ("shard_query_rate", 12.0, {"shards": "4"})])
    assert _run([old, new]) == 0
    newer = _point(11, "micro_shard",
                   [("shard_insert_rate", 5.1, {"shards": "1"}),
                    ("shard_insert_rate", 3.0, {"shards": "4"}),  # -50%
                    ("shard_query_rate", 14.2, {"shards": "1"}),
                    ("shard_query_rate", 12.1, {"shards": "4"})])
    assert _run([old, new, newer]) == 1
    for name in ("shard_insert_rate", "shard_query_rate"):
        assert name in compare_bench.DEFAULT_METRICS, name
    assert "shards" in compare_bench.SERIES_LABEL_KEYS


def test_untracked_metric_never_gates():
    points = [
        _point(1, "micro_pipeline",
               [("some_debug_number", 100.0, {})]),
        _point(2, "micro_pipeline",
               [("some_debug_number", 1.0, {})]),  # -99%, but untracked
    ]
    assert _run(points) == 0


def test_tracked_query_metrics_are_in_the_default_set():
    # The rate series must actually gate: a silent drop from the default
    # metric list is exactly the regression this file exists to prevent.
    for name in ("query_rate", "auto_rehash_triggers",
                 "merge_free_insert_rate", "scheduled_mixed_rate"):
        assert name in compare_bench.DEFAULT_METRICS, name
    # The overlap series are deliberately recorded-but-ungated on the
    # 1-vCPU capture box (0.0-0.38 run-to-run swing for an unchanged
    # binary, docs/PERF.md): being in neither list is the silent drop this
    # test prevents.
    for name in ("query_overlap", "pipeline_overlap"):
        assert name in compare_bench.UNGATED_NOISY_METRICS, name
        assert name not in compare_bench.DEFAULT_METRICS, name
    # Likewise the backpressure latency/counter series (micro_scheduler):
    # lower-is-better, so putting them in the gate (which assumes rates)
    # would fail on an improvement.
    for name in ("scheduler_latency_p99_us_bounded", "scheduler_blocked_ms_bounded",
                 "scheduler_rejected_reject", "scheduler_shed_shed"):
        assert name in compare_bench.UNGATED_NOISY_METRICS, name
        assert name not in compare_bench.DEFAULT_METRICS, name


def test_series_split_by_labels():
    # threads=1 may regress the day threads=4 improves; the gate must key
    # series on their labels, not just the metric name.
    points = [
        _point(1, "micro_query_pipeline",
               [("query_rate", 100.0, {"threads": "1"}),
                ("query_rate", 100.0, {"threads": "4"})]),
        _point(2, "micro_query_pipeline",
               [("query_rate", 50.0, {"threads": "1"}),
                ("query_rate", 120.0, {"threads": "4"})]),
    ]
    assert _run(points) == 1


def test_custom_threshold_flag():
    points = [
        _point(1, "micro_pipeline",
               [("pipeline_insert_rate", 100.0, {"threads": "2"})]),
        _point(2, "micro_pipeline",
               [("pipeline_insert_rate", 80.0, {"threads": "2"})]),  # -20%
    ]
    assert _run(points) == 1
    assert _run(points, ["--threshold=0.25"]) == 0


def test_table2_ours_backfill_from_table():
    # Points that predate the ours_insert_rate series derive it from the
    # Table II "Ours" column; a newer explicit series must compare against
    # the derived one.
    old = _point(1, "table2_edge_insertion", [], tables=[{
        "title": "Table II",
        "headers": ["Batch size", "Ours"],
        "rows": [["2^14", "20.0"]],
    }])
    new = _point(2, "table2_edge_insertion",
                 [("ours_insert_rate", 10.0, {"batch": "2^14"})])  # -50%
    assert _run([old, new]) == 1


def test_single_point_is_a_noop():
    points = [_point(1, "micro_pipeline",
                     [("pipeline_overlap", 0.5, {})])]
    assert _run(points) == 0


def _main():
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"  [ok]   {name}")
            except AssertionError as err:
                failures += 1
                print(f"  [FAIL] {name}: {err}")
    if failures:
        print(f"{failures} test(s) failed", file=sys.stderr)
        return 1
    print("all compare_bench tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(_main())
