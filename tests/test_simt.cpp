// Unit tests for the SIMT substrate: warp primitive semantics must match
// the CUDA intrinsics they stand in for, grid launches must cover exactly
// the requested items, and the atomics must behave under real contention.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/simt/atomics.hpp"
#include "src/simt/grid.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/simt/warp.hpp"

namespace sg::simt {
namespace {

TEST(Warp, BallotAllTrue) {
  LaneArray<bool> pred;
  pred.fill(true);
  EXPECT_EQ(ballot(pred), kFullMask);
}

TEST(Warp, BallotAllFalse) {
  LaneArray<bool> pred;
  pred.fill(false);
  EXPECT_EQ(ballot(pred), 0u);
}

TEST(Warp, BallotSingleLane) {
  LaneArray<bool> pred{};
  pred[5] = true;
  EXPECT_EQ(ballot(pred), 1u << 5);
}

TEST(Warp, BallotRespectsActiveMask) {
  LaneArray<bool> pred;
  pred.fill(true);
  EXPECT_EQ(ballot(pred, 0x0000FFFFu), 0x0000FFFFu);
}

TEST(Warp, BallotLane31) {
  LaneArray<bool> pred{};
  pred[31] = true;
  EXPECT_EQ(ballot(pred), 0x80000000u);
}

TEST(Warp, ShuffleBroadcasts) {
  LaneArray<int> vals;
  std::iota(vals.begin(), vals.end(), 100);
  EXPECT_EQ(shuffle(vals, 0), 100);
  EXPECT_EQ(shuffle(vals, 31), 131);
}

TEST(Warp, ShuffleWrapsLikeCuda) {
  // CUDA's __shfl_sync masks the source lane with warpSize-1.
  LaneArray<int> vals;
  std::iota(vals.begin(), vals.end(), 0);
  EXPECT_EQ(shuffle(vals, 32), 0);
  EXPECT_EQ(shuffle(vals, 33), 1);
}

TEST(Warp, PopcMatchesPopcount) {
  EXPECT_EQ(popc(0u), 0);
  EXPECT_EQ(popc(kFullMask), 32);
  EXPECT_EQ(popc(0b1011u), 3);
}

TEST(Warp, FfsIsOneBasedLikeCuda) {
  EXPECT_EQ(ffs(0u), 0);
  EXPECT_EQ(ffs(1u), 1);
  EXPECT_EQ(ffs(0b1000u), 4);
  EXPECT_EQ(ffs(0x80000000u), 32);
}

TEST(Warp, LanemaskBelow) {
  EXPECT_EQ(lanemask_below(0), 0u);
  EXPECT_EQ(lanemask_below(1), 1u);
  EXPECT_EQ(lanemask_below(32), kFullMask);
  EXPECT_EQ(lanemask_below(16), 0x0000FFFFu);
}

TEST(Warp, WarpIdItemIndexing) {
  WarpId id;
  id.warp = 3;
  id.first_item = 96;
  EXPECT_EQ(id.item(0), 96u);
  EXPECT_EQ(id.item(31), 127u);
  EXPECT_EQ(id.active_count(), 32);
}

TEST(Grid, WarpsForRounding) {
  EXPECT_EQ(warps_for(0), 0u);
  EXPECT_EQ(warps_for(1), 1u);
  EXPECT_EQ(warps_for(32), 1u);
  EXPECT_EQ(warps_for(33), 2u);
  EXPECT_EQ(warps_for(1024), 32u);
}

TEST(Grid, LaunchCoversEveryItemExactlyOnce) {
  constexpr std::uint64_t kItems = 10007;  // prime => partial last warp
  std::vector<std::atomic<int>> hits(kItems);
  launch(kItems, [&](const WarpId& warp) {
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (warp.lane_active(lane)) {
        hits[warp.item(lane)].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(Grid, LastWarpHasPartialActiveMask) {
  std::atomic<std::uint32_t> last_mask{0};
  launch(40, [&](const WarpId& warp) {
    if (warp.warp == 1) last_mask = warp.active;
  });
  EXPECT_EQ(last_mask.load(), lanemask_below(8));
}

TEST(Grid, ZeroItemsIsNoop) {
  bool ran = false;
  launch(0, [&](const WarpId&) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Grid, SerialModeMatchesParallel) {
  constexpr std::uint64_t kItems = 1000;
  std::vector<int> serial_hits(kItems, 0);
  LaunchConfig serial_cfg;
  serial_cfg.serial = true;
  launch(kItems, [&](const WarpId& warp) {
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (warp.lane_active(lane)) ++serial_hits[warp.item(lane)];
    }
  }, serial_cfg);
  EXPECT_EQ(std::accumulate(serial_hits.begin(), serial_hits.end(), 0), 1000);
}

TEST(Grid, LaunchWarpsRunsExactCount) {
  std::atomic<int> warps_run{0};
  launch_warps(17, [&](const WarpId&) { warps_run.fetch_add(1); });
  EXPECT_EQ(warps_run.load(), 17);
}

TEST(Grid, WarpIdsAreDistinct) {
  constexpr std::uint32_t kWarps = 64;
  std::vector<std::atomic<int>> seen(kWarps);
  launch_warps(kWarps, [&](const WarpId& warp) {
    seen[warp.warp].fetch_add(1);
  });
  for (std::uint32_t w = 0; w < kWarps; ++w) EXPECT_EQ(seen[w].load(), 1);
}

TEST(ThreadPool, ParallelForRunsAllChunks) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(1000, [&](std::uint64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000ull * 999 / 2);
}

TEST(ThreadPool, ZeroChunksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::uint64_t) { FAIL(); });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::uint64_t i) {
                          if (i == 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, [&](std::uint64_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);  // no workers: jobs run on the submitter
  std::uint64_t sum = 0;
  pool.parallel_for(100, [&](std::uint64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, InlinePoolPropagatesExceptions) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::uint64_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitRunsAllChunksByWait) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  auto job = pool.submit(500, [&](std::uint64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  pool.wait(job);
  EXPECT_EQ(sum.load(), 500ull * 499 / 2);
  pool.wait(job);  // idempotent
  EXPECT_EQ(sum.load(), 500ull * 499 / 2);
}

TEST(ThreadPool, SubmittedJobOverlapsParallelFor) {
  // A background job and a foreground parallel_for share the pool; both
  // must complete, with the background job's chunks interleaved rather
  // than starved (the batch pipeline's stage-vs-apply arrangement).
  ThreadPool pool(4);
  std::atomic<int> background{0};
  std::atomic<int> foreground{0};
  auto job = pool.submit(64, [&](std::uint64_t) {
    background.fetch_add(1, std::memory_order_relaxed);
  });
  pool.parallel_for(64, [&](std::uint64_t) {
    foreground.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(foreground.load(), 64);
  pool.wait(job);
  EXPECT_EQ(background.load(), 64);
}

TEST(ThreadPool, SubmitOnInlinePoolRunsSynchronously) {
  ThreadPool pool(1);
  int count = 0;
  auto job = pool.submit(8, [&](std::uint64_t) { ++count; });
  EXPECT_EQ(count, 8);  // completed before submit returned
  pool.wait(job);
  EXPECT_EQ(count, 8);
}

TEST(ThreadPool, SubmitExceptionRethrownByWait) {
  for (const unsigned threads : {1u, 3u}) {
    ThreadPool pool(threads);
    auto job = pool.submit(16, [&](std::uint64_t i) {
      if (i == 3) throw std::runtime_error("stage failed");
    });
    EXPECT_THROW(pool.wait(job), std::runtime_error);
  }
}

TEST(ThreadPool, NestedParallelForInsideSubmittedJob) {
  // The epoch pipelines submit ONE chunk per staging pass which fans out
  // again through a nested parallel_for (with a count/place barrier between
  // the passes): chunks must be free to start jobs on their own pool, at
  // every width including the inline pool.
  for (const unsigned width : {1u, 2u, 8u}) {
    ThreadPool pool(width);
    std::atomic<int> inner_total{0};
    std::atomic<int> barrier_order{0};
    const auto job = pool.submit(1, [&](std::uint64_t) {
      pool.parallel_for(16, [&](std::uint64_t) {
        inner_total.fetch_add(1, std::memory_order_relaxed);
      });
      // parallel_for returned: all 16 nested chunks are complete — the
      // barrier the two-pass staging relies on.
      barrier_order.store(inner_total.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      pool.parallel_for(16, [&](std::uint64_t) {
        inner_total.fetch_add(1, std::memory_order_relaxed);
      });
    });
    // A foreground parallel_for shares the pool with the nested job.
    std::atomic<int> foreground{0};
    pool.parallel_for(64, [&](std::uint64_t) {
      foreground.fetch_add(1, std::memory_order_relaxed);
    });
    pool.wait(job);
    EXPECT_EQ(inner_total.load(), 32) << "width " << width;
    EXPECT_EQ(barrier_order.load(), 16) << "width " << width;
    EXPECT_EQ(foreground.load(), 64) << "width " << width;
  }
}

TEST(ThreadPool, RequestedWidthSurvivesInlineResize) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.requested(), 4u);
  EXPECT_EQ(pool.size(), 4u);
  pool.resize(1);  // inline pool: no workers, but the width is remembered
  EXPECT_EQ(pool.requested(), 1u);
  EXPECT_EQ(pool.size(), 0u);
  pool.resize(4);
  EXPECT_EQ(pool.requested(), 4u);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, ManyConcurrentSubmittedJobs) {
  ThreadPool pool(4);
  std::vector<ThreadPool::JobHandle> jobs;
  std::atomic<int> total{0};
  for (int j = 0; j < 8; ++j) {
    jobs.push_back(pool.submit(32, [&](std::uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& job : jobs) pool.wait(job);
  EXPECT_EQ(total.load(), 8 * 32);
}

TEST(Atomics, CasReturnsObservedValue) {
  std::uint32_t word = 5;
  EXPECT_EQ(atomic_cas(word, 5u, 9u), 5u);  // success: old value
  EXPECT_EQ(word, 9u);
  EXPECT_EQ(atomic_cas(word, 5u, 7u), 9u);  // failure: current value
  EXPECT_EQ(word, 9u);
}

TEST(Atomics, AddSubExch) {
  std::uint32_t word = 10;
  EXPECT_EQ(atomic_add(word, 5u), 10u);
  EXPECT_EQ(word, 15u);
  EXPECT_EQ(atomic_sub(word, 3u), 15u);
  EXPECT_EQ(word, 12u);
  EXPECT_EQ(atomic_exch(word, 99u), 12u);
  EXPECT_EQ(word, 99u);
}

TEST(Atomics, MinMax) {
  std::uint32_t word = 50;
  atomic_min(word, 20u);
  EXPECT_EQ(word, 20u);
  atomic_min(word, 30u);
  EXPECT_EQ(word, 20u);
  atomic_max(word, 70u);
  EXPECT_EQ(word, 70u);
  atomic_max(word, 60u);
  EXPECT_EQ(word, 70u);
}

TEST(Atomics, OrAnd) {
  std::uint32_t word = 0b0101;
  atomic_or(word, 0b0010u);
  EXPECT_EQ(word, 0b0111u);
  atomic_and(word, 0b0110u);
  EXPECT_EQ(word, 0b0110u);
}

TEST(Atomics, ContendedCounterIsExact) {
  std::uint64_t counter = 0;
  ThreadPool pool(8);
  pool.parallel_for(10000,
                    [&](std::uint64_t) { atomic_add(counter, std::uint64_t{1}); });
  EXPECT_EQ(counter, 10000u);
}

TEST(Atomics, ContendedCasClaimsAreUnique) {
  // Many threads race to claim slots with CAS; each slot must be claimed
  // exactly once — the protocol slab insertion depends on.
  constexpr int kSlots = 128;
  std::vector<std::uint32_t> slots(kSlots, 0xFFFFFFFFu);
  std::atomic<int> claims{0};
  ThreadPool pool(8);
  pool.parallel_for(1024, [&](std::uint64_t task) {
    for (int s = 0; s < kSlots; ++s) {
      if (atomic_cas(slots[s], 0xFFFFFFFFu,
                     static_cast<std::uint32_t>(task)) == 0xFFFFFFFFu) {
        claims.fetch_add(1);
        return;
      }
    }
  });
  EXPECT_EQ(claims.load(), kSlots);
  for (auto slot : slots) EXPECT_NE(slot, 0xFFFFFFFFu);
}

}  // namespace
}  // namespace sg::simt
