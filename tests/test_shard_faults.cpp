// Fault coverage of the multi-shard serving tier (src/shard/,
// docs/ROBUSTNESS.md one level up): one shard failing mid-batch must
// surface as a TIER-level PartialBatchError whose applied count and
// unapplied list are globally exact, while the healthy shards keep their
// sub-batches — graceful degradation of one partition, not the tier.
//
// The deterministic half (always runs) starves ONE shard's arena through
// the ShardConfig::per_shard override hook. The randomized half sweeps
// seeded fault schedules across the whole stack and requires
// -DSLABGRAPH_FAULTS=ON (the fault-injection CI job sweeps SG_FAULT_SEED);
// without the define those tests SKIP so the auto-registered binary stays
// green.
#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/errors.hpp"
#include "src/memory/slab_arena.hpp"
#include "src/shard/batch_router.hpp"
#include "src/shard/sharded_graph.hpp"
#include "src/util/fault_injection.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::shard {
namespace {

using core::Edge;
using core::GraphConfig;
using core::MapPolicy;
using core::PartialBatchError;
using core::VertexId;
using core::Weight;
using core::WeightedEdge;
using core::testutil::graph_edges;

constexpr std::uint32_t kShards = 4;
constexpr std::uint32_t kVictim = 1;  ///< the shard whose arena starves

GraphConfig small_graph_config() {
  GraphConfig gc;
  gc.vertex_capacity = 64;
  return gc;
}

ShardConfig starved_victim_config() {
  ShardConfig sc;
  sc.shard_count = kShards;
  sc.graph = small_graph_config();
  sc.per_shard = [](std::uint32_t s, GraphConfig& gc) {
    if (s == kVictim) gc.max_arena_chunks = 1;  // chain growth must fail
  };
  return sc;
}

ShardConfig roomy_config() {
  ShardConfig sc;
  sc.shard_count = kShards;
  sc.graph = small_graph_config();
  return sc;
}

/// First vertex id owned by `shard` — the hub whose chain will starve it.
VertexId vertex_owned_by(std::uint32_t shard) {
  for (VertexId v = 0;; ++v) {
    if (owner_of(v, kShards) == shard) return v;
  }
}

/// A duplicate-free batch that grows ONE long chain on the victim shard
/// (a 1-chunk arena cannot hold it) interleaved with modest fan-out on
/// every other shard (which must survive untouched).
std::vector<WeightedEdge> victim_chain_batch(std::size_t chain_edges) {
  const VertexId hub = vertex_owned_by(kVictim);
  std::vector<WeightedEdge> batch;
  batch.reserve(chain_edges * 2);
  VertexId other_src = 0;
  for (std::uint32_t k = 0; k < chain_edges; ++k) {
    batch.push_back({hub, 1000 + k, k + 1});
    // One background edge per chain edge, sourced off-victim.
    do {
      ++other_src;
    } while (owner_of(other_src, kShards) == kVictim);
    batch.push_back({other_src, 1000 + k, k + 1});
  }
  return batch;
}

std::set<std::pair<VertexId, VertexId>> stored_pairs(
    const ShardedGraphMap& tier) {
  std::set<std::pair<VertexId, VertexId>> out;
  for (std::uint32_t s = 0; s < tier.shard_count(); ++s) {
    for (const auto& t : graph_edges(tier.shard(s))) {
      out.insert({std::get<0>(t), std::get<1>(t)});
    }
  }
  return out;
}

// --------------------------------------------------------------------------
// Deterministic one-shard exhaustion (no fault build required)
// --------------------------------------------------------------------------

TEST(ShardFaults, OneShardExhaustionIsExactTierPartialBatchError) {
  ShardedGraphMap tier(starved_victim_config());
  const auto batch = victim_chain_batch(2500);

  bool aborted = false;
  std::uint64_t applied = 0;
  std::vector<Edge> unapplied;
  try {
    tier.insert_edges(batch);
  } catch (const PartialBatchError& e) {
    aborted = true;
    applied = e.applied();
    unapplied = e.unapplied();
    EXPECT_THROW(std::rethrow_exception(e.cause()), memory::ArenaExhausted);
  }
  ASSERT_TRUE(aborted) << "a 1-chunk arena cannot hold a 2500-edge chain";

  // Global exactness: the applied count is what the tier holds, and the
  // stored set plus the unapplied remainder reconstructs the full batch
  // with no overlap — nothing silently dropped, nothing double-reported.
  EXPECT_EQ(applied, tier.num_edges());
  std::set<std::pair<VertexId, VertexId>> expected;
  for (const auto& e : batch) expected.insert({e.src, e.dst});
  for (const auto& e : unapplied) {
    ASSERT_TRUE(expected.erase({e.src, e.dst}))
        << "unapplied edge not in the batch (or reported twice)";
    EXPECT_EQ(owner_of(e.src, kShards), kVictim)
        << "a healthy shard reported unapplied work";
  }
  EXPECT_EQ(stored_pairs(tier), expected);

  // Healthy shards kept their entire sub-batches.
  const VertexId hub = vertex_owned_by(kVictim);
  std::uint64_t background = 0;
  for (const auto& e : batch) {
    if (e.src != hub) ++background;
  }
  std::uint64_t stored_background = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    if (s != kVictim) stored_background += tier.shard(s).num_edges();
  }
  EXPECT_EQ(stored_background, background);

  // The tier keeps serving: queries answer and deletions apply.
  std::vector<Edge> probe{{hub, 1000}, {hub, 999999}};
  std::vector<std::uint8_t> out(probe.size(), 2);
  tier.edges_exist(probe, out.data());
  EXPECT_EQ(out[1], 0);
}

TEST(ShardFaults, RetryingTheTierRemainderConverges) {
  ShardedGraphMap tier(starved_victim_config());
  const auto batch = victim_chain_batch(1500);
  std::vector<Edge> unapplied;
  try {
    tier.insert_edges(batch);
    FAIL() << "expected exhaustion";
  } catch (const PartialBatchError& e) {
    unapplied = e.unapplied();
  }

  // committed + retry on a roomy twin == the full batch on a roomy twin.
  std::set<std::pair<VertexId, VertexId>> missing;
  for (const auto& e : unapplied) missing.insert({e.src, e.dst});
  std::vector<WeightedEdge> committed, retry;
  for (const auto& e : batch) {
    (missing.count({e.src, e.dst}) ? retry : committed).push_back(e);
  }
  ShardedGraphMap healed(roomy_config());
  healed.insert_edges(committed);
  healed.insert_edges(retry);
  ShardedGraphMap fresh(roomy_config());
  fresh.insert_edges(batch);
  EXPECT_EQ(healed.num_edges(), fresh.num_edges());
  EXPECT_EQ(stored_pairs(healed), stored_pairs(fresh));
}

TEST(ShardFaults, ScheduledPathCarriesTheSameTierError) {
  ShardedGraphMap tier(starved_victim_config());
  auto batch = victim_chain_batch(2500);
  std::set<std::pair<VertexId, VertexId>> expected;
  for (const auto& e : batch) expected.insert({e.src, e.dst});

  auto future = tier.submit_insert(std::move(batch));
  bool aborted = false;
  try {
    (void)future.get();
  } catch (const PartialBatchError& e) {
    aborted = true;
    tier.drain();
    EXPECT_EQ(e.applied(), tier.num_edges());
    auto remaining = expected;
    for (const auto& edge : e.unapplied()) {
      ASSERT_TRUE(remaining.erase({edge.src, edge.dst}));
    }
    EXPECT_EQ(stored_pairs(tier), remaining);
  }
  ASSERT_TRUE(aborted);
}

// --------------------------------------------------------------------------
// Seeded randomized sweep (fault build only)
// --------------------------------------------------------------------------

#ifndef SLABGRAPH_FAULTS

TEST(ShardFaultSweep, RequiresFaultBuild) {
  GTEST_SKIP() << "build with -DSLABGRAPH_FAULTS=ON to run the fault sweep";
}

#else  // SLABGRAPH_FAULTS

std::uint64_t base_seed() {
  if (const char* env = std::getenv("SG_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

/// RAII: no test leaves the process-wide injector armed.
struct DisarmGuard {
  ~DisarmGuard() { util::FaultInjector::instance().disarm_all(); }
};

TEST(ShardFaultSweep, EveryTierFutureResolvesUnderRandomSchedules) {
  DisarmGuard guard;
  for (std::uint64_t round = 0; round < 4; ++round) {
    util::FaultInjector::instance().arm_random_schedule(
        base_seed() * 1000 + round, /*max_fire_after=*/40);
    std::vector<std::future<std::uint64_t>> mutations;
    std::vector<std::future<std::vector<std::uint8_t>>> queries;
    std::vector<std::future<void>> fences;
    {
      ShardedGraphMap tier(roomy_config());
      auto worker = [&](std::uint64_t seed) {
        std::vector<std::future<std::uint64_t>> local_m;
        std::vector<std::future<std::vector<std::uint8_t>>> local_q;
        for (int i = 0; i < 6; ++i) {
          local_m.push_back(tier.submit_insert(
              core::testutil::random_batch(seed + i, 600, 512)));
          std::vector<Edge> probes;
          for (int k = 0; k < 128; ++k) {
            probes.push_back({static_cast<VertexId>((seed + k) % 512),
                              static_cast<VertexId>((seed * 7 + k) % 512)});
          }
          local_q.push_back(tier.submit_edges_exist(std::move(probes)));
        }
        static std::mutex collect;
        std::lock_guard<std::mutex> lock(collect);
        for (auto& f : local_m) mutations.push_back(std::move(f));
        for (auto& f : local_q) queries.push_back(std::move(f));
      };
      std::thread a(worker, round * 97 + 1);
      std::thread b(worker, round * 97 + 50);
      fences.push_back(tier.submit_analytics([&tier] {
        (void)tier.num_edges();
      }));
      a.join();
      b.join();
      // Tear the tier down with work possibly still queued: shutdown under
      // fire must still resolve everything.
    }
    std::uint64_t resolved = 0;
    auto count = [&resolved](auto& future) {
      try {
        (void)future.get();
      } catch (const core::SubmitRejected&) {
      } catch (const core::PartialBatchError&) {
      }
      ++resolved;
    };
    for (auto& f : mutations) count(f);
    for (auto& f : queries) count(f);
    for (auto& f : fences) count(f);
    EXPECT_EQ(resolved, mutations.size() + queries.size() + fences.size());
    util::FaultInjector::instance().disarm_all();
  }
}

TEST(ShardFaultSweep, TierServesAfterDisarm) {
  DisarmGuard guard;
  ShardedGraphMap tier(roomy_config());
  util::FaultInjector::instance().arm_random_schedule(base_seed(),
                                                      /*max_fire_after=*/25);
  for (int i = 0; i < 4; ++i) {
    try {
      tier.insert_edges(core::testutil::random_batch(i, 800, 512));
    } catch (const PartialBatchError&) {
      // expected under fire; the tier must stay consistent
    }
  }
  util::FaultInjector::instance().disarm_all();
  // Healthy service after the storm: a full differential round-trip.
  const auto batch = core::testutil::random_batch(777, 1000, 512);
  std::set<std::pair<VertexId, VertexId>> pairs;
  for (const auto& e : batch) {
    if (e.src != e.dst) pairs.insert({e.src, e.dst});
  }
  const std::uint64_t before = tier.num_edges();
  (void)tier.insert_edges(batch);
  std::vector<Edge> probes(pairs.size());
  std::size_t i = 0;
  for (const auto& [src, dst] : pairs) probes[i++] = {src, dst};
  const auto found = tier.edges_exist(probes);
  for (std::uint8_t hit : found) EXPECT_EQ(hit, 1);
  EXPECT_GE(tier.num_edges(), before);
}

#endif  // SLABGRAPH_FAULTS

}  // namespace
}  // namespace sg::shard
