// Crash-recovery fault harness (docs/ROBUSTNESS.md "Durability"): seeded
// kill-point differentials over the durability fault sites. A mutation
// stream runs against a journaled graph with a fault armed at
// kJournalAppend / kJournalSync / kSnapshotWrite (clean and torn-write
// modes); the first IoError is the "crash" — the graph is destroyed,
// recovery runs (latest snapshot + journal-suffix replay, torn tails
// truncated), the not-yet-durable suffix of the stream is re-applied, and
// the result must be IDENTICAL to a graph that never crashed. The journal
// is written before futures resolve / calls return, so re-applying from
// the failed operation (inclusive — at-least-once) is always sufficient
// and idempotent.
//
// Requires -DSLABGRAPH_FAULTS=ON; in normal builds the suite SKIPs.
// Schedules derive from SG_FAULT_SEED so CI sweeps seeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/util/fault_injection.hpp"

#ifndef SLABGRAPH_FAULTS

namespace sg::persist {
namespace {
TEST(PersistFaults, RequiresFaultBuild) {
  GTEST_SKIP() << "build with -DSLABGRAPH_FAULTS=ON to run the crash harness";
}
}  // namespace
}  // namespace sg::persist

#else  // SLABGRAPH_FAULTS

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>

#include "src/core/errors.hpp"
#include "src/persist/errors.hpp"
#include "src/persist/journal.hpp"
#include "src/persist/recovery.hpp"
#include "src/persist/snapshot.hpp"
#include "src/util/prng.hpp"
#include "tests/graph_test_util.hpp"

namespace sg::persist {
namespace {

using core::DynGraph;
using core::DynGraphMap;
using core::Edge;
using core::GraphConfig;
using core::MapPolicy;
using core::PartialBatchError;
using core::SetPolicy;
using core::VertexId;
using core::WeightedEdge;
using core::testutil::expect_identical;
using core::testutil::random_batch;
using util::FaultInjector;
using util::FaultSite;
using util::FaultSpec;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("SG_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

/// RAII: no test leaves the process-wide injector armed.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::instance().disarm_all(); }
};

/// Unique scratch directory per case, removed on scope exit.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "sg_pfault_XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// The deterministic mutation stream, as an indexed op list so a run can
/// resume from the exact operation the crash interrupted. When `snap` is
/// non-empty, periodic snapshot ops are interleaved (victim only — the
/// oracle never snapshots, and the mutation subsequence is identical).
template <class Policy>
std::vector<std::function<void(DynGraph<Policy>&)>> make_ops(
    std::uint64_t seed, const std::string& snap) {
  std::vector<std::function<void(DynGraph<Policy>&)>> ops;
  for (int r = 0; r < 10; ++r) {
    auto batch = random_batch(seed * 1315423911ull + r, 250, 96);
    ops.push_back([batch](DynGraph<Policy>& g) { g.insert_edges(batch); });
    std::vector<Edge> erase;
    for (std::size_t i = r % 4; i < batch.size(); i += 4) {
      erase.push_back({batch[i].src, batch[i].dst});
    }
    ops.push_back([erase](DynGraph<Policy>& g) { g.delete_edges(erase); });
    if (r % 4 == 2) {
      ops.push_back([r](DynGraph<Policy>& g) {
        g.delete_vertices(std::vector<VertexId>{static_cast<VertexId>(r * 5)});
      });
    }
    if (r % 4 == 3) {
      ops.push_back([r](DynGraph<Policy>& g) {
        g.insert_vertices(std::vector<VertexId>{static_cast<VertexId>(300 + r)},
                          std::vector<std::uint32_t>{4});
      });
    }
    if (!snap.empty() && r % 3 == 2) {
      ops.push_back([snap](DynGraph<Policy>& g) { snapshot(g, snap); });
    }
  }
  return ops;
}

struct KillPoint {
  FaultSite site;
  std::uint32_t torn_permille;  // 0 = clean failure
  std::uint64_t max_fire;      // fire_after drawn from [1, max_fire]
};

/// One kill-point differential: crash at a seeded arrival of `kp.site`,
/// recover, re-apply the non-durable suffix, compare to the never-crashed
/// oracle. Also exercises the no-crash path when the drawn fire point lies
/// beyond the stream (part of the schedule space).
template <class Policy>
void kill_point_case(const KillPoint& kp, std::uint64_t seed) {
  auto& inj = FaultInjector::instance();
  inj.disarm_all();
  TempDir dir;
  const std::string snap = dir.file("snap");

  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  cfg.journal_sync = core::JournalSyncPolicy::kEachBatch;

  util::Xoshiro256 rng(seed * 31 + static_cast<std::uint64_t>(kp.site));
  FaultSpec spec;
  spec.fire_after = 1 + rng.below(kp.max_fire);
  spec.torn_permille = kp.torn_permille;

  const auto ops = make_ops<Policy>(seed, snap);
  int crashed_at = -1;
  {
    DynGraph<Policy> victim(cfg);
    inj.arm(kp.site, spec);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      try {
        ops[i](victim);
      } catch (const IoError&) {
        crashed_at = static_cast<int>(i);
        break;
      }
    }
  }  // the crash: victim dies with whatever was durable

  inj.disarm_all();
  Recovered<Policy> rec = recover<Policy>(cfg, snap);
  if (crashed_at >= 0) {
    // Re-deliver from the failed op inclusive: the journal holds every op
    // before it, and MAY hold the failed one (sync fault after a landed
    // write) — re-application is idempotent either way.
    for (std::size_t i = static_cast<std::size_t>(crashed_at); i < ops.size();
         ++i) {
      ops[i](*rec.graph);
    }
  } else {
    EXPECT_EQ(inj.fired(kp.site), 0u)
        << "fault fired but no mutation threw IoError";
  }

  GraphConfig oracle_cfg;  // no journal, no snapshots, never crashes
  DynGraph<Policy> oracle(oracle_cfg);
  for (const auto& op : make_ops<Policy>(seed, "")) op(oracle);
  expect_identical(oracle, *rec.graph);
}

TEST(PersistFaults, KillPointDifferentialMap) {
  DisarmGuard guard;
  const std::uint64_t base = base_seed();
  const std::vector<KillPoint> points{
      {FaultSite::kJournalAppend, 0, 28},
      {FaultSite::kJournalAppend, 500, 28},
      {FaultSite::kJournalSync, 0, 28},
      {FaultSite::kSnapshotWrite, 0, 3},
      {FaultSite::kSnapshotWrite, 700, 3},
  };
  for (const KillPoint& kp : points) {
    for (std::uint64_t offset = 0; offset < 3; ++offset) {
      SCOPED_TRACE(::testing::Message()
                   << "site " << static_cast<int>(kp.site) << " torn "
                   << kp.torn_permille << " seed offset " << offset);
      kill_point_case<MapPolicy>(kp, base * 1000 + offset);
    }
  }
}

TEST(PersistFaults, KillPointDifferentialSet) {
  DisarmGuard guard;
  const std::uint64_t base = base_seed();
  const std::vector<KillPoint> points{
      {FaultSite::kJournalAppend, 350, 28},
      {FaultSite::kJournalSync, 0, 28},
      {FaultSite::kSnapshotWrite, 900, 3},
  };
  for (const KillPoint& kp : points) {
    for (std::uint64_t offset = 0; offset < 3; ++offset) {
      SCOPED_TRACE(::testing::Message()
                   << "site " << static_cast<int>(kp.site) << " torn "
                   << kp.torn_permille << " seed offset " << offset);
      kill_point_case<SetPolicy>(kp, base * 1000 + 500 + offset);
    }
  }
}

// A failed append poisons the journal: every later mutation refuses with
// IoError BEFORE touching the in-memory graph, so memory never silently
// outruns the durable state.
TEST(PersistFaults, PoisonedJournalRefusesFurtherMutations) {
  DisarmGuard guard;
  auto& inj = FaultInjector::instance();
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  DynGraphMap g(cfg);
  g.insert_edges(std::vector<WeightedEdge>{{1, 2, 3}});

  inj.arm(FaultSite::kJournalAppend, FaultSpec{/*fire_after=*/1});
  EXPECT_THROW(g.insert_edges(std::vector<WeightedEdge>{{4, 5, 6}}), IoError);
  inj.disarm_all();

  const std::uint64_t edges_before = g.num_edges();
  EXPECT_THROW(g.insert_edges(std::vector<WeightedEdge>{{7, 8, 9}}), IoError);
  EXPECT_EQ(g.num_edges(), edges_before);  // refused up front, not half-run
  EXPECT_THROW(g.delete_edges(std::vector<Edge>{{1, 2}}), IoError);
  EXPECT_TRUE(g.edge_exists(1, 2));
}

// A torn append leaves a short record at EOF; attach-time recovery
// truncates it and the sequence continues from the durable prefix.
TEST(PersistFaults, TornAppendIsTruncatedOnRecovery) {
  DisarmGuard guard;
  auto& inj = FaultInjector::instance();
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  {
    DynGraphMap g(cfg);
    g.insert_edges(std::vector<WeightedEdge>{{1, 2, 3}});
    FaultSpec spec;
    spec.fire_after = 1;
    spec.torn_permille = 500;  // half the record lands
    inj.arm(FaultSite::kJournalAppend, spec);
    EXPECT_THROW(g.insert_edges(std::vector<WeightedEdge>{{4, 5, 6}}), IoError);
  }
  inj.disarm_all();

  const RecoveredMap rec = recover<MapPolicy>(cfg);
  EXPECT_GT(rec.stats.truncated_bytes, 0u);
  EXPECT_EQ(rec.stats.replayed_records, 1u);
  EXPECT_TRUE(rec.graph->edge_exists(1, 2));
  EXPECT_FALSE(rec.graph->edge_exists(4, 5));
  // The recovered graph journals normally on the repaired file.
  rec.graph->insert_edges(std::vector<WeightedEdge>{{4, 5, 6}});
  EXPECT_EQ(Journal::scan(dir.file("j")).records.size(), 2u);
}

// Atomic snapshot rule: a failed (even torn) snapshot write must leave the
// previous snapshot file byte-for-byte intact — the tear lands in the
// temporary, never in the published path.
TEST(PersistFaults, FailedSnapshotPreservesPreviousSnapshot) {
  DisarmGuard guard;
  auto& inj = FaultInjector::instance();
  TempDir dir;
  DynGraphMap g(GraphConfig{});
  g.insert_edges(std::vector<WeightedEdge>{{1, 2, 3}, {2, 3, 4}});
  snapshot(g, dir.file("snap"));

  g.insert_edges(std::vector<WeightedEdge>{{5, 6, 7}});
  FaultSpec spec;
  spec.fire_after = 1;
  spec.torn_permille = 600;
  inj.arm(FaultSite::kSnapshotWrite, spec);
  EXPECT_THROW(snapshot(g, dir.file("snap")), IoError);
  inj.disarm_all();

  DynGraphMap restored(GraphConfig{});
  restore_into(restored, dir.file("snap"));  // the OLD snapshot, undamaged
  EXPECT_TRUE(restored.edge_exists(1, 2));
  EXPECT_FALSE(restored.edge_exists(5, 6));
}

// Committed-prefix journaling: when the engine aborts a batch mid-way
// (arena exhaustion), the journal records exactly the applied prefix —
// replaying it reproduces the post-abort in-memory state, not the full
// requested batch.
TEST(PersistFaults, PartialBatchJournalsExactlyTheCommittedPrefix) {
  DisarmGuard guard;
  auto& inj = FaultInjector::instance();
  TempDir dir;
  GraphConfig cfg;
  cfg.journal_path = dir.file("j");
  cfg.pipeline_epoch_edges = 64;  // several epochs, so a prefix can commit
  DynGraphMap g(cfg);

  // Hub-heavy batch forces dynamic slab allocation; the armed arena fault
  // aborts it partway through.
  std::vector<WeightedEdge> batch;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    batch.push_back({static_cast<VertexId>(i % 4), 100 + i, i + 1});
  }
  inj.arm(FaultSite::kArenaAllocate, FaultSpec{/*fire_after=*/20});
  std::size_t unapplied = 0;
  try {
    g.insert_edges(batch);
    FAIL() << "expected PartialBatchError";
  } catch (const PartialBatchError& e) {
    unapplied = e.unapplied().size();
  }
  inj.disarm_all();
  ASSERT_GT(unapplied, 0u);
  ASSERT_LT(unapplied, batch.size());  // a real prefix committed

  GraphConfig plain;  // replay target without a journal of its own
  DynGraphMap replayed(plain);
  replay_journal(replayed, dir.file("j"));
  expect_identical(g, replayed);
}

}  // namespace
}  // namespace sg::persist

#endif  // SLABGRAPH_FAULTS
