// Unit & property tests for the SlabHash concurrent map: uniqueness under
// replace, most-recent-weight-wins, tombstone semantics (never reused by
// insertion; empties only at chain tails), chain growth, iteration,
// occupancy accounting, compaction, and concurrent stress.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/memory/slab_arena.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/slabhash/slab_map.hpp"
#include "src/util/prng.hpp"

namespace sg::slabhash {
namespace {

class SlabMapTest : public ::testing::Test {
 protected:
  memory::SlabArena arena;
};

TEST_F(SlabMapTest, InsertThenFind) {
  SlabHashMap map(arena, 4);
  EXPECT_TRUE(map.replace(10, 100));
  const auto hit = map.search(10);
  EXPECT_TRUE(hit.found);
  EXPECT_EQ(hit.value, 100u);
}

TEST_F(SlabMapTest, MissingKeyNotFound) {
  SlabHashMap map(arena, 4);
  map.replace(10, 100);
  EXPECT_FALSE(map.search(11).found);
}

TEST_F(SlabMapTest, ReplaceReturnsFalseForExistingKey) {
  SlabHashMap map(arena, 4);
  EXPECT_TRUE(map.replace(10, 100));
  EXPECT_FALSE(map.replace(10, 200));  // "previously existed ... just replaced"
  EXPECT_EQ(map.search(10).value, 200u);
}

TEST_F(SlabMapTest, MostRecentValueWins) {
  SlabHashMap map(arena, 2);
  for (std::uint32_t v = 0; v < 50; ++v) map.replace(7, v);
  EXPECT_EQ(map.search(7).value, 49u);
  // Still exactly one live copy of the key.
  EXPECT_EQ(map.occupancy().live_keys, 1u);
}

TEST_F(SlabMapTest, EraseReturnsPresence) {
  SlabHashMap map(arena, 4);
  map.replace(10, 1);
  EXPECT_TRUE(map.erase(10));
  EXPECT_FALSE(map.erase(10));  // second delete of the same key is a miss
  EXPECT_FALSE(map.search(10).found);
}

TEST_F(SlabMapTest, EraseOfAbsentKeyIsFalse) {
  SlabHashMap map(arena, 4);
  EXPECT_FALSE(map.erase(999));
}

TEST_F(SlabMapTest, TombstoneNotReusedByInsertion) {
  SlabHashMap map(arena, 1);  // single bucket => deterministic layout
  map.replace(1, 10);
  map.replace(2, 20);
  map.erase(1);
  // Re-inserting a *different* key must not overwrite the tombstone: the
  // tombstone stays, so occupancy shows 2 live + 1 tombstone.
  map.replace(3, 30);
  const TableOccupancy occ = map.occupancy();
  EXPECT_EQ(occ.live_keys, 2u);
  EXPECT_EQ(occ.tombstones, 1u);
}

TEST_F(SlabMapTest, ReinsertAfterEraseWorks) {
  SlabHashMap map(arena, 1);
  map.replace(5, 50);
  map.erase(5);
  EXPECT_TRUE(map.replace(5, 51));  // new key again (tombstone skipped)
  EXPECT_EQ(map.search(5).value, 51u);
}

TEST_F(SlabMapTest, EmptiesOnlyAtChainTail) {
  // The paper's invariant: within a slab, EMPTY slots all sit after used
  // (live or tombstoned) slots.
  SlabHashMap map(arena, 1);
  for (std::uint32_t k = 0; k < 40; ++k) map.replace(k, k);
  for (std::uint32_t k = 0; k < 40; k += 3) map.erase(k);
  for (std::uint32_t k = 100; k < 110; ++k) map.replace(k, k);
  memory::SlabHandle h = map.table().base;
  while (h != memory::kNullSlab) {
    const memory::Slab& slab = arena.resolve(h);
    bool seen_empty = false;
    for (int pair = 0; pair < kMapPairsPerSlab; ++pair) {
      const std::uint32_t key = slab.words[pair * 2];
      if (key == kEmptyKey) {
        seen_empty = true;
      } else {
        ASSERT_FALSE(seen_empty) << "used slot after an empty slot";
      }
    }
    h = slab.words[kNextPtrWord];
  }
}

TEST_F(SlabMapTest, ChainGrowsBeyondOneSlab) {
  SlabHashMap map(arena, 1);
  for (std::uint32_t k = 0; k < 100; ++k) map.replace(k, k * 2);
  for (std::uint32_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(map.search(k).found) << k;
    ASSERT_EQ(map.search(k).value, k * 2);
  }
  EXPECT_GT(map.occupancy().overflow_slabs, 0u);
}

TEST_F(SlabMapTest, ForEachVisitsExactlyLivePairs) {
  SlabHashMap map(arena, 3);
  std::map<std::uint32_t, std::uint32_t> reference;
  for (std::uint32_t k = 0; k < 60; ++k) {
    map.replace(k, k + 1000);
    reference[k] = k + 1000;
  }
  for (std::uint32_t k = 0; k < 60; k += 4) {
    map.erase(k);
    reference.erase(k);
  }
  std::map<std::uint32_t, std::uint32_t> seen;
  map.for_each([&](std::uint32_t k, std::uint32_t v) {
    ASSERT_TRUE(seen.emplace(k, v).second) << "duplicate key in iteration";
  });
  EXPECT_EQ(seen, reference);
}

TEST_F(SlabMapTest, OccupancyCountsSlots) {
  SlabHashMap map(arena, 2);
  const TableOccupancy empty = map.occupancy();
  EXPECT_EQ(empty.live_keys, 0u);
  EXPECT_EQ(empty.slots, 2u * kMapPairsPerSlab);
  EXPECT_EQ(empty.base_slabs, 2u);
  map.replace(1, 1);
  EXPECT_DOUBLE_EQ(map.occupancy().utilization(),
                   1.0 / (2 * kMapPairsPerSlab));
}

TEST_F(SlabMapTest, FlushTombstonesCompactsAndFrees) {
  SlabHashMap map(arena, 1);
  for (std::uint32_t k = 0; k < 90; ++k) map.replace(k, k);
  for (std::uint32_t k = 0; k < 90; ++k) {
    if (k % 3 != 0) map.erase(k);
  }
  const auto before = map.occupancy();
  EXPECT_GT(before.tombstones, 0u);
  const std::uint64_t dynamic_before = arena.stats().dynamic_slabs;
  map.flush_tombstones();
  const auto after = map.occupancy();
  EXPECT_EQ(after.tombstones, 0u);
  EXPECT_EQ(after.live_keys, before.live_keys);
  EXPECT_LT(arena.stats().dynamic_slabs, dynamic_before);
  // Content preserved.
  for (std::uint32_t k = 0; k < 90; ++k) {
    EXPECT_EQ(map.search(k).found, k % 3 == 0) << k;
  }
}

TEST_F(SlabMapTest, ClearFreesOverflowAndEmptiesTable) {
  SlabHashMap map(arena, 1);
  for (std::uint32_t k = 0; k < 200; ++k) map.replace(k, k);
  EXPECT_GT(arena.stats().dynamic_slabs, 0u);
  map_clear(arena, map.table());
  EXPECT_EQ(arena.stats().dynamic_slabs, 0u);
  EXPECT_EQ(map.occupancy().live_keys, 0u);
  for (std::uint32_t k = 0; k < 200; ++k) ASSERT_FALSE(map.search(k).found);
}

TEST_F(SlabMapTest, SentinelsAreNotStorableButNearMaxKeyIs) {
  SlabHashMap map(arena, 2);
  EXPECT_TRUE(map.replace(kMaxKey, 1));
  EXPECT_TRUE(map.search(kMaxKey).found);
}

TEST_F(SlabMapTest, ZeroBucketRequestClampedToOne) {
  SlabHashMap map(arena, 0);
  EXPECT_TRUE(map.replace(1, 1));
  EXPECT_EQ(map.table().num_buckets, 1u);
}

TEST(SlabMapHash, BucketOfIsStableAndInRange) {
  for (std::uint32_t buckets : {1u, 2u, 7u, 1024u}) {
    for (std::uint32_t key = 0; key < 1000; ++key) {
      const std::uint32_t b = bucket_of(key, buckets, 42);
      EXPECT_LT(b, buckets);
      EXPECT_EQ(b, bucket_of(key, buckets, 42));
    }
  }
}

TEST(SlabMapHash, DifferentSeedsGiveDifferentPartitions) {
  int moved = 0;
  for (std::uint32_t key = 0; key < 1000; ++key) {
    if (bucket_of(key, 64, 1) != bucket_of(key, 64, 2)) ++moved;
  }
  EXPECT_GT(moved, 800);
}

TEST(SlabMapHash, BucketsForSizingRule) {
  // ceil(keys / (lf * Bc)), Bc = 15.
  EXPECT_EQ(buckets_for(0, 0.7, 15), 1u);
  EXPECT_EQ(buckets_for(10, 0.7, 15), 1u);    // 10 / 10.5 -> 1
  EXPECT_EQ(buckets_for(11, 0.7, 15), 2u);    // 11 / 10.5 -> 2
  EXPECT_EQ(buckets_for(105, 1.0, 15), 7u);
  EXPECT_EQ(buckets_for(106, 1.0, 15), 8u);
}

// ---- parameterized sweeps ------------------------------------------------

struct MapSweepParam {
  std::uint32_t buckets;
  std::uint32_t keys;
};

class SlabMapSweep : public ::testing::TestWithParam<MapSweepParam> {};

TEST_P(SlabMapSweep, InsertSearchDeleteRoundTrip) {
  const auto [buckets, keys] = GetParam();
  memory::SlabArena arena;
  SlabHashMap map(arena, buckets);
  for (std::uint32_t k = 0; k < keys; ++k) {
    ASSERT_TRUE(map.replace(k * 7 + 1, k));
  }
  EXPECT_EQ(map.occupancy().live_keys, keys);
  for (std::uint32_t k = 0; k < keys; ++k) {
    ASSERT_TRUE(map.search(k * 7 + 1).found);
    ASSERT_EQ(map.search(k * 7 + 1).value, k);
    ASSERT_FALSE(map.search(k * 7 + 2).found);
  }
  for (std::uint32_t k = 0; k < keys; k += 2) {
    ASSERT_TRUE(map.erase(k * 7 + 1));
  }
  for (std::uint32_t k = 0; k < keys; ++k) {
    ASSERT_EQ(map.search(k * 7 + 1).found, k % 2 == 1) << k;
  }
}

TEST_P(SlabMapSweep, RandomizedAgainstStdMap) {
  const auto [buckets, keys] = GetParam();
  memory::SlabArena arena;
  SlabHashMap map(arena, buckets);
  std::map<std::uint32_t, std::uint32_t> reference;
  util::Xoshiro256 rng(buckets * 1000 + keys);
  for (std::uint32_t op = 0; op < keys * 4; ++op) {
    const auto key = static_cast<std::uint32_t>(rng.below(keys * 2 + 1));
    const auto value = static_cast<std::uint32_t>(rng.below(1 << 20));
    switch (rng.below(3)) {
      case 0:
      case 1: {
        const bool fresh = map.replace(key, value);
        EXPECT_EQ(fresh, reference.find(key) == reference.end());
        reference[key] = value;
        break;
      }
      default: {
        const bool removed = map.erase(key);
        EXPECT_EQ(removed, reference.erase(key) == 1);
        break;
      }
    }
  }
  for (const auto& [k, v] : reference) {
    ASSERT_TRUE(map.search(k).found) << k;
    ASSERT_EQ(map.search(k).value, v);
  }
  EXPECT_EQ(map.occupancy().live_keys, reference.size());
}

INSTANTIATE_TEST_SUITE_P(
    BucketKeyGrid, SlabMapSweep,
    ::testing::Values(MapSweepParam{1, 10}, MapSweepParam{1, 100},
                      MapSweepParam{1, 500}, MapSweepParam{4, 100},
                      MapSweepParam{16, 400}, MapSweepParam{64, 2000},
                      MapSweepParam{128, 500}, MapSweepParam{7, 333}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.buckets) + "_k" +
             std::to_string(info.param.keys);
    });

// ---- concurrency ---------------------------------------------------------

TEST(SlabMapConcurrent, ParallelDistinctInsertsAllLand) {
  memory::SlabArena arena;
  SlabHashMap map(arena, 8);
  simt::ThreadPool pool(8);
  constexpr std::uint32_t kKeys = 4000;
  pool.parallel_for(kKeys, [&](std::uint64_t k) {
    map.replace(static_cast<std::uint32_t>(k),
                static_cast<std::uint32_t>(k) + 7);
  });
  EXPECT_EQ(map.occupancy().live_keys, kKeys);
  for (std::uint32_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(map.search(k).value, k + 7);
  }
}

TEST(SlabMapConcurrent, RacingDuplicateInsertsKeepUniqueness) {
  // 16 tasks insert the SAME key set concurrently; the table must hold each
  // key exactly once ("their ability to ensure uniqueness while performing
  // updates").
  memory::SlabArena arena;
  SlabHashMap map(arena, 4);
  simt::ThreadPool pool(8);
  constexpr std::uint32_t kKeys = 300;
  std::atomic<std::uint32_t> fresh_claims{0};
  pool.parallel_for(16, [&](std::uint64_t) {
    for (std::uint32_t k = 0; k < kKeys; ++k) {
      if (map.replace(k, k)) fresh_claims.fetch_add(1);
    }
  });
  // Exactly one task won the "new key" return per key.
  EXPECT_EQ(fresh_claims.load(), kKeys);
  EXPECT_EQ(map.occupancy().live_keys, kKeys);
  std::set<std::uint32_t> seen;
  map.for_each([&](std::uint32_t k, std::uint32_t) {
    ASSERT_TRUE(seen.insert(k).second) << "duplicate key " << k;
  });
}

TEST(SlabMapConcurrent, SearchNeverObservesKeyWithoutValue) {
  // map_replace publishes <key, value> with ONE 64-bit CAS on the adjacent
  // word pair, so a reader that finds a key must also see its value — the
  // read-your-write window the old key-CAS + value-store pair left open.
  // Writers insert fresh keys whose value encodes the key; any search hit
  // returning a mismatched value means the pair tore.
  memory::SlabArena arena;
  SlabHashMap map(arena, 2);  // small table: long chains, heavy collisions
  constexpr std::uint32_t kKeys = 4000;
  std::atomic<std::uint32_t> next{0};
  std::atomic<std::uint32_t> torn{0};
  simt::ThreadPool pool(8);
  pool.parallel_for(16, [&](std::uint64_t task) {
    if (task % 2 == 0) {  // writer: claim a range of fresh keys
      for (;;) {
        const std::uint32_t k = next.fetch_add(1);
        if (k >= kKeys) return;
        map.replace(k, k ^ 0xA5A5A5A5u);
      }
    }
    util::Xoshiro256 rng(task);
    for (int probes = 0; probes < 200000; ++probes) {
      const auto k = static_cast<std::uint32_t>(rng.below(kKeys));
      const MapFindResult hit = map.search(k);
      if (hit.found && hit.value != (k ^ 0xA5A5A5A5u)) torn.fetch_add(1);
    }
  });
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(map.occupancy().live_keys, kKeys);
}

TEST(SlabMapConcurrent, RacingDeletesCountEachKeyOnce) {
  memory::SlabArena arena;
  SlabHashMap map(arena, 4);
  constexpr std::uint32_t kKeys = 500;
  for (std::uint32_t k = 0; k < kKeys; ++k) map.replace(k, k);
  std::atomic<std::uint32_t> removals{0};
  simt::ThreadPool pool(8);
  pool.parallel_for(16, [&](std::uint64_t) {
    for (std::uint32_t k = 0; k < kKeys; ++k) {
      if (map.erase(k)) removals.fetch_add(1);
    }
  });
  EXPECT_EQ(removals.load(), kKeys);  // the CAS makes deletion exactly-once
  EXPECT_EQ(map.occupancy().live_keys, 0u);
}

}  // namespace
}  // namespace sg::slabhash
