// Wall-clock timing for the benchmark harness. Timings follow the paper's
// methodology: only the operation itself is timed (no host<->device analog
// transfers, no dataset generation).
#pragma once

#include <chrono>

namespace sg::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Throughput in mega-items per second, the unit used by Tables II-IV & VI.
inline double mitems_per_second(double items, double elapsed_seconds) {
  if (elapsed_seconds <= 0.0) return 0.0;
  return items / elapsed_seconds / 1e6;
}

}  // namespace sg::util
