// Fixed-width console table printer. Every bench binary prints its results
// in the same row/column layout as the corresponding table in the paper, so
// the output can be compared side by side with the published numbers.
#pragma once

#include <string>
#include <vector>

namespace sg::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment, a header underline, and a title line.
  std::string to_string(const std::string& title = "") const;

  /// Convenience: render and write to stdout.
  void print(const std::string& title = "") const;

  static std::string fmt(double value, int precision = 2);
  static std::string fmt_int(long long value);

  /// Structured access for machine-readable emitters (BENCH_*.json).
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sg::util
