// Streaming statistics accumulator used by dataset generators (degree
// statistics for the Table I analog) and by the benchmark harness
// (mean throughput over a dataset suite).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sg::util {

/// Welford-style streaming accumulator: mean, variance, min, max, count.
class StreamingStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance (matches how Table I reports sigma).
  double variance() const noexcept { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Degree statistics of a graph given its per-vertex degrees; the format of
/// Table I (min / max / avg / sigma).
struct DegreeStats {
  std::uint64_t min_degree = 0;
  std::uint64_t max_degree = 0;
  double avg_degree = 0.0;
  double sigma = 0.0;
};

DegreeStats degree_stats(std::span<const std::uint32_t> degrees);

/// Arithmetic mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs);

}  // namespace sg::util
