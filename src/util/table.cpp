#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sg::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(const std::string& title) const {
  const std::string rendered = to_string(title);
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::fmt_int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

}  // namespace sg::util
