// Minimal --key=value command-line parsing for bench binaries and examples.
// Every bench accepts a --scale flag so the harness can be resized without
// recompilation; unknown flags are reported rather than silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace sg::util {

class Cli {
 public:
  /// Parses argv of the form --key=value or --flag. Throws std::invalid_argument
  /// on malformed input (anything not starting with "--").
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Keys that were provided but never queried; used to warn about typos.
  std::string unused_keys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace sg::util
