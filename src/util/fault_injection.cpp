#include "src/util/fault_injection.hpp"

#ifdef SLABGRAPH_FAULTS

#include <atomic>
#include <chrono>
#include <thread>

#include "src/util/prng.hpp"

namespace sg::util {

/// Counters are atomic (hot paths arrive concurrently); the spec words are
/// plain and must only change from a quiescent thread (arm/disarm), which is
/// the documented contract — tests arm before launching work.
struct FaultInjector::SiteState {
  std::atomic<std::uint64_t> arrivals{0};
  std::atomic<std::uint64_t> fired{0};
  FaultSpec spec;
};

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::SiteState& FaultInjector::state(FaultSite site) const noexcept {
  // Function-local so the (private) nested type never needs a namespace-
  // scope definition; initialized on first use, before any test arms it.
  static SiteState sites[kNumFaultSites];
  return sites[static_cast<std::uint32_t>(site)];
}

void FaultInjector::arm(FaultSite site, FaultSpec spec) {
  SiteState& s = state(site);
  s.spec = spec;
  s.arrivals.store(0, std::memory_order_relaxed);
  s.fired.store(0, std::memory_order_relaxed);
}

void FaultInjector::disarm_all() {
  for (std::uint32_t i = 0; i < kNumFaultSites; ++i) {
    arm(static_cast<FaultSite>(i), FaultSpec{});
  }
}

void FaultInjector::arm_random_schedule(std::uint64_t seed,
                                        std::uint64_t max_fire_after) {
  Xoshiro256 rng(seed);
  for (std::uint32_t i = 0; i < kNumFaultSites; ++i) {
    FaultSpec spec;
    // Half the draws leave the site disarmed: schedules where only a subset
    // of sites fail are the common production shape.
    if (rng.below(2) == 0) {
      spec.fire_after = 1 + rng.below(max_fire_after);
      if (rng.below(4) == 0) spec.period = 1 + rng.below(max_fire_after);
    }
    if (static_cast<FaultSite>(i) == FaultSite::kConductorPhase &&
        rng.below(2) == 0) {
      spec.delay_us = static_cast<std::uint32_t>(rng.below(500));
    }
    // The I/O sites additionally draw a torn-write mode: half their firing
    // schedules leave a short-write prefix on disk instead of failing
    // cleanly, so the seed sweep exercises the torn-tail recovery rule.
    const FaultSite site = static_cast<FaultSite>(i);
    if ((site == FaultSite::kJournalAppend ||
         site == FaultSite::kSnapshotWrite) &&
        rng.below(2) == 0) {
      spec.torn_permille = static_cast<std::uint32_t>(100 + rng.below(850));
    }
    arm(site, spec);
  }
}

bool FaultInjector::should_fire(FaultSite site) noexcept {
  SiteState& s = state(site);
  if (s.spec.fire_after == 0) return false;
  const std::uint64_t n = s.arrivals.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = n == s.spec.fire_after;
  if (!fire && s.spec.period != 0 && n > s.spec.fire_after) {
    fire = (n - s.spec.fire_after) % s.spec.period == 0;
  }
  if (fire) s.fired.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

void FaultInjector::maybe_delay(FaultSite site) noexcept {
  const SiteState& s = state(site);
  if (s.spec.delay_us != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(s.spec.delay_us));
  }
}

std::uint32_t FaultInjector::torn_permille(FaultSite site) const noexcept {
  return state(site).spec.torn_permille;
}

std::uint64_t FaultInjector::arrivals(FaultSite site) const noexcept {
  return state(site).arrivals.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(FaultSite site) const noexcept {
  return state(site).fired.load(std::memory_order_relaxed);
}

}  // namespace sg::util

#endif  // SLABGRAPH_FAULTS
