// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum of
// the durability formats (src/persist/): every snapshot section and every
// journal record carries one so recovery can tell a torn tail from good
// data (docs/ROBUSTNESS.md, "Durability").
//
// Incremental: pass the previous return value as `crc` to extend a running
// checksum over discontiguous buffers. The empty-input CRC is 0.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sg::util {

/// CRC-32 of `len` bytes at `data`, continuing from `crc` (0 to start).
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t crc = 0) noexcept;

}  // namespace sg::util
