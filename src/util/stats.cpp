#include "src/util/stats.hpp"

#include <cmath>

namespace sg::util {

void StreamingStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

DegreeStats degree_stats(std::span<const std::uint32_t> degrees) {
  StreamingStats acc;
  DegreeStats out;
  if (degrees.empty()) return out;
  out.min_degree = degrees[0];
  out.max_degree = degrees[0];
  for (std::uint32_t d : degrees) {
    acc.add(static_cast<double>(d));
    if (d < out.min_degree) out.min_degree = d;
    if (d > out.max_degree) out.max_degree = d;
  }
  out.avg_degree = acc.mean();
  out.sigma = acc.stddev();
  return out;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace sg::util
