#include "src/util/crc32.hpp"

namespace sg::util {
namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  constexpr Crc32Table() : entries{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = c;
    }
  }
};

constexpr Crc32Table kTable;

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t crc) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace sg::util
