#include "src/util/cli.hpp"

#include <stdexcept>

namespace sg::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --key=value argument, got: " + arg);
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "1";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool Cli::has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) > 0;
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

std::string Cli::unused_keys() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!queried_.count(key)) {
      if (!out.empty()) out += ", ";
      out += key;
    }
  }
  return out;
}

}  // namespace sg::util
