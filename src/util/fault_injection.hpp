// Seeded, site-tagged fault injector for the robustness test harness.
//
// Production code marks its failure points with SG_FAULT_FIRE(site) /
// SG_FAULT_DELAY(site). When the library is built with -DSLABGRAPH_FAULTS=ON
// the macros consult the process-wide FaultInjector, which tests arm with a
// deterministic schedule ("fail the 7th arena allocation", "delay every
// staging job by 2ms", "stall the conductor before each phase"). In normal
// builds the macros compile to `(false)` / `((void)0)` — zero code, zero
// branches, zero data — so the hooks cost nothing in release binaries.
//
// Sites are coarse by design: each names one class of failure the recovery
// machinery must survive, not one call site. Schedules are seeded
// (arm_random_schedule) so CI can sweep seeds and a failure reproduces from
// its seed alone (SG_FAULT_SEED in the fault-injection CI job).
#pragma once

#include <cstdint>

namespace sg::util {

/// Failure classes the robustness layer must recover from.
enum class FaultSite : std::uint32_t {
  kArenaAllocate = 0,    ///< dynamic slab allocation reports exhaustion
  kArenaContiguous = 1,  ///< bulk (base-slab) allocation reports exhaustion
  kStageJob = 2,         ///< background staging job throws / stalls
  kConductorPhase = 3,   ///< conductor stalls before admitting a phase
  kJournalAppend = 4,    ///< journal record write fails (torn-write capable)
  kJournalSync = 5,      ///< journal fsync fails after a durable write
  kSnapshotWrite = 6,    ///< snapshot file write fails (torn-write capable)
};
inline constexpr std::uint32_t kNumFaultSites = 7;

#ifdef SLABGRAPH_FAULTS

/// One site's schedule. `fire_after == 0` disarms the site.
struct FaultSpec {
  /// Fire on the Nth arrival at the site (1-based). 0 = never.
  std::uint64_t fire_after = 0;
  /// After the first firing, fire again every `period` arrivals. 0 = once.
  std::uint64_t period = 0;
  /// Microseconds SG_FAULT_DELAY sleeps on every arrival while armed.
  std::uint32_t delay_us = 0;
  /// Torn-write mode of the I/O sites (kJournalAppend / kSnapshotWrite):
  /// when the site fires, the writer first persists
  /// floor(len * torn_permille / 1000) bytes of the buffer it was about to
  /// write, then fails — a short write, the on-disk shape a crash mid-write
  /// leaves behind. 0 = fail cleanly (nothing of the buffer lands).
  std::uint32_t torn_permille = 0;
};

/// Process-wide injector. Arm/disarm from a quiescent test thread; the
/// arrival counters are atomic so hot paths may query concurrently.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Installs `spec` for `site` and resets the site's counters.
  void arm(FaultSite site, FaultSpec spec);

  /// Disarms every site and zeroes all counters.
  void disarm_all();

  /// Seeds a randomized schedule: each site is independently armed with a
  /// pseudorandom fire_after in [1, max_fire_after] (some sites may stay
  /// disarmed — that is part of the schedule space). Deterministic in
  /// `seed`, so any CI failure replays from the seed alone.
  void arm_random_schedule(std::uint64_t seed, std::uint64_t max_fire_after);

  /// Counts an arrival; true when the schedule says this one fails.
  bool should_fire(FaultSite site) noexcept;

  /// Sleeps delay_us if the site is armed with a delay. Counts nothing.
  void maybe_delay(FaultSite site) noexcept;

  /// The site's torn-write fraction (FaultSpec::torn_permille). Writers
  /// consult it AFTER should_fire returned true to decide how much of the
  /// doomed buffer still reaches the file. Counts nothing.
  std::uint32_t torn_permille(FaultSite site) const noexcept;

  /// Total arrivals at `site` since it was last armed.
  std::uint64_t arrivals(FaultSite site) const noexcept;

  /// Total firings at `site` since it was last armed.
  std::uint64_t fired(FaultSite site) const noexcept;

 private:
  FaultInjector() = default;
  struct SiteState;
  SiteState& state(FaultSite site) const noexcept;
};

#define SG_FAULT_FIRE(site)                     \
  (::sg::util::FaultInjector::instance().should_fire( \
      ::sg::util::FaultSite::site))
#define SG_FAULT_DELAY(site)                    \
  (::sg::util::FaultInjector::instance().maybe_delay( \
      ::sg::util::FaultSite::site))
#define SG_FAULT_TORN(site)                     \
  (::sg::util::FaultInjector::instance().torn_permille( \
      ::sg::util::FaultSite::site))

#else  // !SLABGRAPH_FAULTS

#define SG_FAULT_FIRE(site) (false)
#define SG_FAULT_DELAY(site) ((void)0)
#define SG_FAULT_TORN(site) (0u)

#endif  // SLABGRAPH_FAULTS

}  // namespace sg::util
