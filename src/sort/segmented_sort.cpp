#include "src/sort/segmented_sort.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "src/simt/thread_pool.hpp"

namespace sg::sort {

namespace {

/// Parallel sort core of segmented_sort: sort contiguous
/// chunks on the pool, then bottom-up pairwise merges (also parallel, one
/// task per pair) ping-ponging between the input and one scratch buffer.
/// Falls back to one std::sort when the pool is a single worker or the
/// input is too small to amortize the merges.
template <typename T>
void parallel_sort(std::span<T> data) {
  const std::size_t n = data.size();
  auto& pool = simt::ThreadPool::instance();
  const std::size_t workers = pool.size() > 0 ? pool.size() : 1;
  if (workers <= 1 || n < (std::size_t{1} << 15)) {
    std::sort(data.begin(), data.end());
    return;
  }
  const std::size_t num_chunks = workers < 16 ? workers : 16;
  std::vector<std::size_t> bounds(num_chunks + 1);
  for (std::size_t c = 0; c <= num_chunks; ++c) {
    bounds[c] = n * c / num_chunks;
  }
  pool.parallel_for(num_chunks, [&](std::uint64_t c) {
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
              data.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]));
  });
  std::vector<T> scratch(n);
  T* src = data.data();
  T* dst = scratch.data();
  while (bounds.size() > 2) {
    const std::size_t pairs = (bounds.size() - 1) / 2;
    pool.parallel_for(pairs, [&](std::uint64_t p) {
      std::merge(src + bounds[2 * p], src + bounds[2 * p + 1],
                 src + bounds[2 * p + 1], src + bounds[2 * p + 2],
                 dst + bounds[2 * p]);
    });
    if ((bounds.size() - 1) % 2 != 0) {  // odd trailing chunk: carry over
      std::copy(src + bounds[bounds.size() - 2], src + bounds.back(),
                dst + bounds[bounds.size() - 2]);
    }
    std::vector<std::size_t> merged;
    merged.reserve(pairs + 2);
    for (std::size_t b = 0; b < bounds.size(); b += 2) merged.push_back(bounds[b]);
    if (merged.back() != n) merged.push_back(n);
    bounds = std::move(merged);
    std::swap(src, dst);
  }
  if (src != data.data()) {
    std::copy(src, src + n, data.data());
  }
}

}  // namespace

void segmented_sort(std::span<std::uint32_t> values,
                    std::span<const std::uint64_t> offsets) {
  if (offsets.size() < 2) return;
  // Pack (segment index, value) into 64-bit keys and sort globally — the
  // device-wide strategy CUB uses (pay O(E log E) with a big constant,
  // independent of how skewed the segment sizes are).
  std::vector<std::uint64_t> keyed(values.size());
  const std::size_t num_segments = offsets.size() - 1;
  for (std::size_t s = 0; s < num_segments; ++s) {
    for (std::uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      keyed[i] = (static_cast<std::uint64_t>(s) << 32) | values[i];
    }
  }
  parallel_sort(std::span<std::uint64_t>(keyed));
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    values[i] = static_cast<std::uint32_t>(keyed[i]);
  }
}

void radix_sort_hi(std::span<U128> records, std::vector<U128>& scratch) {
  std::uint64_t or_mask = 0;
  std::uint64_t and_mask = ~std::uint64_t{0};
  for (const U128& r : records) {
    or_mask |= r.hi;
    and_mask &= r.hi;
  }
  radix_sort_hi(records, scratch, or_mask, and_mask);
}

void radix_sort_hi(std::span<U128> records, std::vector<U128>& scratch,
                   std::uint64_t or_mask, std::uint64_t and_mask) {
  const std::size_t n = records.size();
  if (n < 2) return;
  constexpr int kDigitBits = 11;
  constexpr std::uint32_t kBins = 1u << kDigitBits;  // 8 KiB histogram: L1
  const int significant_bits =
      64 - static_cast<int>(std::countl_zero(or_mask | 1));
  const int passes = (significant_bits + kDigitBits - 1) / kDigitBits;
  scratch.resize(n);
  U128* src = records.data();
  U128* dst = scratch.data();
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * kDigitBits;
    // A digit whose every bit agrees across all records contributes no
    // ordering: skip the pass. With single-bucket tables (the common case)
    // the whole bucket digit is constant zero, so only the vertex bits pay.
    if (((or_mask ^ and_mask) >> shift & (kBins - 1)) == 0) continue;
    std::uint32_t offsets[kBins] = {};
    for (std::size_t i = 0; i < n; ++i) {
      ++offsets[(src[i].hi >> shift) & (kBins - 1)];
    }
    std::uint32_t running = 0;
    for (std::uint32_t bin = 0; bin < kBins; ++bin) {
      const std::uint32_t count = offsets[bin];
      offsets[bin] = running;
      running += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[offsets[(src[i].hi >> shift) & (kBins - 1)]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != records.data()) {
    std::copy(src, src + n, records.data());
  }
}

void per_segment_sort(std::span<std::uint32_t> values,
                      std::span<const std::uint64_t> offsets) {
  if (offsets.size() < 2) return;
  const std::size_t num_segments = offsets.size() - 1;
  // Parallel over segments; balanced enough for benchmark purposes since
  // chunks interleave segments.
  simt::ThreadPool::instance().parallel_for(num_segments, [&](std::uint64_t s) {
    std::sort(values.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
              values.begin() + static_cast<std::ptrdiff_t>(offsets[s + 1]));
  });
}

bool segments_sorted(std::span<const std::uint32_t> values,
                     std::span<const std::uint64_t> offsets) {
  if (offsets.size() < 2) return true;
  for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
    for (std::uint64_t i = offsets[s] + 1; i < offsets[s + 1]; ++i) {
      if (values[i - 1] > values[i]) return false;
    }
  }
  return true;
}

}  // namespace sg::sort
