#include "src/sort/segmented_sort.hpp"

#include <algorithm>
#include <vector>

#include "src/simt/thread_pool.hpp"

namespace sg::sort {

void segmented_sort(std::span<std::uint32_t> values,
                    std::span<const std::uint64_t> offsets) {
  if (offsets.size() < 2) return;
  // Pack (segment index, value) into 64-bit keys and sort globally — the
  // device-wide strategy CUB uses (pay O(E log E) with a big constant,
  // independent of how skewed the segment sizes are).
  std::vector<std::uint64_t> keyed(values.size());
  const std::size_t num_segments = offsets.size() - 1;
  for (std::size_t s = 0; s < num_segments; ++s) {
    for (std::uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      keyed[i] = (static_cast<std::uint64_t>(s) << 32) | values[i];
    }
  }
  std::sort(keyed.begin(), keyed.end());
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    values[i] = static_cast<std::uint32_t>(keyed[i]);
  }
}

void per_segment_sort(std::span<std::uint32_t> values,
                      std::span<const std::uint64_t> offsets) {
  if (offsets.size() < 2) return;
  const std::size_t num_segments = offsets.size() - 1;
  // Parallel over segments; balanced enough for benchmark purposes since
  // chunks interleave segments.
  simt::ThreadPool::instance().parallel_for(num_segments, [&](std::uint64_t s) {
    std::sort(values.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
              values.begin() + static_cast<std::ptrdiff_t>(offsets[s + 1]));
  });
}

bool segments_sorted(std::span<const std::uint32_t> values,
                     std::span<const std::uint64_t> offsets) {
  if (offsets.size() < 2) return true;
  for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
    for (std::uint64_t i = offsets[s] + 1; i < offsets[s + 1]; ++i) {
      if (values[i - 1] > values[i]) return false;
    }
  }
  return true;
}

}  // namespace sg::sort
