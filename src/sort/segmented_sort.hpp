// Segmented sort — the CUB `DeviceSegmentedRadixSort` substitute used by
// Table VIII ("Hornet does not provide a GPU sort for their data structure,
// so we substitute CUB's segmented sort by key").
//
// The CUB-style path sorts the *whole* concatenated array by (segment, key)
// in one global pass — cheap per element but indifferent to segment sizes,
// which is why it loses badly to per-list sorts on road-like graphs and
// wins on scale-free ones (the Table VIII crossover).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sg::sort {

/// Sorts each segment of `values` ascending; segment s spans
/// [offsets[s], offsets[s+1]). One global (segment, value) radix-style sort,
/// mirroring CUB's device-wide segmented sort behaviour.
void segmented_sort(std::span<std::uint32_t> values,
                    std::span<const std::uint64_t> offsets);

/// 16-byte sort record of radix_sort_hi. This is the staged-query key of
/// the batch engine (src/core/batch_engine.hpp): the segment id — a packed
/// (vertex, bucket) pair — rides in `hi` and the query key + sequence number
/// in `lo`, the same pack-segment-into-the-high-bits strategy
/// segmented_sort uses for its (segment, value) pairs.
struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const U128&, const U128&) = default;
};

/// STABLE ascending sort of `records` by `hi` only (records with equal hi
/// keep their input order — how the batch engine preserves
/// most-recent-wins sequence order without spending sort passes on the low
/// word). LSD radix with 11-bit digits; passes covering only zero bits of
/// every hi are skipped, so the cost tracks the actual id range, not the
/// 64-bit width. `scratch` is resized as needed and may be reused across
/// calls.
void radix_sort_hi(std::span<U128> records, std::vector<U128>& scratch);

/// radix_sort_hi with the OR / AND of every record's `hi` precomputed by
/// the caller (the batch engine accumulates both for free while staging),
/// skipping the mask-discovery pass over the data. Digits whose bits agree
/// across all records — e.g. the shard-constant low vertex bits of a
/// sharded staging pass — contribute no ordering and are skipped entirely.
void radix_sort_hi(std::span<U128> records, std::vector<U128>& scratch,
                   std::uint64_t hi_or_mask, std::uint64_t hi_and_mask);

/// Per-segment comparison sort (parallel over segments): the "sort each
/// adjacency list independently" alternative. Exposed for the ablation in
/// the sort micro-bench.
void per_segment_sort(std::span<std::uint32_t> values,
                      std::span<const std::uint64_t> offsets);

/// True iff every segment is ascending.
bool segments_sorted(std::span<const std::uint32_t> values,
                     std::span<const std::uint64_t> offsets);

}  // namespace sg::sort
