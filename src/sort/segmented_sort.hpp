// Segmented sort — the CUB `DeviceSegmentedRadixSort` substitute used by
// Table VIII ("Hornet does not provide a GPU sort for their data structure,
// so we substitute CUB's segmented sort by key").
//
// The CUB-style path sorts the *whole* concatenated array by (segment, key)
// in one global pass — cheap per element but indifferent to segment sizes,
// which is why it loses badly to per-list sorts on road-like graphs and
// wins on scale-free ones (the Table VIII crossover).
#pragma once

#include <cstdint>
#include <span>

namespace sg::sort {

/// Sorts each segment of `values` ascending; segment s spans
/// [offsets[s], offsets[s+1]). One global (segment, value) radix-style sort,
/// mirroring CUB's device-wide segmented sort behaviour.
void segmented_sort(std::span<std::uint32_t> values,
                    std::span<const std::uint64_t> offsets);

/// Per-segment comparison sort (parallel over segments): the "sort each
/// adjacency list independently" alternative. Exposed for the ablation in
/// the sort micro-bench.
void per_segment_sort(std::span<std::uint32_t> values,
                      std::span<const std::uint64_t> offsets);

/// True iff every segment is ascending.
bool segments_sorted(std::span<const std::uint32_t> values,
                     std::span<const std::uint64_t> offsets);

}  // namespace sg::sort
