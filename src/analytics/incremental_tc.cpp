#include "src/analytics/incremental_tc.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/simt/thread_pool.hpp"

namespace sg::analytics {

namespace {

/// Order-free edge key; callers pass a < b.
inline std::uint64_t pack(core::VertexId a, core::VertexId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

inline std::uint64_t pack_norm(core::VertexId a, core::VertexId b) {
  return a < b ? pack(a, b) : pack(b, a);
}

/// Membership in a sorted key vector (the hash-free fast path: building an
/// unordered_set over a 100k-edge batch costs more than the delta itself).
inline bool contains(const std::vector<std::uint64_t>& sorted,
                     std::uint64_t key) {
  return std::binary_search(sorted.begin(), sorted.end(), key);
}

/// |N(u) ∩ N(v)| over ascending ranges, skipping triangles whose
/// lexicographically smallest new edge is not `ekey`.
std::uint64_t closed_by(std::span<const core::VertexId> nu,
                        std::span<const core::VertexId> nv,
                        core::VertexId u, core::VertexId v, std::uint64_t ekey,
                        const std::vector<std::uint64_t>& fresh) {
  std::uint64_t count = 0;
  auto iu = nu.begin();
  auto iv = nv.begin();
  while (iu != nu.end() && iv != nv.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      const core::VertexId w = *iu;
      const std::uint64_t e1 = pack_norm(u, w);
      const std::uint64_t e2 = pack_norm(v, w);
      const bool later_new = (e1 < ekey && contains(fresh, e1)) ||
                             (e2 < ekey && contains(fresh, e2));
      if (!later_new) ++count;
      ++iu;
      ++iv;
    }
  }
  return count;
}

}  // namespace

template <class Policy>
IncrementalTriangleCounter<Policy>::IncrementalTriangleCounter(
    core::DynGraph<Policy>& graph, std::uint64_t initial_triangles)
    : graph_(graph), count_(initial_triangles) {
  if (!graph.config().undirected) {
    throw std::invalid_argument(
        "IncrementalTriangleCounter needs GraphConfig::undirected — the "
        "intersect reads full neighborhoods, not out-edges");
  }
}

template <class Policy>
std::future<std::uint64_t> IncrementalTriangleCounter<Policy>::submit_batch(
    std::span<const core::Edge> edges, bool assume_new) {
  // Normalize to u < v, drop self-loops, dedup within the batch: the graph
  // stores each undirected edge once per direction and a duplicate insert
  // is a no-op, so duplicates would close the same triangles twice.
  std::vector<core::WeightedEdge> norm;
  norm.reserve(edges.size());
  for (const core::Edge& e : edges) {
    if (e.src == e.dst) continue;
    norm.push_back({std::min(e.src, e.dst), std::max(e.src, e.dst), 1});
  }
  std::sort(norm.begin(), norm.end(),
            [](const core::WeightedEdge& a, const core::WeightedEdge& b) {
              return pack(a.src, a.dst) < pack(b.src, b.dst);
            });
  norm.erase(std::unique(norm.begin(), norm.end(),
                         [](const core::WeightedEdge& a,
                            const core::WeightedEdge& b) {
                           return a.src == b.src && a.dst == b.dst;
                         }),
             norm.end());
  return submit_normalized(std::move(norm), assume_new);
}

template <class Policy>
std::future<std::uint64_t> IncrementalTriangleCounter<Policy>::submit_batch(
    std::span<const core::WeightedEdge> edges, bool assume_new) {
  // As the unweighted overload, but the weight (the stream timestamp)
  // survives normalization and duplicates keep the NEWEST one — matching
  // the graph's own most-recent-wins insert.
  std::vector<core::WeightedEdge> norm;
  norm.reserve(edges.size());
  for (const core::WeightedEdge& e : edges) {
    if (e.src == e.dst) continue;
    norm.push_back({std::min(e.src, e.dst), std::max(e.src, e.dst), e.weight});
  }
  std::sort(norm.begin(), norm.end(),
            [](const core::WeightedEdge& a, const core::WeightedEdge& b) {
              const std::uint64_t ka = pack(a.src, a.dst);
              const std::uint64_t kb = pack(b.src, b.dst);
              if (ka != kb) return ka < kb;
              return a.weight > b.weight;  // newest first, kept by unique
            });
  norm.erase(std::unique(norm.begin(), norm.end(),
                         [](const core::WeightedEdge& a,
                            const core::WeightedEdge& b) {
                           return a.src == b.src && a.dst == b.dst;
                         }),
             norm.end());
  return submit_normalized(std::move(norm), assume_new);
}

template <class Policy>
std::future<std::uint64_t>
IncrementalTriangleCounter<Policy>::submit_normalized(
    std::vector<core::WeightedEdge> norm, bool assume_new) {
  struct Epoch {
    std::vector<core::WeightedEdge> edges;
    std::future<std::vector<std::uint8_t>> exists;
    std::future<std::uint64_t> insert;
    std::promise<std::uint64_t> done;
  };
  auto epoch = std::make_shared<Epoch>();
  epoch->edges = std::move(norm);
  std::future<std::uint64_t> result = epoch->done.get_future();

  if (epoch->edges.empty()) {
    // Still fence through an analytics phase so the future resolves after
    // every earlier batch, preserving FIFO totals.
    graph_.submit_analytics([this, epoch]() {
      epoch->done.set_value(count_.load(std::memory_order_acquire));
    });
    return result;
  }

  // Pre-check BEFORE the insert lands: edges already present close no new
  // triangles and must not re-count old ones. An append-only unique stream
  // (assume_new) skips the phase — and its fence — entirely.
  if (!assume_new) {
    std::vector<core::Edge> probes;
    probes.reserve(epoch->edges.size());
    for (const core::WeightedEdge& e : epoch->edges) {
      probes.push_back({e.src, e.dst});
    }
    epoch->exists = graph_.submit_edges_exist(std::move(probes));
  }
  epoch->insert = graph_.submit_insert(epoch->edges);

  graph_.submit_analytics([this, epoch]() {
    try {
      std::vector<std::uint8_t> present;
      if (epoch->exists.valid()) present = epoch->exists.get();
      epoch->insert.get();  // propagate insert failures into our future

      std::vector<core::Edge> fresh;
      if (present.empty()) {
        fresh.reserve(epoch->edges.size());
        for (const core::WeightedEdge& e : epoch->edges) {
          fresh.push_back({e.src, e.dst});
        }
      } else {
        fresh.reserve(epoch->edges.size());
        for (std::size_t i = 0; i < epoch->edges.size(); ++i) {
          if (!present[i]) {
            fresh.push_back({epoch->edges[i].src, epoch->edges[i].dst});
          }
        }
      }
      if (fresh.empty()) {
        epoch->done.set_value(count_.load(std::memory_order_acquire));
        return;
      }
      // submit_batch sorted the batch by packed key and `fresh` is a
      // subsequence, so the key vector is born sorted — lookups are binary
      // searches, no hash container in the hot path.
      std::vector<std::uint64_t> fresh_keys;
      fresh_keys.reserve(fresh.size());
      for (const core::Edge& e : fresh) fresh_keys.push_back(pack(e.src, e.dst));

      // ONE bulk wave over the batch's endpoints only — per-epoch gather
      // cost follows the batch, not the graph. Endpoint slots resolve by
      // binary search into the sorted unique vertex list.
      std::vector<core::VertexId> verts;
      verts.reserve(fresh.size() * 2);
      for (const core::Edge& e : fresh) {
        verts.push_back(e.src);
        verts.push_back(e.dst);
      }
      std::sort(verts.begin(), verts.end());
      verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
      const auto slot_of = [&verts](core::VertexId v) {
        return static_cast<std::size_t>(
            std::lower_bound(verts.begin(), verts.end(), v) - verts.begin());
      };
      core::GatherResult adj = graph_.gather_neighbors(verts);
      // Block the parallel loops: one pool chunk per vertex/edge would pay
      // more dispatch than work on low-degree graphs.
      constexpr std::size_t kBlock = 256;
      auto& pool = simt::ThreadPool::instance();
      pool.parallel_for((verts.size() + kBlock - 1) / kBlock,
                        [&](std::uint64_t b) {
                          const std::size_t lo = b * kBlock;
                          const std::size_t hi =
                              std::min(lo + kBlock, verts.size());
                          for (std::size_t i = lo; i < hi; ++i) {
                            const auto slice = adj.mutable_neighbors_of(i);
                            std::sort(slice.begin(), slice.end());
                          }
                        });

      std::atomic<std::uint64_t> delta{0};
      pool.parallel_for(
          (fresh.size() + kBlock - 1) / kBlock, [&](std::uint64_t b) {
            const std::size_t lo = b * kBlock;
            const std::size_t hi = std::min(lo + kBlock, fresh.size());
            std::uint64_t local = 0;
            for (std::size_t i = lo; i < hi; ++i) {
              const core::Edge& e = fresh[i];
              local += closed_by(adj.neighbors_of(slot_of(e.src)),
                                 adj.neighbors_of(slot_of(e.dst)), e.src,
                                 e.dst, pack(e.src, e.dst), fresh_keys);
            }
            if (local) delta.fetch_add(local, std::memory_order_relaxed);
          });
      const std::uint64_t added = delta.load(std::memory_order_relaxed);
      epoch->done.set_value(
          count_.fetch_add(added, std::memory_order_acq_rel) + added);
    } catch (...) {
      epoch->done.set_exception(std::current_exception());
    }
  });
  return result;
}

template class IncrementalTriangleCounter<core::SetPolicy>;
template class IncrementalTriangleCounter<core::MapPolicy>;

}  // namespace sg::analytics
