#include "src/analytics/frontier.hpp"

#include <mutex>

#include "src/simt/thread_pool.hpp"

namespace sg::analytics {

Frontier advance(const Frontier& input, const NeighborFn& neighbors,
                 const std::function<bool(core::VertexId, core::VertexId)>& accept) {
  const auto& sources = input.vertices();
  std::vector<std::vector<core::VertexId>> partials;
  std::mutex partials_mutex;
  // Chunked expansion over the pool: each chunk accumulates locally and
  // publishes once, so accept() carries the only cross-thread contention.
  constexpr std::size_t kChunk = 64;
  const std::size_t num_chunks = (sources.size() + kChunk - 1) / kChunk;
  simt::ThreadPool::instance().parallel_for(num_chunks, [&](std::uint64_t c) {
    std::vector<core::VertexId> local;
    const std::size_t begin = static_cast<std::size_t>(c) * kChunk;
    const std::size_t end = std::min(begin + kChunk, sources.size());
    for (std::size_t i = begin; i < end; ++i) {
      const core::VertexId src = sources[i];
      neighbors(src, [&](core::VertexId dst) {
        if (accept(src, dst)) local.push_back(dst);
      });
    }
    if (!local.empty()) {
      std::lock_guard<std::mutex> lock(partials_mutex);
      partials.push_back(std::move(local));
    }
  });
  Frontier out;
  for (auto& part : partials) {
    for (core::VertexId v : part) out.push(v);
  }
  return out;
}

Frontier advance_bulk(
    const Frontier& input, const BulkNeighborFn& gather,
    const std::function<bool(core::VertexId, core::VertexId)>& accept) {
  const auto& sources = input.vertices();
  // One wave pass gathers every source's adjacency into disjoint slices of
  // a single buffer; the accept sweep then runs over source chunks with
  // the same local-accumulate / publish-once pattern as advance().
  std::vector<std::uint64_t> offsets;
  std::vector<core::VertexId> neighbors;
  gather(sources, offsets, neighbors);
  std::vector<std::vector<core::VertexId>> partials;
  std::mutex partials_mutex;
  constexpr std::size_t kChunk = 64;
  const std::size_t num_chunks = (sources.size() + kChunk - 1) / kChunk;
  simt::ThreadPool::instance().parallel_for(num_chunks, [&](std::uint64_t c) {
    std::vector<core::VertexId> local;
    const std::size_t begin = static_cast<std::size_t>(c) * kChunk;
    const std::size_t end = std::min(begin + kChunk, sources.size());
    for (std::size_t i = begin; i < end; ++i) {
      const core::VertexId src = sources[i];
      for (std::uint64_t n = offsets[i]; n < offsets[i + 1]; ++n) {
        if (accept(src, neighbors[n])) local.push_back(neighbors[n]);
      }
    }
    if (!local.empty()) {
      std::lock_guard<std::mutex> lock(partials_mutex);
      partials.push_back(std::move(local));
    }
  });
  Frontier out;
  for (auto& part : partials) {
    for (core::VertexId v : part) out.push(v);
  }
  return out;
}

Frontier filter(const Frontier& input,
                const std::function<bool(core::VertexId)>& pred) {
  Frontier out;
  for (core::VertexId v : input.vertices()) {
    if (pred(v)) out.push(v);
  }
  return out;
}

}  // namespace sg::analytics
