// Breadth-first search on any adjacency provider (frontier-based, level
// synchronous). Demonstrates running a Gunrock-style algorithm over the
// dynamic graph while it keeps changing between launches.
#pragma once

#include <cstdint>
#include <vector>

#include "src/analytics/frontier.hpp"

namespace sg::analytics {

inline constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;

/// Hop distance from `source` to every vertex (kUnreached if unreachable).
std::vector<std::uint32_t> bfs(std::uint32_t num_vertices,
                               const NeighborFn& neighbors,
                               core::VertexId source);

/// BFS on bulk waves: each level gathers the whole frontier's adjacency in
/// ONE pass (advance_bulk) instead of a callback per vertex. Identical
/// output to bfs(); pair with bulk_neighbors(graph).
std::vector<std::uint32_t> bfs_bulk(std::uint32_t num_vertices,
                                    const BulkNeighborFn& gather,
                                    core::VertexId source);

}  // namespace sg::analytics
