// Delta-driven dynamic triangle counting (Table IX, incremental regime):
// instead of recounting the whole graph after every batch, each batch of
// edge insertions contributes only the triangles it CLOSES. Per-epoch cost
// is proportional to the batch (the gathered adjacency of the batch's
// endpoints), not to the graph — the property Table IX's scaling column
// demonstrates.
//
// The counter rides the phase scheduler's FIFO fencing: one submit_batch
// call turns into three pipelined submissions,
//
//   submit_edges_exist(batch)   -- which edges are genuinely new?
//   submit_insert(batch)        -- mutation phase applies the batch
//   submit_analytics(delta)     -- fenced delta pass over the new state
//
// and the scheduler guarantees the analytics pass observes exactly the
// post-insert state while never overlapping the mutation. The delta pass
// gathers ONLY the batch endpoints' adjacency (one bulk gather wave),
// sorts the slices, and intersects N(u) ∩ N(v) per new edge.
//
// Triangles closed by MULTIPLE new edges of the same batch are counted by
// the lexicographically smallest new edge only: when edge e = (u, v) finds
// w in N(u) ∩ N(v), the triangle is skipped iff (u, w) or (v, w) is also
// new and packs below e. Every triangle has a unique smallest new edge, so
// each is counted exactly once.
//
// The counter is templated over the adjacency policy: the set variant is
// the Table IX configuration; the MAP variant serves the temporal
// streaming harness (src/stream/), where the stored weight is the edge's
// timestamp — the weighted submit_batch overload preserves it (newest ts
// wins within a batch), so counting and window aging share one graph.
//
// Contract: insert-only streams, one submitting thread, undirected graph
// (GraphConfig::undirected = true). Deletions would need the symmetric
// decrement pass; the harness in dynamic_triangle_count.cpp only streams
// insertions, matching the paper's Table IX setup.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <span>
#include <vector>

#include "src/core/dyn_graph.hpp"

namespace sg::analytics {

template <class Policy>
class IncrementalTriangleCounter {
 public:
  /// `graph` must outlive the counter and be configured undirected (the
  /// intersect needs full neighborhoods, not out-edges). A non-empty graph
  /// is fine: pass its current triangle count (e.g. one
  /// tc_slabgraph_bulk() after the preload) as `initial_triangles` so the
  /// running total stays absolute.
  /// \throws std::invalid_argument if `graph` is directed.
  explicit IncrementalTriangleCounter(core::DynGraph<Policy>& graph,
                                      std::uint64_t initial_triangles = 0);

  /// Streams one batch: pre-check + insert + fenced delta pass. The future
  /// resolves to the RUNNING triangle total after this batch lands (or
  /// carries the first failure of the three submissions). Call from a
  /// single thread; batches are fenced in submission order. Map graphs
  /// store weight 1 per edge — use the weighted overload to carry real
  /// per-edge metadata (timestamps).
  ///
  /// `assume_new` — set when the producer guarantees no batch edge already
  /// exists in the graph (an append-only unique stream): the exist
  /// pre-check phase (one fence + one query pass per epoch) is skipped.
  /// Feeding a duplicate under assume_new over-counts; leave it off when
  /// unsure.
  std::future<std::uint64_t> submit_batch(std::span<const core::Edge> edges,
                                          bool assume_new = false);

  /// Weighted overload for temporal streams (map graphs): weights — the
  /// stream's timestamps — ride into the graph unchanged, duplicates
  /// within the batch keep the NEWEST weight (the stream::SortMode
  /// presort convention), and the triangle delta is identical to the
  /// unweighted overload's.
  std::future<std::uint64_t> submit_batch(
      std::span<const core::WeightedEdge> edges, bool assume_new = false);

  /// Running total of all batches whose analytics pass has completed.
  std::uint64_t triangles() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  /// Shared pipeline: `norm` is normalized (src < dst), sorted by packed
  /// key, deduplicated. Runs exist → insert → fenced delta.
  std::future<std::uint64_t> submit_normalized(
      std::vector<core::WeightedEdge> norm, bool assume_new);

  core::DynGraph<Policy>& graph_;
  std::atomic<std::uint64_t> count_{0};
};

extern template class IncrementalTriangleCounter<core::SetPolicy>;
extern template class IncrementalTriangleCounter<core::MapPolicy>;

}  // namespace sg::analytics
