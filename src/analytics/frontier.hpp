// Minimal Gunrock-style frontier layer. The paper integrates its structure
// into Gunrock; this module supplies the same operator shape — advance
// (expand a frontier through adjacency lists) and filter (dedup/compact) —
// over any adjacency provider, so algorithms run unchanged on the dynamic
// graph, the baselines, or CSR.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/core/types.hpp"

namespace sg::analytics {

/// Adjacency provider: calls visit(dst) for each neighbour of u. The
/// adapter each structure implements to plug into the operators.
using NeighborFn =
    std::function<void(core::VertexId, const std::function<void(core::VertexId)>&)>;

/// Bulk adjacency provider: gathers the adjacency of EVERY source in one
/// pass into the count → prefix-sum → emit layout of
/// DynGraph::gather_neighbors — `offsets` gets sources.size() + 1 entries
/// and slice i of `neighbors` is source i's adjacency. One wave pass per
/// frontier instead of one callback per vertex.
using BulkNeighborFn = std::function<void(
    std::span<const core::VertexId>, std::vector<std::uint64_t>&,
    std::vector<core::VertexId>&)>;

/// Adapter binding a graph's gather_neighbors as a BulkNeighborFn (works
/// for DynGraphMap / DynGraphSet and anything exposing the same shape).
template <class Graph>
BulkNeighborFn bulk_neighbors(const Graph& graph) {
  return [&graph](std::span<const core::VertexId> sources,
                  std::vector<std::uint64_t>& offsets,
                  std::vector<core::VertexId>& neighbors) {
    graph.gather_neighbors(sources, offsets, neighbors);
  };
}

/// The active vertex set an operator round consumes and produces. A thin
/// vector wrapper: dedup is the advance step's `accept` contract, not a
/// property of the container.
class Frontier {
 public:
  Frontier() = default;
  explicit Frontier(std::vector<core::VertexId> vertices)
      : vertices_(std::move(vertices)) {}

  bool empty() const noexcept { return vertices_.empty(); }
  std::size_t size() const noexcept { return vertices_.size(); }
  const std::vector<core::VertexId>& vertices() const noexcept {
    return vertices_;
  }
  void push(core::VertexId v) { vertices_.push_back(v); }
  void clear() { vertices_.clear(); }

 private:
  std::vector<core::VertexId> vertices_;
};

/// Advance: expands `input` through `neighbors`; `accept(src, dst)` decides
/// (atomically, it may be called concurrently) whether dst joins the output
/// frontier. Returns the new frontier, deduplicated by accept's contract.
Frontier advance(const Frontier& input, const NeighborFn& neighbors,
                 const std::function<bool(core::VertexId, core::VertexId)>& accept);

/// Advance on waves: gathers the WHOLE frontier's adjacency in one bulk
/// pass (one SIMD chain walk per frontier vertex, pool-balanced by total
/// degree), then runs `accept` over the per-source slices in parallel
/// chunks. Same contract and output as advance() — accept must claim
/// membership atomically — with the per-vertex callback machinery gone.
Frontier advance_bulk(
    const Frontier& input, const BulkNeighborFn& gather,
    const std::function<bool(core::VertexId, core::VertexId)>& accept);

/// Filter: keeps vertices satisfying pred.
Frontier filter(const Frontier& input,
                const std::function<bool(core::VertexId)>& pred);

}  // namespace sg::analytics
