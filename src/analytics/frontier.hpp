// Minimal Gunrock-style frontier layer. The paper integrates its structure
// into Gunrock; this module supplies the same operator shape — advance
// (expand a frontier through adjacency lists) and filter (dedup/compact) —
// over any adjacency provider, so algorithms run unchanged on the dynamic
// graph, the baselines, or CSR.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/types.hpp"

namespace sg::analytics {

/// Adjacency provider: calls visit(dst) for each neighbour of u. The
/// adapter each structure implements to plug into the operators.
using NeighborFn =
    std::function<void(core::VertexId, const std::function<void(core::VertexId)>&)>;

class Frontier {
 public:
  Frontier() = default;
  explicit Frontier(std::vector<core::VertexId> vertices)
      : vertices_(std::move(vertices)) {}

  bool empty() const noexcept { return vertices_.empty(); }
  std::size_t size() const noexcept { return vertices_.size(); }
  const std::vector<core::VertexId>& vertices() const noexcept {
    return vertices_;
  }
  void push(core::VertexId v) { vertices_.push_back(v); }
  void clear() { vertices_.clear(); }

 private:
  std::vector<core::VertexId> vertices_;
};

/// Advance: expands `input` through `neighbors`; `accept(src, dst)` decides
/// (atomically, it may be called concurrently) whether dst joins the output
/// frontier. Returns the new frontier, deduplicated by accept's contract.
Frontier advance(const Frontier& input, const NeighborFn& neighbors,
                 const std::function<bool(core::VertexId, core::VertexId)>& accept);

/// Filter: keeps vertices satisfying pred.
Frontier filter(const Frontier& input,
                const std::function<bool(core::VertexId)>& pred);

}  // namespace sg::analytics
