#include "src/analytics/connected_components.hpp"

#include <unordered_set>

#include "src/simt/atomics.hpp"

namespace sg::analytics {

std::vector<std::uint32_t> connected_components(std::uint32_t num_vertices,
                                                const NeighborFn& neighbors) {
  std::vector<std::uint32_t> label(num_vertices);
  for (std::uint32_t v = 0; v < num_vertices; ++v) label[v] = v;
  // Label propagation: start from every vertex, push min labels until
  // quiescent. Atomic-min keeps concurrent relaxations monotone.
  Frontier frontier;
  for (std::uint32_t v = 0; v < num_vertices; ++v) frontier.push(v);
  while (!frontier.empty()) {
    frontier = advance(frontier, neighbors,
                       [&](core::VertexId src, core::VertexId dst) {
                         const std::uint32_t src_label =
                             simt::atomic_load(label[src]);
                         return simt::atomic_min(label[dst], src_label) >
                                src_label;
                       });
  }
  return label;
}

std::vector<std::uint32_t> connected_components_bulk(
    std::uint32_t num_vertices, const BulkNeighborFn& gather) {
  std::vector<std::uint32_t> label(num_vertices);
  for (std::uint32_t v = 0; v < num_vertices; ++v) label[v] = v;
  Frontier frontier;
  for (std::uint32_t v = 0; v < num_vertices; ++v) frontier.push(v);
  while (!frontier.empty()) {
    frontier = advance_bulk(frontier, gather,
                            [&](core::VertexId src, core::VertexId dst) {
                              const std::uint32_t src_label =
                                  simt::atomic_load(label[src]);
                              return simt::atomic_min(label[dst], src_label) >
                                     src_label;
                            });
  }
  return label;
}

std::uint32_t count_components(const std::vector<std::uint32_t>& labels) {
  std::unordered_set<std::uint32_t> distinct(labels.begin(), labels.end());
  return static_cast<std::uint32_t>(distinct.size());
}

}  // namespace sg::analytics
