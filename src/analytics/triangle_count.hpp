// Triangle counting (§V-C / §VI-C): the application used to compare the
// query-operation tradeoff. A triangle is an unordered triple u < v < w
// with all three edges present (graphs are undirected, both directions
// stored). Every implementation counts the same quantity:
//
//   * sorted-list structures (CSR, Hornet, faimGraph): for each u and each
//     neighbour v > u, two-pointer intersect the suffixes of N(u) and N(v)
//     above v — the "find the starting location ... then serially walk to
//     the end of the lists" intersect of §VI-C1.
//   * the hash-based dynamic graph: for each u, probe edgeExist(v, w) for
//     every wedge v < w in N(u) above u — "we perform an edgeExist query
//     for all edges".
#pragma once

#include <cstdint>

#include "src/baselines/csr/csr.hpp"
#include "src/baselines/faim/faim_graph.hpp"
#include "src/baselines/hornet/hornet_graph.hpp"
#include "src/core/dyn_graph.hpp"

namespace sg::analytics {

/// Sorted-intersect triangle count on CSR (adjacency must be sorted).
std::uint64_t tc_csr(const baselines::Csr& csr);

/// Sorted-intersect TC on Hornet (call sort_adjacency_lists() first; the
/// sort is *not* part of TC time, matching the paper's methodology).
std::uint64_t tc_hornet(const baselines::hornet::HornetGraph& graph);

/// Sorted-intersect TC on faimGraph (page-walking gathers included).
std::uint64_t tc_faim(const baselines::faim::FaimGraph& graph);

/// edgeExist-probing TC on the hash-based dynamic graph (set variant).
std::uint64_t tc_slabgraph(const core::DynGraphSet& graph);

/// Same probing algorithm on the map variant (ablation: Bc 15 vs 30).
std::uint64_t tc_slabgraph_map(const core::DynGraphMap& graph);

/// Bulk-engine TC on the dynamic graph: ONE gather_neighbors wave
/// extracts every adjacency list into a single buffer (count →
/// prefix-sum → emit), slices sort in parallel, and the sorted-intersect
/// sweep runs straight off the gather output — replacing the O(d^2)
/// edgeExist wedge probing with the same intersect the static baselines
/// use. Identical count to tc_slabgraph.
std::uint64_t tc_slabgraph_bulk(const core::DynGraphSet& graph);

/// Bulk-engine TC on the map variant.
std::uint64_t tc_slabgraph_bulk_map(const core::DynGraphMap& graph);

}  // namespace sg::analytics
