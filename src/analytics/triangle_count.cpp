#include "src/analytics/triangle_count.hpp"

#include <algorithm>
#include <atomic>
#include <span>
#include <vector>

#include "src/simt/thread_pool.hpp"

namespace sg::analytics {

namespace {

/// |{w in a ∩ b : w > floor}| for ascending ranges a and b.
std::uint64_t intersect_above(std::span<const core::VertexId> a,
                              std::span<const core::VertexId> b,
                              core::VertexId floor) {
  auto ia = std::upper_bound(a.begin(), a.end(), floor);
  auto ib = std::upper_bound(b.begin(), b.end(), floor);
  std::uint64_t count = 0;
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

/// Generic sorted-intersect driver: `list(u)` returns u's ascending
/// adjacency as a materialized vector or span.
template <typename ListFn>
std::uint64_t intersect_tc(std::uint32_t num_vertices, ListFn list) {
  std::atomic<std::uint64_t> triangles{0};
  simt::ThreadPool::instance().parallel_for(num_vertices, [&](std::uint64_t u) {
    const auto nu = list(static_cast<core::VertexId>(u));
    std::uint64_t local = 0;
    for (core::VertexId v : nu) {
      if (v <= u) continue;
      const auto nv = list(v);
      local += intersect_above({nu.data(), nu.size()},
                               {nv.data(), nv.size()},
                               v);
    }
    if (local) triangles.fetch_add(local, std::memory_order_relaxed);
  });
  return triangles.load(std::memory_order_relaxed);
}

}  // namespace

std::uint64_t tc_csr(const baselines::Csr& csr) {
  std::atomic<std::uint64_t> triangles{0};
  simt::ThreadPool::instance().parallel_for(csr.num_vertices(),
                                            [&](std::uint64_t u) {
    const auto nu = csr.neighbors(static_cast<core::VertexId>(u));
    std::uint64_t local = 0;
    for (core::VertexId v : nu) {
      if (v <= u) continue;
      local += intersect_above(nu, csr.neighbors(v), v);
    }
    if (local) triangles.fetch_add(local, std::memory_order_relaxed);
  });
  return triangles.load(std::memory_order_relaxed);
}

std::uint64_t tc_hornet(const baselines::hornet::HornetGraph& graph) {
  std::atomic<std::uint64_t> triangles{0};
  simt::ThreadPool::instance().parallel_for(graph.num_vertices(),
                                            [&](std::uint64_t u) {
    const auto nu = graph.neighbors(static_cast<core::VertexId>(u));
    std::uint64_t local = 0;
    for (core::VertexId v : nu) {
      if (v <= u) continue;
      local += intersect_above(nu, graph.neighbors(v), v);
    }
    if (local) triangles.fetch_add(local, std::memory_order_relaxed);
  });
  return triangles.load(std::memory_order_relaxed);
}

std::uint64_t tc_faim(const baselines::faim::FaimGraph& graph) {
  // Page-walking gathers are deliberately inside the timed region: that is
  // the cost of consuming faimGraph's paged lists.
  return intersect_tc(graph.num_vertices(), [&](core::VertexId u) {
    return graph.neighbors(u);
  });
}

namespace {

template <typename Graph>
std::uint64_t probing_tc(const Graph& graph) {
  const std::uint32_t n = graph.vertex_capacity();
  std::atomic<std::uint64_t> triangles{0};
  simt::ThreadPool::instance().parallel_for(n, [&](std::uint64_t u) {
    // Gather N(u) above u, then probe every wedge (v, w), v < w.
    std::vector<core::VertexId> above;
    graph.for_each_neighbor(static_cast<core::VertexId>(u),
                            [&](core::VertexId v, core::Weight) {
                              if (v > u) above.push_back(v);
                            });
    std::sort(above.begin(), above.end());
    std::uint64_t local = 0;
    for (std::size_t i = 0; i < above.size(); ++i) {
      for (std::size_t j = i + 1; j < above.size(); ++j) {
        if (graph.edge_exists(above[i], above[j])) ++local;
      }
    }
    if (local) triangles.fetch_add(local, std::memory_order_relaxed);
  });
  return triangles.load(std::memory_order_relaxed);
}

}  // namespace

std::uint64_t tc_slabgraph(const core::DynGraphSet& graph) {
  return probing_tc(graph);
}

std::uint64_t tc_slabgraph_map(const core::DynGraphMap& graph) {
  return probing_tc(graph);
}

namespace {

template <typename Graph>
std::uint64_t bulk_tc(const Graph& graph) {
  const std::uint32_t n = graph.vertex_capacity();
  std::vector<core::VertexId> ids(n);
  for (std::uint32_t u = 0; u < n; ++u) ids[u] = u;
  // One bulk wave extracts the whole graph's adjacency; slices then sort
  // in place, in parallel, and feed the same two-pointer intersect the
  // sorted-list baselines use.
  core::GatherResult adj = graph.gather_neighbors(ids);
  // Blocked loops: one pool chunk per vertex pays more dispatch than work
  // on low-degree graphs.
  constexpr std::uint32_t kBlock = 256;
  const std::uint64_t blocks = (std::uint64_t{n} + kBlock - 1) / kBlock;
  auto& pool = simt::ThreadPool::instance();
  pool.parallel_for(blocks, [&](std::uint64_t b) {
    const std::uint32_t lo = static_cast<std::uint32_t>(b) * kBlock;
    const std::uint32_t hi = std::min(lo + kBlock, n);
    for (std::uint32_t u = lo; u < hi; ++u) {
      const auto slice = adj.mutable_neighbors_of(u);
      std::sort(slice.begin(), slice.end());
    }
  });
  std::atomic<std::uint64_t> triangles{0};
  pool.parallel_for(blocks, [&](std::uint64_t b) {
    const std::uint32_t lo = static_cast<std::uint32_t>(b) * kBlock;
    const std::uint32_t hi = std::min(lo + kBlock, n);
    std::uint64_t local = 0;
    for (std::uint32_t u = lo; u < hi; ++u) {
      const auto nu = adj.neighbors_of(u);
      for (core::VertexId v : nu) {
        if (v <= u) continue;
        local += intersect_above(nu, adj.neighbors_of(v), v);
      }
    }
    if (local) triangles.fetch_add(local, std::memory_order_relaxed);
  });
  return triangles.load(std::memory_order_relaxed);
}

}  // namespace

std::uint64_t tc_slabgraph_bulk(const core::DynGraphSet& graph) {
  return bulk_tc(graph);
}

std::uint64_t tc_slabgraph_bulk_map(const core::DynGraphMap& graph) {
  return bulk_tc(graph);
}

}  // namespace sg::analytics
