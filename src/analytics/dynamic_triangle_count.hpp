// Dynamic triangle counting (§V-C, Table IX): insert a batch, recount
// triangles, repeat — the end-to-end dynamic application. The harness runs
// the same edge stream through the hash-based structure (probing TC) and
// through Hornet (insert + re-sort + intersect TC; re-sorting after every
// batch is "the overhead of maintaining a sorted Hornet ... in order to
// perform a dynamic application that requires a sorted list").
#pragma once

#include <cstdint>
#include <vector>

#include "src/datasets/coo.hpp"

namespace sg::analytics {

struct DynamicTcRow {
  int iteration = 0;
  double insert_ms = 0.0;
  double tc_ms = 0.0;
  double cumulative_ms = 0.0;  ///< running total of insert + tc
  std::uint64_t triangles = 0;
};

struct DynamicTcResult {
  std::vector<DynamicTcRow> ours;
  std::vector<DynamicTcRow> hornet;
};

/// Streams `graph`'s edges in `iterations` equal batches (capped at
/// `batch_cap` directed edges per batch) through both structures.
DynamicTcResult run_dynamic_tc(const datasets::Coo& graph, int iterations,
                               std::size_t batch_cap);

}  // namespace sg::analytics
