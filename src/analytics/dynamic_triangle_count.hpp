// Dynamic triangle counting (§V-C, Table IX): stream edge batches, keep a
// triangle count current after every batch. The harness runs the same
// unique undirected edge stream (u < v, shuffled) three ways:
//
//   * ours/incremental — the delta pipeline: each batch rides one fenced
//     exist → insert → analytics epoch (IncrementalTriangleCounter), and
//     the analytics pass counts only triangles the batch CLOSES. Per-epoch
//     cost follows the batch, not the graph.
//   * recount — the paper's original regime on the same structure: insert
//     the batch synchronously, rehash long chains, recount from scratch
//     with edgeExist probing. The scalar-adjacency baseline the delta
//     pipeline is measured against.
//   * hornet — insert (both directions) + re-sort + intersect TC; the
//     re-sort after every batch is "the overhead of maintaining a sorted
//     Hornet ... in order to perform a dynamic application that requires a
//     sorted list".
#pragma once

#include <cstdint>
#include <vector>

#include "src/datasets/coo.hpp"

namespace sg::analytics {

struct DynamicTcRow {
  int iteration = 0;
  double insert_ms = 0.0;
  double tc_ms = 0.0;
  double cumulative_ms = 0.0;  ///< running total of insert + tc
  std::uint64_t triangles = 0;
};

struct DynamicTcResult {
  /// Delta pipeline. The fenced epoch interleaves the insert and the delta
  /// pass, so the split is not observable from outside: insert_ms is 0 and
  /// tc_ms holds the whole epoch (submit_batch → future resolved).
  std::vector<DynamicTcRow> ours;
  /// Full recount on the same structure (probing TC) — insert_ms covers
  /// insert + chain maintenance, tc_ms the recount.
  std::vector<DynamicTcRow> recount;
  std::vector<DynamicTcRow> hornet;
};

/// Preloads HALF of the graph's unique undirected edges (normalized
/// u < v, deduplicated, shuffled) into every structure untimed — the
/// dynamic application starts from an existing graph, as a streaming
/// system would — then streams the rest in `iterations` equal batches
/// capped at `batch_cap` unique edges. Every row's `triangles` is the
/// absolute running total after that batch; the three series agree
/// row-for-row.
DynamicTcResult run_dynamic_tc(const datasets::Coo& graph, int iterations,
                               std::size_t batch_cap);

}  // namespace sg::analytics
