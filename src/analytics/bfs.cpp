#include "src/analytics/bfs.hpp"

#include "src/simt/atomics.hpp"

namespace sg::analytics {

std::vector<std::uint32_t> bfs(std::uint32_t num_vertices,
                               const NeighborFn& neighbors,
                               core::VertexId source) {
  std::vector<std::uint32_t> dist(num_vertices, kUnreached);
  if (source >= num_vertices) return dist;
  dist[source] = 0;
  Frontier frontier({source});
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    frontier = advance(frontier, neighbors,
                       [&](core::VertexId, core::VertexId dst) {
                         // Atomic claim so each vertex joins one frontier.
                         std::uint32_t expected = kUnreached;
                         return simt::atomic_cas(dist[dst], expected, level) ==
                                kUnreached;
                       });
  }
  return dist;
}

std::vector<std::uint32_t> bfs_bulk(std::uint32_t num_vertices,
                                    const BulkNeighborFn& gather,
                                    core::VertexId source) {
  std::vector<std::uint32_t> dist(num_vertices, kUnreached);
  if (source >= num_vertices) return dist;
  dist[source] = 0;
  Frontier frontier({source});
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    frontier = advance_bulk(frontier, gather,
                            [&](core::VertexId, core::VertexId dst) {
                              std::uint32_t expected = kUnreached;
                              return simt::atomic_cas(dist[dst], expected,
                                                      level) == kUnreached;
                            });
  }
  return dist;
}

}  // namespace sg::analytics
