#include "src/analytics/dynamic_triangle_count.hpp"

#include <algorithm>

#include "src/analytics/triangle_count.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/util/prng.hpp"
#include "src/util/timer.hpp"

namespace sg::analytics {

DynamicTcResult run_dynamic_tc(const datasets::Coo& graph, int iterations,
                               std::size_t batch_cap) {
  DynamicTcResult result;
  if (iterations <= 0) return result;
  // The stream arrives in random order (a real edge stream is not grouped
  // by source); generators emit (src, dst)-sorted COO, so shuffle first.
  std::vector<core::WeightedEdge> stream = graph.edges;
  util::Xoshiro256 rng(0xD15EA5EULL);
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.below(i)]);
  }
  const std::size_t per_batch = std::min(
      batch_cap == 0 ? stream.size() : batch_cap,
      (stream.size() + iterations - 1) / static_cast<std::size_t>(iterations));
  const auto batches =
      datasets::split_batches({stream.data(), stream.size()}, per_batch);

  // Ours: set variant (TC needs no values), single bucket per vertex since
  // the stream's final degrees are unknown — the incremental regime.
  core::GraphConfig config;
  config.vertex_capacity = graph.num_vertices;
  core::DynGraphSet ours(config);
  baselines::hornet::HornetGraph hornet(graph.num_vertices);

  double ours_cumulative = 0.0;
  double hornet_cumulative = 0.0;
  for (int iter = 0; iter < iterations && iter < static_cast<int>(batches.size());
       ++iter) {
    const auto batch = batches[static_cast<std::size_t>(iter)];
    DynamicTcRow ours_row;
    ours_row.iteration = iter + 1;
    {
      // Insert + the §III chain-length maintenance (rehash tables whose
      // chains grew past one slab) count as the structure's update cost.
      util::Timer timer;
      ours.insert_edges(batch);
      ours.rehash_long_chains(1.0);
      ours_row.insert_ms = timer.milliseconds();
    }
    {
      util::Timer timer;
      ours_row.triangles = tc_slabgraph(ours);
      ours_row.tc_ms = timer.milliseconds();
    }
    ours_cumulative += ours_row.insert_ms + ours_row.tc_ms;
    ours_row.cumulative_ms = ours_cumulative;
    result.ours.push_back(ours_row);

    DynamicTcRow hornet_row;
    hornet_row.iteration = iter + 1;
    {
      util::Timer timer;
      hornet.insert_edges(batch);
      hornet_row.insert_ms = timer.milliseconds();
    }
    {
      // Maintaining sorted adjacency is part of Hornet's dynamic-TC cost.
      util::Timer timer;
      hornet.sort_adjacency_lists();
      hornet_row.triangles = tc_hornet(hornet);
      hornet_row.tc_ms = timer.milliseconds();
    }
    hornet_cumulative += hornet_row.insert_ms + hornet_row.tc_ms;
    hornet_row.cumulative_ms = hornet_cumulative;
    result.hornet.push_back(hornet_row);
  }
  return result;
}

}  // namespace sg::analytics
