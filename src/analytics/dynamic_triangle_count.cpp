#include "src/analytics/dynamic_triangle_count.hpp"

#include <algorithm>
#include <span>

#include "src/analytics/incremental_tc.hpp"
#include "src/analytics/triangle_count.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/util/prng.hpp"
#include "src/util/timer.hpp"

namespace sg::analytics {

DynamicTcResult run_dynamic_tc(const datasets::Coo& graph, int iterations,
                               std::size_t batch_cap) {
  DynamicTcResult result;
  if (iterations <= 0) return result;
  // COO carries both directions of every undirected edge; the stream is
  // the UNIQUE edge set, normalized to u < v and deduplicated, arriving in
  // random order (a real edge stream is not grouped by source).
  std::vector<core::Edge> stream;
  stream.reserve(graph.edges.size() / 2 + 1);
  for (const core::WeightedEdge& e : graph.edges) {
    if (e.src == e.dst) continue;
    stream.push_back({std::min(e.src, e.dst), std::max(e.src, e.dst)});
  }
  const auto edge_key = [](const core::Edge& e) {
    return (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
  };
  std::sort(stream.begin(), stream.end(),
            [&](const core::Edge& a, const core::Edge& b) {
              return edge_key(a) < edge_key(b);
            });
  stream.erase(std::unique(stream.begin(), stream.end()), stream.end());
  util::Xoshiro256 rng(0xD15EA5EULL);
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.below(i)]);
  }
  // Half the stream preloads untimed: the dynamic application runs against
  // an existing graph, and each timed batch is small relative to it — the
  // regime the delta pipeline exists for.
  const std::size_t preload = stream.size() / 2;
  const std::size_t tail = stream.size() - preload;
  const std::size_t per_batch = std::min(
      batch_cap == 0 ? tail : batch_cap,
      (tail + iterations - 1) / static_cast<std::size_t>(iterations));
  if (per_batch == 0) return result;

  // Both of ours store undirected (mirrored in place); single bucket per
  // vertex since the stream's final degrees are unknown — the incremental
  // regime. The delta pipeline needs the scheduler; the recount baseline
  // uses the synchronous API on its own instance.
  core::GraphConfig config;
  config.vertex_capacity = graph.num_vertices;
  config.undirected = true;
  core::DynGraphSet ours(config);
  core::DynGraphSet recount_graph(config);
  baselines::hornet::HornetGraph hornet(graph.num_vertices);
  {
    std::vector<core::WeightedEdge> weighted;
    weighted.reserve(preload);
    for (std::size_t i = 0; i < preload; ++i) {
      weighted.push_back({stream[i].src, stream[i].dst, 1});
    }
    ours.insert_edges(weighted);
    ours.rehash_long_chains(1.0);
    recount_graph.insert_edges(weighted);
    recount_graph.rehash_long_chains(1.0);
    std::vector<core::WeightedEdge> mirrored;
    mirrored.reserve(preload * 2);
    for (std::size_t i = 0; i < preload; ++i) {
      mirrored.push_back({stream[i].src, stream[i].dst, 1});
      mirrored.push_back({stream[i].dst, stream[i].src, 1});
    }
    hornet.insert_edges(mirrored);
    hornet.sort_adjacency_lists();
  }
  // One bulk count of the preloaded graph seeds the running total.
  IncrementalTriangleCounter counter(ours, tc_slabgraph_bulk(ours));

  double ours_cumulative = 0.0;
  double recount_cumulative = 0.0;
  double hornet_cumulative = 0.0;
  for (int iter = 0; iter < iterations; ++iter) {
    const std::size_t first =
        preload + static_cast<std::size_t>(iter) * per_batch;
    if (first >= stream.size()) break;
    const std::size_t count = std::min(per_batch, stream.size() - first);
    const std::span<const core::Edge> batch{stream.data() + first, count};

    DynamicTcRow ours_row;
    ours_row.iteration = iter + 1;
    {
      // One fenced epoch: insert (+ auto chain maintenance) then the delta
      // pass. The shuffled unique stream never repeats an edge, so the
      // exist pre-check is skipped (assume_new). The future resolves to
      // the running total.
      util::Timer timer;
      ours_row.triangles = counter.submit_batch(batch, /*assume_new=*/true).get();
      ours_row.tc_ms = timer.milliseconds();
    }
    ours_cumulative += ours_row.tc_ms;
    ours_row.cumulative_ms = ours_cumulative;
    result.ours.push_back(ours_row);

    DynamicTcRow recount_row;
    recount_row.iteration = iter + 1;
    {
      std::vector<core::WeightedEdge> weighted;
      weighted.reserve(batch.size());
      for (const core::Edge& e : batch) weighted.push_back({e.src, e.dst, 1});
      // Insert + the §III chain-length maintenance (rehash tables whose
      // chains grew past one slab) count as the structure's update cost.
      util::Timer timer;
      recount_graph.insert_edges(weighted);
      recount_graph.rehash_long_chains(1.0);
      recount_row.insert_ms = timer.milliseconds();
    }
    {
      util::Timer timer;
      recount_row.triangles = tc_slabgraph(recount_graph);
      recount_row.tc_ms = timer.milliseconds();
    }
    recount_cumulative += recount_row.insert_ms + recount_row.tc_ms;
    recount_row.cumulative_ms = recount_cumulative;
    result.recount.push_back(recount_row);

    DynamicTcRow hornet_row;
    hornet_row.iteration = iter + 1;
    {
      // Hornet stores directed halves explicitly: mirror the batch.
      std::vector<core::WeightedEdge> mirrored;
      mirrored.reserve(batch.size() * 2);
      for (const core::Edge& e : batch) {
        mirrored.push_back({e.src, e.dst, 1});
        mirrored.push_back({e.dst, e.src, 1});
      }
      util::Timer timer;
      hornet.insert_edges(mirrored);
      hornet_row.insert_ms = timer.milliseconds();
    }
    {
      // Maintaining sorted adjacency is part of Hornet's dynamic-TC cost.
      util::Timer timer;
      hornet.sort_adjacency_lists();
      hornet_row.triangles = tc_hornet(hornet);
      hornet_row.tc_ms = timer.milliseconds();
    }
    hornet_cumulative += hornet_row.insert_ms + hornet_row.tc_ms;
    hornet_row.cumulative_ms = hornet_cumulative;
    result.hornet.push_back(hornet_row);
  }
  ours.schedule_drain();
  return result;
}

}  // namespace sg::analytics
