// Connected components via frontier-based label propagation (HookShrink-
// style pointer jumping kept simple): another Gunrock-shaped consumer of
// the dynamic graph's adjacency iterator.
#pragma once

#include <cstdint>
#include <vector>

#include "src/analytics/frontier.hpp"

namespace sg::analytics {

/// Per-vertex component labels (label == smallest vertex id in component,
/// for vertices that have at least one edge or are < num_vertices).
std::vector<std::uint32_t> connected_components(std::uint32_t num_vertices,
                                                const NeighborFn& neighbors);

/// Label propagation on bulk waves: every round gathers the whole
/// frontier's adjacency in ONE pass (advance_bulk). Identical labels to
/// connected_components(); pair with bulk_neighbors(graph).
std::vector<std::uint32_t> connected_components_bulk(
    std::uint32_t num_vertices, const BulkNeighborFn& gather);

/// Number of distinct labels among `labels`.
std::uint32_t count_components(const std::vector<std::uint32_t>& labels);

}  // namespace sg::analytics
