#include "src/stream/temporal.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/datasets/suite.hpp"

namespace sg::stream {

namespace {

/// (src, dst) order with ts DESCENDING inside each pair, so the dedup
/// keeping the FIRST occurrence keeps the newest timestamp — the
/// dynograph_util presort/dedup idiom.
bool presort_less(const core::WeightedEdge& a, const core::WeightedEdge& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.dst != b.dst) return a.dst < b.dst;
  return a.weight > b.weight;
}

void dedup_keep_newest(std::vector<core::WeightedEdge>& edges) {
  std::sort(edges.begin(), edges.end(), presort_less);
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const core::WeightedEdge& a,
                             const core::WeightedEdge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());
}

}  // namespace

Dataset::Dataset(std::vector<TemporalEdge> edges, std::size_t batch_size)
    : edges_(std::move(edges)), batch_size_(batch_size) {
  if (edges_.empty()) {
    throw std::invalid_argument("stream::Dataset: empty edge stream");
  }
  if (batch_size_ == 0) {
    throw std::invalid_argument("stream::Dataset: batch_size must be > 0");
  }
  for (const TemporalEdge& e : edges_) {
    max_vertex_ = std::max({max_vertex_, e.src, e.dst});
  }
}

Dataset Dataset::from_coo(const datasets::Coo& coo, std::size_t batch_size) {
  std::vector<TemporalEdge> edges;
  edges.reserve(coo.edges.size());
  for (std::size_t i = 0; i < coo.edges.size(); ++i) {
    edges.push_back({coo.edges[i].src, coo.edges[i].dst,
                     static_cast<core::Weight>(i)});
  }
  return Dataset(std::move(edges), batch_size);
}

Dataset Dataset::from_rmat(const std::string& name, double scale,
                           std::uint64_t seed, std::size_t batch_size) {
  return from_coo(datasets::make_dataset(name, scale, seed), batch_size);
}

Dataset Dataset::from_file(const std::string& path, std::size_t batch_size) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("stream::Dataset: cannot open " + path);
  }
  std::vector<TemporalEdge> edges;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t src = 0, dst = 0;
    if (!(fields >> src >> dst)) {
      throw std::runtime_error("stream::Dataset: malformed line in " + path +
                               ": " + line);
    }
    // Optional columns: `weight ts` (DynoGraph's 4-column format) or a
    // bare `ts`; absent columns default the timestamp to arrival order.
    std::uint64_t a = 0, b = 0;
    core::Weight ts = static_cast<core::Weight>(edges.size());
    if (fields >> a) {
      ts = static_cast<core::Weight>((fields >> b) ? b : a);
    }
    edges.push_back({static_cast<core::VertexId>(src),
                     static_cast<core::VertexId>(dst), ts});
  }
  return Dataset(std::move(edges), batch_size);
}

std::vector<core::WeightedEdge> Dataset::batch(std::size_t id,
                                               SortMode mode) const {
  if (id >= num_batches()) {
    throw std::out_of_range("stream::Dataset::batch: batch id out of range");
  }
  const std::size_t begin = mode == SortMode::kSnapshot ? 0 : id * batch_size_;
  const std::size_t end = std::min((id + 1) * batch_size_, edges_.size());
  std::vector<core::WeightedEdge> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    out.push_back({edges_[i].src, edges_[i].dst, edges_[i].ts});
  }
  if (mode != SortMode::kUnsorted) dedup_keep_newest(out);
  return out;
}

core::Weight Dataset::timestamp_for_window(std::size_t id,
                                           double window_frac) const {
  if (window_frac <= 0.0 || window_frac > 1.0) {
    throw std::invalid_argument(
        "stream::Dataset: window_frac must be in (0, 1]");
  }
  if (id >= num_batches()) {
    throw std::out_of_range("stream::Dataset: batch id out of range");
  }
  const std::size_t end = std::min((id + 1) * batch_size_, edges_.size());
  const auto window_edges = static_cast<std::size_t>(
      window_frac * static_cast<double>(edges_.size()));
  // While the stream is shorter than the window, the whole prefix is live.
  if (window_edges == 0 || end <= window_edges) return edges_.front().ts;
  return edges_[end - window_edges].ts;
}

}  // namespace sg::stream
