// stream::Harness — the DynoGraph-style epoch replay loop (ROADMAP item:
// temporal streaming; docs/WORKLOADS.md "Sliding-window streaming").
//
// The harness owns a DynGraphMap (timestamps ride the weight slots) and
// replays a temporal Dataset batch by batch, each epoch running the full
// streaming cycle through the SCHEDULED API so every step is fenced by the
// phase scheduler:
//
//   1. ingest     — submit_insert(batch)           (mutation phase)
//   2. age        — submit_age_out(window ts)      (maintenance, fenced)
//   3. analytics  — submit_analytics(hook)         (analytics phase)
//   4. compact    — submit_compact()               (maintenance, every
//                                                   `compact_every` slides)
//
// SNAPSHOT mode replaces 1-2 with rebuild-per-epoch: a fresh graph
// bulk_builds the cumulative deduplicated prefix (the DynoGraph baseline
// incremental structures are measured against); aging and compaction are
// no-ops there by construction.
//
// Per-epoch EpochStats record throughput, retirement volume, live size,
// arena chunks, and process RSS — micro_stream derives stream_epoch_rate
// and the steady-state memory gate from exactly these numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/stream/temporal.hpp"

namespace sg::stream {

struct HarnessConfig {
  /// Batch preparation mode (see stream::SortMode). kSnapshot switches the
  /// harness to rebuild-per-epoch.
  SortMode sort_mode = SortMode::kPresort;
  /// Sliding-window size as a fraction of the whole stream; edges older
  /// than the window retire after each ingest. 0 disables aging
  /// (append-only ingest). Must be in [0, 1].
  double window_frac = 0.5;
  /// Arena compaction cadence: compact() runs after every `compact_every`
  /// window slides (0 disables). Compaction is what keeps steady-state
  /// RSS flat instead of riding the high-water mark.
  std::uint32_t compact_every = 4;
  /// Construction-time knobs of the underlying graph. The harness forces
  /// nothing: phase_scheduler = true (the default) runs the fenced
  /// pipeline above; false degrades every step to synchronous inline
  /// execution (the differential reference mode the tests compare).
  core::GraphConfig graph;
};

/// What one epoch did (one entry per replayed batch).
struct EpochStats {
  std::size_t batch_id = 0;
  std::uint64_t inserted = 0;       ///< new unique directed edges
  std::uint64_t aged_out = 0;       ///< directed edges retired by aging
  core::Weight age_threshold = 0;   ///< window threshold applied (0 = none)
  std::uint64_t released_chunks = 0;  ///< arena chunks returned by compact
  double insert_seconds = 0.0;
  double age_seconds = 0.0;
  double analytics_seconds = 0.0;
  double compact_seconds = 0.0;
  std::uint64_t live_edges = 0;     ///< graph size after the epoch
  std::uint64_t arena_chunks = 0;   ///< live 1 MiB arena chunks after
  std::uint64_t rss_bytes = 0;      ///< process RSS after (0 if unreadable)
};

class Harness {
 public:
  /// Read-only per-epoch analytics callback; runs inside a fenced
  /// analytics phase (submit_analytics), so bulk gathers and queries are
  /// safe without external locking.
  using AnalyticsHook = std::function<void(const core::DynGraphMap&)>;

  /// Takes the stream and the replay configuration. The graph is created
  /// up front (vertex capacity covering the stream) — except in kSnapshot
  /// mode, where each epoch rebuilds it.
  Harness(Dataset dataset, HarnessConfig config);

  /// Replays batch `id` (one epoch); `hook`, when set, runs fenced after
  /// ingest + aging. Epochs must be replayed in order.
  EpochStats run_epoch(std::size_t id, const AnalyticsHook& hook = {});

  /// Replays every batch in order; returns one EpochStats per batch.
  std::vector<EpochStats> run(const AnalyticsHook& hook = {});

  core::DynGraphMap& graph() { return *graph_; }
  const core::DynGraphMap& graph() const { return *graph_; }
  const Dataset& dataset() const { return dataset_; }
  const HarnessConfig& config() const { return config_; }

  /// Process resident-set size from /proc/self/statm (0 where
  /// unavailable) — the external memory ground truth micro_stream gates.
  static std::uint64_t process_rss_bytes();

 private:
  std::unique_ptr<core::DynGraphMap> make_graph() const;

  Dataset dataset_;
  HarnessConfig config_;
  std::unique_ptr<core::DynGraphMap> graph_;
  std::uint32_t slides_since_compact_ = 0;
};

}  // namespace sg::stream
