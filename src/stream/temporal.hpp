// Temporal edge streams (DynoGraph-style): the workload side of the
// sliding-window streaming regime (docs/WORKLOADS.md "Sliding-window
// streaming").
//
// A stream is an edge list in ARRIVAL ORDER, each edge carrying a
// timestamp. The graph stores the timestamp as the edge's weight — the
// public types document w as "standing in for any per-edge meta-data"
// (src/core/types.hpp) — so most-recent-wins insertion gives re-inserted
// edges a refreshed timestamp for free, and
// DynGraph::delete_edges_older_than reads timestamps back through the
// batched weight lookup.
//
// Batch preparation follows dynograph_util's three modes:
//   * UNSORTED — the raw arrival-order slice (worst-case locality);
//   * PRESORT — the slice sorted by (src, dst) with cross-duplicate
//     resolution keeping the NEWEST timestamp (the engine's staging sort
//     gets pre-sorted input, isolating structure cost from sort cost);
//   * SNAPSHOT — the cumulative deduplicated prefix, for rebuild-per-epoch
//     baselines (bulk_build of each window, no incremental mutation).
//
// timestamp_for_window is dynograph_util's getTimestampForWindow: the
// aging threshold that keeps the most recent `window_frac` of the stream
// live once the stream has advanced past the window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.hpp"
#include "src/datasets/coo.hpp"

namespace sg::stream {

/// One stream element: a directed edge observed at time `ts`.
struct TemporalEdge {
  core::VertexId src = 0;
  core::VertexId dst = 0;
  core::Weight ts = 0;

  friend bool operator==(const TemporalEdge&, const TemporalEdge&) = default;
};

/// Batch preparation mode (dynograph_util's sort_mode).
enum class SortMode : std::uint8_t {
  kUnsorted,  ///< raw arrival-order slice
  kPresort,   ///< slice sorted by (src, dst), duplicates keep newest ts
  kSnapshot,  ///< cumulative deduplicated prefix (rebuild-per-epoch)
};

/// A finite timestamped edge stream, replayed in fixed-size batches.
class Dataset {
 public:
  /// Takes a prepared stream. `batch_size` fixes the epoch granularity;
  /// the last batch may be short. Throws std::invalid_argument on an
  /// empty stream or zero batch size.
  Dataset(std::vector<TemporalEdge> edges, std::size_t batch_size);

  /// Wraps a static COO as a stream: edges arrive in storage order with
  /// ts = arrival index (dynograph_util does the same for untimestamped
  /// inputs). Undirected COOs carry both directions; both get the same
  /// arrival semantics the graph's undirected mode expects — pass each
  /// edge once and let the structure mirror.
  static Dataset from_coo(const datasets::Coo& coo, std::size_t batch_size);

  /// Generates a synthetic stream from the bench suite
  /// (datasets::make_dataset): the named analog's edges in generation
  /// order, ts = arrival index. Deterministic in (name, scale, seed).
  static Dataset from_rmat(const std::string& name, double scale,
                           std::uint64_t seed, std::size_t batch_size);

  /// Parses a whitespace-delimited edge file: `src dst [weight] [ts]`
  /// per line (the 4-column DynoGraph format, or 2/3 columns with ts
  /// defaulting to the arrival index). '#' or '%' lines are comments.
  /// Throws std::runtime_error on open failure or a malformed line.
  static Dataset from_file(const std::string& path, std::size_t batch_size);

  std::size_t num_edges() const noexcept { return edges_.size(); }
  std::size_t batch_size() const noexcept { return batch_size_; }
  std::size_t num_batches() const noexcept {
    return (edges_.size() + batch_size_ - 1) / batch_size_;
  }
  /// Largest vertex id appearing anywhere in the stream.
  core::VertexId max_vertex_id() const noexcept { return max_vertex_; }
  const std::vector<TemporalEdge>& edges() const noexcept { return edges_; }

  /// Materializes batch `id` under `mode` as the weighted-edge batch the
  /// graph ingests (weight = timestamp). kSnapshot returns the cumulative
  /// deduplicated prefix through the END of batch `id` (newest ts wins).
  std::vector<core::WeightedEdge> batch(std::size_t id, SortMode mode) const;

  /// dynograph_util::getTimestampForWindow: the aging threshold after
  /// batch `id` for a window of `window_frac` of the whole stream.
  /// Deleting ts < threshold keeps the newest window_frac * num_edges()
  /// stream positions live; while the stream is still shorter than the
  /// window, returns the oldest timestamp (nothing ages). `window_frac`
  /// outside (0, 1] throws std::invalid_argument.
  core::Weight timestamp_for_window(std::size_t id, double window_frac) const;

 private:
  std::vector<TemporalEdge> edges_;  ///< arrival order
  std::size_t batch_size_ = 0;
  core::VertexId max_vertex_ = 0;
};

}  // namespace sg::stream
