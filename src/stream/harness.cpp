#include "src/stream/harness.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "src/util/timer.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace sg::stream {

Harness::Harness(Dataset dataset, HarnessConfig config)
    : dataset_(std::move(dataset)), config_(std::move(config)) {
  if (config_.window_frac < 0.0 || config_.window_frac > 1.0) {
    throw std::invalid_argument("stream::Harness: window_frac not in [0, 1]");
  }
  graph_ = make_graph();
}

std::unique_ptr<core::DynGraphMap> Harness::make_graph() const {
  core::GraphConfig cfg = config_.graph;
  cfg.vertex_capacity =
      std::max(cfg.vertex_capacity, dataset_.max_vertex_id() + 1);
  return std::make_unique<core::DynGraphMap>(cfg);
}

std::uint64_t Harness::process_rss_bytes() {
#if defined(__linux__)
  std::ifstream statm("/proc/self/statm");
  std::uint64_t pages_total = 0, pages_resident = 0;
  if (statm >> pages_total >> pages_resident) {
    return pages_resident * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  }
#endif
  return 0;
}

EpochStats Harness::run_epoch(std::size_t id, const AnalyticsHook& hook) {
  EpochStats stats;
  stats.batch_id = id;
  if (config_.sort_mode == SortMode::kSnapshot) {
    // Rebuild-per-epoch baseline: a fresh graph bulk-builds the cumulative
    // deduplicated prefix. No aging, no compaction — the rebuild IS the
    // window (and its cost is what the incremental path is measured
    // against).
    util::Timer build_timer;
    graph_ = make_graph();
    const auto snapshot = dataset_.batch(id, SortMode::kSnapshot);
    graph_->bulk_build(snapshot);
    stats.inserted = snapshot.size();
    stats.insert_seconds = build_timer.seconds();
  } else {
    util::Timer insert_timer;
    stats.inserted =
        graph_->submit_insert(dataset_.batch(id, config_.sort_mode)).get();
    stats.insert_seconds = insert_timer.seconds();
    if (config_.window_frac > 0.0) {
      stats.age_threshold =
          dataset_.timestamp_for_window(id, config_.window_frac);
      util::Timer age_timer;
      stats.aged_out = graph_->submit_age_out(stats.age_threshold).get();
      stats.age_seconds = age_timer.seconds();
      if (config_.compact_every != 0 &&
          ++slides_since_compact_ >= config_.compact_every) {
        slides_since_compact_ = 0;
        util::Timer compact_timer;
        stats.released_chunks = graph_->submit_compact().get();
        stats.compact_seconds = compact_timer.seconds();
      }
    }
  }
  if (hook) {
    util::Timer analytics_timer;
    const core::DynGraphMap& g = *graph_;
    graph_->submit_analytics([&hook, &g] { hook(g); }).get();
    stats.analytics_seconds = analytics_timer.seconds();
  }
  stats.live_edges = graph_->num_edges();
  stats.arena_chunks = graph_->arena_stats().reserved_slabs /
                       memory::SlabArena::kChunkSlabs;
  stats.rss_bytes = process_rss_bytes();
  return stats;
}

std::vector<EpochStats> Harness::run(const AnalyticsHook& hook) {
  std::vector<EpochStats> all;
  all.reserve(dataset_.num_batches());
  for (std::size_t id = 0; id < dataset_.num_batches(); ++id) {
    all.push_back(run_epoch(id, hook));
  }
  return all;
}

}  // namespace sg::stream
