// Durable snapshots (docs/ROBUSTNESS.md, "Durability").
//
// snapshot() serializes a DynGraph to a versioned, section-checksummed
// file riding the bulk analytics gather (gather_neighbors) for adjacency
// extraction and the batched weight lookup for the map variant's values;
// restore_into() rebuilds an empty graph from the file through the batch
// engine (insert_vertices with exact degree hints, then chunked
// insert_edges). The writer goes through a temp file plus atomic rename,
// so a crash mid-write never damages an existing snapshot.
//
// File layout (little-endian; src/persist/wire.hpp):
//
//   header (16 B): magic u64 "SGSNAP01" | version u32 | flags u32
//                  (flags bit 0 = weighted/map variant, bit 1 = undirected)
//   sections, each: kind u32 | crc u32 (CRC32 of payload) | payload u64 | payload
//     META (32 B): journal_seq u64 | live_vertices u64 | directed_edges u64 |
//                  vertex_capacity u32 | pad u32
//     VERT: (id, degree) u32 pairs, one per live vertex, ascending id
//     ADJA: concatenated adjacency lists in VERT order (u32 ids)
//     WGHT: weights aligned 1:1 with ADJA (map variant only)
//
// META's journal_seq is the write-ahead journal cursor at the cut:
// recovery replays only journal records with a larger sequence number.
// Undirected graphs snapshot both stored orientations; restore emits only
// the src < dst orientation and lets insert_edges recreate the mirror.
//
// Consistency: snapshot() is a READ of the whole structure — callers must
// not mutate concurrently (the phase-concurrent contract). Use
// DynGraph::submit_snapshot for an epoch-consistent cut under concurrent
// submitters: it runs the write inside a fenced analytics phase.
#pragma once

#include <cstdint>
#include <string>

#include "src/persist/errors.hpp"

namespace sg::core {
template <class Policy>
class DynGraph;
struct MapPolicy;
struct SetPolicy;
}  // namespace sg::core

namespace sg::persist {

/// What a snapshot/restore moved (and the journal cut it carries).
struct SnapshotStats {
  std::uint64_t vertices = 0;        ///< live vertices written/restored
  std::uint64_t directed_edges = 0;  ///< stored directed edges (undirected x2)
  std::uint64_t file_bytes = 0;
  std::uint64_t journal_seq = 0;     ///< journal cursor at the cut
};

/// Writes `graph` to `path` (write-to-temp + atomic rename; the temp file
/// is `path` + ".tmp"). Throws IoError on a write failure — an existing
/// snapshot at `path` is left intact.
template <class Policy>
SnapshotStats snapshot(const core::DynGraph<Policy>& graph,
                       const std::string& path);

/// Rebuilds `graph` (which must be freshly constructed — no edges) from
/// the snapshot at `path`, validates the restored edge count against META,
/// and advances the graph's journal cursor to the snapshot's cut. Throws
/// CorruptSnapshot on any validation failure (format, section CRC, variant
/// or directedness mismatch against the graph's config, post-restore
/// integrity re-check) and IoError if the file cannot be read.
template <class Policy>
SnapshotStats restore_into(core::DynGraph<Policy>& graph,
                           const std::string& path);

extern template SnapshotStats snapshot(const core::DynGraph<core::MapPolicy>&,
                                       const std::string&);
extern template SnapshotStats snapshot(const core::DynGraph<core::SetPolicy>&,
                                       const std::string&);
extern template SnapshotStats restore_into(core::DynGraph<core::MapPolicy>&,
                                           const std::string&);
extern template SnapshotStats restore_into(core::DynGraph<core::SetPolicy>&,
                                           const std::string&);

}  // namespace sg::persist
