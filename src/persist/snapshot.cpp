#include "src/persist/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/persist/io_util.hpp"
#include "src/persist/wire.hpp"
#include "src/util/crc32.hpp"
#include "src/util/fault_injection.hpp"

namespace sg::persist {
namespace {

// "SGSNAP01" as a little-endian u64.
constexpr std::uint64_t kSnapMagic = 0x313050414E534753ull;
constexpr std::uint32_t kSnapVersion = 1;
constexpr std::uint32_t kFlagWeighted = 1u << 0;
constexpr std::uint32_t kFlagUndirected = 1u << 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kSectionHeaderBytes = 16;

// Section fourccs ("META", "VERT", "ADJA", "WGHT") as little-endian u32.
constexpr std::uint32_t kSecMeta = 0x4154454Du;
constexpr std::uint32_t kSecVert = 0x54524556u;
constexpr std::uint32_t kSecAdja = 0x414A4441u;
constexpr std::uint32_t kSecWght = 0x54484757u;

constexpr std::size_t kMetaBytes = 32;

// Gather/restore chunk bounds: cap both the vertices per gather_neighbors
// call and the edges per insert_edges call so peak staging memory stays
// bounded regardless of graph shape.
constexpr std::size_t kChunkVertices = std::size_t{1} << 14;
constexpr std::uint64_t kChunkEdges = std::uint64_t{1} << 20;

void append_section(std::vector<std::uint8_t>& file, std::uint32_t kind,
                    const std::vector<std::uint8_t>& payload) {
  put_u32(file, kind);
  put_u32(file, util::crc32(payload.data(), payload.size()));
  put_u64(file, payload.size());
  file.insert(file.end(), payload.begin(), payload.end());
}

/// Writes the assembled file bytes to `path` via temp + rename, with the
/// kSnapshotWrite fault site simulating a crash mid-write (optionally
/// leaving the torn prefix a real crash would leave in the TEMP file —
/// the final path is only ever renamed-to whole).
void write_atomically(const std::string& path,
                      const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) detail::throw_errno("snapshot temp open failed (" + tmp + ")");
  try {
    if (SG_FAULT_FIRE(kSnapshotWrite)) {
      const std::uint32_t torn = SG_FAULT_TORN(kSnapshotWrite);
      if (torn != 0) {
        const std::size_t prefix = bytes.size() * torn / 1000;
        detail::write_all(fd, bytes.data(), prefix, "snapshot torn write");
      }
      throw IoError("injected fault: snapshot write (" + tmp + ")");
    }
    detail::write_all(fd, bytes.data(), bytes.size(), "snapshot write");
    if (::fsync(fd) != 0) detail::throw_errno("snapshot fsync failed");
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    detail::throw_errno("snapshot rename failed (" + tmp + " -> " + path + ")");
  }
}

struct Section {
  const std::uint8_t* data = nullptr;
  std::uint64_t bytes = 0;
  bool present = false;
};

Section find_section(const std::vector<std::uint8_t>& file, std::uint32_t kind,
                     const std::string& path) {
  std::size_t at = kHeaderBytes;
  while (at < file.size()) {
    if (file.size() - at < kSectionHeaderBytes) {
      throw CorruptSnapshot("snapshot section header cut short (" + path + ")");
    }
    const std::uint8_t* h = file.data() + at;
    const std::uint32_t sec_kind = get_u32(h);
    const std::uint32_t crc = get_u32(h + 4);
    const std::uint64_t bytes = get_u64(h + 8);
    if (file.size() - at - kSectionHeaderBytes < bytes) {
      throw CorruptSnapshot("snapshot section payload cut short (" + path +
                            ")");
    }
    const std::uint8_t* payload = h + kSectionHeaderBytes;
    if (sec_kind == kind) {
      if (util::crc32(payload, bytes) != crc) {
        throw CorruptSnapshot("snapshot section checksum mismatch (" + path +
                              ")");
      }
      return {payload, bytes, true};
    }
    at += kSectionHeaderBytes + bytes;
  }
  return {};
}

Section require_section(const std::vector<std::uint8_t>& file,
                        std::uint32_t kind, const std::string& path,
                        const char* name) {
  Section s = find_section(file, kind, path);
  if (!s.present) {
    throw CorruptSnapshot(std::string("snapshot missing section ") + name +
                          " (" + path + ")");
  }
  return s;
}

}  // namespace

template <class Policy>
SnapshotStats snapshot(const core::DynGraph<Policy>& graph,
                       const std::string& path) {
  // Live vertex scan first; adjacency is then gathered in bounded chunks
  // through the analytics bulk path (exact degrees size each slice).
  std::vector<core::VertexId> ids;
  const std::uint32_t cap = graph.vertex_capacity();
  for (std::uint32_t u = 0; u < cap; ++u) {
    if (graph.vertex_live(u)) ids.push_back(u);
  }

  std::vector<std::uint8_t> vert, adja, wght;
  vert.reserve(ids.size() * 8);
  std::uint64_t total_edges = 0;
  std::vector<core::Edge> weight_queries;
  std::vector<core::Weight> weights;
  for (std::size_t begin = 0; begin < ids.size();) {
    std::size_t end = begin;
    std::uint64_t chunk_deg = 0;
    do {
      chunk_deg += graph.degree(ids[end]);
      ++end;
    } while (end < ids.size() && end - begin < kChunkVertices &&
             chunk_deg < kChunkEdges);
    const std::span<const core::VertexId> chunk{ids.data() + begin,
                                                end - begin};
    const core::GatherResult gathered = graph.gather_neighbors(chunk);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const auto nbrs = gathered.neighbors_of(i);
      put_u32(vert, chunk[i]);
      put_u32(vert, static_cast<std::uint32_t>(nbrs.size()));
      for (const core::VertexId v : nbrs) put_u32(adja, v);
      total_edges += nbrs.size();
    }
    if constexpr (Policy::kHasValues) {
      weight_queries.clear();
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        for (const core::VertexId v : gathered.neighbors_of(i)) {
          weight_queries.push_back({chunk[i], v});
        }
      }
      weights.assign(weight_queries.size(), 0);
      graph.edge_weights(weight_queries, weights.data());
      for (const core::Weight w : weights) put_u32(wght, w);
    }
    begin = end;
  }

  const std::uint64_t seq = graph.journal_seq();
  std::vector<std::uint8_t> meta;
  meta.reserve(kMetaBytes);
  put_u64(meta, seq);
  put_u64(meta, ids.size());
  put_u64(meta, total_edges);
  put_u32(meta, cap);
  put_u32(meta, 0);  // pad

  std::vector<std::uint8_t> file;
  file.reserve(kHeaderBytes + 4 * kSectionHeaderBytes + meta.size() +
               vert.size() + adja.size() + wght.size());
  put_u64(file, kSnapMagic);
  put_u32(file, kSnapVersion);
  std::uint32_t flags = 0;
  if (Policy::kHasValues) flags |= kFlagWeighted;
  if (graph.config().undirected) flags |= kFlagUndirected;
  put_u32(file, flags);
  append_section(file, kSecMeta, meta);
  append_section(file, kSecVert, vert);
  append_section(file, kSecAdja, adja);
  if constexpr (Policy::kHasValues) append_section(file, kSecWght, wght);

  write_atomically(path, file);
  return {ids.size(), total_edges, file.size(), seq};
}

template <class Policy>
SnapshotStats restore_into(core::DynGraph<Policy>& graph,
                           const std::string& path) {
  if (graph.num_edges() != 0) {
    throw std::logic_error(
        "persist::restore_into requires a freshly constructed graph");
  }
  bool exists = false;
  const std::vector<std::uint8_t> file = detail::read_whole_file(path, exists);
  if (!exists) throw IoError("snapshot file missing (" + path + ")");
  if (file.size() < kHeaderBytes) {
    throw CorruptSnapshot("snapshot header cut short (" + path + ")");
  }
  if (get_u64(file.data()) != kSnapMagic) {
    throw CorruptSnapshot("snapshot magic mismatch (" + path + ")");
  }
  if (get_u32(file.data() + 8) != kSnapVersion) {
    throw CorruptSnapshot("snapshot version unsupported (" + path + ")");
  }
  const std::uint32_t flags = get_u32(file.data() + 12);
  if (((flags & kFlagWeighted) != 0) != Policy::kHasValues) {
    throw CorruptSnapshot(
        "snapshot variant mismatch: weighted flag does not match this "
        "graph's policy (" + path + ")");
  }
  if (((flags & kFlagUndirected) != 0) != graph.config().undirected) {
    throw CorruptSnapshot(
        "snapshot directedness mismatch against this graph's config (" +
        path + ")");
  }
  const bool undirected = (flags & kFlagUndirected) != 0;

  const Section meta = require_section(file, kSecMeta, path, "META");
  const Section vert = require_section(file, kSecVert, path, "VERT");
  const Section adja = require_section(file, kSecAdja, path, "ADJA");
  if (meta.bytes != kMetaBytes) {
    throw CorruptSnapshot("snapshot META size mismatch (" + path + ")");
  }
  const std::uint64_t journal_seq = get_u64(meta.data);
  const std::uint64_t live_vertices = get_u64(meta.data + 8);
  const std::uint64_t directed_edges = get_u64(meta.data + 16);
  const std::uint32_t vertex_capacity = get_u32(meta.data + 24);
  if (vert.bytes != live_vertices * 8) {
    throw CorruptSnapshot("snapshot VERT size mismatch (" + path + ")");
  }
  if (adja.bytes != directed_edges * 4) {
    throw CorruptSnapshot("snapshot ADJA size mismatch (" + path + ")");
  }
  Section wght;
  if constexpr (Policy::kHasValues) {
    wght = require_section(file, kSecWght, path, "WGHT");
    if (wght.bytes != directed_edges * 4) {
      throw CorruptSnapshot("snapshot WGHT size mismatch (" + path + ")");
    }
  }

  graph.reserve_vertices(vertex_capacity);
  std::vector<core::VertexId> ids(live_vertices);
  std::vector<std::uint32_t> degrees(live_vertices);
  for (std::uint64_t i = 0; i < live_vertices; ++i) {
    ids[i] = get_u32(vert.data + i * 8);
    degrees[i] = get_u32(vert.data + i * 8 + 4);
  }
  graph.insert_vertices(ids, degrees);

  // Adjacency replays through the batch engine in bounded chunks. For
  // undirected graphs only the src < dst orientation is emitted —
  // insert_edges recreates the mirror, and the stored degree sum already
  // counts both.
  std::vector<core::WeightedEdge> batch;
  batch.reserve(kChunkEdges);
  std::uint64_t at = 0;  // index into ADJA/WGHT entries
  std::uint64_t declared = 0;
  for (std::uint64_t i = 0; i < live_vertices; ++i) {
    const core::VertexId u = ids[i];
    const std::uint32_t deg = degrees[i];
    declared += deg;
    if (declared > directed_edges) {
      throw CorruptSnapshot("snapshot degrees exceed ADJA (" + path + ")");
    }
    for (std::uint32_t k = 0; k < deg; ++k, ++at) {
      const core::VertexId v = get_u32(adja.data + at * 4);
      if (undirected && u >= v) continue;
      core::Weight w = 0;
      if constexpr (Policy::kHasValues) w = get_u32(wght.data + at * 4);
      batch.push_back({u, v, w});
      if (batch.size() >= kChunkEdges) {
        graph.insert_edges(batch);
        batch.clear();
      }
    }
  }
  if (declared != directed_edges) {
    throw CorruptSnapshot("snapshot degrees disagree with ADJA (" + path + ")");
  }
  if (!batch.empty()) graph.insert_edges(batch);

  // Integrity re-check: the counters the restore rebuilt must equal the
  // totals the snapshot declared, or the file lied somewhere the CRCs
  // could not see (e.g. a duplicate neighbor entry).
  if (graph.num_edges() != directed_edges) {
    throw CorruptSnapshot(
        "snapshot integrity re-check failed: restored edge count " +
        std::to_string(graph.num_edges()) + " != declared " +
        std::to_string(directed_edges) + " (" + path + ")");
  }
  graph.advance_journal_seq(journal_seq);
  return {live_vertices, directed_edges, file.size(), journal_seq};
}

template SnapshotStats snapshot(const core::DynGraph<core::MapPolicy>&,
                                const std::string&);
template SnapshotStats snapshot(const core::DynGraph<core::SetPolicy>&,
                                const std::string&);
template SnapshotStats restore_into(core::DynGraph<core::MapPolicy>&,
                                    const std::string&);
template SnapshotStats restore_into(core::DynGraph<core::SetPolicy>&,
                                    const std::string&);

}  // namespace sg::persist
