// Typed failures of the durability subsystem (docs/ROBUSTNESS.md,
// "Durability").
//
// Three classes:
//  * IoError — the operating system refused a read/write/sync (or an
//    injected fault simulated one). The in-memory graph is intact; the
//    on-disk artifact may be partial (snapshots write to a temp file and
//    rename, so a previous snapshot is never damaged; a journal that
//    failed a write poisons itself and refuses further appends until
//    recovery).
//  * CorruptSnapshot — a snapshot file failed structural validation
//    (magic/version/section CRC) or its integrity re-check after restore.
//  * CorruptJournal — a journal record failed validation with valid data
//    AFTER it (mid-file corruption). A torn TAIL is not this error: a
//    final record cut short by a crash is expected damage and recovery
//    truncates to the last valid record instead (the torn-tail rule).
#pragma once

#include <stdexcept>
#include <string>

namespace sg::persist {

/// Base of every durability failure.
class PersistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An OS-level read/write/sync failed (or an injected I/O fault fired).
class IoError : public PersistError {
 public:
  using PersistError::PersistError;
};

/// Snapshot file failed validation (format, checksum, or post-restore
/// integrity re-check).
class CorruptSnapshot : public PersistError {
 public:
  using PersistError::PersistError;
};

/// Journal record failed validation with valid data after it — real
/// corruption, never silently truncated (contrast the torn-tail rule).
class CorruptJournal : public PersistError {
 public:
  using PersistError::PersistError;
};

}  // namespace sg::persist
