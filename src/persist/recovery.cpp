#include "src/persist/recovery.hpp"

#include <stdexcept>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/persist/journal.hpp"
#include "src/persist/snapshot.hpp"

namespace sg::persist {
namespace {

template <class Policy>
void apply_record(core::DynGraph<Policy>& graph, const Journal::Record& rec) {
  switch (rec.kind) {
    case RecordKind::kInsert:
      graph.insert_edges(rec.inserts);
      break;
    case RecordKind::kErase:
      graph.delete_edges(rec.erases);
      break;
    case RecordKind::kInsertVertices:
      graph.insert_vertices(rec.vertices, rec.degree_hints);
      break;
    case RecordKind::kDeleteVertices:
      graph.delete_vertices(rec.vertices);
      break;
  }
}

}  // namespace

template <class Policy>
RecoveryStats replay_journal(core::DynGraph<Policy>& graph,
                             const std::string& path) {
  if (graph.has_journal()) {
    throw std::logic_error(
        "persist::replay_journal: the graph has a journal attached — replay "
        "would re-journal every record; recover() attaches after replaying");
  }
  RecoveryStats stats;
  const Journal::ScanResult scanned = Journal::scan(path);
  for (const Journal::Record& rec : scanned.records) {
    if (rec.seq <= graph.journal_seq()) {
      ++stats.skipped_records;
      continue;
    }
    apply_record(graph, rec);
    graph.advance_journal_seq(rec.seq);
    ++stats.replayed_records;
  }
  stats.journal_seq = graph.journal_seq();
  return stats;
}

template <class Policy>
Recovered<Policy> recover(core::GraphConfig config,
                          const std::string& snapshot_path) {
  const std::string journal_path = config.journal_path;
  // The graph is built journal-less: restore and replay drive the normal
  // mutation paths, which must not append what is already durable.
  config.journal_path.clear();
  Recovered<Policy> out;
  out.graph = std::make_unique<core::DynGraph<Policy>>(std::move(config));

  if (!snapshot_path.empty()) {
    bool missing = false;
    try {
      const SnapshotStats snap = restore_into(*out.graph, snapshot_path);
      out.stats.snapshot_loaded = true;
      out.stats.snapshot_vertices = snap.vertices;
      out.stats.snapshot_edges = snap.directed_edges;
    } catch (const IoError&) {
      // A snapshot that was never written (crash before the first cut) is
      // a normal journal-only recovery, not an error. Corruption is NOT
      // swallowed: CorruptSnapshot propagates.
      missing = true;
    }
    if (missing && out.graph->num_edges() != 0) {
      throw IoError("snapshot restore failed mid-way (" + snapshot_path + ")");
    }
  }

  if (!journal_path.empty()) {
    const RecoveryStats replay = replay_journal(*out.graph, journal_path);
    out.stats.replayed_records = replay.replayed_records;
    out.stats.skipped_records = replay.skipped_records;
    out.graph->attach_journal(journal_path);
    out.stats.truncated_bytes = out.graph->journal_truncated_on_attach();
  }
  out.stats.journal_seq = out.graph->journal_seq();
  return out;
}

template RecoveryStats replay_journal(core::DynGraph<core::MapPolicy>&,
                                      const std::string&);
template RecoveryStats replay_journal(core::DynGraph<core::SetPolicy>&,
                                      const std::string&);
template Recovered<core::MapPolicy> recover<core::MapPolicy>(
    core::GraphConfig, const std::string&);
template Recovered<core::SetPolicy> recover<core::SetPolicy>(
    core::GraphConfig, const std::string&);

}  // namespace sg::persist
