// Write-ahead batch journal (docs/ROBUSTNESS.md, "Durability").
//
// An append-only file of CRC32-checked, monotonically sequence-numbered
// records, one per committed mutation batch. DynGraph appends a record
// AFTER a batch commits in memory and BEFORE the call returns (before a
// submit_* future resolves), so a future that resolved successfully names
// a batch that is in the journal; a PartialBatchError abort appends the
// batch's exact committed prefix instead. Recovery (persist::recover)
// loads the latest snapshot and replays the journal suffix.
//
// File layout (all fields little-endian; src/persist/wire.hpp):
//
//   file header (16 B): magic u64 "SGJRNL01" | version u32 | flags u32
//   record (24 B + payload):
//     rec magic u32 "SGRC" | kind u8 | pad u8[3] | seq u64 |
//     payload_bytes u32 | crc u32 | payload
//
// The CRC covers kind..payload_bytes plus the payload, so any bit of a
// record except its magic is checked. Payloads are arrays of fixed-width
// tuples: kInsert = (src, dst, weight) u32 triples (the set variant writes
// weight 0 — one uniform format for both graph variants), kErase =
// (src, dst) pairs, kInsertVertices = (id, degree_hint) pairs,
// kDeleteVertices = ids.
//
// The torn-tail rule: scan() accepts a final record that is cut short or
// fails its CRC AT END-OF-FILE as a torn tail (the shape a crash mid-append
// leaves) and reports where the valid prefix ends; attaching truncates the
// file there. A record that fails validation with MORE DATA AFTER IT is
// mid-file corruption and throws CorruptJournal — never silently dropped.
//
// A Journal whose append or sync failed (I/O error, injected fault)
// POISONS itself: the file may end in a torn record, so further appends
// would write garbage mid-file. Every later append throws IoError until
// the graph is recovered through persist::recover(), which repairs the
// tail. Appends are internally serialized (one mutex) — the graph calls
// them under its own batch serialization anyway, the lock just keeps
// vertex-op records well-ordered against edge-batch records too.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/core/types.hpp"
#include "src/persist/errors.hpp"

namespace sg::persist {

/// Payload type of a journal record.
enum class RecordKind : std::uint8_t {
  kInsert = 1,          ///< weighted directed-edge batch (insert_edges)
  kErase = 2,           ///< edge batch (delete_edges)
  kInsertVertices = 3,  ///< (id, degree_hint) pairs (insert_vertices)
  kDeleteVertices = 4,  ///< vertex ids (delete_vertices)
};

class Journal {
 public:
  /// One parsed record (scan output; replay input).
  struct Record {
    RecordKind kind = RecordKind::kInsert;
    std::uint64_t seq = 0;
    std::vector<core::WeightedEdge> inserts;    ///< kInsert
    std::vector<core::Edge> erases;             ///< kErase
    std::vector<core::VertexId> vertices;       ///< kInsertVertices/kDeleteVertices
    std::vector<std::uint32_t> degree_hints;    ///< kInsertVertices
  };

  /// Result of validating + parsing a journal file.
  struct ScanResult {
    std::vector<Record> records;
    std::uint64_t last_seq = 0;      ///< highest valid seq (0 = none)
    std::uint64_t valid_bytes = 0;   ///< file offset after the last valid record
    std::uint64_t dropped_bytes = 0; ///< torn-tail bytes past valid_bytes
    bool torn_tail = false;          ///< a torn tail was detected (not an error)
  };

  /// Opens `path` for appending. An existing file is scanned first:
  /// mid-file corruption throws CorruptJournal, a torn tail is truncated
  /// to the last valid record (truncated_on_open() reports how much), and
  /// the sequence continues after max(scanned last seq, `seq_floor`) —
  /// the floor carries a snapshot's cut sequence across a journal that was
  /// started fresh after it. A missing/empty file gets a fresh header.
  Journal(std::string path, core::JournalSyncPolicy sync,
          std::uint64_t seq_floor = 0);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record; returns its sequence number. Throws IoError on a
  /// write/sync failure (poisoning the journal) or when already poisoned.
  std::uint64_t append_insert(std::span<const core::WeightedEdge> edges);
  std::uint64_t append_erase(std::span<const core::Edge> edges);
  std::uint64_t append_insert_vertices(
      std::span<const core::VertexId> ids,
      std::span<const std::uint32_t> degree_hints);
  std::uint64_t append_delete_vertices(std::span<const core::VertexId> ids);

  /// Throws IoError if a previous append/sync failed (the file may end in
  /// a torn record; recovery is required before further writes).
  void ensure_usable() const;
  bool poisoned() const noexcept { return poisoned_; }

  /// Sequence number of the last durable record (0 = none yet).
  std::uint64_t last_seq() const noexcept;

  const std::string& path() const noexcept { return path_; }
  /// Torn-tail bytes removed when the file was opened (0 = clean open).
  std::uint64_t truncated_on_open() const noexcept { return truncated_on_open_; }
  /// Payload + header bytes appended through this handle (bench metric).
  std::uint64_t appended_bytes() const noexcept;

  /// Validates and parses `path` without opening it for writing. A missing
  /// file yields an empty result; mid-file corruption throws
  /// CorruptJournal; a torn tail is reported, not repaired.
  static ScanResult scan(const std::string& path);

 private:
  std::uint64_t append_record(RecordKind kind,
                              std::span<const std::uint8_t> payload);

  std::string path_;
  core::JournalSyncPolicy sync_;
  int fd_ = -1;
  mutable std::mutex mutex_;
  std::uint64_t last_seq_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t truncated_on_open_ = 0;
  bool poisoned_ = false;
};

}  // namespace sg::persist
