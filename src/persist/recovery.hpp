// Crash recovery (docs/ROBUSTNESS.md, "Durability"): latest snapshot +
// write-ahead journal suffix => the graph every successfully-resolved
// mutation built.
//
// recover() is the one-call path: construct a fresh graph from `config`,
// restore the snapshot (if one exists), replay every journal record with a
// sequence number past the snapshot's cut, then re-attach the journal —
// which truncates a torn tail to the last valid record and continues the
// sequence. The sequence-number cursor is the single idempotence
// mechanism: restore sets it to the snapshot's cut, replay skips records
// at/below it, so snapshot-suffix replay and accidental double replay are
// the same check.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/types.hpp"
#include "src/persist/errors.hpp"

namespace sg::core {
template <class Policy>
class DynGraph;
struct MapPolicy;
struct SetPolicy;
}  // namespace sg::core

namespace sg::persist {

/// What recovery did (docs/ROBUSTNESS.md).
struct RecoveryStats {
  bool snapshot_loaded = false;        ///< a snapshot file existed and restored
  std::uint64_t snapshot_vertices = 0;
  std::uint64_t snapshot_edges = 0;    ///< directed edges the snapshot carried
  std::uint64_t replayed_records = 0;  ///< journal records applied
  std::uint64_t skipped_records = 0;   ///< records at/below the cursor
  std::uint64_t truncated_bytes = 0;   ///< torn-tail bytes removed on re-attach
  std::uint64_t journal_seq = 0;       ///< cursor after recovery
};

/// Replays the journal at `path` into `graph`: records with seq <= the
/// graph's journal cursor are skipped, the rest are applied in order and
/// advance the cursor. The graph must NOT have a journal attached (replay
/// through an attached journal would re-journal every record) — throws
/// std::logic_error if it does. Mid-file corruption throws CorruptJournal;
/// a torn tail simply ends the replay (re-attaching truncates it).
template <class Policy>
RecoveryStats replay_journal(core::DynGraph<Policy>& graph,
                             const std::string& path);

/// A recovered graph plus what it took to rebuild it.
template <class Policy>
struct Recovered {
  std::unique_ptr<core::DynGraph<Policy>> graph;
  RecoveryStats stats;
};

/// Full crash recovery. `config` is the graph's normal configuration —
/// config.journal_path names the journal to replay and re-attach (may be
/// empty for snapshot-only recovery); `snapshot_path` names the snapshot
/// to restore first (may be empty, or name a file that does not exist yet
/// — e.g. a crash before the first shutdown snapshot — in which case
/// recovery is journal-only and stats.snapshot_loaded is false). The
/// returned graph has the journal attached and is ready for new
/// mutations, which continue the sequence past the replayed suffix.
template <class Policy>
Recovered<Policy> recover(core::GraphConfig config,
                          const std::string& snapshot_path = "");

using RecoveredMap = Recovered<core::MapPolicy>;
using RecoveredSet = Recovered<core::SetPolicy>;

extern template RecoveryStats replay_journal(
    core::DynGraph<core::MapPolicy>&, const std::string&);
extern template RecoveryStats replay_journal(
    core::DynGraph<core::SetPolicy>&, const std::string&);
extern template Recovered<core::MapPolicy> recover<core::MapPolicy>(
    core::GraphConfig, const std::string&);
extern template Recovered<core::SetPolicy> recover<core::SetPolicy>(
    core::GraphConfig, const std::string&);

}  // namespace sg::persist
