// Internal POSIX I/O helpers shared by the journal and snapshot writers
// (src/persist/). Not part of the public persist API.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/persist/errors.hpp"

namespace sg::persist::detail {

[[noreturn]] inline void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Writes all of [data, data+len) to `fd`, retrying short writes and EINTR;
/// throws IoError (tagged with `what`) on failure.
inline void write_all(int fd, const void* data, std::size_t len,
                      const std::string& what) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(what);
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Reads `path` whole. `exists` = false (with an empty result) when the
/// file is missing; any other failure throws IoError.
inline std::vector<std::uint8_t> read_whole_file(const std::string& path,
                                                 bool& exists) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      exists = false;
      return {};
    }
    throw_errno("open for read failed (" + path + ")");
  }
  exists = true;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("read failed (" + path + ")");
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

}  // namespace sg::persist::detail
