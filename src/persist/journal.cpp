#include "src/persist/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/persist/io_util.hpp"
#include "src/persist/wire.hpp"
#include "src/util/crc32.hpp"
#include "src/util/fault_injection.hpp"

namespace sg::persist {
namespace {

using detail::read_whole_file;
using detail::throw_errno;
using detail::write_all;

// "SGJRNL01" as a little-endian u64.
constexpr std::uint64_t kFileMagic = 0x31304C4E524A4753ull;
constexpr std::uint32_t kFileVersion = 1;
constexpr std::size_t kFileHeaderBytes = 16;

// "SGRC" as a little-endian u32.
constexpr std::uint32_t kRecordMagic = 0x43524753u;
constexpr std::size_t kRecordHeaderBytes = 24;
// Offset of the CRC-covered span within the record header (kind..payload
// length — everything but the magic and the CRC itself).
constexpr std::size_t kCrcCoverBegin = 4;
constexpr std::size_t kCrcCoverHeaderBytes = 16;
// Defensive cap: no real record approaches this, so a larger length field
// is corruption, not a big batch.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

/// Parses one payload into `rec`; false = malformed (treated as CRC-level
/// corruption by the caller even though the CRC matched — cannot happen
/// for files we wrote, but a defined answer beats UB on a crafted file).
bool parse_payload(RecordKind kind, const std::uint8_t* p, std::uint32_t bytes,
                   Journal::Record& rec) {
  switch (kind) {
    case RecordKind::kInsert: {
      if (bytes % 12 != 0) return false;
      const std::uint32_t n = bytes / 12;
      rec.inserts.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        rec.inserts[i] = {get_u32(p + i * 12), get_u32(p + i * 12 + 4),
                          get_u32(p + i * 12 + 8)};
      }
      return true;
    }
    case RecordKind::kErase: {
      if (bytes % 8 != 0) return false;
      const std::uint32_t n = bytes / 8;
      rec.erases.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        rec.erases[i] = {get_u32(p + i * 8), get_u32(p + i * 8 + 4)};
      }
      return true;
    }
    case RecordKind::kInsertVertices: {
      if (bytes % 8 != 0) return false;
      const std::uint32_t n = bytes / 8;
      rec.vertices.resize(n);
      rec.degree_hints.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        rec.vertices[i] = get_u32(p + i * 8);
        rec.degree_hints[i] = get_u32(p + i * 8 + 4);
      }
      return true;
    }
    case RecordKind::kDeleteVertices: {
      if (bytes % 4 != 0) return false;
      const std::uint32_t n = bytes / 4;
      rec.vertices.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) rec.vertices[i] = get_u32(p + i * 4);
      return true;
    }
  }
  return false;
}

}  // namespace

Journal::ScanResult Journal::scan(const std::string& path) {
  ScanResult result;
  bool exists = false;
  const std::vector<std::uint8_t> bytes = read_whole_file(path, exists);
  if (!exists || bytes.empty()) return result;

  if (bytes.size() < kFileHeaderBytes) {
    // A header cut short can only be a crash during journal creation.
    result.torn_tail = true;
    result.dropped_bytes = bytes.size();
    return result;
  }
  if (get_u64(bytes.data()) != kFileMagic) {
    throw CorruptJournal("journal header magic mismatch (" + path + ")");
  }
  if (get_u32(bytes.data() + 8) != kFileVersion) {
    throw CorruptJournal("journal version unsupported (" + path + ")");
  }

  std::size_t at = kFileHeaderBytes;
  result.valid_bytes = at;
  std::uint64_t prev_seq = 0;
  while (at < bytes.size()) {
    const std::size_t remaining = bytes.size() - at;
    // Anything that reaches end-of-file before validating is the torn tail
    // of a crashed append; anything invalid with data after it is mid-file
    // corruption (docs/ROBUSTNESS.md, the torn-tail rule).
    if (remaining < kRecordHeaderBytes) break;  // torn header
    const std::uint8_t* h = bytes.data() + at;
    if (get_u32(h) != kRecordMagic) {
      throw CorruptJournal("journal record magic mismatch at offset " +
                           std::to_string(at) + " (" + path + ")");
    }
    const auto kind_raw = h[4];
    const std::uint64_t seq = get_u64(h + 8);
    const std::uint32_t payload_bytes = get_u32(h + 16);
    if (payload_bytes > kMaxPayloadBytes) {
      throw CorruptJournal("journal record length implausible at offset " +
                           std::to_string(at) + " (" + path + ")");
    }
    const std::uint32_t stored_crc = get_u32(h + 20);
    if (remaining < kRecordHeaderBytes + payload_bytes) break;  // torn payload
    const bool at_eof =
        remaining == kRecordHeaderBytes + payload_bytes;

    std::uint32_t crc = util::crc32(h + kCrcCoverBegin, kCrcCoverHeaderBytes);
    crc = util::crc32(h + kRecordHeaderBytes, payload_bytes, crc);
    Record rec;
    bool valid = crc == stored_crc;
    if (valid) {
      valid = kind_raw >= 1 && kind_raw <= 4;
      rec.kind = static_cast<RecordKind>(kind_raw);
      rec.seq = seq;
      valid = valid && seq > prev_seq;
      valid = valid && parse_payload(rec.kind, h + kRecordHeaderBytes,
                                     payload_bytes, rec);
    }
    if (!valid) {
      if (at_eof) break;  // torn final record (e.g. short payload flush)
      throw CorruptJournal("journal record corrupt at offset " +
                           std::to_string(at) + " (" + path + ")");
    }
    prev_seq = seq;
    at += kRecordHeaderBytes + payload_bytes;
    result.valid_bytes = at;
    result.last_seq = seq;
    result.records.push_back(std::move(rec));
  }
  if (result.valid_bytes < bytes.size()) {
    result.torn_tail = true;
    result.dropped_bytes = bytes.size() - result.valid_bytes;
  }
  return result;
}

Journal::Journal(std::string path, core::JournalSyncPolicy sync,
                 std::uint64_t seq_floor)
    : path_(std::move(path)), sync_(sync) {
  // Scan first: corruption must fail the attach (typed), and a torn tail
  // must be physically removed before appending lands anything after it.
  ScanResult scanned = scan(path_);
  last_seq_ = scanned.last_seq > seq_floor ? scanned.last_seq : seq_floor;

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) throw_errno("journal open failed (" + path_ + ")");
  if (scanned.torn_tail) {
    if (::ftruncate(fd_, static_cast<off_t>(scanned.valid_bytes)) != 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      throw_errno("journal torn-tail truncate failed (" + path_ + ")");
    }
    truncated_on_open_ = scanned.dropped_bytes;
  }
  if (scanned.valid_bytes == 0) {
    // Fresh (or fully-torn) file: write the header.
    std::vector<std::uint8_t> header;
    header.reserve(kFileHeaderBytes);
    put_u64(header, kFileMagic);
    put_u32(header, kFileVersion);
    put_u32(header, 0);  // flags
    try {
      write_all(fd_, header.data(), header.size(), "journal header write");
    } catch (...) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
  } else if (::lseek(fd_, static_cast<off_t>(scanned.valid_bytes), SEEK_SET) <
             0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("journal seek failed (" + path_ + ")");
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::ensure_usable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) {
    throw IoError("journal poisoned by an earlier write failure (" + path_ +
                  "); recover() before further mutations");
  }
}

std::uint64_t Journal::last_seq() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_seq_;
}

std::uint64_t Journal::appended_bytes() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_bytes_;
}

std::uint64_t Journal::append_record(RecordKind kind,
                                     std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) {
    throw IoError("journal poisoned by an earlier write failure (" + path_ +
                  "); recover() before further mutations");
  }
  const std::uint64_t seq = last_seq_ + 1;

  std::vector<std::uint8_t> buf;
  buf.reserve(kRecordHeaderBytes + payload.size());
  put_u32(buf, kRecordMagic);
  buf.push_back(static_cast<std::uint8_t>(kind));
  buf.push_back(0);
  buf.push_back(0);
  buf.push_back(0);
  put_u64(buf, seq);
  put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc =
      util::crc32(buf.data() + kCrcCoverBegin, kCrcCoverHeaderBytes);
  crc = util::crc32(payload.data(), payload.size(), crc);
  put_u32(buf, crc);
  buf.insert(buf.end(), payload.begin(), payload.end());

  try {
    if (SG_FAULT_FIRE(kJournalAppend)) {
      // Simulated crash mid-append: optionally leave the short-write
      // prefix a real torn write would leave, then fail. The journal
      // poisons itself below — a torn tail must not be appended past.
      const std::uint32_t torn = SG_FAULT_TORN(kJournalAppend);
      if (torn != 0) {
        const std::size_t prefix = buf.size() * torn / 1000;
        write_all(fd_, buf.data(), prefix, "journal torn write");
      }
      throw IoError("injected fault: journal append (" + path_ + ")");
    }
    write_all(fd_, buf.data(), buf.size(), "journal append");
    if (sync_ == core::JournalSyncPolicy::kEachBatch) {
      if (SG_FAULT_FIRE(kJournalSync)) {
        throw IoError("injected fault: journal fsync (" + path_ + ")");
      }
      if (::fsync(fd_) != 0) throw_errno("journal fsync failed");
    }
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  last_seq_ = seq;
  appended_bytes_ += buf.size();
  return seq;
}

std::uint64_t Journal::append_insert(
    std::span<const core::WeightedEdge> edges) {
  std::vector<std::uint8_t> payload;
  payload.reserve(edges.size() * 12);
  for (const auto& e : edges) {
    put_u32(payload, e.src);
    put_u32(payload, e.dst);
    put_u32(payload, e.weight);
  }
  return append_record(RecordKind::kInsert, payload);
}

std::uint64_t Journal::append_erase(std::span<const core::Edge> edges) {
  std::vector<std::uint8_t> payload;
  payload.reserve(edges.size() * 8);
  for (const auto& e : edges) {
    put_u32(payload, e.src);
    put_u32(payload, e.dst);
  }
  return append_record(RecordKind::kErase, payload);
}

std::uint64_t Journal::append_insert_vertices(
    std::span<const core::VertexId> ids,
    std::span<const std::uint32_t> degree_hints) {
  std::vector<std::uint8_t> payload;
  payload.reserve(ids.size() * 8);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    put_u32(payload, ids[i]);
    put_u32(payload, degree_hints.empty() ? 0u : degree_hints[i]);
  }
  return append_record(RecordKind::kInsertVertices, payload);
}

std::uint64_t Journal::append_delete_vertices(
    std::span<const core::VertexId> ids) {
  std::vector<std::uint8_t> payload;
  payload.reserve(ids.size() * 4);
  for (core::VertexId id : ids) put_u32(payload, id);
  return append_record(RecordKind::kDeleteVertices, payload);
}

}  // namespace sg::persist
