// Byte-level encode/decode shared by the snapshot and journal formats
// (src/persist/): explicit little-endian fixed-width fields, so the files
// are a defined format rather than a memory dump — a snapshot written on
// one host restores on another.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

static_assert(std::endian::native == std::endian::little,
              "persist wire format assumes a little-endian host");

namespace sg::persist {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace sg::persist
