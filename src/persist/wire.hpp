// Byte-level encode/decode shared by the snapshot and journal formats
// (src/persist/): explicit little-endian fixed-width fields, so the files
// are a defined format rather than a memory dump — a snapshot written on
// one host restores on another.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

static_assert(std::endian::native == std::endian::little,
              "persist wire format assumes a little-endian host");

namespace sg::persist {

/// Appends `v` to `out` as 4 little-endian bytes.
inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

/// Appends `v` to `out` as 8 little-endian bytes.
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

/// Reads 4 little-endian bytes at `p`. The caller guarantees 4 readable
/// bytes — framing (record lengths, checksums) is the caller's format.
inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Reads 8 little-endian bytes at `p` (same contract as get_u32).
inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace sg::persist
