// ShardConductor: the PR 5 per-graph conductor promoted to a MULTI-GRAPH
// conductor — one admission point over a set of DynGraph shards
// (docs/ARCHITECTURE.md "Sharding").
//
// Each shard keeps its own PhaseScheduler: per-shard phases stay
// independent (shard 0 can run a mutation phase while shard 1 runs
// queries), which is the whole throughput point of partitioning. What the
// tier adds on top is exactly what no per-graph conductor can give:
//
//  * ONE ADMISSION ORDER. Every tier submission fans out to its owner
//    shards under a single admission mutex, so all shards observe the
//    same relative order of tier submissions in their FIFO queues. That
//    total order is what makes a cross-shard fence deadlock-free (two
//    concurrent fences can never interleave in opposite orders on two
//    shards) and what makes tier batches BATCH-ATOMIC with respect to
//    fences: a fence admitted after batch B is behind B on every shard,
//    so an epoch-consistent cut never observes half of B.
//
//  * CROSS-SHARD FENCES. submit_analytics / submit_snapshot submit a
//    barrier closure to EVERY shard as a maintenance-kind submission.
//    Maintenance runs alone, INLINE on each shard's conductor thread
//    (never as a pool job — N parked barriers cannot starve the
//    ThreadPool that must finish the phases ahead of them). Arrivals
//    park; the LAST arriver finds every shard's conductor simultaneously
//    fenced — an epoch-consistent cut of the whole tier — and runs the
//    user task against it. If any shard rejects its closure (shutdown,
//    queue-full kReject), an RAII participant token aborts the barrier:
//    parked siblings wake and return, and the user future resolves to
//    the rejection — every future resolves, nothing hangs.
//
//  * SCATTER-GATHER AND TYPED AGGREGATION. Combined futures reassemble
//    per-shard query results into original input order via the router's
//    global sequence numbers, sum mutation counts, and fold per-shard
//    failures into one tier-level error: any shard's PartialBatchError
//    (or a rejection while a sibling shard applied) surfaces as a tier
//    PartialBatchError whose applied count and unapplied list are exact
//    — shards are independent, so the global outcome is the union of
//    per-shard outcomes. Only when EVERY shard rejected (nothing
//    applied anywhere) does the all-or-nothing SubmitRejected surface.
//
// The conductor is type-erased over the shard graphs (ShardOps bundles of
// std::functions, the PhaseScheduler::Ops idiom one level up), so one
// non-templated implementation serves the map and set tiers.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <vector>

#include "src/core/errors.hpp"
#include "src/core/phase_scheduler.hpp"
#include "src/core/types.hpp"

namespace sg::shard {

/// Tier-level view of the shard set's schedulers plus the conductor's own
/// admission counters. ShardConductor::stats().
struct TierStats {
  /// Sum of every shard's PhaseScheduleStats (max_queue_depth is the max).
  core::PhaseScheduleStats shard_totals;
  /// Per-shard snapshots, indexed by shard — the fairness view.
  std::vector<core::PhaseScheduleStats> per_shard;
  // Tier submissions admitted through the conductor, by kind. One tier
  // mutation fanning out to k shards counts ONCE here and k times in
  // shard_totals.submitted_mutations.
  std::uint64_t tier_mutations = 0;
  std::uint64_t tier_queries = 0;
  std::uint64_t tier_analytics = 0;
  std::uint64_t tier_snapshots = 0;
  /// Cross-shard fences completed (the task ran against a full-tier cut).
  std::uint64_t fences_completed = 0;
  /// Fences aborted by a participant rejection (shutdown / backpressure).
  std::uint64_t fences_aborted = 0;
};

class ShardConductor {
 public:
  /// Scheduled entry points of one shard, type-erased. `submit_edge_weights`
  /// may be empty (set tiers never submit weighted queries).
  struct ShardOps {
    std::function<std::future<std::uint64_t>(std::vector<core::WeightedEdge>)>
        submit_insert;
    std::function<std::future<std::uint64_t>(std::vector<core::Edge>)>
        submit_erase;
    std::function<std::future<std::vector<std::uint8_t>>(
        std::vector<core::Edge>, std::uint32_t)>
        submit_edges_exist;
    std::function<std::future<core::EdgeWeightBatch>(std::vector<core::Edge>,
                                                     std::uint32_t)>
        submit_edge_weights;
    std::function<std::future<std::uint64_t>(std::function<std::uint64_t()>)>
        submit_maintenance;
    std::function<void()> drain;
    std::function<core::PhaseScheduleStats()> stats;
  };

  explicit ShardConductor(std::vector<ShardOps> shards);

  ShardConductor(const ShardConductor&) = delete;
  ShardConductor& operator=(const ShardConductor&) = delete;

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  // ---- routed fan-out (any thread) -------------------------------------
  // `per_shard[s]` is shard s's routed sub-batch (empty vectors are
  // skipped — no phase is paid on an uninvolved shard). The combined
  // future is deferred: aggregation runs on the thread that calls get().

  /// Resolves to the summed per-shard applied counts (each shard's count
  /// carries the coalesced-group semantics of its own scheduler). On any
  /// per-shard failure with work applied elsewhere, throws a tier-level
  /// core::PartialBatchError with the exact global applied count and the
  /// concatenated unapplied edges (routed orientation — an undirected
  /// tier's mirror appears as its own (dst, src) entry).
  std::future<std::uint64_t> submit_insert(
      std::vector<std::vector<core::WeightedEdge>> per_shard);
  std::future<std::uint64_t> submit_erase(
      std::vector<std::vector<core::Edge>> per_shard);

  /// Scatter-gather: resolves to out[i] = answer for global input
  /// position i, reassembled from per-shard results via `per_shard_seq`
  /// (`total` is the client batch size). Queries are all-or-nothing
  /// reads: any shard's rejection fails the whole tier query.
  std::future<std::vector<std::uint8_t>> submit_edges_exist(
      std::vector<std::vector<core::Edge>> per_shard,
      std::vector<std::vector<std::uint32_t>> per_shard_seq, std::size_t total,
      std::uint32_t deadline_ms = 0);
  std::future<core::EdgeWeightBatch> submit_edge_weights(
      std::vector<std::vector<core::Edge>> per_shard,
      std::vector<std::vector<std::uint32_t>> per_shard_seq, std::size_t total,
      std::uint32_t deadline_ms = 0);

  // ---- cross-shard fences ----------------------------------------------
  /// Runs `task` against an epoch-consistent cut of the WHOLE tier: every
  /// shard's conductor is parked in the barrier while the task executes,
  /// so the task may read any shard (gathers, queries, stats) without a
  /// mutation phase running anywhere. FIFO with the submitter's other
  /// tier submissions. The future resolves when the task returns, carries
  /// the task's exception, or resolves to core::SubmitRejected if any
  /// shard refused its barrier closure (the fence aborts; the task never
  /// runs half-fenced).
  std::future<void> submit_analytics(std::function<void()> task);
  /// Same fence, counted as a snapshot in stats — the task typically
  /// writes one persist::snapshot file per shard inside the cut.
  std::future<void> submit_snapshot(std::function<void()> task);

  /// Drains every shard's scheduler (all accepted tier work completes).
  void drain();

  TierStats stats() const;

 private:
  struct Fence;
  struct FenceCounters;
  struct Token;

  std::future<void> submit_fenced(std::function<void()> task, bool snapshot);

  std::vector<ShardOps> shards_;
  /// Serializes fan-out so every shard sees tier submissions in one total
  /// order (see file comment). Held across the per-shard submit calls —
  /// a shard blocking under kBlock backpressure stalls tier admission,
  /// which is the tier-level backpressure by construction.
  mutable std::mutex admission_;
  std::uint64_t tier_mutations_ = 0;
  std::uint64_t tier_queries_ = 0;
  std::uint64_t tier_analytics_ = 0;
  std::uint64_t tier_snapshots_ = 0;
  /// Fence outcome counters, co-owned by in-flight barrier closures: a
  /// closure may outlive the conductor (the owning tier destroys the
  /// conductor before the shard graphs, whose schedulers still hold
  /// queued closures), so completion/abort must never touch `this`.
  std::shared_ptr<FenceCounters> fence_counters_;
};

}  // namespace sg::shard
