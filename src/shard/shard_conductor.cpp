#include "src/shard/shard_conductor.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <utility>

namespace sg::shard {

// ---- cross-shard fence state ----------------------------------------------

struct ShardConductor::FenceCounters {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> aborted{0};
};

/// Shared state of one cross-shard fence. Lifetime: co-owned by the N
/// participant tokens and (until fan-out returns) the submitting thread,
/// so it survives until the last shard's closure ran or was rejected.
struct ShardConductor::Fence {
  std::mutex m;
  std::condition_variable cv;
  std::uint32_t expected = 0;  ///< shard count at submission
  std::uint32_t arrived = 0;
  bool done = false;     ///< task ran (or threw); parked siblings may leave
  bool aborted = false;  ///< a participant was rejected; task never runs
  bool resolved = false;
  std::function<void()> task;
  std::promise<void> user;

  // Both called with m held; the promise resolves exactly once.
  void resolve_value_locked() {
    if (resolved) return;
    resolved = true;
    user.set_value();
  }
  void resolve_error_locked(std::exception_ptr e) {
    if (resolved) return;
    resolved = true;
    user.set_exception(std::move(e));
  }
};

/// RAII participation marker captured by each shard's barrier closure. A
/// closure destroyed UNRUN (scheduler shutdown rejected it, or kReject
/// backpressure refused it) fires the abort from here — the one hook that
/// is guaranteed to run however the closure dies — so parked siblings
/// wake instead of waiting for an arrival that can never come.
struct ShardConductor::Token {
  std::shared_ptr<Fence> fence;
  std::shared_ptr<FenceCounters> counters;
  bool ran = false;

  ~Token() {
    if (ran || !fence) return;
    std::lock_guard<std::mutex> lock(fence->m);
    if (fence->done || fence->aborted) return;
    fence->aborted = true;
    counters->aborted.fetch_add(1, std::memory_order_relaxed);
    fence->resolve_error_locked(std::make_exception_ptr(
        core::SubmitRejected(core::RejectReason::kShutdown)));
    fence->cv.notify_all();
  }
};

// ---- construction ---------------------------------------------------------

ShardConductor::ShardConductor(std::vector<ShardOps> shards)
    : shards_(std::move(shards)),
      fence_counters_(std::make_shared<FenceCounters>()) {}

// ---- mutation fan-out -----------------------------------------------------

namespace {

/// Ready future carrying the exception a shard submit threw synchronously
/// (stopped scheduler), so the combiner handles sync and async refusals
/// through one path.
template <typename T>
std::future<T> ready_error(std::exception_ptr e) {
  std::promise<T> p;
  p.set_exception(std::move(e));
  return p.get_future();
}

/// Folds per-shard mutation outcomes into the tier result. Shards are
/// independent, so the global outcome is exactly the union of per-shard
/// outcomes: counts sum; a failing shard contributes its exact unapplied
/// list (PartialBatchError) or its whole sub-batch (rejection /
/// infrastructure failure, recorded in `sub_edges` before the vectors
/// moved into the schedulers). Only when nothing was applied anywhere and
/// every involved shard rejected does the all-or-nothing SubmitRejected
/// surface unchanged.
std::uint64_t combine_mutations(
    std::vector<std::future<std::uint64_t>>& futures,
    std::vector<std::vector<core::Edge>>& sub_edges) {
  std::uint64_t applied = 0;
  std::vector<core::Edge> unapplied;
  std::exception_ptr cause;      // first failing shard's underlying cause
  std::exception_ptr rejection;  // first refusal, for the all-refused path
  bool any_partial = false;
  bool any_refused = false;
  bool any_success = false;
  for (std::size_t s = 0; s < futures.size(); ++s) {
    if (!futures[s].valid()) continue;  // shard had no sub-batch
    try {
      applied += futures[s].get();
      any_success = true;
    } catch (const core::PartialBatchError& e) {
      any_partial = true;
      applied += e.applied();
      unapplied.insert(unapplied.end(), e.unapplied().begin(),
                       e.unapplied().end());
      if (!cause) cause = e.cause();
    } catch (...) {
      any_refused = true;
      if (!rejection) rejection = std::current_exception();
      unapplied.insert(unapplied.end(), sub_edges[s].begin(),
                       sub_edges[s].end());
    }
  }
  if (any_partial || (any_refused && (any_success || applied != 0))) {
    throw core::PartialBatchError(applied, std::move(unapplied),
                                  cause ? cause : rejection,
                                  "sharded mutation aborted");
  }
  if (any_refused) std::rethrow_exception(rejection);
  return applied;
}

}  // namespace

std::future<std::uint64_t> ShardConductor::submit_insert(
    std::vector<std::vector<core::WeightedEdge>> per_shard) {
  const std::uint32_t n = shard_count();
  std::vector<std::future<std::uint64_t>> futures(n);
  // (src, dst) projections of each sub-batch, kept until resolution: if a
  // shard REFUSES its sub-batch while a sibling applies, the tier
  // PartialBatchError must list the refused edges — and by then the
  // originals have moved into the schedulers.
  auto sub_edges = std::make_shared<std::vector<std::vector<core::Edge>>>(n);
  {
    std::lock_guard<std::mutex> admission(admission_);
    ++tier_mutations_;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (per_shard[s].empty()) continue;
      auto& copy = (*sub_edges)[s];
      copy.reserve(per_shard[s].size());
      for (const core::WeightedEdge& e : per_shard[s]) {
        copy.push_back({e.src, e.dst});
      }
      try {
        futures[s] = shards_[s].submit_insert(std::move(per_shard[s]));
      } catch (...) {
        futures[s] = ready_error<std::uint64_t>(std::current_exception());
      }
    }
  }
  return std::async(std::launch::deferred,
                    [futures = std::move(futures), sub_edges]() mutable {
                      return combine_mutations(futures, *sub_edges);
                    });
}

std::future<std::uint64_t> ShardConductor::submit_erase(
    std::vector<std::vector<core::Edge>> per_shard) {
  const std::uint32_t n = shard_count();
  std::vector<std::future<std::uint64_t>> futures(n);
  auto sub_edges = std::make_shared<std::vector<std::vector<core::Edge>>>(n);
  {
    std::lock_guard<std::mutex> admission(admission_);
    ++tier_mutations_;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (per_shard[s].empty()) continue;
      (*sub_edges)[s] = per_shard[s];  // kept for the refusal path
      try {
        futures[s] = shards_[s].submit_erase(std::move(per_shard[s]));
      } catch (...) {
        futures[s] = ready_error<std::uint64_t>(std::current_exception());
      }
    }
  }
  return std::async(std::launch::deferred,
                    [futures = std::move(futures), sub_edges]() mutable {
                      return combine_mutations(futures, *sub_edges);
                    });
}

// ---- query scatter-gather -------------------------------------------------

std::future<std::vector<std::uint8_t>> ShardConductor::submit_edges_exist(
    std::vector<std::vector<core::Edge>> per_shard,
    std::vector<std::vector<std::uint32_t>> per_shard_seq, std::size_t total,
    std::uint32_t deadline_ms) {
  const std::uint32_t n = shard_count();
  std::vector<std::future<std::vector<std::uint8_t>>> futures(n);
  {
    std::lock_guard<std::mutex> admission(admission_);
    ++tier_queries_;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (per_shard[s].empty()) continue;
      try {
        futures[s] =
            shards_[s].submit_edges_exist(std::move(per_shard[s]), deadline_ms);
      } catch (...) {
        futures[s] =
            ready_error<std::vector<std::uint8_t>>(std::current_exception());
      }
    }
  }
  return std::async(
      std::launch::deferred,
      [futures = std::move(futures), seq = std::move(per_shard_seq),
       total]() mutable {
        std::vector<std::uint8_t> out(total, 0);
        std::exception_ptr first;
        for (std::size_t s = 0; s < futures.size(); ++s) {
          if (!futures[s].valid()) continue;
          try {
            const std::vector<std::uint8_t> part = futures[s].get();
            for (std::size_t i = 0; i < part.size(); ++i) {
              out[seq[s][i]] = part[i];
            }
          } catch (...) {
            if (!first) first = std::current_exception();
          }
        }
        // Queries are all-or-nothing reads: a partially-answered batch is
        // indistinguishable from "absent" at the missing positions, so any
        // shard's refusal fails the whole tier query.
        if (first) std::rethrow_exception(first);
        return out;
      });
}

std::future<core::EdgeWeightBatch> ShardConductor::submit_edge_weights(
    std::vector<std::vector<core::Edge>> per_shard,
    std::vector<std::vector<std::uint32_t>> per_shard_seq, std::size_t total,
    std::uint32_t deadline_ms) {
  const std::uint32_t n = shard_count();
  std::vector<std::future<core::EdgeWeightBatch>> futures(n);
  {
    std::lock_guard<std::mutex> admission(admission_);
    ++tier_queries_;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (per_shard[s].empty()) continue;
      try {
        futures[s] = shards_[s].submit_edge_weights(std::move(per_shard[s]),
                                                    deadline_ms);
      } catch (...) {
        futures[s] =
            ready_error<core::EdgeWeightBatch>(std::current_exception());
      }
    }
  }
  return std::async(
      std::launch::deferred,
      [futures = std::move(futures), seq = std::move(per_shard_seq),
       total]() mutable {
        core::EdgeWeightBatch out;
        out.weights.assign(total, core::Weight{0});
        out.found.assign(total, 0);
        std::exception_ptr first;
        for (std::size_t s = 0; s < futures.size(); ++s) {
          if (!futures[s].valid()) continue;
          try {
            const core::EdgeWeightBatch part = futures[s].get();
            for (std::size_t i = 0; i < part.found.size(); ++i) {
              out.weights[seq[s][i]] = part.weights[i];
              out.found[seq[s][i]] = part.found[i];
            }
          } catch (...) {
            if (!first) first = std::current_exception();
          }
        }
        if (first) std::rethrow_exception(first);
        return out;
      });
}

// ---- cross-shard fences ---------------------------------------------------

std::future<void> ShardConductor::submit_fenced(std::function<void()> task,
                                                bool snapshot) {
  auto fence = std::make_shared<Fence>();
  fence->expected = shard_count();
  fence->task = std::move(task);
  std::future<void> result = fence->user.get_future();

  std::lock_guard<std::mutex> admission(admission_);
  if (snapshot) {
    ++tier_snapshots_;
  } else {
    ++tier_analytics_;
  }
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    auto token = std::make_shared<Token>();
    token->fence = fence;
    token->counters = fence_counters_;
    try {
      // Discard the per-shard future: completion is signalled through the
      // fence's own promise, and abort through the token.
      shards_[s].submit_maintenance([token]() -> std::uint64_t {
        Fence& f = *token->fence;
        std::unique_lock<std::mutex> lock(f.m);
        token->ran = true;
        ++f.arrived;
        if (f.arrived == f.expected && !f.aborted) {
          // Last arriver: every other shard's conductor is parked in this
          // barrier and this shard's conductor is here — the whole tier is
          // simultaneously inside a maintenance window. Run the task
          // against that epoch-consistent cut.
          try {
            f.task();
            f.resolve_value_locked();
          } catch (...) {
            f.resolve_error_locked(std::current_exception());
          }
          f.done = true;
          token->counters->completed.fetch_add(1, std::memory_order_relaxed);
          f.cv.notify_all();
        } else if (!f.done && !f.aborted) {
          f.cv.wait(lock, [&f] { return f.done || f.aborted; });
        }
        return 0;
      });
    } catch (...) {
      // This shard's scheduler refused synchronously (stopping): the fence
      // can never be whole. Abort with the real reason; shards already
      // holding a closure wake through the token/abort machinery, and the
      // remaining shards are never fenced.
      std::lock_guard<std::mutex> lock(fence->m);
      if (!fence->done && !fence->aborted) {
        fence->aborted = true;
        fence_counters_->aborted.fetch_add(1, std::memory_order_relaxed);
        fence->resolve_error_locked(std::current_exception());
        fence->cv.notify_all();
      }
      break;
    }
  }
  return result;
}

std::future<void> ShardConductor::submit_analytics(std::function<void()> task) {
  return submit_fenced(std::move(task), /*snapshot=*/false);
}

std::future<void> ShardConductor::submit_snapshot(std::function<void()> task) {
  return submit_fenced(std::move(task), /*snapshot=*/true);
}

// ---- drain & stats --------------------------------------------------------

void ShardConductor::drain() {
  // Per-shard drains suffice: a pending cross-shard fence on shard s
  // completes once every sibling's conductor reaches its closure, and each
  // sibling drains (or simply schedules) independently — no circular wait.
  for (ShardOps& shard : shards_) shard.drain();
}

TierStats ShardConductor::stats() const {
  TierStats out;
  out.per_shard.reserve(shards_.size());
  for (const ShardOps& shard : shards_) {
    out.per_shard.push_back(shard.stats());
    out.shard_totals += out.per_shard.back();
  }
  {
    std::lock_guard<std::mutex> admission(admission_);
    out.tier_mutations = tier_mutations_;
    out.tier_queries = tier_queries_;
    out.tier_analytics = tier_analytics_;
    out.tier_snapshots = tier_snapshots_;
  }
  out.fences_completed =
      fence_counters_->completed.load(std::memory_order_relaxed);
  out.fences_aborted =
      fence_counters_->aborted.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sg::shard
