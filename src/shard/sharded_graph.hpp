// ShardedGraph: the multi-shard serving tier (docs/ARCHITECTURE.md
// "Sharding", ROADMAP item 2).
//
// One DynGraph is one node's worth of graph; the tier partitions the edge
// set across N instances by the hash of each directed edge's SOURCE vertex
// (src/shard/batch_router.hpp). Every row of vertex u's adjacency lives on
// owner(u) — including the mirror rows an undirected tier emits — so
// degree(u) and src-keyed queries are single-shard lookups, and a client
// batch splits into per-shard sub-batches with the count -> prefix-sum ->
// emit pattern (zero-copy spans on the sync path, one owned vector per
// involved shard on the scheduled path; never a per-edge allocation).
//
// Two serving modes, mirroring DynGraph's own API split:
//
//  * SYNC (insert_edges / delete_edges / edges_exist / edge_weights):
//    routes, then applies shard by shard on the calling thread. The
//    phase-concurrent contract is the caller's, exactly as for a single
//    graph — this is the differential-reference mode the cross-shard test
//    suite compares against a one-DynGraph oracle.
//
//  * SCHEDULED (submit_*): fans out through each shard's own
//    PhaseScheduler under the multi-graph conductor
//    (src/shard/shard_conductor.hpp) — per-shard phases proceed
//    independently, tier submissions share one admission order, and
//    submit_analytics / submit_snapshot fence ALL shards simultaneously
//    for an epoch-consistent cut of the whole tier.
//
// Error contract (docs/ROBUSTNESS.md, one level up): a shard aborting
// mid-batch (arena exhaustion) surfaces as a tier-level PartialBatchError
// whose applied count sums the per-shard counts and whose unapplied list
// concatenates the failing shards' lists — exact, because shards fail
// independently. Unapplied edges are reported in ROUTED orientation: an
// undirected tier's mirror appears as its own (dst, src) entry, and
// retrying the unapplied list converges exactly as for one graph.
//
// In inline mode (GraphConfig::phase_scheduler = false) the scheduled API
// degrades to synchronous execution on the calling thread, including the
// analytics/snapshot path — there are no conductor threads to fence, and
// a maintenance-barrier would deadlock on its own submitter.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/core/errors.hpp"
#include "src/core/types.hpp"
#include "src/persist/snapshot.hpp"
#include "src/shard/batch_router.hpp"
#include "src/shard/shard_conductor.hpp"

namespace sg::shard {

/// Construction-time knobs of the tier (docs/CONFIG.md "ShardConfig").
struct ShardConfig {
  /// Number of DynGraph instances the edge set partitions across. 1 is a
  /// valid degenerate tier (routing still runs; useful as its own oracle).
  std::uint32_t shard_count = 4;
  /// Base per-shard GraphConfig. `undirected` is interpreted as the TIER's
  /// directedness: the router emits mirror orientations and the shards
  /// themselves always run directed (a shard-level mirror would
  /// double-store edges whose endpoints hash to the same shard).
  core::GraphConfig graph;
  /// Per-shard override hook, called as per_shard(shard_index, config)
  /// after the base config is copied (and after the tier forced
  /// `undirected = false`). The fault suite uses it to cap one shard's
  /// arena; deployments can use it to split journal/snapshot paths.
  std::function<void(std::uint32_t, core::GraphConfig&)> per_shard;
};

/// Routing-layer counters (ShardedGraph::router_stats()). Per-shard item
/// counts are the load-skew / fairness view the serve example reports.
struct RouterStats {
  std::uint64_t batches_routed = 0;  ///< client batches split (all kinds)
  std::uint64_t items_in = 0;        ///< client edges/probes received
  std::uint64_t items_routed = 0;    ///< emitted items incl. mirrors
  std::uint64_t mirrors_emitted = 0;
  std::vector<std::uint64_t> per_shard_items;  ///< routed items by shard
};

template <class Policy>
class ShardedGraph {
 public:
  using Graph = core::DynGraph<Policy>;

  explicit ShardedGraph(ShardConfig config) : config_(std::move(config)) {
    if (config_.shard_count == 0) {
      throw std::invalid_argument("ShardConfig::shard_count must be >= 1");
    }
    undirected_ = config_.graph.undirected;
    inline_mode_ = !config_.graph.phase_scheduler;
    per_shard_items_.assign(config_.shard_count, 0);
    shards_.reserve(config_.shard_count);
    for (std::uint32_t s = 0; s < config_.shard_count; ++s) {
      core::GraphConfig gc = config_.graph;
      gc.undirected = false;  // tier-level directedness is router-mirrored
      if (config_.per_shard) config_.per_shard(s, gc);
      shards_.push_back(std::make_unique<Graph>(gc));
    }
    conductor_ = std::make_unique<ShardConductor>(make_ops());
  }

  std::uint32_t shard_count() const noexcept { return config_.shard_count; }
  bool undirected() const noexcept { return undirected_; }
  std::uint32_t owner(core::VertexId src) const noexcept {
    return owner_of(src, config_.shard_count);
  }
  Graph& shard(std::uint32_t s) { return *shards_[s]; }
  const Graph& shard(std::uint32_t s) const { return *shards_[s]; }

  // ---- synchronous serving path ----------------------------------------
  // Phase-serial like the single-graph sync API: the caller keeps
  // mutations from overlapping queries. Shards apply in shard order on
  // the calling thread; the engine parallelizes within each sub-batch.

  /// Inserts a batch. Returns the number of new unique DIRECTED edges
  /// stored tier-wide (undirected tiers count both orientations, exactly
  /// like a single undirected DynGraph). On a shard abort, remaining
  /// shards still apply, then one tier PartialBatchError reports the
  /// exact global outcome (file comment).
  std::uint64_t insert_edges(std::span<const core::WeightedEdge> edges) {
    RoutedBatch<core::WeightedEdge> routed =
        route_inserts(edges, config_.shard_count, undirected_);
    note_routed(routed, edges.size());
    return apply_mutation(routed, [this](std::uint32_t s,
                                         std::span<const core::WeightedEdge>
                                             sub) {
      return shards_[s]->insert_edges(sub);
    });
  }

  /// Erases a batch; undirected tiers retire both stored orientations.
  /// Returns directed edges removed tier-wide.
  std::uint64_t delete_edges(std::span<const core::Edge> edges) {
    RoutedBatch<core::Edge> routed =
        route_erases(edges, config_.shard_count, undirected_);
    note_routed(routed, edges.size());
    return apply_mutation(
        routed, [this](std::uint32_t s, std::span<const core::Edge> sub) {
          return shards_[s]->delete_edges(sub);
        });
  }

  /// out[i] = 1 iff queries[i] is present. Routed by owner(src) only —
  /// mirrors live with their own source — and scattered back to input
  /// order via the router's sequence numbers.
  void edges_exist(std::span<const core::Edge> queries,
                   std::uint8_t* out) const {
    RoutedBatch<core::Edge> routed =
        route_queries(queries, config_.shard_count);
    note_routed(routed, queries.size());
    std::vector<std::uint8_t> part;
    for (std::uint32_t s = 0; s < config_.shard_count; ++s) {
      const auto sub = routed.shard_span(s);
      if (sub.empty()) continue;
      part.assign(sub.size(), 0);
      shards_[s]->edges_exist(sub, part.data());
      const auto seq = routed.shard_seq(s);
      for (std::size_t i = 0; i < sub.size(); ++i) out[seq[i]] = part[i];
    }
  }

  std::vector<std::uint8_t> edges_exist(
      std::span<const core::Edge> queries) const {
    std::vector<std::uint8_t> out(queries.size(), 0);
    edges_exist(queries, out.data());
    return out;
  }

  /// Batched weight lookup (map tiers): weights[i]/found[i] answer
  /// queries[i], input order.
  void edge_weights(std::span<const core::Edge> queries, core::Weight* weights,
                    std::uint8_t* found) const
    requires Policy::kHasValues
  {
    RoutedBatch<core::Edge> routed =
        route_queries(queries, config_.shard_count);
    note_routed(routed, queries.size());
    std::vector<core::Weight> w;
    std::vector<std::uint8_t> f;
    for (std::uint32_t s = 0; s < config_.shard_count; ++s) {
      const auto sub = routed.shard_span(s);
      if (sub.empty()) continue;
      w.assign(sub.size(), core::Weight{0});
      f.assign(sub.size(), 0);
      shards_[s]->edge_weights(sub, w.data(), f.data());
      const auto seq = routed.shard_seq(s);
      for (std::size_t i = 0; i < sub.size(); ++i) {
        weights[seq[i]] = w[i];
        found[seq[i]] = f[i];
      }
    }
  }

  /// Total live directed edges tier-wide (undirected edges count twice —
  /// same accounting as DynGraph::num_edges on one undirected graph).
  std::uint64_t num_edges() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->num_edges();
    return total;
  }

  /// Exact out-degree of `u` — a single-shard lookup on owner(u), where
  /// every row of u's adjacency (mirrors included) lives.
  std::uint32_t degree(core::VertexId u) const {
    return shards_[owner(u)]->degree(u);
  }

  // ---- scheduled serving path (the multi-graph conductor) --------------
  // Thread-safe; tier submissions share one admission order across all
  // shards and the combined future carries the aggregated result (see
  // shard_conductor.hpp for the error contract).

  std::future<std::uint64_t> submit_insert(
      std::vector<core::WeightedEdge> edges) {
    RoutedBatch<core::WeightedEdge> routed =
        route_inserts(edges, config_.shard_count, undirected_);
    note_routed(routed, edges.size());
    if (inline_mode_) {
      return inline_mutation(routed,
                             [this](std::uint32_t s,
                                    std::span<const core::WeightedEdge> sub) {
                               return shards_[s]->insert_edges(sub);
                             });
    }
    return conductor_->submit_insert(take_per_shard(routed));
  }

  std::future<std::uint64_t> submit_erase(std::vector<core::Edge> edges) {
    RoutedBatch<core::Edge> routed =
        route_erases(edges, config_.shard_count, undirected_);
    note_routed(routed, edges.size());
    if (inline_mode_) {
      return inline_mutation(
          routed, [this](std::uint32_t s, std::span<const core::Edge> sub) {
            return shards_[s]->delete_edges(sub);
          });
    }
    return conductor_->submit_erase(take_per_shard(routed));
  }

  std::future<std::vector<std::uint8_t>> submit_edges_exist(
      std::vector<core::Edge> queries, std::uint32_t deadline_ms = 0) {
    if (inline_mode_) {
      std::promise<std::vector<std::uint8_t>> done;
      std::future<std::vector<std::uint8_t>> f = done.get_future();
      try {
        done.set_value(edges_exist(queries));
      } catch (...) {
        done.set_exception(std::current_exception());
      }
      return f;
    }
    RoutedBatch<core::Edge> routed =
        route_queries(queries, config_.shard_count);
    note_routed(routed, queries.size());
    return conductor_->submit_edges_exist(take_per_shard(routed),
                                          take_seq(routed), queries.size(),
                                          deadline_ms);
  }

  std::future<core::EdgeWeightBatch> submit_edge_weights(
      std::vector<core::Edge> queries, std::uint32_t deadline_ms = 0)
    requires Policy::kHasValues
  {
    if (inline_mode_) {
      std::promise<core::EdgeWeightBatch> done;
      std::future<core::EdgeWeightBatch> f = done.get_future();
      try {
        core::EdgeWeightBatch result;
        result.weights.assign(queries.size(), core::Weight{0});
        result.found.assign(queries.size(), 0);
        edge_weights(queries, result.weights.data(), result.found.data());
        done.set_value(std::move(result));
      } catch (...) {
        done.set_exception(std::current_exception());
      }
      return f;
    }
    RoutedBatch<core::Edge> routed =
        route_queries(queries, config_.shard_count);
    note_routed(routed, queries.size());
    return conductor_->submit_edge_weights(take_per_shard(routed),
                                           take_seq(routed), queries.size(),
                                           deadline_ms);
  }

  /// Cross-shard analytics: `task` runs with EVERY shard simultaneously
  /// fenced (each conductor parked in a maintenance window) — an
  /// epoch-consistent cut of the whole tier. Inside the task, reading any
  /// shard (num_edges, gathers, sync queries) is safe. Batch-atomic with
  /// respect to tier submissions: a tier batch admitted before this call
  /// is fully visible on every shard, one admitted after is visible on
  /// none. Inline mode runs the task synchronously on the calling thread.
  std::future<void> submit_analytics(std::function<void()> task) {
    if (inline_mode_) return run_inline_void(std::move(task));
    return conductor_->submit_analytics(std::move(task));
  }

  /// Epoch-consistent durable cut of the whole tier: writes one snapshot
  /// file per shard — `path_prefix` + ".shard" + index — inside a
  /// cross-shard fence. Restore by constructing an identically-configured
  /// tier and calling persist::restore_into on each shard's file.
  std::future<void> submit_snapshot(std::string path_prefix) {
    auto write_all = [this, path_prefix = std::move(path_prefix)] {
      for (std::uint32_t s = 0; s < config_.shard_count; ++s) {
        persist::snapshot(*shards_[s], shard_snapshot_path(path_prefix, s));
      }
    };
    if (inline_mode_) return run_inline_void(std::move(write_all));
    return conductor_->submit_snapshot(std::move(write_all));
  }

  static std::string shard_snapshot_path(const std::string& prefix,
                                         std::uint32_t s) {
    return prefix + ".shard" + std::to_string(s);
  }

  /// Blocks until every tier submission accepted so far has completed on
  /// every shard and no phase is open anywhere.
  void drain() {
    if (inline_mode_) return;
    conductor_->drain();
  }

  /// Aggregated per-shard scheduler stats plus the conductor's tier-level
  /// admission and fence counters.
  TierStats tier_stats() const { return conductor_->stats(); }

  RouterStats router_stats() const {
    std::lock_guard<std::mutex> lock(router_stats_mutex_);
    RouterStats out = router_stats_;
    out.per_shard_items = per_shard_items_;
    return out;
  }

 private:
  /// Applies a routed mutation shard by shard. A failing shard does NOT
  /// stop the sweep — shards are independent, and applying the rest keeps
  /// the tier outcome exactly "the batch minus the unapplied list".
  template <typename T, typename Apply>
  std::uint64_t apply_mutation(const RoutedBatch<T>& routed, Apply&& apply) {
    std::uint64_t applied = 0;
    std::vector<core::Edge> unapplied;
    std::exception_ptr cause;
    bool failed = false;
    for (std::uint32_t s = 0; s < config_.shard_count; ++s) {
      const auto sub = routed.shard_span(s);
      if (sub.empty()) continue;
      try {
        applied += apply(s, sub);
      } catch (const core::PartialBatchError& e) {
        failed = true;
        applied += e.applied();
        unapplied.insert(unapplied.end(), e.unapplied().begin(),
                         e.unapplied().end());
        if (!cause) cause = e.cause();
      }
    }
    if (failed) {
      throw core::PartialBatchError(applied, std::move(unapplied), cause,
                                    "sharded mutation aborted");
    }
    return applied;
  }

  /// Inline-mode submit_*: same sweep, result delivered as a ready future
  /// (the single-graph inline_submit contract, one level up).
  template <typename T, typename Apply>
  std::future<std::uint64_t> inline_mutation(const RoutedBatch<T>& routed,
                                             Apply&& apply) {
    std::promise<std::uint64_t> done;
    std::future<std::uint64_t> f = done.get_future();
    try {
      done.set_value(apply_mutation(routed, std::forward<Apply>(apply)));
    } catch (...) {
      done.set_exception(std::current_exception());
    }
    return f;
  }

  static std::future<void> run_inline_void(std::function<void()> task) {
    std::promise<void> done;
    std::future<void> f = done.get_future();
    try {
      task();
      done.set_value();
    } catch (...) {
      done.set_exception(std::current_exception());
    }
    return f;
  }

  /// Owned per-shard vectors for the scheduled fan-out (one allocation per
  /// involved shard; empty shards stay empty vectors).
  template <typename T>
  std::vector<std::vector<T>> take_per_shard(const RoutedBatch<T>& routed) {
    std::vector<std::vector<T>> out(config_.shard_count);
    for (std::uint32_t s = 0; s < config_.shard_count; ++s) {
      if (routed.shard_size(s) != 0) out[s] = routed.shard_copy(s);
    }
    return out;
  }

  std::vector<std::vector<std::uint32_t>> take_seq(
      const RoutedBatch<core::Edge>& routed) {
    std::vector<std::vector<std::uint32_t>> out(config_.shard_count);
    for (std::uint32_t s = 0; s < config_.shard_count; ++s) {
      const auto seq = routed.shard_seq(s);
      out[s].assign(seq.begin(), seq.end());
    }
    return out;
  }

  template <typename T>
  void note_routed(const RoutedBatch<T>& routed, std::size_t items_in) const {
    std::lock_guard<std::mutex> lock(router_stats_mutex_);
    ++router_stats_.batches_routed;
    router_stats_.items_in += items_in;
    router_stats_.items_routed += routed.items.size();
    router_stats_.mirrors_emitted += routed.items.size() - items_in;
    for (std::uint32_t s = 0; s < config_.shard_count; ++s) {
      per_shard_items_[s] += routed.shard_size(s);
    }
  }

  std::vector<ShardConductor::ShardOps> make_ops() {
    std::vector<ShardConductor::ShardOps> ops(config_.shard_count);
    for (std::uint32_t s = 0; s < config_.shard_count; ++s) {
      Graph* g = shards_[s].get();
      ops[s].submit_insert = [g](std::vector<core::WeightedEdge> edges) {
        return g->submit_insert(std::move(edges));
      };
      ops[s].submit_erase = [g](std::vector<core::Edge> edges) {
        return g->submit_erase(std::move(edges));
      };
      ops[s].submit_edges_exist = [g](std::vector<core::Edge> queries,
                                      std::uint32_t deadline_ms) {
        return g->submit_edges_exist(std::move(queries), deadline_ms);
      };
      if constexpr (Policy::kHasValues) {
        ops[s].submit_edge_weights = [g](std::vector<core::Edge> queries,
                                         std::uint32_t deadline_ms) {
          return g->submit_edge_weights(std::move(queries), deadline_ms);
        };
      }
      ops[s].submit_maintenance = [g](std::function<std::uint64_t()> task) {
        return g->submit_maintenance(std::move(task));
      };
      ops[s].drain = [g] { g->schedule_drain(); };
      ops[s].stats = [g] { return g->last_schedule_stats(); };
    }
    return ops;
  }

  ShardConfig config_;
  bool undirected_ = false;
  bool inline_mode_ = false;
  std::vector<std::unique_ptr<Graph>> shards_;
  /// Declared after shards_, destroyed FIRST: in-flight fence closures
  /// deliberately never reference the conductor (see
  /// ShardConductor::fence_counters_), and each shard's own destructor
  /// then rejects whatever is still queued — every tier future resolves.
  std::unique_ptr<ShardConductor> conductor_;
  mutable std::mutex router_stats_mutex_;
  mutable RouterStats router_stats_;
  mutable std::vector<std::uint64_t> per_shard_items_;
};

using ShardedGraphMap = ShardedGraph<core::MapPolicy>;
using ShardedGraphSet = ShardedGraph<core::SetPolicy>;

}  // namespace sg::shard
