// Batch router of the multi-shard serving tier (docs/ARCHITECTURE.md
// "Sharding").
//
// A ShardedGraph partitions the edge set across N DynGraph instances by
// the hash of each directed edge's SOURCE vertex: every row of vertex u's
// adjacency lives on owner(u), so degree(u) and u-sourced queries are
// single-shard lookups. The router splits one client batch into per-shard
// sub-batches with the same count -> prefix-sum -> stable-emit pattern the
// merge-free staging layer uses in-process (PR 4): one pass counts each
// shard's share, a prefix sum carves disjoint slices of ONE presized
// backing buffer, and a second pass emits every item into its shard's
// slice preserving input order. No per-edge allocation, and the sync
// serving path hands each shard a zero-copy span of the shared buffer.
//
// Undirected tiers are a ROUTER property, not a shard property: the shards
// always run directed, and the router emits the mirror orientation
// (dst, src) to owner(dst) right behind the primary — the tier-level
// analogue of the in-graph mirror staging GraphConfig::undirected does
// within one node. Self-loops get no mirror (the engine drops them
// anyway — Algorithm 1 line 3 — and a double emission would be pure
// routing noise).
//
// Queries carry a parallel `seq` array: seq[i] is the global input
// position of items[i], the scatter-gather key that lets the tier
// reassemble per-shard result vectors into original input order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/types.hpp"

namespace sg::shard {

/// Owner shard of source vertex `src` under `shards` shards. A
/// splitmix64-style finalizer spreads consecutive vertex ids (real graphs
/// number vertices densely; `src % shards` would stripe hubs onto one
/// shard for power-of-two strides).
inline std::uint32_t owner_of(core::VertexId src,
                              std::uint32_t shards) noexcept {
  std::uint64_t x = static_cast<std::uint64_t>(src) + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % shards);
}

/// One client batch split by owner shard: `items` is a single backing
/// buffer grouped by shard (input order preserved within each shard),
/// `offsets` the shards+1 prefix sum addressing it. For queries, `seq[i]`
/// is the global input position of `items[i]`; mutations leave it empty.
template <typename T>
struct RoutedBatch {
  std::vector<T> items;
  std::vector<std::uint32_t> seq;
  std::vector<std::uint64_t> offsets;  ///< size shards + 1

  std::uint32_t shards() const noexcept {
    return static_cast<std::uint32_t>(offsets.empty() ? 0
                                                      : offsets.size() - 1);
  }
  std::uint64_t shard_size(std::uint32_t s) const noexcept {
    return offsets[s + 1] - offsets[s];
  }
  /// Zero-copy view of shard `s`'s sub-batch (the sync fan-out path).
  std::span<const T> shard_span(std::uint32_t s) const noexcept {
    return {items.data() + offsets[s],
            static_cast<std::size_t>(shard_size(s))};
  }
  /// Owned copy of shard `s`'s sub-batch — one allocation per non-empty
  /// shard, for the scheduled fan-out path (submit_* takes ownership).
  std::vector<T> shard_copy(std::uint32_t s) const {
    const auto view = shard_span(s);
    return {view.begin(), view.end()};
  }
  std::span<const std::uint32_t> shard_seq(std::uint32_t s) const noexcept {
    return {seq.data() + offsets[s], static_cast<std::size_t>(shard_size(s))};
  }
};

/// Splits an insert batch by owner shard. `mirror` (the undirected tier)
/// additionally emits (dst, src, w) to owner(dst) for every non-self-loop
/// edge — both orientations are emitted even when both land on the same
/// shard, exactly as a single undirected DynGraph stores both directions.
RoutedBatch<core::WeightedEdge> route_inserts(
    std::span<const core::WeightedEdge> edges, std::uint32_t shards,
    bool mirror);

/// Splits an erase batch; `mirror` emits the reverse orientation so an
/// undirected tier retires both stored directions.
RoutedBatch<core::Edge> route_erases(std::span<const core::Edge> edges,
                                     std::uint32_t shards, bool mirror);

/// Splits a query batch by owner(src) — queries never mirror (every row of
/// u's adjacency lives on owner(u), including mirrors) — and fills `seq`
/// with each probe's global input position for the scatter-gather
/// reassembly.
RoutedBatch<core::Edge> route_queries(std::span<const core::Edge> queries,
                                      std::uint32_t shards);

}  // namespace sg::shard
