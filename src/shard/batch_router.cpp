#include "src/shard/batch_router.hpp"

namespace sg::shard {

namespace {

/// Carves `counts` (per-shard sizes) into the offsets prefix sum and
/// returns the total. `counts` becomes the per-shard write cursors.
template <typename T>
std::uint64_t carve(std::vector<std::uint64_t>& counts, RoutedBatch<T>& out) {
  const std::uint32_t shards = static_cast<std::uint32_t>(counts.size());
  out.offsets.assign(shards + 1, 0);
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    out.offsets[s] = total;
    const std::uint64_t n = counts[s];
    counts[s] = total;  // becomes the emit cursor
    total += n;
  }
  out.offsets[shards] = total;
  return total;
}

}  // namespace

RoutedBatch<core::WeightedEdge> route_inserts(
    std::span<const core::WeightedEdge> edges, std::uint32_t shards,
    bool mirror) {
  RoutedBatch<core::WeightedEdge> out;
  std::vector<std::uint64_t> counts(shards, 0);
  for (const core::WeightedEdge& e : edges) {
    ++counts[owner_of(e.src, shards)];
    if (mirror && e.src != e.dst) ++counts[owner_of(e.dst, shards)];
  }
  out.items.resize(carve(counts, out));
  for (const core::WeightedEdge& e : edges) {
    out.items[counts[owner_of(e.src, shards)]++] = e;
    if (mirror && e.src != e.dst) {
      out.items[counts[owner_of(e.dst, shards)]++] = {e.dst, e.src, e.weight};
    }
  }
  return out;
}

RoutedBatch<core::Edge> route_erases(std::span<const core::Edge> edges,
                                     std::uint32_t shards, bool mirror) {
  RoutedBatch<core::Edge> out;
  std::vector<std::uint64_t> counts(shards, 0);
  for (const core::Edge& e : edges) {
    ++counts[owner_of(e.src, shards)];
    if (mirror && e.src != e.dst) ++counts[owner_of(e.dst, shards)];
  }
  out.items.resize(carve(counts, out));
  for (const core::Edge& e : edges) {
    out.items[counts[owner_of(e.src, shards)]++] = e;
    if (mirror && e.src != e.dst) {
      out.items[counts[owner_of(e.dst, shards)]++] = {e.dst, e.src};
    }
  }
  return out;
}

RoutedBatch<core::Edge> route_queries(std::span<const core::Edge> queries,
                                      std::uint32_t shards) {
  RoutedBatch<core::Edge> out;
  std::vector<std::uint64_t> counts(shards, 0);
  for (const core::Edge& q : queries) ++counts[owner_of(q.src, shards)];
  const std::uint64_t total = carve(counts, out);
  out.items.resize(total);
  out.seq.resize(total);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::uint64_t slot = counts[owner_of(queries[i].src, shards)]++;
    out.items[slot] = queries[i];
    out.seq[slot] = static_cast<std::uint32_t>(i);
  }
  return out;
}

}  // namespace sg::shard
