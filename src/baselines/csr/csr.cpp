#include "src/baselines/csr/csr.hpp"

#include <algorithm>

namespace sg::baselines {

Csr Csr::from_edges(std::uint32_t num_vertices,
                    std::span<const core::WeightedEdge> edges, bool sort) {
  Csr csr;
  std::vector<core::WeightedEdge> clean;
  clean.reserve(edges.size());
  for (const auto& e : edges) {
    if (e.src != e.dst && e.src < num_vertices && e.dst < num_vertices) {
      clean.push_back(e);
    }
  }
  // Sort by (src, dst), keep the *last* occurrence of a duplicate so the
  // deduplication semantics match the dynamic structures ("the most recent
  // edge and its weight will be stored").
  std::stable_sort(clean.begin(), clean.end(),
                   [](const core::WeightedEdge& a, const core::WeightedEdge& b) {
                     return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                   });
  std::vector<core::WeightedEdge> unique;
  unique.reserve(clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (i + 1 < clean.size() && clean[i].src == clean[i + 1].src &&
        clean[i].dst == clean[i + 1].dst) {
      continue;  // superseded by a later duplicate
    }
    unique.push_back(clean[i]);
  }

  csr.row_offsets_.assign(num_vertices + 1, 0);
  for (const auto& e : unique) ++csr.row_offsets_[e.src + 1];
  for (std::uint32_t u = 0; u < num_vertices; ++u) {
    csr.row_offsets_[u + 1] += csr.row_offsets_[u];
  }
  csr.col_indices_.resize(unique.size());
  csr.weights_.resize(unique.size());
  std::vector<std::uint64_t> cursor(csr.row_offsets_.begin(),
                                    csr.row_offsets_.end() - 1);
  for (const auto& e : unique) {
    const std::uint64_t pos = cursor[e.src]++;
    csr.col_indices_[pos] = e.dst;
    csr.weights_[pos] = e.weight;
  }
  if (!sort) {
    // Input was already grouped; shuffle within rows deterministically so
    // "unsorted CSR" is genuinely unsorted (the sort benches re-sort it).
    for (std::uint32_t u = 0; u < num_vertices; ++u) {
      auto row = csr.col_indices_.begin() + static_cast<std::ptrdiff_t>(csr.row_offsets_[u]);
      auto row_end = csr.col_indices_.begin() + static_cast<std::ptrdiff_t>(csr.row_offsets_[u + 1]);
      std::reverse(row, row_end);
    }
  }
  return csr;
}

bool Csr::edge_exists(core::VertexId u, core::VertexId v) const noexcept {
  if (u >= num_vertices()) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::uint32_t> Csr::degrees() const {
  std::vector<std::uint32_t> out(num_vertices());
  for (std::uint32_t u = 0; u < num_vertices(); ++u) out[u] = degree(u);
  return out;
}

}  // namespace sg::baselines
