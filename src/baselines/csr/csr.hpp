// Static CSR (Compressed Sparse Row) — the packed, non-updatable baseline
// of §II-A. Used (a) as the static-graph comparator for triangle counting
// (§V-C references Gunrock's CSR) and (b) as the substrate whose
// adjacency-sort cost Table VIII measures.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/types.hpp"

namespace sg::baselines {

class Csr {
 public:
  Csr() = default;

  /// Builds from a directed edge list. Duplicate edges and self-loops are
  /// removed (CSR is the clean static reference the dynamic structures are
  /// validated against). Adjacency lists come out sorted iff `sort` is set.
  static Csr from_edges(std::uint32_t num_vertices,
                        std::span<const core::WeightedEdge> edges,
                        bool sort = true);

  std::uint32_t num_vertices() const noexcept {
    return static_cast<std::uint32_t>(row_offsets_.size() - 1);
  }
  std::uint64_t num_edges() const noexcept { return col_indices_.size(); }

  std::uint32_t degree(core::VertexId u) const noexcept {
    return static_cast<std::uint32_t>(row_offsets_[u + 1] - row_offsets_[u]);
  }
  std::span<const core::VertexId> neighbors(core::VertexId u) const noexcept {
    return {col_indices_.data() + row_offsets_[u], degree(u)};
  }
  std::span<const core::Weight> weights(core::VertexId u) const noexcept {
    return {weights_.data() + row_offsets_[u], degree(u)};
  }

  /// Binary search in the (sorted) adjacency list: the O(log n) query the
  /// paper contrasts with O(1) hash probes.
  bool edge_exists(core::VertexId u, core::VertexId v) const noexcept;

  std::span<const std::uint64_t> row_offsets() const noexcept {
    return row_offsets_;
  }
  /// Mutable column array: the sort-cost benchmark shuffles and re-sorts it.
  std::span<core::VertexId> col_indices_mutable() noexcept { return col_indices_; }

  std::vector<std::uint32_t> degrees() const;

 private:
  std::vector<std::uint64_t> row_offsets_{0};
  std::vector<core::VertexId> col_indices_;
  std::vector<core::Weight> weights_;
};

}  // namespace sg::baselines
