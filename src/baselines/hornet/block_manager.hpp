// Hornet's block memory manager (§II-B): "Hornet divides the allocated
// available memory into blocks that can store a number of edges up to a
// specific power of two. ... For each array of blocks, a B-Tree tracks the
// free and used ones. Memory management is done on the CPU."
//
// We keep one pool per power-of-two size class; free blocks of each class
// are tracked in an ordered (red-black, i.e. B-tree-family) index. Blocks
// hold destination + weight arrays (SoA, Hornet-style).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/core/types.hpp"

namespace sg::baselines::hornet {

/// Handle of one block: size class + index into that class's pool.
struct BlockHandle {
  std::uint8_t size_class = 0;     ///< block capacity = 1 << size_class
  std::uint32_t index = 0;
  bool valid = false;

  std::uint32_t capacity() const noexcept { return 1u << size_class; }
};

class BlockManager {
 public:
  static constexpr int kMaxClass = 24;  ///< up to 16M-edge adjacency lists

  BlockManager() = default;
  BlockManager(const BlockManager&) = delete;
  BlockManager& operator=(const BlockManager&) = delete;

  /// Smallest class whose capacity holds `edges` ("initially an adjacency
  /// list is stored inside the smallest power-of-two memory block that can
  /// contain it").
  static std::uint8_t class_for(std::uint32_t edges) noexcept;

  /// Allocates a block of the given class (reusing a freed one if any).
  /// Thread-safe; management is centralized, like Hornet's CPU-side manager.
  BlockHandle allocate(std::uint8_t size_class);

  void free(BlockHandle handle);

  core::VertexId* dst(BlockHandle handle) noexcept;
  core::Weight* weight(BlockHandle handle) noexcept;
  const core::VertexId* dst(BlockHandle handle) const noexcept;
  const core::Weight* weight(BlockHandle handle) const noexcept;

  std::uint64_t blocks_in_use() const noexcept { return in_use_; }
  std::uint64_t bytes_reserved() const noexcept { return bytes_reserved_; }

 private:
  struct Pool {
    // Block i of class c lives at storage[i << c .. (i+1) << c).
    std::vector<core::VertexId> dsts;
    std::vector<core::Weight> weights;
    std::uint32_t next_block = 0;
    std::set<std::uint32_t> free_blocks;  // the "B-Tree" of free blocks
  };

  Pool pools_[kMaxClass + 1];
  mutable std::mutex mutex_;
  std::uint64_t in_use_ = 0;
  std::uint64_t bytes_reserved_ = 0;
};

}  // namespace sg::baselines::hornet
