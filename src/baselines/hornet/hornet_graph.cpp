#include "src/baselines/hornet/hornet_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/simt/thread_pool.hpp"

namespace sg::baselines::hornet {

namespace {

bool by_src_dst(const core::WeightedEdge& a, const core::WeightedEdge& b) {
  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
}

bool by_src_dst_plain(const core::Edge& a, const core::Edge& b) {
  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
}

}  // namespace

HornetGraph::HornetGraph(std::uint32_t vertex_capacity)
    : handle_(vertex_capacity), used_(vertex_capacity, 0) {}

void HornetGraph::grow_to_fit(core::VertexId u, std::uint32_t needed) {
  BlockHandle old = handle_[u];
  if (old.valid && old.capacity() >= needed) return;
  // "the vertex adjacency list is copied to the next smallest power-of-two
  // memory block" that fits the grown list.
  const BlockHandle grown = blocks_.allocate(BlockManager::class_for(needed));
  if (old.valid) {
    std::copy_n(blocks_.dst(old), used_[u], blocks_.dst(grown));
    std::copy_n(blocks_.weight(old), used_[u], blocks_.weight(grown));
    blocks_.free(old);
  }
  handle_[u] = grown;
}

void HornetGraph::bulk_build(std::span<const core::WeightedEdge> edges) {
  // Global sort + dedup: the memory-hungry initialization the paper calls
  // out ("we believe that this is due to the memory overhead of sorting and
  // duplicate checking").
  std::vector<core::WeightedEdge> sorted(edges.begin(), edges.end());
  std::erase_if(sorted, [this](const core::WeightedEdge& e) {
    return e.src == e.dst || e.src >= num_vertices() || e.dst >= num_vertices();
  });
  std::stable_sort(sorted.begin(), sorted.end(), by_src_dst);
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](const core::WeightedEdge& a,
                              const core::WeightedEdge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               sorted.end());
  std::size_t i = 0;
  while (i < sorted.size()) {
    const core::VertexId u = sorted[i].src;
    std::size_t j = i;
    while (j < sorted.size() && sorted[j].src == u) ++j;
    const auto degree = static_cast<std::uint32_t>(j - i);
    grow_to_fit(u, degree);
    core::VertexId* dst = blocks_.dst(handle_[u]);
    core::Weight* weight = blocks_.weight(handle_[u]);
    for (std::size_t k = i; k < j; ++k) {
      dst[k - i] = sorted[k].dst;
      weight[k - i] = sorted[k].weight;
    }
    used_[u] = degree;
    i = j;
  }
}

std::uint64_t HornetGraph::insert_edges(std::span<const core::WeightedEdge> edges) {
  // Step 1: sort the batch and dedup within it (keep the last duplicate so
  // "most recent weight wins" matches the dynamic structures).
  std::vector<core::WeightedEdge> batch(edges.begin(), edges.end());
  std::erase_if(batch, [this](const core::WeightedEdge& e) {
    return e.src == e.dst || e.src >= num_vertices() || e.dst >= num_vertices();
  });
  std::stable_sort(batch.begin(), batch.end(), by_src_dst);
  std::vector<core::WeightedEdge> unique;
  unique.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i + 1 < batch.size() && batch[i].src == batch[i + 1].src &&
        batch[i].dst == batch[i + 1].dst) {
      continue;
    }
    unique.push_back(batch[i]);
  }
  // Step 2: per affected vertex, cross-dedup against the existing list
  // (sort a copy of the adjacency, binary search each candidate), then
  // append survivors, growing the block if capacity is exceeded. Parallel
  // over affected vertices; each vertex's group is contiguous after the sort.
  std::vector<std::size_t> group_starts;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    if (i == 0 || unique[i].src != unique[i - 1].src) group_starts.push_back(i);
  }
  group_starts.push_back(unique.size());
  std::atomic<std::uint64_t> added{0};
  simt::ThreadPool::instance().parallel_for(
      group_starts.size() - 1, [&](std::uint64_t g) {
        const std::size_t begin = group_starts[g];
        const std::size_t end = group_starts[g + 1];
        const core::VertexId u = unique[begin].src;
        // Cross-duplicate check: sorted snapshot of the current adjacency.
        std::vector<core::VertexId> existing(neighbors(u).begin(),
                                             neighbors(u).end());
        std::sort(existing.begin(), existing.end());
        std::vector<core::WeightedEdge> fresh;
        fresh.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          if (std::binary_search(existing.begin(), existing.end(),
                                 unique[i].dst)) {
            // Edge already present: overwrite the weight in place.
            core::VertexId* dst = blocks_.dst(handle_[u]);
            core::Weight* weight = blocks_.weight(handle_[u]);
            for (std::uint32_t k = 0; k < used_[u]; ++k) {
              if (dst[k] == unique[i].dst) {
                weight[k] = unique[i].weight;
                break;
              }
            }
          } else {
            fresh.push_back(unique[i]);
          }
        }
        if (fresh.empty()) return;
        grow_to_fit(u, used_[u] + static_cast<std::uint32_t>(fresh.size()));
        core::VertexId* dst = blocks_.dst(handle_[u]);
        core::Weight* weight = blocks_.weight(handle_[u]);
        for (const auto& e : fresh) {
          dst[used_[u]] = e.dst;
          weight[used_[u]] = e.weight;
          ++used_[u];
        }
        added.fetch_add(fresh.size(), std::memory_order_relaxed);
      });
  return added.load(std::memory_order_relaxed);
}

std::uint64_t HornetGraph::delete_edges(std::span<const core::Edge> edges) {
  std::vector<core::Edge> batch(edges.begin(), edges.end());
  std::erase_if(batch, [this](const core::Edge& e) {
    return e.src >= num_vertices();
  });
  std::stable_sort(batch.begin(), batch.end(), by_src_dst_plain);
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  std::vector<std::size_t> group_starts;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i == 0 || batch[i].src != batch[i - 1].src) group_starts.push_back(i);
  }
  group_starts.push_back(batch.size());
  std::atomic<std::uint64_t> removed{0};
  simt::ThreadPool::instance().parallel_for(
      group_starts.empty() ? 0 : group_starts.size() - 1, [&](std::uint64_t g) {
        const std::size_t begin = group_starts[g];
        const std::size_t end = group_starts[g + 1];
        const core::VertexId u = batch[begin].src;
        if (!handle_[u].valid || used_[u] == 0) return;
        core::VertexId* dst = blocks_.dst(handle_[u]);
        core::Weight* weight = blocks_.weight(handle_[u]);
        std::uint64_t local_removed = 0;
        // Compact the array, dropping every destination in the batch group.
        std::uint32_t write = 0;
        for (std::uint32_t read = 0; read < used_[u]; ++read) {
          bool doomed = false;
          for (std::size_t i = begin; i < end; ++i) {
            if (batch[i].dst == dst[read]) {
              doomed = true;
              break;
            }
          }
          if (doomed) {
            ++local_removed;
            continue;
          }
          dst[write] = dst[read];
          weight[write] = weight[read];
          ++write;
        }
        used_[u] = write;
        removed.fetch_add(local_removed, std::memory_order_relaxed);
      });
  return removed.load(std::memory_order_relaxed);
}

std::uint64_t HornetGraph::num_edges() const noexcept {
  std::uint64_t total = 0;
  for (std::uint32_t d : used_) total += d;
  return total;
}

bool HornetGraph::edge_exists(core::VertexId u, core::VertexId v) const noexcept {
  if (u >= num_vertices() || !handle_[u].valid) return false;
  const auto nbrs = neighbors(u);
  for (core::VertexId w : nbrs) {
    if (w == v) return true;
  }
  return false;
}

void HornetGraph::sort_adjacency_lists() {
  simt::ThreadPool::instance().parallel_for(num_vertices(), [&](std::uint64_t u) {
    if (!handle_[u].valid || used_[u] < 2) return;
    core::VertexId* dst = blocks_.dst(handle_[u]);
    std::sort(dst, dst + used_[u]);
  });
}

bool HornetGraph::adjacency_sorted(core::VertexId u) const noexcept {
  const auto nbrs = neighbors(u);
  return std::is_sorted(nbrs.begin(), nbrs.end());
}

std::vector<std::uint64_t> HornetGraph::row_offsets() const {
  std::vector<std::uint64_t> offsets(num_vertices() + 1, 0);
  for (std::uint32_t u = 0; u < num_vertices(); ++u) {
    offsets[u + 1] = offsets[u] + used_[u];
  }
  return offsets;
}

}  // namespace sg::baselines::hornet
