// Hornet-style dynamic graph baseline [Busato et al., HPEC 2018], as
// characterized by the paper:
//   * per-vertex adjacency array in the smallest power-of-two block that
//     fits; overflowing inserts copy the list to the next block size;
//   * duplicates forbidden — enforced by sorting (batch and, on demand,
//     adjacency) for deduplication, the cost the paper highlights;
//   * vertex insertion/deletion expressed as edge insertions/deletions
//     ("Hornet does not implement vertex deletion" as a vertex op);
//   * unsorted adjacency by default; maintaining sorted order for
//     intersect-based algorithms costs an explicit sort (Table VIII).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/baselines/hornet/block_manager.hpp"
#include "src/core/types.hpp"

namespace sg::baselines::hornet {

class HornetGraph {
 public:
  explicit HornetGraph(std::uint32_t vertex_capacity);

  /// Bulk build from a directed edge list (duplicates/self-loops dropped
  /// via global sort+dedup, the Hornet initialization path).
  void bulk_build(std::span<const core::WeightedEdge> edges);

  /// Batched insertion: sort the batch, dedup within it, then per affected
  /// vertex merge-dedup against the existing list, growing blocks as
  /// needed. Returns the number of new unique edges stored.
  std::uint64_t insert_edges(std::span<const core::WeightedEdge> edges);

  /// Batched deletion (compacting the adjacency array). Returns #removed.
  std::uint64_t delete_edges(std::span<const core::Edge> edges);

  std::uint32_t num_vertices() const noexcept {
    return static_cast<std::uint32_t>(used_.size());
  }
  std::uint32_t degree(core::VertexId u) const noexcept { return used_[u]; }
  std::uint64_t num_edges() const noexcept;

  std::span<const core::VertexId> neighbors(core::VertexId u) const noexcept {
    return {blocks_.dst(handle_[u]), used_[u]};
  }
  std::span<const core::Weight> weights(core::VertexId u) const noexcept {
    return {blocks_.weight(handle_[u]), used_[u]};
  }

  /// Linear scan — the O(n) unsorted-list query the paper contrasts with
  /// hash probing. After sort_adjacency_lists() callers may binary search.
  bool edge_exists(core::VertexId u, core::VertexId v) const noexcept;

  /// Sorts every adjacency list in place (not included in update timings,
  /// exactly as in the paper's Table VII methodology).
  void sort_adjacency_lists();
  bool adjacency_sorted(core::VertexId u) const noexcept;

  /// Flattened CSR-style offsets (for the segmented-sort benches).
  std::vector<std::uint64_t> row_offsets() const;

  std::uint64_t bytes_reserved() const noexcept { return blocks_.bytes_reserved(); }

 private:
  void grow_to_fit(core::VertexId u, std::uint32_t needed);

  BlockManager blocks_;
  std::vector<BlockHandle> handle_;
  std::vector<std::uint32_t> used_;
};

}  // namespace sg::baselines::hornet
