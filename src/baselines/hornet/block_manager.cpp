#include "src/baselines/hornet/block_manager.hpp"

#include <bit>
#include <stdexcept>

namespace sg::baselines::hornet {

std::uint8_t BlockManager::class_for(std::uint32_t edges) noexcept {
  if (edges <= 1) return 0;
  return static_cast<std::uint8_t>(std::bit_width(edges - 1));
}

BlockHandle BlockManager::allocate(std::uint8_t size_class) {
  if (size_class > kMaxClass) {
    throw std::length_error("hornet: adjacency list exceeds max block size");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Pool& pool = pools_[size_class];
  BlockHandle handle;
  handle.size_class = size_class;
  handle.valid = true;
  if (!pool.free_blocks.empty()) {
    handle.index = *pool.free_blocks.begin();
    pool.free_blocks.erase(pool.free_blocks.begin());
  } else {
    handle.index = pool.next_block++;
    const std::size_t needed = static_cast<std::size_t>(pool.next_block)
                               << size_class;
    pool.dsts.resize(needed);
    pool.weights.resize(needed);
    bytes_reserved_ += (sizeof(core::VertexId) + sizeof(core::Weight))
                       << size_class;
  }
  ++in_use_;
  return handle;
}

void BlockManager::free(BlockHandle handle) {
  if (!handle.valid) return;
  std::lock_guard<std::mutex> lock(mutex_);
  pools_[handle.size_class].free_blocks.insert(handle.index);
  --in_use_;
}

core::VertexId* BlockManager::dst(BlockHandle handle) noexcept {
  return pools_[handle.size_class].dsts.data() +
         (static_cast<std::size_t>(handle.index) << handle.size_class);
}

core::Weight* BlockManager::weight(BlockHandle handle) noexcept {
  return pools_[handle.size_class].weights.data() +
         (static_cast<std::size_t>(handle.index) << handle.size_class);
}

const core::VertexId* BlockManager::dst(BlockHandle handle) const noexcept {
  return pools_[handle.size_class].dsts.data() +
         (static_cast<std::size_t>(handle.index) << handle.size_class);
}

const core::Weight* BlockManager::weight(BlockHandle handle) const noexcept {
  return pools_[handle.size_class].weights.data() +
         (static_cast<std::size_t>(handle.index) << handle.size_class);
}

}  // namespace sg::baselines::hornet
