// faimGraph-style dynamic graph baseline [Winter et al., SC 2018], as
// characterized by the paper:
//   * per-vertex adjacency stored in fixed-size (128 B) linked pages;
//   * fully device-side memory management with reclamation queues for both
//     pages and deleted vertex ids (ids are reused by later insertions);
//   * uniqueness enforced by an O(n) scan of the list on every insertion;
//   * vertex deletion removes the vertex from neighbour lists, frees its
//     pages, and queues its id for reuse;
//   * batch updates capped at < 1M edges ("faimGraph only supports batch
//     updates of sizes less than 1M") — enforced here for fidelity.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "src/baselines/faim/page_pool.hpp"
#include "src/core/types.hpp"

namespace sg::baselines::faim {

/// Hard batch-size cap reproduced from the paper's Table II footnote.
inline constexpr std::size_t kMaxBatchSize = (1u << 20) - 1;

class FaimGraph {
 public:
  explicit FaimGraph(std::uint32_t vertex_capacity, bool undirected = false);

  void bulk_build(std::span<const core::WeightedEdge> edges);

  /// Batched insertion (duplicate scan + tail append). Throws
  /// std::length_error beyond kMaxBatchSize. Returns #new unique edges.
  std::uint64_t insert_edges(std::span<const core::WeightedEdge> edges);

  /// Batched deletion (scan + hole-fill compaction; empty tail pages are
  /// reclaimed to the page queue). Returns #removed.
  std::uint64_t delete_edges(std::span<const core::Edge> edges);

  /// Vertex insertion: reuses ids from the deleted-vertex queue when
  /// available ("reuse identifiers of deleted vertices during subsequent
  /// vertex insertions"). Returns the id assigned to each requested vertex.
  std::vector<core::VertexId> insert_vertices(std::uint32_t count);

  /// Vertex deletion: neighbour cleanup + page reclamation + id queueing.
  void delete_vertices(std::span<const core::VertexId> ids);

  std::uint32_t num_vertices() const noexcept {
    return static_cast<std::uint32_t>(head_.size());
  }
  std::uint32_t degree(core::VertexId u) const noexcept { return count_[u]; }
  std::uint64_t num_edges() const noexcept;
  bool vertex_live(core::VertexId u) const noexcept {
    return u < head_.size() && !deleted_[u];
  }

  /// O(n) list scan (the unsorted-list query cost the paper contrasts with
  /// hash probes).
  bool edge_exists(core::VertexId u, core::VertexId v) const noexcept;

  void for_each_neighbor(core::VertexId u,
                         const std::function<void(core::VertexId, core::Weight)>&
                             fn) const;

  /// Copies the adjacency list out (used by triangle counting).
  std::vector<core::VertexId> neighbors(core::VertexId u) const;

  /// In-place per-list insertion sort across the page chain — the
  /// faimGraph sort of Table VIII (fast for small lists, quadratic blowup
  /// on high-degree vertices).
  void sort_adjacency_lists();
  bool adjacency_sorted(core::VertexId u) const noexcept;

  std::uint64_t pages_in_use() const noexcept { return pool_.pages_in_use(); }
  std::size_t page_queue_size() const noexcept { return pool_.free_queue_size(); }
  std::size_t vertex_queue_size() const noexcept {
    return vertex_reuse_queue_.size();
  }

 private:
  // Unsynchronized single-edge primitives; callers guard with the
  // per-vertex spinlock when running in parallel.
  bool insert_one(core::VertexId src, core::VertexId dst, core::Weight w);
  bool delete_one(core::VertexId src, core::VertexId dst);
  void free_all_pages(core::VertexId u);

  void lock_vertex(core::VertexId u) noexcept;
  void unlock_vertex(core::VertexId u) noexcept;

  PagePool pool_;
  bool undirected_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> tail_;
  std::vector<std::uint32_t> count_;
  std::vector<std::uint8_t> deleted_;
  std::vector<std::uint8_t> lock_;  // per-vertex spinlocks (atomic_ref)
  std::vector<core::VertexId> vertex_reuse_queue_;
  std::uint32_t next_fresh_vertex_ = 0;
  std::mutex vertex_queue_mutex_;
};

}  // namespace sg::baselines::faim
