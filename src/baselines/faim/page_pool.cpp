#include "src/baselines/faim/page_pool.hpp"

#include <stdexcept>

namespace sg::baselines::faim {

PagePool::PagePool()
    : chunks_(new std::unique_ptr<Page[]>[kMaxChunks]) {}

std::uint32_t PagePool::allocate() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++in_use_;
  if (!free_queue_.empty()) {
    const std::uint32_t page = free_queue_.back();
    free_queue_.pop_back();
    at(page) = Page{};
    return page;
  }
  if (next_page_ >= chunk_count_ * kChunkPages) {
    if (chunk_count_ >= kMaxChunks) throw std::bad_alloc();
    chunks_[chunk_count_].reset(new Page[kChunkPages]);
    ++chunk_count_;
  }
  return next_page_++;
}

void PagePool::free(std::uint32_t page) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_queue_.push_back(page);
  --in_use_;
}

}  // namespace sg::baselines::faim
