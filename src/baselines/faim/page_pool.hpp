// faimGraph's memory layer (§II-B): "a single memory pool on the GPU ...
// Queues are used for memory reclamations of pages and deleted vertex IDs."
// Pages are 128 bytes (configured in the paper's tests to match the slab
// size) and hold 15 <dst, weight> pairs plus a next-page link.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/types.hpp"

namespace sg::baselines::faim {

inline constexpr std::uint32_t kNullPage = 0xFFFFFFFFu;
inline constexpr int kPairsPerPage = 15;  ///< 15*8 B data + link in 128 B

struct alignas(128) Page {
  core::VertexId dst[kPairsPerPage];
  core::Weight weight[kPairsPerPage];
  std::uint32_t reserved = 0;
  std::uint32_t next = kNullPage;
};
static_assert(sizeof(Page) == 128);

class PagePool {
 public:
  PagePool();
  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  /// Pops a reclaimed page from the free queue, or carves a new one from
  /// the pool. Thread-safe; existing pages never move (chunked storage),
  /// so concurrent at() on live pages is safe during growth.
  std::uint32_t allocate();

  /// Pushes the page onto the reclamation queue.
  void free(std::uint32_t page);

  Page& at(std::uint32_t page) noexcept {
    return chunks_[page >> kChunkBits][page & (kChunkPages - 1)];
  }
  const Page& at(std::uint32_t page) const noexcept {
    return chunks_[page >> kChunkBits][page & (kChunkPages - 1)];
  }

  std::uint64_t pages_in_use() const noexcept { return in_use_; }
  std::uint64_t bytes_reserved() const noexcept {
    return chunk_count_ * kChunkPages * sizeof(Page);
  }
  std::size_t free_queue_size() const noexcept { return free_queue_.size(); }

 private:
  static constexpr std::uint32_t kChunkBits = 13;
  static constexpr std::uint32_t kChunkPages = 1u << kChunkBits;  // 1 MiB
  static constexpr std::uint32_t kMaxChunks = 1u << 15;

  // Chunk pointer table is preallocated so readers never observe a moving
  // table; only chunk slots transition nullptr -> chunk under the mutex.
  std::unique_ptr<std::unique_ptr<Page[]>[]> chunks_;
  std::uint32_t chunk_count_ = 0;
  std::uint32_t next_page_ = 0;
  std::vector<std::uint32_t> free_queue_;
  std::mutex mutex_;
  std::uint64_t in_use_ = 0;
};

}  // namespace sg::baselines::faim
