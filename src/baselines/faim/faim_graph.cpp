#include "src/baselines/faim/faim_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/simt/atomics.hpp"
#include "src/simt/thread_pool.hpp"

namespace sg::baselines::faim {

FaimGraph::FaimGraph(std::uint32_t vertex_capacity, bool undirected)
    : undirected_(undirected),
      head_(vertex_capacity, kNullPage),
      tail_(vertex_capacity, kNullPage),
      count_(vertex_capacity, 0),
      deleted_(vertex_capacity, 0),
      lock_(vertex_capacity, 0),
      next_fresh_vertex_(vertex_capacity) {}

void FaimGraph::lock_vertex(core::VertexId u) noexcept {
  std::atomic_ref<std::uint8_t> flag(lock_[u]);
  while (flag.exchange(1, std::memory_order_acquire) != 0) {
  }
}

void FaimGraph::unlock_vertex(core::VertexId u) noexcept {
  std::atomic_ref<std::uint8_t> flag(lock_[u]);
  flag.store(0, std::memory_order_release);
}

bool FaimGraph::insert_one(core::VertexId src, core::VertexId dst,
                           core::Weight w) {
  // Duplicate scan over the whole list — the O(n) insertion-time
  // uniqueness check of a list-based structure.
  std::uint32_t page = head_[src];
  std::uint32_t position = 0;
  while (page != kNullPage) {
    Page& p = pool_.at(page);
    for (std::uint32_t i = 0; i < kPairsPerPage && position < count_[src];
         ++i, ++position) {
      if (p.dst[i] == dst) {
        p.weight[i] = w;  // most recent weight wins
        return false;
      }
    }
    page = p.next;
  }
  // Append at the tail; allocate a page when the last one is full.
  const std::uint32_t slot = count_[src] % kPairsPerPage;
  if (count_[src] == 0 || slot == 0) {
    const std::uint32_t fresh = pool_.allocate();
    if (head_[src] == kNullPage) {
      head_[src] = fresh;
    } else {
      pool_.at(tail_[src]).next = fresh;
    }
    tail_[src] = fresh;
  }
  Page& tail_page = pool_.at(tail_[src]);
  tail_page.dst[slot] = dst;
  tail_page.weight[slot] = w;
  ++count_[src];
  return true;
}

bool FaimGraph::delete_one(core::VertexId src, core::VertexId dst) {
  std::uint32_t page = head_[src];
  std::uint32_t position = 0;
  while (page != kNullPage) {
    Page& p = pool_.at(page);
    for (std::uint32_t i = 0; i < kPairsPerPage && position < count_[src];
         ++i, ++position) {
      if (p.dst[i] != dst) continue;
      // Fill the hole with the last live edge, then shrink.
      const std::uint32_t last = count_[src] - 1;
      Page& last_page = pool_.at(tail_[src]);
      const std::uint32_t last_slot = last % kPairsPerPage;
      p.dst[i] = last_page.dst[last_slot];
      p.weight[i] = last_page.weight[last_slot];
      --count_[src];
      // Reclaim the tail page if it became empty.
      if (count_[src] % kPairsPerPage == 0) {
        if (count_[src] == 0) {
          pool_.free(head_[src]);
          head_[src] = tail_[src] = kNullPage;
        } else {
          std::uint32_t walk = head_[src];
          while (pool_.at(walk).next != tail_[src]) walk = pool_.at(walk).next;
          pool_.free(tail_[src]);
          pool_.at(walk).next = kNullPage;
          tail_[src] = walk;
        }
      }
      return true;
    }
    page = p.next;
  }
  return false;
}

void FaimGraph::free_all_pages(core::VertexId u) {
  std::uint32_t page = head_[u];
  while (page != kNullPage) {
    const std::uint32_t next = pool_.at(page).next;
    pool_.free(page);
    page = next;
  }
  head_[u] = tail_[u] = kNullPage;
  count_[u] = 0;
}

void FaimGraph::bulk_build(std::span<const core::WeightedEdge> edges) {
  // Initialization path: group by source, then fill pages sequentially.
  std::vector<core::WeightedEdge> sorted(edges.begin(), edges.end());
  std::erase_if(sorted, [this](const core::WeightedEdge& e) {
    return e.src == e.dst || e.src >= num_vertices() || e.dst >= num_vertices();
  });
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const core::WeightedEdge& a, const core::WeightedEdge& b) {
                     return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                   });
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](const core::WeightedEdge& a,
                              const core::WeightedEdge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               sorted.end());
  // Uniqueness is guaranteed by the dedup above, so append directly without
  // the per-edge duplicate scan (the scan is an *update-path* cost).
  for (const auto& e : sorted) {
    const std::uint32_t slot = count_[e.src] % kPairsPerPage;
    if (count_[e.src] == 0 || slot == 0) {
      const std::uint32_t fresh = pool_.allocate();
      if (head_[e.src] == kNullPage) {
        head_[e.src] = fresh;
      } else {
        pool_.at(tail_[e.src]).next = fresh;
      }
      tail_[e.src] = fresh;
    }
    Page& tail_page = pool_.at(tail_[e.src]);
    tail_page.dst[slot] = e.dst;
    tail_page.weight[slot] = e.weight;
    ++count_[e.src];
  }
}

std::uint64_t FaimGraph::insert_edges(std::span<const core::WeightedEdge> edges) {
  if (edges.size() > kMaxBatchSize) {
    throw std::length_error("faimGraph: batch updates must be < 1M edges");
  }
  std::atomic<std::uint64_t> added{0};
  simt::ThreadPool::instance().parallel_for(edges.size(), [&](std::uint64_t i) {
    const auto& e = edges[i];
    if (e.src == e.dst || e.src >= num_vertices() || e.dst >= num_vertices()) {
      return;
    }
    lock_vertex(e.src);
    const bool fresh = insert_one(e.src, e.dst, e.weight);
    unlock_vertex(e.src);
    if (fresh) added.fetch_add(1, std::memory_order_relaxed);
  });
  return added.load(std::memory_order_relaxed);
}

std::uint64_t FaimGraph::delete_edges(std::span<const core::Edge> edges) {
  if (edges.size() > kMaxBatchSize) {
    throw std::length_error("faimGraph: batch updates must be < 1M edges");
  }
  std::atomic<std::uint64_t> removed{0};
  simt::ThreadPool::instance().parallel_for(edges.size(), [&](std::uint64_t i) {
    const auto& e = edges[i];
    if (e.src >= num_vertices()) return;
    lock_vertex(e.src);
    const bool hit = delete_one(e.src, e.dst);
    unlock_vertex(e.src);
    if (hit) removed.fetch_add(1, std::memory_order_relaxed);
  });
  return removed.load(std::memory_order_relaxed);
}

std::vector<core::VertexId> FaimGraph::insert_vertices(std::uint32_t count) {
  std::vector<core::VertexId> assigned;
  assigned.reserve(count);
  std::lock_guard<std::mutex> lock(vertex_queue_mutex_);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!vertex_reuse_queue_.empty()) {
      const core::VertexId reused = vertex_reuse_queue_.back();
      vertex_reuse_queue_.pop_back();
      deleted_[reused] = 0;
      assigned.push_back(reused);
    } else {
      const core::VertexId fresh = next_fresh_vertex_++;
      head_.push_back(kNullPage);
      tail_.push_back(kNullPage);
      count_.push_back(0);
      deleted_.push_back(0);
      lock_.push_back(0);
      assigned.push_back(fresh);
    }
  }
  return assigned;
}

void FaimGraph::delete_vertices(std::span<const core::VertexId> ids) {
  // Mark first so neighbour cleanup can skip vertices dying in this batch.
  for (core::VertexId v : ids) {
    if (v < num_vertices()) deleted_[v] = 1;
  }
  simt::ThreadPool::instance().parallel_for(ids.size(), [&](std::uint64_t i) {
    const core::VertexId v = ids[i];
    if (v >= num_vertices()) return;
    if (undirected_) {
      // Remove v from each neighbour's list (guarded per neighbour).
      std::uint32_t page = head_[v];
      std::uint32_t position = 0;
      while (page != kNullPage) {
        const Page& p = pool_.at(page);
        for (std::uint32_t s = 0; s < kPairsPerPage && position < count_[v];
             ++s, ++position) {
          const core::VertexId dst = p.dst[s];
          if (dst >= num_vertices() || deleted_[dst]) continue;
          lock_vertex(dst);
          delete_one(dst, v);
          unlock_vertex(dst);
        }
        page = p.next;
      }
    }
    lock_vertex(v);
    free_all_pages(v);
    unlock_vertex(v);
  });
  if (!undirected_) {
    // Directed graphs: follow-up sweep over all adjacency lists.
    simt::ThreadPool::instance().parallel_for(num_vertices(),
                                              [&](std::uint64_t u) {
      const auto vertex = static_cast<core::VertexId>(u);
      if (deleted_[vertex] || head_[vertex] == kNullPage) return;
      lock_vertex(vertex);
      std::vector<core::VertexId> doomed;
      std::uint32_t page = head_[vertex];
      std::uint32_t position = 0;
      while (page != kNullPage) {
        const Page& p = pool_.at(page);
        for (std::uint32_t s = 0; s < kPairsPerPage && position < count_[vertex];
             ++s, ++position) {
          if (p.dst[s] < num_vertices() && deleted_[p.dst[s]]) {
            doomed.push_back(p.dst[s]);
          }
        }
        page = p.next;
      }
      for (core::VertexId d : doomed) delete_one(vertex, d);
      unlock_vertex(vertex);
    });
  }
  {
    std::lock_guard<std::mutex> lock(vertex_queue_mutex_);
    for (core::VertexId v : ids) {
      if (v < num_vertices()) vertex_reuse_queue_.push_back(v);
    }
  }
}

std::uint64_t FaimGraph::num_edges() const noexcept {
  std::uint64_t total = 0;
  for (std::uint32_t c : count_) total += c;
  return total;
}

bool FaimGraph::edge_exists(core::VertexId u, core::VertexId v) const noexcept {
  if (u >= num_vertices() || deleted_[u]) return false;
  std::uint32_t page = head_[u];
  std::uint32_t position = 0;
  while (page != kNullPage) {
    const Page& p = pool_.at(page);
    for (std::uint32_t i = 0; i < kPairsPerPage && position < count_[u];
         ++i, ++position) {
      if (p.dst[i] == v) return true;
    }
    page = p.next;
  }
  return false;
}

void FaimGraph::for_each_neighbor(
    core::VertexId u,
    const std::function<void(core::VertexId, core::Weight)>& fn) const {
  if (u >= num_vertices() || deleted_[u]) return;
  std::uint32_t page = head_[u];
  std::uint32_t position = 0;
  while (page != kNullPage) {
    const Page& p = pool_.at(page);
    for (std::uint32_t i = 0; i < kPairsPerPage && position < count_[u];
         ++i, ++position) {
      fn(p.dst[i], p.weight[i]);
    }
    page = p.next;
  }
}

std::vector<core::VertexId> FaimGraph::neighbors(core::VertexId u) const {
  std::vector<core::VertexId> out;
  out.reserve(degree(u));
  for_each_neighbor(u, [&](core::VertexId v, core::Weight) { out.push_back(v); });
  return out;
}

void FaimGraph::sort_adjacency_lists() {
  simt::ThreadPool::instance().parallel_for(num_vertices(), [&](std::uint64_t u) {
    const auto vertex = static_cast<core::VertexId>(u);
    const std::uint32_t n = count_[vertex];
    if (n < 2) return;
    // In-place insertion sort across the page chain: O(d^2) slot moves —
    // cheap for road-like degrees, quadratic blow-up on scale-free hubs
    // (the faimGraph column of Table VIII).
    if (n <= static_cast<std::uint32_t>(kPairsPerPage)) {
      // Single-page list (the road-network common case): sort in place
      // with no auxiliary state at all.
      Page& page = pool_.at(head_[vertex]);
      for (std::uint32_t i = 1; i < n; ++i) {
        const core::VertexId key_dst = page.dst[i];
        const core::Weight key_w = page.weight[i];
        std::int64_t j = static_cast<std::int64_t>(i) - 1;
        while (j >= 0 && page.dst[j] > key_dst) {
          page.dst[j + 1] = page.dst[j];
          page.weight[j + 1] = page.weight[j];
          --j;
        }
        page.dst[j + 1] = key_dst;
        page.weight[j + 1] = key_w;
      }
      return;
    }
    // Multi-page list: a page-pointer index gives O(1) slot addressing so
    // the cost is the quadratic sort itself, not chain walking.
    std::vector<std::uint32_t> pages;
    for (std::uint32_t p = head_[vertex]; p != kNullPage; p = pool_.at(p).next) {
      pages.push_back(p);
    }
    auto dst_at = [&](std::uint32_t i) -> core::VertexId& {
      return pool_.at(pages[i / kPairsPerPage]).dst[i % kPairsPerPage];
    };
    auto weight_at = [&](std::uint32_t i) -> core::Weight& {
      return pool_.at(pages[i / kPairsPerPage]).weight[i % kPairsPerPage];
    };
    for (std::uint32_t i = 1; i < n; ++i) {
      const core::VertexId key_dst = dst_at(i);
      const core::Weight key_w = weight_at(i);
      std::int64_t j = static_cast<std::int64_t>(i) - 1;
      while (j >= 0 && dst_at(static_cast<std::uint32_t>(j)) > key_dst) {
        dst_at(static_cast<std::uint32_t>(j + 1)) =
            dst_at(static_cast<std::uint32_t>(j));
        weight_at(static_cast<std::uint32_t>(j + 1)) =
            weight_at(static_cast<std::uint32_t>(j));
        --j;
      }
      dst_at(static_cast<std::uint32_t>(j + 1)) = key_dst;
      weight_at(static_cast<std::uint32_t>(j + 1)) = key_w;
    }
  });
}

bool FaimGraph::adjacency_sorted(core::VertexId u) const noexcept {
  bool sorted = true;
  core::VertexId prev = 0;
  bool first = true;
  for_each_neighbor(u, [&](core::VertexId v, core::Weight) {
    if (!first && v < prev) sorted = false;
    prev = v;
    first = false;
  });
  return sorted;
}

}  // namespace sg::baselines::faim
