#include "src/baselines/gpma/gpma_graph.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>

namespace sg::baselines::gpma {

namespace {
constexpr std::size_t kNpos = ~std::size_t{0};
constexpr std::size_t kInitialSegments = 4;
}  // namespace

GpmaGraph::GpmaGraph(std::uint32_t num_vertices)
    : num_vertices_(num_vertices) {
  keys_.assign(segment_size_ * kInitialSegments, kEmptySlot);
  weights_.assign(keys_.size(), 0);
  seg_count_.assign(kInitialSegments, 0);
}

int GpmaGraph::height() const noexcept {
  return std::bit_width(num_segments()) - 1;  // num_segments is a power of 2
}

double GpmaGraph::upper_threshold(int level) const noexcept {
  // Classic PMA thresholds: leaves may fill to 1.0, the root only to 0.75,
  // interpolated linearly in between.
  const int h = height();
  if (h == 0) return 0.85;
  return 1.0 - 0.25 * static_cast<double>(level) / static_cast<double>(h);
}

double GpmaGraph::lower_threshold(int level) const noexcept {
  // Root keeps at least 0.30, leaves at least 0.10.
  const int h = height();
  if (h == 0) return 0.10;
  return 0.10 + 0.20 * static_cast<double>(level) / static_cast<double>(h);
}

std::size_t GpmaGraph::segment_for(std::uint64_t key) const {
  // Binary search over segment minima (first live key of each segment;
  // segments are left-packed so slot seg*S holds the minimum when
  // non-empty). Empty segments inherit the search direction of their
  // predecessor, handled by scanning left for a non-empty one.
  std::size_t lo = 0;
  std::size_t hi = num_segments();  // exclusive
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    // Minimum of segment mid (walk right over empty segments).
    std::size_t probe = mid;
    std::uint64_t min_key = kEmptySlot;
    while (probe < num_segments()) {
      if (seg_count_[probe] > 0) {
        min_key = keys_[probe * segment_size_];
        break;
      }
      ++probe;
    }
    if (min_key == kEmptySlot || min_key > key) {
      hi = mid;
    } else {
      lo = probe;  // segment minima up to probe are <= key
      if (probe >= hi) hi = probe + 1;
    }
  }
  return lo;
}

std::size_t GpmaGraph::find_slot(std::uint64_t key) const {
  const std::size_t seg = segment_for(key);
  const std::size_t base = seg * segment_size_;
  for (std::uint32_t i = 0; i < seg_count_[seg]; ++i) {
    if (keys_[base + i] == key) return base + i;
    if (keys_[base + i] > key) return kNpos;
  }
  return kNpos;
}

void GpmaGraph::insert_into_segment(std::size_t segment, std::uint64_t key,
                                    core::Weight weight) {
  const std::size_t base = segment * segment_size_;
  std::uint32_t n = seg_count_[segment];
  assert(n < segment_size_);
  // Shift the tail right to keep the segment sorted and left-packed.
  std::uint32_t pos = 0;
  while (pos < n && keys_[base + pos] < key) ++pos;
  for (std::uint32_t i = n; i > pos; --i) {
    keys_[base + i] = keys_[base + i - 1];
    weights_[base + i] = weights_[base + i - 1];
  }
  keys_[base + pos] = key;
  weights_[base + pos] = weight;
  seg_count_[segment] = n + 1;
  ++count_;
}

void GpmaGraph::rebalance(std::size_t first_seg, std::size_t window_segs) {
  // Gather the window's live elements, then spread them evenly over its
  // segments (left-packed per segment).
  std::vector<std::uint64_t> keys;
  std::vector<core::Weight> weights;
  keys.reserve(window_segs * segment_size_);
  for (std::size_t s = first_seg; s < first_seg + window_segs; ++s) {
    const std::size_t base = s * segment_size_;
    for (std::uint32_t i = 0; i < seg_count_[s]; ++i) {
      keys.push_back(keys_[base + i]);
      weights.push_back(weights_[base + i]);
    }
  }
  const std::size_t total = keys.size();
  const std::size_t per_seg = total / window_segs;
  std::size_t extra = total % window_segs;
  std::size_t cursor = 0;
  for (std::size_t s = first_seg; s < first_seg + window_segs; ++s) {
    const std::size_t take = per_seg + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    const std::size_t base = s * segment_size_;
    for (std::size_t i = 0; i < segment_size_; ++i) {
      if (i < take) {
        keys_[base + i] = keys[cursor];
        weights_[base + i] = weights[cursor];
        ++cursor;
      } else {
        keys_[base + i] = kEmptySlot;
        weights_[base + i] = 0;
      }
    }
    seg_count_[s] = static_cast<std::uint32_t>(take);
  }
}

void GpmaGraph::grow() {
  std::vector<std::uint64_t> keys;
  std::vector<core::Weight> weights;
  keys.reserve(count_);
  for (std::size_t s = 0; s < num_segments(); ++s) {
    const std::size_t base = s * segment_size_;
    for (std::uint32_t i = 0; i < seg_count_[s]; ++i) {
      keys.push_back(keys_[base + i]);
      weights.push_back(weights_[base + i]);
    }
  }
  keys_.assign(keys_.size() * 2, kEmptySlot);
  weights_.assign(keys_.size(), 0);
  seg_count_.assign(keys_.size() / segment_size_, 0);
  count_ = 0;
  // Redistribute evenly; reuse rebalance over the whole array after a bulk
  // refill of segment 0..: simplest is direct even spreading.
  const std::size_t segs = num_segments();
  const std::size_t per_seg = keys.size() / segs;
  std::size_t extra = keys.size() % segs;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < segs; ++s) {
    const std::size_t take = per_seg + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    const std::size_t base = s * segment_size_;
    for (std::size_t i = 0; i < take; ++i) {
      keys_[base + i] = keys[cursor];
      weights_[base + i] = weights[cursor];
      ++cursor;
    }
    seg_count_[s] = static_cast<std::uint32_t>(take);
  }
  count_ = keys.size();
}

void GpmaGraph::rebalance_insert(std::size_t first_seg,
                                 std::size_t window_segs, std::uint64_t key,
                                 core::Weight weight) {
  // Gather the window, merge the new element at its sorted position, then
  // spread evenly — inserting during the rebalance guarantees the target
  // never overflows even when the spread leaves segments exactly full.
  std::vector<std::uint64_t> keys;
  std::vector<core::Weight> weights;
  keys.reserve(window_segs * segment_size_ + 1);
  for (std::size_t s = first_seg; s < first_seg + window_segs; ++s) {
    const std::size_t base = s * segment_size_;
    for (std::uint32_t i = 0; i < seg_count_[s]; ++i) {
      keys.push_back(keys_[base + i]);
      weights.push_back(weights_[base + i]);
    }
  }
  const auto pos = static_cast<std::size_t>(
      std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
  keys.insert(keys.begin() + static_cast<std::ptrdiff_t>(pos), key);
  weights.insert(weights.begin() + static_cast<std::ptrdiff_t>(pos), weight);
  const std::size_t total = keys.size();
  const std::size_t per_seg = total / window_segs;
  std::size_t extra = total % window_segs;
  std::size_t cursor = 0;
  for (std::size_t s = first_seg; s < first_seg + window_segs; ++s) {
    const std::size_t take = per_seg + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    assert(take <= segment_size_);
    const std::size_t base = s * segment_size_;
    for (std::size_t i = 0; i < segment_size_; ++i) {
      if (i < take) {
        keys_[base + i] = keys[cursor];
        weights_[base + i] = weights[cursor];
        ++cursor;
      } else {
        keys_[base + i] = kEmptySlot;
        weights_[base + i] = 0;
      }
    }
    seg_count_[s] = static_cast<std::uint32_t>(take);
  }
  ++count_;
}

void GpmaGraph::insert_one(std::uint64_t key, core::Weight weight) {
  // Duplicate => weight update in place (uniqueness, like the others).
  const std::size_t slot = find_slot(key);
  if (slot != kNpos) {
    weights_[slot] = weight;
    return;
  }
  const std::size_t seg = segment_for(key);
  if (seg_count_[seg] < segment_size_) {
    insert_into_segment(seg, key, weight);
    return;
  }
  // Segment full: find the smallest enclosing window whose density after
  // the insertion stays within its level threshold and rebalance it with
  // the new element merged in. Grow at the root if the array is too dense.
  std::size_t window = 1;
  int level = 0;
  for (;;) {
    if (window >= num_segments()) {
      const double density =
          static_cast<double>(count_ + 1) / static_cast<double>(keys_.size());
      if (density > upper_threshold(height())) {
        grow();
        insert_one(key, weight);
        return;
      }
      rebalance_insert(0, num_segments(), key, weight);
      return;
    }
    window *= 2;
    ++level;
    const std::size_t first = (seg / window) * window;
    std::size_t live = 0;
    for (std::size_t s = first; s < first + window; ++s) live += seg_count_[s];
    const double density = static_cast<double>(live + 1) /
                           static_cast<double>(window * segment_size_);
    if (live + 1 <= window * segment_size_ &&
        density <= upper_threshold(level)) {
      rebalance_insert(first, window, key, weight);
      return;
    }
  }
}

bool GpmaGraph::erase_one(std::uint64_t key) {
  const std::size_t slot = find_slot(key);
  if (slot == kNpos) return false;
  const std::size_t seg = slot / segment_size_;
  const std::size_t base = seg * segment_size_;
  for (std::size_t i = slot; i + 1 < base + seg_count_[seg]; ++i) {
    keys_[i] = keys_[i + 1];
    weights_[i] = weights_[i + 1];
  }
  const std::size_t last = base + seg_count_[seg] - 1;
  keys_[last] = kEmptySlot;
  weights_[last] = 0;
  --seg_count_[seg];
  --count_;
  // Under-density: rebalance the smallest enclosing window back above its
  // lower threshold (shrinking is elided; gaps are reclaimed by growth).
  std::size_t window = 1;
  int level = 0;
  while (window < num_segments()) {
    const std::size_t first = (seg / window) * window;
    std::size_t live = 0;
    for (std::size_t s = first; s < first + window; ++s) live += seg_count_[s];
    const double density = static_cast<double>(live) /
                           static_cast<double>(window * segment_size_);
    if (density >= lower_threshold(level)) return true;
    window *= 2;
    ++level;
  }
  if (count_ > 0) rebalance(0, num_segments());
  return true;
}

std::uint64_t GpmaGraph::insert_edges(std::span<const core::WeightedEdge> edges) {
  // GPMA sorts the update batch first ("a batch of updates is first
  // sorted"), then applies it in key order — sequential inserts then hit
  // adjacent segments.
  std::vector<core::WeightedEdge> batch(edges.begin(), edges.end());
  std::erase_if(batch, [this](const core::WeightedEdge& e) {
    return e.src == e.dst || e.src >= num_vertices_ || e.dst >= num_vertices_;
  });
  std::stable_sort(batch.begin(), batch.end(),
                   [](const core::WeightedEdge& a, const core::WeightedEdge& b) {
                     return pack(a.src, a.dst) < pack(b.src, b.dst);
                   });
  std::uint64_t added = 0;
  const std::uint64_t before = count_;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Within-batch duplicates: last occurrence wins.
    if (i + 1 < batch.size() && batch[i].src == batch[i + 1].src &&
        batch[i].dst == batch[i + 1].dst) {
      continue;
    }
    insert_one(pack(batch[i].src, batch[i].dst), batch[i].weight);
  }
  added = count_ - before;
  return added;
}

std::uint64_t GpmaGraph::delete_edges(std::span<const core::Edge> edges) {
  std::vector<core::Edge> batch(edges.begin(), edges.end());
  std::stable_sort(batch.begin(), batch.end(),
                   [](const core::Edge& a, const core::Edge& b) {
                     return pack(a.src, a.dst) < pack(b.src, b.dst);
                   });
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  std::uint64_t removed = 0;
  for (const auto& e : batch) {
    if (e.src >= num_vertices_) continue;
    removed += erase_one(pack(e.src, e.dst)) ? 1 : 0;
  }
  return removed;
}

void GpmaGraph::bulk_build(std::span<const core::WeightedEdge> edges) {
  insert_edges(edges);
}

bool GpmaGraph::edge_exists(core::VertexId u, core::VertexId v) const {
  if (u >= num_vertices_) return false;
  return find_slot(pack(u, v)) != kNpos;
}

std::uint32_t GpmaGraph::degree(core::VertexId u) const {
  std::uint32_t d = 0;
  for_each_neighbor(u, [&d](core::VertexId, core::Weight) { ++d; });
  return d;
}

std::vector<core::VertexId> GpmaGraph::neighbors(core::VertexId u) const {
  std::vector<core::VertexId> out;
  for_each_neighbor(u, [&out](core::VertexId v, core::Weight) {
    out.push_back(v);
  });
  return out;
}

void GpmaGraph::for_each_neighbor(
    core::VertexId u,
    const std::function<void(core::VertexId, core::Weight)>& fn) const {
  if (u >= num_vertices_) return;
  const std::uint64_t lo = pack(u, 0);
  // Start at the segment covering (u, 0) and stream until src changes.
  std::size_t seg = segment_for(lo);
  for (; seg < num_segments(); ++seg) {
    const std::size_t base = seg * segment_size_;
    for (std::uint32_t i = 0; i < seg_count_[seg]; ++i) {
      const std::uint64_t key = keys_[base + i];
      if (key < lo) continue;
      const auto src = static_cast<core::VertexId>(key >> 32);
      if (src != u) return;
      fn(static_cast<core::VertexId>(key), weights_[base + i]);
    }
  }
}

bool GpmaGraph::check_invariants() const {
  std::uint64_t previous = 0;
  bool first = true;
  std::uint64_t live = 0;
  for (std::size_t s = 0; s < num_segments(); ++s) {
    const std::size_t base = s * segment_size_;
    for (std::size_t i = 0; i < segment_size_; ++i) {
      const bool in_count = i < seg_count_[s];
      const bool occupied = keys_[base + i] != kEmptySlot;
      if (in_count != occupied) {
        std::fprintf(stderr, "PACK seg=%zu i=%zu count=%u\n", s, i, seg_count_[s]);
        return false;  // left-packing violated
      }
      if (!occupied) continue;
      if (!first && keys_[base + i] <= previous) {
        std::fprintf(stderr, "ORDER seg=%zu i=%zu key=%llx prev=%llx\n", s, i,
                     (unsigned long long)keys_[base+i], (unsigned long long)previous);
        return false;  // order
      }
      previous = keys_[base + i];
      first = false;
      ++live;
    }
  }
  if (live != count_) {
    std::fprintf(stderr, "COUNT live=%llu count=%llu\n",
                 (unsigned long long)live, (unsigned long long)count_);
    return false;
  }
  return true;
}

}  // namespace sg::baselines::gpma
