// GPMA-style baseline [Sha et al., VLDB 2017], the third prior system the
// paper describes (§II-B): a dynamic graph stored as a CSR-ordered edge
// list inside a Packed Memory Array (PMA) [Bender & Hu, PODS 2006].
//
//   * Edges live in one sorted array keyed by (src << 32 | dst), with
//     anticipated gaps, partitioned into leaf segments.
//   * Each tree level has density thresholds; an insertion that pushes a
//     segment past its upper threshold triggers a rebalance over the
//     smallest enclosing window that is within threshold (doubling windows
//     up the implicit tree), or an array doubling at the root.
//   * Deletions remove elements and rebalance/shrink when a window falls
//     below its lower threshold.
//
// The paper notes GPMA's updates are sorted-batch driven and its deletions
// lazy; we implement eager deletion plus the sorted-batch insert path, and
// expose the same query surface as the other baselines so it can join the
// benchmarks as an extra comparator (the paper itself does not benchmark
// GPMA — this is the reproduction's ablation extension).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/core/types.hpp"

namespace sg::baselines::gpma {

class GpmaGraph {
 public:
  explicit GpmaGraph(std::uint32_t num_vertices);

  std::uint32_t num_vertices() const noexcept { return num_vertices_; }
  std::uint64_t num_edges() const noexcept { return count_; }

  /// Batched insertion (batch is sorted first, GPMA-style). Duplicates
  /// update the weight in place. Returns the number of new unique edges.
  std::uint64_t insert_edges(std::span<const core::WeightedEdge> edges);

  /// Batched deletion; returns the number removed.
  std::uint64_t delete_edges(std::span<const core::Edge> edges);

  void bulk_build(std::span<const core::WeightedEdge> edges);

  /// O(log |E|) search — the PMA keeps global sorted order at all times.
  bool edge_exists(core::VertexId u, core::VertexId v) const;

  std::uint32_t degree(core::VertexId u) const;

  /// Ascending destinations of u (a contiguous key range scan).
  std::vector<core::VertexId> neighbors(core::VertexId u) const;

  void for_each_neighbor(
      core::VertexId u,
      const std::function<void(core::VertexId, core::Weight)>& fn) const;

  // --- introspection for tests & the ablation bench --------------------
  std::size_t capacity() const noexcept { return keys_.size(); }
  std::size_t segment_size() const noexcept { return segment_size_; }
  double density() const noexcept {
    return keys_.empty() ? 0.0
                         : static_cast<double>(count_) /
                               static_cast<double>(keys_.size());
  }
  /// Verifies the PMA invariants (global sorted order, per-segment counts,
  /// root density within thresholds). Used by the property tests.
  bool check_invariants() const;

 private:
  static constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

  static std::uint64_t pack(core::VertexId u, core::VertexId v) noexcept {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  // Leaf-segment geometry. capacity = segment_size * num_segments, both
  // powers of two; height = log2(num_segments).
  std::size_t num_segments() const noexcept {
    return keys_.size() / segment_size_;
  }
  int height() const noexcept;

  /// Upper/lower density thresholds for a window at `level` (0 = leaf).
  double upper_threshold(int level) const noexcept;
  double lower_threshold(int level) const noexcept;

  /// Segment whose key range covers `key` (first segment whose minimum is
  /// <= key, by binary search over segment minima).
  std::size_t segment_for(std::uint64_t key) const;

  /// Slot of `key` within the PMA, or npos.
  std::size_t find_slot(std::uint64_t key) const;

  /// Inserts into the given segment (shifting within the segment); caller
  /// guarantees space. Keeps elements left-packed per segment.
  void insert_into_segment(std::size_t segment, std::uint64_t key,
                           core::Weight weight);

  /// Rebalances the window [first_seg, first_seg + window_segs) by
  /// spreading its elements evenly.
  void rebalance(std::size_t first_seg, std::size_t window_segs);

  /// Rebalance that merges (key, weight) into the window while spreading —
  /// the insert path, immune to the "segment exactly full after spread"
  /// corner of insert-after-rebalance.
  void rebalance_insert(std::size_t first_seg, std::size_t window_segs,
                        std::uint64_t key, core::Weight weight);

  /// Grows (doubles) the array and redistributes everything.
  void grow();

  void insert_one(std::uint64_t key, core::Weight weight);
  bool erase_one(std::uint64_t key);

  std::uint32_t num_vertices_ = 0;
  std::size_t segment_size_ = 8;
  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> keys_;      // kEmptySlot marks gaps
  std::vector<core::Weight> weights_;
  std::vector<std::uint32_t> seg_count_;  // live elements per segment
};

}  // namespace sg::baselines::gpma
