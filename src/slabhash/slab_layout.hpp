// Shared slab layout for the SlabHash concurrent map and concurrent set.
//
// A slab is 32 uint32 words (128 bytes), matching SlabHash on the GPU:
//
//   concurrent map  : words 0..29 hold 15 <key, value> pairs
//                     (key at even word, value at the following odd word),
//                     word 30 is reserved, word 31 is the next-slab handle.
//                     Bucket capacity Bc = 15 (paper §IV-A2).
//   concurrent set  : words 0..29 hold 30 keys, word 30 is reserved,
//                     word 31 is the next-slab handle. Bc = 30.
//
// kEmptyKey marks a never-used slot; kTombstoneKey marks a deleted slot.
// Insertions skip tombstones ("tombstones are disregarded in edge
// insertion"), so within a slab all EMPTY slots sit after all used slots —
// the invariant the paper relies on for fast searches.
#pragma once

#include <cstdint>

#include "src/memory/slab_arena.hpp"
#include "src/util/prng.hpp"

namespace sg::slabhash {

inline constexpr std::uint32_t kEmptyKey = 0xFFFFFFFFu;
inline constexpr std::uint32_t kTombstoneKey = 0xFFFFFFFEu;
inline constexpr std::uint32_t kMaxKey = 0xFFFFFFFDu;  ///< largest storable key

inline constexpr int kNextPtrWord = 31;
inline constexpr int kReservedWord = 30;

inline constexpr int kMapPairsPerSlab = 15;  ///< Bc for the concurrent map
inline constexpr int kSetKeysPerSlab = 30;   ///< Bc for the concurrent set

/// Lane masks (bit w = slab word w) selecting the words that hold keys,
/// consumed against the ballot-style masks simt::probe_slab() produces:
/// even words 0..28 for the map's 15 <key,value> pairs, words 0..29 for the
/// set's 30 keys. Word 30 (reserved) and word 31 (next pointer) never match.
inline constexpr std::uint32_t kMapKeyWordsMask = 0x15555555u;
inline constexpr std::uint32_t kSetKeyWordsMask = 0x3FFFFFFFu;

/// A hash table as the graph sees it: `num_buckets` base slabs starting at
/// contiguous handle `base`. Collision slabs are chained off word 31.
struct TableRef {
  memory::SlabHandle base = memory::kNullSlab;
  std::uint32_t num_buckets = 0;

  memory::SlabHandle bucket_head(std::uint32_t bucket) const noexcept {
    return base + bucket;
  }
  bool valid() const noexcept {
    return base != memory::kNullSlab && num_buckets > 0;
  }
};

/// Seeded hash mapping a key to a bucket. Stands in for slab hash's
/// universal (a*k + b mod p) mod B family: a full 64-bit mix of (key, seed)
/// followed by Lemire's multiply-shift range reduction — same statistical
/// role, no 64-bit divisions on the probe path. All tables in a graph share
/// one seed so results are reproducible run to run.
inline std::uint32_t bucket_of(std::uint32_t key, std::uint32_t num_buckets,
                               std::uint64_t seed) noexcept {
  const std::uint64_t h = util::mix64(key ^ (seed * 0x9E3779B97F4A7C15ULL));
  return static_cast<std::uint32_t>(
      (static_cast<unsigned __int128>(h) * num_buckets) >> 64);
}

/// Buckets needed to store `expected_keys` at `load_factor` with bucket
/// capacity `slot_capacity` (= Bc): ceil(keys / (lf * Bc)), at least 1.
/// This is the sizing rule of §IV-A2.
inline std::uint32_t buckets_for(std::uint64_t expected_keys, double load_factor,
                                 int slot_capacity) noexcept {
  if (expected_keys == 0 || load_factor <= 0.0) return 1;
  const double per_bucket = load_factor * static_cast<double>(slot_capacity);
  const auto buckets = static_cast<std::uint64_t>(
      __builtin_ceil(static_cast<double>(expected_keys) / per_bucket));
  const std::uint64_t clamped =
      buckets == 0 ? 1 : (buckets > memory::SlabArena::kChunkSlabs
                              ? memory::SlabArena::kChunkSlabs
                              : buckets);
  return static_cast<std::uint32_t>(clamped);
}

/// Outcome of an allocating bulk operation (map_bulk_replace /
/// set_bulk_insert) when the caller opts into status reporting. The wave
/// structure applies keys out of order within a 32-key window, so a failure
/// is not a prefix: `fail_base` is the index of the failing wave's first
/// key and `fail_pending` the lane mask (bit i = keys[fail_base + i]) of
/// keys in that wave still unapplied when the chain could not grow. Every
/// key at index >= fail_base + 32 is also unapplied. Keys outside that set
/// were fully applied and ARE counted in the operation's return value, so
/// per-vertex counters stay exact across an abort.
struct BulkStatus {
  bool ok = true;
  std::uint32_t fail_base = 0;
  std::uint32_t fail_pending = 0;
};

/// Occupancy of one table, used by the Figure 2 memory-utilization series.
struct TableOccupancy {
  std::uint64_t live_keys = 0;
  std::uint64_t tombstones = 0;
  std::uint64_t slots = 0;       ///< total key slots across all slabs
  std::uint64_t base_slabs = 0;
  std::uint64_t overflow_slabs = 0;

  double utilization() const noexcept {
    return slots == 0 ? 0.0
                      : static_cast<double>(live_keys) / static_cast<double>(slots);
  }
};

}  // namespace sg::slabhash
