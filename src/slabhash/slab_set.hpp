// SlabHash concurrent set: uint32 keys only, 30 per slab — the new set
// variant the paper adds to slab hash ("keys only, and no values",
// footnote 5). Used when edge values are not required, e.g. triangle
// counting (§VI-C). Same uniqueness / tombstone semantics as the map.
#pragma once

#include <cstdint>
#include <functional>

#include "src/slabhash/slab_layout.hpp"

namespace sg::slabhash {

/// Inserts `key` uniquely; returns true iff it was new.
bool set_insert(memory::SlabArena& arena, TableRef table, std::uint32_t key,
                std::uint64_t seed, std::uint32_t alloc_seed = 0);

/// Tombstones `key`; returns true iff it was present (and live).
bool set_erase(memory::SlabArena& arena, TableRef table, std::uint32_t key,
               std::uint64_t seed);

/// Membership query — the edgeExist primitive of §IV-B.
bool set_contains(const memory::SlabArena& arena, TableRef table,
                  std::uint32_t key, std::uint64_t seed);

// ---- staged bulk entry points (batch engine) -----------------------------
// Same contract as the map's bulk operations (slab_map.hpp): the run's keys
// are pre-hashed to `bucket`, and for mutation the engine guarantees no
// other warp touches this bucket during the phase. The chain is walked once
// per wave of up to 32 keys with one shared EMPTY scan per slab.

/// Bulk unique insert of a run (unique, sorted keys); returns the number of
/// NEW keys. `chain_slabs`, when non-null, receives the deepest slab
/// position the walk reached (1 = base slab only, including slabs appended
/// by this call) — the chain-length feedback targeted rehashing consumes.
/// Arena exhaustion: with `status` non-null the call stops, records the
/// failing wave into *status (see BulkStatus), and returns the exact count
/// of keys applied; with `status` null it throws memory::ArenaExhausted.
std::uint32_t set_bulk_insert(memory::SlabArena& arena, TableRef table,
                              std::uint32_t bucket, const std::uint32_t* keys,
                              std::uint32_t count, std::uint32_t alloc_seed = 0,
                              std::uint32_t* chain_slabs = nullptr,
                              BulkStatus* status = nullptr);

/// Bulk erase of a run; returns the number of keys that were present.
/// `chain_slabs` as in set_bulk_insert.
std::uint32_t set_bulk_erase(memory::SlabArena& arena, TableRef table,
                             std::uint32_t bucket, const std::uint32_t* keys,
                             std::uint32_t count,
                             std::uint32_t* chain_slabs = nullptr);

/// Bulk membership of a run: found[i] = 1 iff keys[i] is live.
/// `chain_slabs`, when non-null, receives the deepest slab position the
/// walk reached (1 = base slab only) — the same chain-length feedback the
/// bulk mutations report, observed for free by query phases.
void set_bulk_contains(const memory::SlabArena& arena, TableRef table,
                       std::uint32_t bucket, const std::uint32_t* keys,
                       std::uint32_t count, std::uint8_t* found,
                       std::uint32_t* chain_slabs = nullptr);

/// Calls fn(key) for every live key.
void set_for_each(const memory::SlabArena& arena, TableRef table,
                  const std::function<void(std::uint32_t)>& fn);

/// Gathers every live key into `out` (caller-presized to `cap` slots) with
/// one snapshot + mask extraction per slab; returns the number written
/// (stops at `cap`, so a caller sizing from the exact degree counter never
/// overruns even on misuse). `chain_slabs`, when non-null, receives the
/// deepest slab position the walk reached (1 = base slab only) — the same
/// inform-only chain-depth feedback bulk queries report.
std::uint32_t set_gather(const memory::SlabArena& arena, TableRef table,
                         std::uint32_t* out, std::uint32_t cap,
                         std::uint32_t* chain_slabs = nullptr);

TableOccupancy set_occupancy(const memory::SlabArena& arena, TableRef table);

/// Compaction (tombstone flush); phase-serial per table.
void set_flush_tombstones(memory::SlabArena& arena, TableRef table);

/// Frees overflow slabs, resets base slabs (vertex deletion support).
void set_clear(memory::SlabArena& arena, TableRef table);

/// Owning wrapper for tests / micro-benchmarks.
class SlabHashSet {
 public:
  SlabHashSet(memory::SlabArena& arena, std::uint32_t num_buckets,
              std::uint64_t seed = 0x5EEDULL);

  bool insert(std::uint32_t key) {
    return set_insert(*arena_, table_, key, seed_);
  }
  bool erase(std::uint32_t key) { return set_erase(*arena_, table_, key, seed_); }
  bool contains(std::uint32_t key) const {
    return set_contains(*arena_, table_, key, seed_);
  }
  void for_each(const std::function<void(std::uint32_t)>& fn) const {
    set_for_each(*arena_, table_, fn);
  }
  TableOccupancy occupancy() const { return set_occupancy(*arena_, table_); }
  void flush_tombstones() { set_flush_tombstones(*arena_, table_); }
  TableRef table() const { return table_; }

 private:
  memory::SlabArena* arena_;
  TableRef table_;
  std::uint64_t seed_;
};

}  // namespace sg::slabhash
