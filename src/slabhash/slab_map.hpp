// SlabHash concurrent map: <uint32 key, uint32 value> pairs, 15 per slab.
// This is the weighted-edge adjacency store ("use the map variant if
// storing a value per edge is required", §IV).
//
// Operations follow the paper's semantics:
//   * replace  — inserts key uniquely; if present, overwrites the value
//                ("most recent edge and its weight will be stored") and
//                returns false; if absent, claims the first EMPTY slot
//                (never a tombstone) and returns true. The boolean return
//                feeds the per-vertex edge counters (Alg. 1 lines 8-10).
//   * erase    — tombstones the key (CAS key -> TOMBSTONE); returns whether
//                the key was present, feeding the counter decrement.
//   * search   — walks the bucket chain; may stop at the first EMPTY slot
//                thanks to the empties-at-the-tail invariant.
//   * flush_tombstones — the documented alternative strategy (§IV-C2):
//                compacts live pairs to the chain head, trading insertion
//                throughput for memory. Phase-serial.
//
// All functions are safe under concurrent same-phase mutation (insert phase
// or delete phase), which is the paper's phase-concurrent model.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "src/slabhash/slab_layout.hpp"

namespace sg::slabhash {

struct MapFindResult {
  bool found = false;
  std::uint32_t value = 0;
};

/// Inserts or overwrites <key, value>; returns true iff the key was new.
/// `seed` selects the table's hash function; `alloc_seed` spreads dynamic
/// slab allocations (pass a warp id or thread id).
bool map_replace(memory::SlabArena& arena, TableRef table, std::uint32_t key,
                 std::uint32_t value, std::uint64_t seed,
                 std::uint32_t alloc_seed = 0);

/// Tombstones `key`; returns true iff it was present (and live).
bool map_erase(memory::SlabArena& arena, TableRef table, std::uint32_t key,
               std::uint64_t seed);

/// Point lookup.
MapFindResult map_search(const memory::SlabArena& arena, TableRef table,
                         std::uint32_t key, std::uint64_t seed);

// ---- staged bulk entry points (batch engine, docs/PERF.md) ---------------
//
// A "run" is a staged group of queries that all hash to `bucket` of `table`:
// the batch engine pre-hashes each key once, sorts the batch by
// (vertex, bucket, key), and hands each run to one warp. The run's
// (table, bucket) chain is owned exclusively by that warp for the phase —
// the engine's run partition guarantees no other warp mutates the same
// bucket — which is what lets these walk the chain ONCE per wave of up to
// 32 keys, compute the slab's EMPTY mask once per slab, and claim
// successive slots from it, instead of one full hash + chain walk per key.
// Concurrent mutation of OTHER buckets (and of other tables) remains safe:
// slot claiming still goes through CAS.

/// Bulk replace of a run: inserts keys[i] -> values[i] (unique keys,
/// sorted); a key already present has its value overwritten. Returns the
/// number of NEW keys. When `chain_slabs` is non-null it receives the
/// deepest slab position the walk reached (1 = base slab only), including
/// slabs appended by this call — the §III chain-length metric the batch
/// engine feeds back to targeted rehashing, observed for free.
/// Arena exhaustion: with `status` non-null the call stops, records the
/// failing wave into *status (see BulkStatus), and returns the exact count
/// of keys applied so far; with `status` null it throws
/// memory::ArenaExhausted (the historical contract of the scalar paths).
std::uint32_t map_bulk_replace(memory::SlabArena& arena, TableRef table,
                               std::uint32_t bucket, const std::uint32_t* keys,
                               const std::uint32_t* values, std::uint32_t count,
                               std::uint32_t alloc_seed = 0,
                               std::uint32_t* chain_slabs = nullptr,
                               BulkStatus* status = nullptr);

/// Bulk erase of a run; returns the number of keys that were present.
/// `chain_slabs` as in map_bulk_replace (erase never extends the chain).
std::uint32_t map_bulk_erase(memory::SlabArena& arena, TableRef table,
                             std::uint32_t bucket, const std::uint32_t* keys,
                             std::uint32_t count,
                             std::uint32_t* chain_slabs = nullptr);

/// Bulk lookup of a run: found[i] = 1 iff keys[i] is live; when `values` is
/// non-null, values[i] receives the stored value on a hit. Duplicate keys
/// in the run are fine (lookups are independent). `chain_slabs`, when
/// non-null, receives the deepest slab position the walk reached (1 = base
/// slab only) — queries observe chain lengths for free exactly as the bulk
/// mutations do, so search-heavy phases feed the §III rehash metric too.
void map_bulk_search(const memory::SlabArena& arena, TableRef table,
                     std::uint32_t bucket, const std::uint32_t* keys,
                     std::uint32_t count, std::uint8_t* found,
                     std::uint32_t* values,
                     std::uint32_t* chain_slabs = nullptr);

/// Calls fn(key, value) for every live pair. Phase-concurrent with queries.
void map_for_each(const memory::SlabArena& arena, TableRef table,
                  const std::function<void(std::uint32_t, std::uint32_t)>& fn);

/// Gathers every live key into `out` (caller-presized to `cap` slots) with
/// one snapshot + mask extraction per slab; returns the number written
/// (stops at `cap`, so a caller sizing from the exact degree counter never
/// overruns even on misuse). Values are skipped — this is the adjacency
/// gather analytics consume. `chain_slabs`, when non-null, receives the
/// deepest slab position the walk reached (1 = base slab only) — the same
/// inform-only chain-depth feedback bulk queries report.
std::uint32_t map_gather(const memory::SlabArena& arena, TableRef table,
                         std::uint32_t* out, std::uint32_t cap,
                         std::uint32_t* chain_slabs = nullptr);

/// Occupancy statistics (Figure 2b/2c inputs).
TableOccupancy map_occupancy(const memory::SlabArena& arena, TableRef table);

/// Compacts each bucket chain in-place: live pairs move toward the chain
/// head, tombstones vanish, and emptied overflow slabs are freed. Must not
/// run concurrently with any other operation on `table`.
void map_flush_tombstones(memory::SlabArena& arena, TableRef table);

/// Frees every overflow (dynamic) slab of the table and resets base slabs
/// to EMPTY. Used by vertex deletion (§IV-D2). Phase-serial per table.
void map_clear(memory::SlabArena& arena, TableRef table);

/// Owning convenience wrapper used by unit tests and micro-benchmarks; the
/// graph itself manages TableRefs directly through its vertex dictionary.
class SlabHashMap {
 public:
  SlabHashMap(memory::SlabArena& arena, std::uint32_t num_buckets,
              std::uint64_t seed = 0x5EEDULL);

  bool replace(std::uint32_t key, std::uint32_t value) {
    return map_replace(*arena_, table_, key, value, seed_);
  }
  bool erase(std::uint32_t key) { return map_erase(*arena_, table_, key, seed_); }
  MapFindResult search(std::uint32_t key) const {
    return map_search(*arena_, table_, key, seed_);
  }
  void for_each(const std::function<void(std::uint32_t, std::uint32_t)>& fn) const {
    map_for_each(*arena_, table_, fn);
  }
  TableOccupancy occupancy() const { return map_occupancy(*arena_, table_); }
  void flush_tombstones() { map_flush_tombstones(*arena_, table_); }
  TableRef table() const { return table_; }

 private:
  memory::SlabArena* arena_;
  TableRef table_;
  std::uint64_t seed_;
};

}  // namespace sg::slabhash
