#include "src/slabhash/slab_set.hpp"

#include <bit>
#include <vector>

#include "src/simt/atomics.hpp"
#include "src/simt/simd.hpp"

// Hot paths mirror slab_map.cpp: one vectorized compare per slab
// (simt::probe_slab) replaces the per-word atomic-load loop, with CAS kept
// only for the slot being claimed or tombstoned.

namespace sg::slabhash {

using memory::kNullSlab;
using memory::Slab;
using memory::SlabHandle;
using simt::atomic_cas;
using simt::atomic_load;

namespace {

SlabHandle extend_chain(memory::SlabArena& arena, Slab& slab,
                        std::uint32_t alloc_seed) {
  const SlabHandle fresh = arena.allocate(kEmptyKey, alloc_seed);
  const std::uint32_t observed =
      atomic_cas(slab.words[kNextPtrWord], kNullSlab, fresh);
  if (observed == kNullSlab) return fresh;
  arena.free(fresh);
  return observed;
}

}  // namespace

bool set_insert(memory::SlabArena& arena, TableRef table, std::uint32_t key,
                std::uint64_t seed, std::uint32_t alloc_seed) {
  const std::uint32_t bucket = bucket_of(key, table.num_buckets, seed);
  SlabHandle handle = table.bucket_head(bucket);
  for (;;) {
    Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    if ((probe.match & kSetKeyWordsMask) != 0) return false;  // already present
    std::uint32_t empties = probe.empty & kSetKeyWordsMask;
    while (empties != 0) {
      const int slot = std::countr_zero(empties);
      const std::uint32_t observed =
          atomic_cas(slab.words[slot], kEmptyKey, key);
      if (observed == kEmptyKey) return true;
      if (observed == key) return false;  // lost the race to an identical key
      empties &= empties - 1;  // a different key won the slot; keep going
    }
    SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
    if (next == kNullSlab) next = extend_chain(arena, slab, alloc_seed + key);
    handle = next;
  }
}

bool set_erase(memory::SlabArena& arena, TableRef table, std::uint32_t key,
               std::uint64_t seed) {
  const std::uint32_t bucket = bucket_of(key, table.num_buckets, seed);
  SlabHandle handle = table.bucket_head(bucket);
  while (handle != kNullSlab) {
    Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    const std::uint32_t match = probe.match & kSetKeyWordsMask;
    if (match != 0) {
      return atomic_cas(slab.words[std::countr_zero(match)], key,
                        kTombstoneKey) == key;
    }
    if ((probe.empty & kSetKeyWordsMask) != 0) return false;
    handle = atomic_load(slab.words[kNextPtrWord]);
  }
  return false;
}

bool set_contains(const memory::SlabArena& arena, TableRef table,
                  std::uint32_t key, std::uint64_t seed) {
  // The edgeExist primitive: a GPU warp compares all 32 slab words in one
  // step; here that is literally one vector compare per slab.
  const std::uint32_t bucket = bucket_of(key, table.num_buckets, seed);
  SlabHandle handle = table.bucket_head(bucket);
  while (handle != kNullSlab) {
    const Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    if ((probe.match & kSetKeyWordsMask) != 0) return true;
    if ((probe.empty & kSetKeyWordsMask) != 0) return false;
    handle = atomic_load(slab.words[kNextPtrWord]);
  }
  return false;
}

void set_for_each(const memory::SlabArena& arena, TableRef table,
                  const std::function<void(std::uint32_t)>& fn) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      std::uint32_t snap[memory::kWordsPerSlab];
      simt::snapshot_slab(arena.resolve(handle), snap);
      const std::uint32_t empties =
          simt::empty_mask(snap, kEmptyKey) & kSetKeyWordsMask;
      const std::uint32_t tombs =
          simt::tombstone_mask(snap, kTombstoneKey) & kSetKeyWordsMask;
      std::uint32_t live = kSetKeyWordsMask & ~tombs &
                           simt::bits_below(std::countr_zero(empties));
      while (live != 0) {
        fn(snap[std::countr_zero(live)]);
        live &= live - 1;
      }
      handle = snap[kNextPtrWord];
    }
  }
}

TableOccupancy set_occupancy(const memory::SlabArena& arena, TableRef table) {
  TableOccupancy occ;
  occ.base_slabs = table.num_buckets;
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    bool base = true;
    while (handle != kNullSlab) {
      const Slab& slab = arena.resolve(handle);
      if (!base) ++occ.overflow_slabs;
      occ.slots += kSetKeysPerSlab;
      for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
        const std::uint32_t k = slab.words[slot];
        if (k == kTombstoneKey) {
          ++occ.tombstones;
        } else if (k != kEmptyKey) {
          ++occ.live_keys;
        }
      }
      handle = slab.words[kNextPtrWord];
      base = false;
    }
  }
  return occ;
}

void set_flush_tombstones(memory::SlabArena& arena, TableRef table) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    std::vector<std::uint32_t> live;
    std::vector<SlabHandle> chain;
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      chain.push_back(handle);
      const Slab& slab = arena.resolve(handle);
      for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
        const std::uint32_t k = slab.words[slot];
        if (k != kEmptyKey && k != kTombstoneKey) live.push_back(k);
      }
      handle = slab.words[kNextPtrWord];
    }
    std::size_t cursor = 0;
    std::size_t keep_slabs = 0;
    for (std::size_t s = 0; s < chain.size(); ++s) {
      Slab& slab = arena.resolve(chain[s]);
      bool any = false;
      for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
        if (cursor < live.size()) {
          slab.words[slot] = live[cursor++];
          any = true;
        } else {
          slab.words[slot] = kEmptyKey;
        }
      }
      if (any || s == 0) keep_slabs = s + 1;
    }
    if (!chain.empty()) {
      Slab& last_kept = arena.resolve(chain[keep_slabs - 1]);
      last_kept.words[kNextPtrWord] = kNullSlab;
      for (std::size_t s = keep_slabs; s < chain.size(); ++s) arena.free(chain[s]);
    }
  }
}

void set_clear(memory::SlabArena& arena, TableRef table) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    Slab& head = arena.resolve(table.bucket_head(b));
    SlabHandle overflow = head.words[kNextPtrWord];
    while (overflow != kNullSlab) {
      const SlabHandle next = arena.resolve(overflow).words[kNextPtrWord];
      arena.free(overflow);
      overflow = next;
    }
    for (int w = 0; w < memory::kWordsPerSlab; ++w) head.words[w] = kEmptyKey;
  }
}

SlabHashSet::SlabHashSet(memory::SlabArena& arena, std::uint32_t num_buckets,
                         std::uint64_t seed)
    : arena_(&arena), seed_(seed) {
  table_.num_buckets = num_buckets == 0 ? 1 : num_buckets;
  table_.base = arena.allocate_contiguous(table_.num_buckets, kEmptyKey);
}

}  // namespace sg::slabhash
