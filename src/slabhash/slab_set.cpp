#include "src/slabhash/slab_set.hpp"

#include <bit>
#include <cstring>
#include <vector>

#include "src/simt/atomics.hpp"
#include "src/simt/simd.hpp"
#include "src/simt/warp.hpp"

// Hot paths mirror slab_map.cpp: one vectorized compare per slab
// (simt::probe_slab) replaces the per-word atomic-load loop, with CAS kept
// only for the slot being claimed or tombstoned.

namespace sg::slabhash {

using memory::kNullSlab;
using memory::Slab;
using memory::SlabHandle;
using simt::atomic_cas;
using simt::atomic_load;

namespace {

/// As in slab_map.cpp: returns the successor, or kNullSlab when the arena
/// is exhausted (chain untouched; callers surface the failure).
SlabHandle extend_chain(memory::SlabArena& arena, Slab& slab,
                        std::uint32_t alloc_seed) {
  const SlabHandle fresh = arena.try_allocate(kEmptyKey, alloc_seed);
  if (fresh == kNullSlab) return kNullSlab;
  const std::uint32_t observed =
      atomic_cas(slab.words[kNextPtrWord], kNullSlab, fresh);
  if (observed == kNullSlab) return fresh;
  arena.free(fresh);
  return observed;
}

/// Scalar paths (status == nullptr) keep the throwing contract.
[[noreturn]] void throw_exhausted() {
  throw memory::ArenaExhausted(
      "slabhash: cannot extend bucket chain: arena exhausted");
}

}  // namespace

namespace {

/// set_insert after hashing: shared by the scalar entry point and the bulk
/// path's singleton runs (which arrive pre-hashed). On arena exhaustion:
/// records into `status` when given (key NOT inserted), else throws.
bool insert_in_bucket(memory::SlabArena& arena, TableRef table,
                      std::uint32_t bucket, std::uint32_t key,
                      std::uint32_t alloc_seed,
                      std::uint32_t* chain_slabs = nullptr,
                      BulkStatus* status = nullptr) {
  SlabHandle handle = table.bucket_head(bucket);
  // Depth stays in a register and publishes only at the exits: a per-slab
  // store through chain_slabs could alias slab words and force reloads.
  std::uint32_t depth = 0;
  for (;;) {
    ++depth;
    Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    if ((probe.match & kSetKeyWordsMask) != 0) {  // already present
      if (chain_slabs != nullptr) *chain_slabs = depth;
      return false;
    }
    std::uint32_t empties = probe.empty & kSetKeyWordsMask;
    while (empties != 0) {
      const int slot = std::countr_zero(empties);
      const std::uint32_t observed =
          atomic_cas(slab.words[slot], kEmptyKey, key);
      if (observed == kEmptyKey || observed == key) {
        if (chain_slabs != nullptr) *chain_slabs = depth;
        return observed == kEmptyKey;  // false: lost to an identical key
      }
      empties &= empties - 1;  // a different key won the slot; keep going
    }
    SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
    if (next == kNullSlab) {
      next = extend_chain(arena, slab, alloc_seed + key);
      if (next == kNullSlab) {
        if (chain_slabs != nullptr) *chain_slabs = depth;
        if (status == nullptr) throw_exhausted();
        status->ok = false;
        status->fail_base = 0;
        status->fail_pending = 1u;  // the lone key of this singleton run
        return false;
      }
    }
    handle = next;
  }
}

/// set_erase after hashing (scalar entry point + singleton bulk runs).
bool erase_in_bucket(memory::SlabArena& arena, TableRef table,
                     std::uint32_t bucket, std::uint32_t key,
                     std::uint32_t* chain_slabs = nullptr) {
  SlabHandle handle = table.bucket_head(bucket);
  std::uint32_t depth = 0;  // published at the exits only (aliasing)
  bool removed = false;
  while (handle != kNullSlab) {
    ++depth;
    Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    const std::uint32_t match = probe.match & kSetKeyWordsMask;
    if (match != 0) {
      removed = atomic_cas(slab.words[std::countr_zero(match)], key,
                           kTombstoneKey) == key;
      break;
    }
    if ((probe.empty & kSetKeyWordsMask) != 0) break;
    handle = atomic_load(slab.words[kNextPtrWord]);
  }
  if (chain_slabs != nullptr) *chain_slabs = depth;
  return removed;
}

/// set_contains after hashing (scalar entry point + singleton bulk runs).
/// The edgeExist primitive: a GPU warp compares all 32 slab words in one
/// step; here that is literally one vector compare per slab.
bool contains_in_bucket(const memory::SlabArena& arena, TableRef table,
                        std::uint32_t bucket, std::uint32_t key) {
  SlabHandle handle = table.bucket_head(bucket);
  while (handle != kNullSlab) {
    const Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    if ((probe.match & kSetKeyWordsMask) != 0) return true;
    if ((probe.empty & kSetKeyWordsMask) != 0) return false;
    handle = atomic_load(slab.words[kNextPtrWord]);
  }
  return false;
}

}  // namespace

bool set_insert(memory::SlabArena& arena, TableRef table, std::uint32_t key,
                std::uint64_t seed, std::uint32_t alloc_seed) {
  return insert_in_bucket(arena, table,
                          bucket_of(key, table.num_buckets, seed), key,
                          alloc_seed);
}

bool set_erase(memory::SlabArena& arena, TableRef table, std::uint32_t key,
               std::uint64_t seed) {
  return erase_in_bucket(arena, table, bucket_of(key, table.num_buckets, seed),
                         key);
}

bool set_contains(const memory::SlabArena& arena, TableRef table,
                  std::uint32_t key, std::uint64_t seed) {
  return contains_in_bucket(arena, table,
                            bucket_of(key, table.num_buckets, seed), key);
}

std::uint32_t set_bulk_insert(memory::SlabArena& arena, TableRef table,
                              std::uint32_t bucket, const std::uint32_t* keys,
                              std::uint32_t count, std::uint32_t alloc_seed,
                              std::uint32_t* chain_slabs, BulkStatus* status) {
  if (count == 1) {  // singleton run: sparse batches are mostly these
    return insert_in_bucket(arena, table, bucket, keys[0], alloc_seed,
                            chain_slabs, status)
               ? 1u
               : 0u;
  }
  std::uint32_t added = 0;
  std::uint32_t max_depth = 0;
  for (std::uint32_t base = 0; base < count; base += simt::kWarpSize) {
    const std::uint32_t wave = count - base < simt::kWarpSize
                                   ? count - base
                                   : static_cast<std::uint32_t>(simt::kWarpSize);
    std::uint32_t pending = simt::lanemask_below(static_cast<int>(wave));
    SlabHandle handle = table.bucket_head(bucket);
    std::uint32_t depth = 0;
    while (pending != 0) {
      ++depth;
      Slab& slab = arena.resolve(handle);
      SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
      if (next != kNullSlab) simt::prefetch(&arena.resolve(next));
      // First lane probes all three masks in one pass; the shared EMPTY
      // scan serves every claim below (the run owns this bucket for the
      // phase), claimed slots vanishing from the local mask only.
      std::uint32_t empties = 0;
      bool probed = false;
      for (std::uint32_t m = pending; m != 0; m &= m - 1) {
        const int lane = std::countr_zero(m);
        std::uint32_t match;
        if (!probed) {
          const simt::SlabProbe probe = simt::probe_slab(
              slab.words, keys[base + lane], kEmptyKey, kTombstoneKey);
          match = probe.match & kSetKeyWordsMask;
          empties = probe.empty & kSetKeyWordsMask;
          probed = true;
        } else {
          match =
              simt::match_mask(slab.words, keys[base + lane]) & kSetKeyWordsMask;
        }
        if (match != 0) {
          pending &= ~(1u << lane);  // already present: not new
        }
      }
      for (std::uint32_t m = pending; m != 0 && empties != 0; m &= m - 1) {
        const int lane = std::countr_zero(m);
        const std::uint32_t key = keys[base + lane];
        while (empties != 0) {
          const int slot = std::countr_zero(empties);
          const std::uint32_t observed =
              atomic_cas(slab.words[slot], kEmptyKey, key);
          if (observed == kEmptyKey) {
            ++added;
            pending &= ~(1u << lane);
            empties &= ~(1u << slot);
            break;
          }
          if (observed == key) {  // racing identical key
            pending &= ~(1u << lane);
            break;
          }
          empties &= ~(1u << slot);  // slot taken by a different key
        }
      }
      if (pending == 0) break;
      if (next == kNullSlab) {
        next = extend_chain(arena, slab,
                            alloc_seed + keys[base + std::countr_zero(pending)]);
        if (next == kNullSlab) {
          // Arena exhausted mid-wave: applied keys stay applied and counted;
          // the status reports the failing wave (see BulkStatus).
          if (depth > max_depth) max_depth = depth;
          if (chain_slabs != nullptr) *chain_slabs = max_depth;
          if (status == nullptr) throw_exhausted();
          status->ok = false;
          status->fail_base = base;
          status->fail_pending = pending;
          return added;
        }
      }
      handle = next;
    }
    if (depth > max_depth) max_depth = depth;
  }
  if (chain_slabs != nullptr) *chain_slabs = max_depth;
  return added;
}

std::uint32_t set_bulk_erase(memory::SlabArena& arena, TableRef table,
                             std::uint32_t bucket, const std::uint32_t* keys,
                             std::uint32_t count, std::uint32_t* chain_slabs) {
  if (count == 1) {
    return erase_in_bucket(arena, table, bucket, keys[0], chain_slabs) ? 1u : 0u;
  }
  std::uint32_t removed = 0;
  std::uint32_t max_depth = 0;
  for (std::uint32_t base = 0; base < count; base += simt::kWarpSize) {
    const std::uint32_t wave = count - base < simt::kWarpSize
                                   ? count - base
                                   : static_cast<std::uint32_t>(simt::kWarpSize);
    std::uint32_t pending = simt::lanemask_below(static_cast<int>(wave));
    SlabHandle handle = table.bucket_head(bucket);
    std::uint32_t depth = 0;
    while (pending != 0 && handle != kNullSlab) {
      ++depth;
      Slab& slab = arena.resolve(handle);
      const SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
      if (next != kNullSlab) simt::prefetch(&arena.resolve(next));
      // First lane probes all three masks at once; erase never creates
      // EMPTY slots, so the mask stays valid across the wave.
      std::uint32_t empties = 0;
      bool probed = false;
      for (std::uint32_t m = pending; m != 0; m &= m - 1) {
        const int lane = std::countr_zero(m);
        const std::uint32_t key = keys[base + lane];
        std::uint32_t match;
        if (!probed) {
          const simt::SlabProbe probe =
              simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
          match = probe.match & kSetKeyWordsMask;
          empties = probe.empty & kSetKeyWordsMask;
          probed = true;
        } else {
          match = simt::match_mask(slab.words, key) & kSetKeyWordsMask;
        }
        if (match != 0) {
          if (atomic_cas(slab.words[std::countr_zero(match)], key,
                         kTombstoneKey) == key) {
            ++removed;
          }
          pending &= ~(1u << lane);
        }
      }
      if (empties != 0) break;  // empties only at the tail: rest are absent
      handle = next;
    }
    if (depth > max_depth) max_depth = depth;
  }
  if (chain_slabs != nullptr) *chain_slabs = max_depth;
  return removed;
}

void set_bulk_contains(const memory::SlabArena& arena, TableRef table,
                       std::uint32_t bucket, const std::uint32_t* keys,
                       std::uint32_t count, std::uint8_t* found,
                       std::uint32_t* chain_slabs) {
  if (count == 1 && chain_slabs == nullptr) {
    found[0] = contains_in_bucket(arena, table, bucket, keys[0]) ? 1 : 0;
    return;
  }
  // Register-held depth, published once at exit (aliasing-safe feedback).
  std::uint32_t deepest = 0;
  for (std::uint32_t base = 0; base < count; base += simt::kWarpSize) {
    const std::uint32_t wave = count - base < simt::kWarpSize
                                   ? count - base
                                   : static_cast<std::uint32_t>(simt::kWarpSize);
    std::uint32_t pending = simt::lanemask_below(static_cast<int>(wave));
    for (std::uint32_t lane = 0; lane < wave; ++lane) found[base + lane] = 0;
    SlabHandle handle = table.bucket_head(bucket);
    std::uint32_t depth = 0;
    while (pending != 0 && handle != kNullSlab) {
      ++depth;
      const Slab& slab = arena.resolve(handle);
      const SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
      if (next != kNullSlab) simt::prefetch(&arena.resolve(next));
      std::uint32_t empties = 0;
      bool probed = false;
      for (std::uint32_t m = pending; m != 0; m &= m - 1) {
        const int lane = std::countr_zero(m);
        std::uint32_t match;
        if (!probed) {
          const simt::SlabProbe probe = simt::probe_slab(
              slab.words, keys[base + lane], kEmptyKey, kTombstoneKey);
          match = probe.match & kSetKeyWordsMask;
          empties = probe.empty & kSetKeyWordsMask;
          probed = true;
        } else {
          match =
              simt::match_mask(slab.words, keys[base + lane]) & kSetKeyWordsMask;
        }
        if (match != 0) {
          found[base + lane] = 1;
          pending &= ~(1u << lane);
        }
      }
      if (empties != 0) break;  // empties only at the tail: rest miss
      handle = next;
    }
    if (depth > deepest) deepest = depth;
  }
  if (chain_slabs != nullptr) *chain_slabs = deepest;
}

void set_for_each(const memory::SlabArena& arena, TableRef table,
                  const std::function<void(std::uint32_t)>& fn) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      std::uint32_t snap[memory::kWordsPerSlab];
      simt::snapshot_slab(arena.resolve(handle), snap);
      const std::uint32_t empties =
          simt::empty_mask(snap, kEmptyKey) & kSetKeyWordsMask;
      const std::uint32_t tombs =
          simt::tombstone_mask(snap, kTombstoneKey) & kSetKeyWordsMask;
      std::uint32_t live = kSetKeyWordsMask & ~tombs &
                           simt::bits_below(std::countr_zero(empties));
      while (live != 0) {
        fn(snap[std::countr_zero(live)]);
        live &= live - 1;
      }
      handle = snap[kNextPtrWord];
    }
  }
}

std::uint32_t set_gather(const memory::SlabArena& arena, TableRef table,
                         std::uint32_t* out, std::uint32_t cap,
                         std::uint32_t* chain_slabs) {
  std::uint32_t written = 0;
  std::uint32_t deepest = 0;  // register-held, published once at exit
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    std::uint32_t depth = 0;
    while (handle != kNullSlab) {
      ++depth;
      std::uint32_t snap[memory::kWordsPerSlab];
      simt::snapshot_slab(arena.resolve(handle), snap);
      const SlabHandle next = snap[kNextPtrWord];
      if (next != kNullSlab) simt::prefetch(&arena.resolve(next));
      const std::uint32_t empties =
          simt::empty_mask(snap, kEmptyKey) & kSetKeyWordsMask;
      const std::uint32_t tombs =
          simt::tombstone_mask(snap, kTombstoneKey) & kSetKeyWordsMask;
      std::uint32_t live = kSetKeyWordsMask & ~tombs &
                           simt::bits_below(std::countr_zero(empties));
      while (live != 0 && written < cap) {
        out[written++] = snap[std::countr_zero(live)];
        live &= live - 1;
      }
      handle = next;
    }
    if (depth > deepest) deepest = depth;
  }
  if (chain_slabs != nullptr) *chain_slabs = deepest;
  return written;
}

TableOccupancy set_occupancy(const memory::SlabArena& arena, TableRef table) {
  TableOccupancy occ;
  occ.base_slabs = table.num_buckets;
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    bool base = true;
    while (handle != kNullSlab) {
      const Slab& slab = arena.resolve(handle);
      if (!base) ++occ.overflow_slabs;
      occ.slots += kSetKeysPerSlab;
      // One probe + popcounts per slab instead of a per-slot word loop.
      const simt::SlabProbe probe =
          simt::probe_slab(slab.words, kEmptyKey, kEmptyKey, kTombstoneKey);
      const std::uint32_t empties = probe.empty & kSetKeyWordsMask;
      const std::uint32_t tombs = probe.tombstone & kSetKeyWordsMask;
      occ.tombstones += simt::popc(tombs);
      occ.live_keys += simt::popc(kSetKeyWordsMask & ~empties & ~tombs);
      handle = slab.words[kNextPtrWord];
      base = false;
    }
  }
  return occ;
}

void set_flush_tombstones(memory::SlabArena& arena, TableRef table) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    std::vector<std::uint32_t> live;
    std::vector<SlabHandle> chain;
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      chain.push_back(handle);
      const Slab& slab = arena.resolve(handle);
      const simt::SlabProbe probe =
          simt::probe_slab(slab.words, kEmptyKey, kEmptyKey, kTombstoneKey);
      std::uint32_t live_mask =
          kSetKeyWordsMask & ~probe.empty & ~probe.tombstone;
      while (live_mask != 0) {
        live.push_back(slab.words[std::countr_zero(live_mask)]);
        live_mask &= live_mask - 1;
      }
      handle = slab.words[kNextPtrWord];
    }
    std::size_t cursor = 0;
    std::size_t keep_slabs = 0;
    for (std::size_t s = 0; s < chain.size(); ++s) {
      Slab& slab = arena.resolve(chain[s]);
      bool any = false;
      for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
        if (cursor < live.size()) {
          slab.words[slot] = live[cursor++];
          any = true;
        } else {
          slab.words[slot] = kEmptyKey;
        }
      }
      if (any || s == 0) keep_slabs = s + 1;
    }
    if (!chain.empty()) {
      Slab& last_kept = arena.resolve(chain[keep_slabs - 1]);
      last_kept.words[kNextPtrWord] = kNullSlab;
      for (std::size_t s = keep_slabs; s < chain.size(); ++s) arena.free(chain[s]);
    }
  }
}

void set_clear(memory::SlabArena& arena, TableRef table) {
  // kEmptyKey (== kNullSlab) is all-ones: one memset resets the whole slab.
  static_assert(kEmptyKey == 0xFFFFFFFFu && memory::kNullSlab == 0xFFFFFFFFu);
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    Slab& head = arena.resolve(table.bucket_head(b));
    SlabHandle overflow = head.words[kNextPtrWord];
    while (overflow != kNullSlab) {
      const SlabHandle next = arena.resolve(overflow).words[kNextPtrWord];
      arena.free(overflow);
      overflow = next;
    }
    std::memset(head.words, 0xFF, sizeof(head.words));
  }
}

SlabHashSet::SlabHashSet(memory::SlabArena& arena, std::uint32_t num_buckets,
                         std::uint64_t seed)
    : arena_(&arena), seed_(seed) {
  table_.num_buckets = num_buckets == 0 ? 1 : num_buckets;
  table_.base = arena.allocate_contiguous(table_.num_buckets, kEmptyKey);
}

}  // namespace sg::slabhash
