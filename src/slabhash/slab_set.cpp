#include "src/slabhash/slab_set.hpp"

#include <cstring>
#include <vector>

#include "src/simt/atomics.hpp"

namespace sg::slabhash {

using memory::kNullSlab;
using memory::Slab;
using memory::SlabHandle;
using simt::atomic_cas;
using simt::atomic_load;

namespace {

SlabHandle extend_chain(memory::SlabArena& arena, Slab& slab,
                        std::uint32_t alloc_seed) {
  const SlabHandle fresh = arena.allocate(kEmptyKey, alloc_seed);
  const std::uint32_t observed =
      atomic_cas(slab.words[kNextPtrWord], kNullSlab, fresh);
  if (observed == kNullSlab) return fresh;
  arena.free(fresh);
  return observed;
}

}  // namespace

bool set_insert(memory::SlabArena& arena, TableRef table, std::uint32_t key,
                std::uint64_t seed, std::uint32_t alloc_seed) {
  const std::uint32_t bucket = bucket_of(key, table.num_buckets, seed);
  SlabHandle handle = table.bucket_head(bucket);
  for (;;) {
    Slab& slab = arena.resolve(handle);
    for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
      const std::uint32_t k = atomic_load(slab.words[slot]);
      if (k == key) return false;  // already present
      if (k == kTombstoneKey) continue;
      if (k == kEmptyKey) {
        const std::uint32_t observed = atomic_cas(slab.words[slot], kEmptyKey, key);
        if (observed == kEmptyKey) return true;
        if (observed == key) return false;
        // A different key won the slot; keep scanning.
      }
    }
    SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
    if (next == kNullSlab) next = extend_chain(arena, slab, alloc_seed + key);
    handle = next;
  }
}

bool set_erase(memory::SlabArena& arena, TableRef table, std::uint32_t key,
               std::uint64_t seed) {
  const std::uint32_t bucket = bucket_of(key, table.num_buckets, seed);
  SlabHandle handle = table.bucket_head(bucket);
  while (handle != kNullSlab) {
    Slab& slab = arena.resolve(handle);
    for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
      const std::uint32_t k = atomic_load(slab.words[slot]);
      if (k == key) return atomic_cas(slab.words[slot], key, kTombstoneKey) == key;
      if (k == kEmptyKey) return false;
    }
    handle = atomic_load(slab.words[kNextPtrWord]);
  }
  return false;
}

bool set_contains(const memory::SlabArena& arena, TableRef table,
                  std::uint32_t key, std::uint64_t seed) {
  // Query-phase scan: a GPU warp compares all 32 slab words in one step, so
  // the host analog snapshots the slab (plain, vectorizable loads — safe
  // under the phase-concurrent model) and compares without per-word atomics.
  const std::uint32_t bucket = bucket_of(key, table.num_buckets, seed);
  SlabHandle handle = table.bucket_head(bucket);
  while (handle != kNullSlab) {
    std::uint32_t words[memory::kWordsPerSlab];
    std::memcpy(words, arena.resolve(handle).words, sizeof(words));
    bool hit = false;
    bool open = false;  // an EMPTY slot => the key cannot be further along
    for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
      hit |= words[slot] == key;
      open |= words[slot] == kEmptyKey;
    }
    if (hit) return true;
    if (open) return false;
    handle = words[kNextPtrWord];
  }
  return false;
}

void set_for_each(const memory::SlabArena& arena, TableRef table,
                  const std::function<void(std::uint32_t)>& fn) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      const Slab& slab = arena.resolve(handle);
      for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
        const std::uint32_t k = atomic_load(slab.words[slot]);
        if (k == kEmptyKey) break;  // empties only at the slab tail
        if (k != kTombstoneKey) fn(k);
      }
      handle = atomic_load(slab.words[kNextPtrWord]);
    }
  }
}

TableOccupancy set_occupancy(const memory::SlabArena& arena, TableRef table) {
  TableOccupancy occ;
  occ.base_slabs = table.num_buckets;
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    bool base = true;
    while (handle != kNullSlab) {
      const Slab& slab = arena.resolve(handle);
      if (!base) ++occ.overflow_slabs;
      occ.slots += kSetKeysPerSlab;
      for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
        const std::uint32_t k = slab.words[slot];
        if (k == kTombstoneKey) {
          ++occ.tombstones;
        } else if (k != kEmptyKey) {
          ++occ.live_keys;
        }
      }
      handle = slab.words[kNextPtrWord];
      base = false;
    }
  }
  return occ;
}

void set_flush_tombstones(memory::SlabArena& arena, TableRef table) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    std::vector<std::uint32_t> live;
    std::vector<SlabHandle> chain;
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      chain.push_back(handle);
      const Slab& slab = arena.resolve(handle);
      for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
        const std::uint32_t k = slab.words[slot];
        if (k != kEmptyKey && k != kTombstoneKey) live.push_back(k);
      }
      handle = slab.words[kNextPtrWord];
    }
    std::size_t cursor = 0;
    std::size_t keep_slabs = 0;
    for (std::size_t s = 0; s < chain.size(); ++s) {
      Slab& slab = arena.resolve(chain[s]);
      bool any = false;
      for (int slot = 0; slot < kSetKeysPerSlab; ++slot) {
        if (cursor < live.size()) {
          slab.words[slot] = live[cursor++];
          any = true;
        } else {
          slab.words[slot] = kEmptyKey;
        }
      }
      if (any || s == 0) keep_slabs = s + 1;
    }
    if (!chain.empty()) {
      Slab& last_kept = arena.resolve(chain[keep_slabs - 1]);
      last_kept.words[kNextPtrWord] = kNullSlab;
      for (std::size_t s = keep_slabs; s < chain.size(); ++s) arena.free(chain[s]);
    }
  }
}

void set_clear(memory::SlabArena& arena, TableRef table) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    Slab& head = arena.resolve(table.bucket_head(b));
    SlabHandle overflow = head.words[kNextPtrWord];
    while (overflow != kNullSlab) {
      const SlabHandle next = arena.resolve(overflow).words[kNextPtrWord];
      arena.free(overflow);
      overflow = next;
    }
    for (int w = 0; w < memory::kWordsPerSlab; ++w) head.words[w] = kEmptyKey;
  }
}

SlabHashSet::SlabHashSet(memory::SlabArena& arena, std::uint32_t num_buckets,
                         std::uint64_t seed)
    : arena_(&arena), seed_(seed) {
  table_.num_buckets = num_buckets == 0 ? 1 : num_buckets;
  table_.base = arena.allocate_contiguous(table_.num_buckets, kEmptyKey);
}

}  // namespace sg::slabhash
