#include "src/slabhash/slab_map.hpp"

#include <bit>
#include <vector>

#include "src/simt/atomics.hpp"
#include "src/simt/simd.hpp"

// Hot paths (replace / erase / search / for_each) execute the paper's
// warp-parallel slab operation as one vectorized compare per slab
// (simt::probe_slab -> ballot-style masks -> ffs), not a per-word loop of
// atomic loads. CAS is kept only for the slot being claimed or tombstoned;
// every read before that is a plain vector load, which the
// phase-concurrent model permits (a stale word is re-checked by the CAS).

namespace sg::slabhash {

using memory::kNullSlab;
using memory::Slab;
using memory::SlabHandle;
using simt::atomic_cas;
using simt::atomic_load;
using simt::atomic_store;

namespace {

/// Appends a fresh slab after `slab` if it has no successor; returns the
/// successor either way. Losing the publication race frees the new slab and
/// follows the winner, exactly as slab hash does on the GPU.
SlabHandle extend_chain(memory::SlabArena& arena, Slab& slab,
                        std::uint32_t alloc_seed) {
  const SlabHandle fresh = arena.allocate(kEmptyKey, alloc_seed);
  // A fresh slab is all kEmptyKey; kEmptyKey == kNullSlab, so its next
  // pointer is already "null".
  const std::uint32_t observed =
      atomic_cas(slab.words[kNextPtrWord], kNullSlab, fresh);
  if (observed == kNullSlab) return fresh;
  arena.free(fresh);
  return observed;
}

}  // namespace

bool map_replace(memory::SlabArena& arena, TableRef table, std::uint32_t key,
                 std::uint32_t value, std::uint64_t seed,
                 std::uint32_t alloc_seed) {
  const std::uint32_t bucket = bucket_of(key, table.num_buckets, seed);
  SlabHandle handle = table.bucket_head(bucket);
  for (;;) {
    Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    const std::uint32_t match = probe.match & kMapKeyWordsMask;
    if (match != 0) {  // key already stored: overwrite the value
      atomic_store(slab.words[std::countr_zero(match) + 1], value);
      return false;
    }
    // Claim the first EMPTY key slot; on a lost race fall through to the
    // next candidate (tombstones are never reused by insertion).
    std::uint32_t empties = probe.empty & kMapKeyWordsMask;
    while (empties != 0) {
      const int key_word = std::countr_zero(empties);
      const std::uint32_t observed =
          atomic_cas(slab.words[key_word], kEmptyKey, key);
      if (observed == kEmptyKey) {
        atomic_store(slab.words[key_word + 1], value);
        return true;
      }
      if (observed == key) {  // lost the race to an identical key
        atomic_store(slab.words[key_word + 1], value);
        return false;
      }
      empties &= empties - 1;  // a different key claimed the slot
    }
    SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
    if (next == kNullSlab) next = extend_chain(arena, slab, alloc_seed + key);
    handle = next;
  }
}

bool map_erase(memory::SlabArena& arena, TableRef table, std::uint32_t key,
               std::uint64_t seed) {
  const std::uint32_t bucket = bucket_of(key, table.num_buckets, seed);
  SlabHandle handle = table.bucket_head(bucket);
  while (handle != kNullSlab) {
    Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    const std::uint32_t match = probe.match & kMapKeyWordsMask;
    if (match != 0) {
      // CAS (not a plain store) so two warps deleting the same key only
      // decrement the edge counter once.
      return atomic_cas(slab.words[std::countr_zero(match)], key,
                        kTombstoneKey) == key;
    }
    if ((probe.empty & kMapKeyWordsMask) != 0) {
      return false;  // empties only at the tail
    }
    handle = atomic_load(slab.words[kNextPtrWord]);
  }
  return false;
}

MapFindResult map_search(const memory::SlabArena& arena, TableRef table,
                         std::uint32_t key, std::uint64_t seed) {
  const std::uint32_t bucket = bucket_of(key, table.num_buckets, seed);
  SlabHandle handle = table.bucket_head(bucket);
  while (handle != kNullSlab) {
    const Slab& slab = arena.resolve(handle);
    const SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
    const std::uint32_t* words = slab.words;
    std::uint32_t snap[memory::kWordsPerSlab];
    if (next != kNullSlab) {
      // Overflow chain: snapshot so key and value come from one read of
      // the slab. Single-slab buckets (the common case at the paper's load
      // factors) probe the shared words directly and skip the copy.
      simt::snapshot_slab(slab, snap);
      words = snap;
    }
    const simt::SlabProbe probe =
        simt::probe_slab(words, key, kEmptyKey, kTombstoneKey);
    const std::uint32_t match = probe.match & kMapKeyWordsMask;
    if (match != 0) return {true, words[std::countr_zero(match) + 1]};
    if ((probe.empty & kMapKeyWordsMask) != 0) return {};
    handle = next;
  }
  return {};
}

void map_for_each(const memory::SlabArena& arena, TableRef table,
                  const std::function<void(std::uint32_t, std::uint32_t)>& fn) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      std::uint32_t snap[memory::kWordsPerSlab];
      simt::snapshot_slab(arena.resolve(handle), snap);
      const std::uint32_t empties =
          simt::empty_mask(snap, kEmptyKey) & kMapKeyWordsMask;
      const std::uint32_t tombs =
          simt::tombstone_mask(snap, kTombstoneKey) & kMapKeyWordsMask;
      // Live pairs sit below the first EMPTY slot (empties only at the
      // slab tail); tombstoned slots are skipped.
      std::uint32_t live = kMapKeyWordsMask & ~tombs &
                           simt::bits_below(std::countr_zero(empties));
      while (live != 0) {
        const int key_word = std::countr_zero(live);
        fn(snap[key_word], snap[key_word + 1]);
        live &= live - 1;
      }
      handle = snap[kNextPtrWord];
    }
  }
}

TableOccupancy map_occupancy(const memory::SlabArena& arena, TableRef table) {
  TableOccupancy occ;
  occ.base_slabs = table.num_buckets;
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    bool base = true;
    while (handle != kNullSlab) {
      const Slab& slab = arena.resolve(handle);
      if (!base) ++occ.overflow_slabs;
      occ.slots += kMapPairsPerSlab;
      for (int pair = 0; pair < kMapPairsPerSlab; ++pair) {
        const std::uint32_t k = slab.words[pair * 2];
        if (k == kTombstoneKey) {
          ++occ.tombstones;
        } else if (k != kEmptyKey) {
          ++occ.live_keys;
        }
      }
      handle = slab.words[kNextPtrWord];
      base = false;
    }
  }
  return occ;
}

void map_flush_tombstones(memory::SlabArena& arena, TableRef table) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    // Collect live pairs of this bucket chain, then rewrite the chain
    // densely and free overflow slabs that became empty.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> live;
    std::vector<SlabHandle> chain;
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      chain.push_back(handle);
      const Slab& slab = arena.resolve(handle);
      for (int pair = 0; pair < kMapPairsPerSlab; ++pair) {
        const std::uint32_t k = slab.words[pair * 2];
        if (k != kEmptyKey && k != kTombstoneKey) {
          live.emplace_back(k, slab.words[pair * 2 + 1]);
        }
      }
      handle = slab.words[kNextPtrWord];
    }
    std::size_t cursor = 0;
    std::size_t keep_slabs = 0;
    for (std::size_t s = 0; s < chain.size(); ++s) {
      Slab& slab = arena.resolve(chain[s]);
      bool any = false;
      for (int pair = 0; pair < kMapPairsPerSlab; ++pair) {
        if (cursor < live.size()) {
          slab.words[pair * 2] = live[cursor].first;
          slab.words[pair * 2 + 1] = live[cursor].second;
          ++cursor;
          any = true;
        } else {
          slab.words[pair * 2] = kEmptyKey;
          slab.words[pair * 2 + 1] = kEmptyKey;
        }
      }
      if (any || s == 0) keep_slabs = s + 1;
    }
    // Detach and free overflow slabs past the last one still in use.
    if (!chain.empty()) {
      Slab& last_kept = arena.resolve(chain[keep_slabs - 1]);
      last_kept.words[kNextPtrWord] = kNullSlab;
      for (std::size_t s = keep_slabs; s < chain.size(); ++s) {
        arena.free(chain[s]);
      }
    }
  }
}

void map_clear(memory::SlabArena& arena, TableRef table) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    Slab& head = arena.resolve(table.bucket_head(b));
    SlabHandle overflow = head.words[kNextPtrWord];
    while (overflow != kNullSlab) {
      const SlabHandle next = arena.resolve(overflow).words[kNextPtrWord];
      arena.free(overflow);
      overflow = next;
    }
    for (int w = 0; w < memory::kWordsPerSlab; ++w) head.words[w] = kEmptyKey;
  }
}

SlabHashMap::SlabHashMap(memory::SlabArena& arena, std::uint32_t num_buckets,
                         std::uint64_t seed)
    : arena_(&arena), seed_(seed) {
  table_.num_buckets = num_buckets == 0 ? 1 : num_buckets;
  table_.base = arena.allocate_contiguous(table_.num_buckets, kEmptyKey);
}

}  // namespace sg::slabhash
