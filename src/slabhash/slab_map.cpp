#include "src/slabhash/slab_map.hpp"

#include <bit>
#include <cstring>
#include <vector>

#include "src/simt/atomics.hpp"
#include "src/simt/simd.hpp"
#include "src/simt/warp.hpp"

// Hot paths (replace / erase / search / for_each) execute the paper's
// warp-parallel slab operation as one vectorized compare per slab
// (simt::probe_slab -> ballot-style masks -> ffs), not a per-word loop of
// atomic loads. CAS is kept only for the slot being claimed or tombstoned;
// every read before that is a plain vector load, which the
// phase-concurrent model permits (a stale word is re-checked by the CAS).

namespace sg::slabhash {

using memory::kNullSlab;
using memory::Slab;
using memory::SlabHandle;
using simt::atomic_cas;
using simt::atomic_load;
using simt::atomic_store;

namespace {

/// Appends a fresh slab after `slab` if it has no successor; returns the
/// successor either way, or kNullSlab when the arena is exhausted (the
/// chain is untouched in that case — callers surface the failure). Losing
/// the publication race frees the new slab and follows the winner, exactly
/// as slab hash does on the GPU.
SlabHandle extend_chain(memory::SlabArena& arena, Slab& slab,
                        std::uint32_t alloc_seed) {
  const SlabHandle fresh = arena.try_allocate(kEmptyKey, alloc_seed);
  if (fresh == kNullSlab) return kNullSlab;
  // A fresh slab is all kEmptyKey; kEmptyKey == kNullSlab, so its next
  // pointer is already "null".
  const std::uint32_t observed =
      atomic_cas(slab.words[kNextPtrWord], kNullSlab, fresh);
  if (observed == kNullSlab) return fresh;
  arena.free(fresh);
  return observed;
}

/// Shared exhaustion exit of the scalar mutation paths (status == nullptr):
/// preserves the historical throwing contract.
[[noreturn]] void throw_exhausted() {
  throw memory::ArenaExhausted(
      "slabhash: cannot extend bucket chain: arena exhausted");
}

struct PairClaim {
  bool success = false;
  std::uint32_t observed_key = kEmptyKey;
};

/// Claims the <key, value> pair at the (even, odd) word pair starting at
/// `pair_words` with ONE 64-bit CAS, so no reader can ever observe a claimed
/// key without its value — this closes the read-your-write window between
/// the old key CAS and the follow-up value store. The expected state is
/// (EMPTY, EMPTY): insertion only claims EMPTY slots, and a slot's value
/// word is EMPTY whenever its key word is (allocation fills both,
/// clear/flush reset both, and this CAS writes both).
inline PairClaim claim_pair(std::uint32_t* pair_words, std::uint32_t key,
                            std::uint32_t value) noexcept {
  // The pair is 8-byte aligned (slabs are 128-byte aligned, key words are
  // even), so the two words form one naturally-aligned 64-bit lane and the
  // CAS publishes them together on either byte order — the key simply
  // occupies whichever half aliases pair_words[0]. (The uint64 view of the
  // uint32 array is formally type punning; the atomic op makes it safe in
  // practice on every supported toolchain.)
  constexpr bool kKeyInLowHalf = std::endian::native == std::endian::little;
  auto* pair = reinterpret_cast<std::uint64_t*>(pair_words);
  constexpr std::uint64_t kExpected =
      (std::uint64_t{kEmptyKey} << 32) | kEmptyKey;  // all-ones either way
  const std::uint64_t desired = kKeyInLowHalf
                                    ? (std::uint64_t{value} << 32) | key
                                    : (std::uint64_t{key} << 32) | value;
  const std::uint64_t observed = atomic_cas(*pair, kExpected, desired);
  if (observed == kExpected) return {true, kEmptyKey};
  return {false, static_cast<std::uint32_t>(
                     kKeyInLowHalf ? observed : observed >> 32)};
}

}  // namespace

namespace {

/// map_replace after hashing: shared by the scalar entry point and the bulk
/// path's singleton runs (which arrive pre-hashed). `chain_slabs`, when
/// non-null, receives how deep into the chain the walk went (1 = base).
/// On arena exhaustion: records the failure into `status` when given (the
/// key is then NOT inserted and not counted), else throws ArenaExhausted.
bool replace_in_bucket(memory::SlabArena& arena, TableRef table,
                       std::uint32_t bucket, std::uint32_t key,
                       std::uint32_t value, std::uint32_t alloc_seed,
                       std::uint32_t* chain_slabs = nullptr,
                       BulkStatus* status = nullptr) {
  SlabHandle handle = table.bucket_head(bucket);
  // The walked depth is kept in a register and published only at the exits:
  // a per-slab store through chain_slabs could alias slab words and force
  // the compiler to reload them mid-probe.
  std::uint32_t depth = 0;
  for (;;) {
    ++depth;
    Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    const std::uint32_t match = probe.match & kMapKeyWordsMask;
    if (match != 0) {  // key already stored: overwrite the value
      atomic_store(slab.words[std::countr_zero(match) + 1], value);
      if (chain_slabs != nullptr) *chain_slabs = depth;
      return false;
    }
    // Claim the first EMPTY key slot with a single 64-bit key+value CAS;
    // on a lost race fall through to the next candidate (tombstones are
    // never reused by insertion).
    std::uint32_t empties = probe.empty & kMapKeyWordsMask;
    while (empties != 0) {
      const int key_word = std::countr_zero(empties);
      const PairClaim claim = claim_pair(&slab.words[key_word], key, value);
      if (claim.success) {
        if (chain_slabs != nullptr) *chain_slabs = depth;
        return true;
      }
      if (claim.observed_key == key) {  // lost the race to an identical key
        atomic_store(slab.words[key_word + 1], value);
        if (chain_slabs != nullptr) *chain_slabs = depth;
        return false;
      }
      empties &= empties - 1;  // a different key claimed the slot
    }
    SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
    if (next == kNullSlab) {
      next = extend_chain(arena, slab, alloc_seed + key);
      if (next == kNullSlab) {
        if (chain_slabs != nullptr) *chain_slabs = depth;
        if (status == nullptr) throw_exhausted();
        status->ok = false;
        status->fail_base = 0;
        status->fail_pending = 1u;  // the lone key of this singleton run
        return false;
      }
    }
    handle = next;
  }
}

/// map_erase after hashing (scalar entry point + singleton bulk runs).
bool erase_in_bucket(memory::SlabArena& arena, TableRef table,
                     std::uint32_t bucket, std::uint32_t key,
                     std::uint32_t* chain_slabs = nullptr) {
  SlabHandle handle = table.bucket_head(bucket);
  std::uint32_t depth = 0;  // published at the exits only (aliasing)
  bool removed = false;
  while (handle != kNullSlab) {
    ++depth;
    Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    const std::uint32_t match = probe.match & kMapKeyWordsMask;
    if (match != 0) {
      // CAS (not a plain store) so two warps deleting the same key only
      // decrement the edge counter once.
      removed = atomic_cas(slab.words[std::countr_zero(match)], key,
                           kTombstoneKey) == key;
      break;
    }
    if ((probe.empty & kMapKeyWordsMask) != 0) break;  // empties at the tail
    handle = atomic_load(slab.words[kNextPtrWord]);
  }
  if (chain_slabs != nullptr) *chain_slabs = depth;
  return removed;
}

/// map_search after hashing (scalar entry point + singleton bulk runs).
/// No snapshot copy: keys publish together with their values in one 64-bit
/// CAS (claim_pair), so a matched key's value word is always valid — even
/// mid-insert-phase a reader can never catch the pair half-written.
MapFindResult search_in_bucket(const memory::SlabArena& arena, TableRef table,
                               std::uint32_t bucket, std::uint32_t key) {
  SlabHandle handle = table.bucket_head(bucket);
  while (handle != kNullSlab) {
    const Slab& slab = arena.resolve(handle);
    const simt::SlabProbe probe =
        simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
    const std::uint32_t match = probe.match & kMapKeyWordsMask;
    if (match != 0) {
      return {true, atomic_load(slab.words[std::countr_zero(match) + 1])};
    }
    if ((probe.empty & kMapKeyWordsMask) != 0) return {};
    handle = atomic_load(slab.words[kNextPtrWord]);
  }
  return {};
}

}  // namespace

bool map_replace(memory::SlabArena& arena, TableRef table, std::uint32_t key,
                 std::uint32_t value, std::uint64_t seed,
                 std::uint32_t alloc_seed) {
  return replace_in_bucket(arena, table,
                           bucket_of(key, table.num_buckets, seed), key, value,
                           alloc_seed);
}

bool map_erase(memory::SlabArena& arena, TableRef table, std::uint32_t key,
               std::uint64_t seed) {
  return erase_in_bucket(arena, table, bucket_of(key, table.num_buckets, seed),
                         key);
}

MapFindResult map_search(const memory::SlabArena& arena, TableRef table,
                         std::uint32_t key, std::uint64_t seed) {
  return search_in_bucket(arena, table,
                          bucket_of(key, table.num_buckets, seed), key);
}

// ---------------------------------------------------------------------------
// Staged bulk entry points. One wave of <= 32 keys (a warp's worth) walks
// the bucket chain once: per slab, one vector compare per still-pending key
// against cache-hot words, ONE EMPTY-mask scan shared by every claim, and
// the successor slab prefetched while the compares resolve.
// ---------------------------------------------------------------------------

std::uint32_t map_bulk_replace(memory::SlabArena& arena, TableRef table,
                               std::uint32_t bucket, const std::uint32_t* keys,
                               const std::uint32_t* values, std::uint32_t count,
                               std::uint32_t alloc_seed,
                               std::uint32_t* chain_slabs,
                               BulkStatus* status) {
  if (count == 1) {  // singleton run: sparse batches are mostly these
    return replace_in_bucket(arena, table, bucket, keys[0], values[0],
                             alloc_seed, chain_slabs, status)
               ? 1u
               : 0u;
  }
  std::uint32_t added = 0;
  std::uint32_t max_depth = 0;
  for (std::uint32_t base = 0; base < count; base += simt::kWarpSize) {
    const std::uint32_t wave = count - base < simt::kWarpSize
                                   ? count - base
                                   : static_cast<std::uint32_t>(simt::kWarpSize);
    std::uint32_t pending = simt::lanemask_below(static_cast<int>(wave));
    SlabHandle handle = table.bucket_head(bucket);
    std::uint32_t depth = 0;
    while (pending != 0) {
      ++depth;
      Slab& slab = arena.resolve(handle);
      // Load the successor early: its slab climbs the cache hierarchy
      // while this slab's compares and claims resolve.
      SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
      if (next != kNullSlab) simt::prefetch(&arena.resolve(next));
      // The first lane's probe yields the slab's EMPTY mask for free (one
      // pass computes all three masks); later lanes only need the match.
      // The run owns this bucket for the phase, so that one EMPTY scan
      // serves every claim below: claimed slots vanish from the local mask.
      std::uint32_t empties = 0;
      bool probed = false;
      for (std::uint32_t m = pending; m != 0; m &= m - 1) {
        const int lane = std::countr_zero(m);
        std::uint32_t match;
        if (!probed) {
          const simt::SlabProbe probe = simt::probe_slab(
              slab.words, keys[base + lane], kEmptyKey, kTombstoneKey);
          match = probe.match & kMapKeyWordsMask;
          empties = probe.empty & kMapKeyWordsMask;
          probed = true;
        } else {
          match = simt::match_mask(slab.words, keys[base + lane]) &
                  kMapKeyWordsMask;
        }
        if (match != 0) {  // already stored: overwrite the value, not new
          atomic_store(slab.words[std::countr_zero(match) + 1],
                       values[base + lane]);
          pending &= ~(1u << lane);
        }
      }
      for (std::uint32_t m = pending; m != 0 && empties != 0; m &= m - 1) {
        const int lane = std::countr_zero(m);
        const std::uint32_t key = keys[base + lane];
        while (empties != 0) {
          const int key_word = std::countr_zero(empties);
          const PairClaim claim =
              claim_pair(&slab.words[key_word], key, values[base + lane]);
          if (claim.success) {
            ++added;
            pending &= ~(1u << lane);
            empties &= ~(1u << key_word);
            break;
          }
          if (claim.observed_key == key) {  // racing identical key
            atomic_store(slab.words[key_word + 1], values[base + lane]);
            pending &= ~(1u << lane);
            break;
          }
          empties &= ~(1u << key_word);  // slot taken by a different key
        }
      }
      if (pending == 0) break;
      if (next == kNullSlab) {
        next = extend_chain(arena, slab,
                            alloc_seed + keys[base + std::countr_zero(pending)]);
        if (next == kNullSlab) {
          // Arena exhausted mid-wave. Keys already applied (this wave's
          // cleared lanes, and every earlier wave) stay applied and stay
          // counted in `added`; the failure report covers the rest.
          if (depth > max_depth) max_depth = depth;
          if (chain_slabs != nullptr) *chain_slabs = max_depth;
          if (status == nullptr) throw_exhausted();
          status->ok = false;
          status->fail_base = base;
          status->fail_pending = pending;
          return added;
        }
      }
      handle = next;
    }
    if (depth > max_depth) max_depth = depth;
  }
  if (chain_slabs != nullptr) *chain_slabs = max_depth;
  return added;
}

std::uint32_t map_bulk_erase(memory::SlabArena& arena, TableRef table,
                             std::uint32_t bucket, const std::uint32_t* keys,
                             std::uint32_t count, std::uint32_t* chain_slabs) {
  if (count == 1) {
    return erase_in_bucket(arena, table, bucket, keys[0], chain_slabs) ? 1u : 0u;
  }
  std::uint32_t removed = 0;
  std::uint32_t max_depth = 0;
  for (std::uint32_t base = 0; base < count; base += simt::kWarpSize) {
    const std::uint32_t wave = count - base < simt::kWarpSize
                                   ? count - base
                                   : static_cast<std::uint32_t>(simt::kWarpSize);
    std::uint32_t pending = simt::lanemask_below(static_cast<int>(wave));
    SlabHandle handle = table.bucket_head(bucket);
    std::uint32_t depth = 0;
    while (pending != 0 && handle != kNullSlab) {
      ++depth;
      Slab& slab = arena.resolve(handle);
      const SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
      if (next != kNullSlab) simt::prefetch(&arena.resolve(next));
      // First lane probes all three masks in one pass; erase never creates
      // EMPTY slots, so the mask stays valid across the wave.
      std::uint32_t empties = 0;
      bool probed = false;
      for (std::uint32_t m = pending; m != 0; m &= m - 1) {
        const int lane = std::countr_zero(m);
        const std::uint32_t key = keys[base + lane];
        std::uint32_t match;
        if (!probed) {
          const simt::SlabProbe probe =
              simt::probe_slab(slab.words, key, kEmptyKey, kTombstoneKey);
          match = probe.match & kMapKeyWordsMask;
          empties = probe.empty & kMapKeyWordsMask;
          probed = true;
        } else {
          match = simt::match_mask(slab.words, key) & kMapKeyWordsMask;
        }
        if (match != 0) {
          // CAS so a concurrent erase of the same key counts only once.
          if (atomic_cas(slab.words[std::countr_zero(match)], key,
                         kTombstoneKey) == key) {
            ++removed;
          }
          pending &= ~(1u << lane);
        }
      }
      // Empties only at the tail: an EMPTY slot here means every key still
      // pending is absent from the chain.
      if (empties != 0) break;
      handle = next;
    }
    if (depth > max_depth) max_depth = depth;
  }
  if (chain_slabs != nullptr) *chain_slabs = max_depth;
  return removed;
}

void map_bulk_search(const memory::SlabArena& arena, TableRef table,
                     std::uint32_t bucket, const std::uint32_t* keys,
                     std::uint32_t count, std::uint8_t* found,
                     std::uint32_t* values, std::uint32_t* chain_slabs) {
  if (count == 1 && chain_slabs == nullptr) {
    const MapFindResult r = search_in_bucket(arena, table, bucket, keys[0]);
    found[0] = r.found ? 1 : 0;
    if (values != nullptr && r.found) values[0] = r.value;
    return;
  }
  // Chain depth is register-held and published once at exit, matching the
  // bulk mutations' aliasing-safe feedback discipline.
  std::uint32_t deepest = 0;
  for (std::uint32_t base = 0; base < count; base += simt::kWarpSize) {
    const std::uint32_t wave = count - base < simt::kWarpSize
                                   ? count - base
                                   : static_cast<std::uint32_t>(simt::kWarpSize);
    std::uint32_t pending = simt::lanemask_below(static_cast<int>(wave));
    for (std::uint32_t lane = 0; lane < wave; ++lane) found[base + lane] = 0;
    SlabHandle handle = table.bucket_head(bucket);
    std::uint32_t depth = 0;
    while (pending != 0 && handle != kNullSlab) {
      ++depth;
      const Slab& slab = arena.resolve(handle);
      const SlabHandle next = atomic_load(slab.words[kNextPtrWord]);
      if (next != kNullSlab) simt::prefetch(&arena.resolve(next));
      std::uint32_t empties = 0;
      bool probed = false;
      for (std::uint32_t m = pending; m != 0; m &= m - 1) {
        const int lane = std::countr_zero(m);
        std::uint32_t match;
        if (!probed) {
          const simt::SlabProbe probe = simt::probe_slab(
              slab.words, keys[base + lane], kEmptyKey, kTombstoneKey);
          match = probe.match & kMapKeyWordsMask;
          empties = probe.empty & kMapKeyWordsMask;
          probed = true;
        } else {
          match = simt::match_mask(slab.words, keys[base + lane]) &
                  kMapKeyWordsMask;
        }
        if (match != 0) {
          found[base + lane] = 1;
          if (values != nullptr) {
            values[base + lane] =
                atomic_load(slab.words[std::countr_zero(match) + 1]);
          }
          pending &= ~(1u << lane);
        }
      }
      if (empties != 0) break;  // empties only at the tail: the rest miss
      handle = next;
    }
    if (depth > deepest) deepest = depth;
  }
  if (chain_slabs != nullptr) *chain_slabs = deepest;
}

void map_for_each(const memory::SlabArena& arena, TableRef table,
                  const std::function<void(std::uint32_t, std::uint32_t)>& fn) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      std::uint32_t snap[memory::kWordsPerSlab];
      simt::snapshot_slab(arena.resolve(handle), snap);
      const std::uint32_t empties =
          simt::empty_mask(snap, kEmptyKey) & kMapKeyWordsMask;
      const std::uint32_t tombs =
          simt::tombstone_mask(snap, kTombstoneKey) & kMapKeyWordsMask;
      // Live pairs sit below the first EMPTY slot (empties only at the
      // slab tail); tombstoned slots are skipped.
      std::uint32_t live = kMapKeyWordsMask & ~tombs &
                           simt::bits_below(std::countr_zero(empties));
      while (live != 0) {
        const int key_word = std::countr_zero(live);
        fn(snap[key_word], snap[key_word + 1]);
        live &= live - 1;
      }
      handle = snap[kNextPtrWord];
    }
  }
}

std::uint32_t map_gather(const memory::SlabArena& arena, TableRef table,
                         std::uint32_t* out, std::uint32_t cap,
                         std::uint32_t* chain_slabs) {
  std::uint32_t written = 0;
  std::uint32_t deepest = 0;  // register-held, published once at exit
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    std::uint32_t depth = 0;
    while (handle != kNullSlab) {
      ++depth;
      std::uint32_t snap[memory::kWordsPerSlab];
      simt::snapshot_slab(arena.resolve(handle), snap);
      const SlabHandle next = snap[kNextPtrWord];
      if (next != kNullSlab) simt::prefetch(&arena.resolve(next));
      const std::uint32_t empties =
          simt::empty_mask(snap, kEmptyKey) & kMapKeyWordsMask;
      const std::uint32_t tombs =
          simt::tombstone_mask(snap, kTombstoneKey) & kMapKeyWordsMask;
      std::uint32_t live = kMapKeyWordsMask & ~tombs &
                           simt::bits_below(std::countr_zero(empties));
      while (live != 0 && written < cap) {
        out[written++] = snap[std::countr_zero(live)];
        live &= live - 1;
      }
      handle = next;
    }
    if (depth > deepest) deepest = depth;
  }
  if (chain_slabs != nullptr) *chain_slabs = deepest;
  return written;
}

TableOccupancy map_occupancy(const memory::SlabArena& arena, TableRef table) {
  // One probe per slab + three popcounts, instead of a per-pair word loop.
  TableOccupancy occ;
  occ.base_slabs = table.num_buckets;
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    SlabHandle handle = table.bucket_head(b);
    bool base = true;
    while (handle != kNullSlab) {
      const Slab& slab = arena.resolve(handle);
      if (!base) ++occ.overflow_slabs;
      occ.slots += kMapPairsPerSlab;
      const simt::SlabProbe probe =
          simt::probe_slab(slab.words, kEmptyKey, kEmptyKey, kTombstoneKey);
      const std::uint32_t empties = probe.empty & kMapKeyWordsMask;
      const std::uint32_t tombs = probe.tombstone & kMapKeyWordsMask;
      occ.tombstones += simt::popc(tombs);
      occ.live_keys += simt::popc(kMapKeyWordsMask & ~empties & ~tombs);
      handle = slab.words[kNextPtrWord];
      base = false;
    }
  }
  return occ;
}

void map_flush_tombstones(memory::SlabArena& arena, TableRef table) {
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    // Collect live pairs of this bucket chain, then rewrite the chain
    // densely and free overflow slabs that became empty.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> live;
    std::vector<SlabHandle> chain;
    SlabHandle handle = table.bucket_head(b);
    while (handle != kNullSlab) {
      chain.push_back(handle);
      const Slab& slab = arena.resolve(handle);
      const simt::SlabProbe probe =
          simt::probe_slab(slab.words, kEmptyKey, kEmptyKey, kTombstoneKey);
      std::uint32_t live_mask =
          kMapKeyWordsMask & ~probe.empty & ~probe.tombstone;
      while (live_mask != 0) {
        const int key_word = std::countr_zero(live_mask);
        live.emplace_back(slab.words[key_word], slab.words[key_word + 1]);
        live_mask &= live_mask - 1;
      }
      handle = slab.words[kNextPtrWord];
    }
    std::size_t cursor = 0;
    std::size_t keep_slabs = 0;
    for (std::size_t s = 0; s < chain.size(); ++s) {
      Slab& slab = arena.resolve(chain[s]);
      bool any = false;
      for (int pair = 0; pair < kMapPairsPerSlab; ++pair) {
        if (cursor < live.size()) {
          slab.words[pair * 2] = live[cursor].first;
          slab.words[pair * 2 + 1] = live[cursor].second;
          ++cursor;
          any = true;
        } else {
          slab.words[pair * 2] = kEmptyKey;
          slab.words[pair * 2 + 1] = kEmptyKey;
        }
      }
      if (any || s == 0) keep_slabs = s + 1;
    }
    // Detach and free overflow slabs past the last one still in use.
    if (!chain.empty()) {
      Slab& last_kept = arena.resolve(chain[keep_slabs - 1]);
      last_kept.words[kNextPtrWord] = kNullSlab;
      for (std::size_t s = keep_slabs; s < chain.size(); ++s) {
        arena.free(chain[s]);
      }
    }
  }
}

void map_clear(memory::SlabArena& arena, TableRef table) {
  // kEmptyKey (== kNullSlab) is all-ones, so one 128-byte memset resets
  // keys, values, the reserved word, and the next pointer at once.
  static_assert(kEmptyKey == 0xFFFFFFFFu && memory::kNullSlab == 0xFFFFFFFFu);
  for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
    Slab& head = arena.resolve(table.bucket_head(b));
    SlabHandle overflow = head.words[kNextPtrWord];
    while (overflow != kNullSlab) {
      const SlabHandle next = arena.resolve(overflow).words[kNextPtrWord];
      arena.free(overflow);
      overflow = next;
    }
    std::memset(head.words, 0xFF, sizeof(head.words));
  }
}

SlabHashMap::SlabHashMap(memory::SlabArena& arena, std::uint32_t num_buckets,
                         std::uint64_t seed)
    : arena_(&arena), seed_(seed) {
  table_.num_buckets = num_buckets == 0 ? 1 : num_buckets;
  table_.base = arena.allocate_contiguous(table_.num_buckets, kEmptyKey);
}

}  // namespace sg::slabhash
