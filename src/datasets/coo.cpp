#include "src/datasets/coo.hpp"

#include <algorithm>

#include "src/util/prng.hpp"

namespace sg::datasets {

std::vector<std::uint32_t> Coo::degrees() const {
  std::vector<std::uint32_t> out(num_vertices, 0);
  for (const auto& e : edges) {
    if (e.src < num_vertices) ++out[e.src];
  }
  return out;
}

util::DegreeStats Coo::degree_stats() const {
  const auto d = degrees();
  return util::degree_stats(d);
}

void Coo::canonicalize() {
  std::erase_if(edges, [this](const core::WeightedEdge& e) {
    return e.src == e.dst || e.src >= num_vertices || e.dst >= num_vertices;
  });
  std::sort(edges.begin(), edges.end(),
            [](const core::WeightedEdge& a, const core::WeightedEdge& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const core::WeightedEdge& a,
                             const core::WeightedEdge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());
}

std::vector<core::WeightedEdge> Coo::unique_undirected_edges() const {
  std::vector<core::WeightedEdge> out;
  out.reserve(edges.size() / 2);
  for (const auto& e : edges) {
    if (e.src < e.dst) out.push_back(e);
  }
  return out;
}

std::vector<core::WeightedEdge> random_edge_batch(const Coo& graph,
                                                  std::size_t batch_size,
                                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<core::WeightedEdge> batch;
  batch.reserve(batch_size);
  const std::uint32_t n = graph.num_vertices == 0 ? 1 : graph.num_vertices;
  while (batch.size() < batch_size) {
    const auto src = static_cast<core::VertexId>(rng.below(n));
    const auto dst = static_cast<core::VertexId>(rng.below(n));
    batch.push_back({src, dst, static_cast<core::Weight>(rng.below(1u << 20))});
  }
  return batch;
}

std::vector<core::Edge> random_deletion_batch(const Coo& graph,
                                              std::size_t batch_size,
                                              std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<core::Edge> batch;
  batch.reserve(batch_size);
  const std::uint64_t m = graph.edges.empty() ? 1 : graph.edges.size();
  for (std::size_t i = 0; i < batch_size; ++i) {
    if (!graph.edges.empty() && rng.uniform() < 0.75) {
      const auto& e = graph.edges[rng.below(m)];
      batch.push_back({e.src, e.dst});
    } else {
      // A share of misses: random pairs that are mostly absent, the
      // "randomly generated edges" of the paper's deletion workload.
      const std::uint32_t n = graph.num_vertices == 0 ? 1 : graph.num_vertices;
      batch.push_back({static_cast<core::VertexId>(rng.below(n)),
                       static_cast<core::VertexId>(rng.below(n))});
    }
  }
  return batch;
}

std::vector<core::VertexId> random_vertex_batch(std::uint32_t num_vertices,
                                                std::size_t batch_size,
                                                std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  // Distinct ids via partial Fisher-Yates over an index array.
  std::vector<core::VertexId> ids(num_vertices);
  for (std::uint32_t i = 0; i < num_vertices; ++i) ids[i] = i;
  const std::size_t take = batch_size < num_vertices ? batch_size : num_vertices;
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(num_vertices - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(take);
  return ids;
}

std::vector<std::span<const core::WeightedEdge>> split_batches(
    std::span<const core::WeightedEdge> edges, std::size_t batch_size) {
  std::vector<std::span<const core::WeightedEdge>> out;
  if (batch_size == 0) batch_size = 1;
  for (std::size_t start = 0; start < edges.size(); start += batch_size) {
    const std::size_t len = std::min(batch_size, edges.size() - start);
    out.push_back(edges.subspan(start, len));
  }
  return out;
}

}  // namespace sg::datasets
