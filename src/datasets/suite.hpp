// The benchmark dataset suite: one synthetic analog per Table I row, scaled
// to host-feasible sizes (DESIGN.md §5). Every bench binary pulls datasets
// from here by name so paper tables and our tables share row labels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/datasets/coo.hpp"

namespace sg::datasets {

struct SuiteSpec {
  std::string name;        ///< Table I dataset name this analog stands in for
  std::string family;      ///< generator family (road, delaunay, rgg, ...)
  std::uint32_t vertices;  ///< scaled vertex count at scale = 1
  double avg_degree;       ///< Table I's reported average degree (target)
};

/// The 12 Table I rows, in paper order.
const std::vector<SuiteSpec>& table1_specs();

/// Generates the named analog. `scale` multiplies the vertex budget
/// (0 < scale <= 8); rmat edge counts scale along. Deterministic.
Coo make_dataset(const std::string& name, double scale = 1.0,
                 std::uint64_t seed = 42);

/// All 12 names, paper order.
std::vector<std::string> suite_names();

/// A fast 5-dataset subset used by integration tests and quick runs.
std::vector<std::string> small_suite_names();

/// The four datasets Table IV averages over.
std::vector<std::string> vertex_deletion_suite_names();

/// The four "similar edge count" datasets of Table VI.
std::vector<std::string> incremental_suite_names();

}  // namespace sg::datasets
