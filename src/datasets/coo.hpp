// COO (coordinate-list) container: the interchange format between the
// generators and every graph structure ("we assume that the input is given
// in a COO format", §V-B1). Undirected graphs carry both directions
// explicitly, matching how the paper's (symmetric SuiteSparse) datasets are
// consumed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/types.hpp"
#include "src/util/stats.hpp"

namespace sg::datasets {

struct Coo {
  std::string name;
  std::uint32_t num_vertices = 0;
  bool undirected = false;        ///< true => edges contains both directions
  std::vector<core::WeightedEdge> edges;

  std::uint64_t num_edges() const noexcept { return edges.size(); }

  /// Out-degree of every vertex.
  std::vector<std::uint32_t> degrees() const;

  /// Table I statistics (min / max / avg / sigma of degree).
  util::DegreeStats degree_stats() const;

  /// Drops duplicate (src, dst) pairs (keeping the first) and self-loops;
  /// generators call this so COO inputs are clean static graphs.
  void canonicalize();

  /// The undirected edge list with src < dst (each undirected edge once).
  std::vector<core::WeightedEdge> unique_undirected_edges() const;
};

/// Random batch of edges between *existing* vertices, duplicates allowed
/// within the batch and against the graph (Table II/III workload, §V-A1).
std::vector<core::WeightedEdge> random_edge_batch(const Coo& graph,
                                                  std::size_t batch_size,
                                                  std::uint64_t seed);

/// Batch of edges sampled *from* the graph (so deletions mostly hit live
/// edges), plus duplicates, for the deletion benches.
std::vector<core::Edge> random_deletion_batch(const Coo& graph,
                                              std::size_t batch_size,
                                              std::uint64_t seed);

/// Distinct random vertex ids for the vertex-deletion bench (§V-A2).
std::vector<core::VertexId> random_vertex_batch(std::uint32_t num_vertices,
                                                std::size_t batch_size,
                                                std::uint64_t seed);

/// Splits `edges` into consecutive batches of `batch_size` (last may be
/// short) for the incremental-build workload (§V-B2).
std::vector<std::span<const core::WeightedEdge>> split_batches(
    std::span<const core::WeightedEdge> edges, std::size_t batch_size);

}  // namespace sg::datasets
