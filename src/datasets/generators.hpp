// Synthetic graph generators matched to the degree statistics of the
// paper's Table I dataset families (the DESIGN.md hardware-substitution
// table explains why families, not exact datasets, are what matters):
//
//   road graphs        (luxembourg/germany/usa): avg degree ~2.1-2.4, tiny
//                      variance, max degree <= ~9
//   delaunay meshes    : degree 6 +- ~1.3
//   random geometric   (rgg): degree 13-16 +- ~4 (Poisson-like)
//   FEM mesh (ldoor)   : degree ~48 +- ~12, min degree high
//   co-authorship      : degree ~6.4, heavy-ish tail (sigma ~10)
//   social / web (soc-*, hollywood): scale-free RMAT, max degree 10^3-10^4
//
// All generators are deterministic in (parameters, seed), emit symmetric
// (undirected, both directions present) simple graphs, and attach uniform
// random weights.
#pragma once

#include <cstdint>

#include "src/datasets/coo.hpp"

namespace sg::datasets {

/// Road network: 2D grid with randomly dropped street segments and a few
/// diagonal shortcuts. Average (directed) degree ~2.1-2.4.
Coo make_road(std::uint32_t target_vertices, std::uint64_t seed);

/// Delaunay-like triangulated grid: interior vertices have degree 6.
Coo make_delaunay(std::uint32_t target_vertices, std::uint64_t seed);

/// Random geometric graph on the unit square with radius tuned for
/// `avg_degree`; grid-bucketed neighbour search.
Coo make_rgg(std::uint32_t target_vertices, double avg_degree,
             std::uint64_t seed);

/// 3D FEM-style mesh (27-point stencil + partial second shell): degree ~48.
Coo make_mesh3d(std::uint32_t target_vertices, std::uint64_t seed);

/// Preferential attachment (co-authorship-like): avg degree ~2*edges_per_new,
/// right-skewed degree distribution.
Coo make_preferential(std::uint32_t target_vertices,
                      std::uint32_t edges_per_new, std::uint64_t seed);

/// RMAT scale-free graph (a=0.57, b=c=0.19, d=0.05 by default — the
/// Graph500 parameters). `directed_edges` counts generated directed edges
/// before symmetrization/dedup.
Coo make_rmat(std::uint32_t target_vertices, std::uint64_t directed_edges,
              std::uint64_t seed, double a = 0.57, double b = 0.19,
              double c = 0.19);

}  // namespace sg::datasets
