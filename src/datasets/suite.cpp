#include "src/datasets/suite.hpp"

#include <cmath>
#include <stdexcept>

#include "src/datasets/generators.hpp"

namespace sg::datasets {

const std::vector<SuiteSpec>& table1_specs() {
  static const std::vector<SuiteSpec> specs = {
      // name                 family          vertices  avg degree (Table I)
      {"luxembourg_osm",      "road",          16384,    2.1},
      {"germany_osm",         "road",         147456,    2.1},
      {"road_usa",            "road",         262144,    2.4},
      {"delaunay_n23",        "delaunay",      65536,    6.0},
      {"delaunay_n20",        "delaunay",      16384,    6.0},
      {"rgg_n_2_20_s0",       "rgg",           16384,   13.1},
      {"rgg_n_2_24_s0",       "rgg",          131072,   16.0},
      {"coAuthorsDBLP",       "preferential",  32768,    6.4},
      {"ldoor",               "mesh3d",        32768,   47.7},
      {"soc-LiveJournal1",    "rmat",          65536,   17.2},
      {"soc-orkut",           "rmat",          32768,   70.9},
      {"hollywood-2009",      "rmat",          16384,   98.9},
  };
  return specs;
}

Coo make_dataset(const std::string& name, double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 8.0) {
    throw std::invalid_argument("dataset scale must be in (0, 8]");
  }
  for (const auto& spec : table1_specs()) {
    if (spec.name != name) continue;
    const auto vertices = static_cast<std::uint32_t>(
        std::max(64.0, std::round(spec.vertices * scale)));
    Coo coo;
    if (spec.family == "road") {
      coo = make_road(vertices, seed);
    } else if (spec.family == "delaunay") {
      coo = make_delaunay(vertices, seed);
    } else if (spec.family == "rgg") {
      coo = make_rgg(vertices, spec.avg_degree, seed);
    } else if (spec.family == "mesh3d") {
      coo = make_mesh3d(vertices, seed);
    } else if (spec.family == "preferential") {
      coo = make_preferential(vertices, 3, seed);
    } else if (spec.family == "rmat") {
      const auto edges = static_cast<std::uint64_t>(
          static_cast<double>(vertices) * spec.avg_degree);
      coo = make_rmat(vertices, edges, seed);
    } else {
      throw std::logic_error("unknown generator family: " + spec.family);
    }
    coo.name = name;
    return coo;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  for (const auto& spec : table1_specs()) names.push_back(spec.name);
  return names;
}

std::vector<std::string> small_suite_names() {
  return {"luxembourg_osm", "delaunay_n20", "rgg_n_2_20_s0", "coAuthorsDBLP",
          "hollywood-2009"};
}

std::vector<std::string> vertex_deletion_suite_names() {
  // Table IV: "averaged over four datasets: soc-orkut, soc-LiveJournal1,
  // delaunay_n23, and germany_osm".
  return {"soc-orkut", "soc-LiveJournal1", "delaunay_n23", "germany_osm"};
}

std::vector<std::string> incremental_suite_names() {
  // Table VI: "graphs with a similar number of edges (ldoor, delaunay_n23,
  // road_usa, soc-LiveJournal1)".
  return {"ldoor", "delaunay_n23", "road_usa", "soc-LiveJournal1"};
}

}  // namespace sg::datasets
