#include "src/datasets/generators.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "src/util/prng.hpp"

namespace sg::datasets {

namespace {

core::Weight random_weight(util::Xoshiro256& rng) {
  return static_cast<core::Weight>(rng.below(1u << 20));
}

/// Adds u<->v (both directions) to the edge list.
void add_undirected(Coo& coo, util::Xoshiro256& rng, core::VertexId u,
                    core::VertexId v) {
  const core::Weight w = random_weight(rng);
  coo.edges.push_back({u, v, w});
  coo.edges.push_back({v, u, w});
}

}  // namespace

Coo make_road(std::uint32_t target_vertices, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto side = static_cast<std::uint32_t>(std::sqrt(double(target_vertices)));
  Coo coo;
  coo.name = "road";
  coo.undirected = true;
  coo.num_vertices = side * side;
  auto id = [side](std::uint32_t x, std::uint32_t y) { return y * side + x; };
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      // Street grid with dropped segments: keep right/down links with
      // probability tuned so the average undirected degree lands ~2.2
      // (each kept link contributes 1 to both endpoints' degrees).
      if (x + 1 < side && rng.uniform() < 0.55) {
        add_undirected(coo, rng, id(x, y), id(x + 1, y));
      }
      if (y + 1 < side && rng.uniform() < 0.55) {
        add_undirected(coo, rng, id(x, y), id(x, y + 1));
      }
      // Occasional diagonal shortcut (ramps / bridges).
      if (x + 1 < side && y + 1 < side && rng.uniform() < 0.02) {
        add_undirected(coo, rng, id(x, y), id(x + 1, y + 1));
      }
    }
  }
  coo.canonicalize();
  return coo;
}

Coo make_delaunay(std::uint32_t target_vertices, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto side = static_cast<std::uint32_t>(std::sqrt(double(target_vertices)));
  Coo coo;
  coo.name = "delaunay";
  coo.undirected = true;
  coo.num_vertices = side * side;
  auto id = [side](std::uint32_t x, std::uint32_t y) { return y * side + x; };
  // Triangulated grid: right, down, and one diagonal per cell => interior
  // degree exactly 6, like a Delaunay triangulation of near-uniform points.
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      if (x + 1 < side) add_undirected(coo, rng, id(x, y), id(x + 1, y));
      if (y + 1 < side) add_undirected(coo, rng, id(x, y), id(x, y + 1));
      if (x + 1 < side && y + 1 < side) {
        add_undirected(coo, rng, id(x, y), id(x + 1, y + 1));
      }
    }
  }
  coo.canonicalize();
  return coo;
}

Coo make_rgg(std::uint32_t target_vertices, double avg_degree,
             std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Coo coo;
  coo.name = "rgg";
  coo.undirected = true;
  coo.num_vertices = target_vertices;
  // Expected degree of an RGG with radius r is n * pi * r^2.
  const double r =
      std::sqrt(avg_degree / (static_cast<double>(target_vertices) * M_PI));
  std::vector<float> xs(target_vertices);
  std::vector<float> ys(target_vertices);
  for (std::uint32_t i = 0; i < target_vertices; ++i) {
    xs[i] = static_cast<float>(rng.uniform());
    ys[i] = static_cast<float>(rng.uniform());
  }
  // Grid-bucket the points at cell size r: neighbours lie in the 3x3 cells.
  const auto cells = static_cast<std::uint32_t>(std::max(1.0, 1.0 / r));
  const double cell_size = 1.0 / cells;
  std::vector<std::vector<std::uint32_t>> grid(
      static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](float x, float y) {
    auto cx = static_cast<std::uint32_t>(x / cell_size);
    auto cy = static_cast<std::uint32_t>(y / cell_size);
    if (cx >= cells) cx = cells - 1;
    if (cy >= cells) cy = cells - 1;
    return static_cast<std::size_t>(cy) * cells + cx;
  };
  for (std::uint32_t i = 0; i < target_vertices; ++i) {
    grid[cell_of(xs[i], ys[i])].push_back(i);
  }
  const double r2 = r * r;
  for (std::uint32_t i = 0; i < target_vertices; ++i) {
    const auto cx = static_cast<std::int64_t>(xs[i] / cell_size);
    const auto cy = static_cast<std::int64_t>(ys[i] / cell_size);
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = cx + dx;
        const std::int64_t ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (std::uint32_t j : grid[static_cast<std::size_t>(ny) * cells +
                                    static_cast<std::size_t>(nx)]) {
          if (j <= i) continue;  // emit each pair once
          const double ddx = xs[i] - xs[j];
          const double ddy = ys[i] - ys[j];
          if (ddx * ddx + ddy * ddy <= r2) add_undirected(coo, rng, i, j);
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

Coo make_mesh3d(std::uint32_t target_vertices, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto side = static_cast<std::uint32_t>(
      std::round(std::cbrt(double(target_vertices))));
  Coo coo;
  coo.name = "mesh3d";
  coo.undirected = true;
  coo.num_vertices = side * side * side;
  auto id = [side](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (z * side + y) * side + x;
  };
  // 27-point stencil (26 neighbours) plus ~45% of the axis-aligned
  // distance-2 shell: interior degree ~ 26 + 0.45*48 ~ 48, sigma from the
  // random second shell and boundary effects — the ldoor-like profile.
  for (std::uint32_t z = 0; z < side; ++z) {
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        const core::VertexId u = id(x, y, z);
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const std::int64_t nx = std::int64_t(x) + dx;
              const std::int64_t ny = std::int64_t(y) + dy;
              const std::int64_t nz = std::int64_t(z) + dz;
              if (nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side ||
                  nz >= side) {
                continue;
              }
              const core::VertexId v = id(static_cast<std::uint32_t>(nx),
                                          static_cast<std::uint32_t>(ny),
                                          static_cast<std::uint32_t>(nz));
              if (v > u) add_undirected(coo, rng, u, v);
            }
          }
        }
        for (const auto& [dx, dy, dz] :
             {std::array<int, 3>{2, 0, 0}, {0, 2, 0}, {0, 0, 2},
              {2, 2, 0}, {2, 0, 2}, {0, 2, 2},
              {2, 1, 0}, {1, 2, 0}, {0, 2, 1}, {0, 1, 2}, {2, 0, 1},
              {1, 0, 2}}) {
          if (rng.uniform() >= 0.9) continue;
          const std::int64_t nx = std::int64_t(x) + dx;
          const std::int64_t ny = std::int64_t(y) + dy;
          const std::int64_t nz = std::int64_t(z) + dz;
          if (nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side ||
              nz >= side) {
            continue;
          }
          const core::VertexId v = id(static_cast<std::uint32_t>(nx),
                                      static_cast<std::uint32_t>(ny),
                                      static_cast<std::uint32_t>(nz));
          add_undirected(coo, rng, u, v);
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

Coo make_preferential(std::uint32_t target_vertices,
                      std::uint32_t edges_per_new, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Coo coo;
  coo.name = "preferential";
  coo.undirected = true;
  coo.num_vertices = target_vertices;
  // Barabasi-Albert: each new vertex attaches to `edges_per_new` targets
  // sampled proportionally to degree (endpoint-list sampling).
  std::vector<core::VertexId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(target_vertices) * edges_per_new * 2);
  const std::uint32_t seed_clique = edges_per_new + 1;
  for (std::uint32_t u = 0; u < seed_clique && u < target_vertices; ++u) {
    for (std::uint32_t v = u + 1; v < seed_clique && v < target_vertices; ++v) {
      add_undirected(coo, rng, u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (std::uint32_t u = seed_clique; u < target_vertices; ++u) {
    for (std::uint32_t k = 0; k < edges_per_new; ++k) {
      const core::VertexId v = endpoints[rng.below(endpoints.size())];
      if (v == u) continue;
      add_undirected(coo, rng, u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  coo.canonicalize();
  return coo;
}

Coo make_rmat(std::uint32_t target_vertices, std::uint64_t directed_edges,
              std::uint64_t seed, double a, double b, double c) {
  util::Xoshiro256 rng(seed);
  Coo coo;
  coo.name = "rmat";
  coo.undirected = true;
  coo.num_vertices = std::bit_ceil(target_vertices);
  const int levels = std::countr_zero(coo.num_vertices);
  coo.edges.reserve(directed_edges * 2);
  for (std::uint64_t e = 0; e < directed_edges / 2; ++e) {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    for (int level = 0; level < levels; ++level) {
      const double p = rng.uniform();
      src <<= 1;
      dst <<= 1;
      if (p < a) {
        // top-left quadrant: neither bit set
      } else if (p < a + b) {
        dst |= 1;
      } else if (p < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src == dst) continue;
    add_undirected(coo, rng, src, dst);
  }
  coo.canonicalize();
  return coo;
}

}  // namespace sg::datasets
