// SlabArena: the memory manager of paper §IV-A, standing in for SlabAlloc.
//
// All hash-table storage is made of 128-byte slabs (32 x uint32 words).
// Two allocation paths mirror the paper exactly:
//
//  * Bulk contiguous allocation — the graph statically allocates all *base*
//    slabs (one per hash-table bucket) "in bulk ... more desirable than
//    requiring each hash table to independently allocate a small number of
//    buckets with different cudaMalloc calls". Bulk slabs are bump-allocated
//    and never individually reclaimed ("statically allocated memory is not
//    reclaimed", §IV-D2) — but a table REBUILD may return its whole base
//    range via free_contiguous, and allocate_contiguous reuses returned
//    ranges before bumping. Without this, sliding-window churn (docs/
//    WORKLOADS.md) leaks one abandoned base array per rehash and
//    steady-state memory grows without bound.
//
//  * Dynamic single-slab allocation — collision-resolution slabs appended to
//    a bucket's linked list. These come from super blocks with an atomic
//    occupancy bitmap (the SlabAlloc scheme) and are freed when a vertex is
//    deleted.
//
// Slabs are addressed by 32-bit handles (like SlabAlloc's 32-bit slab
// addresses): handle = chunk_index << 13 | slot. Handle resolution is two
// dependent loads, lock-free, and safe under concurrent allocation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace sg::memory {

/// The arena cannot grow: the chunk limit (set_chunk_limit, default the
/// 32 GiB address-space cap) is reached and no dynamic chunk has a free
/// slab. Derives std::bad_alloc so pre-existing callers that handled
/// allocation failure generically keep working; the batch engine catches it
/// specifically to abort a batch cleanly (docs/ROBUSTNESS.md).
class ArenaExhausted : public std::bad_alloc {
 public:
  explicit ArenaExhausted(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

/// A caller violated the arena contract: freeing a bulk (non-dynamic) slab,
/// or freeing a handle that is already free. Raised instead of silent UB
/// when checks are on (the default; see set_checks / GraphConfig::arena_checks).
class ArenaFault : public std::logic_error {
 public:
  explicit ArenaFault(const std::string& what) : std::logic_error(what) {}
};

/// 32-bit slab address; kNullSlab terminates bucket chains.
using SlabHandle = std::uint32_t;
inline constexpr SlabHandle kNullSlab = 0xFFFFFFFFu;

inline constexpr int kWordsPerSlab = 32;

/// A 128-byte slab, the unit of all adjacency-list storage.
struct alignas(128) Slab {
  std::uint32_t words[kWordsPerSlab];
};
static_assert(sizeof(Slab) == 128);

struct ArenaStats {
  std::uint64_t bulk_slabs = 0;       ///< base slabs currently live (handed
                                      ///< out minus free_contiguous returns)
  std::uint64_t dynamic_slabs = 0;    ///< collision slabs currently live
  std::uint64_t reserved_slabs = 0;   ///< total slab capacity backed by memory
  std::uint64_t bytes_reserved() const { return reserved_slabs * sizeof(Slab); }
  std::uint64_t bytes_in_use() const {
    return (bulk_slabs + dynamic_slabs) * sizeof(Slab);
  }
};

class SlabArena {
 public:
  /// Slabs per super block (chunk): 8192 slabs = 1 MiB. Also the upper
  /// bound on one contiguous (base-slab) allocation.
  static constexpr std::uint32_t kChunkSlabs = 1u << 13;
  static constexpr std::uint32_t kMaxChunks = 1u << 15;  ///< 32 GiB addressable

  SlabArena();
  ~SlabArena();

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Allocates `count` consecutive slabs (count <= kChunkSlabs) and
  /// returns the handle of the first; handles h .. h+count-1 are valid.
  /// Slabs are zero-initialized with `fill_word` in every word. Ranges
  /// returned through free_contiguous are reused (best fit) before the
  /// bump cursor grows a chunk, so table-rebuild churn recycles instead of
  /// leaking. Thread-safe but intended for (phase-serial)
  /// build/insert-vertex paths.
  SlabHandle allocate_contiguous(std::uint32_t count, std::uint32_t fill_word);

  /// Returns a whole contiguous base-slab range (a table's bucket array —
  /// exactly what an earlier allocate_contiguous handed out, or a
  /// still-contiguous part of it) for reuse by future allocate_contiguous
  /// calls. The one sanctioned way to reclaim "static" memory: individual
  /// base slabs stay unreclaimable (free() on one raises ArenaFault), but a
  /// REBUILT table's old range has no live references by construction.
  /// Freeing a range that overlaps an already-free one raises ArenaFault
  /// while checks are on. Bulk chunks whose every handed-out slab came back
  /// are released by release_empty_chunks. Quiescent-only with respect to
  /// readers of the range (the rebuild path's phase fence provides that).
  void free_contiguous(SlabHandle first, std::uint32_t count);

  /// Allocates one dynamic slab (collision slab), words filled with
  /// `fill_word`. `seed` spreads concurrent allocators over super blocks,
  /// mirroring SlabAlloc's per-warp super-block hashing. Thread-safe.
  /// Fast path: a handle recycled through the calling thread's free-slab
  /// cache — no bitmap scan, no shared-state contention.
  /// Throws ArenaExhausted when the chunk limit is reached and no dynamic
  /// chunk has space.
  SlabHandle allocate(std::uint32_t fill_word, std::uint32_t seed = 0);

  /// Like allocate(), but reports exhaustion by returning kNullSlab instead
  /// of throwing — the batch engine's bulk ops use this so a failure deep
  /// inside an epoch is a status it can act on, not an exception unwinding
  /// through a pool job.
  SlabHandle try_allocate(std::uint32_t fill_word, std::uint32_t seed = 0);

  /// Returns a dynamic slab to the arena. Freeing a bulk slab or an
  /// already-free handle raises ArenaFault while checks are on (the
  /// default); with checks off the call is ignored (and still asserts in
  /// debug builds). The paper never reclaims base slabs.
  /// Fast path: the handle parks in the calling thread's free-slab cache
  /// for the next allocate(); the cache spills to the shared bitmap.
  void free(SlabHandle handle);

  /// Caps growth at `max_chunks` chunks (1 MiB each), clamped to
  /// [1, kMaxChunks]. Existing chunks beyond a lowered limit stay usable;
  /// only further growth is refused. Call while quiescent.
  void set_chunk_limit(std::uint32_t max_chunks) noexcept;

  /// Enables/disables the always-on misuse checks in free() (double free,
  /// free of a non-dynamic slab). On by default; GraphConfig::arena_checks
  /// threads through here. Call while quiescent.
  void set_checks(bool enabled) noexcept { checks_ = enabled; }

  /// Handle -> storage. Valid for any live handle; lock-free.
  Slab& resolve(SlabHandle handle) const;

  ArenaStats stats() const;

  /// True if `handle` addresses a dynamic (freeable) slab.
  bool is_dynamic(SlabHandle handle) const;

  // ---- compaction / shrink (docs/WORKLOADS.md "Sliding-window") --------
  // Sliding-window churn retires whole batches of overflow slabs, but the
  // chunks that backed them stay resident at the high-water mark. The
  // quiescent-only primitives below let DynGraph::compact migrate the
  // survivors of sparse chunks into dense ones and hand the emptied chunks
  // back to the OS, so steady-state memory follows the live window instead
  // of its historical peak.

  /// Spills every per-thread free-slab cache back to its chunk bitmap so
  /// per-chunk free counts are exact. Quiescent-only (no concurrent
  /// allocate/free); release_empty_chunks runs it implicitly.
  void drain_free_caches();

  /// Deletes fully-free dynamic chunks — beyond the first `keep_free` of
  /// them, retained as an allocation reserve — and fully-freed bulk chunks
  /// (every handed-out slab returned via free_contiguous; the current bump
  /// chunk always stays), returning their memory to the OS; the vacated
  /// chunk indices are reused by future growth. Returns the number of
  /// chunks released. Quiescent-only: a fully-free chunk has no live
  /// handles, but the scan must not race an allocator.
  std::uint32_t release_empty_chunks(std::uint32_t keep_free = 0);

  /// Chunks currently backed by memory (bulk + dynamic).
  std::uint32_t live_chunks() const;

  /// Per-chunk occupancy of one dynamic chunk (compaction's victim-selection
  /// input). used_slabs counts allocated slabs, including handles parked in
  /// free caches — drain_free_caches() first for exact numbers.
  struct ChunkOccupancy {
    std::uint32_t index = 0;       ///< chunk index (handle >> 13)
    std::uint32_t used_slabs = 0;  ///< allocated slabs of kChunkSlabs
  };
  std::vector<ChunkOccupancy> dynamic_chunk_occupancy() const;

  /// Allocates one dynamic slab in a chunk NOT flagged in `excluded`
  /// (indexed by chunk; short vectors exclude nothing past their end),
  /// bypassing the free caches — the migration-target allocator: a slab
  /// moved out of a victim chunk must not land in another victim. Grows
  /// within the chunk limit like allocate(); throws ArenaExhausted when no
  /// non-excluded chunk has space and growth is refused. Quiescent-only.
  SlabHandle allocate_avoiding(std::uint32_t fill_word,
                               const std::vector<std::uint8_t>& excluded);

  /// Frees a dynamic slab straight to its chunk bitmap, bypassing the
  /// per-thread caches, so an emptying chunk's free count actually reaches
  /// kChunkSlabs. Same misuse checks as free().
  void free_direct(SlabHandle handle);

  /// Chunk index addressed by `handle`.
  static constexpr std::uint32_t chunk_index_of(SlabHandle handle) noexcept {
    return handle >> 13;
  }

  /// Capacity of one per-thread free-slab cache (handles, not bytes).
  static constexpr std::uint32_t kFreeCacheSlots = 32;
  /// Cache slots in the arena; threads map onto them by a per-thread index,
  /// the CPU analog of SlabAlloc's per-warp super-block residence.
  static constexpr std::uint32_t kNumFreeCaches = 64;

 private:
  struct Chunk;

  /// A small LIFO of recycled dynamic-slab handles. One per thread slot;
  /// the try-lock keeps index collisions (more threads than slots) safe
  /// without ever blocking — on contention callers fall through to the
  /// shared bitmap path.
  struct alignas(64) FreeCache {
    std::atomic<bool> locked{false};
    std::uint32_t count = 0;
    SlabHandle slots[kFreeCacheSlots];

    bool try_lock() noexcept {
      return !locked.exchange(true, std::memory_order_acquire);
    }
    void unlock() noexcept { locked.store(false, std::memory_order_release); }
  };

  Chunk* chunk_at(std::uint32_t index) const;
  std::uint32_t add_chunk(bool dynamic);  // returns chunk index
  bool cache_push(SlabHandle handle);     // throws ArenaFault on cached dup
  SlabHandle cache_pop() noexcept;  // kNullSlab when empty/contended
  /// Claims one free slab of `chunk` (bitmap scan from its hint cursor);
  /// kNullSlab when the chunk is full. Shared by try_allocate and
  /// allocate_avoiding.
  SlabHandle claim_in_chunk(Chunk* chunk, std::uint32_t chunk_index,
                            std::uint32_t fill_word);
  /// free() body; `use_cache` selects the per-thread fast path.
  void free_impl(SlabHandle handle, bool use_cache);

  std::unique_ptr<std::atomic<Chunk*>[]> chunks_;
  std::atomic<std::uint32_t> num_chunks_{0};
  std::unique_ptr<FreeCache[]> free_caches_;
  std::atomic<std::uint32_t> chunk_limit_{kMaxChunks};
  bool checks_ = true;

  // Bulk (base-slab) bump state. bulk_free_ holds ranges returned by
  // free_contiguous, address-ordered and coalesced within each chunk;
  // allocate_contiguous carves from it (best fit) before bumping. All
  // guarded by bulk_mutex_ (lock order: bulk_mutex_ before grow_mutex_).
  std::mutex bulk_mutex_;
  std::uint32_t bulk_chunk_ = 0;       // current bulk chunk index
  std::uint32_t bulk_cursor_ = kChunkSlabs;  // next free slot in bulk chunk
  std::map<SlabHandle, std::uint32_t> bulk_free_;  // range start -> slabs

  // Dynamic allocation state.
  std::mutex grow_mutex_;
  std::atomic<std::uint64_t> bulk_slabs_{0};
  std::atomic<std::uint64_t> dynamic_slabs_{0};
};

}  // namespace sg::memory
