#include "src/memory/slab_arena.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/util/fault_injection.hpp"
#include "src/util/prng.hpp"

namespace sg::memory {

namespace {
constexpr std::uint32_t kOffsetBits = 13;
constexpr std::uint32_t kOffsetMask = SlabArena::kChunkSlabs - 1;
constexpr std::uint32_t kBitmapWords = SlabArena::kChunkSlabs / 64;

/// Per-thread index used to pick a free-slab cache slot; assigned once per
/// thread, process-wide, so a thread maps to the same slot in every arena.
std::atomic<unsigned> g_thread_counter{0};

unsigned thread_cache_index() noexcept {
  thread_local const unsigned index =
      g_thread_counter.fetch_add(1, std::memory_order_relaxed);
  return index % SlabArena::kNumFreeCaches;
}
}  // namespace

struct SlabArena::Chunk {
  std::unique_ptr<Slab[]> slabs;
  bool dynamic = false;
  // Occupancy bitmap + free counter; only used by dynamic chunks.
  std::unique_ptr<std::atomic<std::uint64_t>[]> bitmap;
  std::atomic<std::uint32_t> free_count{0};
  /// Bitmap word where the last cold allocation found a free bit. Cold
  /// scans resume here instead of rescanning from a seed-derived start:
  /// once the low words fill up, later allocations skip them instead of
  /// re-walking a prefix of all-ones words every time. Racy-relaxed by
  /// design — a stale hint only costs extra scanning, never correctness
  /// (the scan still wraps the whole bitmap).
  std::atomic<std::uint32_t> scan_hint{0};
  /// Bulk chunks only: slabs handed out by allocate_contiguous and not yet
  /// returned through free_contiguous. 0 on a non-current bulk chunk means
  /// the whole chunk is reclaimable (release_empty_chunks).
  std::atomic<std::uint32_t> bulk_used{0};

  explicit Chunk(bool is_dynamic)
      : slabs(new Slab[SlabArena::kChunkSlabs]), dynamic(is_dynamic) {
    if (dynamic) {
      bitmap.reset(new std::atomic<std::uint64_t>[kBitmapWords]);
      for (std::uint32_t w = 0; w < kBitmapWords; ++w) {
        bitmap[w].store(0, std::memory_order_relaxed);
      }
      free_count.store(SlabArena::kChunkSlabs, std::memory_order_relaxed);
    }
  }
};

SlabArena::SlabArena()
    : chunks_(new std::atomic<Chunk*>[kMaxChunks]),
      free_caches_(new FreeCache[kNumFreeCaches]) {
  for (std::uint32_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

bool SlabArena::cache_push(SlabHandle handle) {
  FreeCache& cache = free_caches_[thread_cache_index()];
  if (!cache.try_lock()) return false;
  // Same-thread double free of a cached handle: the bitmap bit is still
  // set, so only this scan can catch it before the slab is handed out
  // twice. 32 slots — cheap enough to keep on in release builds.
  if (checks_) {
    for (std::uint32_t i = 0; i < cache.count; ++i) {
      if (cache.slots[i] == handle) {
        cache.unlock();
        throw ArenaFault("SlabArena::free: double free (handle in cache)");
      }
    }
  }
  const bool pushed = cache.count < kFreeCacheSlots;
  if (pushed) cache.slots[cache.count++] = handle;
  cache.unlock();
  return pushed;
}

SlabHandle SlabArena::cache_pop() noexcept {
  FreeCache& cache = free_caches_[thread_cache_index()];
  if (!cache.try_lock()) return kNullSlab;
  const SlabHandle handle =
      cache.count > 0 ? cache.slots[--cache.count] : kNullSlab;
  cache.unlock();
  return handle;
}

SlabArena::~SlabArena() {
  const std::uint32_t n = num_chunks_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    delete chunks_[i].load(std::memory_order_relaxed);
  }
}

SlabArena::Chunk* SlabArena::chunk_at(std::uint32_t index) const {
  return chunks_[index].load(std::memory_order_acquire);
}

void SlabArena::set_chunk_limit(std::uint32_t max_chunks) noexcept {
  chunk_limit_.store(std::clamp(max_chunks, 1u, kMaxChunks),
                     std::memory_order_relaxed);
}

std::uint32_t SlabArena::add_chunk(bool dynamic) {
  const std::uint32_t n = num_chunks_.load(std::memory_order_acquire);
  // Slots vacated by release_empty_chunks are recycled before the index
  // space grows, and the chunk limit caps LIVE chunks (memory), not the
  // high-water index — churn through compaction never shrinks the budget.
  std::uint32_t index = n;
  std::uint32_t live = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (chunk_at(i) == nullptr) {
      if (index == n) index = i;
    } else {
      ++live;
    }
  }
  if (live >= chunk_limit_.load(std::memory_order_relaxed) ||
      index >= kMaxChunks) {
    throw ArenaExhausted("SlabArena: chunk limit reached (" +
                         std::to_string(live) + " chunks of " +
                         std::to_string(kChunkSlabs) + " slabs)");
  }
  auto* chunk = new Chunk(dynamic);
  chunks_[index].store(chunk, std::memory_order_release);
  if (index == n) num_chunks_.store(n + 1, std::memory_order_release);
  return index;
}

SlabHandle SlabArena::allocate_contiguous(std::uint32_t count,
                                          std::uint32_t fill_word) {
  if (count == 0 || count > kChunkSlabs) {
    throw std::invalid_argument("allocate_contiguous: bad slab count");
  }
  if (SG_FAULT_FIRE(kArenaContiguous)) {
    throw ArenaExhausted("SlabArena: injected contiguous-allocation fault");
  }
  SlabHandle first;
  Chunk* chunk;
  {
    std::lock_guard<std::mutex> lock(bulk_mutex_);
    // Best-fit reuse of a returned range before the bump cursor grows:
    // rebuild churn (rehash swapping bucket arrays) cycles through here
    // instead of leaking one abandoned range per rebuild. The map is
    // small — it only ever holds ranges freed and not yet reused.
    auto best = bulk_free_.end();
    for (auto it = bulk_free_.begin(); it != bulk_free_.end(); ++it) {
      if (it->second >= count &&
          (best == bulk_free_.end() || it->second < best->second)) {
        best = it;
      }
    }
    if (best != bulk_free_.end()) {
      first = best->first;
      const std::uint32_t remaining = best->second - count;
      bulk_free_.erase(best);
      if (remaining > 0) bulk_free_.emplace(first + count, remaining);
      chunk = chunk_at(first >> kOffsetBits);
    } else {
      if (bulk_cursor_ + count > kChunkSlabs) {
        std::lock_guard<std::mutex> grow(grow_mutex_);
        bulk_chunk_ = add_chunk(/*dynamic=*/false);
        bulk_cursor_ = 0;
      }
      first = (bulk_chunk_ << kOffsetBits) | bulk_cursor_;
      bulk_cursor_ += count;
      chunk = chunk_at(bulk_chunk_);
    }
    chunk->bulk_used.fetch_add(count, std::memory_order_relaxed);
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    Slab& slab = chunk->slabs[(first & kOffsetMask) + i];
    for (int w = 0; w < kWordsPerSlab; ++w) slab.words[w] = fill_word;
  }
  bulk_slabs_.fetch_add(count, std::memory_order_relaxed);
  return first;
}

void SlabArena::free_contiguous(SlabHandle first, std::uint32_t count) {
  if (count == 0 || count > kChunkSlabs) {
    throw std::invalid_argument("free_contiguous: bad slab count");
  }
  const std::uint32_t ci = first >> kOffsetBits;
  const std::uint32_t slot = first & kOffsetMask;
  Chunk* chunk = ci < num_chunks_.load(std::memory_order_acquire)
                     ? chunk_at(ci)
                     : nullptr;
  assert(chunk != nullptr && !chunk->dynamic && slot + count <= kChunkSlabs &&
         "free_contiguous: not a bulk range");
  if (chunk == nullptr || chunk->dynamic || slot + count > kChunkSlabs) {
    if (checks_) {
      throw ArenaFault("SlabArena::free_contiguous: handle " +
                       std::to_string(first) +
                       " does not address a bulk slab range");
    }
    return;
  }
  std::lock_guard<std::mutex> lock(bulk_mutex_);
  // Overlap with an already-free range is the bulk analog of a double
  // free: reject before the same slabs can be handed out twice.
  auto next = bulk_free_.lower_bound(first);
  if (next != bulk_free_.end() && next->first < first + count) {
    if (checks_) {
      throw ArenaFault("SlabArena::free_contiguous: double free of range at " +
                       std::to_string(first));
    }
    return;
  }
  auto prev = next;
  if (prev != bulk_free_.begin() && (--prev)->first + prev->second > first) {
    if (checks_) {
      throw ArenaFault("SlabArena::free_contiguous: double free of range at " +
                       std::to_string(first));
    }
    return;
  }
  // Coalesce with adjacent free ranges — same chunk only: the last handle
  // of chunk c and the first of chunk c+1 are numerically adjacent but not
  // contiguous memory.
  SlabHandle lo = first;
  std::uint32_t merged = count;
  if (prev != next && (prev->first >> kOffsetBits) == ci &&
      prev->first + prev->second == first) {
    lo = prev->first;
    merged += prev->second;
    bulk_free_.erase(prev);
  }
  if (next != bulk_free_.end() && (next->first >> kOffsetBits) == ci &&
      lo + merged == next->first) {
    merged += next->second;
    bulk_free_.erase(next);
  }
  bulk_free_.emplace(lo, merged);
  chunk->bulk_used.fetch_sub(count, std::memory_order_relaxed);
  bulk_slabs_.fetch_sub(count, std::memory_order_relaxed);
}

SlabHandle SlabArena::allocate(std::uint32_t fill_word, std::uint32_t seed) {
  const SlabHandle handle = try_allocate(fill_word, seed);
  if (handle == kNullSlab) {
    throw ArenaExhausted("SlabArena: dynamic slab allocation failed (" +
                         std::to_string(num_chunks_.load(
                             std::memory_order_relaxed)) +
                         " chunks, limit " +
                         std::to_string(chunk_limit_.load(
                             std::memory_order_relaxed)) +
                         ")");
  }
  return handle;
}

SlabHandle SlabArena::claim_in_chunk(Chunk* chunk, std::uint32_t chunk_index,
                                     std::uint32_t fill_word) {
  // Scan bitmap words from the chunk's hint cursor: resume where the
  // last cold allocation left off rather than rescanning the (likely
  // full) words before it.
  const std::uint32_t w0 =
      chunk->scan_hint.load(std::memory_order_relaxed) % kBitmapWords;
  for (std::uint32_t dw = 0; dw < kBitmapWords; ++dw) {
    const std::uint32_t w = (w0 + dw) % kBitmapWords;
    std::uint64_t bits = chunk->bitmap[w].load(std::memory_order_relaxed);
    while (bits != ~std::uint64_t{0}) {
      const int bit = std::countr_one(bits);
      const std::uint64_t mask = std::uint64_t{1} << bit;
      const std::uint64_t prev =
          chunk->bitmap[w].fetch_or(mask, std::memory_order_acq_rel);
      if ((prev & mask) == 0) {
        chunk->free_count.fetch_sub(1, std::memory_order_relaxed);
        chunk->scan_hint.store(w, std::memory_order_relaxed);
        const std::uint32_t slot = w * 64 + static_cast<std::uint32_t>(bit);
        Slab& slab = chunk->slabs[slot];
        for (int word = 0; word < kWordsPerSlab; ++word) {
          slab.words[word] = fill_word;
        }
        dynamic_slabs_.fetch_add(1, std::memory_order_relaxed);
        return (chunk_index << kOffsetBits) | slot;
      }
      bits = prev | mask;
    }
  }
  return kNullSlab;
}

SlabHandle SlabArena::try_allocate(std::uint32_t fill_word,
                                   std::uint32_t seed) {
  if (SG_FAULT_FIRE(kArenaAllocate)) return kNullSlab;
  // Fast path: a slab this thread recently freed. Its bitmap bit is still
  // set, so no other thread can hand it out; no shared state is touched.
  const SlabHandle cached = cache_pop();
  if (cached != kNullSlab) {
    Slab& slab = resolve(cached);
    for (int word = 0; word < kWordsPerSlab; ++word) slab.words[word] = fill_word;
    dynamic_slabs_.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  for (int attempt = 0;; ++attempt) {
    const std::uint32_t n = num_chunks_.load(std::memory_order_acquire);
    // Visit dynamic chunks starting from a seed-dependent position, the
    // moral equivalent of SlabAlloc hashing resident warps to super blocks.
    for (std::uint32_t probe = 0; probe < n; ++probe) {
      const std::uint32_t ci =
          static_cast<std::uint32_t>((util::mix64(seed) + probe) % n);
      Chunk* chunk = chunk_at(ci);
      if (chunk == nullptr || !chunk->dynamic) continue;
      if (chunk->free_count.load(std::memory_order_relaxed) == 0) continue;
      const SlabHandle handle = claim_in_chunk(chunk, ci, fill_word);
      if (handle != kNullSlab) return handle;
    }
    // No dynamic chunk had space: grow. Only one grower at a time; others
    // retry and find the fresh chunk. Slabs parked in other threads' free
    // caches are invisible here (their bitmap bits stay set), so growth
    // can over-provision by at most kNumFreeCaches * kFreeCacheSlots slabs
    // (2048 slabs = 256 KiB) — the price of the lock-free fast path.
    {
      std::lock_guard<std::mutex> grow(grow_mutex_);
      bool has_space = false;
      std::uint32_t live = 0;
      const std::uint32_t m = num_chunks_.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < m; ++i) {
        Chunk* chunk = chunk_at(i);
        if (chunk == nullptr) continue;
        ++live;
        if (chunk->dynamic &&
            chunk->free_count.load(std::memory_order_relaxed) > 0) {
          has_space = true;
        }
      }
      if (!has_space) {
        // Exhaustion is a status here, not an exception: the chunk limit is
        // reached and every dynamic chunk is full (slabs parked in other
        // threads' free caches stay invisible — their bitmap bits are set).
        if (live >= chunk_limit_.load(std::memory_order_relaxed)) {
          return kNullSlab;
        }
        add_chunk(/*dynamic=*/true);
      }
    }
  }
}

SlabHandle SlabArena::allocate_avoiding(
    std::uint32_t fill_word, const std::vector<std::uint8_t>& excluded) {
  for (;;) {
    const std::uint32_t n = num_chunks_.load(std::memory_order_acquire);
    for (std::uint32_t ci = 0; ci < n; ++ci) {
      if (ci < excluded.size() && excluded[ci] != 0) continue;
      Chunk* chunk = chunk_at(ci);
      if (chunk == nullptr || !chunk->dynamic) continue;
      if (chunk->free_count.load(std::memory_order_relaxed) == 0) continue;
      const SlabHandle handle = claim_in_chunk(chunk, ci, fill_word);
      if (handle != kNullSlab) return handle;
    }
    // Every non-excluded dynamic chunk is full: grow (add_chunk throws
    // ArenaExhausted at the chunk limit). A fresh chunk may recycle an
    // index vacated by release_empty_chunks — never one in `excluded`,
    // which only ever flags chunks that still hold slabs to migrate.
    std::lock_guard<std::mutex> grow(grow_mutex_);
    bool has_space = false;
    const std::uint32_t m = num_chunks_.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < m; ++i) {
      if (i < excluded.size() && excluded[i] != 0) continue;
      Chunk* chunk = chunk_at(i);
      if (chunk && chunk->dynamic &&
          chunk->free_count.load(std::memory_order_relaxed) > 0) {
        has_space = true;
        break;
      }
    }
    if (!has_space) add_chunk(/*dynamic=*/true);
  }
}

void SlabArena::free(SlabHandle handle) { free_impl(handle, /*use_cache=*/true); }

void SlabArena::free_direct(SlabHandle handle) {
  free_impl(handle, /*use_cache=*/false);
}

void SlabArena::free_impl(SlabHandle handle, bool use_cache) {
  const std::uint32_t ci = handle >> kOffsetBits;
  const std::uint32_t slot = handle & kOffsetMask;
  Chunk* chunk = chunk_at(ci);
  assert(chunk != nullptr && chunk->dynamic && "free of a non-dynamic slab");
  if (chunk == nullptr || !chunk->dynamic) {
    // UB in waiting (a bulk slab "freed" here would be handed out again by
    // the bump allocator while a chain still points at it): raise a typed
    // error in release builds too while checks are on.
    if (checks_) {
      throw ArenaFault("SlabArena::free: handle " + std::to_string(handle) +
                       " does not address a dynamic slab");
    }
    return;
  }
  const std::uint64_t mask = std::uint64_t{1} << (slot % 64);
  // A clear bitmap bit means the slab is already free (double free of a
  // bitmap-freed handle): reject it before it can enter a cache and be
  // handed out twice. Cached double frees are caught by the scan in
  // cache_push (same thread) but not across threads.
  const std::uint64_t live =
      chunk->bitmap[slot / 64].load(std::memory_order_acquire);
  assert((live & mask) != 0 && "double free");
  if ((live & mask) == 0) {
    if (checks_) {
      throw ArenaFault("SlabArena::free: double free of handle " +
                       std::to_string(handle));
    }
    return;
  }
  // Fast path: park the handle in this thread's cache (bitmap bit stays
  // set, so the slab stays invisible to other allocators). Spill to the
  // shared bitmap when the cache is full or contended.
  if (use_cache && cache_push(handle)) {
    dynamic_slabs_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t prev =
      chunk->bitmap[slot / 64].fetch_and(~mask, std::memory_order_acq_rel);
  assert((prev & mask) != 0 && "double free");
  if (prev & mask) {
    chunk->free_count.fetch_add(1, std::memory_order_relaxed);
    dynamic_slabs_.fetch_sub(1, std::memory_order_relaxed);
    // Point the cold-scan cursor at the word that just gained a free bit so
    // the next allocation finds it without walking the filled prefix.
    chunk->scan_hint.store(slot / 64, std::memory_order_relaxed);
  } else if (checks_) {
    // Lost a race against another free of the same handle: the fetch_and is
    // the authoritative arbiter, so this caller is the duplicate.
    throw ArenaFault("SlabArena::free: concurrent double free of handle " +
                     std::to_string(handle));
  }
}

Slab& SlabArena::resolve(SlabHandle handle) const {
  Chunk* chunk = chunk_at(handle >> kOffsetBits);
  return chunk->slabs[handle & kOffsetMask];
}

bool SlabArena::is_dynamic(SlabHandle handle) const {
  Chunk* chunk = chunk_at(handle >> kOffsetBits);
  return chunk != nullptr && chunk->dynamic;
}

ArenaStats SlabArena::stats() const {
  ArenaStats s;
  s.bulk_slabs = bulk_slabs_.load(std::memory_order_relaxed);
  s.dynamic_slabs = dynamic_slabs_.load(std::memory_order_relaxed);
  s.reserved_slabs = static_cast<std::uint64_t>(live_chunks()) * kChunkSlabs;
  return s;
}

std::uint32_t SlabArena::live_chunks() const {
  const std::uint32_t n = num_chunks_.load(std::memory_order_acquire);
  std::uint32_t live = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (chunk_at(i) != nullptr) ++live;
  }
  return live;
}

void SlabArena::drain_free_caches() {
  for (std::uint32_t c = 0; c < kNumFreeCaches; ++c) {
    FreeCache& cache = free_caches_[c];
    // Quiescent contract: no allocator holds the lock for long; spin.
    while (!cache.try_lock()) {
    }
    for (std::uint32_t i = 0; i < cache.count; ++i) {
      const SlabHandle handle = cache.slots[i];
      Chunk* chunk = chunk_at(handle >> kOffsetBits);
      const std::uint32_t slot = handle & kOffsetMask;
      const std::uint64_t mask = std::uint64_t{1} << (slot % 64);
      chunk->bitmap[slot / 64].fetch_and(~mask, std::memory_order_acq_rel);
      chunk->free_count.fetch_add(1, std::memory_order_relaxed);
      chunk->scan_hint.store(slot / 64, std::memory_order_relaxed);
      // dynamic_slabs_ was already decremented when the handle entered the
      // cache — only the bitmap accounting moves here.
    }
    cache.count = 0;
    cache.unlock();
  }
}

std::uint32_t SlabArena::release_empty_chunks(std::uint32_t keep_free) {
  drain_free_caches();
  // Lock order: bulk before grow, matching allocate_contiguous.
  std::lock_guard<std::mutex> bulk(bulk_mutex_);
  std::lock_guard<std::mutex> grow(grow_mutex_);
  const std::uint32_t n = num_chunks_.load(std::memory_order_acquire);
  std::uint32_t kept = 0;
  std::uint32_t released = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    Chunk* chunk = chunk_at(i);
    if (chunk == nullptr) continue;
    if (chunk->dynamic) {
      if (chunk->free_count.load(std::memory_order_relaxed) != kChunkSlabs) {
        continue;
      }
      if (kept < keep_free) {
        ++kept;
        continue;
      }
    } else {
      // A bulk chunk releases when every slab it ever handed out came back
      // through free_contiguous; the current bump chunk stays (its tail is
      // the cheapest allocation there is). keep_free is a *dynamic*-chunk
      // reserve — bulk reuse goes through bulk_free_, not emptied chunks.
      if (i == bulk_chunk_ ||
          chunk->bulk_used.load(std::memory_order_relaxed) != 0) {
        continue;
      }
      // Purge the dying chunk's free-list ranges: their handles go invalid.
      const SlabHandle begin = i << kOffsetBits;
      bulk_free_.erase(bulk_free_.lower_bound(begin),
                       bulk_free_.lower_bound(begin + kChunkSlabs));
    }
    // The slot goes back to nullptr (add_chunk recycles it); num_chunks_
    // stays at its high-water mark so handle resolution never shrinks.
    chunks_[i].store(nullptr, std::memory_order_release);
    delete chunk;
    ++released;
  }
  return released;
}

std::vector<SlabArena::ChunkOccupancy> SlabArena::dynamic_chunk_occupancy()
    const {
  std::vector<ChunkOccupancy> out;
  const std::uint32_t n = num_chunks_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    Chunk* chunk = chunk_at(i);
    if (chunk == nullptr || !chunk->dynamic) continue;
    const std::uint32_t free_slabs =
        chunk->free_count.load(std::memory_order_relaxed);
    out.push_back({i, kChunkSlabs - free_slabs});
  }
  return out;
}

}  // namespace sg::memory
