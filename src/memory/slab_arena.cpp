#include "src/memory/slab_arena.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/util/fault_injection.hpp"
#include "src/util/prng.hpp"

namespace sg::memory {

namespace {
constexpr std::uint32_t kOffsetBits = 13;
constexpr std::uint32_t kOffsetMask = SlabArena::kChunkSlabs - 1;
constexpr std::uint32_t kBitmapWords = SlabArena::kChunkSlabs / 64;

/// Per-thread index used to pick a free-slab cache slot; assigned once per
/// thread, process-wide, so a thread maps to the same slot in every arena.
std::atomic<unsigned> g_thread_counter{0};

unsigned thread_cache_index() noexcept {
  thread_local const unsigned index =
      g_thread_counter.fetch_add(1, std::memory_order_relaxed);
  return index % SlabArena::kNumFreeCaches;
}
}  // namespace

struct SlabArena::Chunk {
  std::unique_ptr<Slab[]> slabs;
  bool dynamic = false;
  // Occupancy bitmap + free counter; only used by dynamic chunks.
  std::unique_ptr<std::atomic<std::uint64_t>[]> bitmap;
  std::atomic<std::uint32_t> free_count{0};
  /// Bitmap word where the last cold allocation found a free bit. Cold
  /// scans resume here instead of rescanning from a seed-derived start:
  /// once the low words fill up, later allocations skip them instead of
  /// re-walking a prefix of all-ones words every time. Racy-relaxed by
  /// design — a stale hint only costs extra scanning, never correctness
  /// (the scan still wraps the whole bitmap).
  std::atomic<std::uint32_t> scan_hint{0};

  explicit Chunk(bool is_dynamic)
      : slabs(new Slab[SlabArena::kChunkSlabs]), dynamic(is_dynamic) {
    if (dynamic) {
      bitmap.reset(new std::atomic<std::uint64_t>[kBitmapWords]);
      for (std::uint32_t w = 0; w < kBitmapWords; ++w) {
        bitmap[w].store(0, std::memory_order_relaxed);
      }
      free_count.store(SlabArena::kChunkSlabs, std::memory_order_relaxed);
    }
  }
};

SlabArena::SlabArena()
    : chunks_(new std::atomic<Chunk*>[kMaxChunks]),
      free_caches_(new FreeCache[kNumFreeCaches]) {
  for (std::uint32_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

bool SlabArena::cache_push(SlabHandle handle) {
  FreeCache& cache = free_caches_[thread_cache_index()];
  if (!cache.try_lock()) return false;
  // Same-thread double free of a cached handle: the bitmap bit is still
  // set, so only this scan can catch it before the slab is handed out
  // twice. 32 slots — cheap enough to keep on in release builds.
  if (checks_) {
    for (std::uint32_t i = 0; i < cache.count; ++i) {
      if (cache.slots[i] == handle) {
        cache.unlock();
        throw ArenaFault("SlabArena::free: double free (handle in cache)");
      }
    }
  }
  const bool pushed = cache.count < kFreeCacheSlots;
  if (pushed) cache.slots[cache.count++] = handle;
  cache.unlock();
  return pushed;
}

SlabHandle SlabArena::cache_pop() noexcept {
  FreeCache& cache = free_caches_[thread_cache_index()];
  if (!cache.try_lock()) return kNullSlab;
  const SlabHandle handle =
      cache.count > 0 ? cache.slots[--cache.count] : kNullSlab;
  cache.unlock();
  return handle;
}

SlabArena::~SlabArena() {
  const std::uint32_t n = num_chunks_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    delete chunks_[i].load(std::memory_order_relaxed);
  }
}

SlabArena::Chunk* SlabArena::chunk_at(std::uint32_t index) const {
  return chunks_[index].load(std::memory_order_acquire);
}

void SlabArena::set_chunk_limit(std::uint32_t max_chunks) noexcept {
  chunk_limit_.store(std::clamp(max_chunks, 1u, kMaxChunks),
                     std::memory_order_relaxed);
}

std::uint32_t SlabArena::add_chunk(bool dynamic) {
  const std::uint32_t index = num_chunks_.load(std::memory_order_acquire);
  if (index >= chunk_limit_.load(std::memory_order_relaxed)) {
    throw ArenaExhausted("SlabArena: chunk limit reached (" +
                         std::to_string(index) + " chunks of " +
                         std::to_string(kChunkSlabs) + " slabs)");
  }
  auto* chunk = new Chunk(dynamic);
  chunks_[index].store(chunk, std::memory_order_release);
  num_chunks_.store(index + 1, std::memory_order_release);
  return index;
}

SlabHandle SlabArena::allocate_contiguous(std::uint32_t count,
                                          std::uint32_t fill_word) {
  if (count == 0 || count > kChunkSlabs) {
    throw std::invalid_argument("allocate_contiguous: bad slab count");
  }
  if (SG_FAULT_FIRE(kArenaContiguous)) {
    throw ArenaExhausted("SlabArena: injected contiguous-allocation fault");
  }
  SlabHandle first;
  Chunk* chunk;
  {
    std::lock_guard<std::mutex> lock(bulk_mutex_);
    if (bulk_cursor_ + count > kChunkSlabs) {
      std::lock_guard<std::mutex> grow(grow_mutex_);
      bulk_chunk_ = add_chunk(/*dynamic=*/false);
      bulk_cursor_ = 0;
    }
    first = (bulk_chunk_ << kOffsetBits) | bulk_cursor_;
    bulk_cursor_ += count;
    chunk = chunk_at(bulk_chunk_);
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    Slab& slab = chunk->slabs[(first & kOffsetMask) + i];
    for (int w = 0; w < kWordsPerSlab; ++w) slab.words[w] = fill_word;
  }
  bulk_slabs_.fetch_add(count, std::memory_order_relaxed);
  return first;
}

SlabHandle SlabArena::allocate(std::uint32_t fill_word, std::uint32_t seed) {
  const SlabHandle handle = try_allocate(fill_word, seed);
  if (handle == kNullSlab) {
    throw ArenaExhausted("SlabArena: dynamic slab allocation failed (" +
                         std::to_string(num_chunks_.load(
                             std::memory_order_relaxed)) +
                         " chunks, limit " +
                         std::to_string(chunk_limit_.load(
                             std::memory_order_relaxed)) +
                         ")");
  }
  return handle;
}

SlabHandle SlabArena::try_allocate(std::uint32_t fill_word,
                                   std::uint32_t seed) {
  if (SG_FAULT_FIRE(kArenaAllocate)) return kNullSlab;
  // Fast path: a slab this thread recently freed. Its bitmap bit is still
  // set, so no other thread can hand it out; no shared state is touched.
  const SlabHandle cached = cache_pop();
  if (cached != kNullSlab) {
    Slab& slab = resolve(cached);
    for (int word = 0; word < kWordsPerSlab; ++word) slab.words[word] = fill_word;
    dynamic_slabs_.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  for (int attempt = 0;; ++attempt) {
    const std::uint32_t n = num_chunks_.load(std::memory_order_acquire);
    // Visit dynamic chunks starting from a seed-dependent position, the
    // moral equivalent of SlabAlloc hashing resident warps to super blocks.
    for (std::uint32_t probe = 0; probe < n; ++probe) {
      const std::uint32_t ci =
          static_cast<std::uint32_t>((util::mix64(seed) + probe) % n);
      Chunk* chunk = chunk_at(ci);
      if (chunk == nullptr || !chunk->dynamic) continue;
      if (chunk->free_count.load(std::memory_order_relaxed) == 0) continue;
      // Scan bitmap words from the chunk's hint cursor: resume where the
      // last cold allocation left off rather than rescanning the (likely
      // full) words before it.
      const std::uint32_t w0 =
          chunk->scan_hint.load(std::memory_order_relaxed) % kBitmapWords;
      for (std::uint32_t dw = 0; dw < kBitmapWords; ++dw) {
        const std::uint32_t w = (w0 + dw) % kBitmapWords;
        std::uint64_t bits = chunk->bitmap[w].load(std::memory_order_relaxed);
        while (bits != ~std::uint64_t{0}) {
          const int bit = std::countr_one(bits);
          const std::uint64_t mask = std::uint64_t{1} << bit;
          const std::uint64_t prev =
              chunk->bitmap[w].fetch_or(mask, std::memory_order_acq_rel);
          if ((prev & mask) == 0) {
            chunk->free_count.fetch_sub(1, std::memory_order_relaxed);
            chunk->scan_hint.store(w, std::memory_order_relaxed);
            const std::uint32_t slot = w * 64 + static_cast<std::uint32_t>(bit);
            Slab& slab = chunk->slabs[slot];
            for (int word = 0; word < kWordsPerSlab; ++word) {
              slab.words[word] = fill_word;
            }
            dynamic_slabs_.fetch_add(1, std::memory_order_relaxed);
            return (ci << kOffsetBits) | slot;
          }
          bits = prev | mask;
        }
      }
    }
    // No dynamic chunk had space: grow. Only one grower at a time; others
    // retry and find the fresh chunk. Slabs parked in other threads' free
    // caches are invisible here (their bitmap bits stay set), so growth
    // can over-provision by at most kNumFreeCaches * kFreeCacheSlots slabs
    // (2048 slabs = 256 KiB) — the price of the lock-free fast path.
    {
      std::lock_guard<std::mutex> grow(grow_mutex_);
      bool has_space = false;
      const std::uint32_t m = num_chunks_.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < m; ++i) {
        Chunk* chunk = chunk_at(i);
        if (chunk && chunk->dynamic &&
            chunk->free_count.load(std::memory_order_relaxed) > 0) {
          has_space = true;
          break;
        }
      }
      if (!has_space) {
        // Exhaustion is a status here, not an exception: the chunk limit is
        // reached and every dynamic chunk is full (slabs parked in other
        // threads' free caches stay invisible — their bitmap bits are set).
        if (m >= chunk_limit_.load(std::memory_order_relaxed)) {
          return kNullSlab;
        }
        add_chunk(/*dynamic=*/true);
      }
    }
  }
}

void SlabArena::free(SlabHandle handle) {
  const std::uint32_t ci = handle >> kOffsetBits;
  const std::uint32_t slot = handle & kOffsetMask;
  Chunk* chunk = chunk_at(ci);
  assert(chunk != nullptr && chunk->dynamic && "free of a non-dynamic slab");
  if (chunk == nullptr || !chunk->dynamic) {
    // UB in waiting (a bulk slab "freed" here would be handed out again by
    // the bump allocator while a chain still points at it): raise a typed
    // error in release builds too while checks are on.
    if (checks_) {
      throw ArenaFault("SlabArena::free: handle " + std::to_string(handle) +
                       " does not address a dynamic slab");
    }
    return;
  }
  const std::uint64_t mask = std::uint64_t{1} << (slot % 64);
  // A clear bitmap bit means the slab is already free (double free of a
  // bitmap-freed handle): reject it before it can enter a cache and be
  // handed out twice. Cached double frees are caught by the scan in
  // cache_push (same thread) but not across threads.
  const std::uint64_t live =
      chunk->bitmap[slot / 64].load(std::memory_order_acquire);
  assert((live & mask) != 0 && "double free");
  if ((live & mask) == 0) {
    if (checks_) {
      throw ArenaFault("SlabArena::free: double free of handle " +
                       std::to_string(handle));
    }
    return;
  }
  // Fast path: park the handle in this thread's cache (bitmap bit stays
  // set, so the slab stays invisible to other allocators). Spill to the
  // shared bitmap when the cache is full or contended.
  if (cache_push(handle)) {
    dynamic_slabs_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t prev =
      chunk->bitmap[slot / 64].fetch_and(~mask, std::memory_order_acq_rel);
  assert((prev & mask) != 0 && "double free");
  if (prev & mask) {
    chunk->free_count.fetch_add(1, std::memory_order_relaxed);
    dynamic_slabs_.fetch_sub(1, std::memory_order_relaxed);
    // Point the cold-scan cursor at the word that just gained a free bit so
    // the next allocation finds it without walking the filled prefix.
    chunk->scan_hint.store(slot / 64, std::memory_order_relaxed);
  } else if (checks_) {
    // Lost a race against another free of the same handle: the fetch_and is
    // the authoritative arbiter, so this caller is the duplicate.
    throw ArenaFault("SlabArena::free: concurrent double free of handle " +
                     std::to_string(handle));
  }
}

Slab& SlabArena::resolve(SlabHandle handle) const {
  Chunk* chunk = chunk_at(handle >> kOffsetBits);
  return chunk->slabs[handle & kOffsetMask];
}

bool SlabArena::is_dynamic(SlabHandle handle) const {
  Chunk* chunk = chunk_at(handle >> kOffsetBits);
  return chunk != nullptr && chunk->dynamic;
}

ArenaStats SlabArena::stats() const {
  ArenaStats s;
  s.bulk_slabs = bulk_slabs_.load(std::memory_order_relaxed);
  s.dynamic_slabs = dynamic_slabs_.load(std::memory_order_relaxed);
  s.reserved_slabs =
      static_cast<std::uint64_t>(num_chunks_.load(std::memory_order_relaxed)) *
      kChunkSlabs;
  return s;
}

}  // namespace sg::memory
