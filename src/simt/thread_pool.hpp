// Fixed thread pool that plays the role of the GPU's SM array: warps are
// distributed over worker threads, so warps on different threads are truly
// concurrent (the phase-concurrent races the paper's protocols must
// tolerate are real here, not simulated).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sg::simt {

class ThreadPool {
 public:
  /// `num_threads == 0` selects the environment default: SG_THREADS if set,
  /// otherwise max(2, hardware_concurrency) so concurrency is exercised
  /// even on single-core hosts.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Rebuilds the pool with `num_threads` workers (0 = the SG_THREADS /
  /// hardware default). Must not be called while a parallel_for is in
  /// flight; exists for the SG_THREADS sweep benches, which measure the
  /// same workload across pool widths in one process.
  void resize(unsigned num_threads);

  /// Runs fn(chunk_index) for chunk_index in [0, num_chunks), distributing
  /// chunks over the pool with a shared atomic cursor; blocks until all
  /// chunks complete. Exceptions from fn propagate (first one wins).
  void parallel_for(std::uint64_t num_chunks,
                    const std::function<void(std::uint64_t)>& fn);

  /// Process-wide pool shared by all grid launches.
  static ThreadPool& instance();

  static unsigned default_thread_count();

 private:
  struct Job;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;  // current job, guarded by mutex_
  bool shutdown_ = false;
};

}  // namespace sg::simt
