// Fixed thread pool that plays the role of the GPU's SM array: warps are
// distributed over worker threads, so warps on different threads are truly
// concurrent (the phase-concurrent races the paper's protocols must
// tolerate are real here, not simulated).
//
// The pool schedules CHUNKS from any number of in-flight JOBS: chunks are
// handed out round-robin across jobs, so a background job (the batch
// pipeline's stage of batch N+1) makes progress while a foreground
// parallel_for (apply of batch N) runs — the producer/consumer overlap the
// double-buffered batch engine is built on. A 1-thread pool runs everything
// inline on the submitting thread, which degenerates the pipeline to
// stage-then-apply with identical results.
//
// Jobs NEST: a chunk body may itself call submit / parallel_for on the
// same pool — chunk execution never holds the pool mutex, the nested job
// just joins the round-robin dispatch list, and the nesting thread helps
// run its own nested chunks before waiting. The staging passes of the
// mutation and query pipelines rely on this: each epoch is ONE submitted
// chunk that fans out across shards through a nested parallel_for (with a
// count/place barrier between the two grouping passes), so a whole epoch
// interleaves with the concurrently applying epoch as two peer jobs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace sg::simt {

class ThreadPool {
 public:
  /// `num_threads == 0` selects the environment default: SG_THREADS if set,
  /// otherwise hardware_concurrency (minimum 1 — on a single-core host the
  /// default pool runs inline; set SG_THREADS=2+ to force real
  /// concurrency there).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Width the pool was configured for (constructor / resize argument after
  /// the environment default resolves). Differs from size() for the inline
  /// pool: requested() == 1, size() == 0. Lets callers save and restore the
  /// width around a temporary resize.
  unsigned requested() const noexcept { return requested_; }

  /// Rebuilds the pool with `num_threads` workers (0 = the SG_THREADS /
  /// hardware default). Must not be called while any job is in flight;
  /// exists for the SG_THREADS sweep benches, which measure the same
  /// workload across pool widths in one process.
  void resize(unsigned num_threads);

  /// One scheduled job: `num_chunks` invocations of a chunk function,
  /// claimed from a shared atomic cursor by however many threads join in.
  struct Job;
  using JobHandle = std::shared_ptr<Job>;

  /// Enqueues fn(chunk_index) for chunk_index in [0, num_chunks) WITHOUT
  /// waiting: workers interleave its chunks with any concurrently running
  /// parallel_for (round-robin across jobs). On a pool with no workers the
  /// job runs inline, to completion, before submit returns — the degenerate
  /// (serial) pipeline. Exceptions are captured and rethrown by wait().
  JobHandle submit(std::uint64_t num_chunks, std::function<void(std::uint64_t)> fn);

  /// Blocks until `job` has completed every chunk; the calling thread helps
  /// run remaining chunks rather than idling. Rethrows the job's first
  /// exception. Idempotent.
  void wait(const JobHandle& job);

  /// Blocks until EVERY job in `jobs` has completed, helping run remaining
  /// chunks of each (the phase scheduler's query fence: all batches of a
  /// query phase must finish before a mutation phase may open). Waits out
  /// every job even when one throws; the first exception is rethrown after
  /// the last job finishes, so no job is ever left in flight behind an
  /// unwinding caller. Null handles are skipped.
  void wait_all(std::span<const JobHandle> jobs);

  /// Runs fn(chunk_index) for chunk_index in [0, num_chunks), distributing
  /// chunks over the pool with a shared atomic cursor; blocks until all
  /// chunks complete. Exceptions from fn propagate (first one wins).
  /// Equivalent to submit + wait, minus the std::function copy.
  void parallel_for(std::uint64_t num_chunks,
                    const std::function<void(std::uint64_t)>& fn);

  /// Process-wide pool shared by all grid launches.
  static ThreadPool& instance();

  static unsigned default_thread_count();

 private:
  void worker_loop();
  /// Next job with unclaimed chunks, rotating fairly across jobs; prunes
  /// exhausted jobs from the dispatch list. Caller holds mutex_.
  JobHandle pick_job_locked();
  void finish_job(const JobHandle& job);

  std::vector<std::thread> workers_;
  unsigned requested_ = 1;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<JobHandle> jobs_;  ///< jobs with (potentially) unclaimed chunks
  std::size_t round_robin_ = 0;
  bool shutdown_ = false;
};

}  // namespace sg::simt
