#include "src/simt/grid.hpp"

namespace sg::simt {

namespace {

WarpId make_warp_id(std::uint32_t warp, std::uint64_t num_items) {
  WarpId id;
  id.warp = warp;
  id.first_item = static_cast<std::uint64_t>(warp) * kWarpSize;
  const std::uint64_t remaining =
      num_items > id.first_item ? num_items - id.first_item : 0;
  id.active = lanemask_below(
      remaining >= kWarpSize ? kWarpSize : static_cast<int>(remaining));
  return id;
}

}  // namespace

void launch(std::uint64_t num_items, const WarpKernel& kernel,
            const LaunchConfig& config) {
  if (num_items == 0) return;
  const std::uint32_t num_warps = warps_for(num_items);
  if (config.serial) {
    for (std::uint32_t w = 0; w < num_warps; ++w) kernel(make_warp_id(w, num_items));
    return;
  }
  std::uint32_t per_chunk = config.warps_per_chunk;
  if (per_chunk == 0) {
    // Auto: ~4 chunks per worker caps scheduling overhead at a handful of
    // pool hand-offs per launch yet leaves slack for uneven warps; the cap
    // keeps huge launches from degenerating into one chunk per worker with
    // no rebalancing at the tail.
    // A 1-thread pool reports size 0 (it runs jobs inline).
    const std::uint32_t workers =
        ThreadPool::instance().size() > 0 ? ThreadPool::instance().size() : 1u;
    per_chunk = num_warps / (workers * 4u);
    if (per_chunk == 0) per_chunk = 1;
    if (per_chunk > 256u) per_chunk = 256u;
  }
  const std::uint64_t num_chunks = (num_warps + per_chunk - 1) / per_chunk;
  ThreadPool::instance().parallel_for(num_chunks, [&](std::uint64_t chunk) {
    const std::uint32_t first = static_cast<std::uint32_t>(chunk) * per_chunk;
    const std::uint32_t last =
        first + per_chunk < num_warps ? first + per_chunk : num_warps;
    for (std::uint32_t w = first; w < last; ++w) kernel(make_warp_id(w, num_items));
  });
}

void launch_warps(std::uint32_t num_warps, const WarpKernel& kernel,
                  const LaunchConfig& config) {
  if (num_warps == 0) return;
  if (config.serial) {
    for (std::uint32_t w = 0; w < num_warps; ++w) {
      WarpId id;
      id.warp = w;
      id.first_item = static_cast<std::uint64_t>(w) * kWarpSize;
      kernel(id);
    }
    return;
  }
  ThreadPool::instance().parallel_for(num_warps, [&](std::uint64_t w) {
    WarpId id;
    id.warp = static_cast<std::uint32_t>(w);
    id.first_item = w * kWarpSize;
    kernel(id);
  });
}

}  // namespace sg::simt
