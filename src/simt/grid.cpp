#include "src/simt/grid.hpp"

#include <vector>

namespace sg::simt {

namespace {

WarpId make_warp_id(std::uint32_t warp, std::uint64_t num_items) {
  WarpId id;
  id.warp = warp;
  id.first_item = static_cast<std::uint64_t>(warp) * kWarpSize;
  const std::uint64_t remaining =
      num_items > id.first_item ? num_items - id.first_item : 0;
  id.active = lanemask_below(
      remaining >= kWarpSize ? kWarpSize : static_cast<int>(remaining));
  return id;
}

}  // namespace

void launch(std::uint64_t num_items, const WarpKernel& kernel,
            const LaunchConfig& config) {
  if (num_items == 0) return;
  const std::uint32_t num_warps = warps_for(num_items);
  if (config.serial) {
    for (std::uint32_t w = 0; w < num_warps; ++w) kernel(make_warp_id(w, num_items));
    return;
  }
  std::uint32_t per_chunk = config.warps_per_chunk;
  if (per_chunk == 0) {
    // Auto: ~4 chunks per worker caps scheduling overhead at a handful of
    // pool hand-offs per launch yet leaves slack for uneven warps; the cap
    // keeps huge launches from degenerating into one chunk per worker with
    // no rebalancing at the tail.
    // A 1-thread pool reports size 0 (it runs jobs inline).
    const std::uint32_t workers =
        ThreadPool::instance().size() > 0 ? ThreadPool::instance().size() : 1u;
    const std::uint32_t per_worker =
        config.chunks_per_worker != 0 ? config.chunks_per_worker : 4u;
    per_chunk = num_warps / (workers * per_worker);
    if (per_chunk == 0) per_chunk = 1;
    if (per_chunk > 256u) per_chunk = 256u;
  }
  const std::uint64_t num_chunks = (num_warps + per_chunk - 1) / per_chunk;
  ThreadPool::instance().parallel_for(num_chunks, [&](std::uint64_t chunk) {
    const std::uint32_t first = static_cast<std::uint32_t>(chunk) * per_chunk;
    const std::uint32_t last =
        first + per_chunk < num_warps ? first + per_chunk : num_warps;
    for (std::uint32_t w = first; w < last; ++w) kernel(make_warp_id(w, num_items));
  });
}

void launch_runs(std::span<const std::uint64_t> offsets,
                 const RunRangeKernel& kernel, const LaunchConfig& config) {
  if (offsets.size() < 2) return;
  const std::uint64_t num_runs = offsets.size() - 1;
  if (config.serial) {
    kernel(0, num_runs);
    return;
  }
  const std::uint64_t total_items = offsets.back() - offsets.front();
  const std::uint64_t workers =
      ThreadPool::instance().size() > 0 ? ThreadPool::instance().size() : 1u;
  // ~4 chunks per worker (as in launch); a chunk closes once it holds its
  // share of ITEMS, so a single skewed run fills a whole chunk while
  // singleton runs pack together.
  const std::uint64_t target_chunks =
      workers * (config.chunks_per_worker != 0 ? config.chunks_per_worker : 4u);
  const std::uint64_t items_per_chunk =
      total_items > target_chunks ? (total_items + target_chunks - 1) / target_chunks
                                  : total_items;
  std::vector<std::uint64_t> chunk_first;  // first run of each chunk
  chunk_first.reserve(target_chunks + 1);
  chunk_first.push_back(0);
  std::uint64_t chunk_start_item = offsets[0];
  for (std::uint64_t r = 1; r < num_runs; ++r) {
    if (offsets[r] - chunk_start_item >= items_per_chunk) {
      chunk_first.push_back(r);
      chunk_start_item = offsets[r];
    }
  }
  chunk_first.push_back(num_runs);
  ThreadPool::instance().parallel_for(
      chunk_first.size() - 1, [&](std::uint64_t c) {
        kernel(chunk_first[c], chunk_first[c + 1]);
      });
}

void launch_warps(std::uint32_t num_warps, const WarpKernel& kernel,
                  const LaunchConfig& config) {
  if (num_warps == 0) return;
  if (config.serial) {
    for (std::uint32_t w = 0; w < num_warps; ++w) {
      WarpId id;
      id.warp = w;
      id.first_item = static_cast<std::uint64_t>(w) * kWarpSize;
      kernel(id);
    }
    return;
  }
  ThreadPool::instance().parallel_for(num_warps, [&](std::uint64_t w) {
    WarpId id;
    id.warp = static_cast<std::uint32_t>(w);
    id.first_item = w * kWarpSize;
    kernel(id);
  });
}

}  // namespace sg::simt
