// Device-atomic substitutes. CUDA's atomicCAS/atomicAdd/atomicExch on
// global memory words become std::atomic_ref operations on plain arrays,
// so the slab protocols (slot claiming, tombstoning, next-pointer splicing,
// work-queue counters) run under real multi-thread contention.
#pragma once

#include <atomic>
#include <cstdint>

// ThreadSanitizer detection (GCC defines __SANITIZE_THREAD__; clang
// exposes it through __has_feature).
#if defined(__SANITIZE_THREAD__)
#define SG_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SG_TSAN 1
#endif
#endif
#ifndef SG_TSAN
#define SG_TSAN 0
#endif

namespace sg::simt {

template <typename T>
inline T atomic_load(const T& word) noexcept {
  return std::atomic_ref<const T>(word).load(std::memory_order_acquire);
}

/// Word load/store for the BY-DESIGN racy accesses of the phase-concurrent
/// slab protocols (probe scans, slab snapshots, liveness flags, bucket
/// counts): the protocols tolerate stale word values — a probe that misses
/// a concurrent CAS claim simply reports the pre-claim state and the
/// caller re-examines, exactly as the GPU's relaxed global loads behave.
/// Normal builds use plain accesses so the probe loops keep
/// auto-vectorizing; ThreadSanitizer builds compile them as relaxed
/// atomics, so the TSan CI job verifies every OTHER access while these
/// sites are exonerated by annotation instead of a suppression file.
template <typename T>
inline T racy_load(const T& word) noexcept {
#if SG_TSAN
  return std::atomic_ref<const T>(word).load(std::memory_order_relaxed);
#else
  return word;
#endif
}

template <typename T>
inline void racy_store(T& word, T value) noexcept {
#if SG_TSAN
  std::atomic_ref<T>(word).store(value, std::memory_order_relaxed);
#else
  word = value;
#endif
}

template <typename T>
inline void atomic_store(T& word, T value) noexcept {
  std::atomic_ref<T>(word).store(value, std::memory_order_release);
}

/// CUDA atomicCAS semantics: returns the value observed before the
/// operation; the swap succeeded iff the return value equals `expected`.
template <typename T>
inline T atomic_cas(T& word, T expected, T desired) noexcept {
  std::atomic_ref<T> ref(word);
  ref.compare_exchange_strong(expected, desired, std::memory_order_acq_rel,
                              std::memory_order_acquire);
  return expected;  // updated to the observed value on failure
}

template <typename T>
inline T atomic_add(T& word, T delta) noexcept {
  return std::atomic_ref<T>(word).fetch_add(delta, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_sub(T& word, T delta) noexcept {
  return std::atomic_ref<T>(word).fetch_sub(delta, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_exch(T& word, T value) noexcept {
  return std::atomic_ref<T>(word).exchange(value, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_or(T& word, T bits) noexcept {
  return std::atomic_ref<T>(word).fetch_or(bits, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_and(T& word, T bits) noexcept {
  return std::atomic_ref<T>(word).fetch_and(bits, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_min(T& word, T value) noexcept {
  std::atomic_ref<T> ref(word);
  T cur = ref.load(std::memory_order_acquire);
  while (value < cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
  }
  return cur;
}

template <typename T>
inline T atomic_max(T& word, T value) noexcept {
  std::atomic_ref<T> ref(word);
  T cur = ref.load(std::memory_order_acquire);
  while (value > cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
  }
  return cur;
}

}  // namespace sg::simt
