// Device-atomic substitutes. CUDA's atomicCAS/atomicAdd/atomicExch on
// global memory words become std::atomic_ref operations on plain arrays,
// so the slab protocols (slot claiming, tombstoning, next-pointer splicing,
// work-queue counters) run under real multi-thread contention.
#pragma once

#include <atomic>
#include <cstdint>

namespace sg::simt {

template <typename T>
inline T atomic_load(const T& word) noexcept {
  return std::atomic_ref<const T>(word).load(std::memory_order_acquire);
}

template <typename T>
inline void atomic_store(T& word, T value) noexcept {
  std::atomic_ref<T>(word).store(value, std::memory_order_release);
}

/// CUDA atomicCAS semantics: returns the value observed before the
/// operation; the swap succeeded iff the return value equals `expected`.
template <typename T>
inline T atomic_cas(T& word, T expected, T desired) noexcept {
  std::atomic_ref<T> ref(word);
  ref.compare_exchange_strong(expected, desired, std::memory_order_acq_rel,
                              std::memory_order_acquire);
  return expected;  // updated to the observed value on failure
}

template <typename T>
inline T atomic_add(T& word, T delta) noexcept {
  return std::atomic_ref<T>(word).fetch_add(delta, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_sub(T& word, T delta) noexcept {
  return std::atomic_ref<T>(word).fetch_sub(delta, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_exch(T& word, T value) noexcept {
  return std::atomic_ref<T>(word).exchange(value, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_or(T& word, T bits) noexcept {
  return std::atomic_ref<T>(word).fetch_or(bits, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_and(T& word, T bits) noexcept {
  return std::atomic_ref<T>(word).fetch_and(bits, std::memory_order_acq_rel);
}

template <typename T>
inline T atomic_min(T& word, T value) noexcept {
  std::atomic_ref<T> ref(word);
  T cur = ref.load(std::memory_order_acquire);
  while (value < cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
  }
  return cur;
}

template <typename T>
inline T atomic_max(T& word, T value) noexcept {
  std::atomic_ref<T> ref(word);
  T cur = ref.load(std::memory_order_acquire);
  while (value > cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
  }
  return cur;
}

}  // namespace sg::simt
