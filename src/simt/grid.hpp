// Grid launch: the CUDA kernel-launch substitute. A launch over N work
// items creates ceil(N/32) warps; each warp runs the user's warp-kernel
// with a WarpId describing which items its lanes carry. Warps are batched
// into chunks to amortize scheduling overhead and dispatched onto the
// shared ThreadPool.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "src/simt/thread_pool.hpp"
#include "src/simt/warp.hpp"

namespace sg::simt {

/// A warp kernel receives the identity of the warp it runs as; per-lane
/// work-item indices come from WarpId::item(lane).
using WarpKernel = std::function<void(const WarpId&)>;

struct LaunchConfig {
  /// Warps per scheduling chunk. 0 (the default) derives a chunk size from
  /// the launch width and the pool size — a few chunks per worker — so
  /// small launches are not drowned in per-task scheduling overhead while
  /// large irregular launches still balance. Set explicitly to trade
  /// overhead (larger) against balance for irregular kernels (smaller,
  /// Algorithm 2).
  std::uint32_t warps_per_chunk = 0;
  /// Target scheduling chunks per pool worker for the auto heuristics
  /// (launch and launch_runs). 0 = the default of 4. The batch pipeline
  /// raises this while a staging job shares the pool: more, smaller chunks
  /// let the round-robin scheduler interleave the two jobs finely instead
  /// of parking whole workers on one of them.
  std::uint32_t chunks_per_worker = 0;
  /// Run serially on the calling thread (deterministic debugging).
  bool serial = false;
};

/// Launch a warp-kernel over `num_items` work items (one item per lane).
void launch(std::uint64_t num_items, const WarpKernel& kernel,
            const LaunchConfig& config = {});

/// Launch exactly `num_warps` full warps; used by persistent-kernel-style
/// code (Algorithm 2's vertex-deletion queue) where lanes pull work from a
/// shared queue rather than being preassigned items.
void launch_warps(std::uint32_t num_warps, const WarpKernel& kernel,
                  const LaunchConfig& config = {});

/// Kernel over a contiguous range of runs [first, last) — see launch_runs.
using RunRangeKernel = std::function<void(std::uint64_t first, std::uint64_t last)>;

/// Launch over irregular segments ("runs"): run r owns items
/// [offsets[r], offsets[r+1]) of some staged array (offsets has
/// num_runs + 1 entries, ascending). Scheduling chunks are contiguous run
/// ranges balanced by total ITEM count, not run count, so one worker ends
/// up with a few giant runs while another takes thousands of singletons —
/// load balance follows bucket skew instead of fighting it. Runs are never
/// split: a run is the unit of exclusive bucket ownership in the batch
/// engine.
void launch_runs(std::span<const std::uint64_t> offsets,
                 const RunRangeKernel& kernel, const LaunchConfig& config = {});

/// Number of warps needed for `num_items` items.
constexpr std::uint32_t warps_for(std::uint64_t num_items) noexcept {
  return static_cast<std::uint32_t>((num_items + kWarpSize - 1) / kWarpSize);
}

}  // namespace sg::simt
