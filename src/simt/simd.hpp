// SIMD slab probing — the CPU analog of the GPU's warp-parallel compare.
//
// On the GPU, one slab operation is a single warp-wide step: all 32 lanes
// load one word of a 128-byte slab, compare against the query, and a
// ballot + ffs pick the answer. The host equivalent is a vector compare
// over the 32 words of a slab producing the same 32-bit lane mask ballot()
// yields, consumed with the same ffs()/popc() idiom.
//
// Two backends produce identical masks:
//   * AVX2 — four 256-bit compares per probe (compiled when the build
//     targets AVX2, e.g. -march=native on any post-2013 x86).
//   * portable — a plain fixed-trip loop the compiler auto-vectorizes
//     (SSE2/NEON) or unrolls; also the reference for differential tests.
//
// The backend is chosen at runtime: AVX2 when compiled in, unless
// SG_PORTABLE_PROBE=1 is set in the environment or set_probe_backend()
// forces the portable path (the differential test drives both in one
// process).
//
// Reads are plain (non-atomic) vector loads, exactly like the GPU's
// non-atomic warp-wide slab read: safe under the paper's phase-concurrent
// model, where a stale word is resolved by the CAS that claims a slot.
// The portable loops read through simt::racy_load — a plain load in normal
// builds (the loops must keep auto-vectorizing), a relaxed atomic under
// ThreadSanitizer so the TSan CI job sees the by-design races as
// annotated rather than silencing them with a suppression file.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/memory/slab_arena.hpp"
#include "src/simt/atomics.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace sg::simt {

/// Lane masks of one slab-wide compare: bit w is set when word w of the
/// slab equals the key / EMPTY sentinel / TOMBSTONE sentinel. The layout
/// matches ballot(): consume with ffs() (1-based) or std::countr_zero.
struct SlabProbe {
  std::uint32_t match = 0;
  std::uint32_t empty = 0;
  std::uint32_t tombstone = 0;
};

enum class ProbeBackend : int { kSimd = 0, kPortable = 1 };

namespace detail {

/// -1 = not yet resolved from the environment.
inline std::atomic<int> g_probe_backend{-1};

inline int resolve_probe_backend() noexcept {
  const char* env = std::getenv("SG_PORTABLE_PROBE");
  const int backend = (env != nullptr && env[0] != '\0' && env[0] != '0')
                          ? static_cast<int>(ProbeBackend::kPortable)
                          : static_cast<int>(ProbeBackend::kSimd);
  g_probe_backend.store(backend, std::memory_order_relaxed);
  return backend;
}

}  // namespace detail

/// Force a backend (tests); kSimd silently degrades to portable when AVX2
/// was not compiled in.
inline void set_probe_backend(ProbeBackend backend) noexcept {
  detail::g_probe_backend.store(static_cast<int>(backend),
                                std::memory_order_relaxed);
}

/// True when probes will execute the AVX2 path.
inline bool probe_uses_simd() noexcept {
#if defined(__AVX2__)
  int backend = detail::g_probe_backend.load(std::memory_order_relaxed);
  if (backend < 0) backend = detail::resolve_probe_backend();
  return backend == static_cast<int>(ProbeBackend::kSimd);
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Portable backend: fixed-trip loops over the 32 slab words. With any
// vectorizing compiler each becomes a handful of SIMD compares; without,
// it is still branch-free.
// ---------------------------------------------------------------------------

inline std::uint32_t match_mask_portable(const std::uint32_t* words,
                                         std::uint32_t key) noexcept {
  std::uint32_t mask = 0;
  for (int w = 0; w < memory::kWordsPerSlab; ++w) {
    mask |= static_cast<std::uint32_t>(racy_load(words[w]) == key) << w;
  }
  return mask;
}

inline SlabProbe probe_slab_portable(const std::uint32_t* words,
                                     std::uint32_t key, std::uint32_t empty_key,
                                     std::uint32_t tombstone_key) noexcept {
  SlabProbe p;
  for (int w = 0; w < memory::kWordsPerSlab; ++w) {
    const std::uint32_t v = racy_load(words[w]);
    p.match |= static_cast<std::uint32_t>(v == key) << w;
    p.empty |= static_cast<std::uint32_t>(v == empty_key) << w;
    p.tombstone |= static_cast<std::uint32_t>(v == tombstone_key) << w;
  }
  return p;
}

// ---------------------------------------------------------------------------
// AVX2 backend: 128 bytes = four 256-bit lanes; movemask packs each compare
// into 8 mask bits, mirroring __ballot_sync's bit-per-lane result.
// ---------------------------------------------------------------------------

#if defined(__AVX2__)

inline std::uint32_t match_mask_avx2(const std::uint32_t* words,
                                     std::uint32_t key) noexcept {
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(key));
  std::uint32_t mask = 0;
  for (int i = 0; i < 4; ++i) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i * 8));
    const int bits = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, needle)));
    mask |= static_cast<std::uint32_t>(bits) << (i * 8);
  }
  return mask;
}

inline SlabProbe probe_slab_avx2(const std::uint32_t* words, std::uint32_t key,
                                 std::uint32_t empty_key,
                                 std::uint32_t tombstone_key) noexcept {
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(key));
  const __m256i empty = _mm256_set1_epi32(static_cast<int>(empty_key));
  const __m256i tomb = _mm256_set1_epi32(static_cast<int>(tombstone_key));
  SlabProbe p;
  for (int i = 0; i < 4; ++i) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i * 8));
    const int m = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, needle)));
    const int e = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, empty)));
    const int t = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, tomb)));
    p.match |= static_cast<std::uint32_t>(m) << (i * 8);
    p.empty |= static_cast<std::uint32_t>(e) << (i * 8);
    p.tombstone |= static_cast<std::uint32_t>(t) << (i * 8);
  }
  return p;
}

#endif  // __AVX2__

// ---------------------------------------------------------------------------
// Dispatching entry points used by the slabhash hot paths.
// ---------------------------------------------------------------------------

/// Bit w set iff words[w] == key.
inline std::uint32_t match_mask(const std::uint32_t* words,
                                std::uint32_t key) noexcept {
#if defined(__AVX2__)
  if (probe_uses_simd()) return match_mask_avx2(words, key);
#endif
  return match_mask_portable(words, key);
}

/// One probe computes all three masks in a single pass over the slab.
inline SlabProbe probe_slab(const std::uint32_t* words, std::uint32_t key,
                            std::uint32_t empty_key,
                            std::uint32_t tombstone_key) noexcept {
#if defined(__AVX2__)
  if (probe_uses_simd()) {
    return probe_slab_avx2(words, key, empty_key, tombstone_key);
  }
#endif
  return probe_slab_portable(words, key, empty_key, tombstone_key);
}

/// Bit w set iff words[w] == key (convenience over probe_slab for callers
/// that only need one sentinel).
inline std::uint32_t empty_mask(const std::uint32_t* words,
                                std::uint32_t empty_key) noexcept {
  return match_mask(words, empty_key);
}

inline std::uint32_t tombstone_mask(const std::uint32_t* words,
                                    std::uint32_t tombstone_key) noexcept {
  return match_mask(words, tombstone_key);
}

/// Mask with every bit below bit `w` set (w may be >= 32, e.g. the result
/// of countr_zero on an empty mask). Companion to the probe masks: `live
/// slots = keymask & ~tombstones & bits_below(first_empty)`.
constexpr std::uint32_t bits_below(int w) noexcept {
  return w >= 32 ? 0xFFFFFFFFu : (1u << w) - 1u;
}

/// Relaxed 128-byte slab snapshot: plain (non-atomic) vector loads into a
/// local copy, the host stand-in for a warp's one-shot coalesced slab read.
/// Used on multi-slab bucket chains so the next-pointer and the probed
/// words come from one read of the slab; single-slab buckets probe the
/// shared words directly and skip the copy.
inline void snapshot_slab(const memory::Slab& slab,
                          std::uint32_t* out) noexcept {
#if SG_TSAN
  // memcpy is TSan-intercepted; copy word-wise through the annotation.
  for (int w = 0; w < memory::kWordsPerSlab; ++w) {
    out[w] = racy_load(slab.words[w]);
  }
#else
  std::memcpy(out, slab.words, sizeof(slab.words));
#endif
}

}  // namespace sg::simt
