// SIMT warp model — the CPU substitute for CUDA's warp-level execution.
//
// The paper's algorithms (edge insertion, Algorithm 1; vertex deletion,
// Algorithm 2; every SlabHash operation) are written in the Warp
// Cooperative Work Sharing (WCWS) style: each of the 32 lanes carries an
// independent task, and the warp repeatedly elects one lane's task (ballot
// + find-first-set), broadcasts it (shuffle), and executes it cooperatively
// with all 32 lanes touching consecutive words of a 128-byte slab.
//
// On the host we model a warp as 32 lanes evaluated in lockstep: a
// "per-lane value" is a LaneArray<T> (one slot per lane), and the CUDA
// intrinsics map to:
//   __ballot_sync  -> ballot(lane predicates)      (uint32 mask)
//   __shfl_sync    -> shuffle(lane values, src)    (broadcast)
//   __popc         -> popc(mask)
//   __ffs          -> ffs(mask)
// Divergence inside warp-cooperative code is expressed with explicit
// active masks, exactly as the CUDA code does with __activemask().
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace sg::simt {

inline constexpr int kWarpSize = 32;
inline constexpr std::uint32_t kFullMask = 0xFFFFFFFFu;

/// One value per lane of a warp.
template <typename T>
using LaneArray = std::array<T, kWarpSize>;

/// Mask with bit i set for every lane i < n (n may be 32).
constexpr std::uint32_t lanemask_below(int n) noexcept {
  return n >= kWarpSize ? kFullMask : ((1u << n) - 1u);
}

/// __ballot_sync: bit i of the result is lane i's predicate, restricted to
/// the active mask (inactive lanes contribute 0).
constexpr std::uint32_t ballot(const LaneArray<bool>& pred,
                               std::uint32_t active = kFullMask) noexcept {
  std::uint32_t mask = 0;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if ((active >> lane) & 1u) mask |= static_cast<std::uint32_t>(pred[lane]) << lane;
  }
  return mask;
}

/// __shfl_sync broadcast: every lane reads src_lane's value.
template <typename T>
constexpr T shuffle(const LaneArray<T>& values, int src_lane) noexcept {
  return values[src_lane & (kWarpSize - 1)];
}

/// __popc.
constexpr int popc(std::uint32_t mask) noexcept { return std::popcount(mask); }

/// __ffs: 1-based index of the least significant set bit; 0 if mask == 0.
constexpr int ffs(std::uint32_t mask) noexcept {
  return mask == 0 ? 0 : std::countr_zero(mask) + 1;
}

/// Software-prefetch hint (read intent, moderate temporal locality) — the
/// CPU stand-in for the GPU hiding a warp's global-memory latency by
/// switching to another resident warp.
inline void prefetch(const void* address) noexcept {
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/2);
}

/// Software pipeline over `n` items: issue prefetch(i + depth) before
/// process(i), so the memory latency of item i+depth overlaps the compute
/// of item i. This is the warp-level pipelining of the batch engine: while
/// the SIMD compare on the current run's slab resolves, the next run's head
/// slab is already on its way up the cache hierarchy (docs/PERF.md).
template <typename PrefetchFn, typename ProcessFn>
inline void pipeline(std::uint64_t n, std::uint64_t depth, PrefetchFn&& prefetch_item,
                     ProcessFn&& process_item) {
  const std::uint64_t warmup = depth < n ? depth : n;
  for (std::uint64_t i = 0; i < warmup; ++i) prefetch_item(i);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i + depth < n) prefetch_item(i + depth);
    process_item(i);
  }
}

/// Identity of one warp inside a grid launch; `active` has a bit set for
/// every lane that carries a real work item (the last warp of a launch may
/// be partially populated).
struct WarpId {
  std::uint32_t warp = 0;          ///< warp index within the grid
  std::uint64_t first_item = 0;    ///< global index of lane 0's work item
  std::uint32_t active = kFullMask;

  /// Global work-item index carried by `lane`.
  std::uint64_t item(int lane) const noexcept {
    return first_item + static_cast<std::uint64_t>(lane);
  }
  bool lane_active(int lane) const noexcept { return (active >> lane) & 1u; }
  int active_count() const noexcept { return popc(active); }
};

}  // namespace sg::simt
