#include "src/simt/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace sg::simt {

struct ThreadPool::Job {
  std::uint64_t num_chunks = 0;
  const std::function<void(std::uint64_t)>* fn = nullptr;
  std::atomic<std::uint64_t> cursor{0};
  std::atomic<unsigned> workers_active{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  void run_chunks() {
    std::uint64_t i;
    while ((i = cursor.fetch_add(1, std::memory_order_relaxed)) < num_chunks) {
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        // Drain remaining chunks so the job terminates promptly.
        cursor.store(num_chunks, std::memory_order_relaxed);
      }
    }
  }
};

unsigned ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("SG_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = default_thread_count();
  // A 1-thread pool runs jobs inline on the submitting thread: on
  // single-core hosts cross-thread handoff only adds scheduler stalls.
  if (num_threads <= 1) return;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::resize(unsigned num_threads) {
  if (num_threads == 0) num_threads = default_thread_count();
  if (num_threads == size() || (num_threads <= 1 && workers_.empty())) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  shutdown_ = false;
  if (num_threads <= 1) return;  // inline mode, as in the constructor
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [this] { return shutdown_ || job_ != nullptr; });
      if (shutdown_) return;
      job = job_;
      job->workers_active.fetch_add(1, std::memory_order_relaxed);
    }
    job->run_chunks();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job == job_ &&
          job->cursor.load(std::memory_order_relaxed) >= job->num_chunks) {
        // This job has no more work to hand out; wake the submitter, which
        // is also draining chunks and will observe completion.
      }
      job->workers_active.fetch_sub(1, std::memory_order_relaxed);
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::uint64_t num_chunks,
                              const std::function<void(std::uint64_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty()) {
    for (std::uint64_t i = 0; i < num_chunks; ++i) fn(i);
    return;
  }
  Job job;
  job.num_chunks = num_chunks;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
  }
  cv_work_.notify_all();
  // The submitting thread participates too (it would otherwise idle).
  job.run_chunks();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&job] {
      return job.workers_active.load(std::memory_order_relaxed) == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sg::simt
