#include "src/simt/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace sg::simt {

struct ThreadPool::Job {
  std::uint64_t num_chunks = 0;
  /// submit() owns its function; parallel_for points at the caller's.
  std::function<void(std::uint64_t)> owned_fn;
  const std::function<void(std::uint64_t)>* fn = nullptr;
  std::atomic<std::uint64_t> cursor{0};
  /// Threads currently inside run_chunks for this job; guarded by the
  /// pool's mutex_. Completion is (cursor exhausted && active == 0).
  unsigned active = 0;
  std::exception_ptr error;
  std::mutex error_mutex;

  bool exhausted() const noexcept {
    return cursor.load(std::memory_order_relaxed) >= num_chunks;
  }

  void run_chunks() {
    std::uint64_t i;
    while ((i = cursor.fetch_add(1, std::memory_order_relaxed)) < num_chunks) {
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        // Drain remaining chunks so the job terminates promptly.
        cursor.store(num_chunks, std::memory_order_relaxed);
      }
    }
  }
};

unsigned ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("SG_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = default_thread_count();
  requested_ = num_threads;
  // A 1-thread pool runs jobs inline on the submitting thread: on
  // single-core hosts cross-thread handoff only adds scheduler stalls.
  if (num_threads <= 1) return;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::resize(unsigned num_threads) {
  if (num_threads == 0) num_threads = default_thread_count();
  requested_ = num_threads;
  if (num_threads == size() || (num_threads <= 1 && workers_.empty())) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  jobs_.clear();  // anything left is exhausted; drop the stale handles
  shutdown_ = false;
  if (num_threads <= 1) return;  // inline mode, as in the constructor
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::JobHandle ThreadPool::pick_job_locked() {
  while (!jobs_.empty()) {
    if (round_robin_ >= jobs_.size()) round_robin_ = 0;
    JobHandle job = jobs_[round_robin_];
    if (!job->exhausted()) {
      ++round_robin_;  // next worker starts on the next job: fairness
      return job;
    }
    jobs_.erase(jobs_.begin() +
                static_cast<std::ptrdiff_t>(round_robin_));
  }
  return nullptr;
}

void ThreadPool::worker_loop() {
  for (;;) {
    JobHandle job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [this] {
        if (shutdown_) return true;
        for (const JobHandle& j : jobs_) {
          if (!j->exhausted()) return true;
        }
        return false;
      });
      if (shutdown_) return;
      job = pick_job_locked();
      if (!job) continue;
      ++job->active;
    }
    job->run_chunks();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --job->active;
    }
    // The job is complete once its cursor is exhausted and the last helper
    // has left run_chunks; any waiter re-checks both under the mutex.
    cv_done_.notify_all();
  }
}

ThreadPool::JobHandle ThreadPool::submit(
    std::uint64_t num_chunks, std::function<void(std::uint64_t)> fn) {
  auto job = std::make_shared<Job>();
  job->num_chunks = num_chunks;
  job->owned_fn = std::move(fn);
  job->fn = &job->owned_fn;
  if (num_chunks == 0) return job;
  if (workers_.empty()) {
    job->run_chunks();  // inline pool: the degenerate (serial) pipeline
    return job;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  // A single-chunk job (e.g. one epoch's staging pass, which fans out again
  // through a nested parallel_for) needs exactly one claimant; waking the
  // whole pool for it just stampedes the mutex.
  if (num_chunks == 1) {
    cv_work_.notify_one();
  } else {
    cv_work_.notify_all();
  }
  return job;
}

void ThreadPool::finish_job(const JobHandle& job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&job] { return job->exhausted() && job->active == 0; });
    // Prune the finished job from the dispatch list if no worker got there
    // first (e.g. every chunk was run by the waiter).
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i] == job) {
        jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::wait(const JobHandle& job) {
  if (!job || job->num_chunks == 0) return;
  job->run_chunks();  // help instead of idling
  finish_job(job);
}

void ThreadPool::wait_all(std::span<const JobHandle> jobs) {
  // Help every job first (any order: chunks are claimed from atomic
  // cursors), then settle completion; a throw from one job must not leave
  // another in flight, so the first error is held until all have finished.
  for (const JobHandle& job : jobs) {
    if (job && job->num_chunks != 0) job->run_chunks();
  }
  std::exception_ptr first_error;
  for (const JobHandle& job : jobs) {
    if (!job || job->num_chunks == 0) continue;
    try {
      finish_job(job);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::uint64_t num_chunks,
                              const std::function<void(std::uint64_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty()) {
    for (std::uint64_t i = 0; i < num_chunks; ++i) fn(i);
    return;
  }
  // Stack job, function by pointer: no allocation beyond the shared_ptr
  // control block, no std::function copy.
  auto job = std::make_shared<Job>();
  job->num_chunks = num_chunks;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  cv_work_.notify_all();
  job->run_chunks();  // the submitting thread participates too
  finish_job(job);
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sg::simt
