#include "src/core/batch_engine.hpp"

#include <algorithm>

namespace sg::core {

void BatchStaging::group(bool dedup, bool gather_values, bool gather_seqs) {
  // Stage 2a: stable radix sort by the packed (vertex, bucket) word. The
  // low word (key, sequence) is untouched, so within a group the staged
  // order — and with it most-recent-wins — survives.
  sort::radix_sort_hi(std::span<sort::U128>(order_), scratch_);
  const std::size_t n = order_.size();
  keys.reserve(n);
  if (gather_seqs) seqs.reserve(n);
  if (gather_values) values.reserve(n);
  // Stage 2b: cut groups, sort each group's low word — almost every group
  // is a single query, so this costs a compare, not a sort — and emit with
  // duplicates dropped (the highest sequence of equal keys wins: "only the
  // most recent edge and its weight will be stored").
  for (std::size_t begin = 0; begin < n;) {
    const std::uint64_t hi = order_[begin].hi;
    std::size_t end = begin + 1;
    while (end < n && order_[end].hi == hi) ++end;
    if (end - begin > 1) {
      std::sort(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                order_.begin() + static_cast<std::ptrdiff_t>(end),
                [](const sort::U128& a, const sort::U128& b) {
                  return a.lo < b.lo;  // (key, sequence) ascending
                });
    }
    runs.push_back(
        {static_cast<VertexId>(hi >> kBucketBits),
         static_cast<std::uint32_t>(hi & ((1u << kBucketBits) - 1u))});
    run_offsets.push_back(keys.size());
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t key = static_cast<std::uint32_t>(order_[i].lo >> 32);
      if (dedup && i + 1 < end &&
          static_cast<std::uint32_t>(order_[i + 1].lo >> 32) == key) {
        ++duplicates;  // a later occurrence follows: it wins
        continue;
      }
      const std::uint32_t seq = static_cast<std::uint32_t>(order_[i].lo);
      keys.push_back(key);
      if (gather_seqs) seqs.push_back(seq);
      if (gather_values) values.push_back(weights_[seq]);
    }
    begin = end;
  }
  run_offsets.push_back(keys.size());
}

}  // namespace sg::core
