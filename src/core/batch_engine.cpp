#include "src/core/batch_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace sg::core {

void BatchStaging::group(bool dedup, bool gather_values, bool gather_seqs) {
  // Stage 2a: stable radix sort by the packed (vertex, bucket) word, with
  // the digit-skip masks accumulated during staging (sharded stagings have
  // shard-constant low vertex bits, which vanish from the passes). The low
  // word (key, sequence) is untouched, so within a group the staged order
  // — and with it most-recent-wins — survives.
  sort::radix_sort_hi(std::span<sort::U128>(order_), scratch_, hi_or_, hi_and_);
  const std::size_t n = order_.size();
  keys.reserve(n);
  if (gather_seqs) seqs.reserve(n);
  if (gather_values) values.reserve(n);
  // Stage 2b: cut groups, sort each group's low word — almost every group
  // is a single query, so this costs a compare, not a sort — and emit with
  // duplicates dropped (the highest sequence of equal keys wins: "only the
  // most recent edge and its weight will be stored").
  for (std::size_t begin = 0; begin < n;) {
    const std::uint64_t hi = order_[begin].hi;
    std::size_t end = begin + 1;
    while (end < n && order_[end].hi == hi) ++end;
    if (end - begin > 1) {
      std::sort(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                order_.begin() + static_cast<std::ptrdiff_t>(end),
                [](const sort::U128& a, const sort::U128& b) {
                  return a.lo < b.lo;  // (key, sequence) ascending
                });
    }
    runs.push_back(
        {static_cast<VertexId>(hi >> kBucketBits),
         static_cast<std::uint32_t>(hi & ((1u << kBucketBits) - 1u))});
    run_offsets.push_back(keys.size());
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t key = static_cast<std::uint32_t>(order_[i].lo >> 32);
      if (dedup && i + 1 < end &&
          static_cast<std::uint32_t>(order_[i + 1].lo >> 32) == key) {
        ++duplicates;  // a later occurrence follows: it wins
        continue;
      }
      const std::uint32_t seq = static_cast<std::uint32_t>(order_[i].lo);
      keys.push_back(key);
      if (gather_seqs) seqs.push_back(seq);
      if (gather_values) values.push_back(weights_[seq]);
    }
    begin = end;
  }
  run_offsets.push_back(keys.size());
}

std::uint64_t ShardedStaging::total_staged() const {
  std::uint64_t total = 0;
  for (const BatchStaging& st : shards_) total += st.staged;
  return total;
}

std::uint64_t ShardedStaging::total_dropped() const {
  std::uint64_t total = 0;
  for (const BatchStaging& st : shards_) total += st.dropped;
  return total;
}

std::uint64_t ShardedStaging::total_duplicates() const {
  std::uint64_t total = 0;
  for (const BatchStaging& st : shards_) total += st.duplicates;
  return total;
}

void ShardedStaging::merge(bool gather_values, bool gather_seqs) {
  const std::uint32_t num_shards = shard_count();
  if (num_shards <= 1) return;  // front() aliases the lone shard
  std::uint64_t total_keys = 0;
  std::uint64_t total_runs = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    // The dedup-determinism guard: shard s may only emit runs for vertices
    // it owns. A violation means two shards could each hold occurrences of
    // the same (vertex, key) and per-shard dedup would no longer be
    // most-recent-wins across the whole batch — impossible by construction
    // of the staging filters, and checked here so it stays impossible.
    for (const QueryRun& run : shards_[s].runs) {
      if (shard_of_vertex(run.src, num_shards) != s) {
        throw std::logic_error(
            "ShardedStaging: run crossed its shard's vertex partition");
      }
    }
    total_keys += shards_[s].keys.size();
    total_runs += shards_[s].runs.size();
  }
  merged_.clear();
  merged_.keys.resize(total_keys);
  if (gather_values) merged_.values.resize(total_keys);
  if (gather_seqs) merged_.seqs.resize(total_keys);
  merged_.runs.resize(total_runs);
  merged_.run_offsets.resize(total_runs + 1);
  std::uint64_t key_base = 0;
  std::uint64_t run_base = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const BatchStaging& st = shards_[s];
    std::copy(st.keys.begin(), st.keys.end(),
              merged_.keys.begin() + static_cast<std::ptrdiff_t>(key_base));
    if (gather_values) {
      std::copy(st.values.begin(), st.values.end(),
                merged_.values.begin() + static_cast<std::ptrdiff_t>(key_base));
    }
    if (gather_seqs) {
      std::copy(st.seqs.begin(), st.seqs.end(),
                merged_.seqs.begin() + static_cast<std::ptrdiff_t>(key_base));
    }
    std::copy(st.runs.begin(), st.runs.end(),
              merged_.runs.begin() + static_cast<std::ptrdiff_t>(run_base));
    for (std::size_t r = 0; r < st.runs.size(); ++r) {
      merged_.run_offsets[run_base + r] = key_base + st.run_offsets[r];
    }
    key_base += st.keys.size();
    run_base += st.runs.size();
    merged_.staged += st.staged;
    merged_.dropped += st.dropped;
    merged_.duplicates += st.duplicates;
  }
  merged_.run_offsets[total_runs] = total_keys;
}

}  // namespace sg::core
