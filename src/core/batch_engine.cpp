#include "src/core/batch_engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "src/simt/thread_pool.hpp"

namespace sg::core {

void BatchStaging::group_prepare(bool dedup) {
  dedup_ = dedup;
  // Pass 1a: stable radix sort by the packed (vertex, bucket) word, with
  // the digit-skip masks accumulated during staging (sharded stagings have
  // shard-constant low vertex bits, which vanish from the passes). The low
  // word (key, sequence) is untouched, so within a group the staged order
  // — and with it most-recent-wins — survives.
  sort::radix_sort_hi(std::span<sort::U128>(order_), scratch_, hi_or_, hi_and_);
  const std::size_t n = order_.size();
  grouped_runs_ = 0;
  grouped_keys_ = 0;
  duplicates = 0;
  // Pass 1b: cut groups, sort each group's low word — almost every group
  // is a single query, so this costs a compare, not a sort — and COUNT
  // what the emit pass will produce. The per-group order established here
  // persists in order_, so pass 2 is a pure scan-and-write.
  for (std::size_t begin = 0; begin < n;) {
    const std::uint64_t hi = order_[begin].hi;
    std::size_t end = begin + 1;
    while (end < n && order_[end].hi == hi) ++end;
    if (end - begin > 1) {
      std::sort(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                order_.begin() + static_cast<std::ptrdiff_t>(end),
                [](const sort::U128& a, const sort::U128& b) {
                  return a.lo < b.lo;  // (key, sequence) ascending
                });
    }
    ++grouped_runs_;
    for (std::size_t i = begin; i < end; ++i) {
      if (dedup && i + 1 < end &&
          static_cast<std::uint32_t>(order_[i + 1].lo >> 32) ==
              static_cast<std::uint32_t>(order_[i].lo >> 32)) {
        ++duplicates;  // a later occurrence follows: it wins
        continue;
      }
      ++grouped_keys_;
    }
    begin = end;
  }
}

void BatchStaging::group_emit(bool gather_values, bool gather_seqs,
                              BatchStaging& dst, std::uint64_t key_base,
                              std::uint64_t run_base) const {
  const std::size_t n = order_.size();
  std::uint64_t key = key_base;
  std::uint64_t run = run_base;
  for (std::size_t begin = 0; begin < n;) {
    const std::uint64_t hi = order_[begin].hi;
    std::size_t end = begin + 1;
    while (end < n && order_[end].hi == hi) ++end;
    dst.runs[run] = {static_cast<VertexId>(hi >> kBucketBits),
                     static_cast<std::uint32_t>(hi & ((1u << kBucketBits) - 1u))};
    dst.run_offsets[run] = key;
    ++run;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t k = static_cast<std::uint32_t>(order_[i].lo >> 32);
      if (dedup_ && i + 1 < end &&
          static_cast<std::uint32_t>(order_[i + 1].lo >> 32) == k) {
        continue;  // a later occurrence follows: it wins
      }
      const std::uint32_t seq = static_cast<std::uint32_t>(order_[i].lo);
      dst.keys[key] = k;
      if (gather_seqs) dst.seqs[key] = seq;
      if (gather_values) dst.values[key] = weights_[seq];
      ++key;
    }
    begin = end;
  }
  assert(run == run_base + grouped_runs_ && key == key_base + grouped_keys_ &&
         "two-pass invariant: emit must place exactly what prepare counted");
}

void BatchStaging::emit_self(bool gather_values, bool gather_seqs) {
  keys.resize(grouped_keys_);
  if (gather_values) values.resize(grouped_keys_);
  if (gather_seqs) seqs.resize(grouped_keys_);
  runs.resize(grouped_runs_);
  run_offsets.resize(grouped_runs_ + 1);
  group_emit(gather_values, gather_seqs, *this, 0, 0);
  run_offsets[grouped_runs_] = grouped_keys_;
}

void BatchStaging::group(bool dedup, bool gather_values, bool gather_seqs) {
  // Fused single-pass grouping for stagings that need no cross-shard
  // assembly (the lone-shard pipeline path): sort, then cut + emit in one
  // scan. Sharded stagings use group_prepare + group_emit instead, so the
  // counting pass is only ever paid where the counts buy a zero-copy
  // global placement.
  dedup_ = dedup;
  sort::radix_sort_hi(std::span<sort::U128>(order_), scratch_, hi_or_, hi_and_);
  const std::size_t n = order_.size();
  keys.reserve(n);
  if (gather_seqs) seqs.reserve(n);
  if (gather_values) values.reserve(n);
  for (std::size_t begin = 0; begin < n;) {
    const std::uint64_t hi = order_[begin].hi;
    std::size_t end = begin + 1;
    while (end < n && order_[end].hi == hi) ++end;
    if (end - begin > 1) {
      std::sort(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                order_.begin() + static_cast<std::ptrdiff_t>(end),
                [](const sort::U128& a, const sort::U128& b) {
                  return a.lo < b.lo;  // (key, sequence) ascending
                });
    }
    runs.push_back(
        {static_cast<VertexId>(hi >> kBucketBits),
         static_cast<std::uint32_t>(hi & ((1u << kBucketBits) - 1u))});
    run_offsets.push_back(keys.size());
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t key = static_cast<std::uint32_t>(order_[i].lo >> 32);
      if (dedup && i + 1 < end &&
          static_cast<std::uint32_t>(order_[i + 1].lo >> 32) == key) {
        ++duplicates;  // a later occurrence follows: it wins
        continue;
      }
      const std::uint32_t seq = static_cast<std::uint32_t>(order_[i].lo);
      keys.push_back(key);
      if (gather_seqs) seqs.push_back(seq);
      if (gather_values) values.push_back(weights_[seq]);
    }
    begin = end;
  }
  run_offsets.push_back(keys.size());
  grouped_runs_ = runs.size();
  grouped_keys_ = keys.size();
}

void BatchStaging::check_partition(std::uint32_t shard,
                                   std::uint32_t num_shards) const {
  for (const sort::U128& rec : order_) {
    const VertexId src = static_cast<VertexId>(rec.hi >> kBucketBits);
    if (shard_of_vertex(src, num_shards) != shard) {
      throw std::logic_error(
          "BatchStaging: staged query crossed its shard's vertex partition "
          "(vertex " +
          std::to_string(src) + " staged by shard " + std::to_string(shard) +
          " of " + std::to_string(num_shards) + ")");
    }
  }
}

std::uint64_t ShardedStaging::total_staged() const {
  std::uint64_t total = 0;
  for (const BatchStaging& st : shards_) total += st.staged;
  return total;
}

std::uint64_t ShardedStaging::total_dropped() const {
  std::uint64_t total = 0;
  for (const BatchStaging& st : shards_) total += st.dropped;
  return total;
}

std::uint64_t ShardedStaging::total_duplicates() const {
  std::uint64_t total = 0;
  for (const BatchStaging& st : shards_) total += st.duplicates;
  return total;
}

void ShardedStaging::validate_partition() const {
  // The dedup-determinism guard: shard s may only stage vertices it owns.
  // A violation means two shards could each hold occurrences of the same
  // (vertex, key) and per-shard dedup would no longer be most-recent-wins
  // across the whole batch — impossible by construction of the staging
  // filters, and checked here (debug builds) so it stays impossible.
  const std::uint32_t num_shards = shard_count();
  if (num_shards <= 1) return;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    shards_[s].check_partition(s, num_shards);
  }
}

std::uint64_t ShardedStaging::finalize(bool merge_free, bool gather_values,
                                       bool gather_seqs) {
#ifndef NDEBUG
  validate_partition();
#endif
  copied_bytes = 0;
  const std::uint32_t num_shards = shard_count();
  if (num_shards <= 1) {
    // front() aliases the lone shard, which grouped through the fused
    // single-pass group(): nothing to assemble, nothing was copied.
    return 0;
  }
  std::uint64_t total_keys = 0;
  std::uint64_t total_runs = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    total_keys += shards_[s].grouped_keys();
    total_runs += shards_[s].grouped_runs();
  }
  merged_.clear();
  merged_.keys.resize(total_keys);
  if (gather_values) merged_.values.resize(total_keys);
  if (gather_seqs) merged_.seqs.resize(total_keys);
  merged_.runs.resize(total_runs);
  merged_.run_offsets.resize(total_runs + 1);

  std::uint64_t driver_copied = 0;
  if (merge_free) {
    // Pass 2 of the two-pass (count, then place) scheme: prefix-sum the
    // per-shard counts into disjoint slices and let every shard emit its
    // own output directly into its slice — in parallel, with no driver
    // copy. Slices are element-disjoint, so the concurrent writes need no
    // synchronization; the pool's job fence publishes them to the reader.
    std::vector<std::uint64_t> key_base(num_shards);
    std::vector<std::uint64_t> run_base(num_shards);
    std::uint64_t key_cursor = 0;
    std::uint64_t run_cursor = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      key_base[s] = key_cursor;
      run_base[s] = run_cursor;
      key_cursor += shards_[s].grouped_keys();
      run_cursor += shards_[s].grouped_runs();
    }
    simt::ThreadPool::instance().parallel_for(
        num_shards, [&](std::uint64_t s) {
          shards_[s].group_emit(gather_values, gather_seqs, merged_,
                                key_base[s], run_base[s]);
        });
  } else {
    // Legacy (PR 3) copying merge, kept as the differential reference:
    // shards self-emit in parallel, then one thread concatenates.
    simt::ThreadPool::instance().parallel_for(
        num_shards, [&](std::uint64_t s) {
          shards_[s].emit_self(gather_values, gather_seqs);
        });
    std::uint64_t key_cursor = 0;
    std::uint64_t run_cursor = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const BatchStaging& st = shards_[s];
      std::copy(st.keys.begin(), st.keys.end(),
                merged_.keys.begin() + static_cast<std::ptrdiff_t>(key_cursor));
      driver_copied += st.keys.size() * sizeof(std::uint32_t);
      if (gather_values) {
        std::copy(
            st.values.begin(), st.values.end(),
            merged_.values.begin() + static_cast<std::ptrdiff_t>(key_cursor));
        driver_copied += st.values.size() * sizeof(std::uint32_t);
      }
      if (gather_seqs) {
        std::copy(st.seqs.begin(), st.seqs.end(),
                  merged_.seqs.begin() + static_cast<std::ptrdiff_t>(key_cursor));
        driver_copied += st.seqs.size() * sizeof(std::uint32_t);
      }
      std::copy(st.runs.begin(), st.runs.end(),
                merged_.runs.begin() + static_cast<std::ptrdiff_t>(run_cursor));
      driver_copied += st.runs.size() * sizeof(QueryRun);
      for (std::size_t r = 0; r < st.runs.size(); ++r) {
        merged_.run_offsets[run_cursor + r] = key_cursor + st.run_offsets[r];
      }
      driver_copied += st.runs.size() * sizeof(std::uint64_t);
      key_cursor += st.keys.size();
      run_cursor += st.runs.size();
    }
  }
  merged_.run_offsets[total_runs] = total_keys;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    merged_.staged += shards_[s].staged;
    merged_.dropped += shards_[s].dropped;
    merged_.duplicates += shards_[s].duplicates;
  }
  copied_bytes = driver_copied;
  return driver_copied;
}

}  // namespace sg::core
