#include "src/core/phase_scheduler.hpp"

#include <chrono>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "src/simt/thread_pool.hpp"
#include "src/util/timer.hpp"

namespace sg::core {

PhaseScheduler::PhaseScheduler(Ops ops) : ops_(std::move(ops)) {
  conductor_ = std::thread([this] { conductor_loop(); });
}

PhaseScheduler::~PhaseScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_submit_.notify_all();
  conductor_.join();  // drains the queue before exiting
}

void PhaseScheduler::enqueue(Submission&& s) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      throw std::runtime_error("PhaseScheduler: submit after shutdown");
    }
    if (s.kind == Kind::kMutation) {
      ++stats_.submitted_mutations;
    } else {
      ++stats_.submitted_queries;
    }
    queue_.push_back(std::move(s));
  }
  cv_submit_.notify_one();
}

std::future<std::uint64_t> PhaseScheduler::submit_insert(
    std::vector<WeightedEdge> edges) {
  Submission s;
  s.kind = Kind::kMutation;
  s.erase = false;
  s.inserts = std::move(edges);
  std::future<std::uint64_t> f = s.mutation_result.get_future();
  enqueue(std::move(s));
  return f;
}

std::future<std::uint64_t> PhaseScheduler::submit_erase(
    std::vector<Edge> edges) {
  Submission s;
  s.kind = Kind::kMutation;
  s.erase = true;
  s.edges = std::move(edges);
  std::future<std::uint64_t> f = s.mutation_result.get_future();
  enqueue(std::move(s));
  return f;
}

std::future<std::vector<std::uint8_t>> PhaseScheduler::submit_edges_exist(
    std::vector<Edge> queries) {
  Submission s;
  s.kind = Kind::kQuery;
  s.weighted = false;
  s.edges = std::move(queries);
  std::future<std::vector<std::uint8_t>> f = s.exist_result.get_future();
  enqueue(std::move(s));
  return f;
}

std::future<EdgeWeightBatch> PhaseScheduler::submit_edge_weights(
    std::vector<Edge> queries) {
  if (!ops_.edge_weights) {
    throw std::logic_error(
        "PhaseScheduler: this graph has no edge_weights operation");
  }
  Submission s;
  s.kind = Kind::kQuery;
  s.weighted = true;
  s.edges = std::move(queries);
  std::future<EdgeWeightBatch> f = s.weight_result.get_future();
  enqueue(std::move(s));
  return f;
}

void PhaseScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_drained_.wait(lock, [this] { return queue_.empty() && !phase_open_; });
}

PhaseScheduleStats PhaseScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PhaseScheduler::conductor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_submit_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Admit the longest same-kind PREFIX of the queue into one phase.
    // Taking a prefix (never cherry-picking around an opposite-kind
    // submission) preserves global FIFO order — the guarantee that a
    // thread's own submissions apply in its program order — while still
    // coalescing every burst of same-kind submissions into a shared phase.
    // FIFO admission is also the fairness policy: neither kind can starve
    // the other, because the queue head always opens the next phase.
    const Kind kind = queue_.front().kind;
    std::size_t count = 1;
    while (count < queue_.size() && queue_[count].kind == kind) ++count;
    std::vector<Submission> batch;
    batch.reserve(count);
    batch.insert(batch.end(),
                 std::make_move_iterator(queue_.begin()),
                 std::make_move_iterator(queue_.begin() +
                                         static_cast<std::ptrdiff_t>(count)));
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(count));
    phase_open_ = true;
    if (have_last_kind_ && kind != last_kind_) ++stats_.phase_switches;
    have_last_kind_ = true;
    last_kind_ = kind;
    if (kind == Kind::kMutation) {
      ++stats_.mutation_phases;
    } else {
      ++stats_.query_phases;
    }
    stats_.coalesced_batches += batch.size() - 1;

    lock.unlock();
    double fence_seconds = 0.0;
    try {
      fence_seconds = kind == Kind::kMutation ? run_mutation_phase(batch)
                                              : run_query_phase(batch);
    } catch (...) {
      // The phase runners route per-submission errors to the futures; what
      // lands here is infrastructure failure (e.g. bad_alloc submitting a
      // job). The conductor must survive it — fail the batch's unresolved
      // promises instead of escaping the thread into std::terminate.
      fail_batch(batch, std::current_exception());
    }
    lock.lock();
    stats_.fence_wait_seconds += fence_seconds;
    phase_open_ = false;
    cv_drained_.notify_all();
  }
}

void PhaseScheduler::fail_batch(std::vector<Submission>& batch,
                                std::exception_ptr error) {
  for (Submission& s : batch) {
    try {
      if (s.kind == Kind::kMutation) {
        s.mutation_result.set_exception(error);
      } else if (s.weighted) {
        s.weight_result.set_exception(error);
      } else {
        s.exist_result.set_exception(error);
      }
    } catch (const std::future_error&) {
      // Already satisfied before the failure: keep its real result.
    }
  }
}

double PhaseScheduler::run_mutation_phase(std::vector<Submission>& batch) {
  // Consecutive same-operation submissions merge into ONE engine batch:
  // concatenation preserves submission order, and the engine's
  // most-recent-wins dedup (sequence = position) resolves cross-submission
  // duplicates exactly as applying the submissions back to back would.
  // The merged batch rides the engine's double-buffered epoch pipeline, so
  // many small ingest submissions stage and apply like one large batch.
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i + 1;
    while (j < batch.size() && batch[j].erase == batch[i].erase) ++j;
    try {
      std::uint64_t applied = 0;
      if (batch[i].erase) {
        if (j - i == 1) {
          applied = ops_.delete_edges(batch[i].edges);
        } else {
          std::vector<Edge> merged;
          std::size_t total = 0;
          for (std::size_t k = i; k < j; ++k) total += batch[k].edges.size();
          merged.reserve(total);
          for (std::size_t k = i; k < j; ++k) {
            merged.insert(merged.end(), batch[k].edges.begin(),
                          batch[k].edges.end());
          }
          applied = ops_.delete_edges(merged);
        }
      } else {
        if (j - i == 1) {
          applied = ops_.insert_edges(batch[i].inserts);
        } else {
          std::vector<WeightedEdge> merged;
          std::size_t total = 0;
          for (std::size_t k = i; k < j; ++k) total += batch[k].inserts.size();
          merged.reserve(total);
          for (std::size_t k = i; k < j; ++k) {
            merged.insert(merged.end(), batch[k].inserts.begin(),
                          batch[k].inserts.end());
          }
          applied = ops_.insert_edges(merged);
        }
      }
      // Every member of the group observes the group total (documented in
      // submit_insert): per-submission counts are not separable once the
      // group applied as one deduped batch.
      for (std::size_t k = i; k < j; ++k) {
        batch[k].mutation_result.set_value(applied);
      }
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      for (std::size_t k = i; k < j; ++k) {
        batch[k].mutation_result.set_exception(err);
      }
    }
    i = j;
  }
  // Mutation groups run inline on the conductor (the engine parallelizes
  // internally through the shared pool): the phase closes the moment the
  // last group returns, so there is no residual fence to wait out.
  return 0.0;
}

double PhaseScheduler::run_query_phase(std::vector<Submission>& batch) {
  // Every admitted query batch runs as its own pool job, concurrently with
  // the others (query batches are phase-concurrent by design; each batch
  // is internally pipelined as usual). The wait_all is the phase fence: the
  // next phase cannot open until every search of this one has completed.
  auto& pool = simt::ThreadPool::instance();
  std::vector<simt::ThreadPool::JobHandle> jobs;
  jobs.reserve(batch.size());
  const auto submit_one = [this, &pool, &jobs](Submission& s) {
    jobs.push_back(pool.submit(1, [this, &s](std::uint64_t) {
      if (s.weighted) {
        try {
          EdgeWeightBatch result;
          result.weights.assign(s.edges.size(), Weight{0});
          result.found.assign(s.edges.size(), 0);
          ops_.edge_weights(s.edges, result.weights.data(),
                            result.found.data());
          s.weight_result.set_value(std::move(result));
        } catch (...) {
          s.weight_result.set_exception(std::current_exception());
        }
      } else {
        try {
          std::vector<std::uint8_t> out(s.edges.size(), 0);
          ops_.edges_exist(s.edges, out.data());
          s.exist_result.set_value(std::move(out));
        } catch (...) {
          s.exist_result.set_exception(std::current_exception());
        }
      }
    }));
  };
  try {
    for (Submission& s : batch) submit_one(s);
  } catch (...) {
    // A failed submit (allocation) must not unwind past jobs already in
    // flight — they reference `batch`. Wait them out, then let the
    // conductor fail the unresolved promises.
    try {
      pool.wait_all(jobs);
    } catch (...) {
    }
    throw;
  }
  util::Timer fence_timer;
  pool.wait_all(jobs);  // the query->next-phase fence
  return fence_timer.seconds();
}

}  // namespace sg::core
