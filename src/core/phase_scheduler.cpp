#include "src/core/phase_scheduler.hpp"

#include <chrono>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "src/simt/thread_pool.hpp"
#include "src/util/fault_injection.hpp"
#include "src/util/timer.hpp"

namespace sg::core {

namespace {
std::exception_ptr rejection(RejectReason reason) {
  return std::make_exception_ptr(SubmitRejected(reason));
}
}  // namespace

PhaseScheduleStats& PhaseScheduleStats::operator+=(
    const PhaseScheduleStats& other) {
  submitted_mutations += other.submitted_mutations;
  submitted_queries += other.submitted_queries;
  submitted_analytics += other.submitted_analytics;
  submitted_snapshots += other.submitted_snapshots;
  submitted_maintenance += other.submitted_maintenance;
  mutation_phases += other.mutation_phases;
  query_phases += other.query_phases;
  analytics_phases += other.analytics_phases;
  phase_switches += other.phase_switches;
  coalesced_batches += other.coalesced_batches;
  fence_wait_seconds += other.fence_wait_seconds;
  rejected_submissions += other.rejected_submissions;
  shed_queries += other.shed_queries;
  expired_queries += other.expired_queries;
  blocked_ns += other.blocked_ns;
  if (other.max_queue_depth > max_queue_depth) {
    max_queue_depth = other.max_queue_depth;
  }
  return *this;
}

PhaseScheduler::PhaseScheduler(Ops ops)
    : PhaseScheduler(std::move(ops), Limits{}) {}

PhaseScheduler::PhaseScheduler(Ops ops, Limits limits)
    : ops_(std::move(ops)), limits_(limits) {
  conductor_ = std::thread([this] { conductor_loop(); });
}

PhaseScheduler::~PhaseScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_submit_.notify_all();
  cv_space_.notify_all();  // blocked submitters resolve to kShutdown
  conductor_.join();       // finishes the open phase, rejects the rest
}

std::uint64_t PhaseScheduler::submission_items(const Submission& s) {
  return s.inserts.size() + s.edges.size();
}

void PhaseScheduler::reject_submission(Submission& s, RejectReason reason) {
  const std::exception_ptr err = rejection(reason);
  if (s.kind == Kind::kMutation) {
    s.mutation_result.set_exception(err);
  } else if (s.kind == Kind::kAnalytics) {
    s.analytics_result.set_exception(err);
  } else if (s.weighted) {
    s.weight_result.set_exception(err);
  } else {
    s.exist_result.set_exception(err);
  }
}

bool PhaseScheduler::fits_locked(std::uint64_t items) const {
  // An empty queue always admits: a single submission larger than
  // max_pending_edges must not wedge forever (GraphConfig documents this).
  if (queue_.empty()) return true;
  if (limits_.max_pending_submissions != 0 &&
      queue_.size() >= limits_.max_pending_submissions) {
    return false;
  }
  if (limits_.max_pending_edges != 0 &&
      pending_edges_ + items > limits_.max_pending_edges) {
    return false;
  }
  return true;
}

bool PhaseScheduler::admit_locked(std::unique_lock<std::mutex>& lock,
                                  Submission& s, std::uint64_t items) {
  while (!fits_locked(items)) {
    switch (limits_.backpressure) {
      case BackpressurePolicy::kReject:
        ++stats_.rejected_submissions;
        reject_submission(s, RejectReason::kQueueFull);
        return false;
      case BackpressurePolicy::kShedOldestQueries: {
        // Evict the oldest pending QUERIES until the newcomer fits.
        // Mutations are never shed: dropping one would silently change the
        // state every later submission runs against.
        bool shed_any = false;
        for (auto it = queue_.begin();
             it != queue_.end() && !fits_locked(items);) {
          if (it->kind != Kind::kQuery) {
            ++it;
            continue;
          }
          pending_edges_ -= submission_items(*it);
          ++stats_.shed_queries;
          reject_submission(*it, RejectReason::kShed);
          it = queue_.erase(it);
          shed_any = true;
        }
        if (shed_any) cv_space_.notify_all();
        if (!fits_locked(items)) {
          // Nothing sheddable left (the queue is all mutations).
          ++stats_.rejected_submissions;
          reject_submission(s, RejectReason::kQueueFull);
          return false;
        }
        break;
      }
      case BackpressurePolicy::kBlock: {
        const auto wait_begin = std::chrono::steady_clock::now();
        const auto pred = [this, items] { return stop_ || fits_locked(items); };
        bool woke = true;
        if (limits_.submit_timeout_ms != 0) {
          woke = cv_space_.wait_until(
              lock,
              wait_begin + std::chrono::milliseconds(limits_.submit_timeout_ms),
              pred);
        } else {
          cv_space_.wait(lock, pred);
        }
        stats_.blocked_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wait_begin)
                .count());
        if (stop_) {
          ++stats_.rejected_submissions;
          reject_submission(s, RejectReason::kShutdown);
          return false;
        }
        if (!woke) {
          ++stats_.rejected_submissions;
          reject_submission(s, RejectReason::kTimeout);
          return false;
        }
        break;
      }
    }
  }
  return true;
}

void PhaseScheduler::enqueue(Submission&& s) {
  const std::uint64_t items = submission_items(s);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) {
      throw SubmitRejected(RejectReason::kShutdown);
    }
    // Admission control: on rejection the submission's future has already
    // been resolved to SubmitRejected — nothing more to do here.
    if (!admit_locked(lock, s, items)) return;
    if (s.kind == Kind::kMutation) {
      if (s.maintenance) {
        ++stats_.submitted_maintenance;
      } else {
        ++stats_.submitted_mutations;
      }
    } else if (s.kind == Kind::kAnalytics) {
      if (s.snapshot) {
        ++stats_.submitted_snapshots;
      } else {
        ++stats_.submitted_analytics;
      }
    } else {
      ++stats_.submitted_queries;
    }
    queue_.push_back(std::move(s));
    pending_edges_ += items;
    if (queue_.size() > stats_.max_queue_depth) {
      stats_.max_queue_depth = queue_.size();
    }
  }
  cv_submit_.notify_one();
}

std::future<std::uint64_t> PhaseScheduler::submit_insert(
    std::vector<WeightedEdge> edges) {
  Submission s;
  s.kind = Kind::kMutation;
  s.erase = false;
  s.inserts = std::move(edges);
  std::future<std::uint64_t> f = s.mutation_result.get_future();
  enqueue(std::move(s));
  return f;
}

std::future<std::uint64_t> PhaseScheduler::submit_erase(
    std::vector<Edge> edges) {
  Submission s;
  s.kind = Kind::kMutation;
  s.erase = true;
  s.edges = std::move(edges);
  std::future<std::uint64_t> f = s.mutation_result.get_future();
  enqueue(std::move(s));
  return f;
}

std::future<std::vector<std::uint8_t>> PhaseScheduler::submit_edges_exist(
    std::vector<Edge> queries, std::uint32_t deadline_ms) {
  Submission s;
  s.kind = Kind::kQuery;
  s.weighted = false;
  if (deadline_ms != 0) {
    s.has_deadline = true;
    s.deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(deadline_ms);
  }
  s.edges = std::move(queries);
  std::future<std::vector<std::uint8_t>> f = s.exist_result.get_future();
  enqueue(std::move(s));
  return f;
}

std::future<EdgeWeightBatch> PhaseScheduler::submit_edge_weights(
    std::vector<Edge> queries, std::uint32_t deadline_ms) {
  if (!ops_.edge_weights) {
    throw std::logic_error(
        "PhaseScheduler: this graph has no edge_weights operation");
  }
  Submission s;
  s.kind = Kind::kQuery;
  s.weighted = true;
  if (deadline_ms != 0) {
    s.has_deadline = true;
    s.deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(deadline_ms);
  }
  s.edges = std::move(queries);
  std::future<EdgeWeightBatch> f = s.weight_result.get_future();
  enqueue(std::move(s));
  return f;
}

std::future<void> PhaseScheduler::submit_analytics(std::function<void()> task) {
  Submission s;
  s.kind = Kind::kAnalytics;
  s.task = std::move(task);
  std::future<void> f = s.analytics_result.get_future();
  enqueue(std::move(s));
  return f;
}

std::future<void> PhaseScheduler::submit_snapshot(std::function<void()> task) {
  Submission s;
  s.kind = Kind::kAnalytics;  // a snapshot is a fenced read of the structure
  s.snapshot = true;
  s.task = std::move(task);
  std::future<void> f = s.analytics_result.get_future();
  enqueue(std::move(s));
  return f;
}

std::future<std::uint64_t> PhaseScheduler::submit_maintenance(
    std::function<std::uint64_t()> task) {
  Submission s;
  s.kind = Kind::kMutation;  // it writes: it must own the write window
  s.maintenance = std::move(task);
  std::future<std::uint64_t> f = s.mutation_result.get_future();
  enqueue(std::move(s));
  return f;
}

void PhaseScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_drained_.wait(lock, [this] { return queue_.empty() && !phase_open_; });
}

PhaseScheduleStats PhaseScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PhaseScheduler::conductor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_submit_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) {
      // Shutdown REJECTS pending work instead of silently dropping it (or
      // running it against a graph mid-destruction): every still-queued
      // future resolves to SubmitRejected{kShutdown}.
      std::vector<Submission> doomed;
      doomed.swap(queue_);
      pending_edges_ = 0;
      stats_.rejected_submissions += doomed.size();
      lock.unlock();
      fail_batch(doomed, rejection(RejectReason::kShutdown));
      lock.lock();
      cv_drained_.notify_all();
      return;
    }
    // Admit the longest same-kind PREFIX of the queue into one phase.
    // Taking a prefix (never cherry-picking around an opposite-kind
    // submission) preserves global FIFO order — the guarantee that a
    // thread's own submissions apply in its program order — while still
    // coalescing every burst of same-kind submissions into a shared phase.
    // FIFO admission is also the fairness policy: neither kind can starve
    // the other, because the queue head always opens the next phase.
    const Kind kind = queue_.front().kind;
    std::size_t count = 1;
    while (count < queue_.size() && queue_[count].kind == kind) ++count;
    std::vector<Submission> batch;
    batch.reserve(count);
    batch.insert(batch.end(),
                 std::make_move_iterator(queue_.begin()),
                 std::make_move_iterator(queue_.begin() +
                                         static_cast<std::ptrdiff_t>(count)));
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(count));
    for (const Submission& s : batch) pending_edges_ -= submission_items(s);
    cv_space_.notify_all();  // the admitted prefix freed queue space
    if (kind == Kind::kQuery) {
      // Deadline sweep at phase admission: a query whose deadline passed
      // while it sat behind earlier phases is rejected, not run — its
      // phase-consistent answer would arrive too late to matter.
      const auto now = std::chrono::steady_clock::now();
      std::size_t kept = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].has_deadline && batch[i].deadline <= now) {
          ++stats_.expired_queries;
          reject_submission(batch[i], RejectReason::kDeadlineExpired);
        } else {
          if (kept != i) batch[kept] = std::move(batch[i]);
          ++kept;
        }
      }
      batch.resize(kept);
      if (batch.empty()) {
        cv_drained_.notify_all();
        continue;
      }
    }
    phase_open_ = true;
    if (have_last_kind_ && kind != last_kind_) ++stats_.phase_switches;
    have_last_kind_ = true;
    last_kind_ = kind;
    if (kind == Kind::kMutation) {
      ++stats_.mutation_phases;
    } else if (kind == Kind::kAnalytics) {
      ++stats_.analytics_phases;
    } else {
      ++stats_.query_phases;
    }
    stats_.coalesced_batches += batch.size() - 1;

    lock.unlock();
    SG_FAULT_DELAY(kConductorPhase);
    double fence_seconds = 0.0;
    try {
      fence_seconds = kind == Kind::kMutation    ? run_mutation_phase(batch)
                      : kind == Kind::kAnalytics ? run_analytics_phase(batch)
                                                 : run_query_phase(batch);
    } catch (...) {
      // The phase runners route per-submission errors to the futures; what
      // lands here is infrastructure failure (e.g. bad_alloc submitting a
      // job). The conductor must survive it — fail the batch's unresolved
      // promises instead of escaping the thread into std::terminate.
      fail_batch(batch, std::current_exception());
    }
    lock.lock();
    stats_.fence_wait_seconds += fence_seconds;
    phase_open_ = false;
    cv_drained_.notify_all();
  }
}

void PhaseScheduler::fail_batch(std::vector<Submission>& batch,
                                std::exception_ptr error) {
  for (Submission& s : batch) {
    try {
      if (s.kind == Kind::kMutation) {
        s.mutation_result.set_exception(error);
      } else if (s.kind == Kind::kAnalytics) {
        s.analytics_result.set_exception(error);
      } else if (s.weighted) {
        s.weight_result.set_exception(error);
      } else {
        s.exist_result.set_exception(error);
      }
    } catch (const std::future_error&) {
      // Already satisfied before the failure: keep its real result.
    }
  }
}

double PhaseScheduler::run_mutation_phase(std::vector<Submission>& batch) {
  // Consecutive same-operation submissions merge into ONE engine batch:
  // concatenation preserves submission order, and the engine's
  // most-recent-wins dedup (sequence = position) resolves cross-submission
  // duplicates exactly as applying the submissions back to back would.
  // The merged batch rides the engine's double-buffered epoch pipeline, so
  // many small ingest submissions stage and apply like one large batch.
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i + 1;
    // Maintenance tasks (aged erase, compaction) run alone: they are
    // arbitrary structure mutations, so neither they nor their neighbors
    // may merge across them.
    if (!batch[i].maintenance) {
      while (j < batch.size() && !batch[j].maintenance &&
             batch[j].erase == batch[i].erase) {
        ++j;
      }
    }
    try {
      std::uint64_t applied = 0;
      if (batch[i].maintenance) {
        applied = batch[i].maintenance();
      } else if (batch[i].erase) {
        if (j - i == 1) {
          applied = ops_.delete_edges(batch[i].edges);
        } else {
          std::vector<Edge> merged;
          std::size_t total = 0;
          for (std::size_t k = i; k < j; ++k) total += batch[k].edges.size();
          merged.reserve(total);
          for (std::size_t k = i; k < j; ++k) {
            merged.insert(merged.end(), batch[k].edges.begin(),
                          batch[k].edges.end());
          }
          applied = ops_.delete_edges(merged);
        }
      } else {
        if (j - i == 1) {
          applied = ops_.insert_edges(batch[i].inserts);
        } else {
          std::vector<WeightedEdge> merged;
          std::size_t total = 0;
          for (std::size_t k = i; k < j; ++k) total += batch[k].inserts.size();
          merged.reserve(total);
          for (std::size_t k = i; k < j; ++k) {
            merged.insert(merged.end(), batch[k].inserts.begin(),
                          batch[k].inserts.end());
          }
          applied = ops_.insert_edges(merged);
        }
      }
      // Every member of the group observes the group total (documented in
      // submit_insert): per-submission counts are not separable once the
      // group applied as one deduped batch.
      for (std::size_t k = i; k < j; ++k) {
        batch[k].mutation_result.set_value(applied);
      }
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      for (std::size_t k = i; k < j; ++k) {
        batch[k].mutation_result.set_exception(err);
      }
    }
    i = j;
  }
  // Mutation groups run inline on the conductor (the engine parallelizes
  // internally through the shared pool): the phase closes the moment the
  // last group returns, so there is no residual fence to wait out.
  return 0.0;
}

double PhaseScheduler::run_query_phase(std::vector<Submission>& batch) {
  // Every admitted query batch runs as its own pool job, concurrently with
  // the others (query batches are phase-concurrent by design; each batch
  // is internally pipelined as usual). The wait_all is the phase fence: the
  // next phase cannot open until every search of this one has completed.
  auto& pool = simt::ThreadPool::instance();
  std::vector<simt::ThreadPool::JobHandle> jobs;
  jobs.reserve(batch.size());
  const auto submit_one = [this, &pool, &jobs](Submission& s) {
    jobs.push_back(pool.submit(1, [this, &s](std::uint64_t) {
      if (s.weighted) {
        try {
          EdgeWeightBatch result;
          result.weights.assign(s.edges.size(), Weight{0});
          result.found.assign(s.edges.size(), 0);
          ops_.edge_weights(s.edges, result.weights.data(),
                            result.found.data());
          s.weight_result.set_value(std::move(result));
        } catch (...) {
          s.weight_result.set_exception(std::current_exception());
        }
      } else {
        try {
          std::vector<std::uint8_t> out(s.edges.size(), 0);
          ops_.edges_exist(s.edges, out.data());
          s.exist_result.set_value(std::move(out));
        } catch (...) {
          s.exist_result.set_exception(std::current_exception());
        }
      }
    }));
  };
  try {
    for (Submission& s : batch) submit_one(s);
  } catch (...) {
    // A failed submit (allocation) must not unwind past jobs already in
    // flight — they reference `batch`. Wait them out, then let the
    // conductor fail the unresolved promises.
    try {
      pool.wait_all(jobs);
    } catch (...) {
    }
    throw;
  }
  util::Timer fence_timer;
  pool.wait_all(jobs);  // the query->next-phase fence
  return fence_timer.seconds();
}

double PhaseScheduler::run_analytics_phase(std::vector<Submission>& batch) {
  // Analytics tasks admitted into one phase run concurrently as pool jobs,
  // exactly like query batches: they traverse the graph read-only against
  // a phase-consistent state (no mutation phase can open until the fence
  // below closes), so concurrent tasks are safe by the same argument as
  // concurrent query batches.
  auto& pool = simt::ThreadPool::instance();
  std::vector<simt::ThreadPool::JobHandle> jobs;
  jobs.reserve(batch.size());
  try {
    for (Submission& s : batch) {
      jobs.push_back(pool.submit(1, [&s](std::uint64_t) {
        try {
          s.task();
          s.analytics_result.set_value();
        } catch (...) {
          s.analytics_result.set_exception(std::current_exception());
        }
      }));
    }
  } catch (...) {
    // A failed submit (allocation) must not unwind past jobs already in
    // flight — they reference `batch`. Wait them out, then let the
    // conductor fail the unresolved promises.
    try {
      pool.wait_all(jobs);
    } catch (...) {
    }
    throw;
  }
  util::Timer fence_timer;
  pool.wait_all(jobs);  // the analytics->next-phase fence
  return fence_timer.seconds();
}

}  // namespace sg::core
