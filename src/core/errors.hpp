// Typed failures of the serving path (docs/ROBUSTNESS.md).
//
// Two families:
//  * SubmitRejected — admission control refused (or revoked) a scheduled
//    submission; delivered through the submission's future, or thrown
//    synchronously when submitting to a stopped scheduler.
//  * PartialBatchError — a batched mutation aborted mid-flight (arena
//    exhaustion, injected fault, staging failure) after part of the batch
//    had already been applied; carries exactly what was applied and what
//    was not, so a caller can retry the remainder or reconcile.
#pragma once

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/types.hpp"

namespace sg::core {

/// Why admission control refused a submission.
enum class RejectReason : std::uint8_t {
  kQueueFull,        ///< pending caps hit under BackpressurePolicy::kReject
  kTimeout,          ///< kBlock wait exceeded GraphConfig::submit_timeout_ms
  kDeadlineExpired,  ///< the submission's deadline passed before admission
  kShutdown,         ///< scheduler stopping; queued work is rejected, not run
  kShed,             ///< evicted by kShedOldestQueries to admit newer work
};

inline const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kQueueFull: return "queue full";
    case RejectReason::kTimeout: return "submit timeout";
    case RejectReason::kDeadlineExpired: return "deadline expired";
    case RejectReason::kShutdown: return "scheduler shutdown";
    case RejectReason::kShed: return "shed under backpressure";
  }
  return "unknown";
}

/// A scheduled submission was refused or revoked; resolves the submission's
/// future. The work was NOT applied (rejection is all-or-nothing — contrast
/// PartialBatchError).
class SubmitRejected : public std::runtime_error {
 public:
  explicit SubmitRejected(RejectReason reason)
      : std::runtime_error(std::string("submission rejected: ") +
                           to_string(reason)),
        reason_(reason) {}

  RejectReason reason() const noexcept { return reason_; }

 private:
  RejectReason reason_;
};

/// A batched mutation aborted after applying part of the batch. The graph
/// is consistent: it equals the same batch applied WITHOUT the `unapplied`
/// edges (counters exact, no torn slabs), the underlying cause is preserved
/// in `cause`, and the graph keeps serving — this is graceful degradation,
/// not corruption.
///
/// `unapplied` lists (src, dst) pairs in input order: the not-yet-applied
/// remainder of the epoch that failed (deduplicated pairs — a pair staged
/// twice in that epoch appears once) followed by every raw input edge of
/// the epochs that never reached the apply stage. For undirected graphs
/// pairs are reported in input orientation only.
class PartialBatchError : public std::runtime_error {
 public:
  PartialBatchError(std::uint64_t applied, std::vector<Edge> unapplied,
                    std::exception_ptr cause, const std::string& what)
      : std::runtime_error(what + " (" + std::to_string(applied) +
                           " applied, " + std::to_string(unapplied.size()) +
                           " unapplied)"),
        applied_(applied),
        unapplied_(std::move(unapplied)),
        cause_(std::move(cause)) {}

  /// New keys actually inserted (or keys erased) before the abort — the
  /// value the call would have returned had it stopped there cleanly.
  std::uint64_t applied() const noexcept { return applied_; }

  /// Edges staged but never applied; retry these.
  const std::vector<Edge>& unapplied() const noexcept { return unapplied_; }

  /// The failure that aborted the batch (e.g. memory::ArenaExhausted).
  std::exception_ptr cause() const noexcept { return cause_; }

 private:
  std::uint64_t applied_;
  std::vector<Edge> unapplied_;
  std::exception_ptr cause_;
};

}  // namespace sg::core
