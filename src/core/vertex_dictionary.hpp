// Vertex dictionary (§III-a, §IV-A1): an array indexed by vertex id
// holding, per vertex, the handle of its adjacency hash table (base slab
// + bucket count), the exact edge counter, and liveness. Growing the
// dictionary copies only these per-vertex entries — "shallow copying of the
// pointers to each of the hash tables" — never the adjacency data itself.
//
// The per-vertex state is packed into ONE 16-byte record (four per cache
// line) instead of four parallel arrays: the batch engine's stage pass
// touches table handle + bucket count + liveness for every staged edge,
// and apply touches handle + edge counter per run, so on random-vertex
// workloads the packed layout pays one cold miss per vertex where the SoA
// layout paid up to three.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.hpp"
#include "src/simt/atomics.hpp"
#include "src/slabhash/slab_layout.hpp"

namespace sg::core {

class VertexDictionary {
 public:
  explicit VertexDictionary(std::uint32_t capacity);

  std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }

  /// Grows capacity to at least `min_capacity` (next power of two); a
  /// shallow copy of per-vertex entries. No-op if already large enough.
  void grow(std::uint32_t min_capacity);

  /// Number of grow() calls that actually reallocated; exposed so tests can
  /// verify the overallocation strategy avoids repeated copies.
  std::uint32_t growth_count() const noexcept { return growth_count_; }

  // --- per-vertex slots (bounds-unchecked hot accessors; reads annotated
  // racy: a table handle observed mid-creation by another shard's stage
  // pass is stale-but-safe, the phase protocols re-resolve it) ----------
  slabhash::TableRef table(VertexId u) const noexcept {
    const Entry& e = entries_[u];
    return {simt::racy_load(e.table_base), simt::racy_load(e.num_buckets)};
  }
  bool has_table(VertexId u) const noexcept {
    return simt::racy_load(entries_[u].table_base) != memory::kNullSlab;
  }
  void set_table(VertexId u, slabhash::TableRef ref) noexcept {
    simt::racy_store(entries_[u].num_buckets, ref.num_buckets);
    simt::racy_store(entries_[u].table_base, ref.base);
  }

  /// Racy-read-safe variants for lazy table creation during a parallel
  /// insert phase: the bucket count is published before the base handle
  /// (release), and readers order their loads behind the base (acquire).
  slabhash::TableRef table_acquire(VertexId u) const noexcept;
  void publish_table(VertexId u, slabhash::TableRef ref) noexcept;

  /// Edge counters are mutated with atomics during batched updates.
  std::uint32_t& edge_count_word(VertexId u) noexcept {
    return entries_[u].edge_count;
  }
  /// Counter reads tolerate racing atomic updates by design (a batch's
  /// exact total is only defined at the phase fence); annotated racy so
  /// the TSan job checks everything else.
  std::uint32_t edge_count(VertexId u) const noexcept {
    return simt::racy_load(entries_[u].edge_count);
  }
  void set_edge_count(VertexId u, std::uint32_t n) noexcept {
    simt::racy_store(entries_[u].edge_count, n);
  }

  /// The liveness flag is monotone within a phase (insert phases only
  /// revive, delete phases only doom), so racing plain accesses are part
  /// of the protocol — stale reads resolve exactly as on the GPU.
  bool deleted(VertexId u) const noexcept {
    return simt::racy_load(entries_[u].deleted) != 0;
  }
  void set_deleted(VertexId u, bool flag) noexcept {
    simt::racy_store(entries_[u].deleted, flag ? 1u : 0u);
  }

  /// Sum of all per-vertex edge counters.
  std::uint64_t total_edges() const noexcept;

 private:
  /// One vertex's dictionary record: 16 bytes, four per cache line.
  struct Entry {
    memory::SlabHandle table_base = memory::kNullSlab;
    std::uint32_t num_buckets = 0;
    std::uint32_t edge_count = 0;
    std::uint32_t deleted = 0;
  };
  static_assert(sizeof(Entry) == 16, "dictionary entries must stay packed");

  std::vector<Entry> entries_;
  std::uint32_t growth_count_ = 0;
};

}  // namespace sg::core
