// Vertex dictionary (§III-a, §IV-A1): a fixed-size array indexed by vertex
// id holding, per vertex, the handle of its adjacency hash table (base slab
// + bucket count), the exact edge counter, and liveness. Growing the
// dictionary copies only these per-vertex entries — "shallow copying of the
// pointers to each of the hash tables" — never the adjacency data itself.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.hpp"
#include "src/slabhash/slab_layout.hpp"

namespace sg::core {

class VertexDictionary {
 public:
  explicit VertexDictionary(std::uint32_t capacity);

  std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(table_base_.size());
  }

  /// Grows capacity to at least `min_capacity` (next power of two); a
  /// shallow copy of per-vertex entries. No-op if already large enough.
  void grow(std::uint32_t min_capacity);

  /// Number of grow() calls that actually reallocated; exposed so tests can
  /// verify the overallocation strategy avoids repeated copies.
  std::uint32_t growth_count() const noexcept { return growth_count_; }

  // --- per-vertex slots (bounds-unchecked hot accessors) ---------------
  slabhash::TableRef table(VertexId u) const noexcept {
    return {table_base_[u], num_buckets_[u]};
  }
  bool has_table(VertexId u) const noexcept {
    return table_base_[u] != memory::kNullSlab;
  }
  void set_table(VertexId u, slabhash::TableRef ref) noexcept {
    table_base_[u] = ref.base;
    num_buckets_[u] = ref.num_buckets;
  }

  /// Racy-read-safe variants for lazy table creation during a parallel
  /// insert phase: the bucket count is published before the base handle
  /// (release), and readers order their loads behind the base (acquire).
  slabhash::TableRef table_acquire(VertexId u) const noexcept;
  void publish_table(VertexId u, slabhash::TableRef ref) noexcept;

  /// Edge counters are mutated with atomics during batched updates.
  std::uint32_t& edge_count_word(VertexId u) noexcept { return edge_count_[u]; }
  std::uint32_t edge_count(VertexId u) const noexcept { return edge_count_[u]; }
  void set_edge_count(VertexId u, std::uint32_t n) noexcept { edge_count_[u] = n; }

  bool deleted(VertexId u) const noexcept { return deleted_[u] != 0; }
  void set_deleted(VertexId u, bool flag) noexcept { deleted_[u] = flag ? 1 : 0; }

  /// Sum of all per-vertex edge counters.
  std::uint64_t total_edges() const noexcept;

 private:
  std::vector<memory::SlabHandle> table_base_;
  std::vector<std::uint32_t> num_buckets_;
  std::vector<std::uint32_t> edge_count_;
  std::vector<std::uint8_t> deleted_;
  std::uint32_t growth_count_ = 0;
};

}  // namespace sg::core
