// Host-side helpers shared by the batched mutation paths: batch validation,
// id range discovery, and undirected mirroring (an undirected edge is
// applied to both endpoint adjacency lists, §IV-C).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/types.hpp"

namespace sg::core {

/// Largest vertex id referenced by the batch; 0 for an empty batch.
VertexId max_vertex_id(std::span<const WeightedEdge> edges);
VertexId max_vertex_id(std::span<const Edge> edges);

/// Throws std::invalid_argument if any id exceeds kMaxVertexId (ids that
/// would collide with the slab sentinels are unrepresentable).
void validate_batch(std::span<const WeightedEdge> edges);
void validate_batch(std::span<const Edge> edges);

/// Batch plus its reverse edges (for undirected updates).
std::vector<WeightedEdge> mirror_edges(std::span<const WeightedEdge> edges);
std::vector<Edge> mirror_edges(std::span<const Edge> edges);

}  // namespace sg::core
