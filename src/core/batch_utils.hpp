// Host-side helpers shared by the batched mutation paths: batch validation
// and id range discovery. (Undirected mirroring happens in place on both
// the engine and oracle paths — no mirrored temp vector is ever built.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/types.hpp"

namespace sg::core {

/// Largest vertex id referenced by the batch; 0 for an empty batch.
VertexId max_vertex_id(std::span<const WeightedEdge> edges);
VertexId max_vertex_id(std::span<const Edge> edges);

/// Throws std::invalid_argument if any id exceeds kMaxVertexId (ids that
/// would collide with the slab sentinels are unrepresentable).
void validate_batch(std::span<const WeightedEdge> edges);
void validate_batch(std::span<const Edge> edges);

}  // namespace sg::core
