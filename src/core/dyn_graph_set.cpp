#include "src/core/dyn_graph_impl.hpp"

namespace sg::core {

template class EdgeSlabIterator<SetPolicy>;
template class DynGraph<SetPolicy>;

}  // namespace sg::core
