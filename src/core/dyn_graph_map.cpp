#include "src/core/dyn_graph_impl.hpp"

namespace sg::core {

template class EdgeSlabIterator<MapPolicy>;
template class DynGraph<MapPolicy>;

}  // namespace sg::core
