#include "src/core/vertex_dictionary.hpp"

#include <bit>
#include <stdexcept>

#include "src/simt/atomics.hpp"

namespace sg::core {

VertexDictionary::VertexDictionary(std::uint32_t capacity) {
  if (capacity == 0) capacity = 1;
  table_base_.assign(capacity, memory::kNullSlab);
  num_buckets_.assign(capacity, 0);
  edge_count_.assign(capacity, 0);
  deleted_.assign(capacity, 0);
}

void VertexDictionary::grow(std::uint32_t min_capacity) {
  if (min_capacity <= capacity()) return;
  if (min_capacity > kMaxVertexId) {
    throw std::length_error("vertex dictionary capacity overflow");
  }
  const std::uint32_t new_capacity = std::bit_ceil(min_capacity);
  // vector::resize preserves the prefix: this is exactly the shallow
  // pointer copy of §IV-A1 (adjacency storage is untouched).
  table_base_.resize(new_capacity, memory::kNullSlab);
  num_buckets_.resize(new_capacity, 0);
  edge_count_.resize(new_capacity, 0);
  deleted_.resize(new_capacity, 0);
  ++growth_count_;
}

slabhash::TableRef VertexDictionary::table_acquire(VertexId u) const noexcept {
  const memory::SlabHandle base = simt::atomic_load(table_base_[u]);
  return {base, num_buckets_[u]};
}

void VertexDictionary::publish_table(VertexId u, slabhash::TableRef ref) noexcept {
  num_buckets_[u] = ref.num_buckets;
  simt::atomic_store(table_base_[u], ref.base);
}

std::uint64_t VertexDictionary::total_edges() const noexcept {
  std::uint64_t total = 0;
  for (std::uint32_t count : edge_count_) total += count;
  return total;
}

}  // namespace sg::core
