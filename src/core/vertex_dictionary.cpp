#include "src/core/vertex_dictionary.hpp"

#include <bit>
#include <stdexcept>

#include "src/simt/atomics.hpp"

namespace sg::core {

VertexDictionary::VertexDictionary(std::uint32_t capacity) {
  if (capacity == 0) capacity = 1;
  entries_.assign(capacity, Entry{});
}

void VertexDictionary::grow(std::uint32_t min_capacity) {
  if (min_capacity <= capacity()) return;
  if (min_capacity > kMaxVertexId) {
    throw std::length_error("vertex dictionary capacity overflow");
  }
  const std::uint32_t new_capacity = std::bit_ceil(min_capacity);
  // vector::resize preserves the prefix: this is exactly the shallow
  // pointer copy of §IV-A1 (adjacency storage is untouched).
  entries_.resize(new_capacity, Entry{});
  ++growth_count_;
}

slabhash::TableRef VertexDictionary::table_acquire(VertexId u) const noexcept {
  const Entry& e = entries_[u];
  const memory::SlabHandle base = simt::atomic_load(e.table_base);
  // The bucket-count read may race an in-flight publish; when it does, the
  // base handle read above was kNullSlab and the caller discards the ref.
  return {base, simt::racy_load(e.num_buckets)};
}

void VertexDictionary::publish_table(VertexId u, slabhash::TableRef ref) noexcept {
  Entry& e = entries_[u];
  simt::racy_store(e.num_buckets, ref.num_buckets);
  simt::atomic_store(e.table_base, ref.base);
}

std::uint64_t VertexDictionary::total_edges() const noexcept {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.edge_count;
  return total;
}

}  // namespace sg::core
